/// Experiment S1: concurrent audit service thread scaling.
///
/// End-to-end parallel audit wall time vs worker count (1 →
/// hardware_concurrency) on the generated hospital workload, against the
/// serial Auditor baseline; every parallel report is checked
/// byte-identical (CanonicalString) to the serial one. Also sweeps the
/// admission policy (block vs reject under a tiny queue) to measure the
/// cost of load-shedding, and library screening along the expression
/// axis. The custom main prints the scaling table and the service
/// metrics JSON before handing over to the registered benchmarks.
///
/// Run: build/bench/bench_service

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <thread>

#include "bench/bench_util.h"
#include "src/service/audit_service.h"

namespace {

using namespace auditdb;
using bench::Ts;

constexpr size_t kPatients = 300;
constexpr size_t kLogSize = 3000;

service::AuditServiceOptions ServiceOptions(size_t threads) {
  service::AuditServiceOptions options;
  options.pool.num_threads = threads;
  return options;
}

void BM_ServiceThreads(benchmark::State& state) {
  auto world = bench::MakeWorld(kPatients, kLogSize);
  service::AuditService audit_service(
      &world->db, &world->backlog, &world->log,
      ServiceOptions(static_cast<size_t>(state.range(0))));
  audit::AuditOptions options;
  options.minimize_batch = false;
  for (auto _ : state) {
    auto report = audit_service.Audit(bench::CanonicalAudit(), Ts(1000000),
                                      options);
    if (!report.ok()) std::abort();
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kLogSize));
}
BENCHMARK(BM_ServiceThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_SerialBaseline(benchmark::State& state) {
  auto world = bench::MakeWorld(kPatients, kLogSize);
  audit::Auditor auditor(&world->db, &world->backlog, &world->log);
  audit::AuditOptions options;
  options.minimize_batch = false;
  for (auto _ : state) {
    auto report = auditor.Audit(bench::CanonicalAudit(), Ts(1000000),
                                options);
    if (!report.ok()) std::abort();
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kLogSize));
}
BENCHMARK(BM_SerialBaseline)->Unit(benchmark::kMillisecond);

/// Admission-policy ablation: a tiny queue under kReject sheds to inline
/// execution in the scheduler thread; kBlock stalls producers instead.
void BM_ServiceAdmission(benchmark::State& state) {
  auto world = bench::MakeWorld(kPatients, /*queries=*/1000);
  service::AuditServiceOptions options = ServiceOptions(4);
  options.pool.queue_capacity = static_cast<size_t>(state.range(0));
  options.pool.admission = state.range(1) != 0
                               ? service::AdmissionPolicy::kReject
                               : service::AdmissionPolicy::kBlock;
  service::AuditService audit_service(&world->db, &world->backlog,
                                      &world->log, options);
  audit::AuditOptions audit_options;
  audit_options.minimize_batch = false;
  for (auto _ : state) {
    auto report = audit_service.Audit(bench::CanonicalAudit(), Ts(1000000),
                                      audit_options);
    if (!report.ok()) std::abort();
    benchmark::DoNotOptimize(report);
  }
  state.SetLabel(state.range(1) != 0 ? "reject" : "block");
}
BENCHMARK(BM_ServiceAdmission)
    ->Args({4, 0})
    ->Args({4, 1})
    ->Args({256, 0})
    ->Unit(benchmark::kMillisecond);

/// Expression-axis scaling: screening a standing library, one job per
/// expression.
void BM_ServiceLibraryScreen(benchmark::State& state) {
  auto world = bench::MakeWorld(kPatients, /*queries=*/1000);
  audit::ExpressionLibrary library(&world->db.catalog());
  const char* standing[] = {
      "DURING 1/1/1970 to 2/1/1970 DATA-INTERVAL 1/1/1970 to 2/1/1970 "
      "AUDIT (name,disease) FROM P-Personal, P-Health "
      "WHERE P-Personal.pid = P-Health.pid AND disease='diabetic'",
      "DURING 1/1/1970 to 2/1/1970 DATA-INTERVAL 1/1/1970 to 2/1/1970 "
      "AUDIT (name,salary) FROM P-Personal, P-Employ "
      "WHERE P-Personal.pid = P-Employ.pid",
      "DURING 1/1/1970 to 2/1/1970 DATA-INTERVAL 1/1/1970 to 2/1/1970 "
      "THRESHOLD 5 AUDIT (zipcode),[disease] FROM P-Personal, P-Health "
      "WHERE P-Personal.pid = P-Health.pid",
      "DURING 1/1/1970 to 2/1/1970 DATA-INTERVAL 1/1/1970 to 2/1/1970 "
      "AUDIT (ward),[disease] FROM P-Health",
  };
  for (const char* text : standing) {
    auto expr = audit::ParseAudit(text, Ts(1000000));
    if (!expr.ok()) std::abort();
    if (!library.Add(*expr).ok()) std::abort();
  }
  service::AuditService audit_service(
      &world->db, &world->backlog, &world->log,
      ServiceOptions(static_cast<size_t>(state.range(0))));
  audit::AuditOptions options;
  options.minimize_batch = false;
  for (auto _ : state) {
    auto screenings = audit_service.ScreenLibrary(library, options);
    benchmark::DoNotOptimize(screenings);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(library.size()));
}
BENCHMARK(BM_ServiceLibraryScreen)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

/// One timed run at each thread count, with determinism checks and the
/// service metrics JSON — the acceptance artifact for the service layer.
void PrintScalingTable() {
  auto world = bench::MakeWorld(kPatients, kLogSize);
  audit::Auditor auditor(&world->db, &world->backlog, &world->log);
  audit::AuditOptions options;
  options.minimize_batch = false;

  using Clock = std::chrono::steady_clock;
  auto serial_start = Clock::now();
  auto serial = auditor.Audit(bench::CanonicalAudit(), Ts(1000000), options);
  double serial_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - serial_start)
          .count();
  if (!serial.ok()) std::abort();
  std::printf("=== service thread scaling (%zu patients, %zu queries) ===\n",
              kPatients, kLogSize);
  std::printf("  serial          %8.1f ms   (baseline)\n", serial_ms);

  size_t hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 4;
  std::string metrics_json;
  for (size_t threads = 1; threads <= hw; threads *= 2) {
    service::AuditService audit_service(&world->db, &world->backlog,
                                        &world->log,
                                        ServiceOptions(threads));
    auto start = Clock::now();
    auto report = audit_service.Audit(bench::CanonicalAudit(), Ts(1000000),
                                      options);
    double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - start)
            .count();
    if (!report.ok()) std::abort();
    bool identical =
        report->CanonicalString() == serial->CanonicalString();
    std::printf("  %2zu thread%s      %8.1f ms   speedup %4.2fx   %s\n",
                threads, threads == 1 ? " " : "s", ms, serial_ms / ms,
                identical ? "output identical" : "OUTPUT DIFFERS (bug!)");
    if (!identical) std::abort();
    if (threads * 2 > hw) metrics_json = audit_service.MetricsJson();
  }
  std::printf("metrics: %s\n\n", metrics_json.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  PrintScalingTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
