/// Experiment P8: parser throughput for the SQL subset and the unified
/// audit grammar, by expression complexity.
///
/// Run: build/bench/bench_parser

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/audit/audit_parser.h"
#include "src/sql/parser.h"

namespace {

using namespace auditdb;

std::string SqlWithConjuncts(int n) {
  std::string text =
      "SELECT name, disease FROM P-Personal, P-Health "
      "WHERE P-Personal.pid = P-Health.pid";
  for (int i = 0; i < n; ++i) {
    text += " AND age > " + std::to_string(i);
  }
  return text;
}

void BM_ParseSelect(benchmark::State& state) {
  std::string text = SqlWithConjuncts(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto stmt = sql::ParseSelect(text);
    if (!stmt.ok()) std::abort();
    benchmark::DoNotOptimize(stmt);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_ParseSelect)->Arg(0)->Arg(8)->Arg(64)->Arg(256);

void BM_LexOnly(benchmark::State& state) {
  std::string text = SqlWithConjuncts(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto tokens = sql::Lex(text);
    if (!tokens.ok()) std::abort();
    benchmark::DoNotOptimize(tokens);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_LexOnly)->Arg(0)->Arg(64)->Arg(256);

void BM_ParseAuditExpression(benchmark::State& state) {
  const int64_t complexity = state.range(0);
  std::string text;
  if (complexity == 0) {
    text = "AUDIT disease FROM Patients WHERE zipcode='118701'";
  } else {
    text =
        "Neg-Role-Purpose (doctor,treatment) (-,billing) "
        "Pos-User-Identity alice bob carol "
        "DURING 1/5/2004:13-00-00 to 2/5/2004:13-00-00 "
        "DATA-INTERVAL 1/5/2004:13-00-00 to now() "
        "THRESHOLD 5 INDISPENSABLE true "
        "AUDIT (name,disease),[address,zipcode,salary] "
        "FROM P-Personal, P-Health, P-Employ "
        "WHERE P-Personal.pid=P-Health.pid AND "
        "P-Health.pid=P-Employ.pid AND P-Health.disease='diabetic'";
    for (int64_t i = 1; i < complexity; ++i) {
      text += " AND P-Employ.salary > " + std::to_string(1000 * i);
    }
  }
  Timestamp now = bench::Ts(1000);
  for (auto _ : state) {
    auto expr = audit::ParseAudit(text, now);
    if (!expr.ok()) std::abort();
    benchmark::DoNotOptimize(expr);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_ParseAuditExpression)->Arg(0)->Arg(1)->Arg(16)->Arg(64);

void BM_ParseGeneratedWorkload(benchmark::State& state) {
  workload::HospitalConfig hospital;
  workload::WorkloadConfig config;
  config.num_queries = 1000;
  config.start = bench::Ts(100);
  QueryLog log;
  if (!workload::GenerateWorkload(&log, config, hospital).ok()) {
    std::abort();
  }
  for (auto _ : state) {
    for (size_t i = 0; i < log.size(); ++i) {
      auto stmt = sql::ParseSelect(log.Entry(i).sql);
      if (!stmt.ok()) std::abort();
      benchmark::DoNotOptimize(stmt);
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 1000);
}
BENCHMARK(BM_ParseGeneratedWorkload)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
