/// Experiment T1-T5 / F2-F6: regenerates every table and figure of the
/// paper's worked example and prints it next to the paper's listing, then
/// benchmarks the derivations (target-view computation and granule-set
/// generation for the three canonical suspicion notions).
///
/// Run: build/bench/bench_paper_artifacts

#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/audit/audit_parser.h"
#include "src/audit/granule.h"
#include "src/audit/target_view.h"
#include "src/workload/hospital.h"

namespace {

using namespace auditdb;

Timestamp Ts(int64_t s) { return Timestamp(s * 1000000); }

const char* kFig4 =
    "INDISPENSABLE = true AUDIT [*] "
    "FROM P-Personal, P-Health, P-Employ "
    "WHERE P-Personal.pid=P-Health.pid and P-Health.pid=P-Employ.pid "
    "and P-Personal.zipcode='145568' and P-Employ.salary > 10000 "
    "and P-Health.disease='diabetic' and P-Personal.name='Reku'";

const char* kFig5 =
    "INDISPENSABLE = true "
    "AUDIT [name,disease,address,P-Personal.pid,P-Health.pid,"
    "P-Employ.pid,zipcode,salary] "
    "FROM P-Personal, P-Health, P-Employ "
    "WHERE P-Personal.pid=P-Health.pid and P-Health.pid=P-Employ.pid "
    "and P-Personal.zipcode=145568 and P-Employ.salary > 10000 "
    "and P-Health.disease='diabetic'";

const char* kFig6 =
    "INDISPENSABLE = true AUDIT (name,disease,address) "
    "FROM P-Personal, P-Health, P-Employ "
    "WHERE P-Personal.pid=P-Health.pid and P-Health.pid=P-Employ.pid "
    "and P-Personal.zipcode='145568' and P-Employ.salary > 10000 "
    "and P-Health.disease='diabetic'";

Database* PaperDb() {
  static Database* db = [] {
    auto* d = new Database();
    if (!workload::BuildPaperDatabase(d, Ts(1)).ok()) std::abort();
    return d;
  }();
  return db;
}

audit::AuditExpression Parse(const std::string& text) {
  auto expr = audit::ParseAudit(text, Ts(1000));
  if (!expr.ok()) std::abort();
  if (!expr->Qualify(PaperDb()->catalog()).ok()) std::abort();
  return std::move(*expr);
}

void PrintArtifacts() {
  std::printf("=== Tables 1-3: the reconstructed example instance ===\n");
  for (const char* name : {"P-Personal", "P-Health", "P-Employ"}) {
    auto table = PaperDb()->GetTable(name);
    if (!table.ok()) std::abort();
    std::printf("-- %s --\n", (*table)->schema().ToString().c_str());
    for (const auto& row : (*table)->rows()) {
      std::printf("  %s:", TidToString(row.tid).c_str());
      for (const auto& v : row.values) {
        std::printf(" %s", v.ToDisplayString().c_str());
      }
      std::printf("\n");
    }
  }

  auto view_of = [&](const char* label, const std::string& text) {
    auto expr = Parse(text);
    auto view = audit::ComputeTargetView(expr, PaperDb()->View(), Ts(1));
    if (!view.ok()) std::abort();
    std::printf("\n=== %s ===\n%s", label, view->ToString().c_str());
    return std::move(*view);
  };

  view_of("Table 4: U for Audit Expression-1 (Fig. 2)",
          "AUDIT name, age, address FROM P-Personal WHERE age < 30");
  view_of("Table 5: U for Audit Expression-2 (Fig. 3)", kFig6);

  auto granules_of = [&](const char* label, const std::string& text) {
    auto expr = Parse(text);
    auto view = audit::ComputeTargetView(expr, PaperDb()->View(), Ts(1));
    if (!view.ok()) std::abort();
    audit::GranuleEnumerator g(*view, audit::BuildSchemes(expr),
                               expr.threshold);
    std::printf("\n=== %s ===\nG = {", label);
    bool first = true;
    for (const auto& text_granule : g.RenderDistinct(1000)) {
      std::printf("%s%s", first ? "" : ", ", text_granule.c_str());
      first = false;
    }
    std::printf("}  (|G| = %.0f)\n", g.CountGranules());
  };

  granules_of("Fig. 4: perfect-privacy granule set", kFig4);
  granules_of("Fig. 5: weak-syntactic granule set", kFig5);
  granules_of("Fig. 6: semantic-suspicion granule set", kFig6);

  // Table 6: the structural rules, each re-verified here as an
  // equivalence of normal forms and of scheme sets.
  std::printf("\n=== Table 6: audit-attribute structural rules ===\n");
  struct Rule {
    const char* number;
    const char* lhs;
    const char* rhs;
    const char* description;
  };
  const Rule kRules[] = {
      {"1", "AUDIT [a] FROM T", "AUDIT (a) FROM T",
       "singleton optional = mandatory"},
      {"2", "AUDIT (a,b)(c) FROM T", "AUDIT (a,b,c) FROM T",
       "mandatory sequence merges"},
      {"3", "AUDIT (a,b) FROM T", "AUDIT (b,a) FROM T",
       "set commutativity"},
      {"4", "AUDIT [a][b] FROM T", "AUDIT (a,b) FROM T",
       "two singleton optionals = mandatory pair"},
      {"5", "AUDIT [a,b][c,d] FROM T", "AUDIT [c,d][a,b] FROM T",
       "sequence commutativity"},
      {"6", "AUDIT [(a,b)] FROM T", "AUDIT (a,b) FROM T", "nesting"},
      {"7", "AUDIT (a,b)[c] FROM T", "AUDIT (a,b,c) FROM T",
       "composition"},
  };
  for (const Rule& rule : kRules) {
    auto lhs = audit::ParseAudit(rule.lhs, Ts(1));
    auto rhs = audit::ParseAudit(rule.rhs, Ts(1));
    if (!lhs.ok() || !rhs.ok()) std::abort();
    bool equivalent = lhs->attrs.EquivalentTo(rhs->attrs) &&
                      lhs->attrs.Normalized().ToString() ==
                          rhs->attrs.Normalized().ToString();
    std::printf("  rule %s: %-22s == %-18s (%s)  %s\n", rule.number,
                lhs->attrs.ToString().c_str(),
                rhs->attrs.ToString().c_str(), rule.description,
                equivalent ? "VERIFIED" : "FAILED");
  }
  std::printf(
      "\n(Figs. 1 and 7, the legacy and unified grammars, are exercised "
      "by the\nparser round-trip suite; see docs/grammar.md for the "
      "EBNF.)\n\n");
}

void BM_TargetViewTable4(benchmark::State& state) {
  auto expr =
      Parse("AUDIT name, age, address FROM P-Personal WHERE age < 30");
  auto view = PaperDb()->View();
  for (auto _ : state) {
    auto u = audit::ComputeTargetView(expr, view, Ts(1));
    benchmark::DoNotOptimize(u);
  }
}
BENCHMARK(BM_TargetViewTable4);

void BM_TargetViewTable5(benchmark::State& state) {
  auto expr = Parse(kFig6);
  auto view = PaperDb()->View();
  for (auto _ : state) {
    auto u = audit::ComputeTargetView(expr, view, Ts(1));
    benchmark::DoNotOptimize(u);
  }
}
BENCHMARK(BM_TargetViewTable5);

void GranuleBench(benchmark::State& state, const char* text) {
  auto expr = Parse(text);
  auto view = audit::ComputeTargetView(expr, PaperDb()->View(), Ts(1));
  if (!view.ok()) std::abort();
  auto schemes = audit::BuildSchemes(expr);
  for (auto _ : state) {
    audit::GranuleEnumerator g(*view, schemes, expr.threshold);
    uint64_t n = g.ForEach([](const audit::Granule&) { return true; });
    benchmark::DoNotOptimize(n);
  }
}
void BM_GranulesFig4(benchmark::State& state) { GranuleBench(state, kFig4); }
void BM_GranulesFig5(benchmark::State& state) { GranuleBench(state, kFig5); }
void BM_GranulesFig6(benchmark::State& state) { GranuleBench(state, kFig6); }
BENCHMARK(BM_GranulesFig4);
BENCHMARK(BM_GranulesFig5);
BENCHMARK(BM_GranulesFig6);

}  // namespace

int main(int argc, char** argv) {
  PrintArtifacts();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
