/// Experiment D1: durability costs — WAL append throughput per fsync
/// policy, and recovery time as the un-checkpointed log grows.
///
/// Append benches write realistic query records through WalWriter under
/// each FsyncPolicy (always / every_n:64 / never), reporting records/s
/// and bytes/s; the spread between "never" and "always" is the price of
/// the kill-9 durability guarantee. Recovery benches time ReplayWal
/// alone and full DurableStore::Open (manifest + snapshot load + replay
/// + torn-tail scan) against WALs of growing record counts.
///
/// Run: build/bench/bench_wal   (artifact: BENCH_wal.json)

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "src/io/file.h"
#include "src/io/store.h"
#include "src/querylog/wal.h"

namespace {

using namespace auditdb;

/// A realistic logged query: ~120 byte SQL with escaped-field-relevant
/// characters, deterministic per id.
LoggedQuery MakeEntry(int64_t id) {
  LoggedQuery entry;
  entry.id = id;
  entry.timestamp = Timestamp(1000000 + id);
  entry.user = "user" + std::to_string(id % 97);
  entry.role = (id % 3 == 0) ? "Doctor" : "Nurse";
  entry.purpose = "treatment";
  entry.sql =
      "SELECT name, disease FROM P-Personal, P-Health WHERE "
      "P-Personal.pid = P-Health.pid AND disease = 'diabetic' AND "
      "pid = 'p" +
      std::to_string(id) + "'";
  return entry;
}

/// Scratch dir under /tmp, emptied of any prior bench run's files.
std::string FreshDir(const std::string& name) {
  io::Env* env = io::Env::Default();
  std::string dir = "/tmp/auditdb_bench_wal_" + name;
  if (env->FileExists(dir)) {
    auto names = env->ListDir(dir);
    if (names.ok()) {
      for (const auto& entry : *names) {
        (void)env->DeleteFile(io::JoinPath(dir, entry));
      }
    }
  }
  if (!env->CreateDirIfMissing(dir).ok()) std::abort();
  return dir;
}

void BenchAppend(benchmark::State& state, querylog::FsyncPolicy policy) {
  io::Env* env = io::Env::Default();
  std::string dir = FreshDir("append");
  querylog::WalWriterOptions options;
  options.fsync = policy;
  options.every_n = 64;
  auto wal = querylog::WalWriter::Open(
      env, io::JoinPath(dir, "bench.wal"), options, /*truncate=*/true);
  if (!wal.ok()) std::abort();
  int64_t id = 0;
  int64_t bytes = 0;
  for (auto _ : state) {
    std::string payload = querylog::EncodeQueryWalPayload(MakeEntry(++id));
    bytes += static_cast<int64_t>(payload.size());
    Status appended =
        (*wal)->Append(querylog::WalRecordType::kQuery, payload);
    if (!appended.ok()) std::abort();
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(bytes);
  state.counters["wal_bytes"] =
      static_cast<double>((*wal)->bytes_written());
}

void BM_WalAppendFsyncAlways(benchmark::State& state) {
  BenchAppend(state, querylog::FsyncPolicy::kAlways);
}
void BM_WalAppendFsyncEveryN(benchmark::State& state) {
  BenchAppend(state, querylog::FsyncPolicy::kEveryN);
}
void BM_WalAppendFsyncNever(benchmark::State& state) {
  BenchAppend(state, querylog::FsyncPolicy::kNever);
}
BENCHMARK(BM_WalAppendFsyncAlways);
BENCHMARK(BM_WalAppendFsyncEveryN);
BENCHMARK(BM_WalAppendFsyncNever);

/// Writes `records` query records into a fresh WAL file and returns its
/// path (fsync=never: the bench measures reading, not writing).
std::string BuildWal(const std::string& dir, int64_t records) {
  io::Env* env = io::Env::Default();
  std::string path = io::JoinPath(dir, "replay.wal");
  querylog::WalWriterOptions options;
  options.fsync = querylog::FsyncPolicy::kNever;
  auto wal = querylog::WalWriter::Open(env, path, options,
                                       /*truncate=*/true);
  if (!wal.ok()) std::abort();
  for (int64_t id = 1; id <= records; ++id) {
    Status appended =
        (*wal)->Append(querylog::WalRecordType::kQuery,
                       querylog::EncodeQueryWalPayload(MakeEntry(id)));
    if (!appended.ok()) std::abort();
  }
  if (!(*wal)->Close().ok()) std::abort();
  return path;
}

void BM_WalReplay(benchmark::State& state) {
  io::Env* env = io::Env::Default();
  std::string dir = FreshDir("replay");
  const int64_t records = state.range(0);
  std::string path = BuildWal(dir, records);
  for (auto _ : state) {
    uint64_t seen = 0;
    querylog::WalReplayStats stats;
    Status replayed = querylog::ReplayWal(
        env, path,
        [&](querylog::WalRecordType, const std::string&) {
          ++seen;
          return Status::Ok();
        },
        &stats);
    if (!replayed.ok() || seen != static_cast<uint64_t>(records)) {
      std::abort();
    }
    benchmark::DoNotOptimize(stats.valid_prefix_bytes);
  }
  state.SetItemsProcessed(state.iterations() * records);
}
BENCHMARK(BM_WalReplay)->Arg(1000)->Arg(10000)->Arg(100000);

/// Full crash-recovery path: manifest read, snapshot load, WAL replay,
/// torn-tail scan, stale-file prune — what auditd pays on restart as a
/// function of how much WAL accumulated since the last checkpoint.
void BM_StoreRecovery(benchmark::State& state) {
  io::Env* env = io::Env::Default();
  std::string dir = FreshDir("recover_" + std::to_string(state.range(0)));
  const int64_t records = state.range(0);
  {
    // Seed the dir: hospital snapshot at checkpoint 1, then `records`
    // un-checkpointed appends.
    auto world = bench::MakeWorld(/*patients=*/50, /*queries=*/0);
    io::DurableStoreOptions options;
    options.fsync = querylog::FsyncPolicy::kNever;
    options.checkpoint_every_records = 0;
    auto store = io::DurableStore::Open(env, dir, &world->db, &world->log,
                                        bench::Ts(1), options);
    if (!store.ok()) std::abort();
    for (int64_t id = 1; id <= records; ++id) {
      if (!(*store)->AppendQuery(MakeEntry(id)).ok()) std::abort();
    }
    if (!(*store)->Sync().ok()) std::abort();
  }
  for (auto _ : state) {
    Database db;
    QueryLog log;
    auto store =
        io::DurableStore::Open(env, dir, &db, &log, bench::Ts(1));
    if (!store.ok() ||
        log.size() != static_cast<size_t>(records)) {
      std::abort();
    }
    benchmark::DoNotOptimize(log.size());
  }
  state.SetItemsProcessed(state.iterations() * records);
}
BENCHMARK(BM_StoreRecovery)->Arg(0)->Arg(1000)->Arg(10000)->Arg(50000);

}  // namespace

AUDITDB_BENCH_MAIN(wal);
