/// Experiment P1: policy-engine cost on the serving path.
///
///   1. Decide() throughput vs rule count (16..4096 rules), for the
///      three interesting positions: no rule matches (full first-match
///      scan), the first rule matches (early out), the last rule
///      matches (scan + hit bookkeeping);
///   2. per-query context construction (ClassifySql + ExtractTables),
///      which the server pays before Decide();
///   3. redaction: literal splice on a marked query, scan-only cost on
///      an unmarked one, and the engine's display-union path;
///   4. `overhead` mode: two identical loopback worlds, one serving
///      through a 64-rule engine at 0%% hit rate and one with no
///      policy at all, hammered with the same generated workload. The
///      run fails (exit 1) if the policy world is more than 5%% slower
///      — the acceptance bound for "policy off the hot path".
///
/// Run: build/bench/bench_policy                  (writes BENCH_policy.json)
///      build/bench/bench_policy overhead [n]     (acceptance check)

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/net/client.h"
#include "src/net/server.h"
#include "src/policy/policy_engine.h"

namespace {

using namespace auditdb;
using bench::Ts;
using Clock = std::chrono::steady_clock;

/// `count` rules none of which match ordinary workload traffic (users
/// that never occur), plus optionally one matching rule spliced at the
/// front or back.
std::string RulesText(size_t count, const std::string& match_user,
                      bool match_first) {
  std::string text;
  auto ghost = [](size_t i) {
    return "[rule ghost" + std::to_string(i) + "]\nuser = ghost" +
           std::to_string(i) + "\n\n";
  };
  std::string hit;
  if (!match_user.empty()) {
    hit = "[rule hit]\nuser = " + match_user + "\nlog-class = bench\n\n";
  }
  if (match_first) text += hit;
  for (size_t i = 0; i < count; ++i) text += ghost(i);
  if (!match_first) text += hit;
  return text;
}

policy::QueryContext MakeContext(const std::string& user) {
  policy::QueryContext ctx;
  ctx.sql =
      "SELECT name, disease FROM P-Personal, P-Health "
      "WHERE P-Personal.pid = P-Health.pid AND disease = 'diabetic'";
  ctx.user = user;
  ctx.role = "clerk";
  ctx.purpose = "billing";
  ctx.timestamp = Ts(500);
  ctx.query_class = policy::ClassifySql(ctx.sql, false);
  ctx.tables = policy::ExtractTables(ctx.sql);
  return ctx;
}

void BM_DecideMiss(benchmark::State& state) {
  policy::PolicyEngine engine;
  std::string rules = RulesText(state.range(0), "", false);
  if (!engine.LoadText(rules, Ts(0)).ok()) state.SkipWithError("load");
  policy::QueryContext ctx = MakeContext("alice");
  for (auto _ : state) {
    auto decision = engine.Decide(ctx);
    benchmark::DoNotOptimize(decision.matched);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DecideMiss)->Arg(16)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

void BM_DecideHitFirst(benchmark::State& state) {
  policy::PolicyEngine engine;
  std::string rules = RulesText(state.range(0) - 1, "mallory", true);
  if (!engine.LoadText(rules, Ts(0)).ok()) state.SkipWithError("load");
  policy::QueryContext ctx = MakeContext("mallory");
  for (auto _ : state) {
    auto decision = engine.Decide(ctx);
    benchmark::DoNotOptimize(decision.matched);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DecideHitFirst)->Arg(16)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

void BM_DecideHitLast(benchmark::State& state) {
  policy::PolicyEngine engine;
  std::string rules = RulesText(state.range(0) - 1, "mallory", false);
  if (!engine.LoadText(rules, Ts(0)).ok()) state.SkipWithError("load");
  policy::QueryContext ctx = MakeContext("mallory");
  for (auto _ : state) {
    auto decision = engine.Decide(ctx);
    benchmark::DoNotOptimize(decision.matched);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DecideHitLast)->Arg(16)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

void BM_ContextBuild(benchmark::State& state) {
  const std::string sql =
      "SELECT name, disease FROM P-Personal, P-Health "
      "WHERE P-Personal.pid = P-Health.pid AND disease = 'diabetic'";
  for (auto _ : state) {
    auto query_class = policy::ClassifySql(sql, false);
    auto tables = policy::ExtractTables(sql);
    benchmark::DoNotOptimize(query_class);
    benchmark::DoNotOptimize(tables.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ContextBuild);

void BM_RedactSqlMarked(benchmark::State& state) {
  policy::RedactionSet set;
  set.Add("disease");
  const std::string sql =
      "SELECT name FROM P-Personal, P-Health "
      "WHERE P-Personal.pid = P-Health.pid AND disease = 'diabetic' "
      "AND disease IN ('flu', 'cold')";
  for (auto _ : state) {
    auto result = policy::RedactSql(sql, set);
    benchmark::DoNotOptimize(result.redactions);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RedactSqlMarked);

void BM_RedactSqlUnmarked(benchmark::State& state) {
  policy::RedactionSet set;
  set.Add("salary");
  const std::string sql =
      "SELECT name FROM P-Personal, P-Health "
      "WHERE P-Personal.pid = P-Health.pid AND disease = 'diabetic'";
  for (auto _ : state) {
    auto result = policy::RedactSql(sql, set);
    benchmark::DoNotOptimize(result.redactions);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RedactSqlUnmarked);

void BM_RedactForDisplay(benchmark::State& state) {
  policy::PolicyEngine engine;
  std::string rules =
      "[rule a]\nuser = mallory\nredact = disease\n\n"
      "[rule b]\nuser = eve\nredact = salary\n";
  if (!engine.LoadText(rules, Ts(0)).ok()) state.SkipWithError("load");
  const std::string sql =
      "SELECT name FROM P-Health WHERE disease = 'diabetic'";
  for (auto _ : state) {
    std::string out = engine.RedactForDisplay(sql);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RedactForDisplay);

/// --- overhead mode -------------------------------------------------

struct ServedWorld {
  Database db;
  Backlog backlog;
  QueryLog log;
  std::unique_ptr<service::AuditService> service;
  std::unique_ptr<net::AuditServer> server;

  explicit ServedWorld(const workload::HospitalConfig& hospital,
                       net::AuditServerOptions options) {
    backlog.Attach(&db);
    if (!workload::PopulateHospital(&db, hospital, Ts(1)).ok()) std::abort();
    service = std::make_unique<service::AuditService>(&db, &backlog, &log);
    server = std::make_unique<net::AuditServer>(service.get(), &db, &backlog,
                                                &log, options);
    if (!server->Start().ok()) std::abort();
  }
};

/// Issues one ExecuteQuery round-trip per query, appending each call's
/// latency (seconds) to `latencies`.
void DriveBatch(net::AuditClient* client,
                const std::vector<std::string>& queries, int64_t* at,
                std::vector<double>* latencies) {
  for (const auto& sql : queries) {
    auto start = Clock::now();
    auto result = client->ExecuteQuery(sql, "alice", "clerk", "billing",
                                       Ts((*at)++));
    if (!result.ok()) {
      std::fprintf(stderr, "ExecuteQuery failed: %s\n",
                   result.status().ToString().c_str());
      std::abort();
    }
    if (latencies != nullptr) {
      latencies->push_back(
          std::chrono::duration<double>(Clock::now() - start).count());
    }
  }
}

double Median(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

int RunOverhead(size_t num_queries) {
  constexpr size_t kRules = 64;
  constexpr int kTrials = 5;

  workload::HospitalConfig hospital;
  hospital.num_patients = 50;
  hospital.seed = 2008;
  workload::WorkloadConfig wc;
  wc.num_queries = num_queries;

  std::vector<std::string> queries;
  queries.reserve(num_queries);
  for (size_t i = 0; i < num_queries; ++i) {
    queries.push_back(workload::GenerateQueryText(wc.seed + i, wc, hospital));
  }

  // 64 rules, none of which match user "alice": every query pays the
  // full first-match scan and nothing else — the 0% hit-rate worst case.
  policy::PolicyEngine engine;
  if (!engine.LoadText(RulesText(kRules, "", false), Ts(0)).ok()) {
    std::fprintf(stderr, "rules failed to load\n");
    return 1;
  }

  ServedWorld plain(hospital, net::AuditServerOptions{});
  net::AuditServerOptions policed_options;
  policed_options.policy = &engine;
  ServedWorld policed(hospital, policed_options);

  net::AuditClient plain_client(plain.server->host(), plain.server->port());
  net::AuditClient policed_client(policed.server->host(),
                                  policed.server->port());

  int64_t plain_at = 100, policed_at = 100;
  // Warmup (connection setup, allocator, page cache).
  DriveBatch(&plain_client, queries, &plain_at, nullptr);
  DriveBatch(&policed_client, queries, &policed_at, nullptr);

  // The asserted comparison is PAIRED: the same running server, hot-
  // swapping between an empty rule set and the 64-ghost-rule set
  // between batches. Same socket, same threads, same core placement —
  // the only difference per query is the rule-set evaluation, so the
  // medians isolate exactly the 0%-hit matching cost. (A cross-world
  // plain-vs-policed comparison is printed as context below, but its
  // sign flips with thread placement on busy machines, so the 5%
  // bound is not enforced on it.)
  const std::string ghost_rules = RulesText(kRules, "", false);
  std::vector<double> empty_lat, rules_lat, plain_lat;
  empty_lat.reserve(queries.size() * kTrials);
  rules_lat.reserve(queries.size() * kTrials);
  plain_lat.reserve(queries.size() * kTrials);
  for (int trial = 0; trial < kTrials; ++trial) {
    if (!engine.LoadText("", Ts(0)).ok()) std::abort();
    DriveBatch(&policed_client, queries, &policed_at, &empty_lat);
    if (!engine.LoadText(ghost_rules, Ts(0)).ok()) std::abort();
    DriveBatch(&policed_client, queries, &policed_at, &rules_lat);
    DriveBatch(&plain_client, queries, &plain_at, &plain_lat);
  }
  double median_empty = Median(std::move(empty_lat));
  double median_rules = Median(std::move(rules_lat));
  double median_plain = Median(std::move(plain_lat));

  double overhead = (median_rules - median_empty) / median_empty;
  std::printf(
      "policy overhead @ 0%% hit rate, %zu rules, %zu queries x %d trials\n"
      "  policed, empty rules median: %8.2f us/query\n"
      "  policed, %zu rules median:  %8.2f us/query\n"
      "  no-policy world median:      %8.2f us/query (context only)\n"
      "  paired overhead: %+.2f%%  (bound: +5%%)\n",
      kRules, queries.size(), kTrials, median_empty * 1e6, kRules,
      median_rules * 1e6, median_plain * 1e6, overhead * 1e2);
  uint64_t decisions = engine.metrics()->counter("decisions")->value();
  uint64_t no_match = engine.metrics()->counter("no_match")->value();
  if (decisions == 0 || decisions != no_match) {
    std::printf("FAIL: expected every decision to miss (decisions=%llu "
                "no_match=%llu)\n",
                (unsigned long long)decisions, (unsigned long long)no_match);
    return 1;
  }
  if (overhead > 0.05) {
    std::printf("FAIL: policy overhead above 5%% bound\n");
    return 1;
  }
  std::printf("OK\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "overhead") {
    size_t n = argc > 2 ? static_cast<size_t>(std::atoll(argv[2])) : 400;
    return RunOverhead(n);
  }
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = "--benchmark_out=BENCH_policy.json";
  std::string format_flag = "--benchmark_out_format=json";
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out=", 0) == 0) {
      has_out = true;
    }
  }
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int num_args = static_cast<int>(args.size());
  ::benchmark::Initialize(&num_args, args.data());
  if (::benchmark::ReportUnrecognizedArguments(num_args, args.data())) {
    return 1;
  }
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
