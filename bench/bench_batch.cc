/// Experiment P6: batch auditing.
///
/// Cost and outcome of batch suspicion as the admitted batch grows:
/// (a) batch check over N candidate profiles, (b) greedy minimal-batch
/// extraction, (c) the Motwani specialized batch baseline on the same
/// input, and (d) split-attack detection rate — fraction of planted
/// two-query split disclosures the batch check catches that single-query
/// auditing misses.
///
/// Run: build/bench/bench_batch

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/audit/baseline_motwani.h"
#include "src/common/random.h"

namespace {

using namespace auditdb;
using bench::Ts;

/// A log of `pairs` split-disclosure pairs: each pair reads names and
/// diseases of one zip code in two separate queries.
void PlantSplitAttacks(QueryLog* log, const workload::HospitalConfig& config,
                       size_t pairs, uint64_t seed) {
  Random rng(seed);
  for (size_t i = 0; i < pairs; ++i) {
    std::string zip =
        "1" + std::to_string(10000 + rng.Uniform(config.num_zipcodes));
    int64_t at = 100 + static_cast<int64_t>(i) * 10;
    log->Append(
        "SELECT name, pid FROM P-Personal WHERE zipcode='" + zip + "'",
        Ts(at), "mallory", "clerk", "billing");
    log->Append(
        "SELECT pid, disease FROM P-Health WHERE disease='diabetic'",
        Ts(at + 5), "mallory", "clerk", "billing");
  }
}

void BM_BatchCheck(benchmark::State& state) {
  const size_t batch_size = static_cast<size_t>(state.range(0));
  auto world = bench::MakeWorld(/*patients=*/300, batch_size,
                                /*sensitive_fraction=*/0.6);
  audit::Auditor auditor(&world->db, &world->backlog, &world->log);
  audit::AuditOptions options;
  options.per_query_verdicts = false;
  options.minimize_batch = false;
  bool suspicious = false;
  for (auto _ : state) {
    auto report = auditor.Audit(bench::CanonicalAudit(), Ts(1000000),
                                options);
    if (!report.ok()) std::abort();
    suspicious = report->batch_suspicious;
  }
  state.counters["suspicious"] = suspicious ? 1 : 0;
}
BENCHMARK(BM_BatchCheck)
    ->Arg(100)
    ->Arg(400)
    ->Arg(1600)
    ->Unit(benchmark::kMillisecond);

void BM_MinimalBatchExtraction(benchmark::State& state) {
  const size_t batch_size = static_cast<size_t>(state.range(0));
  auto world = bench::MakeWorld(/*patients=*/300, batch_size,
                                /*sensitive_fraction=*/0.6);
  audit::Auditor auditor(&world->db, &world->backlog, &world->log);
  audit::AuditOptions options;
  options.per_query_verdicts = false;
  options.minimize_batch = true;
  size_t minimal = 0;
  for (auto _ : state) {
    auto report = auditor.Audit(bench::CanonicalAudit(), Ts(1000000),
                                options);
    if (!report.ok()) std::abort();
    minimal = report->minimal_batch.size();
  }
  state.counters["minimal_size"] = static_cast<double>(minimal);
}
BENCHMARK(BM_MinimalBatchExtraction)
    ->Arg(100)
    ->Arg(400)
    ->Unit(benchmark::kMillisecond);

void BM_MotwaniBatchBaseline(benchmark::State& state) {
  const size_t batch_size = static_cast<size_t>(state.range(0));
  auto world = bench::MakeWorld(/*patients=*/300, batch_size,
                                /*sensitive_fraction=*/0.6);
  auto expr = audit::ParseAudit(bench::CanonicalAudit(), Ts(1000000));
  if (!expr.ok()) std::abort();
  audit::MotwaniAuditor auditor(&world->db, &world->backlog, &world->log);
  for (auto _ : state) {
    auto result = auditor.Audit(*expr);
    if (!result.ok()) std::abort();
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_MotwaniBatchBaseline)
    ->Arg(100)
    ->Arg(400)
    ->Arg(1600)
    ->Unit(benchmark::kMillisecond);

/// Planted split attacks: batch catches them, single-query misses them.
void BM_SplitAttackDetection(benchmark::State& state) {
  const size_t pairs = static_cast<size_t>(state.range(0));
  auto world = bench::MakeWorld(/*patients=*/300, /*queries=*/1);
  QueryLog log;
  PlantSplitAttacks(&log, world->hospital, pairs, /*seed=*/5);

  audit::Auditor auditor(&world->db, &world->backlog, &log);
  audit::AuditOptions options;
  options.minimize_batch = false;
  bool batch_caught = false;
  size_t singles = 0;
  for (auto _ : state) {
    auto report = auditor.Audit(bench::CanonicalAudit(), Ts(1000000),
                                options);
    if (!report.ok()) std::abort();
    batch_caught = report->batch_suspicious;
    singles = report->SuspiciousQueryIds().size();
  }
  state.counters["batch_caught"] = batch_caught ? 1 : 0;
  state.counters["singles_flagged"] = static_cast<double>(singles);
}
BENCHMARK(BM_SplitAttackDetection)
    ->Arg(1)
    ->Arg(8)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
