#ifndef AUDITDB_BENCH_BENCH_UTIL_H_
#define AUDITDB_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "src/audit/auditor.h"
#include "src/workload/generator.h"
#include "src/workload/hospital.h"

/// Like BENCHMARK_MAIN(), but every run also writes a machine-readable
/// BENCH_<name>.json artifact (google-benchmark's JSON reporter) into the
/// working directory, so CI can diff numbers across runs. An explicit
/// --benchmark_out on the command line wins over the default.
#define AUDITDB_BENCH_MAIN(name)                                          \
  int main(int argc, char** argv) {                                       \
    std::vector<char*> args(argv, argv + argc);                           \
    std::string out_flag = "--benchmark_out=BENCH_" #name ".json";        \
    std::string format_flag = "--benchmark_out_format=json";              \
    bool has_out = false;                                                 \
    for (int i = 1; i < argc; ++i) {                                      \
      if (std::string(argv[i]).rfind("--benchmark_out=", 0) == 0) {       \
        has_out = true;                                                   \
      }                                                                   \
    }                                                                     \
    if (!has_out) {                                                       \
      args.push_back(out_flag.data());                                    \
      args.push_back(format_flag.data());                                 \
    }                                                                     \
    int num_args = static_cast<int>(args.size());                         \
    ::benchmark::Initialize(&num_args, args.data());                      \
    if (::benchmark::ReportUnrecognizedArguments(num_args, args.data())) {\
      return 1;                                                           \
    }                                                                     \
    ::benchmark::RunSpecifiedBenchmarks();                                \
    ::benchmark::Shutdown();                                              \
    return 0;                                                             \
  }                                                                       \
  int main(int, char**)

namespace auditdb {
namespace bench {

inline Timestamp Ts(int64_t s) { return Timestamp(s * 1000000); }

/// A ready-to-audit world: populated hospital, attached backlog, and a
/// generated query log.
struct World {
  Database db;
  Backlog backlog;
  QueryLog log;
  workload::HospitalConfig hospital;
  workload::WorkloadConfig workload;
};

/// Builds a world with `patients` rows per table and `queries` logged
/// queries. `sensitive_fraction` controls how many queries touch the
/// audit-relevant columns (the candidate-phase selectivity knob).
inline std::unique_ptr<World> MakeWorld(size_t patients, size_t queries,
                                        double sensitive_fraction = 0.4,
                                        uint64_t seed = 42) {
  auto world = std::make_unique<World>();
  world->backlog.Attach(&world->db);
  world->hospital.num_patients = patients;
  world->hospital.seed = seed;
  auto populated =
      workload::PopulateHospital(&world->db, world->hospital, Ts(1));
  if (!populated.ok()) std::abort();
  world->workload.num_queries = queries;
  world->workload.seed = seed * 7919;
  world->workload.start = Ts(100);
  world->workload.sensitive_fraction = sensitive_fraction;
  auto generated =
      workload::GenerateWorkload(&world->log, world->workload,
                                 world->hospital);
  if (!generated.ok()) std::abort();
  return world;
}

/// The canonical audit expression used across benches: diabetic patients'
/// identity+diagnosis, full-span intervals.
inline std::string CanonicalAudit() {
  return "DURING 1/1/1970 to 2/1/1970 "
         "DATA-INTERVAL 1/1/1970 to 2/1/1970 "
         "AUDIT (name,disease) FROM P-Personal, P-Health "
         "WHERE P-Personal.pid = P-Health.pid AND disease='diabetic'";
}

}  // namespace bench
}  // namespace auditdb

#endif  // AUDITDB_BENCH_BENCH_UTIL_H_
