/// Experiment P3: suspicion-notion comparison.
///
/// The same target data audited under the four canonical notions the
/// unified model expresses (perfect privacy, weak syntactic, semantic,
/// threshold-N), sweeping log size. Reports wall time and the number of
/// flagged queries per notion — the qualitative expectation (perfect ⊇
/// weak ⊇ semantic ⊇ threshold-N in flagged count, with cost dominated by
/// the candidate count each notion admits) is recorded in EXPERIMENTS.md.
///
/// Run: build/bench/bench_notions

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/audit/subsumption.h"

namespace {

using namespace auditdb;

enum class Notion { kPerfect, kWeak, kSemantic, kThreshold10 };

const char* NotionName(Notion n) {
  switch (n) {
    case Notion::kPerfect:
      return "perfect";
    case Notion::kWeak:
      return "weak";
    case Notion::kSemantic:
      return "semantic";
    case Notion::kThreshold10:
      return "threshold10";
  }
  return "?";
}

void BM_Notion(benchmark::State& state) {
  const size_t log_size = static_cast<size_t>(state.range(0));
  const Notion notion = static_cast<Notion>(state.range(1));

  auto world = bench::MakeWorld(/*patients=*/300, log_size);
  auto base = audit::ParseAudit(bench::CanonicalAudit(), bench::Ts(1000000));
  if (!base.ok() || !base->Qualify(world->db.catalog()).ok()) std::abort();

  audit::AuditExpression expr;
  switch (notion) {
    case Notion::kPerfect:
      expr = audit::MakePerfectPrivacy(*base);
      break;
    case Notion::kWeak:
      expr = audit::MakeWeakSyntactic(*base);
      break;
    case Notion::kSemantic:
      expr = audit::MakeSemantic(*base);
      break;
    case Notion::kThreshold10:
      expr = audit::MakeThresholdNotion(*base, audit::Threshold::N(10));
      break;
  }

  audit::Auditor auditor(&world->db, &world->backlog, &world->log);
  audit::AuditOptions options;
  options.minimize_batch = false;

  size_t flagged = 0;
  size_t candidates = 0;
  for (auto _ : state) {
    auto report = auditor.Audit(expr, options);
    if (!report.ok()) std::abort();
    flagged = report->SuspiciousQueryIds().size();
    candidates = report->num_candidates;
    benchmark::DoNotOptimize(report);
  }
  state.SetLabel(NotionName(notion));
  state.counters["flagged"] = static_cast<double>(flagged);
  state.counters["candidates"] = static_cast<double>(candidates);
}

// Args: {log size, notion}.
BENCHMARK(BM_Notion)
    ->Args({500, 0})
    ->Args({500, 1})
    ->Args({500, 2})
    ->Args({500, 3})
    ->Args({2000, 0})
    ->Args({2000, 1})
    ->Args({2000, 2})
    ->Args({2000, 3})
    ->Unit(benchmark::kMillisecond);

// Args: {pairs, profiled}. Pairwise subsumption over a family of notion
// expressions — the expression-library admission loop. The plain overload
// rebuilds the FROM set and granule schemes per call; the profile-carrying
// overload reads them precomputed (what ExpressionLibrary stores per
// member).
void BM_Subsumes(benchmark::State& state) {
  const size_t pairs = static_cast<size_t>(state.range(0));
  const bool profiled = state.range(1) != 0;

  auto world = bench::MakeWorld(/*patients=*/50, /*queries=*/1);
  auto base = audit::ParseAudit(bench::CanonicalAudit(), bench::Ts(1000000));
  if (!base.ok() || !base->Qualify(world->db.catalog()).ok()) std::abort();
  std::vector<audit::AuditExpression> family;
  family.push_back(audit::MakePerfectPrivacy(*base));
  family.push_back(audit::MakeWeakSyntactic(*base));
  family.push_back(audit::MakeSemantic(*base));
  family.push_back(audit::MakeThresholdNotion(*base, audit::Threshold::N(10)));
  std::vector<audit::SubsumptionProfile> profiles;
  for (const auto& e : family) {
    profiles.push_back(audit::SubsumptionProfile::Of(e));
  }

  for (auto _ : state) {
    size_t subsumed = 0;
    for (size_t p = 0; p < pairs; ++p) {
      const size_t i = p % family.size();
      const size_t j = (p / family.size()) % family.size();
      if (profiled) {
        subsumed += audit::Subsumes(family[i], profiles[i], family[j],
                                    profiles[j]);
      } else {
        subsumed += audit::Subsumes(family[i], family[j]);
      }
    }
    benchmark::DoNotOptimize(subsumed);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(pairs));
}
BENCHMARK(BM_Subsumes)
    ->Args({256, 0})
    ->Args({256, 1})
    ->Unit(benchmark::kMicrosecond);

}  // namespace

AUDITDB_BENCH_MAIN(notions);
