/// Mixed read/write sweep for the MVCC read path: writer threads commit
/// mutations while auditor threads run pinned audits of the canonical
/// expression, in two modes per combination —
///
///   versioned   the shipped design: audits pin snapshots and the
///               decision cache keys on per-table version epochs; no
///               lock is shared with writers and no write evicts
///               anything whose tables it didn't touch;
///   wholesale   the pre-MVCC ablation: one global reader/writer lock
///               (audits shared, writes exclusive), global-mutation-
///               count cache keys, and a change listener that evicts
///               the whole cache on every write.
///
/// Reported per combo: audits/s, writes/s, and the decision-cache hit
/// rate. Under the versioned scheme the hit rate stays hot as the
/// write rate grows (the writes touch P-Employ, which the audited
/// expression never reads) AND the writers keep committing; wholesale
/// can only have one of the two — a lone auditor lets writes through
/// but every write evicts the cache, while a saturated auditor pool
/// keeps the cache warm only by starving the writers behind the shared
/// lock. Rows land in BENCH_mixed.json ({"benchmarks": [...]}, the
/// shared artifact shape).
///
/// Usage: bench_mixed [audits-per-thread]   (default 10)

#include <atomic>
#include <chrono>
#include <cstdio>
#include <algorithm>
#include <cstdlib>
#include <deque>
#include <memory>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/audit/audit_index.h"
#include "src/audit/audit_parser.h"

namespace auditdb {
namespace bench {
namespace {

using Clock = std::chrono::steady_clock;

struct MixedRow {
  const char* mode = "";
  size_t writers = 0;
  size_t auditors = 0;
  uint64_t audits = 0;
  uint64_t writes = 0;
  double seconds = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t cow_rows = 0;
  uint64_t cow_bytes = 0;
};

double HitRate(const MixedRow& row) {
  uint64_t total = row.hits + row.misses;
  return total == 0 ? 0.0
                    : static_cast<double>(row.hits) /
                          static_cast<double>(total);
}

/// One (mode, writers, auditors) combination against a fresh world.
/// Auditors run `audits_each` full audits; writers free-run until the
/// auditors finish, so writes/s reflects how much the audit scheme
/// lets them through.
bool RunCombo(bool versioned, size_t writers, size_t auditors,
              int audits_each, MixedRow* row) {
  auto world = MakeWorld(/*patients=*/150, /*queries=*/300);
  audit::DecisionCache cache;
  if (!versioned) {
    // The pre-MVCC server evicted the whole cache on any mutation.
    world->db.AddChangeListener(
        [&cache](const ChangeEvent&) { cache.Invalidate(); });
  }
  audit::Auditor auditor(&world->db, &world->backlog, &world->log);
  auto expr = audit::ParseAudit(CanonicalAudit(), Ts(1000000));
  if (!expr.ok()) return false;

  audit::AuditOptions options;
  options.cache = &cache;
  options.cache_global_state_keys = !versioned;

  std::shared_mutex state_mutex;  // wholesale mode only
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> writes{0};
  std::atomic<bool> failed{false};

  std::vector<std::thread> writer_threads;
  for (size_t w = 0; w < writers; ++w) {
    writer_threads.emplace_back([&, w] {
      int64_t seq = 0;
      // Paced (~2k commits/s per thread) and capped: an unthrottled
      // spin would grow the backlog without bound and the sweep would
      // measure backlog replay, not the locking/caching scheme. The
      // cap only binds in versioned mode — wholesale writers starve
      // behind the audit lock long before reaching it, which is the
      // point of the comparison.
      while (seq < 800 && !stop.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(std::chrono::microseconds(500));
        std::unique_lock<std::shared_mutex> lock(state_mutex,
                                                 std::defer_lock);
        if (!versioned) lock.lock();
        auto tid = world->db.Insert(
            "P-Employ",
            {Value::String("w" + std::to_string(w) + "-" +
                           std::to_string(seq)),
             Value::String("Bench"), Value::Int(12000)},
            Ts(5000 + seq));
        if (!tid.ok()) {
          failed.store(true);
          return;
        }
        ++seq;
        writes.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  auto start = Clock::now();
  std::vector<std::thread> audit_threads;
  std::atomic<uint64_t> audits{0};
  for (size_t a = 0; a < auditors; ++a) {
    audit_threads.emplace_back([&] {
      for (int i = 0; i < audits_each; ++i) {
        std::shared_lock<std::shared_mutex> lock(state_mutex,
                                                 std::defer_lock);
        if (!versioned) lock.lock();
        auto report = auditor.Audit(*expr, options);
        if (!report.ok()) {
          failed.store(true);
          return;
        }
        audits.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : audit_threads) t.join();
  double seconds = std::chrono::duration<double>(Clock::now() - start)
                       .count();
  stop.store(true);
  for (auto& t : writer_threads) t.join();
  if (failed.load()) return false;

  row->mode = versioned ? "versioned" : "wholesale";
  row->writers = writers;
  row->auditors = auditors;
  row->audits = audits.load();
  row->writes = writes.load();
  row->seconds = seconds;
  row->hits = cache.stats()->cache_hits.load();
  row->misses = cache.stats()->cache_misses.load();
  auto table = world->db.GetTable("P-Employ");
  if (table.ok()) {
    row->cow_rows = (*table)->stats().cow_rows.load();
    row->cow_bytes = (*table)->stats().cow_bytes.load();
  }
  return true;
}

bool WriteMixedJson(const std::deque<MixedRow>& rows, const char* path) {
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) return false;
  std::fprintf(out, "{\n  \"benchmarks\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const MixedRow& row = rows[i];
    std::fprintf(
        out,
        "    {\"name\": \"BM_Mixed/%s/writers:%zu/auditors:%zu\", "
        "\"mode\": \"%s\", \"writers\": %zu, \"auditors\": %zu, "
        "\"audits\": %llu, \"writes\": %llu, "
        "\"audits_per_second\": %.1f, \"writes_per_second\": %.0f, "
        "\"cache_hits\": %llu, \"cache_misses\": %llu, "
        "\"cache_hit_rate\": %.3f, "
        "\"cow_rows\": %llu, \"cow_bytes\": %llu}%s\n",
        row.mode, row.writers, row.auditors, row.mode, row.writers,
        row.auditors, static_cast<unsigned long long>(row.audits),
        static_cast<unsigned long long>(row.writes),
        row.seconds > 0 ? static_cast<double>(row.audits) / row.seconds
                        : 0.0,
        row.seconds > 0 ? static_cast<double>(row.writes) / row.seconds
                        : 0.0,
        static_cast<unsigned long long>(row.hits),
        static_cast<unsigned long long>(row.misses), HitRate(row),
        static_cast<unsigned long long>(row.cow_rows),
        static_cast<unsigned long long>(row.cow_bytes),
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  return true;
}

int RunMixed(int audits_each) {
  std::deque<MixedRow> rows;
  std::printf("mode       writers auditors   audits/s    writes/s  "
              "hit-rate  cow-bytes\n");
  for (bool versioned : {true, false}) {
    for (size_t writers : {size_t{0}, size_t{1}, size_t{4}}) {
      for (size_t auditors : {size_t{1}, size_t{4}}) {
        rows.emplace_back();
        MixedRow& row = rows.back();
        if (!RunCombo(versioned, writers, auditors, audits_each, &row)) {
          std::fprintf(stderr, "combo failed: %s w=%zu a=%zu\n",
                       versioned ? "versioned" : "wholesale", writers,
                       auditors);
          return 1;
        }
        std::printf(
            "%-10s %7zu %8zu %10.1f %11.0f %9.3f %10llu\n", row.mode,
            row.writers, row.auditors,
            row.seconds > 0
                ? static_cast<double>(row.audits) / row.seconds
                : 0.0,
            row.seconds > 0
                ? static_cast<double>(row.writes) / row.seconds
                : 0.0,
            HitRate(row),
            static_cast<unsigned long long>(row.cow_bytes));
        std::fflush(stdout);
      }
    }
  }
  // The headline acceptance: with writers present, the versioned scheme
  // must sustain BOTH a hot cache and write throughput at once. The
  // wholesale ablation can fake either one alone — a lone auditor lets
  // writes trickle through (and every one evicts the cache, hit rate
  // ~0), while a full auditor pool holds the shared lock continuously
  // (hit rate looks fine because the starved writers never evict) — so
  // each write combo is compared against its versioned twin on both
  // axes.
  bool ok = true;
  double versioned_hot = 1.0;
  for (const MixedRow& row : rows) {
    if (row.writers == 0 || std::string(row.mode) != "versioned") continue;
    versioned_hot = std::min(versioned_hot, HitRate(row));
    for (const MixedRow& twin : rows) {
      if (std::string(twin.mode) != "wholesale" ||
          twin.writers != row.writers || twin.auditors != row.auditors) {
        continue;
      }
      double row_wps = row.seconds > 0
                           ? static_cast<double>(row.writes) / row.seconds
                           : 0.0;
      double twin_wps =
          twin.seconds > 0 ? static_cast<double>(twin.writes) / twin.seconds
                           : 0.0;
      if (row_wps <= twin_wps) {
        std::fprintf(stderr,
                     "w=%zu a=%zu: versioned writes/s %.0f did not beat "
                     "wholesale %.0f\n",
                     row.writers, row.auditors, row_wps, twin_wps);
        ok = false;
      }
    }
  }
  std::printf("min versioned hit-rate under writes: %.3f "
              "(wholesale pays for any hit rate with starved writers)\n",
              versioned_hot);
  if (!WriteMixedJson(rows, "BENCH_mixed.json")) {
    std::fprintf(stderr, "could not write BENCH_mixed.json\n");
    return 1;
  }
  if (versioned_hot < 0.5) {
    std::fprintf(stderr,
                 "versioned cache went cold under writes (hit rate %.3f)\n",
                 versioned_hot);
    ok = false;
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace auditdb

int main(int argc, char** argv) {
  int audits_each = 10;
  if (argc > 1) audits_each = std::atoi(argv[1]);
  if (audits_each <= 0) audits_each = 10;
  return auditdb::bench::RunMixed(audits_each);
}
