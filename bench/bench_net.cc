/// Experiment N1: network audit serving under loopback load.
///
/// A loopback auditd (in-process AuditServer on an ephemeral port)
/// serves the hospital-fixture world while client threads hammer it:
///
///   1. audit throughput / latency (p50/p95/p99 off the service
///      Histogram) vs concurrent client count — every remote report is
///      checked byte-identical to the serial Auditor's CanonicalString;
///   2. framing overhead vs frame size (padded Health payloads);
///   3. admission policy under overload: a tiny handler queue with
///      kReject sheds RESOURCE_EXHAUSTED to clients, kBlock pauses
///      reads and stalls them — same offered load, different failure
///      mode;
///   4. push delivery latency (docs/wire_protocol.md "Alerting"):
///      subscribers on a THRESHOLD ALL standing expression receive one
///      PUSH per driver query; the sweep measures observe→deliver
///      latency (query dispatched → handler invoked) vs subscriber
///      count and queue depth, and writes the rows to BENCH_push.json
///      ({"benchmarks": [...]}, the shape CI artifact checks expect).
///
///   5. replication overhead (docs/replication.md): an in-process
///      primary plus F bootstrap-synced followers, sweeping
///      followers {1,2} x ack policy {none,quorum,all}; measures
///      ExecuteQuery commit latency (which under quorum/all includes
///      the follower fsync+ack round trip), async catch-up time under
///      ack=none, and checks every follower's audit verdict
///      byte-identical to the primary's. Rows land in BENCH_repl.json.
///
/// Run: build/bench/bench_net [audits-per-client]
///      build/bench/bench_net push [queries-per-combo]   (sweep 4 only)
///      build/bench/bench_net repl [writes-per-combo]    (sweep 5 only)

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <deque>
#include <vector>

#include "bench/bench_util.h"
#include "src/net/client.h"
#include "src/net/server.h"
#include "src/service/metrics.h"

namespace {

using namespace auditdb;
using bench::Ts;
using Clock = std::chrono::steady_clock;

constexpr size_t kPatients = 150;
constexpr size_t kLogSize = 400;

struct LoadResult {
  uint64_t ok = 0;
  uint64_t shed = 0;       // RESOURCE_EXHAUSTED responses
  uint64_t errors = 0;     // anything else
  uint64_t mismatches = 0; // canonical != serial
  double seconds = 0;
  service::Histogram latency;
};

/// `clients` threads each issue `per_client` requests; audits compare
/// against `expected_canonical` (empty = health pings of `pad` bytes).
void RunLoad(const net::AuditServer& server, size_t clients,
             size_t per_client, const std::string& audit_expr,
             const std::string& expected_canonical, size_t pad,
             LoadResult* result) {
  std::atomic<uint64_t> ok{0}, shed{0}, errors{0}, mismatches{0};
  auto start = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      (void)c;
      net::AuditClient client(server.host(), server.port());
      std::string padding(pad, 'x');
      for (size_t i = 0; i < per_client; ++i) {
        auto t0 = Clock::now();
        Status status;
        if (!audit_expr.empty()) {
          auto report = client.Audit(audit_expr, Ts(1000000));
          status = report.ok() ? Status::Ok() : report.status();
          if (report.ok() && report->canonical != expected_canonical) {
            mismatches.fetch_add(1);
          }
        } else {
          auto response = client.RoundTrip(
              net::Message{net::MessageType::kHealthRequest, padding});
          status = response.ok() ? Status::Ok() : response.status();
        }
        uint64_t micros = static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                Clock::now() - t0)
                .count());
        result->latency.Observe(micros);
        if (status.ok()) {
          ok.fetch_add(1);
        } else if (status.code() == StatusCode::kResourceExhausted) {
          shed.fetch_add(1);
        } else {
          errors.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  result->seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  result->ok = ok.load();
  result->shed = shed.load();
  result->errors = errors.load();
  result->mismatches = mismatches.load();
}

void PrintRow(const char* label, const LoadResult& r) {
  uint64_t total = r.ok + r.shed + r.errors;
  std::printf(
      "%-28s %8llu req %9.0f req/s  p50 %6llu us  p95 %6llu us  "
      "p99 %7llu us  shed %5llu  err %3llu  mismatch %llu\n",
      label, static_cast<unsigned long long>(total),
      r.seconds > 0 ? static_cast<double>(total) / r.seconds : 0.0,
      static_cast<unsigned long long>(r.latency.QuantileUpperBound(0.5)),
      static_cast<unsigned long long>(r.latency.QuantileUpperBound(0.95)),
      static_cast<unsigned long long>(r.latency.QuantileUpperBound(0.99)),
      static_cast<unsigned long long>(r.shed),
      static_cast<unsigned long long>(r.errors),
      static_cast<unsigned long long>(r.mismatches));
}

struct ServerStack {
  std::unique_ptr<bench::World> world;
  std::unique_ptr<service::AuditService> service;
  std::unique_ptr<net::AuditServer> server;
};

ServerStack MakeServer(service::AdmissionPolicy admission,
                       size_t handler_threads, size_t handler_queue) {
  ServerStack stack;
  stack.world = bench::MakeWorld(kPatients, kLogSize);
  service::AuditServiceOptions service_options;
  service_options.pool.num_threads = 4;
  stack.service = std::make_unique<service::AuditService>(
      &stack.world->db, &stack.world->backlog, &stack.world->log,
      service_options);
  net::AuditServerOptions server_options;
  server_options.handlers.num_threads = handler_threads;
  server_options.handlers.queue_capacity = handler_queue;
  server_options.handlers.admission = admission;
  stack.server = std::make_unique<net::AuditServer>(
      stack.service.get(), &stack.world->db, &stack.world->backlog,
      &stack.world->log, server_options);
  if (!stack.server->Start().ok()) std::abort();
  return stack;
}

/// One push-sweep configuration: `subscribers` clients on the same
/// THRESHOLD ALL standing expression, `queries` distinct-pid driver
/// queries (exactly one push per query per subscription), latency
/// measured from just before the driver dispatches the query to the
/// moment the subscriber's handler runs.
struct PushRow {
  size_t subscribers = 0;
  size_t queue_depth = 0;
  uint64_t delivered = 0;
  uint64_t expected = 0;
  double seconds = 0;
  service::Histogram latency;
};

void RunPushSweep(size_t subscribers, size_t queue_depth, size_t queries,
                  PushRow* row) {
  row->subscribers = subscribers;
  row->queue_depth = queue_depth;
  row->expected = static_cast<uint64_t>(subscribers * queries);

  auto world = bench::MakeWorld(queries + 50, /*queries=*/0);
  service::AuditServiceOptions service_options;
  service_options.pool.num_threads = 4;
  auto service = std::make_unique<service::AuditService>(
      &world->db, &world->backlog, &world->log, service_options);
  net::AuditServerOptions server_options;
  server_options.push_queue_depth = queue_depth;
  auto server = std::make_unique<net::AuditServer>(
      service.get(), &world->db, &world->backlog, &world->log,
      server_options);
  if (!server->Start().ok()) std::abort();

  // Every distinct-pid query moves the expression's rank by one fact:
  // a deterministic one-push-per-query workload.
  const std::string expr =
      "DURING 1/1/1970 to 1/1/1990 THRESHOLD ALL "
      "AUDIT (name) FROM P-Personal";
  // sent[q] is written by the driver before query q is dispatched and
  // read by receiver threads only after the server echoes the push the
  // query generated — ordered through the round trip.
  std::vector<Clock::time_point> sent(queries + 1);
  std::atomic<uint64_t> delivered{0};
  std::vector<std::unique_ptr<net::AuditClient>> clients;
  for (size_t s = 0; s < subscribers; ++s) {
    auto client =
        std::make_unique<net::AuditClient>(server->host(), server->port());
    auto sub = client->Subscribe(
        expr, Ts(1), [&, queries](const net::PushEvent& event) {
          if (event.kind == net::PushKind::kGap ||
              event.seq > queries) {
            return;
          }
          uint64_t micros = static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::microseconds>(
                  Clock::now() - sent[event.seq])
                  .count());
          row->latency.Observe(micros);
          delivered.fetch_add(1);
        });
    if (!sub.ok()) std::abort();
    clients.push_back(std::move(client));
  }

  net::AuditClient driver(server->host(), server->port());
  auto start = Clock::now();
  for (size_t q = 1; q <= queries; ++q) {
    sent[q] = Clock::now();
    auto result = driver.ExecuteQuery(
        "SELECT name FROM P-Personal WHERE pid = 'p" + std::to_string(q) +
            "'",
        "bench", "driver", "load", Timestamp(2000000 + (int64_t)q));
    if (!result.ok()) std::abort();
  }
  auto deadline = Clock::now() + std::chrono::seconds(30);
  while (delivered.load() < row->expected && Clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  row->seconds = std::chrono::duration<double>(Clock::now() - start).count();
  row->delivered = delivered.load();
  for (auto& client : clients) client->Close();
  server->Shutdown();
}

/// Writes the sweep rows as BENCH_push.json in the working directory —
/// hand-rolled, but with the {"benchmarks": [...]} shape the other
/// BENCH_*.json artifacts (google-benchmark JSON) share, so the same
/// CI checks apply.
bool WritePushJson(const std::deque<PushRow>& rows, const char* path) {
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) return false;
  std::fprintf(out, "{\n  \"benchmarks\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const PushRow& row = rows[i];
    double per_sec = row.seconds > 0
                         ? static_cast<double>(row.delivered) / row.seconds
                         : 0.0;
    std::fprintf(
        out,
        "    {\"name\": \"BM_PushDeliver/subs:%zu/depth:%zu\", "
        "\"subscribers\": %zu, \"queue_depth\": %zu, "
        "\"delivered\": %llu, \"expected\": %llu, "
        "\"p50_us\": %llu, \"p99_us\": %llu, "
        "\"pushes_per_second\": %.0f}%s\n",
        row.subscribers, row.queue_depth, row.subscribers,
        row.queue_depth, static_cast<unsigned long long>(row.delivered),
        static_cast<unsigned long long>(row.expected),
        static_cast<unsigned long long>(
            row.latency.QuantileUpperBound(0.5)),
        static_cast<unsigned long long>(
            row.latency.QuantileUpperBound(0.99)),
        per_sec, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  return true;
}

/// Sweep 4: push delivery latency vs subscriber count and queue depth.
/// Returns the number of configurations that lost pushes (must be 0:
/// fast local subscribers should never overflow even a depth-8 queue).
uint64_t RunPushSection(size_t queries) {
  std::printf("-- push delivery latency (THRESHOLD ALL expression, "
              "%zu queries per combo) --\n",
              queries);
  std::deque<PushRow> rows;
  uint64_t lost = 0;
  for (size_t subscribers : {1, 4, 8}) {
    for (size_t depth : {8u, 64u}) {
      rows.emplace_back();
      PushRow& row = rows.back();
      RunPushSweep(subscribers, depth, queries, &row);
      std::printf(
          "push x%zu subs depth %-3zu %8llu/%llu delivered  "
          "%9.0f push/s  p50 %6llu us  p99 %7llu us\n",
          row.subscribers, row.queue_depth,
          static_cast<unsigned long long>(row.delivered),
          static_cast<unsigned long long>(row.expected),
          row.seconds > 0
              ? static_cast<double>(row.delivered) / row.seconds
              : 0.0,
          static_cast<unsigned long long>(
              row.latency.QuantileUpperBound(0.5)),
          static_cast<unsigned long long>(
              row.latency.QuantileUpperBound(0.99)));
      if (row.delivered != row.expected) ++lost;
    }
  }
  if (!WritePushJson(rows, "BENCH_push.json")) {
    std::fprintf(stderr, "could not write BENCH_push.json\n");
    return lost + 1;
  }
  std::printf("wrote BENCH_push.json (%zu rows)\n", rows.size());
  return lost;
}

/// One empty replica node: bootstrap-syncs the primary's fixture over
/// the REPLICATE stream (bench::MakeWorld always populates the hospital,
/// so replicas build their stores by hand like a fresh auditd would).
struct ReplicaNode {
  Database db;
  Backlog backlog;
  QueryLog log;
  std::unique_ptr<service::AuditService> service;
  std::unique_ptr<net::AuditServer> server;

  explicit ReplicaNode(const std::string& upstream) {
    backlog.Attach(&db);
    service = std::make_unique<service::AuditService>(&db, &backlog, &log);
    net::AuditServerOptions options;
    options.replicate_from = upstream;
    options.repl_ack_timeout = std::chrono::milliseconds(10000);
    options.replication = true;
    server = std::make_unique<net::AuditServer>(service.get(), &db,
                                                &backlog, &log, options);
    if (!server->Start().ok()) std::abort();
  }
};

/// One replication-sweep configuration: `followers` replicas behind one
/// primary running ack policy `ack`, `writes` sequential ExecuteQuery
/// commits. Commit latency is measured at the client; under
/// quorum/all it includes the follower round trip by construction.
struct ReplRow {
  size_t followers = 0;
  net::ReplAckPolicy ack = net::ReplAckPolicy::kNone;
  uint64_t writes = 0;
  double seconds = 0;
  double catchup_ms = 0;  // end of writes -> last follower caught up
  uint64_t errors = 0;
  uint64_t mismatches = 0;  // follower verdict != primary verdict
  service::Histogram latency;
};

void RunReplSweep(size_t followers, net::ReplAckPolicy ack, size_t writes,
                  ReplRow* row) {
  row->followers = followers;
  row->ack = ack;
  row->writes = writes;

  auto world = bench::MakeWorld(kPatients, /*queries=*/0);
  service::AuditServiceOptions service_options;
  service_options.pool.num_threads = 4;
  auto service = std::make_unique<service::AuditService>(
      &world->db, &world->backlog, &world->log, service_options);
  net::AuditServerOptions server_options;
  server_options.repl_ack = ack;
  server_options.repl_ack_timeout = std::chrono::milliseconds(10000);
  server_options.replication = true;
  auto server = std::make_unique<net::AuditServer>(
      service.get(), &world->db, &world->backlog, &world->log,
      server_options);
  if (!server->Start().ok()) std::abort();
  std::string upstream =
      server->host() + ":" + std::to_string(server->port());

  std::vector<std::unique_ptr<ReplicaNode>> replicas;
  for (size_t f = 0; f < followers; ++f) {
    replicas.push_back(std::make_unique<ReplicaNode>(upstream));
  }
  auto registered_by = Clock::now() + std::chrono::seconds(20);
  while (server->follower_count() < followers &&
         Clock::now() < registered_by) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  if (server->follower_count() < followers) std::abort();

  net::AuditClient driver(server->host(), server->port());
  auto start = Clock::now();
  for (size_t i = 0; i < writes; ++i) {
    auto t0 = Clock::now();
    auto result = driver.ExecuteQuery(
        "SELECT name FROM P-Personal WHERE pid = 'p" +
            std::to_string(i % kPatients) + "'",
        "bench", "driver", "load", Timestamp(2000000 + (int64_t)i));
    row->latency.Observe(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                              t0)
            .count()));
    if (!result.ok()) ++row->errors;
  }
  auto writes_done = Clock::now();
  row->seconds = std::chrono::duration<double>(writes_done - start).count();

  // Under ack=none shipping is fire-and-forget: the catch-up gap is the
  // quantity of interest. Under quorum/all it should be ~0 for the
  // acked majority.
  auto caught_up_by = writes_done + std::chrono::seconds(30);
  for (auto& replica : replicas) {
    while (replica->server->applied_log_id() <
               static_cast<int64_t>(writes) &&
           Clock::now() < caught_up_by) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  row->catchup_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - writes_done)
          .count();

  // The replication contract, checked end to end: every follower's
  // audit verdict is byte-identical to the primary's.
  auto on_primary = driver.Audit(bench::CanonicalAudit(), Ts(1000000));
  if (!on_primary.ok()) {
    ++row->errors;
  } else {
    for (auto& replica : replicas) {
      net::AuditClient reader(replica->server->host(),
                              replica->server->port());
      auto on_replica = reader.Audit(bench::CanonicalAudit(), Ts(1000000));
      if (!on_replica.ok() ||
          on_replica->canonical != on_primary->canonical) {
        ++row->mismatches;
      }
    }
  }

  for (auto& replica : replicas) replica->server->Shutdown();
  server->Shutdown();
}

/// Writes the sweep rows as BENCH_repl.json — same {"benchmarks": [...]}
/// shape as BENCH_push.json so the CI artifact checks apply unchanged.
bool WriteReplJson(const std::deque<ReplRow>& rows, const char* path) {
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) return false;
  std::fprintf(out, "{\n  \"benchmarks\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const ReplRow& row = rows[i];
    double per_sec = row.seconds > 0
                         ? static_cast<double>(row.writes) / row.seconds
                         : 0.0;
    std::fprintf(
        out,
        "    {\"name\": \"BM_ReplCommit/followers:%zu/ack:%s\", "
        "\"followers\": %zu, \"ack\": \"%s\", \"writes\": %llu, "
        "\"p50_us\": %llu, \"p99_us\": %llu, "
        "\"writes_per_second\": %.0f, \"catchup_ms\": %.1f, "
        "\"errors\": %llu, \"verdict_mismatches\": %llu}%s\n",
        row.followers, net::ReplAckPolicyName(row.ack), row.followers,
        net::ReplAckPolicyName(row.ack),
        static_cast<unsigned long long>(row.writes),
        static_cast<unsigned long long>(
            row.latency.QuantileUpperBound(0.5)),
        static_cast<unsigned long long>(
            row.latency.QuantileUpperBound(0.99)),
        per_sec, row.catchup_ms,
        static_cast<unsigned long long>(row.errors),
        static_cast<unsigned long long>(row.mismatches),
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  return true;
}

/// Sweep 5: replication overhead vs follower count and ack policy.
/// Returns the number of rows with errors or verdict mismatches.
uint64_t RunReplSection(size_t writes) {
  std::printf("-- replication overhead (hospital fixture, %zu writes "
              "per combo) --\n",
              writes);
  std::deque<ReplRow> rows;
  uint64_t bad = 0;
  for (size_t followers : {1, 2}) {
    for (auto ack : {net::ReplAckPolicy::kNone, net::ReplAckPolicy::kQuorum,
                     net::ReplAckPolicy::kAll}) {
      rows.emplace_back();
      ReplRow& row = rows.back();
      RunReplSweep(followers, ack, writes, &row);
      std::printf(
          "repl x%zu followers ack=%-6s %8llu writes  %9.0f w/s  "
          "p50 %6llu us  p99 %7llu us  catchup %6.1f ms  err %llu  "
          "mismatch %llu\n",
          row.followers, net::ReplAckPolicyName(row.ack),
          static_cast<unsigned long long>(row.writes),
          row.seconds > 0
              ? static_cast<double>(row.writes) / row.seconds
              : 0.0,
          static_cast<unsigned long long>(
              row.latency.QuantileUpperBound(0.5)),
          static_cast<unsigned long long>(
              row.latency.QuantileUpperBound(0.99)),
          row.catchup_ms, static_cast<unsigned long long>(row.errors),
          static_cast<unsigned long long>(row.mismatches));
      if (row.errors != 0 || row.mismatches != 0) ++bad;
    }
  }
  if (!WriteReplJson(rows, "BENCH_repl.json")) {
    std::fprintf(stderr, "could not write BENCH_repl.json\n");
    return bad + 1;
  }
  std::printf("wrote BENCH_repl.json (%zu rows)\n", rows.size());
  return bad;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "repl") {
    size_t writes =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 200;
    uint64_t bad = RunReplSection(writes);
    std::printf("\nfollower verdicts byte-identical to the primary: %s\n",
                bad == 0 ? "yes" : "NO (bug!)");
    return bad == 0 ? 0 : 1;
  }
  if (argc > 1 && std::string(argv[1]) == "push") {
    size_t queries =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 200;
    uint64_t lost = RunPushSection(queries);
    std::printf("\npush delivery lossless: %s\n",
                lost == 0 ? "yes" : "NO (bug!)");
    return lost == 0 ? 0 : 1;
  }
  size_t per_client = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20;
  std::printf("bench_net: %zu patients, %zu logged queries, "
              "%zu requests per client\n\n",
              kPatients, kLogSize, per_client);

  // Serial ground truth for the identity checks.
  auto reference = bench::MakeWorld(kPatients, kLogSize);
  audit::Auditor auditor(&reference->db, &reference->backlog,
                         &reference->log);
  auto serial = auditor.Audit(bench::CanonicalAudit(), Ts(1000000));
  if (!serial.ok()) {
    std::fprintf(stderr, "%s\n", serial.status().ToString().c_str());
    return 1;
  }
  std::string expected = serial->CanonicalString();
  uint64_t total_mismatches = 0;

  std::printf("-- audit load vs client count (handlers=4, queue=64, "
              "block) --\n");
  for (size_t clients : {1, 2, 4, 8, 16}) {
    auto stack =
        MakeServer(service::AdmissionPolicy::kBlock, 4, 64);
    LoadResult result;
    RunLoad(*stack.server, clients, per_client, bench::CanonicalAudit(),
            expected, 0, &result);
    char label[64];
    std::snprintf(label, sizeof(label), "audit x%zu clients", clients);
    PrintRow(label, result);
    total_mismatches += result.mismatches + result.errors;
    stack.server->Shutdown();
  }

  std::printf("\n-- framing overhead vs frame size (health pings, "
              "8 clients) --\n");
  for (size_t pad : {64u, 4096u, 65536u, 524288u}) {
    auto stack = MakeServer(service::AdmissionPolicy::kBlock, 4, 64);
    LoadResult result;
    RunLoad(*stack.server, 8, per_client * 10, "", "", pad, &result);
    char label[64];
    std::snprintf(label, sizeof(label), "health %zuB frames", pad);
    PrintRow(label, result);
    total_mismatches += result.errors;
    stack.server->Shutdown();
  }

  std::printf("\n-- admission policy under overload (handlers=1, "
              "queue=2, 16 clients) --\n");
  for (auto admission : {service::AdmissionPolicy::kReject,
                         service::AdmissionPolicy::kBlock}) {
    auto stack = MakeServer(admission, 1, 2);
    LoadResult result;
    RunLoad(*stack.server, 16, per_client, bench::CanonicalAudit(),
            expected, 0, &result);
    PrintRow(admission == service::AdmissionPolicy::kReject
                 ? "overload, reject (sheds)"
                 : "overload, block (stalls)",
             result);
    total_mismatches += result.mismatches;
    stack.server->Shutdown();
  }

  std::printf("\n");
  total_mismatches += RunPushSection(per_client * 10);

  std::printf("\nremote reports byte-identical to serial Auditor: %s\n",
              total_mismatches == 0 ? "yes" : "NO (bug!)");
  return total_mismatches == 0 ? 0 : 1;
}
