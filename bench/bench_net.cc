/// Experiment N1: network audit serving under loopback load.
///
/// A loopback auditd (in-process AuditServer on an ephemeral port)
/// serves the hospital-fixture world while client threads hammer it:
///
///   1. audit throughput / latency (p50/p95/p99 off the service
///      Histogram) vs concurrent client count — every remote report is
///      checked byte-identical to the serial Auditor's CanonicalString;
///   2. framing overhead vs frame size (padded Health payloads);
///   3. admission policy under overload: a tiny handler queue with
///      kReject sheds RESOURCE_EXHAUSTED to clients, kBlock pauses
///      reads and stalls them — same offered load, different failure
///      mode.
///
/// Run: build/bench/bench_net [audits-per-client]

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/net/client.h"
#include "src/net/server.h"
#include "src/service/metrics.h"

namespace {

using namespace auditdb;
using bench::Ts;
using Clock = std::chrono::steady_clock;

constexpr size_t kPatients = 150;
constexpr size_t kLogSize = 400;

struct LoadResult {
  uint64_t ok = 0;
  uint64_t shed = 0;       // RESOURCE_EXHAUSTED responses
  uint64_t errors = 0;     // anything else
  uint64_t mismatches = 0; // canonical != serial
  double seconds = 0;
  service::Histogram latency;
};

/// `clients` threads each issue `per_client` requests; audits compare
/// against `expected_canonical` (empty = health pings of `pad` bytes).
void RunLoad(const net::AuditServer& server, size_t clients,
             size_t per_client, const std::string& audit_expr,
             const std::string& expected_canonical, size_t pad,
             LoadResult* result) {
  std::atomic<uint64_t> ok{0}, shed{0}, errors{0}, mismatches{0};
  auto start = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      (void)c;
      net::AuditClient client(server.host(), server.port());
      std::string padding(pad, 'x');
      for (size_t i = 0; i < per_client; ++i) {
        auto t0 = Clock::now();
        Status status;
        if (!audit_expr.empty()) {
          auto report = client.Audit(audit_expr, Ts(1000000));
          status = report.ok() ? Status::Ok() : report.status();
          if (report.ok() && report->canonical != expected_canonical) {
            mismatches.fetch_add(1);
          }
        } else {
          auto response = client.RoundTrip(
              net::Message{net::MessageType::kHealthRequest, padding});
          status = response.ok() ? Status::Ok() : response.status();
        }
        uint64_t micros = static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                Clock::now() - t0)
                .count());
        result->latency.Observe(micros);
        if (status.ok()) {
          ok.fetch_add(1);
        } else if (status.code() == StatusCode::kResourceExhausted) {
          shed.fetch_add(1);
        } else {
          errors.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  result->seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  result->ok = ok.load();
  result->shed = shed.load();
  result->errors = errors.load();
  result->mismatches = mismatches.load();
}

void PrintRow(const char* label, const LoadResult& r) {
  uint64_t total = r.ok + r.shed + r.errors;
  std::printf(
      "%-28s %8llu req %9.0f req/s  p50 %6llu us  p95 %6llu us  "
      "p99 %7llu us  shed %5llu  err %3llu  mismatch %llu\n",
      label, static_cast<unsigned long long>(total),
      r.seconds > 0 ? static_cast<double>(total) / r.seconds : 0.0,
      static_cast<unsigned long long>(r.latency.QuantileUpperBound(0.5)),
      static_cast<unsigned long long>(r.latency.QuantileUpperBound(0.95)),
      static_cast<unsigned long long>(r.latency.QuantileUpperBound(0.99)),
      static_cast<unsigned long long>(r.shed),
      static_cast<unsigned long long>(r.errors),
      static_cast<unsigned long long>(r.mismatches));
}

struct ServerStack {
  std::unique_ptr<bench::World> world;
  std::unique_ptr<service::AuditService> service;
  std::unique_ptr<net::AuditServer> server;
};

ServerStack MakeServer(service::AdmissionPolicy admission,
                       size_t handler_threads, size_t handler_queue) {
  ServerStack stack;
  stack.world = bench::MakeWorld(kPatients, kLogSize);
  service::AuditServiceOptions service_options;
  service_options.pool.num_threads = 4;
  stack.service = std::make_unique<service::AuditService>(
      &stack.world->db, &stack.world->backlog, &stack.world->log,
      service_options);
  net::AuditServerOptions server_options;
  server_options.handlers.num_threads = handler_threads;
  server_options.handlers.queue_capacity = handler_queue;
  server_options.handlers.admission = admission;
  stack.server = std::make_unique<net::AuditServer>(
      stack.service.get(), &stack.world->db, &stack.world->backlog,
      &stack.world->log, server_options);
  if (!stack.server->Start().ok()) std::abort();
  return stack;
}

}  // namespace

int main(int argc, char** argv) {
  size_t per_client = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20;
  std::printf("bench_net: %zu patients, %zu logged queries, "
              "%zu requests per client\n\n",
              kPatients, kLogSize, per_client);

  // Serial ground truth for the identity checks.
  auto reference = bench::MakeWorld(kPatients, kLogSize);
  audit::Auditor auditor(&reference->db, &reference->backlog,
                         &reference->log);
  auto serial = auditor.Audit(bench::CanonicalAudit(), Ts(1000000));
  if (!serial.ok()) {
    std::fprintf(stderr, "%s\n", serial.status().ToString().c_str());
    return 1;
  }
  std::string expected = serial->CanonicalString();
  uint64_t total_mismatches = 0;

  std::printf("-- audit load vs client count (handlers=4, queue=64, "
              "block) --\n");
  for (size_t clients : {1, 2, 4, 8, 16}) {
    auto stack =
        MakeServer(service::AdmissionPolicy::kBlock, 4, 64);
    LoadResult result;
    RunLoad(*stack.server, clients, per_client, bench::CanonicalAudit(),
            expected, 0, &result);
    char label[64];
    std::snprintf(label, sizeof(label), "audit x%zu clients", clients);
    PrintRow(label, result);
    total_mismatches += result.mismatches + result.errors;
    stack.server->Shutdown();
  }

  std::printf("\n-- framing overhead vs frame size (health pings, "
              "8 clients) --\n");
  for (size_t pad : {64u, 4096u, 65536u, 524288u}) {
    auto stack = MakeServer(service::AdmissionPolicy::kBlock, 4, 64);
    LoadResult result;
    RunLoad(*stack.server, 8, per_client * 10, "", "", pad, &result);
    char label[64];
    std::snprintf(label, sizeof(label), "health %zuB frames", pad);
    PrintRow(label, result);
    total_mismatches += result.errors;
    stack.server->Shutdown();
  }

  std::printf("\n-- admission policy under overload (handlers=1, "
              "queue=2, 16 clients) --\n");
  for (auto admission : {service::AdmissionPolicy::kReject,
                         service::AdmissionPolicy::kBlock}) {
    auto stack = MakeServer(admission, 1, 2);
    LoadResult result;
    RunLoad(*stack.server, 16, per_client, bench::CanonicalAudit(),
            expected, 0, &result);
    PrintRow(admission == service::AdmissionPolicy::kReject
                 ? "overload, reject (sheds)"
                 : "overload, block (stalls)",
             result);
    total_mismatches += result.mismatches;
    stack.server->Shutdown();
  }

  std::printf("\nremote reports byte-identical to serial Auditor: %s\n",
              total_mismatches == 0 ? "yes" : "NO (bug!)");
  return total_mismatches == 0 ? 0 : 1;
}
