/// Experiment P9 (extension — the paper's future work): online auditing.
///
/// Cost of screening one incoming query against a growing set of
/// standing audit expressions, and of the target-view rebuild triggered
/// by data changes; plus offline-equivalent throughput (screen a whole
/// log online vs audit it offline).
///
/// Run: build/bench/bench_online

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/audit/online.h"

namespace {

using namespace auditdb;
using bench::Ts;

std::string StandingExpr(size_t i) {
  switch (i % 4) {
    case 0:
      return "AUDIT (name,disease) FROM P-Personal, P-Health "
             "WHERE P-Personal.pid = P-Health.pid AND disease='diabetic'";
    case 1:
      return "AUDIT (salary) FROM P-Employ WHERE salary > 30000";
    case 2:
      return "AUDIT [name,zipcode] FROM P-Personal WHERE age < 40";
    default:
      return "THRESHOLD 5 AUDIT (name,disease) FROM P-Personal, P-Health "
             "WHERE P-Personal.pid = P-Health.pid";
  }
}

/// Screening latency vs number of standing expressions.
void BM_ObserveLatency(benchmark::State& state) {
  const size_t expressions = static_cast<size_t>(state.range(0));
  auto world = bench::MakeWorld(/*patients=*/300, /*queries=*/64);
  audit::OnlineAuditor online(&world->db);
  for (size_t i = 0; i < expressions; ++i) {
    auto expr = audit::ParseAudit(
        "DURING 1/1/1970 to 2/1/1970 " + StandingExpr(i), Ts(1000000));
    if (!expr.ok()) std::abort();
    if (!online.AddExpression(*expr).ok()) std::abort();
  }
  size_t next = 0;
  const QueryLog& entries = world->log;
  for (auto _ : state) {
    auto screenings = online.Observe(entries.Entry(next % entries.size()));
    if (!screenings.ok()) std::abort();
    benchmark::DoNotOptimize(screenings);
    ++next;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ObserveLatency)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Unit(benchmark::kMicrosecond);

/// Rebuild cost when the data changes between observations.
void BM_ObserveWithChurn(benchmark::State& state) {
  const bool churn = state.range(0) != 0;
  auto world = bench::MakeWorld(/*patients=*/300, /*queries=*/64);
  audit::OnlineAuditor online(&world->db);
  auto expr = audit::ParseAudit(
      "DURING 1/1/1970 to 2/1/1970 " + StandingExpr(0), Ts(1000000));
  if (!expr.ok() || !online.AddExpression(*expr).ok()) std::abort();
  size_t next = 0;
  int64_t t = 100000;
  const QueryLog& entries = world->log;
  for (auto _ : state) {
    if (churn) {
      auto status = world->db.UpdateColumn(
          "P-Health", static_cast<Tid>(1 + next % 300), "ward",
          Value::String("W1"), Ts(t++));
      if (!status.ok()) std::abort();
    }
    auto screenings = online.Observe(entries.Entry(next % entries.size()));
    if (!screenings.ok()) std::abort();
    ++next;
  }
  state.SetLabel(churn ? "update-before-every-query" : "static-data");
}
BENCHMARK(BM_ObserveWithChurn)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMicrosecond);

/// Whole-log comparison: online screening vs offline batch audit.
void BM_OnlineWholeLog(benchmark::State& state) {
  const size_t log_size = static_cast<size_t>(state.range(0));
  auto world = bench::MakeWorld(/*patients=*/300, log_size);
  auto expr = audit::ParseAudit(bench::CanonicalAudit(), Ts(1000000));
  if (!expr.ok()) std::abort();
  for (auto _ : state) {
    audit::OnlineAuditor online(&world->db);
    if (!online.AddExpression(*expr).ok()) std::abort();
    for (size_t i = 0; i < world->log.size(); ++i) {
      auto screenings = online.Observe(world->log.Entry(i));
      if (!screenings.ok()) std::abort();
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(log_size));
}
BENCHMARK(BM_OnlineWholeLog)
    ->Arg(500)
    ->Arg(2000)
    ->Unit(benchmark::kMillisecond);

void BM_OfflineWholeLog(benchmark::State& state) {
  const size_t log_size = static_cast<size_t>(state.range(0));
  auto world = bench::MakeWorld(/*patients=*/300, log_size);
  audit::Auditor auditor(&world->db, &world->backlog, &world->log);
  audit::AuditOptions options;
  options.per_query_verdicts = false;
  options.minimize_batch = false;
  for (auto _ : state) {
    auto report = auditor.Audit(bench::CanonicalAudit(), Ts(1000000),
                                options);
    if (!report.ok()) std::abort();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(log_size));
}
BENCHMARK(BM_OfflineWholeLog)
    ->Arg(500)
    ->Arg(2000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

AUDITDB_BENCH_MAIN(online);
