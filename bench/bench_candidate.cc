/// Experiment P1: data-independent (static) candidate filtering.
///
/// Measures the throughput of the static phase over the query log and
/// reports its selectivity (candidates kept / queries seen), sweeping log
/// size and the workload's sensitive fraction, with the satisfiability
/// pruning on and off (ablation: attribute-only filter vs full filter).
///
/// Run: build/bench/bench_candidate

#include <benchmark/benchmark.h>

#include <functional>

#include "bench/bench_util.h"
#include "src/audit/audit_index.h"
#include "src/audit/candidate.h"
#include "src/expr/satisfiability.h"
#include "src/sql/query_shape.h"

namespace {

using namespace auditdb;
using bench::MakeWorld;

void BM_StaticFilter(benchmark::State& state) {
  const size_t log_size = static_cast<size_t>(state.range(0));
  const bool use_sat = state.range(1) != 0;
  const double sensitive = static_cast<double>(state.range(2)) / 100.0;

  auto world = MakeWorld(/*patients=*/200, log_size, sensitive);
  auto expr = audit::ParseAudit(bench::CanonicalAudit(), bench::Ts(1000000));
  if (!expr.ok() || !expr->Qualify(world->db.catalog()).ok()) std::abort();

  // Pre-parse the log once: this phase benchmarks the filter itself.
  std::vector<sql::SelectStatement> statements;
  for (size_t i = 0; i < world->log.size(); ++i) {
    auto stmt = sql::ParseSelect(world->log.Entry(i).sql);
    if (!stmt.ok()) std::abort();
    statements.push_back(std::move(*stmt));
  }

  audit::CandidateOptions options;
  options.use_satisfiability = use_sat;
  size_t kept = 0;
  for (auto _ : state) {
    kept = 0;
    for (const auto& stmt : statements) {
      auto candidate =
          audit::IsBatchCandidate(stmt, *expr, world->db.catalog(), options);
      if (candidate.ok() && *candidate) ++kept;
    }
    benchmark::DoNotOptimize(kept);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(log_size));
  state.counters["selectivity"] =
      static_cast<double>(kept) / static_cast<double>(log_size);
}

// Args: {log size, satisfiability on/off, sensitive_fraction * 100}.
BENCHMARK(BM_StaticFilter)
    ->Args({1000, 1, 40})
    ->Args({5000, 1, 40})
    ->Args({20000, 1, 40})
    ->Args({1000, 0, 40})
    ->Args({5000, 0, 40})
    ->Args({20000, 0, 40})
    ->Args({5000, 1, 10})
    ->Args({5000, 1, 80})
    ->Unit(benchmark::kMillisecond);

/// The static filter through the decision cache: the first pass over the
/// log populates it, every timed pass is answered from memoized
/// decisions (the serving-stack pattern of re-auditing an unchanged
/// store). Compare against BM_StaticFilter for the hit-path speedup.
void BM_StaticFilterCached(benchmark::State& state) {
  const size_t log_size = static_cast<size_t>(state.range(0));

  auto world = MakeWorld(/*patients=*/200, log_size, /*sensitive=*/0.4);
  auto expr = audit::ParseAudit(bench::CanonicalAudit(), bench::Ts(1000000));
  if (!expr.ok() || !expr->Qualify(world->db.catalog()).ok()) std::abort();
  const uint64_t expr_hash = std::hash<std::string>{}(expr->ToString());

  std::vector<sql::SelectStatement> statements;
  std::vector<sql::QueryShape> keys;
  for (size_t i = 0; i < world->log.size(); ++i) {
    const auto& entry = world->log.Entry(i);
    auto stmt = sql::ParseSelect(entry.sql);
    if (!stmt.ok()) std::abort();
    statements.push_back(std::move(*stmt));
    keys.push_back(sql::ComputeQueryShape(entry.sql));
  }

  audit::DecisionCacheOptions cache_options;
  cache_options.max_decision_entries = log_size + 1;
  audit::DecisionCache cache(cache_options);
  size_t kept = 0;
  for (auto _ : state) {
    kept = 0;
    for (size_t i = 0; i < statements.size(); ++i) {
      auto candidate = cache.BatchCandidate(keys[i], expr_hash, 0,
                                            statements[i], *expr,
                                            world->db.catalog(),
                                            audit::CandidateOptions{});
      if (candidate.ok() && *candidate) ++kept;
    }
    benchmark::DoNotOptimize(kept);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(log_size));
  state.counters["hit_rate"] =
      static_cast<double>(cache.stats()->cache_hits.load()) /
      static_cast<double>(cache.stats()->cache_hits.load() +
                          cache.stats()->cache_misses.load());
}
BENCHMARK(BM_StaticFilterCached)
    ->Arg(1000)
    ->Arg(5000)
    ->Arg(20000)
    ->Unit(benchmark::kMillisecond);

/// Cost of one satisfiability check in isolation, by predicate size.
void BM_SatisfiabilityCheck(benchmark::State& state) {
  const int conjuncts = static_cast<int>(state.range(0));
  std::string text = "P-Personal.age > 10";
  for (int i = 1; i < conjuncts; ++i) {
    text += " AND P-Personal.age < " + std::to_string(100 + i);
  }
  auto query_pred = sql::ParseExpression(text);
  auto audit_pred = sql::ParseExpression(
      "P-Personal.zipcode = '145568' AND P-Personal.age >= 20");
  if (!query_pred.ok() || !audit_pred.ok()) std::abort();
  for (auto _ : state) {
    bool sat = MaybeSatisfiable(query_pred->get(), audit_pred->get());
    benchmark::DoNotOptimize(sat);
  }
}
BENCHMARK(BM_SatisfiabilityCheck)->Arg(2)->Arg(8)->Arg(32)->Arg(128);

}  // namespace

AUDITDB_BENCH_MAIN(candidate);
