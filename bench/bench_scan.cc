/// Experiment S1: the columnar scan layer vs tuple-at-a-time
/// interpretation.
///
/// Sweeps row count, predicate selectivity, and conjunct count over a
/// synthetic single-table workload, running the same SELECT once with the
/// compiled columnar scan (ExecOptions::compiled_scan = true, the default)
/// and once with the tree-walking interpreter (compiled_scan = false).
/// Also times an end-to-end audit on the hospital world under both modes.
///
/// Run: build/bench/bench_scan   (artifact: BENCH_scan.json)

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <numeric>
#include <string>

#include "bench/bench_util.h"
#include "src/engine/executor.h"
#include "src/engine/table_scan.h"
#include "src/sql/parser.h"

namespace {

using namespace auditdb;

/// Rows cycle through deterministic value patterns so predicate
/// selectivity is controlled by the constants in the WHERE clause:
/// `score < K` passes K% of rows, and each extra conjunct is satisfied by
/// construction wherever the first one is (so conjunct count changes the
/// work per row, not the output size).
std::unique_ptr<Database> MakeScanDb(size_t rows) {
  auto db = std::make_unique<Database>();
  TableSchema schema("M", {{"id", ValueType::kInt},
                           {"score", ValueType::kInt},
                           {"weight", ValueType::kDouble},
                           {"grade", ValueType::kString},
                           {"region", ValueType::kInt}});
  if (!db->CreateTable(std::move(schema)).ok()) std::abort();
  for (size_t i = 0; i < rows; ++i) {
    const int64_t score = static_cast<int64_t>(i % 100);
    auto inserted = db->Insert(
        "M",
        {Value::Int(static_cast<int64_t>(i)), Value::Int(score),
         Value::Double(static_cast<double>(score) + 0.5),
         Value::String(score < 50 ? "low" : "high"),
         Value::Int(score % 10)},
        Timestamp(1000000 + static_cast<int64_t>(i)));
    if (!inserted.ok()) std::abort();
  }
  return db;
}

/// WHERE clause with `conjuncts` ANDed comparisons, the first of which
/// passes `selectivity_pct`% of rows and the rest of which never prune
/// further.
std::string ScanSql(int selectivity_pct, int conjuncts) {
  std::string sql =
      "SELECT id FROM M WHERE score < " + std::to_string(selectivity_pct);
  if (conjuncts > 1) sql += " AND weight < 100.0";
  if (conjuncts > 2) sql += " AND region < 10";
  if (conjuncts > 3) sql += " AND id >= 0";
  return sql;
}

// Args: {rows, selectivity %, conjuncts, compiled}.
void BM_Filter(benchmark::State& state) {
  const size_t rows = static_cast<size_t>(state.range(0));
  const int selectivity = static_cast<int>(state.range(1));
  const int conjuncts = static_cast<int>(state.range(2));
  const bool compiled = state.range(3) != 0;

  auto db = MakeScanDb(rows);
  const std::string sql = ScanSql(selectivity, conjuncts);
  ExecOptions options;
  options.compiled_scan = compiled;

  size_t matched = 0;
  for (auto _ : state) {
    auto result = ExecuteSql(sql, db->View(), options);
    if (!result.ok()) std::abort();
    matched = result->rows.size();
    benchmark::DoNotOptimize(matched);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(rows));
  state.counters["matched"] = static_cast<double>(matched);
}

BENCHMARK(BM_Filter)
    // Row-count sweep at 10% selectivity, 3 conjuncts.
    ->Args({1000, 10, 3, 0})
    ->Args({1000, 10, 3, 1})
    ->Args({10000, 10, 3, 0})
    ->Args({10000, 10, 3, 1})
    ->Args({100000, 10, 3, 0})
    ->Args({100000, 10, 3, 1})
    ->Args({1000000, 10, 3, 0})
    ->Args({1000000, 10, 3, 1})
    // Selectivity sweep at 100k rows, 3 conjuncts.
    ->Args({100000, 1, 3, 0})
    ->Args({100000, 1, 3, 1})
    ->Args({100000, 50, 3, 0})
    ->Args({100000, 50, 3, 1})
    ->Args({100000, 90, 3, 0})
    ->Args({100000, 90, 3, 1})
    // Conjunct sweep at 100k rows, 10% selectivity.
    ->Args({100000, 10, 1, 0})
    ->Args({100000, 10, 1, 1})
    ->Args({100000, 10, 2, 0})
    ->Args({100000, 10, 2, 1})
    ->Args({100000, 10, 4, 0})
    ->Args({100000, 10, 4, 1})
    ->Unit(benchmark::kMillisecond);

// Args: {patients, queries, compiled}. End-to-end audit under both scan
// modes: the whole pipeline (target view, candidate execution, suspicion)
// runs on top of the same Execute path.
void BM_AuditEndToEnd(benchmark::State& state) {
  const size_t patients = static_cast<size_t>(state.range(0));
  const size_t queries = static_cast<size_t>(state.range(1));
  const bool compiled = state.range(2) != 0;

  auto world = bench::MakeWorld(patients, queries);
  audit::Auditor auditor(&world->db, &world->backlog, &world->log);
  audit::AuditOptions options;
  options.exec.compiled_scan = compiled;
  options.minimize_batch = false;

  for (auto _ : state) {
    auto report =
        auditor.Audit(bench::CanonicalAudit(), bench::Ts(1000000), options);
    if (!report.ok()) std::abort();
    benchmark::DoNotOptimize(report->batch_suspicious);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(queries));
}

BENCHMARK(BM_AuditEndToEnd)
    ->Args({200, 500, 0})
    ->Args({200, 500, 1})
    ->Args({1000, 2000, 0})
    ->Args({1000, 2000, 1})
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Experiment S2: selection bitmaps at the scan/predicate boundary.
//
// The predicate machine can emit its narrowed row set either as a
// selection vector (Run/RunChunked) or directly as a compressed row
// bitmap (RunToBitmap/RunChunkedToBitmap). Decisions are identical; this
// measures the representation cost at 10M rows, plus the
// bitmap<->vector conversions the scan layer uses at chunk boundaries.
// The Batch is built directly (no Database inserts) so the 10M arg
// stays cheap to set up.
// ---------------------------------------------------------------------------

/// 10M-row single-table batch M(id INT, score INT), score = id % 100.
Batch MakeScoreBatch(size_t rows) {
  Batch batch;
  batch.num_rows = rows;
  Value scratch;
  batch.columns.push_back(ColumnVector::Gather(rows, [&](size_t i) -> const Value& {
    scratch = Value::Int(static_cast<int64_t>(i));
    return scratch;
  }));
  batch.columns.push_back(ColumnVector::Gather(rows, [&](size_t i) -> const Value& {
    scratch = Value::Int(static_cast<int64_t>(i % 100));
    return scratch;
  }));
  return batch;
}

/// Compiles `score < K` against the two-column layout above.
PredicateProgram CompileScorePredicate(int selectivity_pct) {
  RowLayout layout;
  layout.AddTable("M", TableSchema("M", {{"id", ValueType::kInt},
                                         {"score", ValueType::kInt}}));
  auto expr = sql::ParseExpression("M.score < " +
                                   std::to_string(selectivity_pct));
  if (!expr.ok()) std::abort();
  if (!BindExpression(expr->get(), layout).ok()) std::abort();
  auto program = PredicateProgram::Compile(**expr, 0, layout.width());
  if (!program.ok()) std::abort();
  return std::move(*program);
}

// Args: {rows, selectivity %, bitmap}. Full-batch predicate run emitting
// a selection vector vs a selection bitmap, in 1024-row chunks.
void BM_PredicateEmit(benchmark::State& state) {
  const size_t rows = static_cast<size_t>(state.range(0));
  const int selectivity = static_cast<int>(state.range(1));
  const bool bitmap = state.range(2) != 0;
  Batch batch = MakeScoreBatch(rows);
  PredicateProgram program = CompileScorePredicate(selectivity);
  std::vector<uint32_t> all_vec(rows);
  std::iota(all_vec.begin(), all_vec.end(), 0u);
  TidBitmap all_bm = SelectionToBitmap(all_vec);
  for (auto _ : state) {
    if (bitmap) {
      auto out = RunChunkedToBitmap(program, batch, all_bm, 1024);
      benchmark::DoNotOptimize(out.passed.Cardinality());
    } else {
      auto out = RunChunked(program, batch, all_vec, 1024);
      benchmark::DoNotOptimize(out.passed.size());
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(rows));
}
BENCHMARK(BM_PredicateEmit)
    ->Args({1000000, 10, 0})
    ->Args({1000000, 10, 1})
    ->Args({10000000, 10, 0})
    ->Args({10000000, 10, 1})
    ->Args({10000000, 90, 0})
    ->Args({10000000, 90, 1})
    ->Unit(benchmark::kMillisecond);

// Args: {rows, selectivity %}. The boundary conversions themselves:
// selection vector -> bitmap -> selection vector at 10M rows.
void BM_SelectionConvert(benchmark::State& state) {
  const size_t rows = static_cast<size_t>(state.range(0));
  const size_t pct = static_cast<size_t>(state.range(1));
  std::vector<uint32_t> sel;
  sel.reserve(rows * pct / 100);
  for (size_t i = 0; i < rows; ++i) {
    if (i % 100 < pct) sel.push_back(static_cast<uint32_t>(i));
  }
  for (auto _ : state) {
    TidBitmap bm = SelectionToBitmap(sel);
    auto back = BitmapToSelection(bm);
    benchmark::DoNotOptimize(back.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(sel.size()));
}
BENCHMARK(BM_SelectionConvert)
    ->Args({10000000, 10})
    ->Args({10000000, 90})
    ->Unit(benchmark::kMillisecond);

}  // namespace

AUDITDB_BENCH_MAIN(scan);
