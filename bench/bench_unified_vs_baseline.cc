/// Experiment P4: generality overhead of the unified model.
///
/// The unified granule model subsumes the specialized notions; this bench
/// quantifies what that generality costs by running the *same* semantic
/// audit through (a) the unified pipeline (joint indispensability mode,
/// where it coincides with the Agrawal definition), (b) the specialized
/// Agrawal reimplementation, and (c) the specialized Motwani batch
/// auditor. It also includes the re-execution ablation: per-query
/// verdicts recomputed from scratch vs the shared lineage profiles.
///
/// Run: build/bench/bench_unified_vs_baseline

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/audit/baseline_agrawal.h"
#include "src/audit/baseline_motwani.h"

namespace {

using namespace auditdb;

struct Setup {
  std::unique_ptr<bench::World> world;
  audit::AuditExpression expr;
};

Setup MakeSetup(size_t log_size) {
  Setup s;
  s.world = bench::MakeWorld(/*patients=*/300, log_size);
  auto expr = audit::ParseAudit(bench::CanonicalAudit(), bench::Ts(1000000));
  if (!expr.ok() || !expr->Qualify(s.world->db.catalog()).ok()) std::abort();
  s.expr = std::move(*expr);
  return s;
}

void BM_UnifiedJointMode(benchmark::State& state) {
  auto s = MakeSetup(static_cast<size_t>(state.range(0)));
  audit::Auditor auditor(&s.world->db, &s.world->backlog, &s.world->log);
  audit::AuditOptions options;
  options.suspicion.mode = audit::IndispensabilityMode::kJointPerQuery;
  options.minimize_batch = false;
  size_t flagged = 0;
  for (auto _ : state) {
    auto report = auditor.Audit(s.expr, options);
    if (!report.ok()) std::abort();
    flagged = report->SuspiciousQueryIds().size();
  }
  state.counters["flagged"] = static_cast<double>(flagged);
}
BENCHMARK(BM_UnifiedJointMode)
    ->Arg(500)
    ->Arg(2000)
    ->Arg(8000)
    ->Unit(benchmark::kMillisecond);

void BM_AgrawalBaseline(benchmark::State& state) {
  auto s = MakeSetup(static_cast<size_t>(state.range(0)));
  audit::AgrawalAuditor auditor(&s.world->db, &s.world->backlog,
                                &s.world->log);
  size_t flagged = 0;
  for (auto _ : state) {
    auto result = auditor.Audit(s.expr);
    if (!result.ok()) std::abort();
    flagged = result->suspicious_ids.size();
  }
  state.counters["flagged"] = static_cast<double>(flagged);
}
BENCHMARK(BM_AgrawalBaseline)
    ->Arg(500)
    ->Arg(2000)
    ->Arg(8000)
    ->Unit(benchmark::kMillisecond);

void BM_MotwaniBaseline(benchmark::State& state) {
  auto s = MakeSetup(static_cast<size_t>(state.range(0)));
  audit::MotwaniAuditor auditor(&s.world->db, &s.world->backlog,
                                &s.world->log);
  size_t sharing = 0;
  for (auto _ : state) {
    auto result = auditor.Audit(s.expr);
    if (!result.ok()) std::abort();
    sharing = result->sharing_ids.size();
  }
  state.counters["sharing"] = static_cast<double>(sharing);
}
BENCHMARK(BM_MotwaniBaseline)
    ->Arg(500)
    ->Arg(2000)
    ->Arg(8000)
    ->Unit(benchmark::kMillisecond);

/// Ablation: batch-only verdict (shared profiles, one suspicion check)
/// vs per-query verdicts (one check per candidate). The gap is the cost
/// of single-query attribution.
void BM_UnifiedBatchOnly(benchmark::State& state) {
  auto s = MakeSetup(static_cast<size_t>(state.range(0)));
  audit::Auditor auditor(&s.world->db, &s.world->backlog, &s.world->log);
  audit::AuditOptions options;
  options.per_query_verdicts = false;
  options.minimize_batch = false;
  for (auto _ : state) {
    auto report = auditor.Audit(s.expr, options);
    if (!report.ok()) std::abort();
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_UnifiedBatchOnly)
    ->Arg(500)
    ->Arg(2000)
    ->Arg(8000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
