/// Experiment P10 (extension): the standing-expression audit index.
///
/// Throughput of screening one observed query against N standing audit
/// expressions with the inverted attribute index on and off. The
/// workload is the index's design point — many narrow expressions, each
/// auditing its own column of one wide table, while a query touches only
/// a small fraction of them (the overlap knob). Every iteration uses a
/// fresh WHERE literal, so the decision cache cannot serve repeats and
/// the comparison isolates the index itself. Acceptance: at 256
/// expressions and <=10% overlap, index-on throughput is >=5x index-off.
///
/// Run: build/bench/bench_index

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/audit/audit_index.h"
#include "src/audit/online.h"

namespace {

using namespace auditdb;
using bench::Ts;

/// One wide table: `columns` int columns c0..c<n-1>, `rows` rows.
std::unique_ptr<Database> MakeWideDatabase(size_t columns, size_t rows) {
  auto db = std::make_unique<Database>();
  std::vector<Column> schema_columns;
  schema_columns.reserve(columns);
  for (size_t c = 0; c < columns; ++c) {
    schema_columns.push_back({"c" + std::to_string(c), ValueType::kInt});
  }
  if (!db->CreateTable(TableSchema("Wide", std::move(schema_columns))).ok()) {
    std::abort();
  }
  for (size_t r = 0; r < rows; ++r) {
    std::vector<Value> values;
    values.reserve(columns);
    for (size_t c = 0; c < columns; ++c) {
      values.push_back(Value::Int(static_cast<int64_t>(r * columns + c)));
    }
    if (!db->Insert("Wide", std::move(values), Ts(1)).ok()) std::abort();
  }
  return db;
}

/// One standing expression per audited column: AUDIT (c<i>) FROM Wide.
void AddStandingExpressions(audit::OnlineAuditor* online, size_t count) {
  for (size_t i = 0; i < count; ++i) {
    auto expr = audit::ParseAudit(
        "DURING 1/1/1970 to 2/1/1970 AUDIT (c" + std::to_string(i) +
            ") FROM Wide",
        Ts(1000000));
    if (!expr.ok()) std::abort();
    if (!online->AddExpression(*expr).ok()) std::abort();
  }
}

/// An observed query touching the first `touched` columns, with a unique
/// literal per call (defeats the decision cache across iterations).
LoggedQuery TouchingQuery(size_t touched, int64_t serial) {
  std::string sql = "SELECT ";
  for (size_t c = 0; c < touched; ++c) {
    if (c > 0) sql += ", ";
    sql += "c" + std::to_string(c);
  }
  sql += " FROM Wide WHERE c0 > " + std::to_string(1000000 + serial);
  LoggedQuery q;
  q.id = serial;
  q.sql = std::move(sql);
  q.timestamp = Ts(100);
  q.user = "alice";
  q.role = "doctor";
  q.purpose = "treatment";
  return q;
}

/// Args: {standing expressions, touched columns, index on/off}.
void BM_ObserveStanding(benchmark::State& state) {
  const size_t expressions = static_cast<size_t>(state.range(0));
  const size_t touched = static_cast<size_t>(state.range(1));
  const bool index_on = state.range(2) != 0;

  auto db = MakeWideDatabase(expressions, /*rows=*/32);
  audit::OnlineAuditorOptions options;
  options.index_enabled = index_on;
  audit::OnlineAuditor online(db.get(), options);
  AddStandingExpressions(&online, expressions);

  int64_t serial = 0;
  for (auto _ : state) {
    auto screenings = online.Observe(TouchingQuery(touched, serial++));
    if (!screenings.ok()) std::abort();
    benchmark::DoNotOptimize(screenings);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["expressions"] = static_cast<double>(expressions);
  state.counters["overlap_pct"] =
      100.0 * static_cast<double>(touched) / static_cast<double>(expressions);
  state.SetLabel(index_on ? "index-on" : "index-off");
}
BENCHMARK(BM_ObserveStanding)
    ->Args({16, 8, 1})
    ->Args({16, 8, 0})
    ->Args({64, 8, 1})
    ->Args({64, 8, 0})
    ->Args({256, 8, 1})
    ->Args({256, 8, 0})
    ->Args({256, 24, 1})
    ->Args({256, 24, 0})
    ->Unit(benchmark::kMicrosecond);

/// The decision cache on a repeated query (the serving-path pattern:
/// identical SQL arriving again between mutations). Args: {standing
/// expressions, cache on/off}; the index stays off to isolate the cache.
void BM_ObserveRepeatedQuery(benchmark::State& state) {
  const size_t expressions = static_cast<size_t>(state.range(0));
  const bool cache_on = state.range(1) != 0;

  auto db = MakeWideDatabase(expressions, /*rows=*/32);
  audit::OnlineAuditorOptions options;
  options.index_enabled = false;
  options.cache_enabled = cache_on;
  audit::OnlineAuditor online(db.get(), options);
  AddStandingExpressions(&online, expressions);

  LoggedQuery q = TouchingQuery(/*touched=*/8, /*serial=*/0);
  for (auto _ : state) {
    auto screenings = online.Observe(q);
    if (!screenings.ok()) std::abort();
    benchmark::DoNotOptimize(screenings);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.SetLabel(cache_on ? "cache-on" : "cache-off");
}
BENCHMARK(BM_ObserveRepeatedQuery)
    ->Args({64, 1})
    ->Args({64, 0})
    ->Args({256, 1})
    ->Args({256, 0})
    ->Unit(benchmark::kMicrosecond);

}  // namespace

AUDITDB_BENCH_MAIN(index);
