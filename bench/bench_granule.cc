/// Experiment P2: granule generation combinatorics.
///
/// The paper observes that a k-column, n-row target view admits on the
/// order of 2^k * 2^n suspicion notions; individual notions still have
/// granule sets of size sum_s C(n_s, k). This bench measures (a) lazy
/// enumeration cost vs |U| and THRESHOLD, (b) materialization
/// (RenderDistinct) vs lazy iteration — the ablation DESIGN.md calls
/// out — and (c) the count-only fast path the suspicion checker uses.
///
/// Run: build/bench/bench_granule

#include <benchmark/benchmark.h>

#include <numeric>
#include <unordered_set>

#include "bench/bench_util.h"
#include "src/audit/granule.h"
#include "src/common/tid_bitmap.h"
#include "src/types/column_vector.h"

namespace {

using namespace auditdb;

struct ViewWorld {
  std::unique_ptr<bench::World> world;
  audit::AuditExpression expr;
  audit::TargetView view;
  std::vector<audit::GranuleScheme> schemes;
};

ViewWorld MakeViewWorld(size_t patients, const std::string& audit_text) {
  ViewWorld vw;
  vw.world = bench::MakeWorld(patients, /*queries=*/1);
  auto expr = audit::ParseAudit(audit_text, bench::Ts(1000000));
  if (!expr.ok() || !expr->Qualify(vw.world->db.catalog()).ok()) {
    std::abort();
  }
  vw.expr = std::move(*expr);
  auto view = audit::ComputeTargetView(vw.expr, vw.world->db.View(),
                                       bench::Ts(1));
  if (!view.ok()) std::abort();
  vw.view = std::move(*view);
  vw.schemes = audit::BuildSchemes(vw.expr);
  return vw;
}

/// Lazy enumeration of every granule, |U| sweep at THRESHOLD 1.
void BM_EnumerateThreshold1(benchmark::State& state) {
  const size_t patients = static_cast<size_t>(state.range(0));
  auto vw = MakeViewWorld(patients,
                          "AUDIT [name,disease] FROM P-Personal, P-Health "
                          "WHERE P-Personal.pid = P-Health.pid");
  audit::GranuleEnumerator g(vw.view, vw.schemes, vw.expr.threshold);
  for (auto _ : state) {
    uint64_t n = g.ForEach([](const audit::Granule&) { return true; });
    benchmark::DoNotOptimize(n);
  }
  state.counters["granules"] = g.CountGranules();
}
BENCHMARK(BM_EnumerateThreshold1)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMicrosecond);

/// THRESHOLD-k sweep on a fixed 30-row view: C(30,k) blowup.
void BM_EnumerateThresholdK(benchmark::State& state) {
  const int64_t k = state.range(0);
  auto vw = MakeViewWorld(30, "THRESHOLD " + std::to_string(k) +
                                  " AUDIT (name) FROM P-Personal");
  audit::GranuleEnumerator g(vw.view, vw.schemes, vw.expr.threshold);
  for (auto _ : state) {
    uint64_t n = g.ForEach([](const audit::Granule&) { return true; });
    benchmark::DoNotOptimize(n);
  }
  state.counters["granules"] = g.CountGranules();
}
BENCHMARK(BM_EnumerateThresholdK)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->Arg(4)
    ->Unit(benchmark::kMicrosecond);

/// Count-only fast path (what the suspicion checker needs) vs the full
/// enumeration above: the checker never pays C(n,k).
void BM_CountOnly(benchmark::State& state) {
  const int64_t k = state.range(0);
  auto vw = MakeViewWorld(30, "THRESHOLD " + std::to_string(k) +
                                  " AUDIT (name) FROM P-Personal");
  for (auto _ : state) {
    audit::GranuleEnumerator g(vw.view, vw.schemes, vw.expr.threshold);
    double count = g.CountGranules();
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_CountOnly)->Arg(1)->Arg(2)->Arg(3)->Arg(4);

/// Materialized (rendered + deduplicated) vs lazy: the ablation.
void BM_MaterializeRendered(benchmark::State& state) {
  const size_t patients = static_cast<size_t>(state.range(0));
  auto vw = MakeViewWorld(patients,
                          "AUDIT [name,disease] FROM P-Personal, P-Health "
                          "WHERE P-Personal.pid = P-Health.pid");
  audit::GranuleEnumerator g(vw.view, vw.schemes, vw.expr.threshold);
  for (auto _ : state) {
    auto rendered = g.RenderDistinct(SIZE_MAX);
    benchmark::DoNotOptimize(rendered);
  }
}
BENCHMARK(BM_MaterializeRendered)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMicrosecond);

/// Scheme-count sweep: optional groups multiply schemes.
void BM_SchemeEnumeration(benchmark::State& state) {
  const int64_t attrs = state.range(0);
  // [a1..ak][b1..bk] style: schemes = k * k.
  std::string audit_list = "[name,age";
  if (attrs >= 3) audit_list += ",zipcode";
  if (attrs >= 4) audit_list += ",address";
  audit_list += "],[disease,ward";
  if (attrs >= 3) audit_list += ",pres-drugs";
  if (attrs >= 4) audit_list += ",doc-name";
  audit_list += "]";
  auto vw = MakeViewWorld(200, "AUDIT " + audit_list +
                                   " FROM P-Personal, P-Health "
                                   "WHERE P-Personal.pid = P-Health.pid");
  for (auto _ : state) {
    auto schemes = audit::BuildSchemes(vw.expr);
    audit::GranuleEnumerator g(vw.view, schemes, vw.expr.threshold);
    uint64_t n = g.ForEach([](const audit::Granule&) { return true; });
    benchmark::DoNotOptimize(n);
  }
  state.counters["schemes"] = static_cast<double>(vw.schemes.size());
}
BENCHMARK(BM_SchemeEnumeration)
    ->Arg(2)
    ->Arg(3)
    ->Arg(4)
    ->Unit(benchmark::kMicrosecond);

// ---------------------------------------------------------------------------
// Experiment P3: the suspicion/candidacy tid-set kernels, hash sets vs
// compressed bitmaps (SuspicionOptions::tid_bitmaps), at 1M and 10M tids.
//
// `dense` = consecutive tids (bulk loads; bitset chunks), sparse = stride-41
// tids (selective predicates; array chunks). The three kernels mirror the
// audit hot paths: building the per-table indispensable union (BatchIndex),
// per-fact membership probes (kPerTable suspicion), and witness-overlap
// tests (SharesIndispensableTuple / the kPerTable prescreen).
// ---------------------------------------------------------------------------

/// Synthetic indispensable-tid universe: `n` tids, consecutive or strided.
std::vector<int64_t> MakeTids(size_t n, bool dense) {
  std::vector<int64_t> tids(n);
  if (dense) {
    std::iota(tids.begin(), tids.end(), int64_t{1});
  } else {
    for (size_t i = 0; i < n; ++i) tids[i] = static_cast<int64_t>(i) * 41 + 1;
  }
  return tids;
}

// Args: {n, dense, bitmap}. Builds the batch-level union of 8 per-query
// witness lists (n/8 tids each), as BatchIndex does on first use.
void BM_IndispensableUnion(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const bool dense = state.range(1) != 0;
  const bool bitmap = state.range(2) != 0;
  auto tids = MakeTids(n, dense);
  const size_t per_query = n / 8;
  for (auto _ : state) {
    if (bitmap) {
      TidBitmap u;
      for (size_t q = 0; q < 8; ++q) {
        TidBitmap one;
        for (size_t i = q * per_query; i < (q + 1) * per_query; ++i) {
          one.Add(tids[i]);
        }
        u.Or(one);
      }
      benchmark::DoNotOptimize(u.Cardinality());
    } else {
      std::unordered_set<int64_t> u;
      for (size_t q = 0; q < 8; ++q) {
        for (size_t i = q * per_query; i < (q + 1) * per_query; ++i) {
          u.insert(tids[i]);
        }
      }
      benchmark::DoNotOptimize(u.size());
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_IndispensableUnion)
    ->Args({1000000, 1, 0})
    ->Args({1000000, 1, 1})
    ->Args({1000000, 0, 0})
    ->Args({1000000, 0, 1})
    ->Args({10000000, 1, 0})
    ->Args({10000000, 1, 1})
    ->Args({10000000, 0, 0})
    ->Args({10000000, 0, 1})
    ->Unit(benchmark::kMillisecond);

// Args: {n, dense, bitmap}. Per-fact membership probes against the union
// (the kPerTable suspicion loop); half the probes hit, half miss.
void BM_SuspicionMembership(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const bool dense = state.range(1) != 0;
  const bool bitmap = state.range(2) != 0;
  auto tids = MakeTids(n, dense);
  TidBitmap bm;
  std::unordered_set<int64_t> set;
  for (int64_t t : tids) {
    if (bitmap) {
      bm.Add(t);
    } else {
      set.insert(t);
    }
  }
  for (auto _ : state) {
    size_t hits = 0;
    for (size_t i = 0; i < n; ++i) {
      // Even i probes a member, odd i probes a gap/overshoot.
      const int64_t probe = (i % 2 == 0) ? tids[i] : tids[i] + 1;
      hits += bitmap ? bm.Contains(probe) : set.count(probe) > 0;
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_SuspicionMembership)
    ->Args({1000000, 1, 0})
    ->Args({1000000, 1, 1})
    ->Args({10000000, 1, 0})
    ->Args({10000000, 1, 1})
    ->Args({10000000, 0, 0})
    ->Args({10000000, 0, 1})
    ->Unit(benchmark::kMillisecond);

// Args: {n, dense, bitmap}. Witness-overlap test between a query's
// lineage projection and the audit view's tids, overlapping only in the
// last 1% — the SharesIndispensableTuple / prescreen kernel, worst case
// (the scan must run deep before finding the intersection).
void BM_WitnessIntersect(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const bool dense = state.range(1) != 0;
  const bool bitmap = state.range(2) != 0;
  auto tids = MakeTids(n, dense);
  const size_t overlap_start = n - n / 100;
  TidBitmap bm_a, bm_b;
  std::unordered_set<int64_t> set_a;
  std::vector<int64_t> vec_b;
  for (size_t i = 0; i < n; ++i) {
    // b holds the mirrored universe plus the shared 1% tail.
    const int64_t other = -tids[i] - 1;
    if (bitmap) {
      bm_a.Add(tids[i]);
      bm_b.Add(i < overlap_start ? other : tids[i]);
    } else {
      set_a.insert(tids[i]);
      vec_b.push_back(i < overlap_start ? other : tids[i]);
    }
  }
  for (auto _ : state) {
    bool shares = false;
    if (bitmap) {
      shares = bm_a.Intersects(bm_b);
    } else {
      for (int64_t t : vec_b) {
        if (set_a.count(t)) {
          shares = true;
          break;
        }
      }
    }
    benchmark::DoNotOptimize(shares);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_WitnessIntersect)
    ->Args({1000000, 1, 0})
    ->Args({1000000, 1, 1})
    ->Args({10000000, 1, 0})
    ->Args({10000000, 1, 1})
    ->Args({10000000, 0, 0})
    ->Args({10000000, 0, 1})
    ->Unit(benchmark::kMillisecond);

// Args: {rows, bitmap}. The granule validity screen (NULL filtering over
// the target view's fact batch) at 10M rows, ~1% NULLs: the NonNullRows
// index vector vs the compressed NonNullBitmap (append fast path).
void BM_ValidityScreen(benchmark::State& state) {
  const size_t rows = static_cast<size_t>(state.range(0));
  const bool bitmap = state.range(1) != 0;
  Batch batch;
  batch.num_rows = rows;
  Value scratch;
  auto get = [&](size_t i) -> const Value& {
    scratch = (i % 97 == 0) ? Value::Null()
                            : Value::Int(static_cast<int64_t>(i));
    return scratch;
  };
  batch.columns.push_back(ColumnVector::Gather(rows, get));
  batch.columns.push_back(ColumnVector::Gather(rows, get));
  const std::vector<size_t> cols = {0, 1};
  for (auto _ : state) {
    if (bitmap) {
      auto valid = NonNullBitmap(batch, cols);
      benchmark::DoNotOptimize(valid.Cardinality());
    } else {
      auto valid = NonNullRows(batch, cols);
      benchmark::DoNotOptimize(valid.size());
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(rows));
}
BENCHMARK(BM_ValidityScreen)
    ->Args({10000000, 0})
    ->Args({10000000, 1})
    ->Unit(benchmark::kMillisecond);

}  // namespace

AUDITDB_BENCH_MAIN(granule);
