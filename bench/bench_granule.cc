/// Experiment P2: granule generation combinatorics.
///
/// The paper observes that a k-column, n-row target view admits on the
/// order of 2^k * 2^n suspicion notions; individual notions still have
/// granule sets of size sum_s C(n_s, k). This bench measures (a) lazy
/// enumeration cost vs |U| and THRESHOLD, (b) materialization
/// (RenderDistinct) vs lazy iteration — the ablation DESIGN.md calls
/// out — and (c) the count-only fast path the suspicion checker uses.
///
/// Run: build/bench/bench_granule

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/audit/granule.h"

namespace {

using namespace auditdb;

struct ViewWorld {
  std::unique_ptr<bench::World> world;
  audit::AuditExpression expr;
  audit::TargetView view;
  std::vector<audit::GranuleScheme> schemes;
};

ViewWorld MakeViewWorld(size_t patients, const std::string& audit_text) {
  ViewWorld vw;
  vw.world = bench::MakeWorld(patients, /*queries=*/1);
  auto expr = audit::ParseAudit(audit_text, bench::Ts(1000000));
  if (!expr.ok() || !expr->Qualify(vw.world->db.catalog()).ok()) {
    std::abort();
  }
  vw.expr = std::move(*expr);
  auto view = audit::ComputeTargetView(vw.expr, vw.world->db.View(),
                                       bench::Ts(1));
  if (!view.ok()) std::abort();
  vw.view = std::move(*view);
  vw.schemes = audit::BuildSchemes(vw.expr);
  return vw;
}

/// Lazy enumeration of every granule, |U| sweep at THRESHOLD 1.
void BM_EnumerateThreshold1(benchmark::State& state) {
  const size_t patients = static_cast<size_t>(state.range(0));
  auto vw = MakeViewWorld(patients,
                          "AUDIT [name,disease] FROM P-Personal, P-Health "
                          "WHERE P-Personal.pid = P-Health.pid");
  audit::GranuleEnumerator g(vw.view, vw.schemes, vw.expr.threshold);
  for (auto _ : state) {
    uint64_t n = g.ForEach([](const audit::Granule&) { return true; });
    benchmark::DoNotOptimize(n);
  }
  state.counters["granules"] = g.CountGranules();
}
BENCHMARK(BM_EnumerateThreshold1)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMicrosecond);

/// THRESHOLD-k sweep on a fixed 30-row view: C(30,k) blowup.
void BM_EnumerateThresholdK(benchmark::State& state) {
  const int64_t k = state.range(0);
  auto vw = MakeViewWorld(30, "THRESHOLD " + std::to_string(k) +
                                  " AUDIT (name) FROM P-Personal");
  audit::GranuleEnumerator g(vw.view, vw.schemes, vw.expr.threshold);
  for (auto _ : state) {
    uint64_t n = g.ForEach([](const audit::Granule&) { return true; });
    benchmark::DoNotOptimize(n);
  }
  state.counters["granules"] = g.CountGranules();
}
BENCHMARK(BM_EnumerateThresholdK)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->Arg(4)
    ->Unit(benchmark::kMicrosecond);

/// Count-only fast path (what the suspicion checker needs) vs the full
/// enumeration above: the checker never pays C(n,k).
void BM_CountOnly(benchmark::State& state) {
  const int64_t k = state.range(0);
  auto vw = MakeViewWorld(30, "THRESHOLD " + std::to_string(k) +
                                  " AUDIT (name) FROM P-Personal");
  for (auto _ : state) {
    audit::GranuleEnumerator g(vw.view, vw.schemes, vw.expr.threshold);
    double count = g.CountGranules();
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_CountOnly)->Arg(1)->Arg(2)->Arg(3)->Arg(4);

/// Materialized (rendered + deduplicated) vs lazy: the ablation.
void BM_MaterializeRendered(benchmark::State& state) {
  const size_t patients = static_cast<size_t>(state.range(0));
  auto vw = MakeViewWorld(patients,
                          "AUDIT [name,disease] FROM P-Personal, P-Health "
                          "WHERE P-Personal.pid = P-Health.pid");
  audit::GranuleEnumerator g(vw.view, vw.schemes, vw.expr.threshold);
  for (auto _ : state) {
    auto rendered = g.RenderDistinct(SIZE_MAX);
    benchmark::DoNotOptimize(rendered);
  }
}
BENCHMARK(BM_MaterializeRendered)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMicrosecond);

/// Scheme-count sweep: optional groups multiply schemes.
void BM_SchemeEnumeration(benchmark::State& state) {
  const int64_t attrs = state.range(0);
  // [a1..ak][b1..bk] style: schemes = k * k.
  std::string audit_list = "[name,age";
  if (attrs >= 3) audit_list += ",zipcode";
  if (attrs >= 4) audit_list += ",address";
  audit_list += "],[disease,ward";
  if (attrs >= 3) audit_list += ",pres-drugs";
  if (attrs >= 4) audit_list += ",doc-name";
  audit_list += "]";
  auto vw = MakeViewWorld(200, "AUDIT " + audit_list +
                                   " FROM P-Personal, P-Health "
                                   "WHERE P-Personal.pid = P-Health.pid");
  for (auto _ : state) {
    auto schemes = audit::BuildSchemes(vw.expr);
    audit::GranuleEnumerator g(vw.view, schemes, vw.expr.threshold);
    uint64_t n = g.ForEach([](const audit::Granule&) { return true; });
    benchmark::DoNotOptimize(n);
  }
  state.counters["schemes"] = static_cast<double>(vw.schemes.size());
}
BENCHMARK(BM_SchemeEnumeration)
    ->Arg(2)
    ->Arg(3)
    ->Arg(4)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
