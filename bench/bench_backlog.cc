/// Experiment P5: backlog snapshot reconstruction and DATA-INTERVAL
/// version enumeration.
///
/// Sweeps the number of captured update events and the width of the
/// DATA-INTERVAL, measuring (a) point-in-time snapshot materialization,
/// (b) target-view computation across all versions in an interval, and
/// (c) the auditor's snapshot cache benefit when many queries share a
/// database state.
///
/// Run: build/bench/bench_backlog

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/audit/target_view.h"
#include "src/common/random.h"

namespace {

using namespace auditdb;
using bench::Ts;

/// A world whose P-Health table receives `updates` single-column updates
/// spread over t = 1000..1000+updates seconds.
std::unique_ptr<bench::World> MakeUpdatedWorld(size_t patients,
                                               size_t updates) {
  auto world = bench::MakeWorld(patients, /*queries=*/1);
  Random rng(7);
  auto health = world->db.GetTable("P-Health");
  if (!health.ok()) std::abort();
  std::vector<Tid> tids;
  for (const auto& row : (*health)->rows()) tids.push_back(row.tid);
  static const char* kDiseases[] = {"flu", "diabetic", "asthma", "anemia"};
  for (size_t i = 0; i < updates; ++i) {
    Tid tid = tids[rng.Uniform(tids.size())];
    auto status = world->db.UpdateColumn(
        "P-Health", tid, "disease",
        Value::String(kDiseases[rng.Uniform(4)]),
        Ts(1000 + static_cast<int64_t>(i)));
    if (!status.ok()) std::abort();
  }
  return world;
}

void BM_SnapshotReconstruction(benchmark::State& state) {
  const size_t updates = static_cast<size_t>(state.range(0));
  auto world = MakeUpdatedWorld(/*patients=*/500, updates);
  // Snapshot in the middle of the update stream.
  Timestamp at = Ts(1000 + static_cast<int64_t>(updates) / 2);
  for (auto _ : state) {
    auto snapshot = world->backlog.SnapshotAt(at);
    if (!snapshot.ok()) std::abort();
    benchmark::DoNotOptimize(snapshot);
  }
  state.counters["events"] =
      static_cast<double>(world->backlog.event_count());
}
BENCHMARK(BM_SnapshotReconstruction)
    ->Arg(0)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);

void BM_TargetViewOverInterval(benchmark::State& state) {
  const size_t versions = static_cast<size_t>(state.range(0));
  auto world = MakeUpdatedWorld(/*patients=*/300, /*updates=*/2000);
  // Interval spanning `versions` update events.
  std::string text =
      "DATA-INTERVAL 1/1/1970:00-16-40 to " +
      Ts(1000 + static_cast<int64_t>(versions) - 1).ToString() + " " +
      "AUDIT (name,disease) FROM P-Personal, P-Health "
      "WHERE P-Personal.pid = P-Health.pid AND disease='diabetic'";
  auto expr = audit::ParseAudit(text, Ts(1000000));
  if (!expr.ok() || !expr->Qualify(world->db.catalog()).ok()) std::abort();
  size_t view_size = 0;
  for (auto _ : state) {
    auto view = audit::ComputeTargetViewOverVersions(*expr, world->backlog);
    if (!view.ok()) std::abort();
    view_size = view->size();
  }
  state.counters["versions"] = static_cast<double>(versions);
  state.counters["view_size"] = static_cast<double>(view_size);
}
BENCHMARK(BM_TargetViewOverInterval)
    ->Arg(1)
    ->Arg(8)
    ->Arg(32)
    ->Arg(128)
    ->Unit(benchmark::kMillisecond);

/// Snapshot-cache benefit: audit a log whose queries all ran between the
/// same two updates (one shared state) vs spread across update events
/// (one state per query).
void BM_AuditSnapshotLocality(benchmark::State& state) {
  const bool shared_state = state.range(0) != 0;
  const size_t queries = 200;

  auto world = bench::MakeWorld(/*patients=*/200, /*queries=*/1);
  QueryLog log;
  Random rng(11);
  for (size_t i = 0; i < queries; ++i) {
    int64_t at = shared_state ? 500 : 2000 + static_cast<int64_t>(i) * 2;
    log.Append(
        "SELECT name, disease FROM P-Personal, P-Health "
        "WHERE P-Personal.pid=P-Health.pid AND disease='diabetic'",
        Ts(at), "alice", "doctor", "treatment");
    if (!shared_state) {
      // Interleave an update so consecutive queries see distinct states.
      auto status = world->db.UpdateColumn(
          "P-Health", static_cast<Tid>(1 + rng.Uniform(200)), "ward",
          Value::String("W" + std::to_string(rng.Uniform(20) + 1)),
          Ts(2000 + static_cast<int64_t>(i) * 2 + 1));
      if (!status.ok()) std::abort();
    }
  }

  audit::Auditor auditor(&world->db, &world->backlog, &log);
  audit::AuditOptions options;
  options.minimize_batch = false;
  options.per_query_verdicts = false;
  // Pin DATA-INTERVAL to a single version so the measured difference is
  // purely the per-query snapshot (cache) cost.
  const std::string audit_text =
      "DURING 1/1/1970 to 2/1/1970 "
      "DATA-INTERVAL 1/1/1970:00-08-20 to 1/1/1970:00-08-20 "
      "AUDIT (name,disease) FROM P-Personal, P-Health "
      "WHERE P-Personal.pid = P-Health.pid AND disease='diabetic'";
  for (auto _ : state) {
    auto report = auditor.Audit(audit_text, Ts(1000000), options);
    if (!report.ok()) std::abort();
    benchmark::DoNotOptimize(report);
  }
  state.SetLabel(shared_state ? "one-shared-state" : "state-per-query");
}
BENCHMARK(BM_AuditSnapshotLocality)
    ->Arg(1)
    ->Arg(0)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
