/// Experiment P7: end-to-end audit pipeline.
///
/// Full pipeline wall time vs log size, with sweeps over (a) limiting-
/// parameter selectivity (how much of the log the Pos/Neg clauses admit),
/// (b) hash-join acceleration on/off in the audit executor, and (c)
/// database size. Phase counters (admitted/candidates/executed) come out
/// as benchmark counters so selectivity of each stage is visible.
///
/// Run: build/bench/bench_end_to_end

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace {

using namespace auditdb;
using bench::Ts;

void RunPipeline(benchmark::State& state, const std::string& audit_text,
                 size_t patients, size_t log_size, bool hash_join) {
  auto world = bench::MakeWorld(patients, log_size);
  audit::Auditor auditor(&world->db, &world->backlog, &world->log);
  audit::AuditOptions options;
  options.exec.hash_join = hash_join;
  options.minimize_batch = false;
  size_t admitted = 0, candidates = 0;
  for (auto _ : state) {
    auto report = auditor.Audit(audit_text, Ts(1000000), options);
    if (!report.ok()) std::abort();
    admitted = report->num_admitted;
    candidates = report->num_candidates;
  }
  state.counters["admitted"] = static_cast<double>(admitted);
  state.counters["candidates"] = static_cast<double>(candidates);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(log_size));
}

void BM_PipelineLogSize(benchmark::State& state) {
  RunPipeline(state, bench::CanonicalAudit(), /*patients=*/300,
              static_cast<size_t>(state.range(0)), /*hash_join=*/true);
}
BENCHMARK(BM_PipelineLogSize)
    ->Arg(500)
    ->Arg(2000)
    ->Arg(8000)
    ->Unit(benchmark::kMillisecond);

void BM_PipelineDbSize(benchmark::State& state) {
  RunPipeline(state, bench::CanonicalAudit(),
              static_cast<size_t>(state.range(0)), /*log_size=*/1000,
              /*hash_join=*/true);
}
BENCHMARK(BM_PipelineDbSize)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(5000)
    ->Unit(benchmark::kMillisecond);

void BM_PipelineJoinStrategy(benchmark::State& state) {
  RunPipeline(state, bench::CanonicalAudit(),
              static_cast<size_t>(state.range(0)), /*log_size=*/1000,
              /*hash_join=*/state.range(1) != 0);
}
BENCHMARK(BM_PipelineJoinStrategy)
    ->Args({100, 1})
    ->Args({100, 0})
    ->Args({300, 1})
    ->Args({300, 0})
    ->Unit(benchmark::kMillisecond);

/// Secondary-index ablation: indexes on the audit-relevant columns
/// prefilter the candidate re-executions.
void BM_PipelineIndexAblation(benchmark::State& state) {
  const bool use_index = state.range(1) != 0;
  auto world = bench::MakeWorld(static_cast<size_t>(state.range(0)),
                                /*log_size=*/1000);
  if (use_index) {
    auto health = world->db.GetTable("P-Health");
    auto personal = world->db.GetTable("P-Personal");
    if (!health.ok() || !personal.ok()) std::abort();
    if (!(*health)->CreateIndex("disease").ok()) std::abort();
    if (!(*personal)->CreateIndex("zipcode").ok()) std::abort();
  }
  audit::Auditor auditor(&world->db, &world->backlog, &world->log);
  audit::AuditOptions options;
  options.exec.use_index = use_index;
  options.minimize_batch = false;
  for (auto _ : state) {
    auto report = auditor.Audit(bench::CanonicalAudit(), Ts(1000000),
                                options);
    if (!report.ok()) std::abort();
    benchmark::DoNotOptimize(report);
  }
  state.SetLabel(use_index ? "indexed" : "scan");
}
BENCHMARK(BM_PipelineIndexAblation)
    ->Args({1000, 0})
    ->Args({1000, 1})
    ->Args({5000, 0})
    ->Args({5000, 1})
    ->Unit(benchmark::kMillisecond);

/// Join-reordering ablation on the audit executor.
void BM_PipelineReorderAblation(benchmark::State& state) {
  const bool reorder = state.range(0) != 0;
  auto world = bench::MakeWorld(/*patients=*/1000, /*log_size=*/1000);
  audit::Auditor auditor(&world->db, &world->backlog, &world->log);
  audit::AuditOptions options;
  options.exec.reorder_joins = reorder;
  options.minimize_batch = false;
  for (auto _ : state) {
    auto report = auditor.Audit(bench::CanonicalAudit(), Ts(1000000),
                                options);
    if (!report.ok()) std::abort();
    benchmark::DoNotOptimize(report);
  }
  state.SetLabel(reorder ? "greedy-reorder" : "from-order");
}
BENCHMARK(BM_PipelineReorderAblation)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

/// Limiting-parameter selectivity: the Pos-Role-Purpose clause admits a
/// shrinking slice of the log; cost should track the admitted count.
void BM_PipelineFilterSelectivity(benchmark::State& state) {
  const int64_t mode = state.range(0);
  std::string filter;
  switch (mode) {
    case 0:
      filter = "";  // everything
      break;
    case 1:
      filter = "Pos-Role-Purpose (clerk,-) ";  // 1 of 4 roles
      break;
    case 2:
      filter = "Pos-Role-Purpose (clerk,billing) ";  // 1/12 combos
      break;
    default:
      filter = "Pos-User-Identity nobody ";  // empty
      break;
  }
  RunPipeline(state, filter + bench::CanonicalAudit(), /*patients=*/300,
              /*log_size=*/4000, /*hash_join=*/true);
}
BENCHMARK(BM_PipelineFilterSelectivity)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->Unit(benchmark::kMillisecond);

}  // namespace

AUDITDB_BENCH_MAIN(end_to_end);
