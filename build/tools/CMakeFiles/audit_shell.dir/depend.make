# Empty dependencies file for audit_shell.
# This may be replaced when dependencies are built.
