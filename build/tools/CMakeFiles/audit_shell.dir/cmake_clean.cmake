file(REMOVE_RECURSE
  "CMakeFiles/audit_shell.dir/audit_shell.cpp.o"
  "CMakeFiles/audit_shell.dir/audit_shell.cpp.o.d"
  "audit_shell"
  "audit_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/audit_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
