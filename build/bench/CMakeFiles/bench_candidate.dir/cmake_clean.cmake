file(REMOVE_RECURSE
  "CMakeFiles/bench_candidate.dir/bench_candidate.cc.o"
  "CMakeFiles/bench_candidate.dir/bench_candidate.cc.o.d"
  "bench_candidate"
  "bench_candidate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_candidate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
