# Empty dependencies file for bench_candidate.
# This may be replaced when dependencies are built.
