file(REMOVE_RECURSE
  "CMakeFiles/bench_unified_vs_baseline.dir/bench_unified_vs_baseline.cc.o"
  "CMakeFiles/bench_unified_vs_baseline.dir/bench_unified_vs_baseline.cc.o.d"
  "bench_unified_vs_baseline"
  "bench_unified_vs_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_unified_vs_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
