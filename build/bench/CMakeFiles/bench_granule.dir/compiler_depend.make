# Empty compiler generated dependencies file for bench_granule.
# This may be replaced when dependencies are built.
