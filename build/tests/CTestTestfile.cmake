# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/types_test[1]_include.cmake")
include("/root/repo/build/tests/catalog_test[1]_include.cmake")
include("/root/repo/build/tests/expr_test[1]_include.cmake")
include("/root/repo/build/tests/sql_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/backlog_test[1]_include.cmake")
include("/root/repo/build/tests/querylog_test[1]_include.cmake")
include("/root/repo/build/tests/policy_test[1]_include.cmake")
include("/root/repo/build/tests/audit_attr_test[1]_include.cmake")
include("/root/repo/build/tests/audit_parser_test[1]_include.cmake")
include("/root/repo/build/tests/paper_examples_test[1]_include.cmake")
include("/root/repo/build/tests/target_view_test[1]_include.cmake")
include("/root/repo/build/tests/granule_test[1]_include.cmake")
include("/root/repo/build/tests/suspicion_test[1]_include.cmake")
include("/root/repo/build/tests/candidate_test[1]_include.cmake")
include("/root/repo/build/tests/auditor_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/online_test[1]_include.cmake")
include("/root/repo/build/tests/subsumption_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/end_to_end_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/shell_test[1]_include.cmake")
