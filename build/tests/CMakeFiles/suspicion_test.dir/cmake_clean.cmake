file(REMOVE_RECURSE
  "CMakeFiles/suspicion_test.dir/audit/suspicion_test.cc.o"
  "CMakeFiles/suspicion_test.dir/audit/suspicion_test.cc.o.d"
  "suspicion_test"
  "suspicion_test.pdb"
  "suspicion_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/suspicion_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
