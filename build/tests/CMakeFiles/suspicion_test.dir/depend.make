# Empty dependencies file for suspicion_test.
# This may be replaced when dependencies are built.
