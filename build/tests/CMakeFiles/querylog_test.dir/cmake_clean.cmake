file(REMOVE_RECURSE
  "CMakeFiles/querylog_test.dir/querylog/query_log_test.cc.o"
  "CMakeFiles/querylog_test.dir/querylog/query_log_test.cc.o.d"
  "querylog_test"
  "querylog_test.pdb"
  "querylog_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/querylog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
