file(REMOVE_RECURSE
  "CMakeFiles/audit_parser_test.dir/audit/audit_parser_test.cc.o"
  "CMakeFiles/audit_parser_test.dir/audit/audit_parser_test.cc.o.d"
  "audit_parser_test"
  "audit_parser_test.pdb"
  "audit_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/audit_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
