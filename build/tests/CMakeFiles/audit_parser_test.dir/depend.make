# Empty dependencies file for audit_parser_test.
# This may be replaced when dependencies are built.
