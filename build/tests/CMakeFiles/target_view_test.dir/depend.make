# Empty dependencies file for target_view_test.
# This may be replaced when dependencies are built.
