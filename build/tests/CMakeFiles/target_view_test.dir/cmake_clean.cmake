file(REMOVE_RECURSE
  "CMakeFiles/target_view_test.dir/audit/target_view_test.cc.o"
  "CMakeFiles/target_view_test.dir/audit/target_view_test.cc.o.d"
  "target_view_test"
  "target_view_test.pdb"
  "target_view_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/target_view_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
