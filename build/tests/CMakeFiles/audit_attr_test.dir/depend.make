# Empty dependencies file for audit_attr_test.
# This may be replaced when dependencies are built.
