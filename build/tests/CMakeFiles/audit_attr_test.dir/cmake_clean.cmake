file(REMOVE_RECURSE
  "CMakeFiles/audit_attr_test.dir/audit/attr_structure_test.cc.o"
  "CMakeFiles/audit_attr_test.dir/audit/attr_structure_test.cc.o.d"
  "audit_attr_test"
  "audit_attr_test.pdb"
  "audit_attr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/audit_attr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
