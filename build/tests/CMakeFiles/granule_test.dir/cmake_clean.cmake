file(REMOVE_RECURSE
  "CMakeFiles/granule_test.dir/audit/granule_test.cc.o"
  "CMakeFiles/granule_test.dir/audit/granule_test.cc.o.d"
  "granule_test"
  "granule_test.pdb"
  "granule_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/granule_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
