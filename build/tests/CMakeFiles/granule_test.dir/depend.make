# Empty dependencies file for granule_test.
# This may be replaced when dependencies are built.
