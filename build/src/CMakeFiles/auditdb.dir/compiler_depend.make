# Empty compiler generated dependencies file for auditdb.
# This may be replaced when dependencies are built.
