
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/audit/attr_structure.cc" "src/CMakeFiles/auditdb.dir/audit/attr_structure.cc.o" "gcc" "src/CMakeFiles/auditdb.dir/audit/attr_structure.cc.o.d"
  "/root/repo/src/audit/audit_expression.cc" "src/CMakeFiles/auditdb.dir/audit/audit_expression.cc.o" "gcc" "src/CMakeFiles/auditdb.dir/audit/audit_expression.cc.o.d"
  "/root/repo/src/audit/audit_parser.cc" "src/CMakeFiles/auditdb.dir/audit/audit_parser.cc.o" "gcc" "src/CMakeFiles/auditdb.dir/audit/audit_parser.cc.o.d"
  "/root/repo/src/audit/auditor.cc" "src/CMakeFiles/auditdb.dir/audit/auditor.cc.o" "gcc" "src/CMakeFiles/auditdb.dir/audit/auditor.cc.o.d"
  "/root/repo/src/audit/baseline_agrawal.cc" "src/CMakeFiles/auditdb.dir/audit/baseline_agrawal.cc.o" "gcc" "src/CMakeFiles/auditdb.dir/audit/baseline_agrawal.cc.o.d"
  "/root/repo/src/audit/baseline_motwani.cc" "src/CMakeFiles/auditdb.dir/audit/baseline_motwani.cc.o" "gcc" "src/CMakeFiles/auditdb.dir/audit/baseline_motwani.cc.o.d"
  "/root/repo/src/audit/candidate.cc" "src/CMakeFiles/auditdb.dir/audit/candidate.cc.o" "gcc" "src/CMakeFiles/auditdb.dir/audit/candidate.cc.o.d"
  "/root/repo/src/audit/expression_library.cc" "src/CMakeFiles/auditdb.dir/audit/expression_library.cc.o" "gcc" "src/CMakeFiles/auditdb.dir/audit/expression_library.cc.o.d"
  "/root/repo/src/audit/granule.cc" "src/CMakeFiles/auditdb.dir/audit/granule.cc.o" "gcc" "src/CMakeFiles/auditdb.dir/audit/granule.cc.o.d"
  "/root/repo/src/audit/online.cc" "src/CMakeFiles/auditdb.dir/audit/online.cc.o" "gcc" "src/CMakeFiles/auditdb.dir/audit/online.cc.o.d"
  "/root/repo/src/audit/subsumption.cc" "src/CMakeFiles/auditdb.dir/audit/subsumption.cc.o" "gcc" "src/CMakeFiles/auditdb.dir/audit/subsumption.cc.o.d"
  "/root/repo/src/audit/suspicion.cc" "src/CMakeFiles/auditdb.dir/audit/suspicion.cc.o" "gcc" "src/CMakeFiles/auditdb.dir/audit/suspicion.cc.o.d"
  "/root/repo/src/audit/target_view.cc" "src/CMakeFiles/auditdb.dir/audit/target_view.cc.o" "gcc" "src/CMakeFiles/auditdb.dir/audit/target_view.cc.o.d"
  "/root/repo/src/backlog/backlog.cc" "src/CMakeFiles/auditdb.dir/backlog/backlog.cc.o" "gcc" "src/CMakeFiles/auditdb.dir/backlog/backlog.cc.o.d"
  "/root/repo/src/backlog/snapshot.cc" "src/CMakeFiles/auditdb.dir/backlog/snapshot.cc.o" "gcc" "src/CMakeFiles/auditdb.dir/backlog/snapshot.cc.o.d"
  "/root/repo/src/catalog/catalog.cc" "src/CMakeFiles/auditdb.dir/catalog/catalog.cc.o" "gcc" "src/CMakeFiles/auditdb.dir/catalog/catalog.cc.o.d"
  "/root/repo/src/catalog/schema.cc" "src/CMakeFiles/auditdb.dir/catalog/schema.cc.o" "gcc" "src/CMakeFiles/auditdb.dir/catalog/schema.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/auditdb.dir/common/status.cc.o" "gcc" "src/CMakeFiles/auditdb.dir/common/status.cc.o.d"
  "/root/repo/src/common/string_util.cc" "src/CMakeFiles/auditdb.dir/common/string_util.cc.o" "gcc" "src/CMakeFiles/auditdb.dir/common/string_util.cc.o.d"
  "/root/repo/src/common/timestamp.cc" "src/CMakeFiles/auditdb.dir/common/timestamp.cc.o" "gcc" "src/CMakeFiles/auditdb.dir/common/timestamp.cc.o.d"
  "/root/repo/src/engine/executor.cc" "src/CMakeFiles/auditdb.dir/engine/executor.cc.o" "gcc" "src/CMakeFiles/auditdb.dir/engine/executor.cc.o.d"
  "/root/repo/src/engine/lineage.cc" "src/CMakeFiles/auditdb.dir/engine/lineage.cc.o" "gcc" "src/CMakeFiles/auditdb.dir/engine/lineage.cc.o.d"
  "/root/repo/src/expr/analysis.cc" "src/CMakeFiles/auditdb.dir/expr/analysis.cc.o" "gcc" "src/CMakeFiles/auditdb.dir/expr/analysis.cc.o.d"
  "/root/repo/src/expr/constraints.cc" "src/CMakeFiles/auditdb.dir/expr/constraints.cc.o" "gcc" "src/CMakeFiles/auditdb.dir/expr/constraints.cc.o.d"
  "/root/repo/src/expr/evaluator.cc" "src/CMakeFiles/auditdb.dir/expr/evaluator.cc.o" "gcc" "src/CMakeFiles/auditdb.dir/expr/evaluator.cc.o.d"
  "/root/repo/src/expr/expression.cc" "src/CMakeFiles/auditdb.dir/expr/expression.cc.o" "gcc" "src/CMakeFiles/auditdb.dir/expr/expression.cc.o.d"
  "/root/repo/src/expr/implication.cc" "src/CMakeFiles/auditdb.dir/expr/implication.cc.o" "gcc" "src/CMakeFiles/auditdb.dir/expr/implication.cc.o.d"
  "/root/repo/src/expr/satisfiability.cc" "src/CMakeFiles/auditdb.dir/expr/satisfiability.cc.o" "gcc" "src/CMakeFiles/auditdb.dir/expr/satisfiability.cc.o.d"
  "/root/repo/src/io/dump.cc" "src/CMakeFiles/auditdb.dir/io/dump.cc.o" "gcc" "src/CMakeFiles/auditdb.dir/io/dump.cc.o.d"
  "/root/repo/src/policy/access_filter.cc" "src/CMakeFiles/auditdb.dir/policy/access_filter.cc.o" "gcc" "src/CMakeFiles/auditdb.dir/policy/access_filter.cc.o.d"
  "/root/repo/src/policy/policy.cc" "src/CMakeFiles/auditdb.dir/policy/policy.cc.o" "gcc" "src/CMakeFiles/auditdb.dir/policy/policy.cc.o.d"
  "/root/repo/src/querylog/query_log.cc" "src/CMakeFiles/auditdb.dir/querylog/query_log.cc.o" "gcc" "src/CMakeFiles/auditdb.dir/querylog/query_log.cc.o.d"
  "/root/repo/src/sql/lexer.cc" "src/CMakeFiles/auditdb.dir/sql/lexer.cc.o" "gcc" "src/CMakeFiles/auditdb.dir/sql/lexer.cc.o.d"
  "/root/repo/src/sql/parser.cc" "src/CMakeFiles/auditdb.dir/sql/parser.cc.o" "gcc" "src/CMakeFiles/auditdb.dir/sql/parser.cc.o.d"
  "/root/repo/src/sql/printer.cc" "src/CMakeFiles/auditdb.dir/sql/printer.cc.o" "gcc" "src/CMakeFiles/auditdb.dir/sql/printer.cc.o.d"
  "/root/repo/src/storage/database.cc" "src/CMakeFiles/auditdb.dir/storage/database.cc.o" "gcc" "src/CMakeFiles/auditdb.dir/storage/database.cc.o.d"
  "/root/repo/src/storage/table.cc" "src/CMakeFiles/auditdb.dir/storage/table.cc.o" "gcc" "src/CMakeFiles/auditdb.dir/storage/table.cc.o.d"
  "/root/repo/src/types/value.cc" "src/CMakeFiles/auditdb.dir/types/value.cc.o" "gcc" "src/CMakeFiles/auditdb.dir/types/value.cc.o.d"
  "/root/repo/src/workload/generator.cc" "src/CMakeFiles/auditdb.dir/workload/generator.cc.o" "gcc" "src/CMakeFiles/auditdb.dir/workload/generator.cc.o.d"
  "/root/repo/src/workload/hospital.cc" "src/CMakeFiles/auditdb.dir/workload/hospital.cc.o" "gcc" "src/CMakeFiles/auditdb.dir/workload/hospital.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
