file(REMOVE_RECURSE
  "libauditdb.a"
)
