# Empty compiler generated dependencies file for expression_catalog.
# This may be replaced when dependencies are built.
