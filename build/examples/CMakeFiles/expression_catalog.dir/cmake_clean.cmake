file(REMOVE_RECURSE
  "CMakeFiles/expression_catalog.dir/expression_catalog.cpp.o"
  "CMakeFiles/expression_catalog.dir/expression_catalog.cpp.o.d"
  "expression_catalog"
  "expression_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/expression_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
