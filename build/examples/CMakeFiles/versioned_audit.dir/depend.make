# Empty dependencies file for versioned_audit.
# This may be replaced when dependencies are built.
