file(REMOVE_RECURSE
  "CMakeFiles/versioned_audit.dir/versioned_audit.cpp.o"
  "CMakeFiles/versioned_audit.dir/versioned_audit.cpp.o.d"
  "versioned_audit"
  "versioned_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/versioned_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
