file(REMOVE_RECURSE
  "CMakeFiles/batch_disclosure.dir/batch_disclosure.cpp.o"
  "CMakeFiles/batch_disclosure.dir/batch_disclosure.cpp.o.d"
  "batch_disclosure"
  "batch_disclosure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batch_disclosure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
