# Empty dependencies file for batch_disclosure.
# This may be replaced when dependencies are built.
