# Empty compiler generated dependencies file for hospital_audit.
# This may be replaced when dependencies are built.
