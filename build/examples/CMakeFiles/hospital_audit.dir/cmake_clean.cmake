file(REMOVE_RECURSE
  "CMakeFiles/hospital_audit.dir/hospital_audit.cpp.o"
  "CMakeFiles/hospital_audit.dir/hospital_audit.cpp.o.d"
  "hospital_audit"
  "hospital_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hospital_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
