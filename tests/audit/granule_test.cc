#include "src/audit/granule.h"

#include <gtest/gtest.h>

#include "src/audit/audit_parser.h"
#include "src/workload/hospital.h"

namespace auditdb {
namespace audit {
namespace {

Timestamp Ts(int64_t s) { return Timestamp(s * 1000000); }

class GranuleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(workload::BuildPaperDatabase(&db_, Ts(1)).ok());
  }

  AuditExpression Parse(const std::string& text) {
    auto expr = ParseAudit(text, Ts(1000));
    EXPECT_TRUE(expr.ok()) << expr.status().ToString();
    auto q = expr->Qualify(db_.catalog());
    EXPECT_TRUE(q.ok()) << q.ToString();
    return std::move(*expr);
  }

  TargetView View(const AuditExpression& expr) {
    auto view = ComputeTargetView(expr, db_.View(), Ts(1));
    EXPECT_TRUE(view.ok()) << view.status().ToString();
    return std::move(*view);
  }

  Database db_;
};

TEST_F(GranuleTest, BuildSchemesMandatory) {
  auto expr = Parse("AUDIT (name,disease) FROM P-Personal, P-Health "
                    "WHERE P-Personal.pid = P-Health.pid");
  auto schemes = BuildSchemes(expr);
  ASSERT_EQ(schemes.size(), 1u);
  EXPECT_EQ(schemes[0].attrs.size(), 2u);
  // Both tables own an audited attribute → both tids in the scheme.
  EXPECT_EQ(schemes[0].tid_tables,
            (std::vector<std::string>{"P-Personal", "P-Health"}));
}

TEST_F(GranuleTest, BuildSchemesTidOnlyForOwningTables) {
  auto expr = Parse("AUDIT (name) FROM P-Personal, P-Health "
                    "WHERE P-Personal.pid = P-Health.pid");
  auto schemes = BuildSchemes(expr);
  ASSERT_EQ(schemes.size(), 1u);
  // Only P-Personal owns `name`; P-Health contributes no tid.
  EXPECT_EQ(schemes[0].tid_tables,
            (std::vector<std::string>{"P-Personal"}));
}

TEST_F(GranuleTest, BuildSchemesNoTidsWhenIndispensableFalse) {
  auto expr = Parse("INDISPENSABLE false AUDIT (name) FROM P-Personal");
  auto schemes = BuildSchemes(expr);
  ASSERT_EQ(schemes.size(), 1u);
  EXPECT_TRUE(schemes[0].tid_tables.empty());
}

TEST_F(GranuleTest, ThresholdOneCountsFacts) {
  auto expr = Parse("AUDIT (name) FROM P-Personal");
  TargetView view = View(expr);  // 4 patients
  GranuleEnumerator g(view, BuildSchemes(expr), Threshold::N(1));
  EXPECT_DOUBLE_EQ(g.CountGranules(), 4.0);
  EXPECT_EQ(g.EffectiveK(0), 1u);
}

TEST_F(GranuleTest, ThresholdKGivesBinomialCount) {
  auto expr = Parse("THRESHOLD 2 AUDIT (name) FROM P-Personal");
  TargetView view = View(expr);
  GranuleEnumerator g(view, BuildSchemes(expr), expr.threshold);
  // C(4,2) = 6 granules of two facts each.
  EXPECT_DOUBLE_EQ(g.CountGranules(), 6.0);
  size_t visited = g.ForEach([&](const Granule& granule) {
    EXPECT_EQ(granule.fact_indices.size(), 2u);
    return true;
  });
  EXPECT_EQ(visited, 6u);
}

TEST_F(GranuleTest, ThresholdAllIsSingleGranule) {
  auto expr = Parse("THRESHOLD ALL AUDIT (name) FROM P-Personal");
  TargetView view = View(expr);
  GranuleEnumerator g(view, BuildSchemes(expr), expr.threshold);
  EXPECT_DOUBLE_EQ(g.CountGranules(), 1.0);  // C(4,4)
  EXPECT_EQ(g.EffectiveK(0), 4u);
}

TEST_F(GranuleTest, ThresholdLargerThanViewYieldsNothing) {
  auto expr = Parse("THRESHOLD 9 AUDIT (name) FROM P-Personal");
  TargetView view = View(expr);
  GranuleEnumerator g(view, BuildSchemes(expr), expr.threshold);
  EXPECT_DOUBLE_EQ(g.CountGranules(), 0.0);
  EXPECT_EQ(g.ForEach([](const Granule&) { return true; }), 0u);
}

TEST_F(GranuleTest, NullCellsExcluded) {
  // Reku's age is NULL: the age scheme has only 3 valid facts.
  auto expr = Parse("AUDIT [name,age] FROM P-Personal");
  TargetView view = View(expr);
  GranuleEnumerator g(view, BuildSchemes(expr), Threshold::N(1));
  // Schemes sorted: {age} first (3 valid facts), then {name} (4).
  EXPECT_DOUBLE_EQ(g.CountGranules(), 7.0);
  EXPECT_EQ(g.ValidFacts(0).size(), 3u);
  EXPECT_EQ(g.ValidFacts(1).size(), 4u);
}

TEST_F(GranuleTest, EarlyTermination) {
  auto expr = Parse("AUDIT [*] FROM P-Personal");
  TargetView view = View(expr);
  GranuleEnumerator g(view, BuildSchemes(expr), Threshold::N(1));
  uint64_t visited = g.ForEach([](const Granule&) { return false; });
  EXPECT_EQ(visited, 1u);
}

TEST_F(GranuleTest, RenderSingleFact) {
  auto expr = Parse("AUDIT (name) FROM P-Personal WHERE name = 'Jane'");
  TargetView view = View(expr);
  GranuleEnumerator g(view, BuildSchemes(expr), Threshold::N(1));
  std::vector<std::string> rendered = g.RenderDistinct(10);
  ASSERT_EQ(rendered.size(), 1u);
  EXPECT_EQ(rendered[0], "(t11,Jane)");
}

TEST_F(GranuleTest, RenderMultiFactGranule) {
  auto expr = Parse("THRESHOLD 2 AUDIT (name) FROM P-Personal "
                    "WHERE zipcode = '145568'");
  TargetView view = View(expr);  // Reku + Lucy
  GranuleEnumerator g(view, BuildSchemes(expr), expr.threshold);
  auto rendered = g.RenderDistinct(10);
  ASSERT_EQ(rendered.size(), 1u);
  EXPECT_EQ(rendered[0], "(t12,Reku); (t14,Lucy)");
}

TEST_F(GranuleTest, RenderDistinctLimit) {
  auto expr = Parse("AUDIT [*] FROM P-Personal");
  TargetView view = View(expr);
  GranuleEnumerator g(view, BuildSchemes(expr), Threshold::N(1));
  EXPECT_EQ(g.RenderDistinct(3).size(), 3u);
}

TEST_F(GranuleTest, ValueModeGranulesRenderWithoutTids) {
  auto expr = Parse("INDISPENSABLE false AUDIT (name) FROM P-Personal "
                    "WHERE name = 'Jane'");
  TargetView view = View(expr);
  GranuleEnumerator g(view, BuildSchemes(expr), Threshold::N(1));
  auto rendered = g.RenderDistinct(10);
  ASSERT_EQ(rendered.size(), 1u);
  EXPECT_EQ(rendered[0], "(Jane)");  // value-only: no tid component
}

TEST_F(GranuleTest, SchemeToString) {
  auto expr = Parse("AUDIT (name,disease) FROM P-Personal, P-Health "
                    "WHERE P-Personal.pid = P-Health.pid");
  auto schemes = BuildSchemes(expr);
  std::string text = schemes[0].ToString();
  EXPECT_NE(text.find("tid_P-Personal"), std::string::npos);
  EXPECT_NE(text.find("P-Health.disease"), std::string::npos);
}

TEST_F(GranuleTest, CombinatoricGrowthMatchesFormula) {
  // The paper notes ~2^k·2^n granule-set growth; spot-check C(n,k) at a
  // larger scale via the scaled hospital.
  Database big;
  workload::HospitalConfig config;
  config.num_patients = 30;
  config.null_age_fraction = 0;
  ASSERT_TRUE(workload::PopulateHospital(&big, config, Ts(1)).ok());
  auto expr = ParseAudit("THRESHOLD 3 AUDIT (name) FROM P-Personal", Ts(10));
  ASSERT_TRUE(expr.ok());
  ASSERT_TRUE(expr->Qualify(big.catalog()).ok());
  auto view = ComputeTargetView(*expr, big.View(), Ts(1));
  ASSERT_TRUE(view.ok());
  GranuleEnumerator g(*view, BuildSchemes(*expr), expr->threshold);
  EXPECT_DOUBLE_EQ(g.CountGranules(), 4060.0);  // C(30,3)
  EXPECT_EQ(g.ForEach([](const Granule&) { return true; }), 4060u);
}

}  // namespace
}  // namespace audit
}  // namespace auditdb
