// End-to-end ablation of AuditOptions::suspicion.tid_bitmaps: full audit
// reports must be byte-identical (CanonicalString) with the compressed
// bitmap kernels on and off, across indispensability modes, value
// containment, and a generated workload. Also differentials the
// GranuleEnumerator validity-screen kernels.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/audit/audit_parser.h"
#include "src/audit/auditor.h"
#include "src/audit/granule.h"
#include "src/workload/generator.h"
#include "src/workload/hospital.h"

namespace auditdb {
namespace audit {
namespace {

Timestamp Ts(int64_t s) { return Timestamp(s * 1000000); }

class BitmapAblationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    backlog_.Attach(&db_);
    ASSERT_TRUE(workload::BuildPaperDatabase(&db_, Ts(1)).ok());
  }

  int64_t Log(const std::string& sql, int64_t at_seconds) {
    return log_.Append(sql, Ts(at_seconds), "alice", "doctor", "treatment");
  }

  AuditReport MustAudit(const std::string& text, const AuditOptions& options) {
    Auditor auditor(&db_, &backlog_, &log_);
    auto report = auditor.Audit(text, Ts(1000), options);
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    return std::move(*report);
  }

  /// Audits `text` with tid_bitmaps on and off (same base options
  /// otherwise) and asserts the rendered reports are byte-identical.
  void ExpectByteIdentical(const std::string& text,
                           AuditOptions options = AuditOptions{}) {
    options.suspicion.tid_bitmaps = true;
    auto with = MustAudit(text, options);
    options.suspicion.tid_bitmaps = false;
    auto without = MustAudit(text, options);
    EXPECT_EQ(with.CanonicalString(), without.CanonicalString());
  }

  const std::string kSpan =
      "DURING 1/1/1970 to 2/1/1970 DATA-INTERVAL 1/1/1970 to 2/1/1970 ";

  Database db_;
  Backlog backlog_;
  QueryLog log_;
};

TEST_F(BitmapAblationTest, PerTableModeByteIdentical) {
  Log("SELECT ward FROM P-Health WHERE ward='W11'", 10);
  Log("SELECT name, address FROM P-Personal WHERE zipcode='145568'", 20);
  Log("SELECT disease FROM P-Health WHERE disease='diabetic'", 30);
  Log("SELECT name, disease, address FROM P-Personal, P-Health, P-Employ "
      "WHERE P-Personal.pid=P-Health.pid AND P-Health.pid=P-Employ.pid "
      "AND zipcode='145568' AND disease='diabetic' AND salary > 10000",
      40);
  ExpectByteIdentical(
      kSpan +
      "AUDIT (name,disease,address) FROM P-Personal, P-Health, P-Employ "
      "WHERE P-Personal.pid=P-Health.pid and P-Health.pid=P-Employ.pid "
      "and P-Personal.zipcode='145568' and P-Employ.salary > 10000 "
      "and P-Health.disease='diabetic'");
}

TEST_F(BitmapAblationTest, JointModeByteIdentical) {
  Log("SELECT name, address FROM P-Personal WHERE zipcode='145568'", 10);
  Log("SELECT disease FROM P-Health WHERE disease='diabetic'", 20);
  Log("SELECT name, disease FROM P-Personal, P-Health "
      "WHERE P-Personal.pid=P-Health.pid AND zipcode='145568' "
      "AND disease='diabetic'",
      30);
  AuditOptions joint;
  joint.suspicion.mode = IndispensabilityMode::kJointPerQuery;
  ExpectByteIdentical(
      kSpan +
      "AUDIT (name,disease) FROM P-Personal, P-Health "
      "WHERE P-Personal.pid = P-Health.pid AND disease='diabetic'",
      joint);
}

TEST_F(BitmapAblationTest, ValueContainmentByteIdentical) {
  Log("SELECT name FROM P-Personal WHERE zipcode='145568'", 10);
  Log("SELECT pid FROM P-Personal WHERE name='Reku'", 20);
  Log("SELECT name FROM P-Personal", 30);
  ExpectByteIdentical(kSpan +
                      "INDISPENSABLE false AUDIT (name) FROM P-Personal "
                      "WHERE zipcode = '145568'");
}

TEST_F(BitmapAblationTest, GeneratedWorkloadByteIdentical) {
  // A denser hospital and a generated mixed workload: joins, point reads,
  // dumps — with a healthy fraction touching the audited columns.
  Database db;
  Backlog backlog;
  backlog.Attach(&db);
  workload::HospitalConfig hospital;
  hospital.num_patients = 200;
  hospital.seed = 13;
  ASSERT_TRUE(workload::PopulateHospital(&db, hospital, Ts(1)).ok());
  QueryLog log;
  workload::WorkloadConfig config;
  config.num_queries = 120;
  config.seed = 20260809;
  config.start = Ts(100);
  config.sensitive_fraction = 0.5;
  ASSERT_TRUE(workload::GenerateWorkload(&log, config, hospital).ok());

  const std::string text =
      kSpan +
      "AUDIT (name,disease) FROM P-Personal, P-Health "
      "WHERE P-Personal.pid = P-Health.pid AND disease='diabetic'";
  for (auto mode : {IndispensabilityMode::kPerTable,
                    IndispensabilityMode::kJointPerQuery}) {
    AuditOptions options;
    options.suspicion.mode = mode;
    Auditor auditor(&db, &backlog, &log);
    options.suspicion.tid_bitmaps = true;
    auto with = auditor.Audit(text, Ts(1000), options);
    ASSERT_TRUE(with.ok()) << with.status().ToString();
    options.suspicion.tid_bitmaps = false;
    auto without = auditor.Audit(text, Ts(1000), options);
    ASSERT_TRUE(without.ok()) << without.status().ToString();
    EXPECT_EQ(with->CanonicalString(), without->CanonicalString());
    // The workload is built to contain at least some disclosing queries;
    // guard against the comparison passing vacuously on empty verdicts.
    EXPECT_GT(with->num_candidates, 0u);
  }
}

TEST_F(BitmapAblationTest, GranuleScreenKernelsAgree) {
  auto parsed = ParseAudit(
      "AUDIT (name,disease,address) "
      "FROM P-Personal, P-Health, P-Employ "
      "WHERE P-Personal.pid=P-Health.pid and P-Health.pid=P-Employ.pid "
      "and P-Personal.zipcode='145568' and P-Employ.salary > 10000 "
      "and P-Health.disease='diabetic'",
      Ts(1000));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_TRUE(parsed->Qualify(db_.catalog()).ok());
  auto view = ComputeTargetView(*parsed, db_.View(), Ts(1));
  ASSERT_TRUE(view.ok());
  GranuleEnumerator with(*view, BuildSchemes(*parsed), parsed->threshold,
                         /*use_bitmaps=*/true);
  GranuleEnumerator without(*view, BuildSchemes(*parsed), parsed->threshold,
                            /*use_bitmaps=*/false);
  ASSERT_EQ(with.schemes().size(), without.schemes().size());
  for (size_t s = 0; s < with.schemes().size(); ++s) {
    EXPECT_EQ(with.ValidFacts(s), without.ValidFacts(s));
    EXPECT_EQ(with.EffectiveK(s), without.EffectiveK(s));
  }
  EXPECT_DOUBLE_EQ(with.CountGranules(), without.CountGranules());
  EXPECT_EQ(with.RenderDistinct(64), without.RenderDistinct(64));
}

}  // namespace
}  // namespace audit
}  // namespace auditdb
