#include "src/audit/online.h"

#include <gtest/gtest.h>

#include "src/audit/audit_parser.h"
#include "src/audit/auditor.h"
#include "src/workload/generator.h"
#include "src/workload/hospital.h"

namespace auditdb {
namespace audit {
namespace {

Timestamp Ts(int64_t s) { return Timestamp(s * 1000000); }

LoggedQuery Q(int64_t id, const std::string& sql, int64_t at = 100,
              const std::string& role = "doctor",
              const std::string& purpose = "treatment") {
  LoggedQuery q;
  q.id = id;
  q.sql = sql;
  q.timestamp = Ts(at);
  q.user = "alice";
  q.role = role;
  q.purpose = purpose;
  return q;
}

class OnlineAuditorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(workload::BuildPaperDatabase(&db_, Ts(1)).ok());
    online_ = std::make_unique<OnlineAuditor>(&db_);
  }

  AuditExpression Parse(const std::string& text) {
    auto expr = ParseAudit("DURING 1/1/1970 to 2/1/1970 " + text, Ts(1000));
    EXPECT_TRUE(expr.ok()) << expr.status().ToString();
    return std::move(*expr);
  }

  const std::string kSemantic =
      "AUDIT (name,disease) FROM P-Personal, P-Health "
      "WHERE P-Personal.pid = P-Health.pid AND disease = 'diabetic'";

  Database db_;
  std::unique_ptr<OnlineAuditor> online_;
};

TEST_F(OnlineAuditorTest, RegistersAndScreens) {
  auto id = online_->AddExpression(Parse(kSemantic));
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  EXPECT_EQ(online_->size(), 1u);

  auto initial = online_->Current();
  ASSERT_EQ(initial.size(), 1u);
  EXPECT_FALSE(initial[0].fired);
  EXPECT_DOUBLE_EQ(initial[0].rank, 0.0);
}

TEST_F(OnlineAuditorTest, FiresOnFullDisclosure) {
  ASSERT_TRUE(online_->AddExpression(Parse(kSemantic)).ok());
  auto screenings = online_->Observe(Q(
      1,
      "SELECT name, disease FROM P-Personal, P-Health "
      "WHERE P-Personal.pid=P-Health.pid AND disease='diabetic'"));
  ASSERT_TRUE(screenings.ok()) << screenings.status().ToString();
  ASSERT_EQ(screenings->size(), 1u);
  EXPECT_TRUE((*screenings)[0].fired);
  EXPECT_DOUBLE_EQ((*screenings)[0].rank, 1.0);
}

TEST_F(OnlineAuditorTest, RankRisesMonotonicallyAcrossPartialQueries) {
  ASSERT_TRUE(online_->AddExpression(Parse(kSemantic)).ok());

  // Step 1: names of the zip-code population — partial coverage.
  auto s1 = online_->Observe(
      Q(1, "SELECT name FROM P-Personal WHERE zipcode='145568'"));
  ASSERT_TRUE(s1.ok());
  double r1 = (*s1)[0].rank;
  EXPECT_FALSE((*s1)[0].fired);
  EXPECT_GT(r1, 0.0);
  EXPECT_LT(r1, 1.0);

  // Step 2: diseases — completes the scheme.
  auto s2 = online_->Observe(
      Q(2, "SELECT disease FROM P-Health WHERE disease='diabetic'"));
  ASSERT_TRUE(s2.ok());
  EXPECT_TRUE((*s2)[0].fired);
  EXPECT_DOUBLE_EQ((*s2)[0].rank, 1.0);
  EXPECT_GE((*s2)[0].rank, r1);
}

TEST_F(OnlineAuditorTest, IrrelevantQueriesLeaveRankAtZero) {
  ASSERT_TRUE(online_->AddExpression(Parse(kSemantic)).ok());
  auto s = online_->Observe(
      Q(1, "SELECT employer FROM P-Employ WHERE salary > 15000"));
  ASSERT_TRUE(s.ok());
  EXPECT_FALSE((*s)[0].fired);
  EXPECT_DOUBLE_EQ((*s)[0].rank, 0.0);
}

TEST_F(OnlineAuditorTest, LimitingParametersSkipObservations) {
  auto expr = Parse("Neg-Role-Purpose (clerk,-) " + kSemantic);
  ASSERT_TRUE(online_->AddExpression(expr).ok());
  auto s = online_->Observe(Q(
      1,
      "SELECT name, disease FROM P-Personal, P-Health "
      "WHERE P-Personal.pid=P-Health.pid AND disease='diabetic'",
      100, "clerk", "billing"));
  ASSERT_TRUE(s.ok());
  EXPECT_FALSE((*s)[0].fired);  // the clerk's access is out of audit scope

  auto s2 = online_->Observe(Q(
      2,
      "SELECT name, disease FROM P-Personal, P-Health "
      "WHERE P-Personal.pid=P-Health.pid AND disease='diabetic'",
      100, "doctor", "treatment"));
  ASSERT_TRUE(s2.ok());
  EXPECT_TRUE((*s2)[0].fired);
}

TEST_F(OnlineAuditorTest, MultipleStandingExpressions) {
  ASSERT_TRUE(online_->AddExpression(Parse(kSemantic)).ok());
  ASSERT_TRUE(online_
                  ->AddExpression(Parse(
                      "AUDIT (salary) FROM P-Employ WHERE salary > 15000"))
                  .ok());
  auto s = online_->Observe(
      Q(1, "SELECT salary FROM P-Employ WHERE employer='E2'"));
  ASSERT_TRUE(s.ok());
  ASSERT_EQ(s->size(), 2u);
  EXPECT_FALSE((*s)[0].fired);  // disease audit untouched
  EXPECT_TRUE((*s)[1].fired);   // salary audit fired (E2 pays 20000)
}

TEST_F(OnlineAuditorTest, ViewRebuiltAfterDataChanges) {
  ASSERT_TRUE(online_->AddExpression(Parse(kSemantic)).ok());
  // A new diabetic patient appears after registration.
  ASSERT_TRUE(db_.Insert("P-Personal",
                         {Value::String("p99"), Value::String("Nora"),
                          Value::Int(41), Value::String("F"),
                          Value::String("145568"), Value::String("A9")},
                         Ts(50))
                  .ok());
  ASSERT_TRUE(db_.Insert("P-Health",
                         {Value::String("p99"), Value::String("W1"),
                          Value::String("Mehta"), Value::String("diabetic"),
                          Value::String("drug1")},
                         Ts(51))
                  .ok());
  auto s = online_->Observe(Q(
      1,
      "SELECT name, disease FROM P-Personal, P-Health "
      "WHERE P-Personal.pid=P-Health.pid AND name='Nora'"));
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE((*s)[0].fired);  // the rebuilt U contains Nora's fact
}

TEST_F(OnlineAuditorTest, ThresholdNeedsEnoughDistinctFacts) {
  ASSERT_TRUE(online_
                  ->AddExpression(Parse(
                      "THRESHOLD 2 AUDIT (name) FROM P-Personal "
                      "WHERE zipcode='145568'"))
                  .ok());
  auto s1 = online_->Observe(
      Q(1, "SELECT name FROM P-Personal WHERE name='Reku'"));
  ASSERT_TRUE(s1.ok());
  EXPECT_FALSE((*s1)[0].fired);
  EXPECT_LT((*s1)[0].rank, 1.0);
  auto s2 = online_->Observe(
      Q(2, "SELECT name FROM P-Personal WHERE name='Lucy'"));
  ASSERT_TRUE(s2.ok());
  EXPECT_TRUE((*s2)[0].fired);
}

TEST_F(OnlineAuditorTest, RankReportsBestSchemeForOptionalGroups) {
  // [name,age]: two schemes; accessing age rows should max the age
  // scheme's rank while name stays untouched.
  ASSERT_TRUE(online_
                  ->AddExpression(Parse(
                      "AUDIT [name,age] FROM P-Personal WHERE age < 30"))
                  .ok());
  auto s = online_->Observe(
      Q(1, "SELECT age FROM P-Personal WHERE age < 30"));
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE((*s)[0].fired);  // single-attr scheme fully covered
  EXPECT_DOUBLE_EQ((*s)[0].rank, 1.0);
}

TEST_F(OnlineAuditorTest, PartialThresholdRankBetweenZeroAndOne) {
  ASSERT_TRUE(online_
                  ->AddExpression(Parse(
                      "THRESHOLD 3 AUDIT (name) FROM P-Personal"))
                  .ok());
  // One of the required three facts accessed: rank = (1 + 1) / (1 + 3).
  auto s = online_->Observe(
      Q(1, "SELECT name FROM P-Personal WHERE name='Jane'"));
  ASSERT_TRUE(s.ok());
  EXPECT_FALSE((*s)[0].fired);
  EXPECT_DOUBLE_EQ((*s)[0].rank, 0.5);
}

TEST_F(OnlineAuditorTest, ResetBatchesClearsState) {
  ASSERT_TRUE(online_->AddExpression(Parse(kSemantic)).ok());
  auto s = online_->Observe(Q(
      1,
      "SELECT name, disease FROM P-Personal, P-Health "
      "WHERE P-Personal.pid=P-Health.pid AND disease='diabetic'"));
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE((*s)[0].fired);
  online_->ResetBatches();
  auto current = online_->Current();
  EXPECT_FALSE(current[0].fired);
  EXPECT_DOUBLE_EQ(current[0].rank, 0.0);
}

TEST_F(OnlineAuditorTest, ValueContainmentUnsupported) {
  auto expr = Parse("INDISPENSABLE false " + kSemantic);
  auto id = online_->AddExpression(expr);
  EXPECT_FALSE(id.ok());
  EXPECT_EQ(id.status().code(), StatusCode::kUnimplemented);
}

TEST_F(OnlineAuditorTest, UnparseableQueriesAreIgnored) {
  ASSERT_TRUE(online_->AddExpression(Parse(kSemantic)).ok());
  auto s = online_->Observe(Q(1, "DELETE FROM P-Health"));
  ASSERT_TRUE(s.ok());
  EXPECT_FALSE((*s)[0].fired);
}

// --- Scheme-state alignment (regression) ------------------------------

/// The old rebuild dropped failed resolutions while filling
/// attr_columns/tid_positions, so RecomputeAccessCounts paired
/// tid_positions[i] with scheme.tid_tables[i] of a *different* table —
/// silently undercounting access. The rebuild must fail instead.
TEST_F(OnlineAuditorTest, SchemeStateRebuildFailsOnMissingTidTable) {
  auto expr = Parse(kSemantic);
  ASSERT_TRUE(expr.Qualify(db_.catalog()).ok());
  // Hand-built view resolving every audited attribute but lacking the
  // *first* tid table (P-Personal). The drop-and-continue behaviour
  // would resolve only P-Health into tid_positions[0] and pair it with
  // tid_tables[0] = P-Personal downstream.
  TargetView view;
  view.tables = {"P-Health"};
  view.columns = {{"P-Personal", "name"},
                  {"P-Health", "disease"},
                  {"P-Personal", "pid"},
                  {"P-Health", "pid"}};
  auto states = BuildOnlineSchemeStates(expr, view, {});
  ASSERT_FALSE(states.ok());
  EXPECT_NE(states.status().message().find("P-Personal"),
            std::string::npos)
      << states.status().ToString();
}

TEST_F(OnlineAuditorTest, SchemeStateRebuildFailsOnMissingAttribute) {
  auto expr = Parse(kSemantic);
  ASSERT_TRUE(expr.Qualify(db_.catalog()).ok());
  TargetView view;
  view.tables = {"P-Personal", "P-Health"};
  view.columns = {{"P-Personal", "name"}};  // disease unresolvable
  auto states = BuildOnlineSchemeStates(expr, view, {});
  ASSERT_FALSE(states.ok());
  EXPECT_NE(states.status().message().find("disease"), std::string::npos);
}

TEST_F(OnlineAuditorTest, SchemeStateVectorsStayIndexAligned) {
  auto expr = Parse(kSemantic);
  ASSERT_TRUE(expr.Qualify(db_.catalog()).ok());
  auto view = ComputeTargetView(expr, db_.View(), Ts(1));
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  auto states = BuildOnlineSchemeStates(expr, *view, {});
  ASSERT_TRUE(states.ok()) << states.status().ToString();
  for (const auto& state : *states) {
    EXPECT_EQ(state.attr_columns.size(), state.scheme.attrs.size());
    EXPECT_EQ(state.tid_positions.size(), state.scheme.tid_tables.size());
  }
}

// --- Candidacy-error propagation --------------------------------------

TEST_F(OnlineAuditorTest, CandidacyErrorsPropagateInsteadOfClearing) {
  ASSERT_TRUE(online_->AddExpression(Parse(kSemantic)).ok());
  // Parses fine, but the static candidacy check cannot resolve the
  // table. The old monitor treated this as "not a candidate" and moved
  // on; nothing was proven about the query, so it must surface.
  auto s = online_->Observe(Q(1, "SELECT name FROM NoSuchTable"));
  EXPECT_FALSE(s.ok());
}

TEST_F(OnlineAuditorTest, CandidacyErrorsPropagateWithIndexAndCacheOff) {
  OnlineAuditorOptions options;
  options.index_enabled = false;
  options.cache_enabled = false;
  OnlineAuditor plain(&db_, options);
  ASSERT_TRUE(plain.AddExpression(Parse(kSemantic)).ok());
  auto s = plain.Observe(Q(1, "SELECT name FROM NoSuchTable"));
  EXPECT_FALSE(s.ok());
}

// --- Expression index + decision cache --------------------------------

TEST_F(OnlineAuditorTest, IndexSkipsUntouchedExpressions) {
  ASSERT_TRUE(online_->AddExpression(Parse(kSemantic)).ok());
  ASSERT_TRUE(online_
                  ->AddExpression(Parse(
                      "AUDIT (salary) FROM P-Employ WHERE salary > 15000"))
                  .ok());
  // Touches only the salary audit: the disease expression is skipped
  // without any per-expression work.
  auto s = online_->Observe(
      Q(1, "SELECT salary FROM P-Employ WHERE employer='E2'"));
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE((*s)[1].fired);
  const AuditIndexStats& stats = online_->stats();
  EXPECT_EQ(stats.index_lookups.load(), 1u);
  EXPECT_EQ(stats.index_visited.load(), 1u);
  EXPECT_EQ(stats.index_skipped.load(), 1u);
}

TEST_F(OnlineAuditorTest, RepeatedQueriesHitTheDecisionCache) {
  ASSERT_TRUE(online_->AddExpression(Parse(kSemantic)).ok());
  const char* sql =
      "SELECT name FROM P-Personal WHERE zipcode='145568'";
  ASSERT_TRUE(online_->Observe(Q(1, sql)).ok());
  uint64_t misses = online_->stats().cache_misses.load();
  uint64_t hits = online_->stats().cache_hits.load();
  ASSERT_TRUE(online_->Observe(Q(2, sql)).ok());
  EXPECT_EQ(online_->stats().cache_misses.load(), misses);
  EXPECT_GT(online_->stats().cache_hits.load(), hits);
}

TEST_F(OnlineAuditorTest, VersionKeysSurviveUnrelatedWritesButNotOwnOnes) {
  ASSERT_TRUE(online_->AddExpression(Parse(kSemantic)).ok());
  const char* sql =
      "SELECT name FROM P-Personal WHERE zipcode='145568'";
  ASSERT_TRUE(online_->Observe(Q(1, sql)).ok());
  // A row write to a table the query does not read (P-Health) leaves
  // every cached decision about it valid: static decisions are keyed on
  // the catalog epoch and the executed profile on the epoch fingerprint
  // of the query's own FROM tables. The re-observation is pure hits —
  // nothing is recomputed and nothing was wholesale-invalidated.
  ASSERT_TRUE(db_.Insert("P-Health",
                         {Value::String("p78"), Value::String("W9"),
                          Value::String("Smith"), Value::String("flu"),
                          Value::String("drug9")},
                         Ts(10))
                  .ok());
  uint64_t misses = online_->stats().cache_misses.load();
  uint64_t hits = online_->stats().cache_hits.load();
  ASSERT_TRUE(online_->Observe(Q(2, sql)).ok());
  EXPECT_EQ(online_->stats().cache_misses.load(), misses);
  EXPECT_GT(online_->stats().cache_hits.load(), hits);
  EXPECT_EQ(online_->stats().cache_invalidations.load(), 0u);
  // A write to the queried table bumps its version epoch, so the
  // executed profile recomputes against the new state (no stale hit).
  ASSERT_TRUE(db_.UpdateColumn("P-Personal", 12, "zipcode",
                               Value::String("999999"), Ts(11))
                  .ok());
  misses = online_->stats().cache_misses.load();
  ASSERT_TRUE(online_->Observe(Q(3, sql)).ok());
  EXPECT_GT(online_->stats().cache_misses.load(), misses);
}

TEST_F(OnlineAuditorTest, SharedCacheServesMultipleAuditors) {
  auto cache = std::make_shared<DecisionCache>();
  OnlineAuditorOptions options;
  options.cache = cache;
  OnlineAuditor first(&db_, options);
  OnlineAuditor second(&db_, options);
  ASSERT_TRUE(first.AddExpression(Parse(kSemantic)).ok());
  ASSERT_TRUE(second.AddExpression(Parse(kSemantic)).ok());
  const char* sql =
      "SELECT name FROM P-Personal WHERE zipcode='145568'";
  ASSERT_TRUE(first.Observe(Q(1, sql)).ok());
  uint64_t hits = cache->stats()->cache_hits.load();
  // The second auditor's identical decisions come out of the shared
  // cache the first one populated.
  ASSERT_TRUE(second.Observe(Q(1, sql)).ok());
  EXPECT_GT(cache->stats()->cache_hits.load(), hits);
}

/// Differential: the online monitor must fire on exactly the workloads
/// the offline batch auditor flags, when the data never changes.
class OnlineVsOffline : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OnlineVsOffline, AgreeOnStaticData) {
  Database db;
  Backlog backlog;
  backlog.Attach(&db);
  workload::HospitalConfig hospital;
  hospital.num_patients = 30;
  hospital.seed = GetParam();
  ASSERT_TRUE(workload::PopulateHospital(&db, hospital, Ts(1)).ok());

  QueryLog log;
  workload::WorkloadConfig config;
  config.num_queries = 40;
  config.seed = GetParam() * 31;
  config.start = Ts(100);
  ASSERT_TRUE(workload::GenerateWorkload(&log, config, hospital).ok());

  auto expr = ParseAudit(
      "DURING 1/1/1970 to 2/1/1970 DATA-INTERVAL 1/1/1970 to 2/1/1970 "
      "AUDIT (name,disease) FROM P-Personal, P-Health "
      "WHERE P-Personal.pid = P-Health.pid AND disease='diabetic'",
      Ts(1000));
  ASSERT_TRUE(expr.ok());

  Auditor offline(&db, &backlog, &log);
  AuditOptions options;
  options.per_query_verdicts = false;
  options.minimize_batch = false;
  auto report = offline.Audit(*expr, options);
  ASSERT_TRUE(report.ok());

  // Index/cache on (default) and fully off must produce byte-identical
  // screenings at every step — the index is a pure pruning layer.
  OnlineAuditor online(&db);
  OnlineAuditorOptions plain_options;
  plain_options.index_enabled = false;
  plain_options.cache_enabled = false;
  OnlineAuditor plain(&db, plain_options);
  ASSERT_TRUE(online.AddExpression(*expr).ok());
  ASSERT_TRUE(plain.AddExpression(*expr).ok());
  bool fired = false;
  for (size_t qi = 0; qi < log.size(); ++qi) {
    const auto& entry = log.Entry(qi);
    auto s = online.Observe(entry);
    auto p = plain.Observe(entry);
    ASSERT_EQ(s.ok(), p.ok());
    ASSERT_TRUE(s.ok());
    ASSERT_EQ(s->size(), p->size());
    for (size_t e = 0; e < s->size(); ++e) {
      EXPECT_EQ((*s)[e].fired, (*p)[e].fired) << "seed=" << GetParam();
      EXPECT_EQ((*s)[e].rank, (*p)[e].rank) << "seed=" << GetParam();
      EXPECT_EQ((*s)[e].best_scheme, (*p)[e].best_scheme);
    }
    fired = (*s)[0].fired;
  }
  EXPECT_EQ(fired, report->batch_suspicious) << "seed=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, OnlineVsOffline,
                         ::testing::Range<uint64_t>(1, 11));

}  // namespace
}  // namespace audit
}  // namespace auditdb
