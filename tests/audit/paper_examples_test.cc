/// Regenerates every worked example of the paper on the reconstructed
/// Tables 1-3 instance and checks the output against the listings in the
/// paper: the target data views of Tables 4 and 5, and the granule sets of
/// Figures 4, 5 and 6. See DESIGN.md for the reconstruction notes (Reku's
/// NULL age; the spurious "(t32)" item in Fig. 5's listing).

#include <gtest/gtest.h>

#include <algorithm>

#include "src/audit/audit_parser.h"
#include "src/audit/granule.h"
#include "src/audit/suspicion.h"
#include "src/audit/target_view.h"
#include "src/workload/hospital.h"

namespace auditdb {
namespace audit {
namespace {

Timestamp Ts(int64_t s) { return Timestamp(s * 1000000); }

class PaperExamplesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(workload::BuildPaperDatabase(&db_, Ts(1)).ok());
    now_ = Ts(1000);
  }

  AuditExpression MustParse(const std::string& text) {
    auto expr = ParseAudit(text, now_);
    EXPECT_TRUE(expr.ok()) << expr.status().ToString();
    auto qualified = expr->Qualify(db_.catalog());
    EXPECT_TRUE(qualified.ok()) << qualified.ToString();
    return std::move(*expr);
  }

  TargetView MustView(const AuditExpression& expr) {
    auto view = ComputeTargetView(expr, db_.View(), now_);
    EXPECT_TRUE(view.ok()) << view.status().ToString();
    return std::move(*view);
  }

  /// All distinct granules, paper-style, sorted for set comparison.
  std::vector<std::string> Granules(const AuditExpression& expr) {
    TargetView view = MustView(expr);
    GranuleEnumerator enumerator(view, BuildSchemes(expr), expr.threshold);
    auto rendered = enumerator.RenderDistinct(10000);
    std::sort(rendered.begin(), rendered.end());
    return rendered;
  }

  Database db_;
  Timestamp now_;
};

// --- Audit Expression-1 (Fig. 2) → Table 4 ---------------------------

TEST_F(PaperExamplesTest, Table4TargetViewOfAuditExpression1) {
  auto expr = MustParse(
      "AUDIT name, age, address FROM P-Personal WHERE age < 30");
  TargetView view = MustView(expr);

  // Table 4: t11 Jane 25 A1 / t13 Robert 29 A3 / t14 Lucy 20 A4.
  ASSERT_EQ(view.size(), 3u);
  EXPECT_EQ(view.facts[0].tids, (std::vector<Tid>{11}));
  EXPECT_EQ(view.facts[0].values[0], Value::String("Jane"));
  EXPECT_EQ(view.facts[0].values[1], Value::Int(25));
  EXPECT_EQ(view.facts[0].values[2], Value::String("A1"));
  EXPECT_EQ(view.facts[1].tids, (std::vector<Tid>{13}));
  EXPECT_EQ(view.facts[1].values[0], Value::String("Robert"));
  EXPECT_EQ(view.facts[2].tids, (std::vector<Tid>{14}));
  EXPECT_EQ(view.facts[2].values[0], Value::String("Lucy"));

  // Scheme: name, age, address (audit list; age also in WHERE).
  ASSERT_EQ(view.columns.size(), 3u);
  EXPECT_EQ(view.columns[0].column, "name");
  EXPECT_EQ(view.columns[1].column, "age");
  EXPECT_EQ(view.columns[2].column, "address");
}

// --- Audit Expression-2 (Fig. 3) → Table 5 ---------------------------

TEST_F(PaperExamplesTest, Table5TargetViewOfAuditExpression2) {
  auto expr = MustParse(
      "AUDIT name, disease, address "
      "FROM P-Personal, P-Health, P-Employ "
      "WHERE P-Personal.pid=P-Health.pid and P-Health.pid=P-Employ.pid "
      "and P-Personal.zipcode=145568 and P-Employ.salary > 10000 "
      "and P-Health.disease='diabetic'");
  TargetView view = MustView(expr);

  // Table 5: (t12,t22,t32) Reku and (t14,t24,t34) Lucy.
  ASSERT_EQ(view.size(), 2u);
  EXPECT_EQ(view.facts[0].tids, (std::vector<Tid>{12, 22, 32}));
  EXPECT_EQ(view.facts[1].tids, (std::vector<Tid>{14, 24, 34}));

  auto value = [&](size_t fact, const char* table,
                   const char* column) -> Value {
    auto idx = view.ColumnIndex(ColumnRef{table, column});
    EXPECT_TRUE(idx.ok());
    return view.facts[fact].values[*idx];
  };
  EXPECT_EQ(value(0, "P-Personal", "name"), Value::String("Reku"));
  EXPECT_EQ(value(0, "P-Health", "disease"), Value::String("diabetic"));
  EXPECT_EQ(value(0, "P-Personal", "zipcode"), Value::String("145568"));
  EXPECT_EQ(value(0, "P-Employ", "salary"), Value::Int(20000));
  EXPECT_EQ(value(1, "P-Personal", "name"), Value::String("Lucy"));
  EXPECT_EQ(value(1, "P-Personal", "address"), Value::String("A4"));
  EXPECT_EQ(value(1, "P-Employ", "salary"), Value::Int(19000));
}

// --- Fig. 4: perfect-privacy granule set ------------------------------

TEST_F(PaperExamplesTest, Fig4PerfectPrivacyGranules) {
  auto expr = MustParse(
      "INDISPENSABLE = true "
      "AUDIT [*] "
      "FROM P-Personal, P-Health, P-Employ "
      "WHERE P-Personal.pid=P-Health.pid and P-Health.pid=P-Employ.pid "
      "and P-Personal.zipcode='145568' and P-Employ.salary > 10000 "
      "and P-Health.disease='diabetic' and P-Personal.name='Reku'");
  auto granules = Granules(expr);

  // The paper lists exactly these 13 cells (no age granule: Reku's age is
  // NULL, and NULL cells disclose nothing).
  std::vector<std::string> expected = {
      "(t12,p2)",     "(t22,p2)",       "(t32,p2)",    "(t12,145568)",
      "(t12,M)",      "(t12,A2)",       "(t12,Reku)",  "(t22,W12)",
      "(t22,Nicholas)", "(t22,diabetic)", "(t22,drug1)", "(t32,E2)",
      "(t32,20000)"};
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(granules, expected);
}

// --- Fig. 5: weak syntactic suspicion granule set ----------------------

TEST_F(PaperExamplesTest, Fig5WeakSyntacticGranules) {
  auto expr = MustParse(
      "INDISPENSABLE = true "
      "AUDIT [name,disease,address,P-Personal.pid, P-Health.pid, "
      "P-Employ.pid, zipcode, salary] "
      "FROM P-Personal, P-Health, P-Employ "
      "WHERE P-Personal.pid=P-Health.pid and P-Health.pid=P-Employ.pid "
      "and P-Personal.zipcode=145568 and P-Employ.salary > 10000 "
      "and P-Health.disease='diabetic'");
  auto granules = Granules(expr);

  // The paper's listing (17 items) minus the stray bare "(t32)", which has
  // no value component and is a typo: every granule of this notion is a
  // (tid, column-value) pair. 16 remain: 8 audit-list columns × 2 rows
  // of U.
  std::vector<std::string> expected = {
      "(t12,p2)",     "(t12,145568)", "(t12,Reku)",     "(t12,A2)",
      "(t14,p28)",    "(t14,145568)", "(t14,Lucy)",     "(t14,A4)",
      "(t22,diabetic)", "(t24,diabetic)", "(t32,20000)", "(t34,19000)",
      "(t22,p2)",     "(t32,p2)",     "(t24,p28)",      "(t34,p28)"};
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(granules, expected);
}

// --- Fig. 6: semantic suspicion granule set ----------------------------

TEST_F(PaperExamplesTest, Fig6SemanticGranules) {
  auto expr = MustParse(
      "INDISPENSABLE = true "
      "AUDIT (name,disease,address) "
      "FROM P-Personal, P-Health, P-Employ "
      "WHERE P-Personal.pid=P-Health.pid and P-Health.pid=P-Employ.pid "
      "and P-Personal.zipcode='145568' and P-Employ.salary > 10000 "
      "and P-Health.disease='diabetic'");
  auto granules = Granules(expr);

  // G = {(t12,t22,Reku,diabetic,A2), (t14,t24,Lucy,diabetic,A4)}.
  // Scheme order: tids of the owning tables (P-Personal, P-Health), then
  // the audit attributes in clause order.
  std::vector<std::string> expected = {"(t12,t22,Reku,diabetic,A2)",
                                       "(t14,t24,Lucy,diabetic,A4)"};
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(granules, expected);
}

// --- Section 1's alternative suspicion notions -------------------------
// The introduction motivates the model with notions the legacy syntax
// cannot express; all are single-clause changes in the unified grammar.

TEST_F(PaperExamplesTest, IntroNotionDefaultIndispensableTuple) {
  // "access to disease information of at least one patient from the
  // identified patients" — the default notion.
  auto expr = MustParse(
      "AUDIT disease FROM P-Personal, P-Health "
      "WHERE P-Personal.pid = P-Health.pid AND zipcode = '145568'");
  EXPECT_EQ(expr.threshold, Threshold::N(1));
  auto schemes = BuildSchemes(expr);
  ASSERT_EQ(schemes.size(), 1u);
  EXPECT_EQ(schemes[0].attrs.size(), 1u);
}

TEST_F(PaperExamplesTest, IntroNotionDiseaseAndArea) {
  // "(i) access to disease AND area information of at least one patient":
  // both columns mandatory.
  auto expr = MustParse(
      "AUDIT (disease,zipcode) FROM P-Personal, P-Health "
      "WHERE P-Personal.pid = P-Health.pid AND zipcode = '145568'");
  auto schemes = BuildSchemes(expr);
  ASSERT_EQ(schemes.size(), 1u);
  EXPECT_EQ(schemes[0].attrs.size(), 2u);
  // The scheme spans both owning tables' tids.
  EXPECT_EQ(schemes[0].tid_tables,
            (std::vector<std::string>{"P-Personal", "P-Health"}));
}

TEST_F(PaperExamplesTest, IntroNotionMoreThanNPatients) {
  // "(ii) access to disease information of more than N patients": the
  // THRESHOLD clause. With N = 1 ("more than one"), a single-patient
  // disclosure stays clean and a two-patient disclosure fires.
  auto expr = MustParse(
      "THRESHOLD 2 AUDIT (disease) FROM P-Personal, P-Health "
      "WHERE P-Personal.pid = P-Health.pid AND zipcode = '145568'");
  TargetView view = MustView(expr);
  ASSERT_EQ(view.size(), 2u);  // Reku and Lucy

  auto profile_for = [&](const std::string& sql) {
    auto stmt = sql::ParseSelect(sql);
    EXPECT_TRUE(stmt.ok());
    auto profile = ComputeAccessProfile(*stmt, db_.View());
    EXPECT_TRUE(profile.ok());
    return std::move(*profile);
  };
  auto one_patient = profile_for(
      "SELECT disease FROM P-Personal, P-Health "
      "WHERE P-Personal.pid = P-Health.pid AND name = 'Reku'");
  auto both_patients = profile_for(
      "SELECT disease FROM P-Personal, P-Health "
      "WHERE P-Personal.pid = P-Health.pid AND zipcode = '145568'");

  auto schemes = BuildSchemes(expr);
  EXPECT_FALSE(CheckBatchSuspicion(view, schemes, expr.threshold,
                                   expr.indispensable, {&one_patient})
                   ->suspicious);
  EXPECT_TRUE(CheckBatchSuspicion(view, schemes, expr.threshold,
                                  expr.indispensable, {&both_patients})
                  ->suspicious);
  // And batch-wise: two single-patient queries together cross N.
  auto other_patient = profile_for(
      "SELECT disease FROM P-Personal, P-Health "
      "WHERE P-Personal.pid = P-Health.pid AND name = 'Lucy'");
  EXPECT_TRUE(CheckBatchSuspicion(view, schemes, expr.threshold,
                                  expr.indispensable,
                                  {&one_patient, &other_patient})
                  ->suspicious);
}

// --- Fig. 4 granule count cross-check ---------------------------------

TEST_F(PaperExamplesTest, GranuleCountsMatchListings) {
  auto perfect = MustParse(
      "AUDIT [*] FROM P-Personal, P-Health, P-Employ "
      "WHERE P-Personal.pid=P-Health.pid and P-Health.pid=P-Employ.pid "
      "and P-Personal.zipcode='145568' and P-Employ.salary > 10000 "
      "and P-Health.disease='diabetic' and P-Personal.name='Reku'");
  TargetView view = MustView(perfect);
  GranuleEnumerator enumerator(view, BuildSchemes(perfect),
                               perfect.threshold);
  EXPECT_DOUBLE_EQ(enumerator.CountGranules(), 13.0);
}

}  // namespace
}  // namespace audit
}  // namespace auditdb
