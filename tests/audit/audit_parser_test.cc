#include "src/audit/audit_parser.h"

#include <gtest/gtest.h>

namespace auditdb {
namespace audit {
namespace {

Timestamp Civil(int y, int m, int d, int hh = 0, int mm = 0, int ss = 0) {
  auto t = Timestamp::FromCivil(y, m, d, hh, mm, ss);
  EXPECT_TRUE(t.ok());
  return *t;
}

const Timestamp kNow = Civil(2008, 3, 15, 14, 30, 0);

AuditExpression MustParse(const std::string& text) {
  auto expr = ParseAudit(text, kNow);
  EXPECT_TRUE(expr.ok()) << text << " -> " << expr.status().ToString();
  return std::move(*expr);
}

TEST(AuditParserTest, LegacyAgrawalSyntax) {
  auto expr = MustParse(
      "AUDIT disease FROM Patients WHERE zipcode='118701'");
  ASSERT_EQ(expr.attrs.groups.size(), 1u);
  EXPECT_TRUE(expr.attrs.groups[0].mandatory);
  ASSERT_EQ(expr.attrs.groups[0].attrs.size(), 1u);
  EXPECT_EQ(expr.attrs.groups[0].attrs[0].column, "disease");
  EXPECT_EQ(expr.from, (std::vector<std::string>{"Patients"}));
  ASSERT_NE(expr.where, nullptr);
  EXPECT_EQ(expr.where->ToString(), "zipcode = '118701'");
  // Defaults.
  EXPECT_EQ(expr.threshold, Threshold::N(1));
  EXPECT_TRUE(expr.indispensable);
  ASSERT_TRUE(expr.filter.during.has_value());
  EXPECT_EQ(expr.filter.during->start, kNow.StartOfDay());
  EXPECT_EQ(expr.filter.during->end, kNow);
  EXPECT_EQ(expr.data_interval.start, kNow.StartOfDay());
  EXPECT_EQ(expr.data_interval.end, kNow);
}

TEST(AuditParserTest, LegacyOtherthanPurpose) {
  auto expr = MustParse(
      "OTHERTHAN PURPOSE treatment, billing "
      "DURING 1/1/2008 to 1/2/2008 "
      "AUDIT disease FROM Patients");
  ASSERT_EQ(expr.filter.neg_role_purpose.size(), 2u);
  EXPECT_EQ(expr.filter.neg_role_purpose[0],
            (RolePurposePattern{"-", "treatment"}));
  EXPECT_EQ(expr.filter.neg_role_purpose[1],
            (RolePurposePattern{"-", "billing"}));
  ASSERT_TRUE(expr.filter.during.has_value());
  EXPECT_EQ(expr.filter.during->start, Civil(2008, 1, 1));
  EXPECT_EQ(expr.filter.during->end, Civil(2008, 2, 1));
}

TEST(AuditParserTest, MultilineUnifiedExpression) {
  auto expr = MustParse(
      "Neg-Role-Purpose (doctor,treatment) (-,billing)\n"
      "Pos-Role-Purpose (clerk,-)\n"
      "Neg-User-Identity mallory trent\n"
      "Pos-User-Identity alice bob\n"
      "DURING 1/5/2004:13-00-00 to now()\n"
      "DATA-INTERVAL 1/5/2004:13-00-00 to 2/5/2004:13-00-00\n"
      "THRESHOLD 3\n"
      "INDISPENSABLE false\n"
      "AUDIT (name,disease),[address,zipcode]\n"
      "FROM P-Personal, P-Health\n"
      "WHERE P-Personal.pid = P-Health.pid");
  EXPECT_EQ(expr.filter.neg_role_purpose.size(), 2u);
  EXPECT_EQ(expr.filter.neg_role_purpose[1],
            (RolePurposePattern{"-", "billing"}));
  EXPECT_EQ(expr.filter.pos_role_purpose.size(), 1u);
  EXPECT_EQ(expr.filter.neg_users,
            (std::vector<std::string>{"mallory", "trent"}));
  EXPECT_EQ(expr.filter.pos_users,
            (std::vector<std::string>{"alice", "bob"}));
  EXPECT_EQ(expr.filter.during->start, Civil(2004, 5, 1, 13, 0, 0));
  EXPECT_EQ(expr.filter.during->end, kNow);
  EXPECT_EQ(expr.data_interval.end, Civil(2004, 5, 2, 13, 0, 0));
  EXPECT_EQ(expr.threshold, Threshold::N(3));
  EXPECT_FALSE(expr.indispensable);
  ASSERT_EQ(expr.attrs.groups.size(), 2u);
  EXPECT_TRUE(expr.attrs.groups[0].mandatory);
  EXPECT_FALSE(expr.attrs.groups[1].mandatory);
  EXPECT_EQ(expr.from.size(), 2u);
}

TEST(AuditParserTest, ThresholdAll) {
  auto expr = MustParse("THRESHOLD ALL AUDIT a FROM T");
  EXPECT_TRUE(expr.threshold.all);
}

TEST(AuditParserTest, ThresholdMustBePositive) {
  EXPECT_FALSE(ParseAudit("THRESHOLD 0 AUDIT a FROM T", kNow).ok());
  EXPECT_FALSE(ParseAudit("THRESHOLD ALL 2 AUDIT a FROM T", kNow).ok());
}

TEST(AuditParserTest, IndispensableWithEqualsSign) {
  auto expr = MustParse("INDISPENSABLE = true AUDIT [*] FROM T");
  EXPECT_TRUE(expr.indispensable);
  auto expr2 = MustParse("INDISPENSABLE false AUDIT a FROM T");
  EXPECT_FALSE(expr2.indispensable);
  EXPECT_FALSE(ParseAudit("INDISPENSABLE = maybe AUDIT a FROM T", kNow).ok());
}

TEST(AuditParserTest, StarForms) {
  auto star = MustParse("AUDIT [*] FROM T");
  EXPECT_TRUE(star.attrs.HasStar());
  EXPECT_FALSE(star.attrs.groups[0].mandatory);
  auto table_star = MustParse("AUDIT [T.*] FROM T");
  EXPECT_EQ(table_star.attrs.groups[0].attrs[0].table, "T");
  EXPECT_EQ(table_star.attrs.groups[0].attrs[0].column, "*");
}

TEST(AuditParserTest, NestedGroupsCollapse) {
  // Rule 6: [(a,b)] == (a,b) and ([a,b]) == [a,b].
  auto inner_mandatory = MustParse("AUDIT [(a,b)] FROM T");
  ASSERT_EQ(inner_mandatory.attrs.groups.size(), 1u);
  EXPECT_TRUE(inner_mandatory.attrs.groups[0].mandatory);
  auto inner_optional = MustParse("AUDIT ([a,b]) FROM T");
  ASSERT_EQ(inner_optional.attrs.groups.size(), 1u);
  EXPECT_FALSE(inner_optional.attrs.groups[0].mandatory);
}

TEST(AuditParserTest, GroupsWithoutCommas) {
  auto expr = MustParse("AUDIT (a,b)[c,d](e) FROM T");
  ASSERT_EQ(expr.attrs.groups.size(), 3u);
  EXPECT_TRUE(expr.attrs.groups[0].mandatory);
  EXPECT_FALSE(expr.attrs.groups[1].mandatory);
  EXPECT_TRUE(expr.attrs.groups[2].mandatory);
}

TEST(AuditParserTest, DataIntervalInstant) {
  auto expr = MustParse(
      "DATA-INTERVAL now() to now() AUDIT a FROM T");
  EXPECT_TRUE(expr.data_interval.IsInstant());
  EXPECT_EQ(expr.data_interval.start, kNow);
}

TEST(AuditParserTest, IntervalEndBeforeStartRejected) {
  EXPECT_FALSE(
      ParseAudit("DURING 2/5/2004 to 1/5/2004 AUDIT a FROM T", kNow).ok());
}

TEST(AuditParserTest, QualifiedAuditAttributes) {
  auto expr = MustParse("AUDIT P-Health.disease, name FROM P-Personal, "
                        "P-Health");
  EXPECT_EQ(expr.attrs.groups[0].attrs[0].ToString(), "P-Health.disease");
  EXPECT_EQ(expr.attrs.groups[0].attrs[1].ToString(), "name");
}

TEST(AuditParserTest, Errors) {
  EXPECT_FALSE(ParseAudit("", kNow).ok());
  EXPECT_FALSE(ParseAudit("AUDIT FROM T", kNow).ok());
  EXPECT_FALSE(ParseAudit("AUDIT a", kNow).ok());
  EXPECT_FALSE(ParseAudit("AUDIT a FROM", kNow).ok());
  EXPECT_FALSE(ParseAudit("FROM T", kNow).ok());
  EXPECT_FALSE(ParseAudit("BOGUS-CLAUSE x AUDIT a FROM T", kNow).ok());
  EXPECT_FALSE(ParseAudit("AUDIT a FROM T WHERE", kNow).ok());
  EXPECT_FALSE(ParseAudit("AUDIT a FROM T trailing", kNow).ok());
  EXPECT_FALSE(ParseAudit("Neg-Role-Purpose AUDIT a FROM T", kNow).ok());
  EXPECT_FALSE(ParseAudit("DURING 1/1/2008 AUDIT a FROM T", kNow).ok());
}

TEST(AuditParserTest, RoundTripThroughToString) {
  const char* kExpressions[] = {
      "AUDIT disease FROM Patients WHERE zipcode='118701'",
      "Neg-Role-Purpose (doctor,treatment) DURING 1/1/2008 to 2/1/2008 "
      "AUDIT (name,disease),[address] FROM P-Personal, P-Health "
      "WHERE P-Personal.pid = P-Health.pid",
      "THRESHOLD ALL INDISPENSABLE false AUDIT [*] FROM T",
      "Pos-User-Identity alice DATA-INTERVAL 1/1/2008 to 5/1/2008 "
      "AUDIT a FROM T WHERE a > 3",
  };
  for (const char* text : kExpressions) {
    auto first = MustParse(text);
    auto second = MustParse(first.ToString());
    EXPECT_EQ(first.ToString(), second.ToString()) << text;
  }
}

TEST(AuditParserTest, PaperFig7DefaultsDocumented) {
  // Everything omitted: the defaults of Fig. 7 apply.
  auto expr = MustParse("AUDIT attribute FROM tab");
  EXPECT_TRUE(expr.filter.neg_role_purpose.empty());
  EXPECT_TRUE(expr.filter.pos_role_purpose.empty());
  EXPECT_TRUE(expr.filter.neg_users.empty());
  EXPECT_TRUE(expr.filter.pos_users.empty());
  EXPECT_EQ(expr.threshold, Threshold::N(1));
  EXPECT_TRUE(expr.indispensable);
  EXPECT_EQ(expr.where, nullptr);
}

}  // namespace
}  // namespace audit
}  // namespace auditdb
