#include "src/audit/expression_library.h"
#include "src/audit/subsumption.h"

#include <gtest/gtest.h>

#include "src/audit/audit_parser.h"
#include "src/workload/hospital.h"

namespace auditdb {
namespace audit {
namespace {

Timestamp Ts(int64_t s) { return Timestamp(s * 1000000); }

class SubsumptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(workload::BuildPaperDatabase(&db_, Ts(1)).ok());
  }

  AuditExpression Parse(const std::string& text) {
    auto expr = ParseAudit(
        "DURING 1/1/1970 to 2/1/1970 DATA-INTERVAL 1/1/1970 to 2/1/1970 " +
            text,
        Ts(1000));
    EXPECT_TRUE(expr.ok()) << expr.status().ToString();
    auto q = expr->Qualify(db_.catalog());
    EXPECT_TRUE(q.ok()) << q.ToString();
    return std::move(*expr);
  }

  Database db_;
};

TEST_F(SubsumptionTest, Reflexive) {
  auto a = Parse("AUDIT (name,disease) FROM P-Personal, P-Health "
                 "WHERE P-Personal.pid = P-Health.pid");
  EXPECT_TRUE(Subsumes(a, a));
}

TEST_F(SubsumptionTest, BroaderWhereSubsumesNarrower) {
  auto broad = Parse(
      "AUDIT (disease) FROM P-Health WHERE disease = 'diabetic'");
  auto narrow = Parse(
      "AUDIT (disease) FROM P-Health "
      "WHERE disease = 'diabetic' AND ward = 'W14'");
  EXPECT_TRUE(Subsumes(broad, narrow));
  EXPECT_FALSE(Subsumes(narrow, broad));
}

TEST_F(SubsumptionTest, DifferentFromNeverSubsumes) {
  auto a = Parse("AUDIT (disease) FROM P-Health");
  auto b = Parse("AUDIT (salary) FROM P-Employ");
  EXPECT_FALSE(Subsumes(a, b));
  EXPECT_FALSE(Subsumes(b, a));
}

TEST_F(SubsumptionTest, SchemeCovering) {
  // Covering {name,disease} forces the single-attr scheme {disease}.
  auto optional_disease = Parse(
      "AUDIT [disease,name] FROM P-Personal, P-Health "
      "WHERE P-Personal.pid = P-Health.pid");
  auto mandatory_both = Parse(
      "AUDIT (name,disease) FROM P-Personal, P-Health "
      "WHERE P-Personal.pid = P-Health.pid");
  EXPECT_TRUE(Subsumes(optional_disease, mandatory_both));
  EXPECT_FALSE(Subsumes(mandatory_both, optional_disease));
}

TEST_F(SubsumptionTest, ThresholdOrdering) {
  auto k1 = Parse("THRESHOLD 1 AUDIT (name) FROM P-Personal");
  auto k3 = Parse("THRESHOLD 3 AUDIT (name) FROM P-Personal");
  EXPECT_TRUE(Subsumes(k1, k3));  // firing at 3 facts implies firing at 1
  EXPECT_FALSE(Subsumes(k3, k1));
}

TEST_F(SubsumptionTest, ThresholdAllOnlyMatchesAll) {
  auto all = Parse("THRESHOLD ALL AUDIT (name) FROM P-Personal");
  auto k1 = Parse("THRESHOLD 1 AUDIT (name) FROM P-Personal");
  EXPECT_FALSE(Subsumes(all, k1));
  EXPECT_FALSE(Subsumes(k1, all));
  EXPECT_TRUE(Subsumes(all, all));
}

TEST_F(SubsumptionTest, IndispensableFlagMustMatch) {
  auto tid_mode = Parse("AUDIT (name) FROM P-Personal");
  auto value_mode =
      Parse("INDISPENSABLE false AUDIT (name) FROM P-Personal");
  EXPECT_FALSE(Subsumes(tid_mode, value_mode));
  EXPECT_FALSE(Subsumes(value_mode, tid_mode));
}

TEST_F(SubsumptionTest, FilterCoverage) {
  auto unfiltered = Parse("AUDIT (name) FROM P-Personal");
  auto filtered =
      Parse("Neg-Role-Purpose (clerk,-) AUDIT (name) FROM P-Personal");
  // The unfiltered expression audits strictly more accesses.
  EXPECT_TRUE(Subsumes(unfiltered, filtered));
  EXPECT_FALSE(Subsumes(filtered, unfiltered));
}

TEST_F(SubsumptionTest, DataIntervalContainment) {
  auto wide = Parse("AUDIT (name) FROM P-Personal");  // full-span interval
  auto narrow_parse = ParseAudit(
      "DURING 1/1/1970 to 2/1/1970 "
      "DATA-INTERVAL 1/1/1970:01-00-00 to 1/1/1970:02-00-00 "
      "AUDIT (name) FROM P-Personal",
      Ts(1000));
  ASSERT_TRUE(narrow_parse.ok());
  ASSERT_TRUE(narrow_parse->Qualify(db_.catalog()).ok());
  EXPECT_TRUE(Subsumes(wide, *narrow_parse));
  EXPECT_FALSE(Subsumes(*narrow_parse, wide));
}

// --- ExpressionLibrary --------------------------------------------------

TEST_F(SubsumptionTest, LibraryRejectsSubsumedExpressions) {
  ExpressionLibrary library(&db_.catalog());
  auto broad = Parse(
      "AUDIT (disease) FROM P-Health WHERE disease = 'diabetic'");
  auto outcome = library.Add(broad);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->added);
  int broad_id = outcome->id;
  EXPECT_EQ(library.size(), 1u);

  // A narrower expression adds nothing: rejected, pointing at `broad`.
  auto narrow = Parse(
      "AUDIT (disease) FROM P-Health "
      "WHERE disease = 'diabetic' AND ward = 'W14'");
  outcome = library.Add(narrow);
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome->added);
  EXPECT_EQ(outcome->id, broad_id);
  EXPECT_EQ(library.size(), 1u);
}

TEST_F(SubsumptionTest, LibraryEvictsSubsumedMembers) {
  ExpressionLibrary library(&db_.catalog());
  auto narrow = Parse(
      "AUDIT (disease) FROM P-Health "
      "WHERE disease = 'diabetic' AND ward = 'W14'");
  auto narrow2 = Parse(
      "AUDIT (disease) FROM P-Health "
      "WHERE disease = 'diabetic' AND ward = 'W12'");
  auto o1 = library.Add(narrow);
  auto o2 = library.Add(narrow2);
  ASSERT_TRUE(o1.ok() && o2.ok());
  EXPECT_TRUE(o1->added && o2->added);
  EXPECT_EQ(library.size(), 2u);

  // The broad expression covers both: they get evicted.
  auto broad = Parse(
      "AUDIT (disease) FROM P-Health WHERE disease = 'diabetic'");
  auto o3 = library.Add(broad);
  ASSERT_TRUE(o3.ok());
  EXPECT_TRUE(o3->added);
  EXPECT_EQ(o3->evicted.size(), 2u);
  EXPECT_EQ(library.size(), 1u);
  EXPECT_EQ(library.ids(), (std::vector<int>{o3->id}));
  EXPECT_NE(library.Get(o3->id), nullptr);
  EXPECT_EQ(library.Get(o1->id), nullptr);
}

TEST_F(SubsumptionTest, LibraryKeepsIncomparableMembers) {
  ExpressionLibrary library(&db_.catalog());
  auto disease = Parse("AUDIT (disease) FROM P-Health");
  auto salary = Parse("AUDIT (salary) FROM P-Employ");
  ASSERT_TRUE(library.Add(disease).ok());
  ASSERT_TRUE(library.Add(salary).ok());
  EXPECT_EQ(library.size(), 2u);
}

// --- FilterAdmitsAtLeast ----------------------------------------------

TEST(FilterCoverageTest, TrivialAdmitsEverything) {
  AccessFilter trivial;
  AccessFilter strict;
  strict.pos_users = {"alice"};
  strict.neg_role_purpose = {{"clerk", "-"}};
  EXPECT_TRUE(FilterAdmitsAtLeast(trivial, strict));
  EXPECT_FALSE(FilterAdmitsAtLeast(strict, trivial));
}

TEST(FilterCoverageTest, NegUserSubset) {
  AccessFilter outer;
  outer.neg_users = {"mallory"};
  AccessFilter inner;
  inner.neg_users = {"mallory", "trent"};
  EXPECT_TRUE(FilterAdmitsAtLeast(outer, inner));
  EXPECT_FALSE(FilterAdmitsAtLeast(inner, outer));
}

TEST(FilterCoverageTest, NegPatternWildcardCoverage) {
  AccessFilter outer;
  outer.neg_role_purpose = {{"clerk", "billing"}};
  AccessFilter inner;
  inner.neg_role_purpose = {{"clerk", "-"}};
  // outer rejects (clerk,billing); inner rejects all clerk accesses —
  // inner's rejection covers outer's.
  EXPECT_TRUE(FilterAdmitsAtLeast(outer, inner));
  EXPECT_FALSE(FilterAdmitsAtLeast(inner, outer));
}

TEST(FilterCoverageTest, PosUserSubset) {
  AccessFilter outer;
  outer.pos_users = {"alice", "bob"};
  AccessFilter inner;
  inner.pos_users = {"alice"};
  EXPECT_TRUE(FilterAdmitsAtLeast(outer, inner));
  EXPECT_FALSE(FilterAdmitsAtLeast(inner, outer));
}

TEST(FilterCoverageTest, PosPatternCoverage) {
  AccessFilter outer;
  outer.pos_role_purpose = {{"doctor", "-"}};
  AccessFilter inner;
  inner.pos_role_purpose = {{"doctor", "treatment"}};
  EXPECT_TRUE(FilterAdmitsAtLeast(outer, inner));
  EXPECT_FALSE(FilterAdmitsAtLeast(inner, outer));
}

TEST(FilterCoverageTest, DuringContainment) {
  AccessFilter outer;
  outer.during = TimeInterval{Ts(0), Ts(100)};
  AccessFilter inner;
  inner.during = TimeInterval{Ts(10), Ts(50)};
  EXPECT_TRUE(FilterAdmitsAtLeast(outer, inner));
  EXPECT_FALSE(FilterAdmitsAtLeast(inner, outer));
}

}  // namespace
}  // namespace audit
}  // namespace auditdb
