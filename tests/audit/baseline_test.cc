/// Differential tests: the unified granule model must agree with the
/// reimplemented Agrawal (single-query semantic) and Motwani (batch /
/// weak-syntactic) auditors on the notions it claims to subsume
/// (Section 3.2's unification argument), including on randomized
/// workloads.

#include <gtest/gtest.h>

#include "src/audit/auditor.h"
#include "src/audit/baseline_agrawal.h"
#include "src/audit/baseline_motwani.h"
#include "src/workload/generator.h"
#include "src/workload/hospital.h"

namespace auditdb {
namespace audit {
namespace {

Timestamp Ts(int64_t s) { return Timestamp(s * 1000000); }

class BaselineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    backlog_.Attach(&db_);
    ASSERT_TRUE(workload::BuildPaperDatabase(&db_, Ts(1)).ok());
  }

  AuditExpression Parse(const std::string& text) {
    auto expr = ParseAudit(
        "DURING 1/1/1970 to 2/1/1970 DATA-INTERVAL 1/1/1970 to 2/1/1970 " +
            text,
        Ts(1000));
    EXPECT_TRUE(expr.ok()) << expr.status().ToString();
    return std::move(*expr);
  }

  Database db_;
  Backlog backlog_;
  QueryLog log_;
};

TEST_F(BaselineTest, AgrawalSingleQueryCheck) {
  auto expr = Parse(
      "AUDIT (disease) FROM P-Personal, P-Health "
      "WHERE P-Personal.pid = P-Health.pid AND zipcode='145568'");
  ASSERT_TRUE(expr.Qualify(db_.catalog()).ok());

  auto suspicious_query = sql::ParseSelect(
      "SELECT zipcode FROM P-Personal, P-Health "
      "WHERE P-Personal.pid=P-Health.pid AND disease='diabetic'");
  ASSERT_TRUE(suspicious_query.ok());
  // A diabetic lives in 145568, so per the paper this query IS suspicious.
  // But it does not project `disease`... it *accesses* disease via the
  // predicate, which is what C_Q covers in [12].
  auto verdict = AgrawalAuditor::IsSuspicious(*suspicious_query, expr,
                                              db_.View());
  ASSERT_TRUE(verdict.ok()) << verdict.status().ToString();
  EXPECT_TRUE(*verdict);

  // No cancer patient exists: not suspicious.
  auto clear_query = sql::ParseSelect(
      "SELECT zipcode FROM P-Personal, P-Health "
      "WHERE P-Personal.pid=P-Health.pid AND disease='cancer'");
  ASSERT_TRUE(clear_query.ok());
  verdict = AgrawalAuditor::IsSuspicious(*clear_query, expr, db_.View());
  ASSERT_TRUE(verdict.ok());
  EXPECT_FALSE(*verdict);
}

TEST_F(BaselineTest, AgrawalAuditOverLog) {
  log_.Append(
      "SELECT name, disease FROM P-Personal, P-Health "
      "WHERE P-Personal.pid=P-Health.pid AND disease='diabetic'",
      Ts(10), "alice", "doctor", "treatment");
  log_.Append("SELECT ward FROM P-Health", Ts(20), "bob", "nurse",
              "treatment");
  auto expr = Parse(
      "AUDIT (name,disease) FROM P-Personal, P-Health "
      "WHERE P-Personal.pid = P-Health.pid AND zipcode='145568'");
  AgrawalAuditor auditor(&db_, &backlog_, &log_);
  auto result = auditor.Audit(expr);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->suspicious_ids, (std::vector<int64_t>{1}));
  EXPECT_EQ(result->num_candidates, 1u);
}

TEST_F(BaselineTest, MotwaniBatchSemantic) {
  // Two partial queries that together cover the audit list.
  log_.Append("SELECT name FROM P-Personal WHERE zipcode='145568'", Ts(10),
              "alice", "doctor", "treatment");
  log_.Append(
      "SELECT disease FROM P-Personal, P-Health "
      "WHERE P-Personal.pid=P-Health.pid AND zipcode='145568'",
      Ts(20), "alice", "doctor", "treatment");
  auto expr = Parse(
      "AUDIT (name,disease) FROM P-Personal, P-Health "
      "WHERE P-Personal.pid = P-Health.pid AND zipcode='145568'");
  MotwaniAuditor auditor(&db_, &backlog_, &log_);
  auto result = auditor.Audit(expr);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->semantically_suspicious);
  EXPECT_EQ(result->sharing_ids, (std::vector<int64_t>{1, 2}));
  EXPECT_TRUE(result->weakly_syntactically_suspicious);
}

TEST_F(BaselineTest, MotwaniWeakSyntacticIsDataIndependent) {
  // Touches an audit column and is predicate-consistent, but the data
  // rules it out semantically: weakly suspicious, not semantically.
  log_.Append("SELECT name FROM P-Personal WHERE zipcode='000000'", Ts(10),
              "alice", "doctor", "treatment");
  auto expr = Parse(
      "AUDIT (name,disease) FROM P-Personal, P-Health "
      "WHERE P-Personal.pid = P-Health.pid");
  MotwaniAuditor auditor(&db_, &backlog_, &log_);
  auto result = auditor.Audit(expr);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->weakly_syntactically_suspicious);
  EXPECT_FALSE(result->semantically_suspicious);

  // A provably conflicting predicate clears even the weak notion.
  QueryLog conflicting;
  conflicting.Append(
      "SELECT name FROM P-Personal, P-Health "
      "WHERE P-Personal.pid=P-Health.pid AND disease='x' AND disease='y'",
      Ts(10), "a", "r", "p");
  MotwaniAuditor auditor2(&db_, &backlog_, &conflicting);
  auto result2 = auditor2.Audit(expr);
  ASSERT_TRUE(result2.ok());
  EXPECT_FALSE(result2->weakly_syntactically_suspicious);
}

/// Differential property: on randomized single-query workloads, the
/// unified model under the *joint* indispensability mode must agree with
/// the Agrawal baseline on the semantic notion (all-mandatory attrs,
/// threshold 1), whenever the query's FROM covers the audit's attribute
/// tables. (kPerTable can only be more permissive; kJointPerQuery matches
/// the shared-indispensable-tuple definition.)
class UnifiedVsAgrawal : public ::testing::TestWithParam<uint64_t> {};

TEST_P(UnifiedVsAgrawal, AgreeOnRandomWorkloads) {
  Database db;
  Backlog backlog;
  backlog.Attach(&db);
  workload::HospitalConfig hospital;
  hospital.num_patients = 40;
  hospital.seed = GetParam();
  ASSERT_TRUE(workload::PopulateHospital(&db, hospital, Ts(1)).ok());

  QueryLog log;
  workload::WorkloadConfig workload_config;
  workload_config.num_queries = 60;
  workload_config.seed = GetParam() * 977;
  workload_config.start = Ts(100);
  ASSERT_TRUE(workload::GenerateWorkload(&log, workload_config, hospital)
                  .ok());

  auto expr = ParseAudit(
      "DURING 1/1/1970 to 2/1/1970 DATA-INTERVAL 1/1/1970 to 2/1/1970 "
      "AUDIT (name,disease) FROM P-Personal, P-Health "
      "WHERE P-Personal.pid = P-Health.pid AND disease='diabetic'",
      Ts(1000));
  ASSERT_TRUE(expr.ok());

  // Baseline verdicts.
  AgrawalAuditor baseline(&db, &backlog, &log);
  auto baseline_result = baseline.Audit(*expr);
  ASSERT_TRUE(baseline_result.ok());
  std::set<int64_t> baseline_ids(baseline_result->suspicious_ids.begin(),
                                 baseline_result->suspicious_ids.end());

  // Unified verdicts, joint mode.
  AuditOptions options;
  options.suspicion.mode = IndispensabilityMode::kJointPerQuery;
  options.minimize_batch = false;
  Auditor unified(&db, &backlog, &log);
  auto report = unified.Audit(*expr, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  std::set<int64_t> unified_ids;
  for (int64_t id : report->SuspiciousQueryIds()) unified_ids.insert(id);

  EXPECT_EQ(unified_ids, baseline_ids) << "seed=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, UnifiedVsAgrawal,
                         ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace audit
}  // namespace auditdb
