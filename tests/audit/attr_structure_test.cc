#include "src/audit/attr_structure.h"

#include <gtest/gtest.h>

#include "src/common/random.h"

namespace auditdb {
namespace audit {
namespace {

ColumnRef C(const char* name) { return ColumnRef{"", name}; }

AttrGroup Mand(std::vector<const char*> names) {
  AttrGroup g;
  g.mandatory = true;
  for (const char* n : names) g.attrs.push_back(C(n));
  return g;
}

AttrGroup Opt(std::vector<const char*> names) {
  AttrGroup g;
  g.mandatory = false;
  for (const char* n : names) g.attrs.push_back(C(n));
  return g;
}

AttrStructure Structure(std::vector<AttrGroup> groups) {
  AttrStructure s;
  s.groups = std::move(groups);
  return s;
}

std::set<ColumnRef> Scheme(std::vector<const char*> names) {
  std::set<ColumnRef> s;
  for (const char* n : names) s.insert(C(n));
  return s;
}

TEST(AttrStructureTest, ToString) {
  auto s = Structure({Mand({"a", "b"}), Opt({"c", "d"})});
  EXPECT_EQ(s.ToString(), "(a,b)[c,d]");
}

TEST(AttrStructureTest, SchemesMandatoryOnly) {
  auto s = Structure({Mand({"a", "b", "c", "d"})});
  auto schemes = s.EnumerateSchemes();
  ASSERT_EQ(schemes.size(), 1u);
  EXPECT_EQ(schemes[0], Scheme({"a", "b", "c", "d"}));
}

TEST(AttrStructureTest, SchemesOptionalOnly) {
  // [a,b,c,d]: access to any one attribute suffices.
  auto s = Structure({Opt({"a", "b", "c", "d"})});
  auto schemes = s.EnumerateSchemes();
  ASSERT_EQ(schemes.size(), 4u);
  EXPECT_EQ(schemes[0], Scheme({"a"}));
  EXPECT_EQ(schemes[3], Scheme({"d"}));
}

TEST(AttrStructureTest, SchemesMandatoryPlusOptional) {
  // (a,b),[c,d]: schemes {a,b,c} and {a,b,d} — the paper's example.
  auto s = Structure({Mand({"a", "b"}), Opt({"c", "d"})});
  auto schemes = s.EnumerateSchemes();
  ASSERT_EQ(schemes.size(), 2u);
  EXPECT_EQ(schemes[0], Scheme({"a", "b", "c"}));
  EXPECT_EQ(schemes[1], Scheme({"a", "b", "d"}));
}

TEST(AttrStructureTest, SchemesTwoOptionalGroups) {
  // [a,b][c,d]: one from each.
  auto s = Structure({Opt({"a", "b"}), Opt({"c", "d"})});
  auto schemes = s.EnumerateSchemes();
  ASSERT_EQ(schemes.size(), 4u);
  EXPECT_EQ(schemes[0], Scheme({"a", "c"}));
  EXPECT_EQ(schemes[3], Scheme({"b", "d"}));
}

TEST(AttrStructureTest, MinimalSchemesPruneSupersets) {
  // [a,b][a,b]: choices {a},{b} repeat; {a,b} is dominated by {a} and {b}.
  auto s = Structure({Opt({"a", "b"}), Opt({"a", "b"})});
  auto schemes = s.EnumerateSchemes();
  ASSERT_EQ(schemes.size(), 2u);
  EXPECT_EQ(schemes[0], Scheme({"a"}));
  EXPECT_EQ(schemes[1], Scheme({"b"}));
}

// --- Table 6 structural rules ---------------------------------------

TEST(Table6Rules, Rule1SingletonOptionalIsMandatory) {
  auto lhs = Structure({Opt({"a"})});
  auto rhs = Structure({Mand({"a"})});
  EXPECT_TRUE(lhs.EquivalentTo(rhs));
  EXPECT_EQ(lhs.Normalized().ToString(), rhs.Normalized().ToString());
}

TEST(Table6Rules, Rule2MandatorySequenceMerges) {
  auto lhs = Structure({Mand({"a", "b"}), Mand({"c"})});
  auto rhs = Structure({Mand({"a", "b", "c"})});
  EXPECT_TRUE(lhs.EquivalentTo(rhs));
  EXPECT_EQ(lhs.Normalized().ToString(), rhs.Normalized().ToString());
}

TEST(Table6Rules, Rule3SetCommutativity) {
  EXPECT_TRUE(Structure({Mand({"a", "b"})})
                  .EquivalentTo(Structure({Mand({"b", "a"})})));
  EXPECT_TRUE(Structure({Opt({"a", "b"})})
                  .EquivalentTo(Structure({Opt({"b", "a"})})));
}

TEST(Table6Rules, Rule4TwoSingletonOptionalsEqualMandatoryPair) {
  auto lhs = Structure({Opt({"a"}), Opt({"b"})});
  auto rhs = Structure({Mand({"a", "b"})});
  EXPECT_TRUE(lhs.EquivalentTo(rhs));
  EXPECT_EQ(lhs.Normalized().ToString(), rhs.Normalized().ToString());
}

TEST(Table6Rules, Rule5SequenceCommutativity) {
  auto ab = Structure({Opt({"a", "x"}), Opt({"b", "y"})});
  auto ba = Structure({Opt({"b", "y"}), Opt({"a", "x"})});
  EXPECT_TRUE(ab.EquivalentTo(ba));
  EXPECT_EQ(ab.Normalized().ToString(), ba.Normalized().ToString());

  auto mand_opt = Structure({Mand({"m"}), Opt({"b", "y"})});
  auto opt_mand = Structure({Opt({"b", "y"}), Mand({"m"})});
  EXPECT_TRUE(mand_opt.EquivalentTo(opt_mand));
}

TEST(Table6Rules, Rule7CompositionSingletonOptionalIntoMandatory) {
  auto lhs = Structure({Mand({"a", "b"}), Opt({"c"})});
  auto rhs = Structure({Mand({"a", "b", "c"})});
  EXPECT_TRUE(lhs.EquivalentTo(rhs));
  EXPECT_EQ(lhs.Normalized().ToString(), rhs.Normalized().ToString());
}

TEST(Table6Rules, NormalFormShape) {
  auto s = Structure({Opt({"z", "y"}), Mand({"b"}), Opt({"x"}), Mand({"a"})});
  // Mandatory {a,b,x} first (x via rule 1), then the sorted optional group.
  EXPECT_EQ(s.Normalized().ToString(), "(a,b,x)[y,z]");
}

TEST(Table6Rules, DuplicateAttrsDeduplicated) {
  auto s = Structure({Mand({"a", "a", "b"})});
  EXPECT_EQ(s.Normalized().ToString(), "(a,b)");
  auto o = Structure({Opt({"a", "a"})});
  // Optional {a,a} dedups to singleton {a} → mandatory by rule 1.
  EXPECT_EQ(o.Normalized().ToString(), "(a)");
}

TEST(AttrStructureTest, NonEquivalentStructures) {
  EXPECT_FALSE(Structure({Mand({"a", "b"})})
                   .EquivalentTo(Structure({Opt({"a", "b"})})));
  EXPECT_FALSE(Structure({Mand({"a"})})
                   .EquivalentTo(Structure({Mand({"b"})})));
  EXPECT_FALSE(Structure({Opt({"a", "b"})})
                   .EquivalentTo(Structure({Opt({"a", "b", "c"})})));
}

TEST(AttrStructureTest, AllAttributes) {
  auto s = Structure({Mand({"a", "b"}), Opt({"b", "c"})});
  auto all = s.AllAttributes();
  EXPECT_EQ(all.size(), 3u);
  EXPECT_TRUE(all.count(C("c")));
}

TEST(AttrStructureTest, StarDetection) {
  auto s = Structure({Opt({"*"})});
  EXPECT_TRUE(s.HasStar());
  EXPECT_FALSE(Structure({Opt({"a"})}).HasStar());
}

TEST(AttrStructureTest, QualifyResolvesAndExpandsStar) {
  Catalog catalog;
  ASSERT_TRUE(catalog
                  .AddTable(TableSchema("T", {{"a", ValueType::kInt},
                                              {"b", ValueType::kInt}}))
                  .ok());
  ASSERT_TRUE(
      catalog.AddTable(TableSchema("U", {{"c", ValueType::kInt}})).ok());

  auto star = Structure({Opt({"*"})});
  ASSERT_TRUE(star.Qualify(catalog, {"T", "U"}).ok());
  ASSERT_EQ(star.groups[0].attrs.size(), 3u);
  EXPECT_EQ(star.groups[0].attrs[0].ToString(), "T.a");
  EXPECT_EQ(star.groups[0].attrs[2].ToString(), "U.c");

  AttrStructure table_star;
  table_star.groups.push_back(
      AttrGroup{false, {ColumnRef{"T", "*"}}});
  ASSERT_TRUE(table_star.Qualify(catalog, {"T", "U"}).ok());
  ASSERT_EQ(table_star.groups[0].attrs.size(), 2u);

  auto named = Structure({Mand({"a", "c"})});
  ASSERT_TRUE(named.Qualify(catalog, {"T", "U"}).ok());
  EXPECT_EQ(named.groups[0].attrs[0].ToString(), "T.a");
  EXPECT_EQ(named.groups[0].attrs[1].ToString(), "U.c");

  auto missing = Structure({Mand({"zz"})});
  EXPECT_FALSE(missing.Qualify(catalog, {"T", "U"}).ok());
}

/// Property sweep: random rewrites licensed by Table 6 must preserve both
/// the normal form and the scheme set.
class Table6Property : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Table6Property, RandomPermutationsAreEquivalent) {
  Random rng(GetParam());
  const char* kNames[] = {"a", "b", "c", "d", "e"};

  // Build a random structure.
  AttrStructure original;
  size_t ngroups = 1 + rng.Uniform(3);
  for (size_t g = 0; g < ngroups; ++g) {
    AttrGroup group;
    group.mandatory = rng.OneIn(0.5);
    size_t nattrs = 1 + rng.Uniform(3);
    for (size_t i = 0; i < nattrs; ++i) {
      group.attrs.push_back(C(kNames[rng.Uniform(5)]));
    }
    original.groups.push_back(group);
  }

  // Rewrite 1: shuffle group order (rule 5).
  AttrStructure shuffled = original;
  for (size_t i = shuffled.groups.size(); i > 1; --i) {
    std::swap(shuffled.groups[i - 1],
              shuffled.groups[rng.Uniform(i)]);
  }
  EXPECT_TRUE(original.EquivalentTo(shuffled));
  EXPECT_EQ(original.Normalized().ToString(),
            shuffled.Normalized().ToString());

  // Rewrite 2: shuffle attrs within each group (rule 3).
  AttrStructure permuted = original;
  for (auto& group : permuted.groups) {
    for (size_t i = group.attrs.size(); i > 1; --i) {
      std::swap(group.attrs[i - 1], group.attrs[rng.Uniform(i)]);
    }
  }
  EXPECT_TRUE(original.EquivalentTo(permuted));

  // Rewrite 3: split a mandatory group in two (rule 2, reversed).
  AttrStructure split = original;
  for (size_t g = 0; g < split.groups.size(); ++g) {
    if (split.groups[g].mandatory && split.groups[g].attrs.size() >= 2) {
      AttrGroup tail;
      tail.mandatory = true;
      tail.attrs.push_back(split.groups[g].attrs.back());
      split.groups[g].attrs.pop_back();
      split.groups.push_back(tail);
      break;
    }
  }
  EXPECT_TRUE(original.EquivalentTo(split));
  EXPECT_EQ(original.Normalized().ToString(),
            split.Normalized().ToString());
}

INSTANTIATE_TEST_SUITE_P(Seeds, Table6Property,
                         ::testing::Range<uint64_t>(1, 26));

}  // namespace
}  // namespace audit
}  // namespace auditdb
