#include "src/audit/suspicion.h"

#include <gtest/gtest.h>

#include "src/audit/audit_parser.h"
#include "src/workload/hospital.h"

namespace auditdb {
namespace audit {
namespace {

Timestamp Ts(int64_t s) { return Timestamp(s * 1000000); }

class SuspicionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(workload::BuildPaperDatabase(&db_, Ts(1)).ok());
  }

  AuditExpression Parse(const std::string& text) {
    auto expr = ParseAudit(text, Ts(1000));
    EXPECT_TRUE(expr.ok()) << expr.status().ToString();
    auto q = expr->Qualify(db_.catalog());
    EXPECT_TRUE(q.ok()) << q.ToString();
    return std::move(*expr);
  }

  AccessProfile Profile(const std::string& sql) {
    auto stmt = sql::ParseSelect(sql);
    EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
    auto profile = ComputeAccessProfile(*stmt, db_.View());
    EXPECT_TRUE(profile.ok()) << profile.status().ToString();
    return std::move(*profile);
  }

  /// Checks a batch against an audit expression on the current state.
  SuspicionResult Check(const AuditExpression& expr,
                        const std::vector<const AccessProfile*>& batch,
                        const SuspicionOptions& options = SuspicionOptions{}) {
    auto view = ComputeTargetView(expr, db_.View(), Ts(1));
    EXPECT_TRUE(view.ok());
    auto result = CheckBatchSuspicion(*view, BuildSchemes(expr),
                                      expr.threshold, expr.indispensable,
                                      batch, options);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return std::move(*result);
  }

  const std::string kSemanticAudit =
      "AUDIT (name,disease,address) "
      "FROM P-Personal, P-Health, P-Employ "
      "WHERE P-Personal.pid=P-Health.pid and P-Health.pid=P-Employ.pid "
      "and P-Personal.zipcode='145568' and P-Employ.salary > 10000 "
      "and P-Health.disease='diabetic'";

  Database db_;
};

TEST_F(SuspicionTest, FullDisclosureQueryIsSuspicious) {
  auto expr = Parse(kSemanticAudit);
  auto profile = Profile(
      "SELECT name, disease, address "
      "FROM P-Personal, P-Health, P-Employ "
      "WHERE P-Personal.pid=P-Health.pid AND P-Health.pid=P-Employ.pid "
      "AND zipcode='145568' AND disease='diabetic' AND salary > 10000");
  auto result = Check(expr, {&profile});
  EXPECT_TRUE(result.suspicious);
  ASSERT_EQ(result.per_scheme.size(), 1u);
  EXPECT_TRUE(result.per_scheme[0].attrs_covered);
  EXPECT_EQ(result.per_scheme[0].accessed_facts.size(), 2u);
  EXPECT_NE(result.Describe(
                *ComputeTargetView(expr, db_.View(), Ts(1)),
                BuildSchemes(expr))
                .find("t12"),
            std::string::npos);
}

TEST_F(SuspicionTest, MissingAttributeNotSuspicious) {
  auto expr = Parse(kSemanticAudit);
  // No disease access.
  auto profile = Profile(
      "SELECT name, address FROM P-Personal WHERE zipcode='145568'");
  auto result = Check(expr, {&profile});
  EXPECT_FALSE(result.suspicious);
  EXPECT_FALSE(result.per_scheme[0].attrs_covered);
}

TEST_F(SuspicionTest, DisjointRowsNotSuspicious) {
  auto expr = Parse(kSemanticAudit);
  // Touches all three columns but only Jane's row (zipcode 177893).
  auto profile = Profile(
      "SELECT name, disease, address "
      "FROM P-Personal, P-Health, P-Employ "
      "WHERE P-Personal.pid=P-Health.pid AND P-Health.pid=P-Employ.pid "
      "AND zipcode='177893'");
  auto result = Check(expr, {&profile});
  EXPECT_FALSE(result.suspicious);
  EXPECT_TRUE(result.per_scheme[0].attrs_covered);
  EXPECT_TRUE(result.per_scheme[0].accessed_facts.empty());
}

TEST_F(SuspicionTest, BatchCombinesPartialAccesses) {
  auto expr = Parse(kSemanticAudit);
  auto q1 = Profile(
      "SELECT name, address FROM P-Personal WHERE zipcode='145568'");
  auto q2 = Profile("SELECT disease FROM P-Health WHERE disease='diabetic'");
  // Neither alone...
  EXPECT_FALSE(Check(expr, {&q1}).suspicious);
  EXPECT_FALSE(Check(expr, {&q2}).suspicious);
  // ...but the batch together discloses the granule.
  auto result = Check(expr, {&q1, &q2});
  EXPECT_TRUE(result.suspicious);
}

TEST_F(SuspicionTest, JointModeIsStricterThanPerTable) {
  auto expr = Parse(kSemanticAudit);
  auto q1 = Profile(
      "SELECT name, address FROM P-Personal WHERE zipcode='145568'");
  auto q2 = Profile("SELECT disease FROM P-Health WHERE disease='diabetic'");

  SuspicionOptions per_table;
  per_table.mode = IndispensabilityMode::kPerTable;
  EXPECT_TRUE(Check(expr, {&q1, &q2}, per_table).suspicious);

  // No single query witnesses (t12,t22) jointly.
  SuspicionOptions joint;
  joint.mode = IndispensabilityMode::kJointPerQuery;
  EXPECT_FALSE(Check(expr, {&q1, &q2}, joint).suspicious);

  // A joining query does.
  auto q3 = Profile(
      "SELECT name, disease, address FROM P-Personal, P-Health "
      "WHERE P-Personal.pid=P-Health.pid AND zipcode='145568' "
      "AND disease='diabetic'");
  EXPECT_TRUE(Check(expr, {&q3}, joint).suspicious);
}

TEST_F(SuspicionTest, ThresholdRequiresEnoughFacts) {
  auto expr = Parse(
      "THRESHOLD 2 AUDIT (name) FROM P-Personal "
      "WHERE zipcode = '145568'");
  auto one = Profile("SELECT name FROM P-Personal WHERE name='Reku'");
  EXPECT_FALSE(Check(expr, {&one}).suspicious);
  auto two = Profile("SELECT name FROM P-Personal WHERE zipcode='145568'");
  EXPECT_TRUE(Check(expr, {&two}).suspicious);
}

TEST_F(SuspicionTest, ThresholdAllRequiresEveryFact) {
  auto expr = Parse("THRESHOLD ALL AUDIT (name) FROM P-Personal");
  auto partial =
      Profile("SELECT name FROM P-Personal WHERE zipcode='145568'");
  EXPECT_FALSE(Check(expr, {&partial}).suspicious);
  auto all = Profile("SELECT name FROM P-Personal");
  EXPECT_TRUE(Check(expr, {&all}).suspicious);
}

TEST_F(SuspicionTest, ValueContainmentMode) {
  auto expr = Parse(
      "INDISPENSABLE false AUDIT (name) FROM P-Personal "
      "WHERE zipcode = '145568'");
  // Outputs the audited values → accessed.
  auto outputs = Profile("SELECT name FROM P-Personal WHERE zipcode='145568'");
  EXPECT_TRUE(Check(expr, {&outputs}).suspicious);
  // Only references name in the predicate; discloses no name value.
  auto references = Profile("SELECT pid FROM P-Personal WHERE name='Reku'");
  EXPECT_FALSE(Check(expr, {&references}).suspicious);
  // Outputs names of a *different* population: values don't match U's.
  auto other = Profile("SELECT name FROM P-Personal WHERE zipcode='177893'");
  EXPECT_FALSE(Check(expr, {&other}).suspicious);
}

TEST_F(SuspicionTest, ValueContainmentCatchesPredicatelessDump) {
  // INDISPENSABLE=false flags any query whose *output* contains the
  // audited values, even a full-table dump with no matching predicate.
  auto expr = Parse(
      "INDISPENSABLE false AUDIT (name) FROM P-Personal "
      "WHERE zipcode = '145568'");
  auto dump = Profile("SELECT name FROM P-Personal");
  EXPECT_TRUE(Check(expr, {&dump}).suspicious);
}

TEST_F(SuspicionTest, EmptyBatchNeverSuspicious) {
  auto expr = Parse(kSemanticAudit);
  EXPECT_FALSE(Check(expr, {}).suspicious);
}

TEST_F(SuspicionTest, EmptyTargetViewNeverSuspicious) {
  auto expr = Parse(
      "AUDIT (name) FROM P-Personal WHERE zipcode = 'nowhere'");
  auto profile = Profile("SELECT name FROM P-Personal");
  EXPECT_FALSE(Check(expr, {&profile}).suspicious);
}

TEST_F(SuspicionTest, OptionalGroupsFireOnAnyScheme) {
  auto expr = Parse(
      "AUDIT [name,age] FROM P-Personal WHERE zipcode = '145568'");
  auto name_only =
      Profile("SELECT name FROM P-Personal WHERE zipcode='145568'");
  auto result = Check(expr, {&name_only});
  EXPECT_TRUE(result.suspicious);
  // Exactly one of the two schemes fires.
  int fired = 0;
  for (const auto& s : result.per_scheme) fired += s.suspicious ? 1 : 0;
  EXPECT_EQ(fired, 1);
}

// --- Notion factories -------------------------------------------------

TEST_F(SuspicionTest, MakePerfectPrivacyFlagsAnyCellAccess) {
  auto base = Parse(kSemanticAudit);
  auto notion = MakePerfectPrivacy(base);
  ASSERT_TRUE(notion.Qualify(db_.catalog()).ok());
  EXPECT_TRUE(notion.attrs.HasStar() || notion.attrs.AllAttributes().size() > 3);
  // A query touching only the ward of one audited patient.
  auto profile = Profile(
      "SELECT ward FROM P-Health, P-Personal "
      "WHERE P-Health.pid = P-Personal.pid AND zipcode='145568'");
  auto view = ComputeTargetView(notion, db_.View(), Ts(1));
  ASSERT_TRUE(view.ok());
  auto result = CheckBatchSuspicion(*view, BuildSchemes(notion),
                                    notion.threshold, notion.indispensable,
                                    {&profile});
  EXPECT_TRUE(result->suspicious);
  // The same query is NOT semantically suspicious.
  EXPECT_FALSE(Check(base, {&profile}).suspicious);
}

TEST_F(SuspicionTest, MakeWeakSyntacticIncludesWhereColumns) {
  auto base = Parse(kSemanticAudit);
  auto notion = MakeWeakSyntactic(base);
  auto attrs = notion.attrs.AllAttributes();
  // name, disease, address + pids (x3), zipcode, salary = 8 (Fig. 5).
  EXPECT_EQ(attrs.size(), 8u);
  ASSERT_EQ(notion.attrs.groups.size(), 1u);
  EXPECT_FALSE(notion.attrs.groups[0].mandatory);
  // A query reading just the zipcode of an audited patient fires it.
  auto profile =
      Profile("SELECT zipcode FROM P-Personal WHERE zipcode='145568'");
  ASSERT_TRUE(notion.Qualify(db_.catalog()).ok());
  auto view = ComputeTargetView(notion, db_.View(), Ts(1));
  ASSERT_TRUE(view.ok());
  auto result = CheckBatchSuspicion(*view, BuildSchemes(notion),
                                    notion.threshold, notion.indispensable,
                                    {&profile});
  EXPECT_TRUE(result->suspicious);
}

TEST_F(SuspicionTest, MakeSemanticFlattensToMandatory) {
  auto base = Parse("AUDIT [name],[disease] FROM P-Personal, P-Health "
                    "WHERE P-Personal.pid = P-Health.pid");
  auto notion = MakeSemantic(base);
  ASSERT_EQ(notion.attrs.groups.size(), 1u);
  EXPECT_TRUE(notion.attrs.groups[0].mandatory);
  EXPECT_EQ(notion.attrs.groups[0].attrs.size(), 2u);
}

TEST_F(SuspicionTest, MakeMandatoryOptionalNotion) {
  // Identifiers (name) mandatory, one of the mutually-derivable sensitive
  // attributes (disease, pres-drugs) suffices — the paper's case 2.
  auto base = Parse(kSemanticAudit);
  auto notion = MakeMandatoryOptional(
      base, {ColumnRef{"P-Personal", "name"}},
      {ColumnRef{"P-Health", "disease"}, ColumnRef{"P-Health", "pres-drugs"}});
  ASSERT_TRUE(notion.Qualify(db_.catalog()).ok());
  auto schemes = notion.attrs.EnumerateSchemes();
  ASSERT_EQ(schemes.size(), 2u);  // {name,disease} and {name,pres-drugs}

  auto view = ComputeTargetView(notion, db_.View(), Ts(1));
  ASSERT_TRUE(view.ok());
  auto granule_schemes = BuildSchemes(notion);

  // Reading names + prescriptions fires it even without disease access
  // (drug1 derives the diagnosis).
  auto drugs = Profile(
      "SELECT name, pres-drugs FROM P-Personal, P-Health "
      "WHERE P-Personal.pid = P-Health.pid AND zipcode='145568'");
  EXPECT_TRUE(CheckBatchSuspicion(*view, granule_schemes, notion.threshold,
                                  notion.indispensable, {&drugs})
                  ->suspicious);
  // Names alone do not.
  auto names = Profile(
      "SELECT name FROM P-Personal WHERE zipcode='145568'");
  EXPECT_FALSE(CheckBatchSuspicion(*view, granule_schemes, notion.threshold,
                                   notion.indispensable, {&names})
                   ->suspicious);
}

TEST_F(SuspicionTest, MakeThresholdNotion) {
  auto base = Parse(kSemanticAudit);
  auto notion = MakeThresholdNotion(base, Threshold::N(5));
  EXPECT_EQ(notion.threshold, Threshold::N(5));
  EXPECT_TRUE(notion.attrs.groups[0].mandatory);
}

// Regression: a ragged lineage row used to be swallowed by the joint-witness
// cache as "no witness" (non-suspicious); it must surface as an error now,
// through both the tuple-set arm and the bitmap arm.
TEST_F(SuspicionTest, RaggedLineagePropagatesErrorInJointMode) {
  auto expr = Parse(kSemanticAudit);
  auto q3 = Profile(
      "SELECT name, disease, address FROM P-Personal, P-Health "
      "WHERE P-Personal.pid=P-Health.pid AND zipcode='145568' "
      "AND disease='diabetic'");
  ASSERT_FALSE(q3.result.lineage.empty());
  q3.result.lineage[0].pop_back();  // now shorter than FROM

  auto view = ComputeTargetView(expr, db_.View(), Ts(1));
  ASSERT_TRUE(view.ok());
  for (bool bitmaps : {true, false}) {
    SuspicionOptions joint;
    joint.mode = IndispensabilityMode::kJointPerQuery;
    joint.tid_bitmaps = bitmaps;
    auto result = CheckBatchSuspicion(*view, BuildSchemes(expr),
                                      expr.threshold, expr.indispensable,
                                      {&q3}, joint);
    EXPECT_FALSE(result.ok()) << "tid_bitmaps=" << bitmaps;
  }
}

// A query whose FROM list does not cover the scheme's tables is a legitimate
// "cannot witness jointly", not an error — only genuinely malformed lineage
// should propagate a status.
TEST_F(SuspicionTest, PartialFromCoverageIsNotAnError) {
  auto expr = Parse(kSemanticAudit);
  auto q1 = Profile(
      "SELECT name, disease, address "
      "FROM P-Personal, P-Health, P-Employ "
      "WHERE P-Personal.pid=P-Health.pid AND P-Health.pid=P-Employ.pid "
      "AND zipcode='145568' AND disease='diabetic' AND salary > 10000");
  auto q2 = Profile("SELECT disease FROM P-Health WHERE disease='diabetic'");
  for (bool bitmaps : {true, false}) {
    SuspicionOptions joint;
    joint.mode = IndispensabilityMode::kJointPerQuery;
    joint.tid_bitmaps = bitmaps;
    auto result = Check(expr, {&q1, &q2}, joint);
    EXPECT_TRUE(result.suspicious) << "tid_bitmaps=" << bitmaps;
  }
}

// Regression: BatchIndex used to hold a reference to the caller's vector; a
// temporary argument left it dangling. It now holds the vector by value.
TEST_F(SuspicionTest, BatchIndexOutlivesTemporaryBatchVector) {
  auto profile = Profile(
      "SELECT name, disease FROM P-Personal, P-Health "
      "WHERE P-Personal.pid=P-Health.pid AND disease='diabetic'");
  BatchIndex index(std::vector<const AccessProfile*>{&profile});
  // The temporary vector is dead here; every probe below reads batch_.
  EXPECT_TRUE(index.Accesses(ColumnRef{"P-Health", "disease"}));
  EXPECT_FALSE(index.IndispensableTids("P-Health").empty());
  EXPECT_FALSE(index.IndispensableTidBitmap("P-Health").Empty());
  EXPECT_TRUE(index.IndispensableContains(
      "P-Health", *index.IndispensableTids("P-Health").begin()));
}

// Differential: the compressed-bitmap kernels must reproduce the set-based
// suspicion verdicts and accessed-fact lists exactly, across modes.
TEST_F(SuspicionTest, BitmapAblationMatchesSetPath) {
  auto expr = Parse(kSemanticAudit);
  auto q1 = Profile(
      "SELECT name, address FROM P-Personal WHERE zipcode='145568'");
  auto q2 = Profile("SELECT disease FROM P-Health WHERE disease='diabetic'");
  auto q3 = Profile(
      "SELECT name, disease, address FROM P-Personal, P-Health "
      "WHERE P-Personal.pid=P-Health.pid AND zipcode='145568' "
      "AND disease='diabetic'");
  const std::vector<std::vector<const AccessProfile*>> batches = {
      {&q1}, {&q2}, {&q1, &q2}, {&q3}, {&q1, &q2, &q3}};
  for (auto mode : {IndispensabilityMode::kPerTable,
                    IndispensabilityMode::kJointPerQuery}) {
    for (const auto& batch : batches) {
      SuspicionOptions on, off;
      on.mode = off.mode = mode;
      on.tid_bitmaps = true;
      off.tid_bitmaps = false;
      auto with = Check(expr, batch, on);
      auto without = Check(expr, batch, off);
      EXPECT_EQ(with.suspicious, without.suspicious);
      ASSERT_EQ(with.per_scheme.size(), without.per_scheme.size());
      for (size_t s = 0; s < with.per_scheme.size(); ++s) {
        EXPECT_EQ(with.per_scheme[s].attrs_covered,
                  without.per_scheme[s].attrs_covered);
        EXPECT_EQ(with.per_scheme[s].accessed_facts,
                  without.per_scheme[s].accessed_facts);
        EXPECT_EQ(with.per_scheme[s].suspicious,
                  without.per_scheme[s].suspicious);
      }
    }
  }
}

}  // namespace
}  // namespace audit
}  // namespace auditdb
