#include "src/audit/auditor.h"

#include <gtest/gtest.h>

#include "src/workload/hospital.h"

namespace auditdb {
namespace audit {
namespace {

Timestamp Ts(int64_t s) { return Timestamp(s * 1000000); }

class AuditorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    backlog_.Attach(&db_);
    ASSERT_TRUE(workload::BuildPaperDatabase(&db_, Ts(1)).ok());
  }

  int64_t Log(const std::string& sql, int64_t at_seconds,
              const std::string& user = "alice",
              const std::string& role = "doctor",
              const std::string& purpose = "treatment") {
    return log_.Append(sql, Ts(at_seconds), user, role, purpose);
  }

  AuditReport MustAudit(const std::string& text,
                        const AuditOptions& options = AuditOptions{}) {
    Auditor auditor(&db_, &backlog_, &log_);
    auto report = auditor.Audit(text, Ts(1000), options);
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    return std::move(*report);
  }

  // The DURING/DATA-INTERVAL clause covering the whole test timeline.
  const std::string kSpan =
      "DURING 1/1/1970 to 2/1/1970 DATA-INTERVAL 1/1/1970 to 2/1/1970 ";

  Database db_;
  Backlog backlog_;
  QueryLog log_;
};

TEST_F(AuditorTest, FlagsDisclosingQuery) {
  int64_t good = Log("SELECT ward FROM P-Health WHERE ward='W11'", 10);
  int64_t bad = Log(
      "SELECT name, disease, address FROM P-Personal, P-Health, P-Employ "
      "WHERE P-Personal.pid=P-Health.pid AND P-Health.pid=P-Employ.pid "
      "AND zipcode='145568' AND disease='diabetic' AND salary > 10000",
      20);
  auto report = MustAudit(
      kSpan +
      "AUDIT (name,disease,address) FROM P-Personal, P-Health, P-Employ "
      "WHERE P-Personal.pid=P-Health.pid and P-Health.pid=P-Employ.pid "
      "and P-Personal.zipcode='145568' and P-Employ.salary > 10000 "
      "and P-Health.disease='diabetic'");
  EXPECT_TRUE(report.batch_suspicious);
  EXPECT_EQ(report.SuspiciousQueryIds(), (std::vector<int64_t>{bad}));
  EXPECT_EQ(report.num_logged, 2u);
  EXPECT_EQ(report.num_admitted, 2u);
  EXPECT_EQ(report.num_candidates, 1u);  // the ward query is pruned
  EXPECT_EQ(report.target_view_size, 2u);
  EXPECT_EQ(report.minimal_batch, (std::vector<int64_t>{bad}));
  // The good query's verdict survives with candidate=false.
  EXPECT_FALSE(report.verdicts[static_cast<size_t>(good - 1)].candidate);
  EXPECT_NE(report.Summary().find("batch_suspicious=true"),
            std::string::npos);
}

TEST_F(AuditorTest, PaperIntroExample) {
  // Section 2.1: "SELECT zipcode FROM Patients WHERE disease='cancer'" is
  // suspicious for the disease audit iff a cancer patient lives in the
  // audited zip code. Nobody has cancer, so it must not be flagged —
  // static analysis alone (it touches `disease`) would have kept it.
  Log("SELECT zipcode FROM P-Personal, P-Health "
      "WHERE P-Personal.pid=P-Health.pid AND disease='cancer'",
      10);
  auto report = MustAudit(
      kSpan +
      "AUDIT [zipcode,disease] FROM P-Personal, P-Health "
      "WHERE P-Personal.pid=P-Health.pid AND zipcode='145568'");
  EXPECT_FALSE(report.batch_suspicious);
  EXPECT_EQ(report.num_candidates, 1u);   // statically plausible
  EXPECT_TRUE(report.SuspiciousQueryIds().empty());  // dynamically cleared
}

TEST_F(AuditorTest, BatchSuspicionWithoutSingleSuspicion) {
  int64_t q1 =
      Log("SELECT name, address FROM P-Personal WHERE zipcode='145568'", 10);
  int64_t q2 =
      Log("SELECT disease FROM P-Health WHERE disease='diabetic'", 20);
  auto report = MustAudit(
      kSpan +
      "AUDIT (name,disease,address) FROM P-Personal, P-Health, P-Employ "
      "WHERE P-Personal.pid=P-Health.pid and P-Health.pid=P-Employ.pid "
      "and P-Personal.zipcode='145568' and P-Employ.salary > 10000 "
      "and P-Health.disease='diabetic'");
  EXPECT_TRUE(report.batch_suspicious);
  EXPECT_TRUE(report.SuspiciousQueryIds().empty());
  // Both queries are needed: the minimal batch is {q1, q2}.
  EXPECT_EQ(report.minimal_batch, (std::vector<int64_t>{q1, q2}));
}

TEST_F(AuditorTest, LimitingParametersFilterQueries) {
  Log("SELECT name, age, address FROM P-Personal WHERE age < 30", 10,
      "mallory", "clerk", "billing");
  Log("SELECT name, age, address FROM P-Personal WHERE age < 30", 20,
      "alice", "doctor", "treatment");
  // Exclude clerks: only alice's access is audited.
  auto report = MustAudit(
      "Neg-Role-Purpose (clerk,-) " + kSpan +
      "AUDIT name, age, address FROM P-Personal WHERE age < 30");
  EXPECT_EQ(report.num_admitted, 1u);
  EXPECT_EQ(report.SuspiciousQueryIds(), (std::vector<int64_t>{2}));

  // Positive user filter.
  auto report2 = MustAudit(
      "Pos-User-Identity mallory " + kSpan +
      "AUDIT name, age, address FROM P-Personal WHERE age < 30");
  EXPECT_EQ(report2.num_admitted, 1u);
  EXPECT_EQ(report2.SuspiciousQueryIds(), (std::vector<int64_t>{1}));
}

TEST_F(AuditorTest, DuringClauseFiltersByTime) {
  Log("SELECT name, age, address FROM P-Personal WHERE age < 30", 10);
  Log("SELECT name, age, address FROM P-Personal WHERE age < 30", 500);
  auto report = MustAudit(
      "DURING 1/1/1970:00-00-00 to 1/1/1970:00-02-00 "
      "DATA-INTERVAL 1/1/1970 to 2/1/1970 "
      "AUDIT name, age, address FROM P-Personal WHERE age < 30");
  EXPECT_EQ(report.num_admitted, 1u);
  EXPECT_EQ(report.SuspiciousQueryIds(), (std::vector<int64_t>{1}));
}

TEST_F(AuditorTest, QueriesAuditedAgainstTheirOwnDbState) {
  // Reku's zipcode changes at t=50. A query at t=10 saw the old value;
  // a query at t=60 sees the new one.
  Log("SELECT name, zipcode FROM P-Personal WHERE zipcode='145568'", 10);
  ASSERT_TRUE(db_.UpdateColumn("P-Personal", 12, "zipcode",
                               Value::String("999999"), Ts(50))
                  .ok());
  Log("SELECT name, zipcode FROM P-Personal WHERE zipcode='145568'", 60);

  // Audit the *old* zipcode population, data version pinned before the
  // update: only the first query disclosed Reku's row.
  auto report = MustAudit(
      "DURING 1/1/1970 to 2/1/1970 "
      "DATA-INTERVAL 1/1/1970:00-00-10 to 1/1/1970:00-00-10 "
      "AUDIT (name,zipcode) FROM P-Personal WHERE name='Reku'");
  EXPECT_EQ(report.SuspiciousQueryIds(), (std::vector<int64_t>{1}));
}

TEST_F(AuditorTest, DataIntervalSpanningUpdateCatchesBothQueries) {
  Log("SELECT name, zipcode FROM P-Personal WHERE zipcode='145568'", 10);
  ASSERT_TRUE(db_.UpdateColumn("P-Personal", 12, "zipcode",
                               Value::String("999999"), Ts(50))
                  .ok());
  Log("SELECT name, zipcode FROM P-Personal WHERE zipcode='999999'", 60);
  auto report = MustAudit(
      kSpan + "AUDIT (name,zipcode) FROM P-Personal WHERE name='Reku'");
  EXPECT_EQ(report.SuspiciousQueryIds(), (std::vector<int64_t>{1, 2}));
}

TEST_F(AuditorTest, UnparseableLoggedQueriesAreSkipped) {
  Log("DROP TABLE P-Personal", 10);
  Log("SELECT name, age, address FROM P-Personal WHERE age < 30", 20);
  auto report = MustAudit(
      kSpan + "AUDIT name, age, address FROM P-Personal WHERE age < 30");
  EXPECT_TRUE(report.verdicts[0].parse_failed);
  EXPECT_EQ(report.SuspiciousQueryIds(), (std::vector<int64_t>{2}));
}

TEST_F(AuditorTest, ThresholdAuditExpression) {
  // Disclosing one patient is tolerated; two or more is flagged.
  Log("SELECT name FROM P-Personal WHERE name='Reku'", 10);
  auto tolerant = MustAudit(
      "THRESHOLD 2 " + kSpan +
      "AUDIT (name) FROM P-Personal WHERE zipcode='145568'");
  EXPECT_FALSE(tolerant.batch_suspicious);

  Log("SELECT name FROM P-Personal WHERE name='Lucy'", 20);
  auto fired = MustAudit(
      "THRESHOLD 2 " + kSpan +
      "AUDIT (name) FROM P-Personal WHERE zipcode='145568'");
  EXPECT_TRUE(fired.batch_suspicious);
}

TEST_F(AuditorTest, PerQueryVerdictsCanBeDisabled) {
  Log("SELECT name, age, address FROM P-Personal WHERE age < 30", 10);
  AuditOptions options;
  options.per_query_verdicts = false;
  options.minimize_batch = false;
  auto report = MustAudit(
      kSpan + "AUDIT name, age, address FROM P-Personal WHERE age < 30",
      options);
  EXPECT_TRUE(report.batch_suspicious);
  EXPECT_TRUE(report.SuspiciousQueryIds().empty());  // not computed
  EXPECT_TRUE(report.minimal_batch.empty());
}

TEST_F(AuditorTest, EvidenceMentionsAccessedFacts) {
  Log("SELECT name, age, address FROM P-Personal WHERE age < 30", 10);
  auto report = MustAudit(
      kSpan + "AUDIT name, age, address FROM P-Personal WHERE age < 30");
  EXPECT_NE(report.evidence.find("t11"), std::string::npos);
  EXPECT_NE(report.evidence.find("scheme"), std::string::npos);
}

TEST_F(AuditorTest, DetailedReportShowsFunnelAndVerdicts) {
  Log("SELECT ward FROM P-Health WHERE ward='W11'", 10);
  Log("SELECT name, age, address FROM P-Personal WHERE age < 30", 20,
      "mallory");
  auto report = MustAudit(
      kSpan + "AUDIT name, age, address FROM P-Personal WHERE age < 30");
  std::string text = report.DetailedReport(log_);
  EXPECT_NE(text.find("AUDIT REPORT"), std::string::npos);
  EXPECT_NE(text.find("2 logged"), std::string::npos);
  EXPECT_NE(text.find("SUSPICIOUS"), std::string::npos);
  EXPECT_NE(text.find("[SUSPECT  ]"), std::string::npos);
  EXPECT_NE(text.find("[cleared  ]"), std::string::npos);
  EXPECT_NE(text.find("mallory"), std::string::npos);
  EXPECT_NE(text.find("evidence"), std::string::npos);
  EXPECT_NE(text.find("phases:"), std::string::npos);
  // Phase timings are populated for a dynamic audit.
  EXPECT_GE(report.static_seconds, 0.0);
  EXPECT_GT(report.static_seconds + report.view_seconds +
                report.exec_seconds + report.check_seconds,
            0.0);
}

TEST_F(AuditorTest, StaticOnlyModeOverApproximates) {
  // The paper's §2.1 example again: statically the cancer query covers
  // the audited columns, so data-independent auditing flags it; the
  // data-dependent phase would clear it.
  Log("SELECT zipcode FROM P-Personal, P-Health "
      "WHERE P-Personal.pid=P-Health.pid AND disease='cancer'",
      10);
  AuditOptions static_opts;
  static_opts.static_only = true;
  auto static_report = MustAudit(
      kSpan +
      "AUDIT (zipcode,disease) FROM P-Personal, P-Health "
      "WHERE P-Personal.pid=P-Health.pid AND zipcode='145568'",
      static_opts);
  EXPECT_TRUE(static_report.batch_suspicious);
  EXPECT_EQ(static_report.SuspiciousQueryIds(), (std::vector<int64_t>{1}));
  EXPECT_NE(static_report.evidence.find("static"), std::string::npos);

  auto dynamic_report = MustAudit(
      kSpan +
      "AUDIT (zipcode,disease) FROM P-Personal, P-Health "
      "WHERE P-Personal.pid=P-Health.pid AND zipcode='145568'");
  EXPECT_FALSE(dynamic_report.batch_suspicious);
}

TEST_F(AuditorTest, StaticOnlyRespectsPredicateConflicts) {
  Log("SELECT zipcode, disease FROM P-Personal, P-Health "
      "WHERE P-Personal.pid=P-Health.pid AND zipcode='999999'",
      10);
  AuditOptions static_opts;
  static_opts.static_only = true;
  auto report = MustAudit(
      kSpan +
      "AUDIT (zipcode,disease) FROM P-Personal, P-Health "
      "WHERE P-Personal.pid=P-Health.pid AND zipcode='145568'",
      static_opts);
  // The zip codes provably conflict: not even statically suspicious.
  EXPECT_FALSE(report.batch_suspicious);
  EXPECT_EQ(report.num_candidates, 0u);
}

TEST_F(AuditorTest, CandidacyCheckFailuresAreErrorsNotClearances) {
  // Parses as SQL, but the static candidacy check cannot resolve the
  // table. The old pipeline silently scored it "not a candidate" —
  // indistinguishable from a query *proven* harmless. It must carry a
  // distinct error verdict (and still not poison the rest of the audit).
  int64_t broken = Log("SELECT secret FROM NoSuchTable", 10);
  int64_t clean = Log("SELECT ward FROM P-Health WHERE ward='W11'", 20);
  auto report = MustAudit(kSpan + "AUDIT (disease) FROM P-Health");
  ASSERT_EQ(report.verdicts.size(), 2u);
  const auto& bad = report.verdicts[static_cast<size_t>(broken - 1)];
  EXPECT_TRUE(bad.error);
  EXPECT_FALSE(bad.candidate);
  EXPECT_FALSE(bad.suspicious_alone);
  const auto& good = report.verdicts[static_cast<size_t>(clean - 1)];
  EXPECT_FALSE(good.error);
  EXPECT_NE(report.CanonicalString().find(" error"), std::string::npos);
  EXPECT_NE(report.DetailedReport(log_).find("ERROR"), std::string::npos);
}

TEST_F(AuditorTest, StaticOnlyAlsoReportsPerQueryErrors) {
  Log("SELECT secret FROM NoSuchTable", 10);
  AuditOptions static_opts;
  static_opts.static_only = true;
  auto report =
      MustAudit(kSpan + "AUDIT (disease) FROM P-Health", static_opts);
  ASSERT_EQ(report.verdicts.size(), 1u);
  EXPECT_TRUE(report.verdicts[0].error);
  EXPECT_FALSE(report.verdicts[0].candidate);
}

TEST_F(AuditorTest, DecisionCacheKeepsReportsByteIdentical) {
  Log("SELECT name, disease FROM P-Personal, P-Health "
      "WHERE P-Personal.pid=P-Health.pid AND disease='diabetic'",
      10);
  Log("SELECT secret FROM NoSuchTable", 20);
  Log("SELECT ward FROM P-Health WHERE ward='W11'", 30);
  const std::string text =
      kSpan +
      "AUDIT (name,disease) FROM P-Personal, P-Health "
      "WHERE P-Personal.pid = P-Health.pid AND disease='diabetic'";
  auto plain = MustAudit(text);

  DecisionCache cache;
  AuditOptions cached_opts;
  cached_opts.cache = &cache;
  // Twice through the same cache: the second run is answered from it.
  auto first = MustAudit(text, cached_opts);
  auto second = MustAudit(text, cached_opts);
  EXPECT_EQ(first.CanonicalString(), plain.CanonicalString());
  EXPECT_EQ(second.CanonicalString(), plain.CanonicalString());
  EXPECT_GT(cache.stats()->cache_hits.load(), 0u);
}

TEST_F(AuditorTest, ParseErrorsSurface) {
  Auditor auditor(&db_, &backlog_, &log_);
  EXPECT_FALSE(auditor.Audit("AUDIT FROM nothing", Ts(1000)).ok());
  EXPECT_FALSE(
      auditor.Audit("AUDIT x FROM NoSuchTable", Ts(1000)).ok());
}

}  // namespace
}  // namespace audit
}  // namespace auditdb
