#include "src/audit/target_view.h"

#include <gtest/gtest.h>

#include "src/audit/audit_parser.h"
#include "src/workload/hospital.h"

namespace auditdb {
namespace audit {
namespace {

Timestamp Ts(int64_t s) { return Timestamp(s * 1000000); }

class TargetViewVersionsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    backlog_.Attach(&db_);
    ASSERT_TRUE(workload::BuildPaperDatabase(&db_, Ts(1)).ok());
  }

  AuditExpression MustParse(const std::string& text) {
    auto expr = ParseAudit(text, Ts(1000));
    EXPECT_TRUE(expr.ok()) << expr.status().ToString();
    auto q = expr->Qualify(db_.catalog());
    EXPECT_TRUE(q.ok()) << q.ToString();
    return std::move(*expr);
  }

  Database db_;
  Backlog backlog_;
};

TEST_F(TargetViewVersionsTest, SingleVersion) {
  auto expr = MustParse(
      "DATA-INTERVAL 1/1/1970:00-01-40 to 1/1/1970:00-01-40 "
      "AUDIT zipcode FROM P-Personal WHERE name = 'Reku'");
  auto view = ComputeTargetViewOverVersions(expr, backlog_);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  ASSERT_EQ(view->size(), 1u);
  EXPECT_EQ(view->facts[0].values[0], Value::String("145568"));
}

TEST_F(TargetViewVersionsTest, UnionAcrossUpdatedVersions) {
  // The paper's Section 2.1 discussion: if a zipcode is updated, the two
  // interpretations (backlog vs current) differ; DATA-INTERVAL makes the
  // choice explicit. Here the interval spans the update, so U contains
  // both versions of Reku's zipcode.
  ASSERT_TRUE(db_.UpdateColumn("P-Personal", 12, "zipcode",
                               Value::String("999999"), Ts(50))
                  .ok());
  auto expr = MustParse(
      "DATA-INTERVAL 1/1/1970:00-00-01 to 1/1/1970:00-02-00 "
      "AUDIT zipcode FROM P-Personal WHERE name = 'Reku'");
  auto view = ComputeTargetViewOverVersions(expr, backlog_);
  ASSERT_TRUE(view.ok());
  ASSERT_EQ(view->size(), 2u);
  EXPECT_EQ(view->facts[0].values[0], Value::String("145568"));
  EXPECT_EQ(view->facts[0].version, Ts(1));
  EXPECT_EQ(view->facts[1].values[0], Value::String("999999"));
  EXPECT_EQ(view->facts[1].version, Ts(50));
  // Same tuple id across versions: it is the same tuple, new version.
  EXPECT_EQ(view->facts[0].tids, view->facts[1].tids);
}

TEST_F(TargetViewVersionsTest, CurrentVersionOnlySeesNewValue) {
  ASSERT_TRUE(db_.UpdateColumn("P-Personal", 12, "zipcode",
                               Value::String("999999"), Ts(50))
                  .ok());
  auto expr = MustParse(
      "DATA-INTERVAL 1/1/1970:00-01-40 to 1/1/1970:00-01-40 "
      "AUDIT zipcode FROM P-Personal WHERE name = 'Reku'");
  auto view = ComputeTargetViewOverVersions(expr, backlog_);
  ASSERT_TRUE(view.ok());
  ASSERT_EQ(view->size(), 1u);
  EXPECT_EQ(view->facts[0].values[0], Value::String("999999"));
}

TEST_F(TargetViewVersionsTest, DeletedTupleVisibleInEarlierVersions) {
  ASSERT_TRUE(db_.Delete("P-Personal", 12, Ts(60)).ok());
  auto spanning = MustParse(
      "DATA-INTERVAL 1/1/1970:00-00-01 to 1/1/1970:00-02-00 "
      "AUDIT zipcode FROM P-Personal WHERE name = 'Reku'");
  auto view = ComputeTargetViewOverVersions(spanning, backlog_);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->size(), 1u);  // only from the pre-delete version

  auto after = MustParse(
      "DATA-INTERVAL 1/1/1970:00-01-40 to 1/1/1970:00-01-40 "
      "AUDIT zipcode FROM P-Personal WHERE name = 'Reku'");
  view = ComputeTargetViewOverVersions(after, backlog_);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->size(), 0u);
}

TEST_F(TargetViewVersionsTest, NoWhereClauseTakesWholeTable) {
  auto expr = MustParse(
      "DATA-INTERVAL 1/1/1970:00-01-40 to 1/1/1970:00-01-40 "
      "AUDIT salary FROM P-Employ");
  auto view = ComputeTargetViewOverVersions(expr, backlog_);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->size(), 4u);
}

TEST_F(TargetViewVersionsTest, ColumnAndTableIndex) {
  auto expr = MustParse(
      "AUDIT name, disease FROM P-Personal, P-Health "
      "WHERE P-Personal.pid = P-Health.pid");
  auto view = ComputeTargetView(expr, db_.View(), Ts(1));
  ASSERT_TRUE(view.ok());
  auto name_idx = view->ColumnIndex(ColumnRef{"P-Personal", "name"});
  ASSERT_TRUE(name_idx.ok());
  EXPECT_EQ(*name_idx, 0u);
  EXPECT_FALSE(view->ColumnIndex(ColumnRef{"P-Personal", "sex"}).ok());
  auto table_idx = view->TableIndex("P-Health");
  ASSERT_TRUE(table_idx.ok());
  EXPECT_EQ(*table_idx, 1u);
  EXPECT_FALSE(view->TableIndex("P-Employ").ok());
}

TEST_F(TargetViewVersionsTest, AgrawalBacklogInterpretationViaBTable) {
  // Section 2.1: Agrawal et al. read "AUDIT zipcode ... WHERE disease=d"
  // against ALL versions in the backlog table (b-Patients), Motwani et
  // al. against the current instance. The first interpretation is
  // expressible here by auditing the materialized b-table directly.
  ASSERT_TRUE(db_.UpdateColumn("P-Personal", 12, "zipcode",
                               Value::String("999999"), Ts(50))
                  .ok());

  auto b_table = backlog_.MaterializeBacklogTable("P-Personal");
  ASSERT_TRUE(b_table.ok());
  DatabaseView view;
  view.AddTable(b_table->get());

  auto expr = ParseAudit("AUDIT zipcode FROM b-P-Personal "
                         "WHERE name = 'Reku'",
                         Ts(1000));
  ASSERT_TRUE(expr.ok());
  ASSERT_TRUE(expr->Qualify(view.catalog()).ok());
  auto u = ComputeTargetView(*expr, view, Ts(1000));
  ASSERT_TRUE(u.ok()) << u.status().ToString();
  // Both zipcode versions of Reku appear — the Agrawal reading.
  ASSERT_EQ(u->size(), 2u);
  std::set<Value> zips;
  for (const auto& fact : u->facts) zips.insert(fact.values[0]);
  EXPECT_TRUE(zips.count(Value::String("145568")));
  EXPECT_TRUE(zips.count(Value::String("999999")));
}

TEST_F(TargetViewVersionsTest, ToStringHasHeaderAndRows) {
  auto expr = MustParse("AUDIT name FROM P-Personal WHERE age < 30");
  auto view = ComputeTargetView(expr, db_.View(), Ts(1));
  ASSERT_TRUE(view.ok());
  std::string text = view->ToString();
  EXPECT_NE(text.find("tid_P-Personal"), std::string::npos);
  EXPECT_NE(text.find("Jane"), std::string::npos);
  EXPECT_NE(text.find("t11"), std::string::npos);
}

}  // namespace
}  // namespace audit
}  // namespace auditdb
