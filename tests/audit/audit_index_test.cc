/// The standing-expression audit index and its decision cache: key
/// normalization, inverted-index lookups, memoization (including error
/// outcomes), wholesale invalidation, and null-cache equivalence.

#include "src/audit/audit_index.h"

#include <gtest/gtest.h>

#include <functional>

#include "src/audit/audit_parser.h"
#include "src/sql/parser.h"
#include "src/sql/query_shape.h"
#include "src/workload/hospital.h"

namespace auditdb {
namespace audit {
namespace {

Timestamp Ts(int64_t s) { return Timestamp(s * 1000000); }

/// Distinct deterministic cache keys from short tags.
sql::QueryShape Shape(const std::string& tag) {
  return sql::ComputeQueryShape(tag);
}

TEST(NormalizedSqlKeyTest, CollapsesWhitespaceAndTrims) {
  EXPECT_EQ(NormalizedSqlKey("SELECT  name\tFROM\n  P-Personal "),
            "SELECT name FROM P-Personal");
  EXPECT_EQ(NormalizedSqlKey("  \t\n  "), "");
  EXPECT_EQ(NormalizedSqlKey("SELECT 1"), "SELECT 1");
}

TEST(NormalizedSqlKeyTest, PreservesLiteralCase) {
  // Only formatting is folded, never semantics: 'Ward' and 'ward' are
  // different string literals.
  EXPECT_EQ(NormalizedSqlKey("SELECT x WHERE w =  'Ward'"),
            "SELECT x WHERE w = 'Ward'");
  EXPECT_NE(NormalizedSqlKey("SELECT x WHERE w='Ward'"),
            NormalizedSqlKey("SELECT x WHERE w='ward'"));
}

class AuditIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(workload::BuildPaperDatabase(&db_, Ts(1)).ok());
  }

  AuditExpression Qualified(const std::string& text) {
    auto expr = ParseAudit("DURING 1/1/1970 to 2/1/1970 " + text, Ts(1000));
    EXPECT_TRUE(expr.ok()) << expr.status().ToString();
    EXPECT_TRUE(expr->Qualify(db_.catalog()).ok());
    return std::move(*expr);
  }

  sql::SelectStatement Select(const std::string& sql) {
    auto stmt = sql::ParseSelect(sql);
    EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
    return std::move(*stmt);
  }

  Database db_;
};

TEST_F(AuditIndexTest, CandidatesReturnsOnlyTouchedExpressions) {
  ExpressionIndex index;
  index.Add(0, Qualified("AUDIT (disease) FROM P-Health"));
  index.Add(1, Qualified("AUDIT (salary) FROM P-Employ"));
  index.Add(2, Qualified("AUDIT (name,disease) FROM P-Personal, P-Health "
                         "WHERE P-Personal.pid = P-Health.pid"));
  EXPECT_EQ(index.size(), 3u);

  std::set<ColumnRef> disease = {{"P-Health", "disease"}};
  EXPECT_EQ(index.Candidates(disease), (std::vector<int>{0, 2}));

  std::set<ColumnRef> salary = {{"P-Employ", "salary"}};
  EXPECT_EQ(index.Candidates(salary), (std::vector<int>{1}));

  std::set<ColumnRef> untouched = {{"P-Health", "ward"}};
  EXPECT_TRUE(index.Candidates(untouched).empty());
  EXPECT_TRUE(index.Candidates({}).empty());
}

TEST_F(AuditIndexTest, CandidatesAreAscendingAndDeduplicated) {
  ExpressionIndex index;
  // Registered out of id order; one query touching both audited
  // attributes of id 5 must still report it once.
  index.Add(5, Qualified("AUDIT (name,disease) FROM P-Personal, P-Health "
                         "WHERE P-Personal.pid = P-Health.pid"));
  index.Add(1, Qualified("AUDIT (disease) FROM P-Health"));
  std::set<ColumnRef> both = {{"P-Personal", "name"},
                              {"P-Health", "disease"}};
  EXPECT_EQ(index.Candidates(both), (std::vector<int>{1, 5}));
}

TEST_F(AuditIndexTest, RemoveUnregistersAndReaddReplaces) {
  ExpressionIndex index;
  index.Add(0, Qualified("AUDIT (disease) FROM P-Health"));
  index.Remove(0);
  EXPECT_EQ(index.size(), 0u);
  std::set<ColumnRef> disease = {{"P-Health", "disease"}};
  EXPECT_TRUE(index.Candidates(disease).empty());
  index.Remove(0);  // no-op on absent id

  // Re-adding the same id with a different expression replaces it.
  index.Add(0, Qualified("AUDIT (disease) FROM P-Health"));
  index.Add(0, Qualified("AUDIT (salary) FROM P-Employ"));
  EXPECT_EQ(index.size(), 1u);
  EXPECT_TRUE(index.Candidates(disease).empty());
  std::set<ColumnRef> salary = {{"P-Employ", "salary"}};
  EXPECT_EQ(index.Candidates(salary), (std::vector<int>{0}));
}

TEST_F(AuditIndexTest, AccessedColumnsMemoizesSuccesses) {
  DecisionCache cache;
  auto stmt = Select("SELECT disease FROM P-Health");
  auto first = cache.AccessedColumns(Shape("k1"), false, 0, stmt, db_.catalog());
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->status.ok());
  EXPECT_EQ(cache.stats()->cache_misses.load(), 1u);
  EXPECT_EQ(cache.stats()->cache_hits.load(), 0u);

  auto second = cache.AccessedColumns(Shape("k1"), false, 0, stmt, db_.catalog());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(cache.stats()->cache_hits.load(), 1u);
  // The hit shares the miss's column set (same object, not a copy).
  EXPECT_EQ(first->columns.get(), second->columns.get());
  EXPECT_EQ(cache.column_entries(), 1u);
}

TEST_F(AuditIndexTest, AccessedColumnsMemoizesErrorsByteForByte) {
  DecisionCache cache;
  auto stmt = Select("SELECT x FROM NoSuchTable");
  auto first = cache.AccessedColumns(Shape("k1"), false, 0, stmt, db_.catalog());
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->status.ok());
  auto second = cache.AccessedColumns(Shape("k1"), false, 0, stmt, db_.catalog());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->status.ToString(), first->status.ToString());
  EXPECT_EQ(cache.stats()->cache_hits.load(), 1u);
}

TEST_F(AuditIndexTest, DistinctKeysDoNotCollide) {
  DecisionCache cache;
  auto stmt = Select("SELECT disease FROM P-Health");
  // Same SQL key, different outputs_only / mutation: three entries.
  ASSERT_TRUE(cache.AccessedColumns(Shape("k"), false, 0, stmt, db_.catalog()).ok());
  ASSERT_TRUE(cache.AccessedColumns(Shape("k"), true, 0, stmt, db_.catalog()).ok());
  ASSERT_TRUE(cache.AccessedColumns(Shape("k"), false, 1, stmt, db_.catalog()).ok());
  EXPECT_EQ(cache.column_entries(), 3u);
  EXPECT_EQ(cache.stats()->cache_misses.load(), 3u);
  EXPECT_EQ(cache.stats()->cache_hits.load(), 0u);
}

TEST_F(AuditIndexTest, BatchCandidateMemoizesDecisionsAndErrors) {
  DecisionCache cache;
  auto expr = Qualified("AUDIT (disease) FROM P-Health");
  uint64_t expr_hash = std::hash<std::string>{}(expr.ToString());

  auto touching = Select("SELECT disease FROM P-Health");
  auto first = cache.BatchCandidate(Shape("q1"), expr_hash, 0, touching, expr,
                                    db_.catalog(), CandidateOptions{});
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(*first);
  auto again = cache.BatchCandidate(Shape("q1"), expr_hash, 0, touching, expr,
                                    db_.catalog(), CandidateOptions{});
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(*again);
  EXPECT_EQ(cache.stats()->cache_hits.load(), 1u);

  auto broken = Select("SELECT x FROM NoSuchTable");
  auto err = cache.BatchCandidate(Shape("q2"), expr_hash, 0, broken, expr,
                                  db_.catalog(), CandidateOptions{});
  EXPECT_FALSE(err.ok());
  auto err_again = cache.BatchCandidate(Shape("q2"), expr_hash, 0, broken, expr,
                                        db_.catalog(), CandidateOptions{});
  EXPECT_FALSE(err_again.ok());
  EXPECT_EQ(err_again.status().ToString(), err.status().ToString());
  EXPECT_EQ(cache.decision_entries(), 2u);
}

TEST_F(AuditIndexTest, CachedBatchCandidateMatchesDirectWithAndWithoutCache) {
  DecisionCache cache;
  auto expr = Qualified("AUDIT (disease) FROM P-Health");
  uint64_t expr_hash = std::hash<std::string>{}(expr.ToString());
  for (const char* sql :
       {"SELECT disease FROM P-Health", "SELECT ward FROM P-Health",
        "SELECT x FROM NoSuchTable"}) {
    auto stmt = Select(sql);
    auto direct =
        IsBatchCandidate(stmt, expr, db_.catalog(), CandidateOptions{});
    sql::QueryShape key = sql::ComputeQueryShape(sql);
    for (int round = 0; round < 2; ++round) {  // miss then hit
      auto cached = CachedBatchCandidate(&cache, key, expr_hash, 0, stmt,
                                         expr, db_.catalog(),
                                         CandidateOptions{});
      ASSERT_EQ(cached.ok(), direct.ok()) << sql;
      if (direct.ok()) {
        EXPECT_EQ(*cached, *direct) << sql;
      } else {
        EXPECT_EQ(cached.status().ToString(), direct.status().ToString());
      }
    }
    auto uncached = CachedBatchCandidate(nullptr, key, expr_hash, 0, stmt,
                                         expr, db_.catalog(),
                                         CandidateOptions{});
    ASSERT_EQ(uncached.ok(), direct.ok()) << sql;
    if (direct.ok()) EXPECT_EQ(*uncached, *direct);
  }
}

TEST_F(AuditIndexTest, ProfileRoundTripAndInvalidate) {
  DecisionCache cache;
  EXPECT_EQ(cache.LookupProfile(Shape("q"), 0), nullptr);
  auto profile = std::make_shared<const AccessProfile>();
  cache.StoreProfile(Shape("q"), 0, profile);
  EXPECT_EQ(cache.LookupProfile(Shape("q"), 0).get(), profile.get());
  // A different mutation count is a different state: miss.
  EXPECT_EQ(cache.LookupProfile(Shape("q"), 1), nullptr);
  EXPECT_EQ(cache.profile_entries(), 1u);

  cache.Invalidate();
  EXPECT_EQ(cache.LookupProfile(Shape("q"), 0), nullptr);
  EXPECT_EQ(cache.column_entries(), 0u);
  EXPECT_EQ(cache.decision_entries(), 0u);
  EXPECT_EQ(cache.profile_entries(), 0u);
  EXPECT_EQ(cache.stats()->cache_invalidations.load(), 1u);
}

TEST_F(AuditIndexTest, CapsDropSectionsWholesaleWithoutLosingCorrectness) {
  DecisionCacheOptions options;
  options.max_column_entries = 2;
  DecisionCache cache(options);
  auto stmt = Select("SELECT disease FROM P-Health");
  for (uint64_t m = 0; m < 5; ++m) {
    auto entry = cache.AccessedColumns(Shape("k"), false, m, stmt, db_.catalog());
    ASSERT_TRUE(entry.ok());
    ASSERT_TRUE(entry->status.ok());
  }
  // Never above the cap; every lookup still answered correctly.
  EXPECT_LE(cache.column_entries(), 2u);
  EXPECT_EQ(cache.stats()->cache_misses.load(), 5u);
}

TEST_F(AuditIndexTest, StatsRenderAsJson) {
  AuditIndexStats stats;
  stats.index_lookups.store(3);
  stats.index_skipped.store(7);
  stats.cache_hits.store(11);
  EXPECT_EQ(stats.ToJson(),
            "{\"lookups\":3,\"visited\":0,\"skipped\":7,\"fallbacks\":0,"
            "\"cache_hits\":11,\"cache_misses\":0,"
            "\"cache_invalidations\":0}");
}

TEST_F(AuditIndexTest, MutationCountAdvancesOnWritesAndSchemaChanges) {
  uint64_t before = db_.mutation_count();
  ASSERT_TRUE(db_.Insert("P-Health",
                         {Value::String("p77"), Value::String("W9"),
                          Value::String("Smith"), Value::String("flu"),
                          Value::String("drug9")},
                         Ts(10))
                  .ok());
  EXPECT_GT(db_.mutation_count(), before);
}

}  // namespace
}  // namespace audit
}  // namespace auditdb
