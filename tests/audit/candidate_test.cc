#include "src/audit/candidate.h"

#include <gtest/gtest.h>

#include "src/audit/audit_parser.h"
#include "src/workload/hospital.h"

namespace auditdb {
namespace audit {
namespace {

Timestamp Ts(int64_t s) { return Timestamp(s * 1000000); }

class CandidateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(workload::BuildPaperDatabase(&db_, Ts(1)).ok());
    auto parsed = ParseAudit(
        "AUDIT (name,disease) FROM P-Personal, P-Health "
        "WHERE P-Personal.pid = P-Health.pid "
        "AND P-Health.disease = 'diabetic'",
        Ts(1000));
    ASSERT_TRUE(parsed.ok());
    expr_ = std::move(*parsed);
    ASSERT_TRUE(expr_.Qualify(db_.catalog()).ok());
  }

  sql::SelectStatement Q(const std::string& sql) {
    auto stmt = sql::ParseSelect(sql);
    EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
    return std::move(*stmt);
  }

  bool Batch(const std::string& sql,
             const CandidateOptions& options = CandidateOptions{}) {
    auto r = IsBatchCandidate(Q(sql), expr_, db_.catalog(), options);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return *r;
  }

  bool Single(const std::string& sql,
              const CandidateOptions& options = CandidateOptions{}) {
    auto r = IsSingleCandidate(Q(sql), expr_, db_.catalog(), options);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return *r;
  }

  Database db_;
  AuditExpression expr_;
};

TEST_F(CandidateTest, StaticAccessedColumns) {
  auto cols = StaticAccessedColumns(
      Q("SELECT name FROM P-Personal WHERE age < 30"), db_.catalog(),
      /*outputs_only=*/false);
  ASSERT_TRUE(cols.ok());
  EXPECT_EQ(cols->size(), 2u);
  EXPECT_TRUE(cols->count(ColumnRef{"P-Personal", "name"}));
  EXPECT_TRUE(cols->count(ColumnRef{"P-Personal", "age"}));

  auto outputs = StaticAccessedColumns(
      Q("SELECT name FROM P-Personal WHERE age < 30"), db_.catalog(),
      /*outputs_only=*/true);
  ASSERT_TRUE(outputs.ok());
  EXPECT_EQ(outputs->size(), 1u);

  auto star = StaticAccessedColumns(Q("SELECT * FROM P-Employ"),
                                    db_.catalog(), false);
  ASSERT_TRUE(star.ok());
  EXPECT_EQ(star->size(), 3u);
}

TEST_F(CandidateTest, BatchCandidateNeedsOneAuditedAttr) {
  EXPECT_TRUE(Batch("SELECT name FROM P-Personal"));
  EXPECT_TRUE(Batch("SELECT disease FROM P-Health"));
  // pid / salary are not in the audit list.
  EXPECT_FALSE(Batch("SELECT pid FROM P-Personal"));
  EXPECT_FALSE(Batch("SELECT salary FROM P-Employ"));
}

TEST_F(CandidateTest, BatchCandidatePredicateConflictPruned) {
  // Audit is about diabetics; a strictly-cancer query can't overlap.
  EXPECT_FALSE(Batch(
      "SELECT name, disease FROM P-Personal, P-Health "
      "WHERE P-Personal.pid = P-Health.pid AND disease = 'cancer'"));
  EXPECT_TRUE(Batch(
      "SELECT name, disease FROM P-Personal, P-Health "
      "WHERE P-Personal.pid = P-Health.pid AND disease = 'diabetic'"));
}

TEST_F(CandidateTest, SatisfiabilityCheckCanBeDisabled) {
  CandidateOptions no_sat;
  no_sat.use_satisfiability = false;
  EXPECT_TRUE(Batch(
      "SELECT name, disease FROM P-Personal, P-Health "
      "WHERE P-Personal.pid = P-Health.pid AND disease = 'cancer'",
      no_sat));
}

TEST_F(CandidateTest, SingleCandidateNeedsFullScheme) {
  // Scheme is {name, disease}: both required for single-query suspicion.
  EXPECT_FALSE(Single("SELECT name FROM P-Personal"));
  EXPECT_FALSE(Single("SELECT disease FROM P-Health"));
  EXPECT_TRUE(Single(
      "SELECT name, disease FROM P-Personal, P-Health "
      "WHERE P-Personal.pid = P-Health.pid"));
  // Predicate columns count toward C_Q (the paper's example: a query
  // selecting zipcode *where* disease='cancer' accesses disease).
  EXPECT_TRUE(Single(
      "SELECT name FROM P-Personal, P-Health "
      "WHERE P-Personal.pid = P-Health.pid AND disease = 'diabetic'"));
}

TEST_F(CandidateTest, OutputsOnlyModeWhenIndispensableFalse) {
  AuditExpression value_expr = expr_.Clone();
  value_expr.indispensable = false;
  // Predicate-only access does not count in value-containment mode.
  auto r = IsBatchCandidate(
      Q("SELECT pid FROM P-Health WHERE disease = 'diabetic'"), value_expr,
      db_.catalog());
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(*r);
  r = IsBatchCandidate(Q("SELECT disease FROM P-Health"), value_expr,
                       db_.catalog());
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(*r);
}

TEST_F(CandidateTest, UnknownColumnsError) {
  auto r = IsBatchCandidate(Q("SELECT bogus FROM P-Personal"), expr_,
                            db_.catalog());
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace audit
}  // namespace auditdb
