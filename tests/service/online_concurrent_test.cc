/// Concurrency contract of the indexed online monitor: Observe(query,
/// pool) fans per-expression coverage updates across worker threads that
/// share one DecisionCache, and the screenings must match the serial,
/// index-off monitor byte for byte. Runs under ThreadSanitizer in CI
/// (tools/run_ci.sh stage 3).

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "src/audit/audit_parser.h"
#include "src/audit/online.h"
#include "src/service/thread_pool.h"
#include "src/workload/generator.h"
#include "src/workload/hospital.h"

namespace auditdb {
namespace service {
namespace {

Timestamp Ts(int64_t s) { return Timestamp(s * 1000000); }

const char* const kStandingExpressions[] = {
    "DURING 1/1/1970 to 2/1/1970 "
    "AUDIT (name,disease) FROM P-Personal, P-Health "
    "WHERE P-Personal.pid = P-Health.pid AND disease='diabetic'",
    "DURING 1/1/1970 to 2/1/1970 "
    "AUDIT (salary) FROM P-Employ WHERE salary > 15000",
    "DURING 1/1/1970 to 2/1/1970 "
    "THRESHOLD 5 AUDIT (zipcode),[disease] FROM P-Personal, P-Health "
    "WHERE P-Personal.pid = P-Health.pid",
    "DURING 1/1/1970 to 2/1/1970 "
    "AUDIT (address) FROM P-Personal",
};

class OnlineConcurrentTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    world_ = new World();
    workload::HospitalConfig hospital;
    hospital.num_patients = 80;
    hospital.seed = 11;
    ASSERT_TRUE(
        workload::PopulateHospital(&world_->db, hospital, Ts(1)).ok());
    workload::WorkloadConfig config;
    config.num_queries = 200;
    config.start = Ts(100);
    config.seed = 11;
    ASSERT_TRUE(
        workload::GenerateWorkload(&world_->log, config, hospital).ok());
  }
  static void TearDownTestSuite() {
    delete world_;
    world_ = nullptr;
  }

  struct World {
    Database db;
    QueryLog log;
  };
  static World* world_;

  static void AddAll(audit::OnlineAuditor* monitor) {
    for (const char* text : kStandingExpressions) {
      auto expr = audit::ParseAudit(text, Ts(1000000));
      ASSERT_TRUE(expr.ok()) << expr.status().ToString();
      ASSERT_TRUE(monitor->AddExpression(*expr).ok());
    }
  }

  static ThreadPoolOptions PoolOptions(size_t threads) {
    ThreadPoolOptions options;
    options.num_threads = threads;
    return options;
  }
};

OnlineConcurrentTest::World* OnlineConcurrentTest::world_ = nullptr;

TEST_F(OnlineConcurrentTest, IndexedParallelObserveMatchesIndexOffSerial) {
  audit::OnlineAuditorOptions plain_options;
  plain_options.index_enabled = false;
  plain_options.cache_enabled = false;
  audit::OnlineAuditor serial(&world_->db, plain_options);
  audit::OnlineAuditor indexed(&world_->db);  // index + cache on
  AddAll(&serial);
  AddAll(&indexed);

  ThreadPool pool(PoolOptions(4));
  const QueryLog& entries = world_->log;
  for (size_t i = 0; i < std::min<size_t>(entries.size(), 120); ++i) {
    auto expected = serial.Observe(entries.Entry(i));
    auto actual = indexed.Observe(entries.Entry(i), &pool);
    ASSERT_EQ(expected.ok(), actual.ok()) << "query " << i;
    if (!expected.ok()) continue;
    ASSERT_EQ(expected->size(), actual->size());
    for (size_t e = 0; e < expected->size(); ++e) {
      EXPECT_EQ((*expected)[e].fired, (*actual)[e].fired)
          << "query " << i << " expression " << e;
      EXPECT_EQ((*expected)[e].rank, (*actual)[e].rank)
          << "query " << i << " expression " << e;
      EXPECT_EQ((*expected)[e].best_scheme, (*actual)[e].best_scheme);
    }
  }
  // The index actually pruned work along the way.
  EXPECT_GT(indexed.stats().index_skipped.load(), 0u);
}

TEST_F(OnlineConcurrentTest, SharedCacheSurvivesConcurrentObserves) {
  // All worker threads funnel their candidacy checks through one
  // DecisionCache while the repeated workload produces constant hits —
  // the data-race target of the TSan gate.
  auto cache = std::make_shared<audit::DecisionCache>();
  audit::OnlineAuditorOptions options;
  options.cache = cache;
  audit::OnlineAuditor monitor(&world_->db, options);
  AddAll(&monitor);

  ThreadPool pool(PoolOptions(8));
  const QueryLog& entries = world_->log;
  for (int round = 0; round < 2; ++round) {
    for (size_t i = 0; i < std::min<size_t>(entries.size(), 60); ++i) {
      auto s = monitor.Observe(entries.Entry(i), &pool);
      ASSERT_TRUE(s.ok()) << s.status().ToString();
    }
  }
  EXPECT_GT(cache->stats()->cache_hits.load(), 0u);
}

}  // namespace
}  // namespace service
}  // namespace auditdb
