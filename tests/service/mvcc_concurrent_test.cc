/// Concurrency contract of the MVCC read path: audits pin a snapshot
/// (table versions + log/backlog prefixes) and must produce verdicts
/// byte-identical (AuditReport::CanonicalString) to a quiesced serial
/// run of the same state — while writer threads commit mutations
/// underneath them. Runs under ThreadSanitizer in CI
/// (tools/run_ci.sh stage 3), where it doubles as the race detector for
/// the snapshot/COW/epoch machinery.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/audit/audit_parser.h"
#include "src/audit/auditor.h"
#include "src/service/audit_service.h"
#include "src/workload/generator.h"
#include "src/workload/hospital.h"

namespace auditdb {
namespace service {
namespace {

Timestamp Ts(int64_t s) { return Timestamp(s * 1000000); }

const char* const kAudit =
    "DURING 1/1/1970 to 2/1/1970 "
    "AUDIT (name,disease) FROM P-Personal, P-Health "
    "WHERE P-Personal.pid = P-Health.pid AND disease='diabetic'";

const char* const kThresholdAudit =
    "DURING 1/1/1970 to 2/1/1970 "
    "THRESHOLD 5 AUDIT (zipcode),[disease] FROM P-Personal, P-Health "
    "WHERE P-Personal.pid = P-Health.pid";

class MvccConcurrentTest : public ::testing::Test {
 protected:
  void SetUp() override {
    world_ = std::make_unique<World>();
    world_->backlog.Attach(&world_->db);
    workload::HospitalConfig hospital;
    hospital.num_patients = 60;
    hospital.seed = 23;
    ASSERT_TRUE(
        workload::PopulateHospital(&world_->db, hospital, Ts(1)).ok());
    workload::WorkloadConfig config;
    config.num_queries = 150;
    config.start = Ts(100);
    config.seed = 23;
    ASSERT_TRUE(
        workload::GenerateWorkload(&world_->log, config, hospital).ok());
  }

  struct World {
    Database db;
    Backlog backlog;
    QueryLog log;
  };
  std::unique_ptr<World> world_;

  /// `writers` threads, each committing `per_writer` timestamped
  /// mutations (inserts + updates on the audited tables).
  std::vector<std::thread> StartWriters(size_t writers, int per_writer) {
    std::vector<std::thread> out;
    for (size_t w = 0; w < writers; ++w) {
      out.emplace_back([this, w, per_writer] {
        for (int i = 0; i < per_writer; ++i) {
          int64_t seq = static_cast<int64_t>(w) * per_writer + i;
          auto tid = world_->db.Insert(
              "P-Personal",
              {Value::String("w" + std::to_string(seq)),
               Value::String("Writer"), Value::Int(40),
               Value::String("F"), Value::String("99999"),
               Value::String("W1")},
              Ts(2000 + seq));
          ASSERT_TRUE(tid.ok()) << tid.status().ToString();
          ASSERT_TRUE(world_->db
                          .UpdateColumn("P-Personal", *tid, "zipcode",
                                        Value::String("11111"),
                                        Ts(3000 + seq))
                          .ok());
        }
      });
    }
    return out;
  }
};

TEST_F(MvccConcurrentTest, PinnedAuditsAreByteIdenticalUnderWrites) {
  // Quiesced baseline: serial audit of the pre-write state.
  audit::Auditor auditor(&world_->db, &world_->backlog, &world_->log);
  auto expr = audit::ParseAudit(kAudit, Ts(1000000));
  ASSERT_TRUE(expr.ok()) << expr.status().ToString();
  auto baseline = auditor.Audit(*expr);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  const std::string expected = baseline->CanonicalString();

  // Pin that state, then let writers race the pinned re-audits.
  audit::AuditPin pin = auditor.Pin();
  std::vector<std::thread> writers = StartWriters(2, 150);
  std::vector<std::string> got(4);
  std::vector<std::thread> auditors;
  for (size_t a = 0; a < got.size(); ++a) {
    auditors.emplace_back([&, a] {
      auto report = auditor.AuditPinned(*expr, {}, pin);
      ASSERT_TRUE(report.ok()) << report.status().ToString();
      got[a] = report->CanonicalString();
    });
  }
  for (auto& t : auditors) t.join();
  for (auto& t : writers) t.join();

  for (size_t a = 0; a < got.size(); ++a) {
    EXPECT_EQ(got[a], expected) << "pinned auditor " << a;
  }
  // The writes really landed (the pin, not a quiet database, is what
  // kept the reports identical).
  auto table = world_->db.GetTable("P-Personal");
  ASSERT_TRUE(table.ok());
  EXPECT_GT((*table)->stats().cow_rows.load(), 0u);
}

TEST_F(MvccConcurrentTest, ServicePinnedRunMatchesSerialUnderWrites) {
  AuditServiceOptions options;
  options.pool.num_threads = 4;
  AuditService service(&world_->db, &world_->backlog, &world_->log,
                       options);

  audit::Auditor auditor(&world_->db, &world_->backlog, &world_->log);
  auto expr = audit::ParseAudit(kThresholdAudit, Ts(1000000));
  ASSERT_TRUE(expr.ok()) << expr.status().ToString();
  auto baseline = auditor.Audit(*expr);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  audit::AuditPin pin = service.Pin();
  std::vector<std::thread> writers = StartWriters(3, 100);
  for (int round = 0; round < 3; ++round) {
    auto report =
        service.AuditPinned(kThresholdAudit, Ts(1000000), pin);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(report->CanonicalString(), baseline->CanonicalString())
        << "round " << round;
  }
  for (auto& t : writers) t.join();

  // After quiescing, a fresh (unpinned) run sees the post-write state
  // and still matches a fresh serial run byte for byte.
  auto fresh_parallel = service.Audit(kThresholdAudit, Ts(1000000));
  auto fresh_serial = auditor.Audit(*expr);
  ASSERT_TRUE(fresh_parallel.ok()) << fresh_parallel.status().ToString();
  ASSERT_TRUE(fresh_serial.ok()) << fresh_serial.status().ToString();
  EXPECT_EQ(fresh_parallel->CanonicalString(),
            fresh_serial->CanonicalString());
}

TEST_F(MvccConcurrentTest, SnapshotPinsRaceWritersWithoutTearing) {
  // Pure storage-layer race: snapshot readers iterate pinned versions
  // while writers commit. Each pinned view must be a consistent cut
  // (every row readable, sizes stable) for its whole lifetime.
  std::vector<std::thread> writers = StartWriters(2, 200);
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([this] {
      for (int i = 0; i < 50; ++i) {
        DatabaseView view = world_->db.Snapshot();
        auto table = view.GetTable("P-Personal");
        ASSERT_TRUE(table.ok());
        const size_t size = (*table)->size();
        size_t seen = 0;
        for (const Row& row : (*table)->rows()) {
          ASSERT_FALSE(row.values.empty());
          ++seen;
        }
        ASSERT_EQ(seen, size);
        ASSERT_EQ((*table)->size(), size);
        // The built-once columnar batch agrees with the row side.
        ASSERT_EQ((*table)->Columnar()->num_rows, size);
      }
    });
  }
  for (auto& t : readers) t.join();
  for (auto& t : writers) t.join();
}

}  // namespace
}  // namespace service
}  // namespace auditdb
