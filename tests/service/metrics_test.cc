#include "src/service/metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace auditdb {
namespace service {
namespace {

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.Increment();
  counter.Increment(41);
  EXPECT_EQ(counter.value(), 42u);
}

TEST(CounterTest, ConcurrentIncrementsAllLand) {
  Counter counter;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < 10000; ++i) counter.Increment();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), 40000u);
}

TEST(GaugeTest, TracksValueAndAllTimeMax) {
  Gauge gauge;
  gauge.Set(3);
  gauge.Add(4);
  EXPECT_EQ(gauge.value(), 7);
  EXPECT_EQ(gauge.max(), 7);
  gauge.Add(-5);
  EXPECT_EQ(gauge.value(), 2);
  EXPECT_EQ(gauge.max(), 7);  // watermark survives the drop
  gauge.Set(10);
  EXPECT_EQ(gauge.max(), 10);
}

TEST(HistogramTest, EmptyHistogramIsAllZero) {
  Histogram histogram;
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_EQ(histogram.sum_micros(), 0u);
  EXPECT_EQ(histogram.mean_micros(), 0.0);
  EXPECT_EQ(histogram.QuantileUpperBound(0.5), 0u);
}

TEST(HistogramTest, ObservationsLandInPowerOfTwoBuckets) {
  Histogram histogram;
  histogram.Observe(0);
  histogram.Observe(100);
  histogram.Observe(1000);
  EXPECT_EQ(histogram.count(), 3u);
  EXPECT_EQ(histogram.sum_micros(), 1100u);
  EXPECT_NEAR(histogram.mean_micros(), 1100.0 / 3.0, 1e-9);
  // All mass at or below the bucket holding 1000µs → [512, 1024).
  EXPECT_LE(histogram.QuantileUpperBound(1.0), 1024u);
  EXPECT_GE(histogram.QuantileUpperBound(1.0), 1000u);
  // The median observation (100µs) sits in [64, 128).
  EXPECT_LE(histogram.QuantileUpperBound(0.5), 128u);
}

TEST(HistogramTest, QuantilesAreMonotone) {
  Histogram histogram;
  for (uint64_t v = 1; v <= 4096; v *= 2) histogram.Observe(v);
  EXPECT_LE(histogram.QuantileUpperBound(0.5),
            histogram.QuantileUpperBound(0.95));
  EXPECT_LE(histogram.QuantileUpperBound(0.95),
            histogram.QuantileUpperBound(0.99));
}

TEST(MetricsRegistryTest, InstrumentPointersAreStable) {
  MetricsRegistry registry;
  Counter* counter = registry.counter("jobs");
  counter->Increment(7);
  // Creating more instruments must not move the first one.
  for (int i = 0; i < 100; ++i) {
    registry.counter("other." + std::to_string(i));
  }
  EXPECT_EQ(registry.counter("jobs"), counter);
  EXPECT_EQ(registry.counter("jobs")->value(), 7u);
  EXPECT_EQ(registry.gauge("depth"), registry.gauge("depth"));
  EXPECT_EQ(registry.histogram("lat"), registry.histogram("lat"));
}

TEST(MetricsRegistryTest, ToJsonRendersEveryInstrumentKind) {
  MetricsRegistry registry;
  registry.counter("pool.jobs")->Increment(3);
  registry.gauge("pool.depth")->Set(5);
  registry.histogram("pool.wait")->Observe(100);
  std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"pool.jobs\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"pool.depth\":{\"value\":5,\"max\":5}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"pool.wait\":{\"count\":1"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"p95_micros\""), std::string::npos) << json;
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(MetricsRegistryTest, EmptyRegistrySerializesToEmptyObject) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.ToJson(), "{}");
}

}  // namespace
}  // namespace service
}  // namespace auditdb
