/// The scheduler's contract: a parallel audit run is byte-identical
/// (AuditReport::CanonicalString) to the serial Auditor's at any thread
/// count or shard size, and a poisoned run degrades instead of crashing.

#include "src/service/scheduler.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "src/audit/online.h"
#include "src/service/audit_service.h"
#include "src/workload/generator.h"
#include "src/workload/hospital.h"

namespace auditdb {
namespace service {
namespace {

Timestamp Ts(int64_t s) { return Timestamp(s * 1000000); }

constexpr char kAudit[] =
    "DURING 1/1/1970 to 2/1/1970 DATA-INTERVAL 1/1/1970 to 2/1/1970 "
    "AUDIT (name,disease) FROM P-Personal, P-Health "
    "WHERE P-Personal.pid = P-Health.pid AND disease='diabetic'";

constexpr char kThresholdAudit[] =
    "DURING 1/1/1970 to 2/1/1970 DATA-INTERVAL 1/1/1970 to 2/1/1970 "
    "THRESHOLD 5 AUDIT (zipcode),[disease] FROM P-Personal, P-Health "
    "WHERE P-Personal.pid = P-Health.pid";

/// Hospital database + generated query log shared by every test case.
class SchedulerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    world_ = new World();
    world_->backlog.Attach(&world_->db);
    workload::HospitalConfig hospital;
    hospital.num_patients = 120;
    hospital.seed = 7;
    ASSERT_TRUE(
        workload::PopulateHospital(&world_->db, hospital, Ts(1)).ok());
    workload::WorkloadConfig config;
    config.num_queries = 600;
    config.start = Ts(100);
    config.seed = 7;
    ASSERT_TRUE(
        workload::GenerateWorkload(&world_->log, config, hospital).ok());
  }
  static void TearDownTestSuite() {
    delete world_;
    world_ = nullptr;
  }

  struct World {
    Database db;
    Backlog backlog;
    QueryLog log;
  };
  static World* world_;

  static ThreadPoolOptions PoolOptions(size_t threads) {
    ThreadPoolOptions options;
    options.num_threads = threads;
    return options;
  }

  static std::string Serial(const std::string& text,
                            const audit::AuditOptions& options = {}) {
    audit::Auditor auditor(&world_->db, &world_->backlog, &world_->log);
    auto report = auditor.Audit(text, Ts(1000000), options);
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    return report.ok() ? report->CanonicalString() : "";
  }

  static std::string Parallel(const std::string& text, size_t threads,
                              SchedulerOptions scheduler_options = {},
                              const audit::AuditOptions& options = {}) {
    ThreadPool pool(PoolOptions(threads));
    AuditScheduler scheduler(&pool, scheduler_options);
    auto report = scheduler.Run(world_->db, world_->backlog, world_->log,
                                text, Ts(1000000), options);
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    return report.ok() ? report->CanonicalString() : "";
  }
};

SchedulerTest::World* SchedulerTest::world_ = nullptr;

TEST_F(SchedulerTest, ParallelMatchesSerialAt1_2_8Threads) {
  const std::string serial = Serial(kAudit);
  ASSERT_FALSE(serial.empty());
  for (size_t threads : {1u, 2u, 8u}) {
    EXPECT_EQ(Parallel(kAudit, threads), serial)
        << "thread count " << threads;
  }
}

TEST_F(SchedulerTest, ThresholdSemanticsMatchSerial) {
  const std::string serial = Serial(kThresholdAudit);
  for (size_t threads : {2u, 8u}) {
    EXPECT_EQ(Parallel(kThresholdAudit, threads), serial);
  }
}

TEST_F(SchedulerTest, ShardBoundariesNeverAffectOutput) {
  const std::string serial = Serial(kAudit);
  for (size_t shard : {1u, 3u, 17u, 1000u}) {
    SchedulerOptions options;
    options.static_shard_size = shard;
    options.exec_shard_size = (shard + 1) / 2;
    EXPECT_EQ(Parallel(kAudit, 4, options), serial)
        << "shard size " << shard;
  }
}

TEST_F(SchedulerTest, StaticOnlyMatchesSerial) {
  audit::AuditOptions options;
  options.static_only = true;
  const std::string serial = Serial(kAudit, options);
  for (size_t threads : {1u, 2u, 8u}) {
    EXPECT_EQ(Parallel(kAudit, threads, SchedulerOptions{}, options),
              serial);
  }
}

TEST_F(SchedulerTest, MinimizationOrderSurvivesParallelism) {
  audit::AuditOptions options;
  options.minimize_batch = true;
  EXPECT_EQ(Parallel(kAudit, 8, SchedulerOptions{}, options),
            Serial(kAudit, options));
}

TEST_F(SchedulerTest, AuditorParallelEntryPointMatchesSerial) {
  auto expr = audit::ParseAudit(kAudit, Ts(1000000));
  ASSERT_TRUE(expr.ok());
  ThreadPool pool(PoolOptions(4));
  AuditScheduler scheduler(&pool);
  audit::Auditor auditor(&world_->db, &world_->backlog, &world_->log);
  auto parallel = auditor.AuditParallel(*expr, &scheduler);
  auto serial = auditor.Audit(*expr);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  ASSERT_TRUE(serial.ok());
  EXPECT_EQ(parallel->CanonicalString(), serial->CanonicalString());
  EXPECT_EQ(auditor.AuditParallel(*expr, nullptr).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(SchedulerTest, ParseErrorSurfacesBeforeAnyShard) {
  ThreadPool pool(PoolOptions(2));
  AuditScheduler scheduler(&pool);
  auto report = scheduler.Run(world_->db, world_->backlog, world_->log,
                              "AUDIT nonsense ((", Ts(1000000));
  EXPECT_FALSE(report.ok());
}

TEST_F(SchedulerTest, CancelledRunFailsFastWithCancelled) {
  ThreadPool pool(PoolOptions(2));
  SchedulerOptions options;
  options.cancel = std::make_shared<CancellationToken>();
  options.cancel->Cancel();
  AuditScheduler scheduler(&pool, options);
  auto report = scheduler.Run(world_->db, world_->backlog, world_->log,
                              kAudit, Ts(1000000));
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kCancelled);
}

TEST_F(SchedulerTest, CancelledRunDegradesWhenNotFailFast) {
  ThreadPool pool(PoolOptions(2));
  SchedulerOptions options;
  options.cancel = std::make_shared<CancellationToken>();
  options.cancel->Cancel();
  options.fail_fast = false;
  AuditScheduler scheduler(&pool, options);
  std::vector<ShardFailure> failures;
  auto report = scheduler.Run(world_->db, world_->backlog, world_->log,
                              kAudit, Ts(1000000), audit::AuditOptions{},
                              &failures);
  // Every shard is poisoned, but the run still produces a (degraded)
  // report: one placeholder verdict per logged query, nothing admitted.
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->verdicts.size(), world_->log.size());
  EXPECT_EQ(report->num_admitted, 0u);
  ASSERT_FALSE(failures.empty());
  bool saw_static = false, saw_view = false;
  for (const auto& failure : failures) {
    EXPECT_EQ(failure.status.code(), StatusCode::kCancelled);
    if (failure.stage == "static") saw_static = true;
    if (failure.stage == "view") saw_view = true;
  }
  EXPECT_TRUE(saw_static);
  EXPECT_TRUE(saw_view);
}

TEST_F(SchedulerTest, CleanRunLeavesFailureListEmpty) {
  ThreadPool pool(PoolOptions(2));
  SchedulerOptions options;
  options.fail_fast = false;
  AuditScheduler scheduler(&pool, options);
  std::vector<ShardFailure> failures = {ShardFailure{"stale", 0,
                                                     Status::Internal("x")}};
  auto report = scheduler.Run(world_->db, world_->backlog, world_->log,
                              kAudit, Ts(1000000), audit::AuditOptions{},
                              &failures);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(failures.empty());  // Run clears stale entries
}

TEST_F(SchedulerTest, ScreenLibraryMatchesPerExpressionSerialRuns) {
  audit::ExpressionLibrary library(&world_->db.catalog());
  for (const char* text : {kAudit, kThresholdAudit}) {
    auto expr = audit::ParseAudit(text, Ts(1000000));
    ASSERT_TRUE(expr.ok());
    ASSERT_TRUE(library.Add(*expr).ok());
  }
  ThreadPool pool(PoolOptions(4));
  AuditScheduler scheduler(&pool);
  auto screenings = scheduler.ScreenLibrary(world_->db, world_->backlog,
                                            world_->log, library);
  ASSERT_EQ(screenings.size(), 2u);
  EXPECT_LT(screenings[0].expression_id, screenings[1].expression_id);
  const char* texts[] = {kAudit, kThresholdAudit};
  for (size_t i = 0; i < screenings.size(); ++i) {
    ASSERT_TRUE(screenings[i].status.ok())
        << screenings[i].status.ToString();
    EXPECT_EQ(screenings[i].report.CanonicalString(), Serial(texts[i]));
  }
}

TEST_F(SchedulerTest, AuditServiceFrontDoorIsDeterministicAndMetered) {
  AuditServiceOptions options;
  options.pool.num_threads = 4;
  AuditService audit_service(&world_->db, &world_->backlog, &world_->log,
                             options);
  auto report = audit_service.Audit(kAudit, Ts(1000000));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->CanonicalString(), Serial(kAudit));
  EXPECT_EQ(audit_service.num_threads(), 4u);
  std::string json = audit_service.MetricsJson();
  EXPECT_NE(json.find("\"scheduler.runs\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"pool.jobs_submitted\""), std::string::npos);
  EXPECT_NE(json.find("\"scheduler.static_stage_micros\""),
            std::string::npos);
}

TEST_F(SchedulerTest, OnlineMonitorParallelObserveMatchesSerial) {
  auto add_expressions = [](audit::OnlineAuditor* monitor) {
    for (const char* text : {kAudit, kThresholdAudit}) {
      auto expr = audit::ParseAudit(text, Ts(1000000));
      ASSERT_TRUE(expr.ok());
      ASSERT_TRUE(monitor->AddExpression(*expr).ok());
    }
  };
  audit::OnlineAuditor serial(&world_->db);
  audit::OnlineAuditor parallel(&world_->db);
  add_expressions(&serial);
  add_expressions(&parallel);
  ThreadPool pool(PoolOptions(4));
  const QueryLog& entries = world_->log;
  for (size_t i = 0; i < std::min<size_t>(entries.size(), 50); ++i) {
    auto serial_result = serial.Observe(entries.Entry(i));
    auto parallel_result = parallel.Observe(entries.Entry(i), &pool);
    ASSERT_EQ(serial_result.ok(), parallel_result.ok()) << i;
    if (!serial_result.ok()) continue;
    ASSERT_EQ(serial_result->size(), parallel_result->size());
    for (size_t e = 0; e < serial_result->size(); ++e) {
      EXPECT_EQ((*serial_result)[e].expression_id,
                (*parallel_result)[e].expression_id);
      EXPECT_EQ((*serial_result)[e].fired, (*parallel_result)[e].fired);
      EXPECT_EQ((*serial_result)[e].rank, (*parallel_result)[e].rank)
          << "query " << i << " expression " << e;
      EXPECT_EQ((*serial_result)[e].best_scheme,
                (*parallel_result)[e].best_scheme);
    }
  }
}

TEST_F(SchedulerTest, ErrorVerdictsMatchSerialByteForByte) {
  // A query whose static candidacy check fails (unknown table) must get
  // the same distinct error verdict from the sharded scheduler as from
  // the serial auditor — in the full and the static-only pipelines.
  QueryLog log;
  log.Append("SELECT secret FROM NoSuchTable", Ts(150), "alice", "doctor",
             "treatment");
  log.Append(
      "SELECT name, disease FROM P-Personal, P-Health "
      "WHERE P-Personal.pid=P-Health.pid AND disease='diabetic'",
      Ts(151), "alice", "doctor", "treatment");
  audit::Auditor auditor(&world_->db, &world_->backlog, &log);
  ThreadPool pool(PoolOptions(4));
  AuditScheduler scheduler(&pool);
  for (bool static_only : {false, true}) {
    audit::AuditOptions options;
    options.static_only = static_only;
    auto serial = auditor.Audit(kAudit, Ts(1000000), options);
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();
    EXPECT_NE(serial->CanonicalString().find(" error"), std::string::npos);
    auto parallel = scheduler.Run(world_->db, world_->backlog, log, kAudit,
                                  Ts(1000000), options);
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    EXPECT_EQ(parallel->CanonicalString(), serial->CanonicalString())
        << "static_only=" << static_only;
  }
}

TEST_F(SchedulerTest, ServiceDecisionCacheIsSharedAndInert) {
  // Two service audits of the same expression: the second is answered
  // out of the decision cache, and both reports are byte-identical to
  // the cache-less serial auditor's.
  AuditServiceOptions options;
  options.pool.num_threads = 4;
  AuditService audit_service(&world_->db, &world_->backlog, &world_->log,
                             options);
  ASSERT_NE(audit_service.decision_cache(), nullptr);
  auto first = audit_service.Audit(kAudit, Ts(1000000));
  ASSERT_TRUE(first.ok());
  uint64_t misses =
      audit_service.decision_cache()->stats()->cache_misses.load();
  auto second = audit_service.Audit(kAudit, Ts(1000000));
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->CanonicalString(), Serial(kAudit));
  EXPECT_EQ(second->CanonicalString(), Serial(kAudit));
  EXPECT_GT(audit_service.decision_cache()->stats()->cache_hits.load(), 0u);
  EXPECT_EQ(audit_service.decision_cache()->stats()->cache_misses.load(),
            misses);

  AuditServiceOptions uncached;
  uncached.decision_cache_enabled = false;
  AuditService plain(&world_->db, &world_->backlog, &world_->log, uncached);
  EXPECT_EQ(plain.decision_cache(), nullptr);
  auto third = plain.Audit(kAudit, Ts(1000000));
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third->CanonicalString(), Serial(kAudit));
}

TEST_F(SchedulerTest, BackpressuredPoolStillProducesIdenticalOutput) {
  // A rejecting 2-slot queue forces constant load shedding (inline
  // fallback); the report must not change.
  ThreadPool pool([] {
    ThreadPoolOptions options;
    options.num_threads = 4;
    options.queue_capacity = 2;
    options.admission = AdmissionPolicy::kReject;
    return options;
  }());
  AuditScheduler scheduler(&pool);
  auto report = scheduler.Run(world_->db, world_->backlog, world_->log,
                              kAudit, Ts(1000000));
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->CanonicalString(), Serial(kAudit));
}

}  // namespace
}  // namespace service
}  // namespace auditdb
