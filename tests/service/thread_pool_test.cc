#include "src/service/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <latch>
#include <thread>
#include <vector>

#include "src/service/bounded_queue.h"

namespace auditdb {
namespace service {
namespace {

using std::chrono::milliseconds;

ThreadPoolOptions Options(size_t threads, size_t capacity,
                          AdmissionPolicy admission = AdmissionPolicy::kBlock) {
  ThreadPoolOptions options;
  options.num_threads = threads;
  options.queue_capacity = capacity;
  options.admission = admission;
  return options;
}

// --- BoundedQueue ----------------------------------------------------

TEST(BoundedQueueTest, FifoOrder) {
  BoundedQueue<int> queue(4);
  EXPECT_TRUE(queue.Push(1));
  EXPECT_TRUE(queue.Push(2));
  EXPECT_TRUE(queue.Push(3));
  EXPECT_EQ(queue.Pop(), 1);
  EXPECT_EQ(queue.Pop(), 2);
  EXPECT_EQ(queue.Pop(), 3);
}

TEST(BoundedQueueTest, TryPushRefusesWhenFull) {
  BoundedQueue<int> queue(2);
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_TRUE(queue.TryPush(2));
  EXPECT_FALSE(queue.TryPush(3));
  EXPECT_EQ(queue.depth(), 2u);
  EXPECT_EQ(queue.high_watermark(), 2u);
  queue.Pop();
  EXPECT_TRUE(queue.TryPush(3));
  EXPECT_EQ(queue.high_watermark(), 2u);
}

TEST(BoundedQueueTest, CloseDrainsThenSignalsEnd) {
  BoundedQueue<int> queue(4);
  queue.Push(1);
  queue.Push(2);
  queue.Close();
  EXPECT_FALSE(queue.Push(3));  // no admissions after close
  EXPECT_EQ(queue.Pop(), 1);   // but the backlog drains
  EXPECT_EQ(queue.Pop(), 2);
  EXPECT_EQ(queue.Pop(), std::nullopt);
}

TEST(BoundedQueueTest, PopBlocksUntilPush) {
  BoundedQueue<int> queue(1);
  std::thread producer([&queue] {
    std::this_thread::sleep_for(milliseconds(20));
    queue.Push(7);
  });
  EXPECT_EQ(queue.Pop(), 7);  // blocks until the producer delivers
  producer.join();
}

// --- ThreadPool ------------------------------------------------------

TEST(ThreadPoolTest, RunsEverySubmittedJob) {
  ThreadPool pool(Options(4, 64));
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(pool.Submit([&ran] { ran.fetch_add(1); }).ok());
  }
  pool.Shutdown();
  EXPECT_EQ(ran.load(), 100);
  EXPECT_NE(pool.metrics().ToJson().find("\"pool.jobs_submitted\":100"),
            std::string::npos);
}

TEST(ThreadPoolTest, DefaultsToHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, RejectPolicyShedsWhenFull) {
  MetricsRegistry metrics;
  ThreadPool pool(Options(1, 1, AdmissionPolicy::kReject), &metrics);
  std::latch started(1), release(1);
  // Occupy the single worker...
  ASSERT_TRUE(pool.Submit([&] {
                    started.count_down();
                    release.wait();
                  })
                  .ok());
  started.wait();
  // ...fill the one queue slot...
  ASSERT_TRUE(pool.Submit([] {}).ok());
  // ...now admission control must turn the next job away.
  Status rejected = pool.Submit([] {});
  EXPECT_EQ(rejected.code(), StatusCode::kResourceExhausted)
      << rejected.ToString();
  EXPECT_EQ(pool.TrySubmit([] {}).code(), StatusCode::kResourceExhausted);
  release.count_down();
  pool.Shutdown();
  EXPECT_GE(metrics.counter("pool.jobs_rejected")->value(), 2u);
  EXPECT_EQ(metrics.gauge("pool.queue_depth")->max(), 1);
}

TEST(ThreadPoolTest, BlockPolicyStallsProducerInsteadOfLosingJobs) {
  ThreadPool pool(Options(2, 2, AdmissionPolicy::kBlock));
  std::atomic<int> ran{0};
  // Far more jobs than queue slots: producers block on the full queue
  // and every job still runs exactly once.
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(pool.Submit([&ran] { ran.fetch_add(1); }).ok());
  }
  pool.Shutdown();
  EXPECT_EQ(ran.load(), 200);
}

TEST(ThreadPoolTest, SubmitAfterShutdownFails) {
  ThreadPool pool(Options(1, 4));
  pool.Shutdown();
  EXPECT_FALSE(pool.Submit([] {}).ok());
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedJobs) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(Options(1, 64));
    std::latch release(1);
    ASSERT_TRUE(pool.Submit([&release] { release.wait(); }).ok());
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(pool.Submit([&ran] { ran.fetch_add(1); }).ok());
    }
    release.count_down();
    // Destructor runs Shutdown: close, drain, join.
  }
  EXPECT_EQ(ran.load(), 10);
}

TEST(ThreadPoolTest, WaitIdleBlocksUntilEverySubmittedJobFinishes) {
  ThreadPool pool(Options(2, 16));
  std::atomic<int> ran{0};
  std::latch release(1);
  ASSERT_TRUE(pool.Submit([&] {
                    release.wait();
                    ran.fetch_add(1);
                  })
                  .ok());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(pool.Submit([&ran] { ran.fetch_add(1); }).ok());
  }
  std::thread releaser([&release] {
    std::this_thread::sleep_for(milliseconds(20));
    release.count_down();
  });
  pool.WaitIdle();
  // WaitIdle returned: nothing queued, nothing running.
  EXPECT_EQ(ran.load(), 9);
  releaser.join();
  // Idle pools return immediately, repeatedly.
  pool.WaitIdle();
  pool.WaitIdle();
}

TEST(ThreadPoolTest, WaitIdleCountsRejectedJobsAsFinished) {
  ThreadPool pool(Options(1, 1, AdmissionPolicy::kReject));
  std::latch started(1), release(1);
  ASSERT_TRUE(pool.Submit([&] {
                    started.count_down();
                    release.wait();
                  })
                  .ok());
  started.wait();
  ASSERT_TRUE(pool.Submit([] {}).ok());         // fills the queue slot
  EXPECT_FALSE(pool.TrySubmit([] {}).ok());      // bounced — must not
  release.count_down();                          // wedge WaitIdle
  pool.WaitIdle();
}

// --- RunBatch --------------------------------------------------------

TEST(RunBatchTest, StatusesLandInSubmissionSlots) {
  ThreadPool pool(Options(4, 64));
  std::vector<std::function<Status()>> tasks;
  for (int i = 0; i < 20; ++i) {
    tasks.push_back([i]() -> Status {
      if (i % 3 == 0) return Status::Internal("task " + std::to_string(i));
      return Status::Ok();
    });
  }
  auto statuses = RunBatch(&pool, std::move(tasks));
  ASSERT_EQ(statuses.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    if (i % 3 == 0) {
      EXPECT_EQ(statuses[i].code(), StatusCode::kInternal) << i;
      EXPECT_NE(statuses[i].message().find(std::to_string(i)),
                std::string::npos);
    } else {
      EXPECT_TRUE(statuses[i].ok()) << i;
    }
  }
}

TEST(RunBatchTest, EmptyBatchReturnsImmediately) {
  ThreadPool pool(Options(2, 8));
  EXPECT_TRUE(RunBatch(&pool, {}).empty());
}

TEST(RunBatchTest, PreCancelledContextSkipsEveryTask) {
  ThreadPool pool(Options(2, 64));
  JobContext ctx;
  ctx.cancel = std::make_shared<CancellationToken>();
  ctx.cancel->Cancel();
  std::atomic<int> ran{0};
  std::vector<std::function<Status()>> tasks;
  for (int i = 0; i < 10; ++i) {
    tasks.push_back([&ran]() -> Status {
      ran.fetch_add(1);
      return Status::Ok();
    });
  }
  auto statuses = RunBatch(&pool, std::move(tasks), ctx);
  EXPECT_EQ(ran.load(), 0);
  for (const auto& status : statuses) {
    EXPECT_EQ(status.code(), StatusCode::kCancelled);
  }
}

TEST(RunBatchTest, MidBatchCancellationStopsLaterTasks) {
  // One worker → strict FIFO: task 0 cancels the run, tasks 1.. must be
  // skipped with kCancelled.
  ThreadPool pool(Options(1, 64));
  JobContext ctx;
  ctx.cancel = std::make_shared<CancellationToken>();
  std::vector<std::function<Status()>> tasks;
  tasks.push_back([&ctx]() -> Status {
    ctx.cancel->Cancel();
    return Status::Ok();
  });
  for (int i = 0; i < 5; ++i) {
    tasks.push_back([]() -> Status { return Status::Ok(); });
  }
  auto statuses = RunBatch(&pool, std::move(tasks), ctx);
  EXPECT_TRUE(statuses[0].ok());
  for (size_t i = 1; i < statuses.size(); ++i) {
    EXPECT_EQ(statuses[i].code(), StatusCode::kCancelled) << i;
  }
}

TEST(RunBatchTest, ExpiredDeadlineSkipsEveryTask) {
  ThreadPool pool(Options(2, 64));
  JobContext ctx = JobContext::WithDeadlineAfter(milliseconds(1));
  std::this_thread::sleep_for(milliseconds(10));
  std::atomic<int> ran{0};
  std::vector<std::function<Status()>> tasks;
  for (int i = 0; i < 8; ++i) {
    tasks.push_back([&ran]() -> Status {
      ran.fetch_add(1);
      return Status::Ok();
    });
  }
  auto statuses = RunBatch(&pool, std::move(tasks), ctx);
  EXPECT_EQ(ran.load(), 0);
  for (const auto& status : statuses) {
    EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  }
}

TEST(RunBatchTest, RejectingPoolFallsBackToInlineExecution) {
  // Tiny queue + kReject: most submissions bounce, RunBatch must run
  // them inline — every task still executes exactly once, no deadlock.
  ThreadPool pool(Options(2, 2, AdmissionPolicy::kReject));
  std::atomic<int> ran{0};
  std::vector<std::function<Status()>> tasks;
  for (int i = 0; i < 300; ++i) {
    tasks.push_back([&ran]() -> Status {
      ran.fetch_add(1);
      return Status::Ok();
    });
  }
  auto statuses = RunBatch(&pool, std::move(tasks));
  EXPECT_EQ(ran.load(), 300);
  for (const auto& status : statuses) EXPECT_TRUE(status.ok());
}

TEST(RunBatchTest, OversubscribedStressDoesNotDeadlock) {
  // The satellite stress case: far more batches than queue slots, both
  // admission policies, workers oversubscribed relative to the host.
  for (AdmissionPolicy admission :
       {AdmissionPolicy::kBlock, AdmissionPolicy::kReject}) {
    ThreadPool pool(Options(4, 2, admission));
    std::atomic<int> ran{0};
    for (int round = 0; round < 5; ++round) {
      std::vector<std::function<Status()>> tasks;
      for (int i = 0; i < 100; ++i) {
        tasks.push_back([&ran]() -> Status {
          ran.fetch_add(1);
          return Status::Ok();
        });
      }
      auto statuses = RunBatch(&pool, std::move(tasks));
      for (const auto& status : statuses) EXPECT_TRUE(status.ok());
    }
    EXPECT_EQ(ran.load(), 500);
  }
}

TEST(ThreadPoolTest, MetricsCoverWaitAndRunLatency) {
  MetricsRegistry metrics;
  ThreadPool pool(Options(2, 16), &metrics);
  std::vector<std::function<Status()>> tasks;
  for (int i = 0; i < 16; ++i) {
    tasks.push_back([]() -> Status {
      std::this_thread::sleep_for(milliseconds(1));
      return Status::Ok();
    });
  }
  RunBatch(&pool, std::move(tasks));
  pool.Shutdown();
  EXPECT_EQ(metrics.counter("pool.jobs_completed")->value(),
            metrics.counter("pool.jobs_submitted")->value());
  EXPECT_GT(metrics.histogram("pool.job_run_micros")->count(), 0u);
  EXPECT_GT(metrics.histogram("pool.job_wait_micros")->count(), 0u);
  EXPECT_GE(metrics.gauge("pool.queue_depth")->max(), 1);
  EXPECT_EQ(metrics.gauge("pool.queue_depth")->value(), 0);
}

}  // namespace
}  // namespace service
}  // namespace auditdb
