/// Integration tests: the full stack (storage → backlog → query log →
/// parser → executor → unified audit) on generated workloads.

#include <gtest/gtest.h>

#include <algorithm>

#include "src/audit/auditor.h"
#include "src/workload/generator.h"
#include "src/workload/hospital.h"

namespace auditdb {
namespace {

using audit::AuditOptions;
using audit::Auditor;

Timestamp Ts(int64_t s) { return Timestamp(s * 1000000); }

TEST(WorkloadTest, HospitalPopulationIsDeterministic) {
  workload::HospitalConfig config;
  config.num_patients = 25;
  Database a, b;
  ASSERT_TRUE(workload::PopulateHospital(&a, config, Ts(1)).ok());
  ASSERT_TRUE(workload::PopulateHospital(&b, config, Ts(1)).ok());
  auto ta = a.GetTable("P-Health");
  auto tb = b.GetTable("P-Health");
  ASSERT_TRUE(ta.ok() && tb.ok());
  ASSERT_EQ((*ta)->size(), 25u);
  for (size_t i = 0; i < 25; ++i) {
    EXPECT_EQ((*ta)->rows()[i], (*tb)->rows()[i]);
  }
}

TEST(WorkloadTest, GeneratedQueriesAllParse) {
  workload::HospitalConfig hospital;
  workload::WorkloadConfig config;
  config.num_queries = 200;
  config.start = Ts(100);
  QueryLog log;
  ASSERT_TRUE(workload::GenerateWorkload(&log, config, hospital).ok());
  ASSERT_EQ(log.size(), 200u);
  for (size_t ei = 0; ei < log.size(); ++ei) {
    const auto& entry = log.Entry(ei);
    auto stmt = sql::ParseSelect(entry.sql);
    EXPECT_TRUE(stmt.ok()) << entry.sql << " -> "
                           << stmt.status().ToString();
  }
}

TEST(WorkloadTest, GeneratedQueriesAllExecute) {
  Database db;
  workload::HospitalConfig hospital;
  hospital.num_patients = 30;
  ASSERT_TRUE(workload::PopulateHospital(&db, hospital, Ts(1)).ok());
  workload::WorkloadConfig config;
  config.num_queries = 100;
  config.start = Ts(100);
  QueryLog log;
  ASSERT_TRUE(workload::GenerateWorkload(&log, config, hospital).ok());
  auto view = db.View();
  for (size_t ei = 0; ei < log.size(); ++ei) {
    const auto& entry = log.Entry(ei);
    auto result = ExecuteSql(entry.sql, view);
    EXPECT_TRUE(result.ok()) << entry.sql << " -> "
                             << result.status().ToString();
  }
}

TEST(WorkloadTest, AnnotationsDrawnFromPools) {
  workload::HospitalConfig hospital;
  workload::WorkloadConfig config;
  config.num_queries = 50;
  config.start = Ts(100);
  QueryLog log;
  ASSERT_TRUE(workload::GenerateWorkload(&log, config, hospital).ok());
  for (size_t ei = 0; ei < log.size(); ++ei) {
    const auto& entry = log.Entry(ei);
    EXPECT_NE(std::find(config.users.begin(), config.users.end(),
                        entry.user),
              config.users.end());
    EXPECT_NE(std::find(config.roles.begin(), config.roles.end(),
                        entry.role),
              config.roles.end());
  }
}

TEST(WorkloadTest, ChurnGeneratesCapturedVersions) {
  Database db;
  Backlog backlog;
  backlog.Attach(&db);
  workload::HospitalConfig hospital;
  hospital.num_patients = 20;
  ASSERT_TRUE(workload::PopulateHospital(&db, hospital, Ts(1)).ok());
  size_t base_events = backlog.event_count();

  workload::ChurnConfig churn;
  churn.num_updates = 50;
  churn.start = Ts(100);
  ASSERT_TRUE(workload::GenerateChurn(&db, churn, hospital).ok());
  EXPECT_EQ(backlog.event_count(), base_events + 50);

  // All churn events are updates within the configured window.
  for (size_t i = base_events; i < backlog.event_count(); ++i) {
    const auto& event = backlog.EventAt(i);
    EXPECT_EQ(event.op, ChangeEvent::Op::kUpdate);
    EXPECT_GE(event.timestamp, Ts(100));
  }
  // Determinism.
  Database db2;
  ASSERT_TRUE(workload::PopulateHospital(&db2, hospital, Ts(1)).ok());
  ASSERT_TRUE(workload::GenerateChurn(&db2, churn, hospital).ok());
  auto t1 = db.GetTable("P-Health");
  auto t2 = db2.GetTable("P-Health");
  ASSERT_TRUE(t1.ok() && t2.ok());
  for (size_t i = 0; i < (*t1)->size(); ++i) {
    EXPECT_EQ((*t1)->rows()[i], (*t2)->rows()[i]);
  }
}

class EndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override {
    backlog_.Attach(&db_);
    hospital_.num_patients = 50;
    ASSERT_TRUE(workload::PopulateHospital(&db_, hospital_, Ts(1)).ok());
    workload::WorkloadConfig config;
    config.num_queries = 120;
    config.start = Ts(100);
    config.sensitive_fraction = 0.5;
    ASSERT_TRUE(workload::GenerateWorkload(&log_, config, hospital_).ok());
  }

  workload::HospitalConfig hospital_;
  Database db_;
  Backlog backlog_;
  QueryLog log_;
};

TEST_F(EndToEndTest, AuditPipelineRunsOnGeneratedWorkload) {
  Auditor auditor(&db_, &backlog_, &log_);
  auto report = auditor.Audit(
      "DURING 1/1/1970 to 2/1/1970 DATA-INTERVAL 1/1/1970 to 2/1/1970 "
      "AUDIT (name,disease) FROM P-Personal, P-Health "
      "WHERE P-Personal.pid = P-Health.pid AND disease='diabetic'",
      Ts(100000));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->num_logged, 120u);
  EXPECT_LE(report->num_candidates, report->num_admitted);
  EXPECT_EQ(report->num_executed, report->num_candidates);
  // Suspicious queries must all be candidates.
  for (int64_t id : report->SuspiciousQueryIds()) {
    EXPECT_TRUE(report->verdicts[static_cast<size_t>(id - 1)].candidate);
  }
}

TEST_F(EndToEndTest, StaticPruningNeverDropsSuspiciousQueries) {
  // With satisfiability pruning off, the exact same suspicious set comes
  // out — pruning is a pure optimization (soundness of the static phase).
  Auditor auditor(&db_, &backlog_, &log_);
  const std::string expr =
      "DURING 1/1/1970 to 2/1/1970 DATA-INTERVAL 1/1/1970 to 2/1/1970 "
      "AUDIT (name,disease) FROM P-Personal, P-Health "
      "WHERE P-Personal.pid = P-Health.pid AND disease='diabetic'";
  AuditOptions with_pruning;
  AuditOptions without_pruning;
  without_pruning.candidate.use_satisfiability = false;
  auto pruned = auditor.Audit(expr, Ts(100000), with_pruning);
  auto unpruned = auditor.Audit(expr, Ts(100000), without_pruning);
  ASSERT_TRUE(pruned.ok());
  ASSERT_TRUE(unpruned.ok());
  EXPECT_EQ(pruned->SuspiciousQueryIds(), unpruned->SuspiciousQueryIds());
  EXPECT_EQ(pruned->batch_suspicious, unpruned->batch_suspicious);
  EXPECT_LE(pruned->num_candidates, unpruned->num_candidates);
}

TEST_F(EndToEndTest, HashJoinDoesNotChangeVerdicts) {
  Auditor auditor(&db_, &backlog_, &log_);
  const std::string expr =
      "DURING 1/1/1970 to 2/1/1970 DATA-INTERVAL 1/1/1970 to 2/1/1970 "
      "AUDIT (name,disease) FROM P-Personal, P-Health "
      "WHERE P-Personal.pid = P-Health.pid AND disease='diabetic'";
  AuditOptions hash;
  AuditOptions loop;
  loop.exec.hash_join = false;
  auto a = auditor.Audit(expr, Ts(100000), hash);
  auto b = auditor.Audit(expr, Ts(100000), loop);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->SuspiciousQueryIds(), b->SuspiciousQueryIds());
}

TEST(StressTest, LargeWorkloadWithChurnHoldsInvariants) {
  Database db;
  Backlog backlog;
  backlog.Attach(&db);
  workload::HospitalConfig hospital;
  hospital.num_patients = 400;
  ASSERT_TRUE(workload::PopulateHospital(&db, hospital, Ts(1)).ok());

  // Interleave: first half of the queries, churn, second half.
  QueryLog log;
  workload::WorkloadConfig config;
  config.num_queries = 400;
  config.start = Ts(100);
  ASSERT_TRUE(workload::GenerateWorkload(&log, config, hospital).ok());
  workload::ChurnConfig churn;
  churn.num_updates = 150;
  churn.start = Ts(100 + 200);  // mid-log
  churn.spacing_micros = 1;     // dense burst
  ASSERT_TRUE(workload::GenerateChurn(&db, churn, hospital).ok());

  Auditor auditor(&db, &backlog, &log);
  const std::string expr =
      "DURING 1/1/1970 to 2/1/1970 DATA-INTERVAL 1/1/1970 to 2/1/1970 "
      "AUDIT (name,disease) FROM P-Personal, P-Health "
      "WHERE P-Personal.pid = P-Health.pid AND disease='diabetic'";
  auto report = auditor.Audit(expr, Ts(1000000));
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  // Funnel invariants.
  EXPECT_EQ(report->num_logged, 400u);
  EXPECT_LE(report->num_candidates, report->num_admitted);
  EXPECT_LE(report->num_executed, report->num_candidates);
  // Suspicious ⊆ candidates; every suspicious query was admitted.
  for (int64_t id : report->SuspiciousQueryIds()) {
    const auto& verdict = report->verdicts[static_cast<size_t>(id - 1)];
    EXPECT_TRUE(verdict.admitted);
    EXPECT_TRUE(verdict.candidate);
  }
  // Determinism: the same audit twice gives the same report.
  auto report2 = auditor.Audit(expr, Ts(1000000));
  ASSERT_TRUE(report2.ok());
  EXPECT_EQ(report->SuspiciousQueryIds(), report2->SuspiciousQueryIds());
  EXPECT_EQ(report->batch_suspicious, report2->batch_suspicious);
  EXPECT_EQ(report->target_view_size, report2->target_view_size);
  // Churn widened the target view beyond the current diabetic count.
  EXPECT_GT(report->target_view_size, 0u);
}

TEST_F(EndToEndTest, StaticOnlyIsSoundWrtDynamic) {
  // Data-independent auditing must never clear a query the data-dependent
  // phase would flag (it may flag more).
  Auditor auditor(&db_, &backlog_, &log_);
  const std::string expr =
      "DURING 1/1/1970 to 2/1/1970 DATA-INTERVAL 1/1/1970 to 2/1/1970 "
      "AUDIT (name,disease) FROM P-Personal, P-Health "
      "WHERE P-Personal.pid = P-Health.pid AND disease='diabetic'";
  AuditOptions dynamic_opts;
  AuditOptions static_opts;
  static_opts.static_only = true;
  auto dynamic_report = auditor.Audit(expr, Ts(100000), dynamic_opts);
  auto static_report = auditor.Audit(expr, Ts(100000), static_opts);
  ASSERT_TRUE(dynamic_report.ok());
  ASSERT_TRUE(static_report.ok());
  std::set<int64_t> static_ids;
  for (int64_t id : static_report->SuspiciousQueryIds()) {
    static_ids.insert(id);
  }
  for (int64_t id : dynamic_report->SuspiciousQueryIds()) {
    EXPECT_TRUE(static_ids.count(id)) << "static audit missed query " << id;
  }
  if (dynamic_report->batch_suspicious) {
    EXPECT_TRUE(static_report->batch_suspicious);
  }
}

TEST_F(EndToEndTest, UpdatesBetweenQueriesAreHonored) {
  // Update every diabetic to 'recovered' halfway through a fresh log;
  // queries before the update can be suspicious, queries after cannot
  // share tuples with the audited (pre-update) population on their own
  // snapshots for disease='diabetic' predicates.
  QueryLog log;
  log.Append(
      "SELECT name, disease FROM P-Personal, P-Health "
      "WHERE P-Personal.pid=P-Health.pid AND disease='diabetic'",
      Ts(200), "alice", "doctor", "treatment");
  // Flip all diabetics at t=300.
  auto health = db_.GetTable("P-Health");
  ASSERT_TRUE(health.ok());
  std::vector<Tid> diabetic_tids;
  for (const auto& row : (*health)->rows()) {
    if (row.values[3] == Value::String("diabetic")) {
      diabetic_tids.push_back(row.tid);
    }
  }
  ASSERT_FALSE(diabetic_tids.empty());
  for (Tid tid : diabetic_tids) {
    ASSERT_TRUE(db_.UpdateColumn("P-Health", tid, "disease",
                                 Value::String("recovered"), Ts(300))
                    .ok());
  }
  log.Append(
      "SELECT name, disease FROM P-Personal, P-Health "
      "WHERE P-Personal.pid=P-Health.pid AND disease='diabetic'",
      Ts(400), "bob", "doctor", "treatment");

  Auditor auditor(&db_, &backlog_, &log);
  auto report = auditor.Audit(
      "DURING 1/1/1970 to 2/1/1970 "
      "DATA-INTERVAL 1/1/1970:00-03-20 to 1/1/1970:00-03-20 "
      "AUDIT (name,disease) FROM P-Personal, P-Health "
      "WHERE P-Personal.pid = P-Health.pid AND disease='diabetic'",
      Ts(100000));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // U is pinned at t=200 (before the flip): only the first query saw it.
  EXPECT_EQ(report->SuspiciousQueryIds(), (std::vector<int64_t>{1}));
}

}  // namespace
}  // namespace auditdb
