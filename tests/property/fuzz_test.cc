/// Robustness sweeps: the lexer and both parsers must return clean
/// Status errors (never crash, hang, or accept trailing garbage) on
/// arbitrary byte strings, mutated valid inputs, and token soups.

#include <gtest/gtest.h>

#include "src/audit/audit_parser.h"
#include "src/common/random.h"
#include "src/sql/parser.h"

namespace auditdb {
namespace {

std::string RandomBytes(Random& rng, size_t max_len) {
  size_t len = rng.Uniform(max_len + 1);
  std::string out;
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    // Printable-heavy mix with occasional control bytes.
    if (rng.OneIn(0.9)) {
      out += static_cast<char>(32 + rng.Uniform(95));
    } else {
      out += static_cast<char>(rng.Uniform(256));
    }
  }
  return out;
}

std::string MutateValid(Random& rng, std::string text) {
  size_t edits = 1 + rng.Uniform(4);
  for (size_t i = 0; i < edits && !text.empty(); ++i) {
    size_t pos = rng.Uniform(text.size());
    switch (rng.Uniform(3)) {
      case 0:
        text[pos] = static_cast<char>(32 + rng.Uniform(95));
        break;
      case 1:
        text.erase(pos, 1);
        break;
      default:
        text.insert(pos, 1, static_cast<char>(32 + rng.Uniform(95)));
        break;
    }
  }
  return text;
}

std::string TokenSoup(Random& rng) {
  static const char* kTokens[] = {
      "SELECT", "FROM",  "WHERE",    "AUDIT", "DURING",   "THRESHOLD",
      "AND",    "OR",    "NOT",      "(",     ")",        "[",
      "]",      ",",     "*",        "=",     "<",        ">=",
      "'x'",    "42",    "3.5",      "now",   "to",       "T",
      "a",      "b.c",   "1/2/2004", "-",     "BETWEEN",  "IN",
      "LIKE",   "ALL",   "true",     "false", ";",        "P-Personal",
      "INDISPENSABLE",   "DATA-INTERVAL",     "Neg-Role-Purpose"};
  std::string out;
  size_t n = rng.Uniform(20);
  for (size_t i = 0; i < n; ++i) {
    out += kTokens[rng.Uniform(std::size(kTokens))];
    out += " ";
  }
  return out;
}

class ParserFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserFuzz, RandomBytesNeverCrash) {
  Random rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    std::string input = RandomBytes(rng, 120);
    // Any Status outcome is fine; reaching the next line is the test.
    sql::Lex(input);
    sql::ParseSelect(input);
    sql::ParseExpression(input);
    audit::ParseAudit(input, Timestamp(0));
  }
  SUCCEED();
}

TEST_P(ParserFuzz, MutatedValidInputsNeverCrash) {
  Random rng(GetParam());
  const std::string valid_sql =
      "SELECT name, disease FROM P-Personal, P-Health "
      "WHERE P-Personal.pid = P-Health.pid AND zipcode = '145568'";
  const std::string valid_audit =
      "Neg-Role-Purpose (doctor,treatment) DURING 1/5/2004 to now() "
      "THRESHOLD 2 INDISPENSABLE true AUDIT (name,disease),[address] "
      "FROM P-Personal, P-Health WHERE P-Personal.pid = P-Health.pid";
  for (int i = 0; i < 200; ++i) {
    sql::ParseSelect(MutateValid(rng, valid_sql));
    audit::ParseAudit(MutateValid(rng, valid_audit), Timestamp(0));
  }
  SUCCEED();
}

TEST_P(ParserFuzz, TokenSoupNeverCrashes) {
  Random rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    std::string input = TokenSoup(rng);
    sql::ParseSelect(input);
    audit::ParseAudit(input, Timestamp(0));
  }
  SUCCEED();
}

TEST_P(ParserFuzz, AcceptedInputsRoundTrip) {
  // Anything the parsers accept must render and re-parse to the same
  // canonical form — even inputs found by mutation.
  Random rng(GetParam());
  const std::string valid_sql =
      "SELECT name FROM T WHERE a < 3 AND b = 'x' OR c >= 2";
  for (int i = 0; i < 200; ++i) {
    std::string input = MutateValid(rng, valid_sql);
    auto stmt = sql::ParseSelect(input);
    if (!stmt.ok()) continue;
    auto reparsed = sql::ParseSelect(stmt->ToString());
    ASSERT_TRUE(reparsed.ok()) << input << " -> " << stmt->ToString();
    EXPECT_EQ(stmt->ToString(), reparsed->ToString());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz,
                         ::testing::Range<uint64_t>(1, 11));

}  // namespace
}  // namespace auditdb
