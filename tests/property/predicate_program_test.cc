/// Differential property test of the scan layer: random bound predicates
/// evaluated over random columnar batches must agree with the
/// tree-walking interpreter row by row — identical pass/fail verdicts AND
/// identical error statuses. This is the semantics-oracle check the
/// columnar refactor's byte-identical-results guarantee rests on.

#include <gtest/gtest.h>

#include <algorithm>

#include "src/common/random.h"
#include "src/engine/table_scan.h"
#include "src/expr/evaluator.h"
#include "src/expr/predicate_program.h"

namespace auditdb {
namespace {

constexpr size_t kNumColumns = 4;

/// A random cell: ints, doubles, strings, bools, and NULLs, weighted so
/// columns are usually — but not always — uniformly typed (mixed columns
/// exercise the generic layout).
Value RandomCell(Random& rng, int column_bias) {
  if (rng.UniformDouble() < 0.15) return Value::Null();
  int kind = rng.UniformDouble() < 0.8 ? column_bias
                                       : static_cast<int>(rng.Uniform(4));
  switch (kind) {
    case 0:
      return Value::Int(rng.UniformInt(-5, 5));
    case 1:
      return Value::Double(static_cast<double>(rng.UniformInt(-50, 50)) / 10);
    case 2: {
      static const char* kStrings[] = {"apple", "banana", "ap%", "", "42",
                                       "plum"};
      return Value::String(kStrings[rng.Uniform(6)]);
    }
    default:
      return Value::Bool(rng.Uniform(2) == 0);
  }
}

Batch RandomBatch(Random& rng, size_t rows) {
  Batch batch;
  batch.num_rows = rows;
  for (size_t c = 0; c < kNumColumns; ++c) {
    const int bias = static_cast<int>(rng.Uniform(4));
    std::vector<Value> cells;
    cells.reserve(rows);
    for (size_t r = 0; r < rows; ++r) cells.push_back(RandomCell(rng, bias));
    batch.columns.push_back(ColumnVector::FromValues(cells));
  }
  return batch;
}

/// Random bound expression tree over the batch's columns: literals,
/// columns, comparisons, LIKE, arithmetic, AND/OR, NOT, unary minus.
/// `depth` bounds recursion.
ExprPtr RandomExpr(Random& rng, int depth) {
  const double roll = rng.UniformDouble();
  if (depth <= 0 || roll < 0.3) {
    if (rng.Uniform(2) == 0) {
      auto col = Expression::MakeColumn(ColumnRef{"T", "c"});
      col->slot = static_cast<int>(rng.Uniform(kNumColumns));
      return col;
    }
    return Expression::MakeLiteral(RandomCell(rng, static_cast<int>(
                                                       rng.Uniform(4))));
  }
  if (roll < 0.4) {
    UnaryOp op = rng.Uniform(2) == 0 ? UnaryOp::kNot : UnaryOp::kNeg;
    return Expression::MakeUnary(op, RandomExpr(rng, depth - 1));
  }
  static const BinaryOp kOps[] = {
      BinaryOp::kEq,  BinaryOp::kNe,  BinaryOp::kLt,  BinaryOp::kLe,
      BinaryOp::kGt,  BinaryOp::kGe,  BinaryOp::kAnd, BinaryOp::kOr,
      BinaryOp::kAdd, BinaryOp::kSub, BinaryOp::kMul, BinaryOp::kDiv,
      BinaryOp::kLike};
  BinaryOp op = kOps[rng.Uniform(13)];
  return Expression::MakeBinary(op, RandomExpr(rng, depth - 1),
                                RandomExpr(rng, depth - 1));
}

std::vector<Value> RowAt(const Batch& batch, uint32_t r) {
  std::vector<Value> row;
  row.reserve(batch.num_columns());
  for (size_t c = 0; c < batch.num_columns(); ++c) {
    row.push_back(batch.column(c).ValueAt(r));
  }
  return row;
}

TEST(PredicateProgramPropertyTest, MatchesInterpreterOnRandomInputs) {
  Random rng(20260806);
  size_t compiled_ok = 0;
  for (int trial = 0; trial < 400; ++trial) {
    const size_t rows = static_cast<size_t>(rng.UniformInt(0, 40));
    Batch batch = RandomBatch(rng, rows);
    ExprPtr expr = RandomExpr(rng, 3);

    auto program = PredicateProgram::Compile(*expr, 0, kNumColumns);
    ASSERT_TRUE(program.ok())
        << expr->ToString() << ": " << program.status().ToString();
    ++compiled_ok;

    std::vector<uint32_t> sel(rows);
    for (uint32_t r = 0; r < rows; ++r) sel[r] = r;
    auto outcome = program->Run(batch, sel);

    for (uint32_t r = 0; r < rows; ++r) {
      auto expect = EvaluatePredicate(expr.get(), RowAt(batch, r));
      const bool in_passed =
          std::binary_search(outcome.passed.begin(), outcome.passed.end(), r);
      auto err =
          std::find_if(outcome.errors.begin(), outcome.errors.end(),
                       [&](const auto& e) { return e.first == r; });
      if (expect.ok()) {
        EXPECT_EQ(in_passed, *expect)
            << expr->ToString() << " row " << r << " trial " << trial;
        EXPECT_EQ(err, outcome.errors.end())
            << expr->ToString() << " row " << r << " trial " << trial;
      } else {
        EXPECT_FALSE(in_passed) << expr->ToString() << " row " << r;
        ASSERT_NE(err, outcome.errors.end())
            << expr->ToString() << " row " << r << " trial " << trial
            << " expected error: " << expect.status().ToString();
        EXPECT_EQ(err->second.ToString(), expect.status().ToString())
            << expr->ToString() << " row " << r << " trial " << trial;
      }
    }
  }
  EXPECT_EQ(compiled_ok, 400u);
}

TEST(PredicateProgramPropertyTest, ChunkingNeverChangesTheOutcome) {
  Random rng(777);
  for (int trial = 0; trial < 100; ++trial) {
    const size_t rows = static_cast<size_t>(rng.UniformInt(1, 60));
    Batch batch = RandomBatch(rng, rows);
    ExprPtr expr = RandomExpr(rng, 3);
    auto program = PredicateProgram::Compile(*expr, 0, kNumColumns);
    ASSERT_TRUE(program.ok());

    // A random subset selection, ascending.
    std::vector<uint32_t> sel;
    for (uint32_t r = 0; r < rows; ++r) {
      if (rng.Uniform(3) != 0) sel.push_back(r);
    }

    auto whole = program->Run(batch, sel);
    const size_t chunk = static_cast<size_t>(rng.UniformInt(1, 7));
    auto chunked = RunChunked(*program, batch, sel, chunk);
    EXPECT_EQ(chunked.passed, whole.passed)
        << expr->ToString() << " chunk=" << chunk;
    ASSERT_EQ(chunked.errors.size(), whole.errors.size());
    for (size_t i = 0; i < whole.errors.size(); ++i) {
      EXPECT_EQ(chunked.errors[i].first, whole.errors[i].first);
      EXPECT_EQ(chunked.errors[i].second.ToString(),
                whole.errors[i].second.ToString());
    }
  }
}

}  // namespace
}  // namespace auditdb
