/// Property-based differential tests of core invariants:
///   - the executor against a brute-force cross-product reference;
///   - backlog snapshots against a naive replay model;
///   - granule enumeration against the closed-form count;
///   - monotonicity of batch suspicion (adding queries never clears).

#include <gtest/gtest.h>

#include <map>

#include "src/audit/audit_parser.h"
#include "src/audit/suspicion.h"
#include "src/backlog/backlog.h"
#include "src/common/random.h"
#include "src/engine/executor.h"
#include "src/expr/analysis.h"
#include "src/expr/evaluator.h"
#include "src/workload/hospital.h"

namespace auditdb {
namespace {

Timestamp Ts(int64_t s) { return Timestamp(s * 1000000); }

// ---------------------------------------------------------------------
// Executor vs brute force.

/// Builds a database with tables T0(a,b), T1(c,d), T2(e) filled with
/// random small integers.
void BuildRandomDb(Random& rng, Database* db, size_t rows_per_table) {
  ASSERT_TRUE(db->CreateTable(TableSchema("T0", {{"a", ValueType::kInt},
                                                 {"b", ValueType::kInt}}))
                  .ok());
  ASSERT_TRUE(db->CreateTable(TableSchema("T1", {{"c", ValueType::kInt},
                                                 {"d", ValueType::kInt}}))
                  .ok());
  ASSERT_TRUE(
      db->CreateTable(TableSchema("T2", {{"e", ValueType::kInt}})).ok());
  for (size_t i = 0; i < rows_per_table; ++i) {
    ASSERT_TRUE(db->Insert("T0",
                           {Value::Int(rng.UniformInt(0, 4)),
                            Value::Int(rng.UniformInt(0, 4))},
                           Ts(1))
                    .ok());
    ASSERT_TRUE(db->Insert("T1",
                           {Value::Int(rng.UniformInt(0, 4)),
                            Value::Int(rng.UniformInt(0, 4))},
                           Ts(1))
                    .ok());
    ASSERT_TRUE(
        db->Insert("T2", {Value::Int(rng.UniformInt(0, 4))}, Ts(1)).ok());
  }
}

/// Random SPJ statement over 1-3 of the test tables.
sql::SelectStatement RandomQuery(Random& rng) {
  static const struct {
    const char* table;
    const char* cols[2];
    int ncols;
  } kTables[] = {
      {"T0", {"a", "b"}, 2}, {"T1", {"c", "d"}, 2}, {"T2", {"e", ""}, 1}};

  sql::SelectStatement stmt;
  size_t ntables = 1 + rng.Uniform(3);
  std::vector<int> chosen;
  for (int t = 0; t < 3 && chosen.size() < ntables; ++t) {
    if (rng.OneIn(0.7) || 3 - t == static_cast<int>(ntables - chosen.size())) {
      chosen.push_back(t);
    }
  }
  for (int t : chosen) stmt.from.push_back(kTables[t].table);

  // Projection: 1-3 random columns from the chosen tables.
  size_t nproj = 1 + rng.Uniform(3);
  for (size_t i = 0; i < nproj; ++i) {
    int t = chosen[rng.Uniform(chosen.size())];
    const auto& info = kTables[t];
    stmt.select_list.push_back(ColumnRef{
        info.table,
        info.cols[rng.Uniform(static_cast<uint64_t>(info.ncols))]});
  }

  // Predicate: 0-3 atoms ANDed (col-lit comparisons or equijoins).
  std::vector<ExprPtr> atoms;
  size_t natoms = rng.Uniform(4);
  const BinaryOp kOps[] = {BinaryOp::kEq, BinaryOp::kNe, BinaryOp::kLt,
                           BinaryOp::kGe};
  for (size_t i = 0; i < natoms; ++i) {
    int t = chosen[rng.Uniform(chosen.size())];
    const auto& info = kTables[t];
    ColumnRef left{info.table,
                   info.cols[rng.Uniform(static_cast<uint64_t>(info.ncols))]};
    if (chosen.size() >= 2 && rng.OneIn(0.4)) {
      int t2 = chosen[rng.Uniform(chosen.size())];
      if (t2 != t) {
        const auto& info2 = kTables[t2];
        atoms.push_back(Expression::MakeColumnEq(
            left, ColumnRef{info2.table,
                            info2.cols[rng.Uniform(
                                static_cast<uint64_t>(info2.ncols))]}));
        continue;
      }
    }
    atoms.push_back(Expression::MakeComparison(
        left, kOps[rng.Uniform(4)], Value::Int(rng.UniformInt(0, 4))));
  }
  stmt.where = Expression::MakeConjunction(std::move(atoms));
  return stmt;
}

/// Reference implementation: enumerate the whole cross product.
Result<QueryResult> BruteForce(const sql::SelectStatement& stmt,
                               const DatabaseView& db) {
  QueryResult result;
  result.from = stmt.from;
  RowLayout layout;
  std::vector<const TableVersion*> tables;
  for (const auto& name : stmt.from) {
    auto table = db.GetTable(name);
    if (!table.ok()) return table.status();
    tables.push_back(*table);
    layout.AddTable(name, (*table)->schema());
  }
  for (const auto& ref : stmt.select_list) {
    auto resolved = db.catalog().Resolve(ref, stmt.from);
    if (!resolved.ok()) return resolved.status();
    result.columns.push_back(*resolved);
  }
  ExprPtr where;
  if (stmt.where) {
    where = stmt.where->Clone();
    AUDITDB_RETURN_IF_ERROR(
        QualifyColumns(where.get(), db.catalog(), stmt.from));
    AUDITDB_RETURN_IF_ERROR(BindExpression(where.get(), layout));
  }

  std::vector<size_t> idx(tables.size(), 0);
  while (true) {
    std::vector<Value> combined;
    std::vector<Tid> tids;
    for (size_t t = 0; t < tables.size(); ++t) {
      const Row& row = tables[t]->rows()[idx[t]];
      combined.insert(combined.end(), row.values.begin(), row.values.end());
      tids.push_back(row.tid);
    }
    auto pass = EvaluatePredicate(where.get(), combined);
    if (!pass.ok()) return pass.status();
    if (*pass) {
      std::vector<Value> projected;
      for (const auto& col : result.columns) {
        auto slot = layout.Slot(col);
        if (!slot.ok()) return slot.status();
        projected.push_back(combined[static_cast<size_t>(*slot)]);
      }
      result.rows.push_back(std::move(projected));
      result.lineage.push_back(tids);
    }
    // Odometer.
    size_t t = tables.size();
    while (t > 0) {
      --t;
      if (++idx[t] < tables[t]->rows().size()) break;
      idx[t] = 0;
      if (t == 0) return result;
    }
  }
}

/// Multiset comparison key: projected row + lineage.
std::multiset<std::string> Canonicalize(const QueryResult& result) {
  std::multiset<std::string> out;
  for (size_t i = 0; i < result.rows.size(); ++i) {
    std::string key;
    for (const auto& v : result.rows[i]) key += v.ToString() + "|";
    key += "//";
    for (Tid t : result.lineage[i]) key += TidToString(t) + "|";
    out.insert(std::move(key));
  }
  return out;
}

class ExecutorDifferential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExecutorDifferential, MatchesBruteForce) {
  Random rng(GetParam());
  Database db;
  BuildRandomDb(rng, &db, 4 + rng.Uniform(3));
  // Secondary indexes on some columns exercise the prefilter path.
  {
    auto t0 = db.GetTable("T0");
    auto t1 = db.GetTable("T1");
    ASSERT_TRUE(t0.ok() && t1.ok());
    ASSERT_TRUE((*t0)->CreateIndex("a").ok());
    ASSERT_TRUE((*t1)->CreateIndex("c").ok());
  }
  auto view = db.View();

  for (int i = 0; i < 25; ++i) {
    sql::SelectStatement stmt = RandomQuery(rng);
    auto slow = BruteForce(stmt, view);
    ASSERT_TRUE(slow.ok());
    for (bool hash_join : {true, false}) {
      for (bool use_index : {true, false}) {
        for (bool reorder : {false, true}) {
          ExecOptions options;
          options.hash_join = hash_join;
          options.use_index = use_index;
          options.reorder_joins = reorder;
          auto fast = Execute(stmt, view, options);
          ASSERT_TRUE(fast.ok()) << stmt.ToString() << " -> "
                                 << fast.status().ToString();
          EXPECT_EQ(fast->from, stmt.from);
          EXPECT_EQ(Canonicalize(*fast), Canonicalize(*slow))
              << stmt.ToString() << " hash=" << hash_join
              << " index=" << use_index << " reorder=" << reorder;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecutorDifferential,
                         ::testing::Range<uint64_t>(1, 16));

// ---------------------------------------------------------------------
// Backlog snapshots vs a naive replay model.

class BacklogDifferential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BacklogDifferential, SnapshotsMatchModel) {
  Random rng(GetParam());
  Database db;
  Backlog backlog;
  backlog.Attach(&db);
  ASSERT_TRUE(
      db.CreateTable(TableSchema("T", {{"v", ValueType::kInt}})).ok());

  // Model: time -> (tid -> value) maps, recorded after every operation.
  std::map<Tid, int64_t> model;
  std::vector<std::pair<Timestamp, std::map<Tid, int64_t>>> history;
  std::vector<Tid> live;

  for (int64_t step = 1; step <= 60; ++step) {
    Timestamp at = Ts(step);
    double dice = rng.UniformDouble();
    if (live.empty() || dice < 0.5) {
      int64_t value = rng.UniformInt(0, 99);
      auto tid = db.Insert("T", {Value::Int(value)}, at);
      ASSERT_TRUE(tid.ok());
      model[*tid] = value;
      live.push_back(*tid);
    } else if (dice < 0.8) {
      Tid tid = live[rng.Uniform(live.size())];
      int64_t value = rng.UniformInt(0, 99);
      ASSERT_TRUE(db.Update("T", tid, {Value::Int(value)}, at).ok());
      model[tid] = value;
    } else {
      size_t pick = rng.Uniform(live.size());
      Tid tid = live[pick];
      ASSERT_TRUE(db.Delete("T", tid, at).ok());
      model.erase(tid);
      live.erase(live.begin() + static_cast<ptrdiff_t>(pick));
    }
    history.emplace_back(at, model);
  }

  // Check snapshots at every recorded instant plus in-between times.
  for (const auto& [at, expected] : history) {
    for (Timestamp t : {at, at.AddMicros(500000)}) {
      auto snapshot = backlog.SnapshotAt(t);
      ASSERT_TRUE(snapshot.ok());
      auto table = snapshot->GetTable("T");
      ASSERT_TRUE(table.ok());
      std::map<Tid, int64_t> actual;
      for (const auto& row : (*table)->rows()) {
        actual[row.tid] = row.values[0].int_value();
      }
      EXPECT_EQ(actual, expected) << "at " << t.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BacklogDifferential,
                         ::testing::Range<uint64_t>(1, 11));

// ---------------------------------------------------------------------
// Granule enumeration vs closed-form count.

class GranuleCountProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GranuleCountProperty, ForEachAgreesWithCount) {
  Random rng(GetParam());
  Database db;
  workload::HospitalConfig config;
  config.num_patients = 5 + rng.Uniform(10);
  config.seed = GetParam();
  config.null_age_fraction = 0.2;  // exercise NULL-cell exclusion
  ASSERT_TRUE(workload::PopulateHospital(&db, config, Ts(1)).ok());

  const char* kAuditLists[] = {"(name)", "[name,age]", "(name,age)",
                               "[name],[age,zipcode]"};
  std::string text =
      "THRESHOLD " + std::to_string(1 + rng.Uniform(3)) + " AUDIT " +
      kAuditLists[rng.Uniform(4)] + " FROM P-Personal";
  auto expr = audit::ParseAudit(text, Ts(1000));
  ASSERT_TRUE(expr.ok()) << text;
  ASSERT_TRUE(expr->Qualify(db.catalog()).ok());
  auto view = audit::ComputeTargetView(*expr, db.View(), Ts(1));
  ASSERT_TRUE(view.ok());

  audit::GranuleEnumerator g(*view, audit::BuildSchemes(*expr),
                             expr->threshold);
  size_t k = static_cast<size_t>(expr->threshold.n);
  uint64_t visited = g.ForEach([&](const audit::Granule& granule) {
    EXPECT_EQ(granule.fact_indices.size(), k);
    // Facts within a granule are distinct and valid for the scheme.
    std::set<size_t> unique(granule.fact_indices.begin(),
                            granule.fact_indices.end());
    EXPECT_EQ(unique.size(), k);
    return true;
  });
  EXPECT_DOUBLE_EQ(static_cast<double>(visited), g.CountGranules()) << text;
}

INSTANTIATE_TEST_SUITE_P(Seeds, GranuleCountProperty,
                         ::testing::Range<uint64_t>(1, 21));

// ---------------------------------------------------------------------
// Batch suspicion is monotone in the batch.

class SuspicionMonotonicity : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SuspicionMonotonicity, AddingQueriesNeverClears) {
  Random rng(GetParam());
  Database db;
  ASSERT_TRUE(workload::BuildPaperDatabase(&db, Ts(1)).ok());

  auto expr = audit::ParseAudit(
      "AUDIT (name,disease) FROM P-Personal, P-Health "
      "WHERE P-Personal.pid = P-Health.pid AND disease='diabetic'",
      Ts(1000));
  ASSERT_TRUE(expr.ok());
  ASSERT_TRUE(expr->Qualify(db.catalog()).ok());
  auto view = audit::ComputeTargetView(*expr, db.View(), Ts(1));
  ASSERT_TRUE(view.ok());
  auto schemes = audit::BuildSchemes(*expr);

  const char* kPool[] = {
      "SELECT name FROM P-Personal WHERE zipcode='145568'",
      "SELECT disease FROM P-Health WHERE disease='diabetic'",
      "SELECT ward FROM P-Health",
      "SELECT name, disease FROM P-Personal, P-Health "
      "WHERE P-Personal.pid=P-Health.pid AND zipcode='177893'",
      "SELECT salary FROM P-Employ WHERE salary > 10000",
      "SELECT name, address FROM P-Personal WHERE age < 30",
  };

  std::vector<AccessProfile> profiles;
  for (int i = 0; i < 6; ++i) {
    auto stmt = sql::ParseSelect(kPool[rng.Uniform(std::size(kPool))]);
    ASSERT_TRUE(stmt.ok());
    auto profile = ComputeAccessProfile(*stmt, db.View());
    ASSERT_TRUE(profile.ok());
    profiles.push_back(std::move(*profile));
  }

  bool was_suspicious = false;
  std::vector<const AccessProfile*> batch;
  for (const auto& profile : profiles) {
    batch.push_back(&profile);
    auto result = audit::CheckBatchSuspicion(
        *view, schemes, expr->threshold, expr->indispensable, batch);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    if (was_suspicious) {
      EXPECT_TRUE(result->suspicious) << "batch size " << batch.size();
    }
    was_suspicious = result->suspicious;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SuspicionMonotonicity,
                         ::testing::Range<uint64_t>(1, 16));

}  // namespace
}  // namespace auditdb
