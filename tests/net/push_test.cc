/// End-to-end tests for the push-subscription path (protocol v2,
/// docs/wire_protocol.md "Alerting"): SUBSCRIBE/UNSUBSCRIBE round
/// trips, server-initiated PUSH delivery, the byte-identity contract
/// between pushed alerts and polled audits, backpressure policies
/// under a deliberately tiny socket pipe, graceful-drain flushing, and
/// the v1/v2 version fence.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/io/dump.h"
#include "src/net/client.h"
#include "src/net/server.h"
#include "src/workload/generator.h"
#include "src/workload/hospital.h"

namespace auditdb {
namespace net {
namespace {

using std::chrono::milliseconds;

Timestamp Ts(int64_t s) { return Timestamp(s * 1000000); }

/// THRESHOLD ALL over one attribute: every query touching a fresh
/// patient's fact moves the rank by exactly 1/(|S|+k), so N
/// distinct-pid queries generate exactly N pushes per subscription —
/// deterministic traffic for backpressure and drain tests.
const char kNameAudit[] =
    "DURING 1/1/1970 to 1/1/1990 THRESHOLD ALL "
    "AUDIT (name) FROM P-Personal";
const char kAddressAudit[] =
    "DURING 1/1/1970 to 1/1/1990 THRESHOLD ALL "
    "AUDIT (address) FROM P-Personal";

/// The examples/online_monitor slow-burn scenario, reused here because
/// its rank trajectory (quiet, creep, creep, FIRE) is fixed by the
/// paper database.
const char kSlowBurnAudit[] =
    "DURING 1/1/1970 to 2/1/1970 "
    "AUDIT (name,disease,address) "
    "FROM P-Personal, P-Health, P-Employ "
    "WHERE P-Personal.pid=P-Health.pid AND P-Health.pid=P-Employ.pid "
    "AND P-Personal.zipcode='145568' AND P-Employ.salary > 10000 "
    "AND P-Health.disease='diabetic'";

struct ServedWorld {
  Database db;
  Backlog backlog;
  QueryLog log;
  std::unique_ptr<service::AuditService> service;
  std::unique_ptr<AuditServer> server;

  explicit ServedWorld(AuditServerOptions options = AuditServerOptions{},
                       size_t patients = 60, size_t queries = 0) {
    backlog.Attach(&db);
    if (patients > 0) {
      workload::HospitalConfig hospital;
      hospital.num_patients = patients;
      hospital.seed = 2008;
      EXPECT_TRUE(workload::PopulateHospital(&db, hospital, Ts(1)).ok());
      if (queries > 0) {
        workload::WorkloadConfig workload;
        workload.num_queries = queries;
        workload.start = Ts(100);
        EXPECT_TRUE(
            workload::GenerateWorkload(&log, workload, hospital).ok());
      }
    }
    service = std::make_unique<service::AuditService>(&db, &backlog, &log);
    server = std::make_unique<AuditServer>(service.get(), &db, &backlog,
                                           &log, options);
    Status started = server->Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
  }
};

uint64_t CounterFromJson(const std::string& json, const std::string& name) {
  auto pos = json.find("\"" + name + "\":");
  if (pos == std::string::npos) return 0;
  pos += name.size() + 3;
  uint64_t value = 0;
  while (pos < json.size() && json[pos] >= '0' && json[pos] <= '9') {
    value = value * 10 + static_cast<uint64_t>(json[pos++] - '0');
  }
  return value;
}

bool WaitForCounter(const AuditServer& server, const std::string& name,
                    uint64_t at_least, milliseconds budget) {
  auto deadline = std::chrono::steady_clock::now() + budget;
  while (std::chrono::steady_clock::now() < deadline) {
    if (CounterFromJson(server.MetricsJson(), name) >= at_least) {
      return true;
    }
    std::this_thread::sleep_for(milliseconds(2));
  }
  return false;
}

/// Everything one subscription's handler observed.
struct Inbox {
  std::mutex mutex;
  std::vector<PushEvent> events;
  std::set<uint64_t> delivered;  // progress/alert seqs
  uint64_t gap_covered = 0;      // seqs announced inside GAP frames
  size_t gap_frames = 0;
  size_t alerts = 0;

  AuditClient::PushHandler Handler() {
    return [this](const PushEvent& event) {
      std::lock_guard<std::mutex> lock(mutex);
      events.push_back(event);
      if (event.kind == PushKind::kGap) {
        ++gap_frames;
        gap_covered += event.dropped;
      } else {
        delivered.insert(event.seq);
        if (event.kind == PushKind::kAlert) ++alerts;
      }
    };
  }

  size_t CoveredCount() {
    std::lock_guard<std::mutex> lock(mutex);
    return delivered.size() + gap_covered;
  }

  bool WaitForCovered(size_t expected, milliseconds budget) {
    auto deadline = std::chrono::steady_clock::now() + budget;
    while (std::chrono::steady_clock::now() < deadline) {
      if (CoveredCount() >= expected) return true;
      std::this_thread::sleep_for(milliseconds(2));
    }
    return false;
  }
};

/// Blocking loopback socket speaking raw frames, for protocol-level
/// tests (v1 fencing, deliberately slow subscribers). `rcvbuf > 0`
/// shrinks SO_RCVBUF before connecting so the kernel pipe between the
/// server and a non-reading subscriber stays tiny.
struct RawConn {
  int fd = -1;
  FrameReader reader;

  RawConn(const AuditServer& server, int rcvbuf = 0) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    if (rcvbuf > 0) {
      EXPECT_EQ(::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf,
                             sizeof(rcvbuf)),
                0);
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server.port());
    EXPECT_EQ(
        ::inet_pton(AF_INET, server.host().c_str(), &addr.sin_addr), 1);
    EXPECT_EQ(
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0)
        << strerror(errno);
  }
  ~RawConn() {
    if (fd >= 0) ::close(fd);
  }

  void Send(const Message& message) {
    std::string bytes = EncodeFrame(message);
    ASSERT_EQ(::send(fd, bytes.data(), bytes.size(), 0),
              static_cast<ssize_t>(bytes.size()));
  }

  /// Next frame, reading more bytes as needed. Nullopt on EOF or a
  /// protocol error on our side.
  std::optional<Message> Read() {
    char buf[8192];
    while (true) {
      auto next = reader.Next();
      if (!next.ok()) return std::nullopt;
      if (next->has_value()) return std::move(**next);
      ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n <= 0) return std::nullopt;
      reader.Feed(buf, static_cast<size_t>(n));
    }
  }

  /// SUBSCRIBEs to `expression` and reads to the ack, returning the
  /// subscription id. Pushes that raced ahead of the ack are decoded
  /// into *early.
  int64_t Subscribe(const std::string& expression, Timestamp now,
                    std::vector<PushEvent>* early = nullptr) {
    Send(Message{MessageType::kSubscribeRequest,
                 EncodeFields({"expr", expression,
                               std::to_string(now.micros())}),
                 WireVersion::kV2});
    while (true) {
      auto frame = Read();
      if (!frame.has_value()) {
        ADD_FAILURE() << "connection died before the subscribe ack";
        return 0;
      }
      if (frame->type == MessageType::kPushEvent) {
        auto event = DecodePushPayload(frame->payload);
        EXPECT_TRUE(event.ok());
        if (early != nullptr && event.ok()) early->push_back(*event);
        continue;
      }
      EXPECT_EQ(frame->type, MessageType::kOkResponse)
          << frame->payload;
      auto fields = DecodeFields(frame->payload);
      EXPECT_TRUE(fields.ok());
      EXPECT_EQ(fields->size(), 4u);
      return std::stoll((*fields)[0]);
    }
  }
};

Status DriveDistinctPidQueries(AuditClient* driver, size_t count) {
  for (size_t q = 1; q <= count; ++q) {
    std::string sql =
        "SELECT name, address FROM P-Personal WHERE pid = 'p" +
        std::to_string(q) + "'";
    auto result = driver->ExecuteQuery(sql, "soak", "driver", "load",
                                       Timestamp(2000000 + (int64_t)q));
    if (!result.ok()) return result.status();
  }
  return Status::Ok();
}

// --- Subscribe / unsubscribe round trips ------------------------------

TEST(PushSubscriptionTest, SubscribeAckDedupAndUnsubscribe) {
  ServedWorld world(AuditServerOptions{}, /*patients=*/10);
  const std::string host = world.server->host();
  const uint16_t port = world.server->port();

  Inbox inbox_a1, inbox_a2, inbox_b;
  AuditClient a(host, port);
  auto sub1 = a.Subscribe(kNameAudit, Ts(10), inbox_a1.Handler());
  ASSERT_TRUE(sub1.ok()) << sub1.status().ToString();
  EXPECT_GT(sub1->id, 0);
  EXPECT_EQ(sub1->rank, 0.0);  // empty log: nothing accessed yet
  EXPECT_FALSE(sub1->fired);
  EXPECT_TRUE(a.streaming());
  EXPECT_EQ(a.active_subscriptions(), 1u);

  // Same expression text from the same client: the standing expression
  // is shared (same expression id), the subscription is distinct.
  auto sub2 = a.Subscribe(kNameAudit, Ts(10), inbox_a2.Handler());
  ASSERT_TRUE(sub2.ok()) << sub2.status().ToString();
  EXPECT_EQ(sub2->expression_id, sub1->expression_id);
  EXPECT_NE(sub2->id, sub1->id);

  // A second client joins the standing expression by id.
  AuditClient b(host, port);
  auto sub3 = b.SubscribeById(sub1->expression_id, inbox_b.Handler());
  ASSERT_TRUE(sub3.ok()) << sub3.status().ToString();
  EXPECT_EQ(sub3->expression_id, sub1->expression_id);
  EXPECT_EQ(CounterFromJson(world.server->MetricsJson(),
                            "subscriptions_active"),
            3u);

  // One observed query fans out to all three subscriptions.
  AuditClient driver(host, port);
  ASSERT_TRUE(DriveDistinctPidQueries(&driver, 1).ok());
  EXPECT_TRUE(inbox_a1.WaitForCovered(1, milliseconds(5000)));
  EXPECT_TRUE(inbox_a2.WaitForCovered(1, milliseconds(5000)));
  EXPECT_TRUE(inbox_b.WaitForCovered(1, milliseconds(5000)));
  {
    std::lock_guard<std::mutex> lock(inbox_b.mutex);
    ASSERT_EQ(inbox_b.events.size(), 1u);
    EXPECT_EQ(inbox_b.events[0].subscription_id, sub3->id);
    EXPECT_EQ(inbox_b.events[0].seq, 1u);
    EXPECT_EQ(inbox_b.events[0].expression_id, sub3->expression_id);
    EXPECT_EQ(inbox_b.events[0].kind, PushKind::kProgress);
    EXPECT_GT(inbox_b.events[0].rank, 0.0);
  }

  // Unknown expression id / bad expression text are clean errors and
  // leave the client usable.
  AuditClient c(host, port);
  Inbox unused;
  auto bogus = c.SubscribeById(999999, unused.Handler());
  EXPECT_FALSE(bogus.ok());
  EXPECT_EQ(bogus.status().code(), StatusCode::kNotFound);
  auto garbled = c.Subscribe("AUDIT nonsense", Ts(10), unused.Handler());
  EXPECT_FALSE(garbled.ok());
  auto health = c.Health();
  EXPECT_TRUE(health.ok()) << health.status().ToString();

  EXPECT_TRUE(a.Unsubscribe(sub1->id).ok());
  EXPECT_TRUE(a.Unsubscribe(sub2->id).ok());
  EXPECT_TRUE(b.Unsubscribe(sub3->id).ok());
  EXPECT_EQ(a.active_subscriptions(), 0u);
  // Cancelling twice: the subscription is gone.
  Status again = a.Unsubscribe(sub1->id);
  EXPECT_FALSE(again.ok());
  EXPECT_EQ(again.code(), StatusCode::kNotFound);
  EXPECT_EQ(CounterFromJson(world.server->MetricsJson(),
                            "subscriptions_active"),
            0u);
}

TEST(PushSubscriptionTest, UnsubscribeStopsPushes) {
  ServedWorld world(AuditServerOptions{}, /*patients=*/10);
  AuditClient client(world.server->host(), world.server->port());
  Inbox names, addresses;
  auto name_sub = client.Subscribe(kNameAudit, Ts(10), names.Handler());
  auto addr_sub =
      client.Subscribe(kAddressAudit, Ts(10), addresses.Handler());
  ASSERT_TRUE(name_sub.ok() && addr_sub.ok());

  AuditClient driver(world.server->host(), world.server->port());
  ASSERT_TRUE(DriveDistinctPidQueries(&driver, 1).ok());
  ASSERT_TRUE(names.WaitForCovered(1, milliseconds(5000)));
  ASSERT_TRUE(addresses.WaitForCovered(1, milliseconds(5000)));

  ASSERT_TRUE(client.Unsubscribe(name_sub->id).ok());
  ASSERT_TRUE(DriveDistinctPidQueries(&driver, 2).ok());  // p1 and p2
  ASSERT_TRUE(addresses.WaitForCovered(2, milliseconds(5000)));
  // The cancelled subscription saw only the pre-unsubscribe event.
  EXPECT_EQ(names.CoveredCount(), 1u);
  EXPECT_EQ(client.active_subscriptions(), 1u);
}

TEST(PushSubscriptionTest, MaxSubscriptionsCap) {
  AuditServerOptions options;
  options.max_subscriptions = 1;
  ServedWorld world(options, /*patients=*/5);
  Inbox inbox_a, inbox_b;
  AuditClient a(world.server->host(), world.server->port());
  AuditClient b(world.server->host(), world.server->port());
  auto first = a.Subscribe(kNameAudit, Ts(10), inbox_a.Handler());
  ASSERT_TRUE(first.ok());
  auto second = b.Subscribe(kNameAudit, Ts(10), inbox_b.Handler());
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kResourceExhausted);
  // Freeing the slot re-admits the rejected client.
  ASSERT_TRUE(a.Unsubscribe(first->id).ok());
  auto retry = b.Subscribe(kNameAudit, Ts(10), inbox_b.Handler());
  EXPECT_TRUE(retry.ok()) << retry.status().ToString();
}

// --- The byte-identity contract ---------------------------------------

/// The acceptance test: a subscription on the slow-burn scenario from
/// examples/online_monitor receives a monotone progress stream and an
/// alert whose verdict is byte-identical to polling the same
/// expression over the same log range.
TEST(PushSubscriptionTest, AlertVerdictIsByteIdenticalToPoll) {
  ServedWorld world(AuditServerOptions{}, /*patients=*/0);
  const std::string host = world.server->host();
  const uint16_t port = world.server->port();

  // Ship the paper database to the empty server.
  Database paper;
  ASSERT_TRUE(workload::BuildPaperDatabase(&paper, Ts(1)).ok());
  std::ostringstream dump;
  ASSERT_TRUE(io::WriteDatabaseDump(paper, dump).ok());
  AuditClient loader(host, port);
  ASSERT_TRUE(loader.LoadDatabaseDump(dump.str(), Ts(1)).ok());

  Inbox inbox;
  AuditClient subscriber(host, port);
  auto sub = subscriber.Subscribe(kSlowBurnAudit, Ts(1000),
                                  inbox.Handler());
  ASSERT_TRUE(sub.ok()) << sub.status().ToString();
  EXPECT_EQ(sub->rank, 0.0);
  EXPECT_FALSE(sub->fired);

  // The slow-burn attack, query by query. The first query is irrelevant
  // to the expression (rank stays 0): no push. The next two creep the
  // rank up: one progress push each. The join fires: one alert push.
  const char* steps[] = {
      "SELECT ward FROM P-Health WHERE ward = 'W14'",
      "SELECT name, pid FROM P-Personal WHERE zipcode = '145568'",
      "SELECT address FROM P-Personal WHERE zipcode = '145568'",
      "SELECT disease FROM P-Personal, P-Health "
      "WHERE P-Personal.pid = P-Health.pid AND zipcode = '145568'",
  };
  AuditClient driver(host, port);
  int64_t at = 100;
  int64_t last_log_id = 0;
  for (const char* sql : steps) {
    auto result =
        driver.ExecuteQuery(sql, "mallory", "clerk", "billing", Ts(at));
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    last_log_id = result->log_id;
    at += 10;
  }

  ASSERT_TRUE(inbox.WaitForCovered(3, milliseconds(10000)));
  std::vector<PushEvent> events;
  {
    std::lock_guard<std::mutex> lock(inbox.mutex);
    events = inbox.events;
  }
  ASSERT_EQ(events.size(), 3u);
  double last_rank = 0.0;
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].subscription_id, sub->id);
    EXPECT_EQ(events[i].expression_id, sub->expression_id);
    EXPECT_EQ(events[i].seq, i + 1);  // dense, 1-based, in order
    EXPECT_GT(events[i].rank, last_rank);
    last_rank = events[i].rank;
  }
  EXPECT_EQ(events[0].kind, PushKind::kProgress);
  EXPECT_TRUE(events[0].verdict.empty());
  EXPECT_EQ(events[1].kind, PushKind::kProgress);
  const PushEvent& alert = events[2];
  EXPECT_EQ(alert.kind, PushKind::kAlert);
  EXPECT_TRUE(alert.fired);
  EXPECT_EQ(alert.log_id, last_log_id);
  ASSERT_FALSE(alert.verdict.empty());

  // The contract: the pushed verdict is exactly what a poll of the same
  // expression over the same log range returns.
  AuditClient poller(host, port);
  auto polled = poller.Audit(kSlowBurnAudit, Ts(1000));
  ASSERT_TRUE(polled.ok()) << polled.status().ToString();
  EXPECT_EQ(alert.verdict, polled->canonical);
}

// --- Backpressure ------------------------------------------------------

/// A subscriber that never reads, against a server whose SO_SNDBUF is
/// shrunk to the kernel floor: the socket pipe holds only a few KiB,
/// so pushes park, the depth-4 queue overflows, and the drop-oldest
/// policy sheds events behind a GAP — all without costing the
/// fast subscriber a single event.
TEST(PushSubscriptionTest, SlowSubscriberGapsDoNotStallOthers) {
  AuditServerOptions options;
  options.push_queue_depth = 4;
  options.so_sndbuf = 2048;
  ServedWorld world(options, /*patients=*/400);
  constexpr size_t kQueries = 300;

  RawConn slow(*world.server, /*rcvbuf=*/2048);
  int64_t slow_sub = slow.Subscribe(kNameAudit, Ts(10));
  ASSERT_GT(slow_sub, 0);
  // From here on the slow subscriber reads nothing.

  Inbox fast_inbox;
  AuditClient fast(world.server->host(), world.server->port());
  auto fast_sub = fast.Subscribe(kNameAudit, Ts(10), fast_inbox.Handler());
  ASSERT_TRUE(fast_sub.ok()) << fast_sub.status().ToString();
  EXPECT_EQ(fast_sub->expression_id, 1);  // shared standing expression

  AuditClient driver(world.server->host(), world.server->port());
  ASSERT_TRUE(DriveDistinctPidQueries(&driver, kQueries).ok());

  // The fast subscriber gets every event, gap-free.
  ASSERT_TRUE(fast_inbox.WaitForCovered(kQueries, milliseconds(20000)));
  {
    std::lock_guard<std::mutex> lock(fast_inbox.mutex);
    EXPECT_EQ(fast_inbox.gap_frames, 0u);
    EXPECT_EQ(fast_inbox.delivered.size(), kQueries);
    EXPECT_EQ(*fast_inbox.delivered.rbegin(), kQueries);
  }
  // The slow one overflowed: events were shed and summarized as gaps.
  EXPECT_TRUE(WaitForCounter(*world.server, "pushes_dropped", 1,
                             milliseconds(5000)))
      << world.server->MetricsJson();
  std::string json = world.server->MetricsJson();
  EXPECT_GE(CounterFromJson(json, "gap_frames_sent"), 1u);
  EXPECT_EQ(CounterFromJson(json, "slow_subscribers_evicted"), 0u);

  // The slow subscriber now drains its socket: everything it receives
  // must cover 1..kQueries exactly — delivered or inside a gap.
  std::set<uint64_t> covered;
  uint64_t last_seq = 0;
  bool done = false;
  auto deadline = std::chrono::steady_clock::now() + milliseconds(20000);
  while (!done && std::chrono::steady_clock::now() < deadline) {
    auto frame = slow.Read();
    if (!frame.has_value()) break;
    ASSERT_EQ(frame->type, MessageType::kPushEvent);
    auto event = DecodePushPayload(frame->payload);
    ASSERT_TRUE(event.ok());
    if (event->kind == PushKind::kGap) {
      for (uint64_t s = event->seq; s < event->seq + event->dropped; ++s) {
        EXPECT_TRUE(covered.insert(s).second);
      }
    } else {
      EXPECT_GT(event->seq, last_seq) << "out-of-order push";
      last_seq = event->seq;
      EXPECT_TRUE(covered.insert(event->seq).second);
    }
    done = covered.size() >= kQueries;
  }
  EXPECT_EQ(covered.size(), kQueries);
  for (uint64_t s = 1; s <= kQueries; ++s) {
    ASSERT_TRUE(covered.count(s)) << "seq " << s << " lost without gap";
  }
}

TEST(PushSubscriptionTest, EvictPolicyDisconnectsSlowSubscriber) {
  AuditServerOptions options;
  options.push_queue_depth = 4;
  options.so_sndbuf = 2048;
  options.slow_subscriber_policy = SlowSubscriberPolicy::kEvict;
  ServedWorld world(options, /*patients=*/400);
  constexpr size_t kQueries = 300;

  RawConn slow(*world.server, /*rcvbuf=*/2048);
  ASSERT_GT(slow.Subscribe(kNameAudit, Ts(10)), 0);

  Inbox fast_inbox;
  AuditClient fast(world.server->host(), world.server->port());
  ASSERT_TRUE(
      fast.Subscribe(kNameAudit, Ts(10), fast_inbox.Handler()).ok());

  AuditClient driver(world.server->host(), world.server->port());
  ASSERT_TRUE(DriveDistinctPidQueries(&driver, kQueries).ok());

  EXPECT_TRUE(WaitForCounter(*world.server, "slow_subscribers_evicted", 1,
                             milliseconds(20000)))
      << world.server->MetricsJson();
  // Eviction is a disconnect: the slow socket hits EOF (or a reset,
  // since data was in flight) once its buffered bytes run out.
  while (slow.Read().has_value()) {
  }
  // The fast subscriber is untouched.
  EXPECT_TRUE(fast_inbox.WaitForCovered(kQueries, milliseconds(20000)));
  {
    std::lock_guard<std::mutex> lock(fast_inbox.mutex);
    EXPECT_EQ(fast_inbox.gap_frames, 0u);
  }
  EXPECT_TRUE(fast.StreamStatus().ok());
}

// --- Graceful drain ----------------------------------------------------

TEST(PushSubscriptionTest, ShutdownFlushesParkedPushes) {
  AuditServerOptions options;
  options.so_sndbuf = 2048;        // park pushes fast...
  options.push_queue_depth = 512;  // ...but deep enough to never shed
  ServedWorld world(options, /*patients=*/450);
  // Far more events than the kernel-floor socket buffers can absorb
  // (~75), so a parked backlog is guaranteed regardless of how much
  // the event loop flushed while the driver was still executing.
  constexpr size_t kQueries = 400;

  RawConn subscriber(*world.server, /*rcvbuf=*/2048);
  ASSERT_GT(subscriber.Subscribe(kNameAudit, Ts(10)), 0);
  // The subscriber stalls: the pipe fills (~75 events at the kernel
  // buffer floor) and the rest park server-side.

  AuditClient driver(world.server->host(), world.server->port());
  ASSERT_TRUE(DriveDistinctPidQueries(&driver, kQueries).ok());
  EXPECT_GT(CounterFromJson(world.server->MetricsJson(), "pending_events"),
            0u)
      << "expected parked pushes before the drain";

  // Drain while the subscriber finally reads: every parked push must be
  // flushed before the server closes the connection.
  std::thread drain([&] { world.server->Shutdown(); });
  std::set<uint64_t> delivered;
  size_t gaps = 0;
  while (true) {
    auto frame = subscriber.Read();
    if (!frame.has_value()) break;  // EOF: the drain completed
    EXPECT_EQ(frame->type, MessageType::kPushEvent);
    auto event = DecodePushPayload(frame->payload);
    EXPECT_TRUE(event.ok());
    if (!event.ok()) break;
    if (event->kind == PushKind::kGap) {
      ++gaps;
    } else {
      delivered.insert(event->seq);
    }
  }
  drain.join();
  EXPECT_EQ(gaps, 0u)
      << "queue was deep enough; nothing should have been shed";
  EXPECT_EQ(delivered.size(), kQueries);
  for (uint64_t s = 1; s <= kQueries; ++s) {
    ASSERT_TRUE(delivered.count(s)) << "seq " << s << " lost in drain";
  }
}

TEST(PushSubscriptionTest, SubscribedConnectionSurvivesIdleTimeout) {
  AuditServerOptions options;
  options.idle_timeout = milliseconds(200);
  ServedWorld world(options, /*patients=*/5);
  Inbox inbox;
  AuditClient client(world.server->host(), world.server->port());
  auto sub = client.Subscribe(kNameAudit, Ts(10), inbox.Handler());
  ASSERT_TRUE(sub.ok());
  // A passive subscriber sends nothing for several idle windows; the
  // sweep must exempt it.
  std::this_thread::sleep_for(milliseconds(700));
  EXPECT_TRUE(client.StreamStatus().ok());
  auto health = client.Health();  // same connection — no retries in
  EXPECT_TRUE(health.ok()) << health.status().ToString();  // streaming
}

// --- Version fencing ---------------------------------------------------

TEST(PushSubscriptionTest, V1ClientInteropAndSubscribeFence) {
  ServedWorld world(AuditServerOptions{}, /*patients=*/5);
  AuditClientOptions v1;
  v1.wire_version = WireVersion::kV1;
  AuditClient client(world.server->host(), world.server->port(), v1);
  // v1 requests work byte-for-byte against a v2-capable server.
  auto health = client.Health();
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  auto report = client.Audit(kNameAudit, Ts(10));
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  // ...but the client refuses to subscribe over ADB1.
  Inbox inbox;
  auto sub = client.Subscribe(kNameAudit, Ts(10), inbox.Handler());
  EXPECT_FALSE(sub.ok());
  EXPECT_EQ(sub.status().code(), StatusCode::kInvalidArgument);
}

TEST(PushSubscriptionTest, ServerRejectsSubscribeOverV1) {
  ServedWorld world(AuditServerOptions{}, /*patients=*/5);
  RawConn conn(*world.server);
  conn.Send(Message{
      MessageType::kSubscribeRequest,
      EncodeFields({"expr", kNameAudit, std::to_string(Ts(10).micros())}),
      WireVersion::kV1});
  auto frame = conn.Read();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, MessageType::kErrorResponse);
  EXPECT_NE(frame->payload.find("ADB2"), std::string::npos)
      << frame->payload;
  EXPECT_EQ(CounterFromJson(world.server->MetricsJson(),
                            "subscriptions_active"),
            0u);
}

TEST(PushSubscriptionTest, MixedMagicsCloseTheConnection) {
  ServedWorld world(AuditServerOptions{}, /*patients=*/0);
  RawConn conn(*world.server);
  conn.Send(Message{MessageType::kHealthRequest, "", WireVersion::kV2});
  auto first = conn.Read();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->type, MessageType::kOkResponse);
  // Switching magics mid-stream is a protocol violation: the server
  // explains why in one final error frame, then hangs up.
  conn.Send(Message{MessageType::kHealthRequest, "", WireVersion::kV1});
  auto second = conn.Read();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->type, MessageType::kErrorResponse);
  EXPECT_FALSE(conn.Read().has_value());
}

}  // namespace
}  // namespace net
}  // namespace auditdb
