#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>

#include "src/common/timestamp.h"
#include "src/net/client.h"
#include "src/net/wire.h"

namespace auditdb {
namespace net {
namespace {

using std::chrono::milliseconds;

/// A loopback server that accepts-and-slams the first `fail_first`
/// connections (the client sees the transport die mid-request), then
/// serves every request with an "ok" response. Single-threaded: the
/// retry tests drive one client at a time.
class FlakyServer {
 public:
  explicit FlakyServer(int fail_first) : fail_first_(fail_first) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    EXPECT_GE(listen_fd_, 0);
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    EXPECT_EQ(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)),
              0);
    EXPECT_EQ(::listen(listen_fd_, 16), 0);
    socklen_t len = sizeof(addr);
    EXPECT_EQ(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                            &len),
              0);
    port_ = ntohs(addr.sin_port);
    thread_ = std::thread([this] { Loop(); });
  }

  ~FlakyServer() {
    if (listen_fd_ >= 0) {
      ::shutdown(listen_fd_, SHUT_RDWR);
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    if (thread_.joinable()) thread_.join();
  }

  uint16_t port() const { return port_; }
  int connections() const { return connections_.load(); }

 private:
  void Loop() {
    while (true) {
      int conn = ::accept(listen_fd_, nullptr, nullptr);
      if (conn < 0) return;  // listener closed: shutting down
      int seen = connections_.fetch_add(1) + 1;
      if (seen <= fail_first_) {
        ::close(conn);  // the "flaky" part: die before responding
        continue;
      }
      Serve(conn);
      ::close(conn);
    }
  }

  void Serve(int conn) {
    // Backstop so a test bug cannot hang the suite.
    timeval timeout{5, 0};
    ::setsockopt(conn, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    FrameReader reader;
    char buf[4096];
    while (true) {
      auto next = reader.Next();
      if (!next.ok()) return;
      if (next->has_value()) {
        std::string frame =
            EncodeFrame(Message{MessageType::kOkResponse, "ok"});
        if (::send(conn, frame.data(), frame.size(), MSG_NOSIGNAL) !=
            static_cast<ssize_t>(frame.size())) {
          return;
        }
        continue;
      }
      ssize_t n = ::read(conn, buf, sizeof(buf));
      if (n <= 0) return;  // client closed (or timed out)
      reader.Feed(buf, static_cast<size_t>(n));
    }
  }

  int fail_first_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<int> connections_{0};
  std::thread thread_;
};

TEST(ClientRetryTest, IdempotentRequestOutlivesFlakyConnections) {
  FlakyServer server(/*fail_first=*/2);
  AuditClientOptions options;
  options.max_retries = 3;
  options.retry_initial_backoff = milliseconds(1);
  AuditClient client("127.0.0.1", server.port(), options);
  auto health = client.Health();
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_EQ(*health, "ok");
  // Two doomed connections plus the one that served.
  EXPECT_EQ(server.connections(), 3);
}

TEST(ClientRetryTest, GivesUpAfterMaxRetries) {
  FlakyServer server(/*fail_first=*/1000);
  AuditClientOptions options;
  options.max_retries = 2;
  options.retry_initial_backoff = milliseconds(1);
  AuditClient client("127.0.0.1", server.port(), options);
  auto health = client.Health();
  ASSERT_FALSE(health.ok());
  EXPECT_EQ(health.status().code(), StatusCode::kInternal);
  // Exactly the first attempt plus max_retries, no more.
  EXPECT_EQ(server.connections(), 3);
}

TEST(ClientRetryTest, NonIdempotentRequestsNeverRetry) {
  FlakyServer server(/*fail_first=*/1000);
  AuditClientOptions options;
  options.max_retries = 3;
  options.retry_initial_backoff = milliseconds(1);
  AuditClient client("127.0.0.1", server.port(), options);
  auto executed = client.ExecuteQuery("SELECT name FROM P-Personal", "a",
                                      "Nurse", "care", Timestamp(1));
  ASSERT_FALSE(executed.ok());
  // The append may have committed server-side before the cut; a retry
  // could double-log it. One connection, one attempt.
  EXPECT_EQ(server.connections(), 1);
}

TEST(ClientRetryTest, RetriesCanBeDisabled) {
  FlakyServer server(/*fail_first=*/1000);
  AuditClientOptions options;
  options.retry_idempotent = false;
  options.retry_initial_backoff = milliseconds(1);
  AuditClient client("127.0.0.1", server.port(), options);
  EXPECT_FALSE(client.Health().ok());
  EXPECT_EQ(server.connections(), 1);
}

TEST(ClientRetryTest, RetriesRespectTheRequestDeadline) {
  FlakyServer server(/*fail_first=*/1000);
  AuditClientOptions options;
  options.max_retries = 100;  // the deadline must cut this short
  options.request_timeout = milliseconds(60);
  options.retry_initial_backoff = milliseconds(40);
  options.retry_max_backoff = milliseconds(40);
  AuditClient client("127.0.0.1", server.port(), options);
  auto start = std::chrono::steady_clock::now();
  auto health = client.Health();
  auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_FALSE(health.ok());
  // All attempts and their backoff sleeps fit the single 60ms budget
  // (with loopback slack), nowhere near 100 retries * 40ms.
  EXPECT_LT(std::chrono::duration_cast<milliseconds>(elapsed).count(),
            1000);
  EXPECT_LT(server.connections(), 5);
}

TEST(ClientRetryTest, RefusedConnectsRetryUntilAServerAppears) {
  // Grab a port with no listener by binding-and-closing.
  int probe = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(
      ::bind(probe, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(
      ::getsockname(probe, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  uint16_t dead_port = ntohs(addr.sin_port);
  ::close(probe);

  AuditClientOptions options;
  options.max_retries = 2;
  options.retry_initial_backoff = milliseconds(1);
  AuditClient client("127.0.0.1", dead_port, options);
  auto health = client.Health();
  // Every attempt is refused; what matters is the bounded failure (not
  // an exception or a hang) with the connect error surfaced.
  ASSERT_FALSE(health.ok());
  EXPECT_EQ(health.status().code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace net
}  // namespace auditdb
