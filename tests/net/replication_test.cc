#include "src/net/replication.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "src/net/wire.h"
#include "src/querylog/wal.h"

namespace auditdb {
namespace net {
namespace {

using std::chrono::milliseconds;

TEST(ReplAckPolicyTest, ParseAndName) {
  auto none = ParseReplAckPolicy("none");
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(*none, ReplAckPolicy::kNone);
  auto quorum = ParseReplAckPolicy("quorum");
  ASSERT_TRUE(quorum.ok());
  EXPECT_EQ(*quorum, ReplAckPolicy::kQuorum);
  auto all = ParseReplAckPolicy("all");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(*all, ReplAckPolicy::kAll);
  EXPECT_FALSE(ParseReplAckPolicy("most").ok());
  EXPECT_FALSE(ParseReplAckPolicy("").ok());
  EXPECT_EQ(std::string(ReplAckPolicyName(ReplAckPolicy::kQuorum)),
            "quorum");
}

TEST(ParseHostPortTest, Forms) {
  auto parsed = ParseHostPort("127.0.0.1:8080");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->first, "127.0.0.1");
  EXPECT_EQ(parsed->second, 8080);
  EXPECT_FALSE(ParseHostPort("127.0.0.1").ok());
  EXPECT_FALSE(ParseHostPort(":8080").ok());
  EXPECT_FALSE(ParseHostPort("host:").ok());
  EXPECT_FALSE(ParseHostPort("host:notaport").ok());
  EXPECT_FALSE(ParseHostPort("host:99999").ok());
  EXPECT_FALSE(ParseHostPort("").ok());
}

TEST(NotPrimaryTest, StatusRoundTripsThePrimaryAddress) {
  Status status = MakeNotPrimaryStatus("10.0.0.7:4321");
  EXPECT_TRUE(IsNotPrimaryStatus(status));
  EXPECT_EQ(NotPrimaryAddress(status), "10.0.0.7:4321");
  // Unknown primary (freshly promoted cluster mid-shuffle): still a
  // NOT_PRIMARY, with no address to follow.
  Status unknown = MakeNotPrimaryStatus("");
  EXPECT_TRUE(IsNotPrimaryStatus(unknown));
  EXPECT_EQ(NotPrimaryAddress(unknown), "");
  EXPECT_FALSE(IsNotPrimaryStatus(Status::InvalidArgument("nope")));
  EXPECT_FALSE(IsNotPrimaryStatus(Status::Ok()));
}

TEST(ReplicateCodecTest, WalEventRoundTrips) {
  LoggedQuery entry;
  entry.id = 42;
  entry.timestamp = Timestamp(123456);
  entry.user = "alice|pipe";
  entry.role = "Nurse";
  entry.purpose = "care\nnewline";
  entry.sql = "SELECT name FROM P-Personal WHERE pid = 'p|1'";
  std::string framed = querylog::EncodeWalRecord(
      querylog::WalRecordType::kQuery,
      querylog::EncodeQueryWalPayload(entry));

  auto event = DecodeReplicateEvent(EncodeReplicateWal(framed));
  ASSERT_TRUE(event.ok()) << event.status().ToString();
  EXPECT_EQ(event->kind, ReplicateEvent::Kind::kWal);
  EXPECT_EQ(event->wal_record, framed);

  // The shipped bytes CRC-validate and decode back to the entry.
  querylog::WalRecordType type;
  std::string payload;
  size_t consumed = 0;
  auto decoded =
      querylog::DecodeWalRecord(event->wal_record, &type, &payload,
                                &consumed);
  ASSERT_TRUE(decoded.ok());
  ASSERT_TRUE(*decoded);
  EXPECT_EQ(consumed, framed.size());
  auto logged = querylog::DecodeQueryWalPayload(payload);
  ASSERT_TRUE(logged.ok());
  EXPECT_EQ(logged->id, 42);
  EXPECT_EQ(logged->user, "alice|pipe");
  EXPECT_EQ(logged->sql, entry.sql);
}

TEST(ReplicateCodecTest, CheckpointEventCarriesDumpsGenerationAndStamp) {
  std::string db_dump = "TABLE P-Personal|pid:string\nROW p1\n";
  std::string log_dump = "QUERY 1|5|u|r|p|SELECT 1\n";
  auto event = DecodeReplicateEvent(EncodeReplicateCheckpoint(
      db_dump, log_dump, /*load_generation=*/7,
      /*stamp_micros=*/1000000));
  ASSERT_TRUE(event.ok()) << event.status().ToString();
  EXPECT_EQ(event->kind, ReplicateEvent::Kind::kCheckpoint);
  EXPECT_EQ(event->db_dump, db_dump);
  EXPECT_EQ(event->log_dump, log_dump);
  EXPECT_EQ(event->load_generation, 7u);
  EXPECT_EQ(event->stamp_micros, 1000000);
}

TEST(ReplicateCodecTest, LoadEventRoundTrips) {
  auto event = DecodeReplicateEvent(EncodeReplicateLoad(
      "db", "TABLE t|c:string\n", /*load_generation=*/3,
      /*stamp_micros=*/42));
  ASSERT_TRUE(event.ok());
  EXPECT_EQ(event->kind, ReplicateEvent::Kind::kLoad);
  EXPECT_EQ(event->load_kind, "db");
  EXPECT_EQ(event->load_dump, "TABLE t|c:string\n");
  EXPECT_EQ(event->load_generation, 3u);
  EXPECT_EQ(event->stamp_micros, 42);
}

TEST(ReplicateCodecTest, MalformedEventsAreRejected) {
  EXPECT_FALSE(DecodeReplicateEvent("").ok());
  EXPECT_FALSE(DecodeReplicateEvent("bogus|x").ok());
  EXPECT_FALSE(DecodeReplicateEvent("wal").ok());          // no record
  EXPECT_FALSE(DecodeReplicateEvent("ckpt|db|log|x|1").ok());  // bad gen
  EXPECT_FALSE(DecodeReplicateEvent("load|db|d|1|notanum").ok());
}

TEST(ReplicateHandshakeTest, RoundTrips) {
  ReplicateHandshake handshake;
  handshake.applied_log_id = 17;
  handshake.have_state = true;
  handshake.load_generation = 4;
  auto decoded =
      DecodeReplicateHandshake(EncodeReplicateHandshake(handshake));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->applied_log_id, 17);
  EXPECT_TRUE(decoded->have_state);
  EXPECT_EQ(decoded->load_generation, 4u);
  EXPECT_FALSE(DecodeReplicateHandshake("").ok());
  EXPECT_FALSE(DecodeReplicateHandshake("1|2").ok());
  EXPECT_FALSE(DecodeReplicateHandshake("x|0|0").ok());
}

// The satellite contract: a CRC-valid record whose id skips ahead means
// records were lost on the stream — the follower must re-sync, never
// silently apply past a gap.
TEST(ShipDecisionTest, DuplicateApplyAndGapSemantics) {
  EXPECT_EQ(DecideShippedQuery(/*applied=*/5, /*record=*/5),
            ShipDecision::kDuplicate);
  EXPECT_EQ(DecideShippedQuery(5, 3), ShipDecision::kDuplicate);
  EXPECT_EQ(DecideShippedQuery(5, 6), ShipDecision::kApply);
  EXPECT_EQ(DecideShippedQuery(5, 7), ShipDecision::kResync);
  EXPECT_EQ(DecideShippedQuery(0, 1), ShipDecision::kApply);
  EXPECT_EQ(DecideShippedQuery(0, 2), ShipDecision::kResync);
}

TEST(ReplicationHubTest, ShipQueuesPerFollowerAndDrainsInOrder) {
  ReplicationHub hub;
  hub.RegisterFollower(1, /*acked_log_id=*/0, {});
  hub.RegisterFollower(2, /*acked_log_id=*/0, {});
  EXPECT_EQ(hub.follower_count(), 2u);
  EXPECT_TRUE(hub.IsFollower(1));
  EXPECT_FALSE(hub.IsFollower(3));

  PublishOutcome outcome = hub.Ship(1, "frame-a");
  EXPECT_EQ(outcome.ready_conns.size(), 2u);
  EXPECT_TRUE(outcome.evict_conns.empty());
  hub.Ship(2, "frame-b");
  EXPECT_EQ(hub.last_shipped(), 2);
  EXPECT_EQ(hub.TotalPending(), 4u);

  std::string out;
  size_t taken = hub.DrainFrames(1, /*max_bytes=*/1 << 20, &out);
  EXPECT_EQ(taken, 2u);
  EXPECT_EQ(out, "frame-aframe-b");
  EXPECT_FALSE(hub.HasPending(1));
  EXPECT_TRUE(hub.HasPending(2));
}

TEST(ReplicationHubTest, RegisteredBacklogDrainsBeforeShippedFrames) {
  ReplicationHub hub;
  hub.RegisterFollower(1, 0, {"old-1", "old-2"});
  hub.Ship(3, "new-3");
  std::string out;
  EXPECT_EQ(hub.DrainFrames(1, 1 << 20, &out), 3u);
  EXPECT_EQ(out, "old-1old-2new-3");
}

TEST(ReplicationHubTest, OverflowEvictsTheFollowerAndBoundsDivergence) {
  ReplicationHub hub(/*max_buffered_records=*/2);
  hub.RegisterFollower(1, 0, {});
  hub.Ship(1, "a");
  hub.Ship(2, "b");
  // Third undrained frame crosses the bound: the follower is dropped
  // and flagged for eviction rather than buffering without limit.
  PublishOutcome outcome = hub.Ship(3, "c");
  ASSERT_EQ(outcome.evict_conns.size(), 1u);
  EXPECT_EQ(outcome.evict_conns[0], 1u);
  EXPECT_EQ(hub.follower_count(), 0u);
  EXPECT_FALSE(hub.IsFollower(1));
}

TEST(ReplicationHubTest, WaitForAcksNonePolicyIsImmediate) {
  ReplicationHub hub;
  hub.RegisterFollower(1, 0, {});
  EXPECT_TRUE(
      hub.WaitForAcks(5, ReplAckPolicy::kNone, milliseconds(0)).ok());
}

TEST(ReplicationHubTest, QuorumCountsFollowerAcks) {
  ReplicationHub hub;
  hub.RegisterFollower(1, 0, {});
  hub.RegisterFollower(2, 0, {});
  hub.Ship(1, "f");
  // Quorum over primary+2 followers = 1 follower ack.
  Status timed_out =
      hub.WaitForAcks(1, ReplAckPolicy::kQuorum, milliseconds(30));
  EXPECT_EQ(timed_out.code(), StatusCode::kDeadlineExceeded);

  std::thread acker([&hub] {
    std::this_thread::sleep_for(milliseconds(20));
    hub.Ack(1, 1);
  });
  EXPECT_TRUE(
      hub.WaitForAcks(1, ReplAckPolicy::kQuorum, milliseconds(2000)).ok());
  acker.join();
  // kAll still wants follower 2.
  EXPECT_EQ(hub.WaitForAcks(1, ReplAckPolicy::kAll, milliseconds(30)).code(),
            StatusCode::kDeadlineExceeded);
  hub.Ack(2, 1);
  EXPECT_TRUE(
      hub.WaitForAcks(1, ReplAckPolicy::kAll, milliseconds(2000)).ok());
}

TEST(ReplicationHubTest, DroppedFollowerWakesWaitersAndShrinksQuorum) {
  ReplicationHub hub;
  hub.RegisterFollower(1, 0, {});
  hub.RegisterFollower(2, 0, {});
  hub.Ship(1, "f");
  hub.Ack(2, 1);
  std::thread dropper([&hub] {
    std::this_thread::sleep_for(milliseconds(20));
    hub.DropConnection(1);
  });
  // With follower 1 gone, kAll = {follower 2}, already acked.
  EXPECT_TRUE(
      hub.WaitForAcks(1, ReplAckPolicy::kAll, milliseconds(2000)).ok());
  dropper.join();
}

TEST(ReplicationHubTest, NoFollowersSatisfiesEveryPolicy) {
  ReplicationHub hub;
  // A cluster of one: quorum of {primary} is the primary itself.
  EXPECT_TRUE(
      hub.WaitForAcks(9, ReplAckPolicy::kQuorum, milliseconds(0)).ok());
  EXPECT_TRUE(hub.WaitForAcks(9, ReplAckPolicy::kAll, milliseconds(0)).ok());
}

TEST(ReplicationHubTest, MetricsJsonCarriesFollowerLag) {
  ReplicationHub hub;
  hub.RegisterFollower(7, 0, {});
  hub.Ship(1, "frame");
  std::string json = hub.MetricsJson();
  EXPECT_NE(json.find("\"last_shipped\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"followers_active\":1"), std::string::npos);
  EXPECT_NE(json.find("\"lag_records\""), std::string::npos);
  hub.Ack(7, 1);
  json = hub.MetricsJson();
  EXPECT_NE(json.find("\"acked\":1"), std::string::npos) << json;
}

}  // namespace
}  // namespace net
}  // namespace auditdb
