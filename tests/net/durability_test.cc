#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/io/file.h"
#include "src/io/store.h"
#include "src/net/client.h"
#include "src/net/server.h"
#include "src/workload/hospital.h"

namespace auditdb {
namespace net {
namespace {

Timestamp Ts(int64_t s) { return Timestamp(s * 1000000); }

std::string ScratchDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "auditdb_net_durable_" + name;
  io::Env* env = io::Env::Default();
  if (env->FileExists(dir)) {
    auto names = env->ListDir(dir);
    if (names.ok()) {
      for (const auto& entry : *names) {
        env->DeleteFile(io::JoinPath(dir, entry));
      }
    }
  }
  EXPECT_TRUE(env->CreateDirIfMissing(dir).ok());
  return dir;
}

/// A hospital world served with a durable store attached, so tests can
/// crash-and-recover the served state.
struct DurableWorld {
  Database db;
  Backlog backlog;
  QueryLog log;
  std::unique_ptr<io::DurableStore> store;
  std::unique_ptr<service::AuditService> service;
  std::unique_ptr<AuditServer> server;

  explicit DurableWorld(io::Env* env, const std::string& dir,
                        size_t patients = 12) {
    backlog.Attach(&db);
    if (patients > 0) {
      workload::HospitalConfig hospital;
      hospital.num_patients = patients;
      hospital.seed = 2008;
      EXPECT_TRUE(workload::PopulateHospital(&db, hospital, Ts(1)).ok());
    }
    auto opened = io::DurableStore::Open(env, dir, &db, &log, Ts(1));
    EXPECT_TRUE(opened.ok()) << opened.status().ToString();
    store = std::move(*opened);
    service = std::make_unique<service::AuditService>(&db, &backlog, &log);
    AuditServerOptions options;
    options.durable_store = store.get();
    server = std::make_unique<AuditServer>(service.get(), &db, &backlog,
                                           &log, options);
    Status started = server->Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
  }
};

/// Recovers the data dir into fresh stores and returns the log.
void Recover(const std::string& dir, Database* db, QueryLog* log) {
  auto store =
      io::DurableStore::Open(io::Env::Default(), dir, db, log, Ts(1));
  ASSERT_TRUE(store.ok()) << store.status().ToString();
}

TEST(DurableServerTest, AckedExecuteQueriesSurviveACrashWithoutCheckpoint) {
  std::string dir = ScratchDir("exec");
  {
    DurableWorld world(io::Env::Default(), dir);
    AuditClient client(world.server->host(), world.server->port());
    for (int i = 0; i < 3; ++i) {
      auto result = client.ExecuteQuery(
          "SELECT name FROM P-Personal WHERE pid = 'p" +
              std::to_string(i) + "'",
          "alice", "Nurse", "treatment", Ts(100 + i));
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      EXPECT_EQ(result->log_id, i + 1);
    }
    // Health carries the durability vitals.
    auto health = client.Health();
    ASSERT_TRUE(health.ok());
    EXPECT_NE(health->find("ok|durable"), std::string::npos) << *health;
    EXPECT_NE(health->find("wal_records=3"), std::string::npos) << *health;
    EXPECT_NE(health->find("last_checkpoint_seq=1"), std::string::npos);
    auto metrics = client.MetricsJson();
    ASSERT_TRUE(metrics.ok());
    EXPECT_NE(metrics->find("\"durability\""), std::string::npos);
    EXPECT_NE(metrics->find("\"wal_records\":3"), std::string::npos);
    // "Crash": tear the server and store down with no final checkpoint.
    world.server->Shutdown();
  }
  Database db;
  QueryLog log;
  Recover(dir, &db, &log);
  ASSERT_EQ(log.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(log.Entry(i).sql,
              "SELECT name FROM P-Personal WHERE pid = 'p" +
                  std::to_string(i) + "'");
    EXPECT_EQ(log.Entry(i).user, "alice");
    EXPECT_EQ(log.Entry(i).timestamp.micros(), Ts(100 + i).micros());
  }

  // The recovered state is servable and auditable: bring a second
  // daemon up on the same data dir and audit the crashed-then-recovered
  // log over the wire.
  DurableWorld revived(io::Env::Default(), dir, /*patients=*/0);
  EXPECT_EQ(revived.log.size(), 3u);
  AuditClient again(revived.server->host(), revived.server->port());
  auto audited = again.Audit(
      "DURING 1/1/1970 to 2/1/1970 "
      "DATA-INTERVAL 1/1/1970 to 2/1/1970 "
      "AUDIT (name) FROM P-Personal WHERE pid = 'p1'",
      Ts(1000000));
  EXPECT_TRUE(audited.ok()) << audited.status().ToString();
}

TEST(DurableServerTest, CorruptLoadDumpOverTheWireNeverReachesDisk) {
  std::string dir = ScratchDir("corrupt_load");
  {
    DurableWorld world(io::Env::Default(), dir);
    AuditClient client(world.server->host(), world.server->port());
    auto ok = client.ExecuteQuery("SELECT name FROM P-Personal", "a", "Nurse",
                                  "care", Ts(50));
    ASSERT_TRUE(ok.ok());

    // A dump that parses partway then dies: the server must answer with
    // the parse error and must NOT checkpoint the poisoned state.
    Status corrupt = client.LoadQueryLogDump(
        "QUERY 2|123|u|r|p|SELECT smuggled FROM P-Personal\n"
        "QUERY not-even-close\n");
    EXPECT_EQ(corrupt.code(), StatusCode::kParseError)
        << corrupt.ToString();

    // Garbage database dumps are refused the same way.
    Status bad_db = client.LoadDatabaseDump("TABLE ???\nnot a dump",
                                            Ts(51));
    EXPECT_FALSE(bad_db.ok());
    world.server->Shutdown();
  }
  Database db;
  QueryLog log;
  Recover(dir, &db, &log);
  // Only the acked ExecuteQuery survived; nothing from the corrupt
  // dumps reached the durable store.
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log.Entry(0).sql, "SELECT name FROM P-Personal");
}

TEST(DurableServerTest, ValidLoadDumpIsCheckpointedImmediately) {
  std::string dir = ScratchDir("good_load");
  {
    DurableWorld world(io::Env::Default(), dir);
    AuditClient client(world.server->host(), world.server->port());
    ASSERT_TRUE(
        client.LoadQueryLogDump("QUERY 1|777|bob|Doctor|care|SELECT "
                                "disease FROM P-Health\n")
            .ok());
    auto health = client.Health();
    ASSERT_TRUE(health.ok());
    // The load forced checkpoint 2; the WAL restarted empty.
    EXPECT_NE(health->find("last_checkpoint_seq=2"), std::string::npos)
        << *health;
    EXPECT_NE(health->find("wal_records=0"), std::string::npos);
    world.server->Shutdown();
  }
  Database db;
  QueryLog log;
  Recover(dir, &db, &log);
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log.Entry(0).user, "bob");
  EXPECT_EQ(log.Entry(0).timestamp.micros(), 777);
}

// Once the WAL cannot be written, the server must refuse to ack rather
// than ack writes it cannot promise: a wedged store turns every
// ExecuteQuery into an error and flips Health to "wedged".
TEST(DurableServerTest, WedgedStoreRefusesAcksAndReportsUnhealthy) {
  std::string dir = ScratchDir("wedged");
  io::FaultInjectingEnv env(io::Env::Default());
  DurableWorld world(&env, dir);
  AuditClient client(world.server->host(), world.server->port());
  ASSERT_TRUE(client
                  .ExecuteQuery("SELECT name FROM P-Personal", "a", "Nurse",
                                "care", Ts(50))
                  .ok());
  // Fail the next IO op (the WAL append behind the next ExecuteQuery).
  env.FailAtOp(env.ops_recorded(), 0, "injected disk failure");
  auto refused = client.ExecuteQuery("SELECT name FROM P-Personal", "a",
                                     "Nurse", "care", Ts(51));
  ASSERT_FALSE(refused.ok());
  EXPECT_NE(refused.status().message().find("injected disk failure"),
            std::string::npos)
      << refused.status().ToString();
  // The store is wedged: later writes refuse even though IO recovered.
  auto still_refused = client.ExecuteQuery("SELECT name FROM P-Personal",
                                           "a", "Nurse", "care", Ts(52));
  ASSERT_FALSE(still_refused.ok());
  EXPECT_NE(still_refused.status().message().find("wedged"),
            std::string::npos);
  auto health = client.Health();
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->rfind("wedged|durable", 0), 0u) << *health;
  // Reads still serve: the daemon degrades to read-only, not down.
  EXPECT_TRUE(client.MetricsJson().ok());
}

}  // namespace
}  // namespace net
}  // namespace auditdb
