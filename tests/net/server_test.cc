#include "src/net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/audit/auditor.h"
#include "src/io/dump.h"
#include "src/net/client.h"
#include "src/workload/generator.h"
#include "src/workload/hospital.h"

namespace auditdb {
namespace net {
namespace {

using std::chrono::milliseconds;

Timestamp Ts(int64_t s) { return Timestamp(s * 1000000); }

const char kAudit[] =
    "DURING 1/1/1970 to 2/1/1970 "
    "DATA-INTERVAL 1/1/1970 to 2/1/1970 "
    "AUDIT (name,disease) FROM P-Personal, P-Health "
    "WHERE P-Personal.pid = P-Health.pid AND disease='diabetic'";

// Not subsumed by kAudit (disjoint predicate), so a library holding both
// keeps two members.
const char kAuditAnemia[] =
    "DURING 1/1/1970 to 2/1/1970 "
    "DATA-INTERVAL 1/1/1970 to 2/1/1970 "
    "AUDIT (name,disease) FROM P-Personal, P-Health "
    "WHERE P-Personal.pid = P-Health.pid AND disease='anemia'";

/// A hospital world plus a server bound to it on an ephemeral port.
struct ServedWorld {
  Database db;
  Backlog backlog;
  QueryLog log;
  std::unique_ptr<service::AuditService> service;
  std::unique_ptr<AuditServer> server;

  explicit ServedWorld(AuditServerOptions options = AuditServerOptions{},
                       size_t patients = 60, size_t queries = 150) {
    backlog.Attach(&db);
    if (patients > 0) {
      workload::HospitalConfig hospital;
      hospital.num_patients = patients;
      hospital.seed = 2008;
      EXPECT_TRUE(workload::PopulateHospital(&db, hospital, Ts(1)).ok());
      workload::WorkloadConfig workload;
      workload.num_queries = queries;
      workload.start = Ts(100);
      EXPECT_TRUE(
          workload::GenerateWorkload(&log, workload, hospital).ok());
    }
    service = std::make_unique<service::AuditService>(&db, &backlog, &log);
    server = std::make_unique<AuditServer>(service.get(), &db, &backlog,
                                           &log, options);
    Status started = server->Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
  }
};

/// Blocking loopback socket for protocol-level (mis)behavior tests.
int DialRaw(const AuditServer& server) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  EXPECT_EQ(::inet_pton(AF_INET, server.host().c_str(), &addr.sin_addr), 1);
  EXPECT_EQ(
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0)
      << strerror(errno);
  return fd;
}

/// Reads response frames until EOF (or a protocol error on our side).
std::vector<Message> ReadUntilEof(int fd) {
  std::vector<Message> frames;
  FrameReader reader;
  char buf[8192];
  while (true) {
    auto next = reader.Next();
    if (!next.ok()) break;
    if (next->has_value()) {
      frames.push_back(std::move(**next));
      continue;
    }
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    reader.Feed(buf, static_cast<size_t>(n));
  }
  return frames;
}

uint64_t CounterFromJson(const std::string& json, const std::string& name) {
  auto pos = json.find("\"" + name + "\":");
  if (pos == std::string::npos) return 0;
  pos += name.size() + 3;
  uint64_t value = 0;
  while (pos < json.size() && json[pos] >= '0' && json[pos] <= '9') {
    value = value * 10 + static_cast<uint64_t>(json[pos++] - '0');
  }
  return value;
}

bool WaitForCounter(const AuditServer& server, const std::string& name,
                    uint64_t at_least, milliseconds budget) {
  auto deadline = std::chrono::steady_clock::now() + budget;
  while (std::chrono::steady_clock::now() < deadline) {
    if (CounterFromJson(server.MetricsJson(), name) >= at_least) {
      return true;
    }
    std::this_thread::sleep_for(milliseconds(2));
  }
  return false;
}

// --- Happy paths -----------------------------------------------------

TEST(AuditServerTest, HealthAndMetrics) {
  ServedWorld world(AuditServerOptions{}, /*patients=*/0, /*queries=*/0);
  AuditClient client(world.server->host(), world.server->port());
  auto health = client.Health();
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_EQ(*health, "ok");
  auto metrics = client.MetricsJson();
  ASSERT_TRUE(metrics.ok());
  EXPECT_NE(metrics->find("\"server\""), std::string::npos);
  EXPECT_NE(metrics->find("\"service\""), std::string::npos);
  EXPECT_NE(metrics->find("net.frames_received"), std::string::npos);
  // The decision-cache counters ride along as the "index" section.
  EXPECT_NE(metrics->find("\"index\""), std::string::npos);
  EXPECT_NE(metrics->find("\"cache_hits\""), std::string::npos);
}

TEST(AuditServerTest, RemoteAuditMatchesSerialAuditorByteForByte) {
  ServedWorld world;
  audit::Auditor auditor(&world.db, &world.backlog, &world.log);
  auto serial = auditor.Audit(kAudit, Ts(1000000));
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();

  AuditClient client(world.server->host(), world.server->port());
  auto remote = client.Audit(kAudit, Ts(1000000));
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  EXPECT_EQ(remote->canonical, serial->CanonicalString());
  // The detailed report embeds wall-clock phase timings, so only its
  // shape is checked; the canonical string is the byte-stable contract.
  EXPECT_NE(remote->detailed.find("AUDIT REPORT"), std::string::npos);
  EXPECT_NE(remote->detailed.find("batch verdict"), std::string::npos);

  // The static-analysis-only pipeline travels the same path.
  audit::AuditOptions static_options;
  static_options.static_only = true;
  auto serial_static = auditor.Audit(kAudit, Ts(1000000), static_options);
  ASSERT_TRUE(serial_static.ok());
  auto remote_static =
      client.Audit(kAudit, Ts(1000000), /*static_only=*/true);
  ASSERT_TRUE(remote_static.ok()) << remote_static.status().ToString();
  EXPECT_EQ(remote_static->canonical, serial_static->CanonicalString());
}

TEST(AuditServerTest, ConcurrentClientsAllGetIdenticalReports) {
  ServedWorld world;
  audit::Auditor auditor(&world.db, &world.backlog, &world.log);
  auto serial = auditor.Audit(kAudit, Ts(1000000));
  ASSERT_TRUE(serial.ok());
  std::string expected = serial->CanonicalString();

  std::atomic<int> mismatches{0}, failures{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < 8; ++c) {
    threads.emplace_back([&] {
      AuditClient client(world.server->host(), world.server->port());
      for (int i = 0; i < 3; ++i) {
        auto remote = client.Audit(kAudit, Ts(1000000));
        if (!remote.ok()) {
          failures.fetch_add(1);
        } else if (remote->canonical != expected) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(AuditServerTest, ScreenLibraryMatchesSerialScreenings) {
  ServedWorld world;
  audit::Auditor auditor(&world.db, &world.backlog, &world.log);
  auto serial_a = auditor.Audit(kAudit, Ts(1000000));
  auto serial_b = auditor.Audit(kAuditAnemia, Ts(1000000));
  ASSERT_TRUE(serial_a.ok() && serial_b.ok());

  AuditClient client(world.server->host(), world.server->port());
  auto screenings =
      client.ScreenLibrary({kAudit, kAuditAnemia}, Ts(1000000));
  ASSERT_TRUE(screenings.ok()) << screenings.status().ToString();
  ASSERT_EQ(screenings->size(), 2u);
  std::vector<std::string> canonicals;
  for (const auto& screening : *screenings) {
    ASSERT_TRUE(screening.status.ok()) << screening.status.ToString();
    canonicals.push_back(screening.canonical);
  }
  EXPECT_NE(canonicals[0], canonicals[1]);
  for (const std::string& expected :
       {serial_a->CanonicalString(), serial_b->CanonicalString()}) {
    EXPECT_TRUE(canonicals[0] == expected || canonicals[1] == expected)
        << expected;
  }
}

TEST(AuditServerTest, ExecuteQueryAppendsToServedLog) {
  ServedWorld world;
  size_t before = world.log.size();
  AuditClient client(world.server->host(), world.server->port());
  auto result = client.ExecuteQuery(
      "SELECT name FROM P-Personal, P-Health "
      "WHERE P-Personal.pid = P-Health.pid AND disease = 'diabetic'",
      "mallory", "clerk", "billing", Ts(900000));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->num_rows, 0u);
  ASSERT_EQ(world.log.size(), before + 1);
  const auto& entry = world.log.Entry(world.log.size() - 1);
  EXPECT_EQ(entry.user, "mallory");
  EXPECT_EQ(entry.timestamp, Ts(900000));

  // A bad query is an error response, not an appended entry.
  auto bad = client.ExecuteQuery("SELECT nope FROM NoSuchTable", "u", "r",
                                 "p", Ts(900001));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(world.log.size(), before + 1);
}

TEST(AuditServerTest, LoadDumpThenRemoteAuditMatchesOrigin) {
  // Origin world, dumped to text.
  Database db;
  Backlog backlog;
  backlog.Attach(&db);
  QueryLog log;
  workload::HospitalConfig hospital;
  hospital.num_patients = 40;
  hospital.seed = 2008;
  ASSERT_TRUE(workload::PopulateHospital(&db, hospital, Ts(1)).ok());
  workload::WorkloadConfig workload;
  workload.num_queries = 80;
  workload.start = Ts(100);
  ASSERT_TRUE(workload::GenerateWorkload(&log, workload, hospital).ok());
  std::stringstream db_dump, log_dump;
  ASSERT_TRUE(io::WriteDatabaseDump(db, db_dump).ok());
  ASSERT_TRUE(io::WriteQueryLogDump(log, log_dump).ok());
  audit::Auditor auditor(&db, &backlog, &log);
  auto serial = auditor.Audit(kAudit, Ts(1000000));
  ASSERT_TRUE(serial.ok());

  // An empty served world, populated over the wire.
  ServedWorld world(AuditServerOptions{}, /*patients=*/0, /*queries=*/0);
  AuditClient client(world.server->host(), world.server->port());
  ASSERT_TRUE(client.LoadDatabaseDump(db_dump.str(), Ts(1)).ok());
  ASSERT_TRUE(client.LoadQueryLogDump(log_dump.str()).ok());
  auto remote = client.Audit(kAudit, Ts(1000000));
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  EXPECT_EQ(remote->canonical, serial->CanonicalString());
}

TEST(AuditServerTest, PipelinedRequestsAnswerInOrder) {
  ServedWorld world(AuditServerOptions{}, /*patients=*/0, /*queries=*/0);
  int fd = DialRaw(*world.server);
  std::string wire;
  for (int i = 0; i < 10; ++i) {
    wire += EncodeFrame({MessageType::kHealthRequest,
                         "ping " + std::to_string(i)});
  }
  ASSERT_EQ(::send(fd, wire.data(), wire.size(), 0),
            static_cast<ssize_t>(wire.size()));
  FrameReader reader;
  char buf[4096];
  std::vector<Message> responses;
  while (responses.size() < 10) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    ASSERT_GT(n, 0);
    reader.Feed(buf, static_cast<size_t>(n));
    while (true) {
      auto next = reader.Next();
      ASSERT_TRUE(next.ok());
      if (!next->has_value()) break;
      responses.push_back(std::move(**next));
    }
  }
  for (const auto& response : responses) {
    EXPECT_EQ(response.type, MessageType::kOkResponse);
    EXPECT_EQ(response.payload, "ok");
  }
  ::close(fd);
}

// Regression: frames pipelined past max_pipelined used to sit in the
// connection's FrameReader forever — the unpause path only re-armed
// EPOLLIN, and with the socket already drained no event ever fired.
TEST(AuditServerTest, BurstFarBeyondPipelineCap) {
  AuditServerOptions options;
  options.max_pipelined = 4;
  ServedWorld world(options, /*patients=*/0, /*queries=*/0);
  int fd = DialRaw(*world.server);
  constexpr int kRequests = 64;
  std::string wire;
  for (int i = 0; i < kRequests; ++i) {
    wire += EncodeFrame({MessageType::kHealthRequest,
                         "burst " + std::to_string(i)});
  }
  ASSERT_EQ(::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(wire.size()));
  FrameReader reader;
  char buf[8192];
  int responses = 0;
  while (responses < kRequests) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    ASSERT_GT(n, 0) << "server stalled after " << responses
                    << " responses";
    reader.Feed(buf, static_cast<size_t>(n));
    while (true) {
      auto next = reader.Next();
      ASSERT_TRUE(next.ok());
      if (!next->has_value()) break;
      EXPECT_EQ((*next)->type, MessageType::kOkResponse);
      ++responses;
    }
  }
  EXPECT_EQ(responses, kRequests);
  ::close(fd);
}

// --- Protocol violations and resource limits -------------------------

TEST(AuditServerTest, OversizedFrameIsRejectedAndConnectionCloses) {
  AuditServerOptions options;
  options.max_frame_bytes = 1024;
  ServedWorld world(options, /*patients=*/0, /*queries=*/0);
  int fd = DialRaw(*world.server);
  std::string wire =
      EncodeFrame({MessageType::kHealthRequest, std::string(4096, 'x')});
  ASSERT_EQ(::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(wire.size()));
  auto frames = ReadUntilEof(fd);  // error response, then EOF
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].type, MessageType::kErrorResponse);
  EXPECT_EQ(DecodeErrorMessage(frames[0].payload).code(),
            StatusCode::kOutOfRange);
  ::close(fd);
  EXPECT_GE(CounterFromJson(world.server->MetricsJson(),
                            "net.oversized_frames"),
            1u);
}

TEST(AuditServerTest, GarbageBytesCloseTheConnection) {
  ServedWorld world(AuditServerOptions{}, /*patients=*/0, /*queries=*/0);
  int fd = DialRaw(*world.server);
  const char junk[] = "GET / HTTP/1.1\r\nHost: nope\r\n\r\n";
  ASSERT_GT(::send(fd, junk, sizeof(junk) - 1, MSG_NOSIGNAL), 0);
  auto frames = ReadUntilEof(fd);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].type, MessageType::kErrorResponse);
  ::close(fd);
  EXPECT_GE(
      CounterFromJson(world.server->MetricsJson(), "net.frame_errors"),
      1u);
}

// A framing error arriving while an earlier request executes must not
// jump the queue: the dying connection still answers in request order.
TEST(AuditServerTest, FramingErrorWaitsForInFlightResponse) {
  ServedWorld world;
  int fd = DialRaw(*world.server);
  std::string wire = EncodeFrame(
      {MessageType::kAuditRequest,
       EncodeFields({kAudit, std::to_string(Ts(1000000).micros())})});
  ASSERT_EQ(::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(wire.size()));
  // Wait until the audit request is parsed (and thus handed to a
  // handler) before the garbage arrives, so the violation lands on a
  // busy connection.
  ASSERT_TRUE(WaitForCounter(*world.server, "net.frames_received", 1,
                             milliseconds(5000)));
  const char junk[] = "NOT A FRAME";
  ASSERT_EQ(::send(fd, junk, sizeof(junk) - 1, MSG_NOSIGNAL),
            static_cast<ssize_t>(sizeof(junk) - 1));
  auto frames = ReadUntilEof(fd);
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].type, MessageType::kOkResponse);
  EXPECT_EQ(frames[1].type, MessageType::kErrorResponse);
  EXPECT_EQ(DecodeErrorMessage(frames[1].payload).code(),
            StatusCode::kParseError);
  ::close(fd);
}

TEST(AuditServerTest, OversizedResponseBecomesErrorConnectionSurvives) {
  AuditServerOptions options;
  options.max_response_bytes = 128;
  ServedWorld world(options, /*patients=*/0, /*queries=*/0);
  AuditClient client(world.server->host(), world.server->port());
  // The metrics JSON dwarfs 128 bytes: the reply degrades to OutOfRange
  // instead of a frame the client's reader would refuse.
  auto metrics = client.MetricsJson();
  ASSERT_FALSE(metrics.ok());
  EXPECT_EQ(metrics.status().code(), StatusCode::kOutOfRange);
  // The stream stayed in sync; small responses keep flowing.
  EXPECT_TRUE(client.Health().ok());
  EXPECT_GE(CounterFromJson(world.server->MetricsJson(),
                            "net.oversized_responses"),
            1u);
}

TEST(AuditServerTest, OversizedExecuteResponseDoesNotAppendToLog) {
  AuditServerOptions options;
  options.max_response_bytes = 32;
  ServedWorld world(options);
  size_t before = world.log.size();
  AuditClient client(world.server->host(), world.server->port());
  auto result = client.ExecuteQuery(
      "SELECT name FROM P-Personal, P-Health "
      "WHERE P-Personal.pid = P-Health.pid AND disease = 'diabetic'",
      "mallory", "clerk", "billing", Ts(900000));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
  // The non-idempotent log append was refused up front, not after.
  EXPECT_EQ(world.log.size(), before);
}

TEST(AuditServerTest, IdleConnectionsAreEvicted) {
  AuditServerOptions options;
  options.idle_timeout = milliseconds(100);
  ServedWorld world(options, /*patients=*/0, /*queries=*/0);
  int fd = DialRaw(*world.server);
  auto frames = ReadUntilEof(fd);  // no request: the server hangs up
  EXPECT_TRUE(frames.empty());
  ::close(fd);
  EXPECT_TRUE(
      WaitForCounter(*world.server, "net.evicted_idle", 1,
                     milliseconds(2000)));
}

TEST(AuditServerTest, ConnectionLimitTurnsExtraClientsAway) {
  AuditServerOptions options;
  options.max_connections = 2;
  ServedWorld world(options, /*patients=*/0, /*queries=*/0);
  AuditClient first(world.server->host(), world.server->port());
  AuditClient second(world.server->host(), world.server->port());
  ASSERT_TRUE(first.Health().ok());
  ASSERT_TRUE(second.Health().ok());

  int fd = DialRaw(*world.server);
  auto frames = ReadUntilEof(fd);  // over-limit: error (best effort) + EOF
  for (const auto& frame : frames) {
    EXPECT_EQ(frame.type, MessageType::kErrorResponse);
  }
  ::close(fd);
  EXPECT_GE(CounterFromJson(world.server->MetricsJson(),
                            "net.connections_rejected"),
            1u);
  // The admitted clients keep working.
  EXPECT_TRUE(first.Health().ok());
}

TEST(AuditServerTest, RejectAdmissionSurfacesResourceExhausted) {
  AuditServerOptions options;
  options.handlers.num_threads = 1;
  options.handlers.queue_capacity = 1;
  options.handlers.admission = service::AdmissionPolicy::kReject;
  ServedWorld world(options);

  std::atomic<int> ok{0}, shed{0}, other{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < 8; ++c) {
    threads.emplace_back([&] {
      AuditClientOptions client_options;
      client_options.retry_idempotent = false;
      AuditClient client(world.server->host(), world.server->port(),
                         client_options);
      for (int i = 0; i < 4; ++i) {
        auto remote = client.Audit(kAudit, Ts(1000000));
        if (remote.ok()) {
          ok.fetch_add(1);
        } else if (remote.status().code() ==
                   StatusCode::kResourceExhausted) {
          shed.fetch_add(1);
        } else {
          other.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(other.load(), 0);
  EXPECT_GT(ok.load(), 0);        // the server kept serving
  EXPECT_GT(shed.load(), 0);      // and admission control pushed back
  EXPECT_GE(CounterFromJson(world.server->MetricsJson(),
                            "net.admission_rejected"),
            static_cast<uint64_t>(shed.load()));
}

// --- Graceful drain --------------------------------------------------

TEST(AuditServerTest, DrainAnswersEveryInFlightRequest) {
  ServedWorld world;
  constexpr int kRequests = 6;
  int fd = DialRaw(*world.server);
  std::string wire;
  std::string payload = EncodeFields(
      {kAudit, std::to_string(Ts(1000000).micros())});
  for (int i = 0; i < kRequests; ++i) {
    wire += EncodeFrame({MessageType::kAuditRequest, payload});
  }
  ASSERT_EQ(::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(wire.size()));
  // Only begin the drain once the server has parsed all six requests.
  ASSERT_TRUE(WaitForCounter(*world.server, "net.frames_received",
                             kRequests, milliseconds(5000)));
  std::thread shutdown([&] { world.server->Shutdown(); });

  auto frames = ReadUntilEof(fd);
  shutdown.join();
  ::close(fd);

  // Zero dropped: every request got a response before the socket closed
  // — completed audits an Ok report, not-yet-started ones a clean
  // Cancelled, never a torn connection.
  ASSERT_EQ(frames.size(), static_cast<size_t>(kRequests));
  int completed = 0, cancelled = 0;
  for (const auto& frame : frames) {
    if (frame.type == MessageType::kOkResponse) {
      ++completed;
    } else {
      Status status = DecodeErrorMessage(frame.payload);
      EXPECT_EQ(status.code(), StatusCode::kCancelled)
          << status.ToString();
      ++cancelled;
    }
  }
  EXPECT_EQ(completed + cancelled, kRequests);
  EXPECT_GE(completed, 1);  // the in-flight request finished its audit
  EXPECT_FALSE(world.server->running());

  // New connections are refused once the listener is down.
  int refused = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(world.server->port());
  ::inet_pton(AF_INET, world.server->host().c_str(), &addr.sin_addr);
  EXPECT_NE(
      ::connect(refused, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
      0);
  ::close(refused);
}

TEST(AuditServerTest, ShutdownIsIdempotentAndRestartIsRejected) {
  ServedWorld world(AuditServerOptions{}, /*patients=*/0, /*queries=*/0);
  world.server->Shutdown();
  world.server->Shutdown();
  EXPECT_FALSE(world.server->running());
  EXPECT_EQ(world.server->Start().code(), StatusCode::kAlreadyExists);
}

}  // namespace
}  // namespace net
}  // namespace auditdb
