/// End-to-end tests for the policy layer riding the wire: rule-routed
/// sink records (with peer addresses from the real socket), suppression
/// and non-match behavior, the redaction contract across every exposed
/// channel (sink lines, wire DetailedReport, push frames), and the
/// byte-identity guarantee — audit verdicts computed over a redacting
/// server match an unredacted serial auditor exactly.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/audit/auditor.h"
#include "src/common/string_util.h"
#include "src/io/dump.h"
#include "src/net/client.h"
#include "src/net/server.h"
#include "src/policy/policy_engine.h"
#include "src/workload/generator.h"
#include "src/workload/hospital.h"

namespace auditdb {
namespace net {
namespace {

using std::chrono::milliseconds;

Timestamp Ts(int64_t s) { return Timestamp(s * 1000000); }

const char kAudit[] =
    "DURING 1/1/1970 to 2/1/1970 "
    "DATA-INTERVAL 1/1/1970 to 2/1/1970 "
    "AUDIT (name,disease) FROM P-Personal, P-Health "
    "WHERE P-Personal.pid = P-Health.pid AND disease='diabetic'";

/// The examples/online_monitor slow-burn expression (see push_test.cc).
const char kSlowBurnAudit[] =
    "DURING 1/1/1970 to 2/1/1970 "
    "AUDIT (name,disease,address) "
    "FROM P-Personal, P-Health, P-Employ "
    "WHERE P-Personal.pid=P-Health.pid AND P-Health.pid=P-Employ.pid "
    "AND P-Personal.zipcode='145568' AND P-Employ.salary > 10000 "
    "AND P-Health.disease='diabetic'";

struct ServedWorld {
  Database db;
  Backlog backlog;
  QueryLog log;
  std::unique_ptr<service::AuditService> service;
  std::unique_ptr<AuditServer> server;

  explicit ServedWorld(AuditServerOptions options = AuditServerOptions{},
                       size_t patients = 60, size_t queries = 150) {
    backlog.Attach(&db);
    if (patients > 0) {
      workload::HospitalConfig hospital;
      hospital.num_patients = patients;
      hospital.seed = 2008;
      EXPECT_TRUE(workload::PopulateHospital(&db, hospital, Ts(1)).ok());
      if (queries > 0) {
        workload::WorkloadConfig workload;
        workload.num_queries = queries;
        workload.start = Ts(100);
        EXPECT_TRUE(
            workload::GenerateWorkload(&log, workload, hospital).ok());
      }
    }
    service = std::make_unique<service::AuditService>(&db, &backlog, &log);
    server = std::make_unique<AuditServer>(service.get(), &db, &backlog,
                                           &log, options);
    Status started = server->Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
  }
};

std::string ScratchDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "auditdb_policy_net_" + name;
  io::Env* env = io::Env::Default();
  if (env->FileExists(dir)) {
    auto names = env->ListDir(dir);
    if (names.ok()) {
      for (const auto& entry : *names) {
        env->DeleteFile(io::JoinPath(dir, entry));
      }
    }
  }
  EXPECT_TRUE(env->CreateDirIfMissing(dir).ok());
  return dir;
}

std::vector<policy::SinkRecord> ReadSinkFile(const std::string& path) {
  std::vector<policy::SinkRecord> records;
  auto text = io::Env::Default()->ReadFileToString(path);
  if (!text.ok()) return records;
  for (const auto& piece : Split(*text, '\n')) {
    if (piece.empty()) continue;
    auto record = policy::ParseSinkLine(std::string(piece));
    EXPECT_TRUE(record.ok()) << piece;
    if (record.ok()) records.push_back(std::move(*record));
  }
  return records;
}

TEST(PolicyNetTest, SinkRecordsRedactSuppressAndIgnore) {
  std::string sink_path = io::JoinPath(ScratchDir("sinks"), "audit.log");

  policy::PolicyEngine engine;
  auto file_sink = policy::FileSink::Open(io::Env::Default(), sink_path);
  ASSERT_TRUE(file_sink.ok());
  ASSERT_TRUE(engine.AttachSink(std::move(*file_sink)).ok());
  ASSERT_TRUE(engine
                  .LoadText(
                      "[rule quiet]\n"
                      "user = quietbot\n"
                      "detail = none\n"
                      "\n"
                      "[rule watch]\n"
                      "user = mallory\n"
                      "remote = 127.0.0.1\n"
                      "log-class = exfil\n"
                      "detail = static-screen\n"
                      "redact = disease\n"
                      "sink = file, metrics\n",
                      Ts(0))
                  .ok());

  AuditServerOptions options;
  options.policy = &engine;
  ServedWorld world(options, /*patients=*/10, /*queries=*/0);
  AuditClient client(world.server->host(), world.server->port());

  const std::string sql =
      "SELECT name FROM P-Personal, P-Health "
      "WHERE P-Personal.pid = P-Health.pid AND disease = 'diabetic'";

  // Matched by [rule watch]: a redacted record reaches the file sink.
  auto watched = client.ExecuteQuery(sql, "mallory", "clerk", "billing",
                                     Ts(500));
  ASSERT_TRUE(watched.ok()) << watched.status().ToString();

  // Matched by [rule quiet]: executes and logs, but no sink record.
  ASSERT_TRUE(
      client.ExecuteQuery(sql, "quietbot", "clerk", "billing", Ts(501)).ok());

  // Matched by nothing: executes and logs, no sink record either.
  ASSERT_TRUE(
      client.ExecuteQuery(sql, "alice", "clerk", "billing", Ts(502)).ok());

  // A rejected statement from a watched user: ERROR-class record with
  // log_id 0 (nothing was appended to the query log).
  size_t log_before = world.log.size();
  EXPECT_FALSE(client
                   .ExecuteQuery("SELECT nope FROM NoSuchTable", "mallory",
                                 "clerk", "billing", Ts(503))
                   .ok());
  EXPECT_EQ(world.log.size(), log_before);

  ASSERT_TRUE(engine.FlushSinks().ok());
  auto records = ReadSinkFile(sink_path);
  ASSERT_EQ(records.size(), 2u);

  const policy::SinkRecord& hit = records[0];
  EXPECT_EQ(hit.rule, "watch");
  EXPECT_EQ(hit.log_class, "exfil");
  EXPECT_EQ(hit.query_class, "select");
  EXPECT_EQ(hit.log_id, watched->log_id);
  EXPECT_EQ(hit.user, "mallory");
  EXPECT_EQ(hit.remote, "127.0.0.1");  // the real accepted peer address
  EXPECT_EQ(hit.tables, "P-Personal,P-Health");
  EXPECT_EQ(hit.sql.find("diabetic"), std::string::npos) << hit.sql;
  EXPECT_NE(hit.sql.find(policy::kRedactedToken), std::string::npos);
  // static-screen detail records the statically accessed columns.
  EXPECT_TRUE(StartsWith(hit.note, "cols=")) << hit.note;
  EXPECT_NE(hit.note.find("P-Health.disease"), std::string::npos);

  const policy::SinkRecord& error = records[1];
  EXPECT_EQ(error.rule, "watch");
  EXPECT_EQ(error.query_class, "error");
  EXPECT_EQ(error.log_id, 0);
  EXPECT_TRUE(StartsWith(error.note, "error: ")) << error.note;

  // The engine's section rides the combined metrics JSON.
  auto metrics = client.MetricsJson();
  ASSERT_TRUE(metrics.ok());
  EXPECT_NE(metrics->find("\"policy\""), std::string::npos);
  EXPECT_NE(metrics->find("\"rule_hits.watch\""), std::string::npos);
  EXPECT_NE(metrics->find("\"suppressed_logs\":1"), std::string::npos);
  EXPECT_EQ(engine.metrics()->counter("suppressed_logs")->value(), 1u);
  EXPECT_EQ(engine.metrics()->counter("no_match")->value(), 1u);
}

TEST(PolicyNetTest, DetailedReportRedactsButVerdictsStayByteIdentical) {
  // World A serves through a redacting policy engine; world B is the
  // plain control built from the same seed.
  policy::PolicyEngine engine;
  ASSERT_TRUE(engine
                  .LoadText(
                      "[rule watch]\n"
                      "user = mallory\n"
                      "redact = disease\n",
                      Ts(0))
                  .ok());
  AuditServerOptions options;
  options.policy = &engine;
  ServedWorld redacted_world(options);
  redacted_world.log.SetRedactor([&engine](const std::string& sql) {
    return engine.RedactForDisplay(sql);
  });
  ServedWorld plain_world;

  // The same sentinel query lands in both logs over the wire. Its
  // literal appears nowhere else (not in the workload's disease pool,
  // not in the audit expression), so any occurrence in redacted-world
  // output is a leak.
  const std::string sentinel =
      "SELECT pid, disease FROM P-Health WHERE disease='zebrafever'";
  AuditClient redacted_client(redacted_world.server->host(),
                              redacted_world.server->port());
  AuditClient plain_client(plain_world.server->host(),
                           plain_world.server->port());
  ASSERT_TRUE(redacted_client
                  .ExecuteQuery(sentinel, "mallory", "clerk", "export",
                                Ts(5000))
                  .ok());
  ASSERT_TRUE(plain_client
                  .ExecuteQuery(sentinel, "mallory", "clerk", "export",
                                Ts(5000))
                  .ok());

  auto redacted_report = redacted_client.Audit(kAudit, Ts(1000000));
  auto plain_report = plain_client.Audit(kAudit, Ts(1000000));
  ASSERT_TRUE(redacted_report.ok()) << redacted_report.status().ToString();
  ASSERT_TRUE(plain_report.ok()) << plain_report.status().ToString();

  // Byte-identity contract: the UNREDACTED query text drives the audit,
  // so the canonical verdict matches both the plain server and a serial
  // auditor over the control world.
  EXPECT_EQ(redacted_report->canonical, plain_report->canonical);
  audit::Auditor serial(&plain_world.db, &plain_world.backlog,
                        &plain_world.log);
  auto serial_report = serial.Audit(kAudit, Ts(1000000));
  ASSERT_TRUE(serial_report.ok());
  EXPECT_EQ(redacted_report->canonical, serial_report->CanonicalString());

  // The detailed report is a display channel: it echoes logged queries
  // through the redactor, so the marked literal never crosses the wire.
  EXPECT_EQ(redacted_report->detailed.find("zebrafever"),
            std::string::npos);
  EXPECT_NE(redacted_report->detailed.find(policy::kRedactedToken),
            std::string::npos);
  EXPECT_NE(plain_report->detailed.find("zebrafever"), std::string::npos);
}

TEST(PolicyNetTest, PushFramesAndFullAuditNotesUnderRedaction) {
  std::string sink_path = io::JoinPath(ScratchDir("push"), "audit.log");

  policy::PolicyEngine engine;
  auto file_sink = policy::FileSink::Open(io::Env::Default(), sink_path);
  ASSERT_TRUE(file_sink.ok());
  ASSERT_TRUE(engine.AttachSink(std::move(*file_sink)).ok());
  // Full-audit on the attacker: every query gets an online observation
  // summary in its sink note; `ward` literals are the redaction canary
  // (they appear only in logged queries, never in the expression).
  ASSERT_TRUE(engine
                  .LoadText(
                      "[rule attacker]\n"
                      "user = mallory\n"
                      "detail = full-audit\n"
                      "redact = ward\n"
                      "sink = file\n",
                      Ts(0))
                  .ok());

  AuditServerOptions options;
  options.policy = &engine;
  ServedWorld world(options, /*patients=*/0, /*queries=*/0);
  world.log.SetRedactor([&engine](const std::string& sql) {
    return engine.RedactForDisplay(sql);
  });
  const std::string host = world.server->host();
  const uint16_t port = world.server->port();

  Database paper;
  ASSERT_TRUE(workload::BuildPaperDatabase(&paper, Ts(1)).ok());
  std::ostringstream dump;
  ASSERT_TRUE(io::WriteDatabaseDump(paper, dump).ok());
  AuditClient loader(host, port);
  ASSERT_TRUE(loader.LoadDatabaseDump(dump.str(), Ts(1)).ok());

  std::mutex mutex;
  std::vector<PushEvent> events;
  AuditClient subscriber(host, port);
  auto sub = subscriber.Subscribe(
      kSlowBurnAudit, Ts(1000), [&](const PushEvent& event) {
        std::lock_guard<std::mutex> lock(mutex);
        events.push_back(event);
      });
  ASSERT_TRUE(sub.ok()) << sub.status().ToString();

  // The slow-burn attack (see push_test.cc): no push, progress,
  // progress, alert.
  const char* steps[] = {
      "SELECT ward FROM P-Health WHERE ward = 'W14'",
      "SELECT name, pid FROM P-Personal WHERE zipcode = '145568'",
      "SELECT address FROM P-Personal WHERE zipcode = '145568'",
      "SELECT disease FROM P-Personal, P-Health "
      "WHERE P-Personal.pid = P-Health.pid AND zipcode = '145568'",
  };
  AuditClient driver(host, port);
  int64_t at = 100;
  for (const char* sql : steps) {
    auto result =
        driver.ExecuteQuery(sql, "mallory", "clerk", "billing", Ts(at));
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    at += 10;
  }

  auto deadline = std::chrono::steady_clock::now() + milliseconds(10000);
  while (std::chrono::steady_clock::now() < deadline) {
    {
      std::lock_guard<std::mutex> lock(mutex);
      if (events.size() >= 3) break;
    }
    std::this_thread::sleep_for(milliseconds(2));
  }
  std::vector<PushEvent> seen;
  {
    std::lock_guard<std::mutex> lock(mutex);
    seen = events;
  }
  ASSERT_EQ(seen.size(), 3u);
  const PushEvent& alert = seen[2];
  ASSERT_EQ(alert.kind, PushKind::kAlert);
  ASSERT_FALSE(alert.verdict.empty());

  // Push frames never leak the redacted literal: the pushed verdict is
  // the canonical string (no logged SQL), byte-identical to a poll.
  AuditClient poller(host, port);
  auto polled = poller.Audit(kSlowBurnAudit, Ts(1000));
  ASSERT_TRUE(polled.ok()) << polled.status().ToString();
  EXPECT_EQ(alert.verdict, polled->canonical);
  for (const PushEvent& event : seen) {
    EXPECT_EQ(event.verdict.find("'W14'"), std::string::npos);
  }
  // While the poll's *display* channel redacts the logged canary.
  EXPECT_EQ(polled->detailed.find("'W14'"), std::string::npos);
  EXPECT_NE(polled->detailed.find(policy::kRedactedToken),
            std::string::npos);

  // Full-audit sink notes carry the standing-expression summary; the
  // firing query's record says so.
  ASSERT_TRUE(engine.FlushSinks().ok());
  auto records = ReadSinkFile(sink_path);
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records[0].sql.find("'W14'"), std::string::npos);
  EXPECT_NE(records[0].sql.find(policy::kRedactedToken),
            std::string::npos);
  for (const auto& record : records) {
    EXPECT_NE(record.note.find("standing="), std::string::npos)
        << record.note;
  }
  EXPECT_NE(records[3].note.find("fired=1"), std::string::npos)
      << records[3].note;
}

}  // namespace
}  // namespace net
}  // namespace auditdb
