#include "src/net/backoff.h"

#include <gtest/gtest.h>

#include <chrono>

namespace auditdb {
namespace net {
namespace {

using Clock = RetryBudget::Clock;
using std::chrono::milliseconds;

TEST(RetryBudgetTest, DelaysAreEqualJitteredAndDouble) {
  BackoffOptions options;
  options.initial_backoff = milliseconds(100);
  options.max_backoff = milliseconds(400);
  RetryBudget budget(options, /*max_retries=*/4,
                     Clock::now() + std::chrono::hours(1), /*seed=*/42);
  // Equal jitter: delay i lands in [base/2, base] with base doubling
  // 100 → 200 → 400 → 400 (capped).
  int64_t bases[] = {100, 200, 400, 400};
  for (int i = 0; i < 4; ++i) {
    auto delay = budget.NextDelay();
    ASSERT_TRUE(delay.has_value()) << "retry " << i;
    EXPECT_GE(delay->count(), bases[i] / 2) << "retry " << i;
    EXPECT_LE(delay->count(), bases[i]) << "retry " << i;
  }
  // Budget spent: no fifth retry.
  EXPECT_FALSE(budget.NextDelay().has_value());
  EXPECT_EQ(budget.retries_used(), 4);
  EXPECT_EQ(budget.retries_left(), 0);
}

TEST(RetryBudgetTest, ZeroRetriesNeverGrantsADelay) {
  RetryBudget budget(BackoffOptions{}, /*max_retries=*/0,
                     Clock::now() + std::chrono::hours(1), 1);
  EXPECT_FALSE(budget.NextDelay().has_value());
  EXPECT_FALSE(budget.SleepBeforeRetry());
}

TEST(RetryBudgetTest, DelayThatWouldCrossTheDeadlineIsNotAttempted) {
  BackoffOptions options;
  options.initial_backoff = milliseconds(200);
  options.max_backoff = milliseconds(200);
  // Deadline 20ms out; even the jittered minimum (100ms) cannot fit.
  RetryBudget budget(options, /*max_retries=*/10,
                     Clock::now() + milliseconds(20), 7);
  auto start = Clock::now();
  EXPECT_FALSE(budget.SleepBeforeRetry());
  // Failing fast means no sleep happened.
  EXPECT_LT(Clock::now() - start, milliseconds(100));
}

TEST(RetryBudgetTest, SleepConsumesRealTimeFromTheSharedBudget) {
  BackoffOptions options;
  options.initial_backoff = milliseconds(10);
  options.max_backoff = milliseconds(10);
  RetryBudget budget(options, /*max_retries=*/2,
                     Clock::now() + std::chrono::seconds(5), 99);
  auto start = Clock::now();
  EXPECT_TRUE(budget.SleepBeforeRetry());
  EXPECT_TRUE(budget.SleepBeforeRetry());
  EXPECT_GE(Clock::now() - start, milliseconds(10));  // two ≥5ms sleeps
  EXPECT_FALSE(budget.SleepBeforeRetry());  // exhausted, and no sleep
}

TEST(RetryBudgetTest, JitterStateAdvancesAndCarriesAcrossBudgets) {
  BackoffOptions options;
  options.initial_backoff = milliseconds(1000);
  options.max_backoff = milliseconds(1000);
  auto deadline = Clock::now() + std::chrono::hours(1);
  RetryBudget first(options, 3, deadline, /*seed=*/12345);
  first.NextDelay();
  first.NextDelay();
  EXPECT_NE(first.jitter_state(), 12345u);
  // Seeding a second budget with the advanced state keeps the jitter
  // sequence moving instead of replaying the same delays.
  RetryBudget second(options, 3, deadline, first.jitter_state());
  auto a = second.NextDelay();
  RetryBudget replay(options, 3, deadline, 12345);
  auto b = replay.NextDelay();
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  // (Not a strict inequality in general, but with these seeds the LCG
  // separates them; the point is the state is threaded, not reset.)
  EXPECT_EQ(first.retries_used(), 2);
}

}  // namespace
}  // namespace net
}  // namespace auditdb
