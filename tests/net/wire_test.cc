#include "src/net/wire.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <vector>

namespace auditdb {
namespace net {
namespace {

Message MustNext(FrameReader* reader) {
  auto next = reader->Next();
  EXPECT_TRUE(next.ok()) << next.status().ToString();
  EXPECT_TRUE(next->has_value());
  return std::move(**next);
}

TEST(FrameCodecTest, RoundTripsEveryMessageType) {
  const MessageType types[] = {
      MessageType::kHealthRequest,       MessageType::kMetricsRequest,
      MessageType::kAuditRequest,        MessageType::kAuditStaticRequest,
      MessageType::kScreenLibraryRequest, MessageType::kExecuteQueryRequest,
      MessageType::kLoadDumpRequest,     MessageType::kOkResponse,
      MessageType::kErrorResponse,
  };
  for (MessageType type : types) {
    Message original{type, "payload for " +
                               std::string(MessageTypeName(type))};
    FrameReader reader;
    reader.Feed(EncodeFrame(original));
    Message decoded = MustNext(&reader);
    EXPECT_EQ(decoded.type, original.type);
    EXPECT_EQ(decoded.payload, original.payload);
    EXPECT_EQ(reader.buffered_bytes(), 0u);
  }
}

TEST(FrameCodecTest, BinaryPayloadSurvives) {
  std::string payload;
  for (int i = 0; i < 256; ++i) payload.push_back(static_cast<char>(i));
  // Embedded NULs + the frame magic. Spelled as a char array: in a
  // string literal "\x00A..." the hex escape would greedily swallow the
  // 'A', 'D', 'B' as hex digits and mangle the bytes.
  const char tail[] = {'\0', '\0', 'A', 'D', 'B', '1', '\0'};
  payload.append(tail, sizeof(tail));
  Message original{MessageType::kOkResponse, payload};
  FrameReader reader;
  reader.Feed(EncodeFrame(original));
  EXPECT_EQ(MustNext(&reader).payload, payload);
}

TEST(FrameReaderTest, ByteAtATimeFeedingYieldsOneFrame) {
  Message original{MessageType::kAuditRequest, "expr|12345"};
  std::string wire = EncodeFrame(original);
  FrameReader reader;
  for (size_t i = 0; i + 1 < wire.size(); ++i) {
    reader.Feed(&wire[i], 1);
    auto next = reader.Next();
    ASSERT_TRUE(next.ok()) << "byte " << i;
    EXPECT_FALSE(next->has_value()) << "byte " << i;
  }
  reader.Feed(&wire[wire.size() - 1], 1);
  Message decoded = MustNext(&reader);
  EXPECT_EQ(decoded.payload, "expr|12345");
}

TEST(FrameReaderTest, MultipleFramesInOneFeed) {
  std::string wire;
  for (int i = 0; i < 5; ++i) {
    wire += EncodeFrame(
        {MessageType::kHealthRequest, "frame " + std::to_string(i)});
  }
  // Plus a trailing partial frame.
  std::string partial =
      EncodeFrame({MessageType::kMetricsRequest, "partial"});
  wire += partial.substr(0, partial.size() - 3);

  FrameReader reader;
  reader.Feed(wire);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(MustNext(&reader).payload, "frame " + std::to_string(i));
  }
  auto next = reader.Next();
  ASSERT_TRUE(next.ok());
  EXPECT_FALSE(next->has_value());
  reader.Feed(partial.substr(partial.size() - 3));
  EXPECT_EQ(MustNext(&reader).payload, "partial");
}

TEST(FrameReaderTest, RejectsBadMagic) {
  FrameReader reader;
  reader.Feed("XDB1\x00\x00\x00\x01\x01", 9);
  auto next = reader.Next();
  EXPECT_FALSE(next.ok());
  // The failure is sticky: the stream cannot be resynchronized.
  reader.Feed(EncodeFrame({MessageType::kHealthRequest, ""}));
  EXPECT_FALSE(reader.Next().ok());
}

TEST(FrameReaderTest, RejectsZeroLengthBody) {
  FrameReader reader;
  reader.Feed("ADB1\x00\x00\x00\x00", 8);
  EXPECT_FALSE(reader.Next().ok());
}

TEST(FrameReaderTest, RejectsOversizedBody) {
  FrameReader reader(/*max_frame_bytes=*/16);
  Message big{MessageType::kHealthRequest, std::string(64, 'x')};
  reader.Feed(EncodeFrame(big));
  auto next = reader.Next();
  ASSERT_FALSE(next.ok());
  EXPECT_EQ(next.status().code(), StatusCode::kOutOfRange);
  // Rejection happens off the header alone, before the body arrives.
  FrameReader early(/*max_frame_bytes=*/16);
  std::string wire = EncodeFrame(big);
  early.Feed(wire.substr(0, kFrameHeaderBytes));
  EXPECT_FALSE(early.Next().ok());
}

TEST(FrameReaderTest, RejectsUnknownTypeByte) {
  FrameReader reader;
  std::string wire = EncodeFrame({MessageType::kHealthRequest, "x"});
  wire[kFrameHeaderBytes] = static_cast<char>(0x7f);
  reader.Feed(wire);
  EXPECT_FALSE(reader.Next().ok());
}

TEST(FrameReaderTest, RandomBytesNeverCrash) {
  std::mt19937_64 rng(20080101);
  for (int round = 0; round < 200; ++round) {
    FrameReader reader(/*max_frame_bytes=*/4096);
    size_t len = rng() % 512;
    std::string junk;
    for (size_t i = 0; i < len; ++i) {
      junk.push_back(static_cast<char>(rng() & 0xff));
    }
    // Occasionally lead with real magic so the length path also runs.
    if (round % 3 == 0) junk.insert(0, "ADB1");
    reader.Feed(junk);
    for (int step = 0; step < 8; ++step) {
      auto next = reader.Next();
      if (!next.ok() || !next->has_value()) break;
    }
  }
}

TEST(FieldCodecTest, RoundTripsAdversarialFields) {
  const std::vector<std::vector<std::string>> cases = {
      {"plain"},
      {""},
      {"", "", ""},
      {"a|b", "c\\d", "e\nf", "g\rh", "\r\n", "|||"},
      {"trailing space ", " leading", "\ttab\t"},
      {std::string("nul\x00byte", 8), "caf\xc3\xa9", "\xf0\x9f\x94\x92"},
      {"DURING 1/1/1970 AUDIT (name) FROM T WHERE x='\\|'"},
  };
  for (const auto& fields : cases) {
    auto decoded = DecodeFields(EncodeFields(fields));
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(*decoded, fields);
  }
}

TEST(FieldCodecTest, RejectsBadEscape) {
  EXPECT_FALSE(DecodeFields("ok|bad\\q").ok());
  EXPECT_FALSE(DecodeFields("dangling\\").ok());
}

TEST(ErrorCodecTest, StatusRoundTripsThroughErrorMessage) {
  const Status statuses[] = {
      Status::InvalidArgument("no such table: X"),
      Status::NotFound("expression 7"),
      Status::ResourceExhausted("handler queue full"),
      Status::Cancelled("server draining"),
      Status::Internal("with|pipe and\nnewline"),
  };
  for (const Status& status : statuses) {
    Message wire_message = MakeErrorMessage(status);
    EXPECT_EQ(wire_message.type, MessageType::kErrorResponse);
    Status decoded = DecodeErrorMessage(wire_message.payload);
    EXPECT_EQ(decoded.code(), status.code());
    EXPECT_EQ(decoded.message(), status.message());
  }
}

TEST(ErrorCodecTest, UnknownCodeNameMapsToInternal) {
  EXPECT_EQ(StatusCodeFromName("NOT_A_CODE"), StatusCode::kInternal);
  EXPECT_EQ(StatusCodeFromName("OK"), StatusCode::kOk);
}

TEST(TypePredicatesTest, ClassifiesRequestsAndIdempotence) {
  EXPECT_TRUE(IsRequestType(MessageType::kAuditRequest));
  EXPECT_TRUE(IsRequestType(MessageType::kExecuteQueryRequest));
  EXPECT_FALSE(IsRequestType(MessageType::kOkResponse));
  EXPECT_FALSE(IsRequestType(MessageType::kErrorResponse));

  EXPECT_TRUE(IsIdempotentType(MessageType::kAuditRequest));
  EXPECT_TRUE(IsIdempotentType(MessageType::kHealthRequest));
  EXPECT_FALSE(IsIdempotentType(MessageType::kExecuteQueryRequest));
  EXPECT_FALSE(IsIdempotentType(MessageType::kLoadDumpRequest));

  EXPECT_TRUE(IsKnownMessageType(
      static_cast<uint8_t>(MessageType::kScreenLibraryRequest)));
  EXPECT_FALSE(IsKnownMessageType(0));
  EXPECT_FALSE(IsKnownMessageType(0x7f));
}

}  // namespace
}  // namespace net
}  // namespace auditdb
