#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <thread>

#include "src/io/file.h"
#include "src/io/store.h"
#include "src/net/client.h"
#include "src/net/server.h"
#include "src/workload/hospital.h"

namespace auditdb {
namespace net {
namespace {

using std::chrono::milliseconds;

Timestamp Ts(int64_t s) { return Timestamp(s * 1000000); }

constexpr const char* kAuditExpr =
    "DURING 1/1/1970 to 2/1/1970 "
    "DATA-INTERVAL 1/1/1970 to 2/1/1970 "
    "AUDIT (name, disease) FROM P-Personal, P-Health "
    "WHERE P-Personal.pid = P-Health.pid AND disease = 'diabetic'";

std::string ScratchDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "auditdb_cluster_" + name;
  io::Env* env = io::Env::Default();
  if (env->FileExists(dir)) {
    auto names = env->ListDir(dir);
    if (names.ok()) {
      for (const auto& entry : *names) {
        env->DeleteFile(io::JoinPath(dir, entry));
      }
    }
  }
  EXPECT_TRUE(env->CreateDirIfMissing(dir).ok());
  return dir;
}

bool WaitUntil(const std::function<bool()>& pred,
               milliseconds timeout = milliseconds(5000)) {
  auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(milliseconds(10));
  }
  return pred();
}

/// One cluster node: in-memory stores (optionally durable), an audit
/// service, and a server wired for replication.
struct Node {
  Database db;
  Backlog backlog;
  QueryLog log;
  std::unique_ptr<io::DurableStore> store;
  std::unique_ptr<service::AuditService> service;
  std::unique_ptr<AuditServer> server;

  struct Config {
    size_t fixture_patients = 0;
    std::string data_dir;         // empty = no durable store
    std::string replicate_from;   // empty = primary
    ReplAckPolicy repl_ack = ReplAckPolicy::kNone;
  };

  explicit Node(const Config& config) {
    backlog.Attach(&db);
    if (config.fixture_patients > 0) {
      workload::HospitalConfig hospital;
      hospital.num_patients = config.fixture_patients;
      hospital.seed = 2008;
      EXPECT_TRUE(workload::PopulateHospital(&db, hospital, Ts(1)).ok());
    }
    if (!config.data_dir.empty()) {
      auto opened = io::DurableStore::Open(io::Env::Default(),
                                           config.data_dir, &db, &log,
                                           Ts(1));
      EXPECT_TRUE(opened.ok()) << opened.status().ToString();
      store = std::move(*opened);
    }
    service = std::make_unique<service::AuditService>(&db, &backlog, &log);
    AuditServerOptions options;
    options.durable_store = store.get();
    options.replicate_from = config.replicate_from;
    options.repl_ack = config.repl_ack;
    options.repl_ack_timeout = milliseconds(5000);
    options.replication = true;
    server = std::make_unique<AuditServer>(service.get(), &db, &backlog,
                                           &log, options);
    Status started = server->Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
  }

  std::string address() const {
    return server->host() + ":" + std::to_string(server->port());
  }
};

TEST(ClusterTest, ReplicaBootstrapsAndServesByteIdenticalAudits) {
  Node::Config primary_config;
  primary_config.fixture_patients = 12;
  primary_config.repl_ack = ReplAckPolicy::kAll;
  Node primary(primary_config);

  Node::Config replica_config;
  replica_config.replicate_from = primary.address();
  Node replica(replica_config);
  EXPECT_TRUE(replica.server->is_replica());
  EXPECT_EQ(replica.server->replication_upstream(), primary.address());

  // The empty replica bootstraps the fixture from the primary's
  // checkpoint manifest.
  ASSERT_TRUE(WaitUntil([&] {
    return primary.server->follower_count() == 1;
  }));

  AuditClient writer(primary.server->host(), primary.server->port());
  for (int i = 0; i < 5; ++i) {
    auto result = writer.ExecuteQuery(
        "SELECT name FROM P-Personal WHERE pid = 'p" + std::to_string(i) +
            "'",
        "alice", "Nurse", "treatment", Ts(100 + i));
    // repl_ack=all: the OK itself proves the follower holds the write.
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->log_id, i + 1);
  }
  EXPECT_EQ(replica.server->applied_log_id(), 5);
  EXPECT_EQ(replica.log.size(), 5u);

  // The replication contract: a follower that applied the same prefix
  // answers audits byte-identically.
  AuditClient reader(replica.server->host(), replica.server->port());
  auto on_primary = writer.Audit(kAuditExpr, Ts(1000));
  auto on_replica = reader.Audit(kAuditExpr, Ts(1000));
  ASSERT_TRUE(on_primary.ok()) << on_primary.status().ToString();
  ASSERT_TRUE(on_replica.ok()) << on_replica.status().ToString();
  EXPECT_EQ(on_primary->canonical, on_replica->canonical);
  EXPECT_FALSE(on_primary->canonical.empty());

  // Role surfaces in Health on both sides.
  auto primary_health = writer.Health();
  ASSERT_TRUE(primary_health.ok());
  EXPECT_NE(primary_health->find("role=primary"), std::string::npos)
      << *primary_health;
  EXPECT_NE(primary_health->find("followers=1"), std::string::npos);
  auto replica_health = reader.Health();
  ASSERT_TRUE(replica_health.ok());
  EXPECT_NE(replica_health->find("role=replica"), std::string::npos)
      << *replica_health;
  EXPECT_NE(replica_health->find("connected=1"), std::string::npos);

  // And in the metrics JSON.
  auto metrics = writer.MetricsJson();
  ASSERT_TRUE(metrics.ok());
  EXPECT_NE(metrics->find("\"replication\""), std::string::npos);
  EXPECT_NE(metrics->find("\"role\":\"primary\""), std::string::npos);

  // Writes on the replica bounce with the primary's address. (A default
  // client would follow the redirect; disable it to see the raw
  // rejection.)
  AuditClientOptions raw;
  raw.follow_not_primary = false;
  AuditClient direct(replica.server->host(), replica.server->port(), raw);
  auto rejected = direct.ExecuteQuery("SELECT name FROM P-Personal",
                                      "mallory", "Nurse", "care", Ts(200));
  ASSERT_FALSE(rejected.ok());
  EXPECT_TRUE(IsNotPrimaryStatus(rejected.status()))
      << rejected.status().ToString();
  EXPECT_EQ(NotPrimaryAddress(rejected.status()), primary.address());
}

TEST(ClusterTest, LoadDumpDeltasReplicate) {
  Node::Config primary_config;
  primary_config.fixture_patients = 6;
  primary_config.repl_ack = ReplAckPolicy::kAll;
  Node primary(primary_config);
  Node::Config replica_config;
  replica_config.replicate_from = primary.address();
  Node replica(replica_config);
  ASSERT_TRUE(WaitUntil([&] {
    return primary.server->follower_count() == 1;
  }));

  AuditClient writer(primary.server->host(), primary.server->port());
  ASSERT_TRUE(writer
                  .LoadQueryLogDump(
                      "QUERY 1|777|bob|Doctor|care|SELECT disease FROM "
                      "P-Health\n")
                  .ok());
  ASSERT_TRUE(WaitUntil([&] {
    return replica.server->applied_log_id() == 1;
  }));
  // A post-load write still lines up (ids extend the loaded log).
  auto result = writer.ExecuteQuery("SELECT name FROM P-Personal", "alice",
                                    "Nurse", "treatment", Ts(100));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->log_id, 2);
  EXPECT_EQ(replica.server->applied_log_id(), 2);
  EXPECT_EQ(replica.log.Entry(0).user, "bob");
}

TEST(ClusterTest, MultiEndpointClientFollowsNotPrimaryRedirects) {
  Node::Config primary_config;
  primary_config.fixture_patients = 6;
  primary_config.repl_ack = ReplAckPolicy::kAll;
  Node primary(primary_config);
  Node::Config replica_config;
  replica_config.replicate_from = primary.address();
  Node replica(replica_config);
  ASSERT_TRUE(WaitUntil([&] {
    return primary.server->follower_count() == 1;
  }));

  // The client only knows the replica; the write redirects to the
  // primary the NOT_PRIMARY rejection names — safely, because the
  // replica rejected before any side effect.
  AuditClient client({replica.address()});
  auto result = client.ExecuteQuery("SELECT name FROM P-Personal", "alice",
                                    "Nurse", "treatment", Ts(100));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->log_id, 1);
  EXPECT_EQ(client.endpoint(), primary.address());
  // The learned primary joined the rotation.
  EXPECT_EQ(client.endpoints().size(), 2u);
}

TEST(ClusterTest, ReplicaCatchesUpFromItsDurablePositionAfterACrash) {
  std::string primary_dir = ScratchDir("catchup_primary");
  std::string replica_dir = ScratchDir("catchup_replica");

  Node::Config primary_config;
  primary_config.fixture_patients = 8;
  primary_config.data_dir = primary_dir;
  Node primary(primary_config);
  AuditClient writer(primary.server->host(), primary.server->port());

  {
    Node::Config replica_config;
    replica_config.data_dir = replica_dir;
    replica_config.replicate_from = primary.address();
    Node replica(replica_config);
    ASSERT_TRUE(WaitUntil([&] {
      return primary.server->follower_count() == 1;
    }));
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(writer
                      .ExecuteQuery("SELECT name FROM P-Personal WHERE "
                                    "pid = 'p" +
                                        std::to_string(i) + "'",
                                    "alice", "Nurse", "treatment",
                                    Ts(100 + i))
                      .ok());
    }
    ASSERT_TRUE(WaitUntil([&] {
      return replica.server->applied_log_id() == 3;
    }));
    // "Crash" the replica: tear the server down mid-cluster.
    replica.server->Shutdown();
  }
  ASSERT_TRUE(WaitUntil([&] {
    return primary.server->follower_count() == 0;
  }));

  // The primary keeps committing while the replica is down.
  for (int i = 3; i < 6; ++i) {
    ASSERT_TRUE(writer
                    .ExecuteQuery("SELECT name FROM P-Personal WHERE "
                                  "pid = 'p" +
                                      std::to_string(i) + "'",
                                  "alice", "Nurse", "treatment",
                                  Ts(100 + i))
                    .ok());
  }

  // The revived replica recovers its durable prefix (3 records) and
  // handshakes from there: the primary ships only the missing suffix.
  Node::Config revived_config;
  revived_config.data_dir = replica_dir;
  revived_config.replicate_from = primary.address();
  Node revived(revived_config);
  EXPECT_EQ(revived.server->applied_log_id(), 3);  // recovered, pre-sync
  ASSERT_TRUE(WaitUntil([&] {
    return revived.server->applied_log_id() == 6;
  }));

  AuditClient reader(revived.server->host(), revived.server->port());
  auto on_primary = writer.Audit(kAuditExpr, Ts(1000));
  auto on_replica = reader.Audit(kAuditExpr, Ts(1000));
  ASSERT_TRUE(on_primary.ok()) << on_primary.status().ToString();
  ASSERT_TRUE(on_replica.ok()) << on_replica.status().ToString();
  EXPECT_EQ(on_primary->canonical, on_replica->canonical);
}

TEST(ClusterTest, PromoteTurnsAReplicaIntoAWritablePrimary) {
  Node::Config primary_config;
  primary_config.fixture_patients = 6;
  primary_config.repl_ack = ReplAckPolicy::kAll;
  Node primary(primary_config);
  Node::Config replica_config;
  replica_config.replicate_from = primary.address();
  Node replica(replica_config);
  ASSERT_TRUE(WaitUntil([&] {
    return primary.server->follower_count() == 1;
  }));
  AuditClient writer(primary.server->host(), primary.server->port());
  ASSERT_TRUE(writer
                  .ExecuteQuery("SELECT name FROM P-Personal", "alice",
                                "Nurse", "treatment", Ts(100))
                  .ok());
  EXPECT_EQ(replica.server->applied_log_id(), 1);

  // Failover: the old primary dies; a supervisor promotes the follower.
  primary.server->Shutdown();
  AuditClient admin(replica.server->host(), replica.server->port());
  auto promoted = admin.RoundTrip(
      Message{MessageType::kPromoteRequest, EncodeFields({"primary"})});
  ASSERT_TRUE(promoted.ok()) << promoted.status().ToString();
  EXPECT_EQ(promoted->payload, "primary");
  EXPECT_FALSE(replica.server->is_replica());

  // The promoted node accepts writes — no acked write was lost, so the
  // new write extends the replicated prefix.
  auto result = admin.ExecuteQuery("SELECT disease FROM P-Health", "bob",
                                   "Doctor", "research", Ts(200));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->log_id, 2);

  // Promotion is idempotent.
  auto again = admin.RoundTrip(
      Message{MessageType::kPromoteRequest, EncodeFields({"primary"})});
  ASSERT_TRUE(again.ok());
}

TEST(ClusterTest, QuorumAckToleratesOneSlowFollowerOfTwo) {
  Node::Config primary_config;
  primary_config.fixture_patients = 6;
  primary_config.repl_ack = ReplAckPolicy::kQuorum;
  Node primary(primary_config);
  Node::Config replica_config;
  replica_config.replicate_from = primary.address();
  Node fast(replica_config);
  Node slow(replica_config);
  ASSERT_TRUE(WaitUntil([&] {
    return primary.server->follower_count() == 2;
  }));

  // Quorum over {primary, 2 followers} needs 1 follower ack; even with
  // both healthy the write must complete promptly, and the acked write
  // is on at least one follower afterwards.
  AuditClient writer(primary.server->host(), primary.server->port());
  auto result = writer.ExecuteQuery("SELECT name FROM P-Personal", "alice",
                                    "Nurse", "treatment", Ts(100));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(WaitUntil([&] {
    return fast.server->applied_log_id() == 1 ||
           slow.server->applied_log_id() == 1;
  }));
}

}  // namespace
}  // namespace net
}  // namespace auditdb
