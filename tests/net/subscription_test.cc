#include "src/net/subscription.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

namespace auditdb {
namespace net {
namespace {

// --- Codec -----------------------------------------------------------

PushEvent SampleEvent() {
  PushEvent event;
  event.subscription_id = 42;
  event.seq = 7;
  event.kind = PushKind::kAlert;
  event.log_id = 1234;
  event.expression_id = 3;
  event.rank = 0.6666667;
  event.fired = true;
  event.dropped = 0;
  event.verdict = "AUDIT (name)\nFROM P-Personal\nverdict 1: admitted";
  return event;
}

TEST(PushCodecTest, RoundTripsEveryField) {
  PushEvent event = SampleEvent();
  auto decoded = DecodePushPayload(EncodePushPayload(event));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->subscription_id, event.subscription_id);
  EXPECT_EQ(decoded->seq, event.seq);
  EXPECT_EQ(decoded->kind, event.kind);
  EXPECT_EQ(decoded->log_id, event.log_id);
  EXPECT_EQ(decoded->expression_id, event.expression_id);
  EXPECT_NEAR(decoded->rank, event.rank, 1e-6);
  EXPECT_EQ(decoded->fired, event.fired);
  EXPECT_EQ(decoded->dropped, event.dropped);
  EXPECT_EQ(decoded->verdict, event.verdict);
}

TEST(PushCodecTest, VerdictWithPipesAndBackslashesSurvives) {
  PushEvent event = SampleEvent();
  event.verdict = "a|b\\c|d\nnewline|";
  auto decoded = DecodePushPayload(EncodePushPayload(event));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->verdict, event.verdict);
}

TEST(PushCodecTest, GapEventRoundTrips) {
  PushEvent gap;
  gap.subscription_id = 5;
  gap.seq = 10;
  gap.kind = PushKind::kGap;
  gap.dropped = 17;
  auto decoded = DecodePushPayload(EncodePushPayload(gap));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->kind, PushKind::kGap);
  EXPECT_EQ(decoded->seq, 10u);
  EXPECT_EQ(decoded->dropped, 17u);
}

TEST(PushCodecTest, RejectsMalformedPayloads) {
  EXPECT_FALSE(DecodePushPayload("").ok());
  EXPECT_FALSE(DecodePushPayload("1|2|3").ok());  // wrong arity
  PushEvent event = SampleEvent();
  std::string good = EncodePushPayload(event);
  // Corrupt the kind field.
  std::string bad_kind = good;
  auto pos = bad_kind.find("alert");
  ASSERT_NE(pos, std::string::npos);
  bad_kind.replace(pos, 5, "nosuch");
  EXPECT_FALSE(DecodePushPayload(bad_kind).ok());
  EXPECT_FALSE(DecodePushPayload("x|2|alert|3|4|0.5|1|0|v").ok());
}

TEST(PushCodecTest, NamesAndParsersRoundTrip) {
  EXPECT_STREQ(PushKindName(PushKind::kProgress), "progress");
  EXPECT_STREQ(PushKindName(PushKind::kAlert), "alert");
  EXPECT_STREQ(PushKindName(PushKind::kGap), "gap");
  for (PushKind kind :
       {PushKind::kProgress, PushKind::kAlert, PushKind::kGap}) {
    auto parsed = ParsePushKind(PushKindName(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(ParsePushKind("bogus").ok());

  EXPECT_STREQ(SlowSubscriberPolicyName(SlowSubscriberPolicy::kDropOldest),
               "drop");
  EXPECT_STREQ(SlowSubscriberPolicyName(SlowSubscriberPolicy::kEvict),
               "evict");
  auto drop = ParseSlowSubscriberPolicy("drop");
  ASSERT_TRUE(drop.ok());
  EXPECT_EQ(*drop, SlowSubscriberPolicy::kDropOldest);
  auto evict = ParseSlowSubscriberPolicy("evict");
  ASSERT_TRUE(evict.ok());
  EXPECT_EQ(*evict, SlowSubscriberPolicy::kEvict);
  EXPECT_FALSE(ParseSlowSubscriberPolicy("banana").ok());
}

// --- Registry: lifecycle ---------------------------------------------

TEST(SubscriptionRegistryTest, SubscribeUnsubscribeLifecycle) {
  SubscriptionRegistry registry;
  EXPECT_EQ(registry.active(), 0u);
  auto sub = registry.Subscribe(/*conn_id=*/1, /*expression_id=*/10);
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ(registry.active(), 1u);
  EXPECT_TRUE(registry.HasSubscriptions(1));
  EXPECT_FALSE(registry.HasSubscriptions(2));

  auto released = registry.Unsubscribe(1, *sub);
  ASSERT_TRUE(released.ok());
  EXPECT_EQ(*released, 10);
  EXPECT_EQ(registry.active(), 0u);
  EXPECT_FALSE(registry.HasSubscriptions(1));
  // Second unsubscribe: gone.
  EXPECT_FALSE(registry.Unsubscribe(1, *sub).ok());
}

TEST(SubscriptionRegistryTest, UnsubscribeChecksOwnership) {
  SubscriptionRegistry registry;
  auto sub = registry.Subscribe(1, 10);
  ASSERT_TRUE(sub.ok());
  // Another connection cannot cancel it.
  EXPECT_FALSE(registry.Unsubscribe(2, *sub).ok());
  EXPECT_TRUE(registry.HasSubscriptions(1));
}

TEST(SubscriptionRegistryTest, MaxSubscriptionsCap) {
  SubscriptionLimits limits;
  limits.max_subscriptions = 2;
  SubscriptionRegistry registry(limits);
  ASSERT_TRUE(registry.Subscribe(1, 10).ok());
  ASSERT_TRUE(registry.Subscribe(2, 10).ok());
  auto third = registry.Subscribe(3, 10);
  ASSERT_FALSE(third.ok());
  EXPECT_EQ(third.status().code(), StatusCode::kResourceExhausted);
  // Freeing one slot re-admits.
  auto dropped = registry.DropConnection(1);
  EXPECT_EQ(dropped.size(), 1u);
  EXPECT_EQ(dropped[0], 10);
  EXPECT_TRUE(registry.Subscribe(3, 10).ok());
}

TEST(SubscriptionRegistryTest, DropConnectionReturnsExpressionIds) {
  SubscriptionRegistry registry;
  ASSERT_TRUE(registry.Subscribe(1, 10).ok());
  ASSERT_TRUE(registry.Subscribe(1, 10).ok());
  ASSERT_TRUE(registry.Subscribe(1, 20).ok());
  ASSERT_TRUE(registry.Subscribe(2, 20).ok());
  auto dropped = registry.DropConnection(1);
  // Expression ids with multiplicity so refcounts release correctly.
  std::multiset<int> ids(dropped.begin(), dropped.end());
  EXPECT_EQ(ids.count(10), 2u);
  EXPECT_EQ(ids.count(20), 1u);
  EXPECT_EQ(registry.active(), 1u);
  EXPECT_TRUE(registry.DropConnection(1).empty());
}

// --- Registry: publish / drain ---------------------------------------

/// Decodes every frame in `bytes` (must all be complete kPushEvent
/// frames) into events.
std::vector<PushEvent> DecodeFrames(const std::string& bytes) {
  std::vector<PushEvent> events;
  FrameReader reader;
  reader.Feed(bytes);
  while (true) {
    auto next = reader.Next();
    EXPECT_TRUE(next.ok()) << next.status().ToString();
    if (!next.ok() || !next->has_value()) break;
    EXPECT_EQ((*next)->type, MessageType::kPushEvent);
    EXPECT_EQ((*next)->version, WireVersion::kV2);
    auto event = DecodePushPayload((*next)->payload);
    EXPECT_TRUE(event.ok()) << event.status().ToString();
    if (event.ok()) events.push_back(std::move(*event));
  }
  return events;
}

TEST(SubscriptionRegistryTest, PublishAssignsPerSubscriptionSequences) {
  SubscriptionRegistry registry;
  auto sub_a = registry.Subscribe(1, 10);
  auto sub_b = registry.Subscribe(2, 10);
  ASSERT_TRUE(sub_a.ok() && sub_b.ok());

  for (int i = 0; i < 3; ++i) {
    auto outcome = registry.Publish(10, PushKind::kProgress, 100 + i,
                                    0.1 * (i + 1), false, "");
    std::set<uint64_t> ready(outcome.ready_conns.begin(),
                             outcome.ready_conns.end());
    EXPECT_EQ(ready.size(), 2u);
    EXPECT_TRUE(outcome.evict_conns.empty());
  }
  // Publishing on an expression with no subscribers is a no-op.
  auto none = registry.Publish(99, PushKind::kProgress, 1, 0.5, false, "");
  EXPECT_TRUE(none.ready_conns.empty());

  for (uint64_t conn : {uint64_t{1}, uint64_t{2}}) {
    std::string out;
    size_t frames = registry.DrainFrames(conn, 1 << 20, &out);
    EXPECT_EQ(frames, 3u);
    auto events = DecodeFrames(out);
    ASSERT_EQ(events.size(), 3u);
    for (size_t i = 0; i < events.size(); ++i) {
      EXPECT_EQ(events[i].seq, i + 1);  // per-subscription, 1-based
      EXPECT_EQ(events[i].log_id, 100 + static_cast<int64_t>(i));
      EXPECT_EQ(events[i].kind, PushKind::kProgress);
    }
  }
  EXPECT_EQ(registry.TotalPending(), 0u);
}

TEST(SubscriptionRegistryTest, AlertCarriesVerdictProgressDoesNot) {
  SubscriptionRegistry registry;
  ASSERT_TRUE(registry.Subscribe(1, 10).ok());
  registry.Publish(10, PushKind::kProgress, 1, 0.5, false, "ignored");
  registry.Publish(10, PushKind::kAlert, 2, 1.0, true, "the-verdict");
  std::string out;
  registry.DrainFrames(1, 1 << 20, &out);
  auto events = DecodeFrames(out);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].verdict, "");
  EXPECT_EQ(events[1].verdict, "the-verdict");
  EXPECT_TRUE(events[1].fired);
}

TEST(SubscriptionRegistryTest, DrainRespectsMaxBytesAndResumes) {
  SubscriptionRegistry registry;
  ASSERT_TRUE(registry.Subscribe(1, 10).ok());
  for (int i = 0; i < 10; ++i) {
    registry.Publish(10, PushKind::kProgress, i, 0.01 * i, false, "");
  }
  // Tiny budget: at least one frame per call, never zero (progress
  // guarantee), resuming in order.
  std::vector<PushEvent> all;
  while (registry.HasPending(1)) {
    std::string out;
    size_t frames = registry.DrainFrames(1, 1, &out);
    EXPECT_GE(frames, 1u);
    auto events = DecodeFrames(out);
    all.insert(all.end(), events.begin(), events.end());
  }
  ASSERT_EQ(all.size(), 10u);
  for (size_t i = 0; i < all.size(); ++i) EXPECT_EQ(all[i].seq, i + 1);
}

// --- Registry: overflow policies -------------------------------------

TEST(SubscriptionRegistryTest, DropOldestCoalescesContiguousGap) {
  SubscriptionLimits limits;
  limits.push_queue_depth = 3;
  SubscriptionRegistry registry(limits);
  ASSERT_TRUE(registry.Subscribe(1, 10).ok());

  // 8 publishes into a depth-3 queue: seqs 1..5 shed, 6..8 survive.
  for (int i = 1; i <= 8; ++i) {
    registry.Publish(10, PushKind::kProgress, i, 0.1 * i, false, "");
  }
  std::string out;
  registry.DrainFrames(1, 1 << 20, &out);
  auto events = DecodeFrames(out);
  ASSERT_EQ(events.size(), 4u);  // gap + 3 survivors
  EXPECT_EQ(events[0].kind, PushKind::kGap);
  EXPECT_EQ(events[0].seq, 1u);       // first dropped
  EXPECT_EQ(events[0].dropped, 5u);   // covers 1..5
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_EQ(events[i].kind, PushKind::kProgress);
    EXPECT_EQ(events[i].seq, 5 + i);  // 6, 7, 8
  }
  // The gap reset after delivery: new overflows open a fresh gap.
  for (int i = 9; i <= 13; ++i) {
    registry.Publish(10, PushKind::kProgress, i, 0.1, false, "");
  }
  out.clear();
  registry.DrainFrames(1, 1 << 20, &out);
  events = DecodeFrames(out);
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].kind, PushKind::kGap);
  EXPECT_EQ(events[0].seq, 9u);
  EXPECT_EQ(events[0].dropped, 2u);  // 9, 10 shed; 11..13 survive
  EXPECT_EQ(events[1].seq, 11u);
}

TEST(SubscriptionRegistryTest, EvictPolicyFlagsConnectionOnce) {
  SubscriptionLimits limits;
  limits.push_queue_depth = 2;
  limits.slow_subscriber_policy = SlowSubscriberPolicy::kEvict;
  SubscriptionRegistry registry(limits);
  ASSERT_TRUE(registry.Subscribe(1, 10).ok());

  registry.Publish(10, PushKind::kProgress, 1, 0.1, false, "");
  registry.Publish(10, PushKind::kProgress, 2, 0.2, false, "");
  auto third = registry.Publish(10, PushKind::kProgress, 3, 0.3, false, "");
  ASSERT_EQ(third.evict_conns.size(), 1u);
  EXPECT_EQ(third.evict_conns[0], 1u);
  // Once flagged, the connection is not re-flagged: the loop already
  // holds the eviction order, and the evicted counter stays at one.
  auto fourth = registry.Publish(10, PushKind::kProgress, 4, 0.4, false, "");
  EXPECT_TRUE(fourth.evict_conns.empty());
  std::string json = registry.MetricsJson();
  EXPECT_NE(json.find("\"slow_subscribers_evicted\":1"), std::string::npos)
      << json;
  // No event was queued past the overflow, and no sequence number was
  // burned for the unqueued events: queue still holds exactly seqs 1-2.
  std::string out;
  registry.DrainFrames(1, 1 << 20, &out);
  auto events = DecodeFrames(out);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].seq, 1u);
  EXPECT_EQ(events[1].seq, 2u);
}

TEST(SubscriptionRegistryTest, MetricsJsonTracksCounters) {
  SubscriptionLimits limits;
  limits.push_queue_depth = 1;
  SubscriptionRegistry registry(limits);
  ASSERT_TRUE(registry.Subscribe(1, 10).ok());
  registry.Publish(10, PushKind::kProgress, 1, 0.1, false, "");
  registry.Publish(10, PushKind::kProgress, 2, 0.2, false, "");  // sheds 1
  std::string out;
  registry.DrainFrames(1, 1 << 20, &out);
  std::string json = registry.MetricsJson();
  EXPECT_NE(json.find("\"subscriptions_active\":1"), std::string::npos);
  EXPECT_NE(json.find("\"pushes_dropped\":1"), std::string::npos);
  EXPECT_NE(json.find("\"gap_frames_sent\":1"), std::string::npos);
  EXPECT_NE(json.find("\"pending_events\":0"), std::string::npos);
  // Only the surviving event counts as a push; the gap frame has its
  // own counter.
  EXPECT_NE(json.find("\"pushes_sent\":1"), std::string::npos) << json;
}

TEST(SubscriptionRegistryTest, PendingCountsGateDrain) {
  SubscriptionRegistry registry;
  ASSERT_TRUE(registry.Subscribe(1, 10).ok());
  ASSERT_TRUE(registry.Subscribe(2, 10).ok());
  EXPECT_EQ(registry.TotalPending(), 0u);
  registry.Publish(10, PushKind::kProgress, 1, 0.1, false, "");
  EXPECT_EQ(registry.TotalPending(), 2u);
  EXPECT_TRUE(registry.HasPending(1));
  std::string out;
  registry.DrainFrames(1, 1 << 20, &out);
  EXPECT_FALSE(registry.HasPending(1));
  EXPECT_EQ(registry.TotalPending(), 1u);
  // Dropping a connection discards its parked events.
  registry.DropConnection(2);
  EXPECT_EQ(registry.TotalPending(), 0u);
}

// --- Concurrency (exercised under TSan in CI) ------------------------

TEST(SubscriptionConcurrentTest, PublishRacesSubscribeUnsubscribeDrain) {
  SubscriptionLimits limits;
  limits.push_queue_depth = 8;
  SubscriptionRegistry registry(limits);
  std::atomic<bool> stop{false};
  std::atomic<int64_t> publishes{0};

  // Publisher: hammers two expression ids.
  std::thread publisher([&] {
    int64_t log_id = 0;
    while (!stop.load()) {
      registry.Publish(1, PushKind::kProgress, ++log_id, 0.5, false, "");
      registry.Publish(2, PushKind::kAlert, ++log_id, 1.0, true, "v");
      publishes.fetch_add(1);
    }
  });
  // Drainer: empties conn 1 and 2 queues.
  std::thread drainer([&] {
    std::string out;
    while (!stop.load()) {
      out.clear();
      registry.DrainFrames(1, 4096, &out);
      registry.DrainFrames(2, 4096, &out);
    }
  });
  // Churners: subscribe/unsubscribe/drop on their own connections.
  std::vector<std::thread> churners;
  for (int t = 0; t < 3; ++t) {
    churners.emplace_back([&, t] {
      uint64_t conn = static_cast<uint64_t>(t + 1);
      for (int i = 0; i < 400; ++i) {
        auto sub = registry.Subscribe(conn, 1 + (i % 2));
        if (!sub.ok()) continue;
        if (i % 3 == 0) {
          registry.Unsubscribe(conn, *sub);
        } else if (i % 7 == 0) {
          registry.DropConnection(conn);
        }
        registry.MetricsJson();
        registry.TotalPending();
      }
      registry.DropConnection(conn);
    });
  }
  for (auto& churner : churners) churner.join();
  stop.store(true);
  publisher.join();
  drainer.join();
  EXPECT_GT(publishes.load(), 0);
  EXPECT_EQ(registry.active(), 0u);
  // Whatever is still parked belongs to dropped connections: draining
  // them is a no-op, and pending drains to zero for live conns.
  std::string out;
  for (uint64_t conn = 1; conn <= 3; ++conn) {
    EXPECT_EQ(registry.DrainFrames(conn, 1 << 20, &out), 0u);
  }
}

TEST(SubscriptionConcurrentTest, SequencesStayDenseUnderChurn) {
  SubscriptionRegistry registry;
  ASSERT_TRUE(registry.Subscribe(1, 10).ok());
  std::atomic<bool> stop{false};
  std::vector<PushEvent> received;
  std::mutex received_mutex;

  std::thread drainer([&] {
    while (!stop.load()) {
      std::string out;
      if (registry.DrainFrames(1, 1 << 16, &out) > 0) {
        auto events = DecodeFrames(out);
        std::lock_guard<std::mutex> lock(received_mutex);
        received.insert(received.end(), events.begin(), events.end());
      }
    }
    std::string out;
    registry.DrainFrames(1, 1 << 20, &out);
    auto events = DecodeFrames(out);
    std::lock_guard<std::mutex> lock(received_mutex);
    received.insert(received.end(), events.begin(), events.end());
  });
  constexpr int kEvents = 2000;
  for (int i = 1; i <= kEvents; ++i) {
    registry.Publish(10, PushKind::kProgress, i, 0.1, false, "");
  }
  stop.store(true);
  drainer.join();

  // Every sequence number 1..kEvents is accounted for: delivered once,
  // or covered by a gap frame. Order within the delivered stream is
  // ascending.
  std::set<uint64_t> covered;
  uint64_t last_seq = 0;
  for (const auto& event : received) {
    if (event.kind == PushKind::kGap) {
      for (uint64_t s = event.seq; s < event.seq + event.dropped; ++s) {
        EXPECT_TRUE(covered.insert(s).second) << "seq " << s << " twice";
      }
    } else {
      EXPECT_GT(event.seq, last_seq);
      last_seq = event.seq;
      EXPECT_TRUE(covered.insert(event.seq).second);
    }
  }
  EXPECT_EQ(covered.size(), static_cast<size_t>(kEvents));
  for (uint64_t s = 1; s <= kEvents; ++s) {
    EXPECT_TRUE(covered.count(s)) << "seq " << s << " lost without gap";
  }
}

}  // namespace
}  // namespace net
}  // namespace auditdb
