#include "src/querylog/wal.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "src/io/checksum.h"
#include "src/io/file.h"

namespace auditdb {
namespace querylog {
namespace {

using io::Env;
using io::JoinPath;

std::string ScratchDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "auditdb_wal_test_" + name;
  Env* env = Env::Default();
  if (env->FileExists(dir)) {
    auto names = env->ListDir(dir);
    if (names.ok()) {
      for (const auto& entry : *names) {
        env->DeleteFile(JoinPath(dir, entry));
      }
    }
  }
  EXPECT_TRUE(env->CreateDirIfMissing(dir).ok());
  return dir;
}

LoggedQuery MakeEntry(int64_t id) {
  LoggedQuery entry;
  entry.id = id;
  entry.timestamp = Timestamp(1000000 + id);
  entry.user = "user" + std::to_string(id);
  entry.role = "Nurse";
  entry.purpose = "treatment";
  entry.sql = "SELECT name FROM P-Personal WHERE pid = " + std::to_string(id);
  return entry;
}

struct Replayed {
  std::vector<std::pair<WalRecordType, std::string>> records;
  WalReplayStats stats;
};

Replayed Replay(Env* env, const std::string& path) {
  Replayed out;
  Status status = ReplayWal(
      env, path,
      [&](WalRecordType type, const std::string& payload) {
        out.records.emplace_back(type, payload);
        return Status::Ok();
      },
      &out.stats);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return out;
}

TEST(WalPayloadTest, QueryPayloadRoundTripsHostileStrings) {
  LoggedQuery entry = MakeEntry(7);
  entry.sql = "SELECT '|' FROM t WHERE x = 'pipe|newline\nand\\back\r'";
  entry.user = "alice|bob";
  entry.purpose = "care\nplan";
  auto decoded = DecodeQueryWalPayload(EncodeQueryWalPayload(entry));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->id, entry.id);
  EXPECT_EQ(decoded->timestamp.micros(), entry.timestamp.micros());
  EXPECT_EQ(decoded->user, entry.user);
  EXPECT_EQ(decoded->role, entry.role);
  EXPECT_EQ(decoded->purpose, entry.purpose);
  EXPECT_EQ(decoded->sql, entry.sql);
}

TEST(WalPayloadTest, MalformedPayloadsAreRejected) {
  EXPECT_FALSE(DecodeQueryWalPayload("").ok());
  EXPECT_FALSE(DecodeQueryWalPayload("1|2|3").ok());
  EXPECT_FALSE(DecodeQueryWalPayload("x|2|u|r|p|sql").ok());
  EXPECT_FALSE(DecodeQueryWalPayload("1|y|u|r|p|sql").ok());
  EXPECT_FALSE(DecodeQueryWalPayload("1|2|u|r|p|sql|extra").ok());
}

TEST(WalTest, AppendsReplayInOrder) {
  Env* env = Env::Default();
  std::string path = JoinPath(ScratchDir("replay"), "wal");
  auto writer = WalWriter::Open(env, path, WalWriterOptions{});
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(
      (*writer)->Append(WalRecordType::kCheckpoint, "1|0").ok());
  for (int64_t id = 1; id <= 20; ++id) {
    ASSERT_TRUE((*writer)
                    ->Append(WalRecordType::kQuery,
                             EncodeQueryWalPayload(MakeEntry(id)))
                    .ok());
  }
  EXPECT_EQ((*writer)->records_written(), 21u);
  ASSERT_TRUE((*writer)->Close().ok());

  Replayed replayed = Replay(env, path);
  ASSERT_EQ(replayed.records.size(), 21u);
  EXPECT_EQ(replayed.stats.records_recovered, 21u);
  EXPECT_EQ(replayed.stats.torn_tail_bytes, 0u);
  EXPECT_EQ(replayed.records[0].first, WalRecordType::kCheckpoint);
  for (int64_t id = 1; id <= 20; ++id) {
    auto decoded = DecodeQueryWalPayload(replayed.records[id].second);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->id, id);
    EXPECT_EQ(decoded->sql, MakeEntry(id).sql);
  }
}

TEST(WalTest, MissingFileReplaysEmpty) {
  Replayed replayed =
      Replay(Env::Default(), JoinPath(ScratchDir("missing"), "nope"));
  EXPECT_TRUE(replayed.records.empty());
  EXPECT_EQ(replayed.stats.torn_tail_bytes, 0u);
}

// Every possible torn tail: cut the file at every byte boundary and
// check the replay recovers exactly the records that are fully present,
// flags the rest as torn, and never reports an error or a corrupt
// record.
TEST(WalTest, EveryTornTailRecoversTheValidPrefix) {
  Env* env = Env::Default();
  std::string dir = ScratchDir("torn");
  std::string path = JoinPath(dir, "wal");
  std::vector<std::string> frames;
  std::string full;
  frames.push_back(EncodeWalRecord(WalRecordType::kCheckpoint, "1|0"));
  for (int64_t id = 1; id <= 5; ++id) {
    frames.push_back(EncodeWalRecord(
        WalRecordType::kQuery, EncodeQueryWalPayload(MakeEntry(id))));
  }
  for (const auto& frame : frames) full += frame;

  for (size_t cut = 0; cut <= full.size(); ++cut) {
    ASSERT_TRUE(io::AtomicWriteFile(env, path, full.substr(0, cut)).ok());
    size_t expect_records = 0;
    size_t consumed = 0;
    while (expect_records < frames.size() &&
           consumed + frames[expect_records].size() <= cut) {
      consumed += frames[expect_records].size();
      ++expect_records;
    }
    Replayed replayed = Replay(env, path);
    EXPECT_EQ(replayed.stats.records_recovered, expect_records)
        << "cut at byte " << cut;
    EXPECT_EQ(replayed.stats.valid_prefix_bytes, consumed);
    EXPECT_EQ(replayed.stats.torn_tail_bytes, cut - consumed);
    // Recovered payloads are byte-identical to what was framed.
    for (size_t i = 0; i < replayed.records.size(); ++i) {
      EXPECT_EQ(EncodeWalRecord(replayed.records[i].first,
                                replayed.records[i].second),
                frames[i]);
    }
  }
}

// Flip every single byte of a WAL holding one record of each type: the
// replay must never deliver a corrupted record. (A flip in a later
// record must leave the earlier intact ones recoverable.)
TEST(WalTest, EveryByteFlipIsDetectedForEveryRecordType) {
  Env* env = Env::Default();
  std::string dir = ScratchDir("flip");
  std::string path = JoinPath(dir, "wal");
  const std::string checkpoint_frame =
      EncodeWalRecord(WalRecordType::kCheckpoint, "3|17");
  const std::string query_frame = EncodeWalRecord(
      WalRecordType::kQuery, EncodeQueryWalPayload(MakeEntry(1)));
  const std::string full = checkpoint_frame + query_frame;

  for (size_t i = 0; i < full.size(); ++i) {
    std::string corrupt = full;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x20);
    ASSERT_TRUE(io::AtomicWriteFile(env, path, corrupt).ok());
    Replayed replayed = Replay(env, path);
    const size_t intact =
        i < checkpoint_frame.size() ? 0 : 1;  // records before the flip
    ASSERT_LE(replayed.records.size(), intact + 0u) << "flipped byte " << i;
    EXPECT_EQ(replayed.stats.records_recovered, intact);
    EXPECT_GT(replayed.stats.torn_tail_bytes, 0u);
    for (size_t r = 0; r < replayed.records.size(); ++r) {
      EXPECT_EQ(EncodeWalRecord(replayed.records[r].first,
                                replayed.records[r].second),
                r == 0 ? checkpoint_frame : query_frame);
    }
  }
}

TEST(WalTest, UnknownRecordTypeEndsReplay) {
  Env* env = Env::Default();
  std::string path = JoinPath(ScratchDir("unknown"), "wal");
  // A frame with a valid CRC but an unknown type byte: CRC passes, the
  // type gate stops the replay (forward-incompatible records are not
  // silently skipped — recovery refuses to guess).
  std::string payload = "whatever";
  std::string body;
  body.push_back('Z');
  body += payload;
  std::string frame;
  uint32_t masked = io::MaskCrc(io::Crc32c(body));
  for (int shift = 0; shift < 32; shift += 8) {
    frame.push_back(static_cast<char>((masked >> shift) & 0xff));
  }
  uint32_t len = static_cast<uint32_t>(payload.size());
  for (int shift = 0; shift < 32; shift += 8) {
    frame.push_back(static_cast<char>((len >> shift) & 0xff));
  }
  frame += body;
  std::string full =
      EncodeWalRecord(WalRecordType::kCheckpoint, "1|0") + frame;
  ASSERT_TRUE(io::AtomicWriteFile(env, path, full).ok());
  Replayed replayed = Replay(env, path);
  EXPECT_EQ(replayed.stats.records_recovered, 1u);
  EXPECT_EQ(replayed.stats.torn_tail_bytes, frame.size());
}

TEST(WalTest, InsaneLengthFieldDoesNotAllocate) {
  Env* env = Env::Default();
  std::string path = JoinPath(ScratchDir("length"), "wal");
  std::string frame;
  for (int i = 0; i < 4; ++i) frame.push_back('\x11');  // garbage CRC
  for (int i = 0; i < 4; ++i) frame.push_back('\xff');  // len ~4 GiB
  frame.push_back('Q');
  frame += "tiny";
  ASSERT_TRUE(io::AtomicWriteFile(env, path, frame).ok());
  Replayed replayed = Replay(env, path);
  EXPECT_EQ(replayed.stats.records_recovered, 0u);
  EXPECT_EQ(replayed.stats.torn_tail_bytes, frame.size());
}

TEST(WalTest, TruncateToValidPrefixEnablesCleanReopen) {
  Env* env = Env::Default();
  std::string path = JoinPath(ScratchDir("reopen"), "wal");
  {
    auto writer = WalWriter::Open(env, path, WalWriterOptions{});
    ASSERT_TRUE(writer.ok());
    for (int64_t id = 1; id <= 3; ++id) {
      ASSERT_TRUE((*writer)
                      ->Append(WalRecordType::kQuery,
                               EncodeQueryWalPayload(MakeEntry(id)))
                      .ok());
    }
    ASSERT_TRUE((*writer)->Close().ok());
  }
  // Tear the tail mid-record.
  auto size = env->GetFileSize(path);
  ASSERT_TRUE(size.ok());
  ASSERT_TRUE(env->TruncateFile(path, *size - 5).ok());

  Replayed torn = Replay(env, path);
  EXPECT_EQ(torn.stats.records_recovered, 2u);
  ASSERT_TRUE(TruncateWalToValidPrefix(env, path, torn.stats).ok());
  EXPECT_EQ(*env->GetFileSize(path), torn.stats.valid_prefix_bytes);

  // Append after the recovered prefix; the log replays old + new.
  {
    auto writer =
        WalWriter::Open(env, path, WalWriterOptions{}, /*truncate=*/false);
    ASSERT_TRUE(writer.ok());
    EXPECT_EQ((*writer)->bytes_written(), torn.stats.valid_prefix_bytes);
    ASSERT_TRUE((*writer)
                    ->Append(WalRecordType::kQuery,
                             EncodeQueryWalPayload(MakeEntry(3)))
                    .ok());
    ASSERT_TRUE((*writer)->Close().ok());
  }
  Replayed repaired = Replay(env, path);
  EXPECT_EQ(repaired.stats.records_recovered, 3u);
  EXPECT_EQ(repaired.stats.torn_tail_bytes, 0u);
}

TEST(WalTest, OversizedPayloadIsRefused) {
  Env* env = Env::Default();
  std::string path = JoinPath(ScratchDir("oversize"), "wal");
  auto writer = WalWriter::Open(env, path, WalWriterOptions{});
  ASSERT_TRUE(writer.ok());
  std::string huge(65u << 20, 'x');
  EXPECT_EQ((*writer)->Append(WalRecordType::kQuery, huge).code(),
            StatusCode::kOutOfRange);
}

// The shipping side of replication tails the live WAL with a WalCursor
// while recovery may concurrently truncate the torn tail. The cursor
// must deliver every valid record exactly once, report a torn tail as
// "poll again" (a truncate may still repair it), and detect a file that
// shrank below its position as an unrecoverable loss of position.
TEST(WalCursorTest, TailsALiveWriterRecordByRecord) {
  Env* env = Env::Default();
  std::string path = JoinPath(ScratchDir("cursor_tail"), "wal");
  WalCursor cursor(env, path);
  WalRecordType type;
  std::string payload, framed;

  // Nothing yet (missing file) — clean "poll again".
  auto polled = cursor.Poll(&type, &payload);
  ASSERT_TRUE(polled.ok()) << polled.status().ToString();
  EXPECT_FALSE(*polled);

  auto writer = WalWriter::Open(env, path, WalWriterOptions{});
  ASSERT_TRUE(writer.ok());
  for (int64_t id = 1; id <= 5; ++id) {
    ASSERT_TRUE((*writer)
                    ->Append(WalRecordType::kQuery,
                             EncodeQueryWalPayload(MakeEntry(id)))
                    .ok());
    polled = cursor.Poll(&type, &payload, &framed);
    ASSERT_TRUE(polled.ok());
    ASSERT_TRUE(*polled);
    EXPECT_EQ(type, WalRecordType::kQuery);
    auto decoded = DecodeQueryWalPayload(payload);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->id, id);
    // The framed bytes are what replication ships: re-decoding them
    // must yield the identical record.
    EXPECT_EQ(framed, EncodeWalRecord(WalRecordType::kQuery, payload));
  }
  EXPECT_EQ(cursor.records_read(), 5u);
  // Caught up: clean EOF is "poll again", not an error.
  polled = cursor.Poll(&type, &payload);
  ASSERT_TRUE(polled.ok());
  EXPECT_FALSE(*polled);
  ASSERT_TRUE((*writer)->Close().ok());
}

TEST(WalCursorTest, TruncateRaceRepairsATornTailUnderTheCursor) {
  Env* env = Env::Default();
  std::string path = JoinPath(ScratchDir("cursor_race"), "wal");
  {
    auto writer = WalWriter::Open(env, path, WalWriterOptions{});
    ASSERT_TRUE(writer.ok());
    for (int64_t id = 1; id <= 3; ++id) {
      ASSERT_TRUE((*writer)
                      ->Append(WalRecordType::kQuery,
                               EncodeQueryWalPayload(MakeEntry(id)))
                      .ok());
    }
    ASSERT_TRUE((*writer)->Close().ok());
  }
  // Tear the last record mid-frame (a crash between write and sync).
  auto size = env->GetFileSize(path);
  ASSERT_TRUE(size.ok());
  ASSERT_TRUE(env->TruncateFile(path, *size - 5).ok());

  WalCursor cursor(env, path);
  WalRecordType type;
  std::string payload;
  for (int64_t id = 1; id <= 2; ++id) {
    auto polled = cursor.Poll(&type, &payload);
    ASSERT_TRUE(polled.ok());
    ASSERT_TRUE(*polled);
  }
  // At the torn record: "poll again" — never an error, because recovery
  // may still truncate the garbage out from under us.
  auto torn = cursor.Poll(&type, &payload);
  ASSERT_TRUE(torn.ok()) << torn.status().ToString();
  EXPECT_FALSE(*torn);

  // Recovery truncates to the valid prefix (exactly the cursor's
  // position) and a writer appends a fresh record 3.
  Replayed replayed = Replay(env, path);
  ASSERT_TRUE(TruncateWalToValidPrefix(env, path, replayed.stats).ok());
  EXPECT_EQ(cursor.offset(), replayed.stats.valid_prefix_bytes);
  {
    auto writer =
        WalWriter::Open(env, path, WalWriterOptions{}, /*truncate=*/false);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)
                    ->Append(WalRecordType::kQuery,
                             EncodeQueryWalPayload(MakeEntry(3)))
                    .ok());
    ASSERT_TRUE((*writer)->Close().ok());
  }
  auto repaired = cursor.Poll(&type, &payload);
  ASSERT_TRUE(repaired.ok());
  ASSERT_TRUE(*repaired);
  auto decoded = DecodeQueryWalPayload(payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->id, 3);
  EXPECT_EQ(cursor.records_read(), 3u);
}

TEST(WalCursorTest, FileShrunkBelowTheCursorDemandsAResync) {
  Env* env = Env::Default();
  std::string path = JoinPath(ScratchDir("cursor_shrunk"), "wal");
  {
    auto writer = WalWriter::Open(env, path, WalWriterOptions{});
    ASSERT_TRUE(writer.ok());
    for (int64_t id = 1; id <= 4; ++id) {
      ASSERT_TRUE((*writer)
                      ->Append(WalRecordType::kQuery,
                               EncodeQueryWalPayload(MakeEntry(id)))
                      .ok());
    }
    ASSERT_TRUE((*writer)->Close().ok());
  }
  WalCursor cursor(env, path);
  WalRecordType type;
  std::string payload;
  for (int64_t id = 1; id <= 4; ++id) {
    auto polled = cursor.Poll(&type, &payload);
    ASSERT_TRUE(polled.ok());
    ASSERT_TRUE(*polled);
  }
  // A checkpoint rotated the WAL: the file restarts shorter than the
  // cursor's offset. The reader's position is meaningless now.
  {
    auto writer = WalWriter::Open(env, path, WalWriterOptions{});
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append(WalRecordType::kCheckpoint, "2|4").ok());
    ASSERT_TRUE((*writer)->Close().ok());
  }
  auto shrunk = cursor.Poll(&type, &payload);
  ASSERT_FALSE(shrunk.ok());
  EXPECT_EQ(shrunk.status().code(), StatusCode::kOutOfRange);
  // Seek re-syncs onto the rotated file from the top.
  cursor.Seek(path, 0);
  auto fresh = cursor.Poll(&type, &payload);
  ASSERT_TRUE(fresh.ok());
  ASSERT_TRUE(*fresh);
  EXPECT_EQ(type, WalRecordType::kCheckpoint);
  EXPECT_EQ(payload, "2|4");
}

// A checkpoint record mid-stream (WAL reopened after recovery, or a
// primary that checkpointed between shipped records) is a marker, not a
// mutation: replay and the cursor both deliver it in order and keep
// going — queries after it must not be lost.
TEST(WalTest, CheckpointRecordMidStreamReplaysInOrder) {
  Env* env = Env::Default();
  std::string path = JoinPath(ScratchDir("ckpt_mid"), "wal");
  auto writer = WalWriter::Open(env, path, WalWriterOptions{});
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Append(WalRecordType::kCheckpoint, "1|0").ok());
  ASSERT_TRUE((*writer)
                  ->Append(WalRecordType::kQuery,
                           EncodeQueryWalPayload(MakeEntry(1)))
                  .ok());
  // Mid-stream checkpoint marker.
  ASSERT_TRUE((*writer)->Append(WalRecordType::kCheckpoint, "1|1").ok());
  ASSERT_TRUE((*writer)
                  ->Append(WalRecordType::kQuery,
                           EncodeQueryWalPayload(MakeEntry(2)))
                  .ok());
  ASSERT_TRUE((*writer)->Close().ok());

  Replayed replayed = Replay(env, path);
  ASSERT_EQ(replayed.records.size(), 4u);
  EXPECT_EQ(replayed.records[0].first, WalRecordType::kCheckpoint);
  EXPECT_EQ(replayed.records[1].first, WalRecordType::kQuery);
  EXPECT_EQ(replayed.records[2].first, WalRecordType::kCheckpoint);
  EXPECT_EQ(replayed.records[2].second, "1|1");
  EXPECT_EQ(replayed.records[3].first, WalRecordType::kQuery);
  auto last = DecodeQueryWalPayload(replayed.records[3].second);
  ASSERT_TRUE(last.ok());
  EXPECT_EQ(last->id, 2);

  WalCursor cursor(env, path);
  WalRecordType type;
  std::string payload;
  std::vector<WalRecordType> seen;
  while (true) {
    auto polled = cursor.Poll(&type, &payload);
    ASSERT_TRUE(polled.ok());
    if (!*polled) break;
    seen.push_back(type);
  }
  ASSERT_EQ(seen.size(), 4u);
  EXPECT_EQ(seen[2], WalRecordType::kCheckpoint);
}

TEST(FsyncPolicyTest, ParseForms) {
  size_t every_n = 64;
  auto policy = ParseFsyncPolicy("always", &every_n);
  ASSERT_TRUE(policy.ok());
  EXPECT_EQ(*policy, FsyncPolicy::kAlways);
  policy = ParseFsyncPolicy("never", &every_n);
  ASSERT_TRUE(policy.ok());
  EXPECT_EQ(*policy, FsyncPolicy::kNever);
  policy = ParseFsyncPolicy("every_n:128", &every_n);
  ASSERT_TRUE(policy.ok());
  EXPECT_EQ(*policy, FsyncPolicy::kEveryN);
  EXPECT_EQ(every_n, 128u);
  every_n = 64;
  policy = ParseFsyncPolicy("every_n", &every_n);
  ASSERT_TRUE(policy.ok());
  EXPECT_EQ(every_n, 64u);
  EXPECT_FALSE(ParseFsyncPolicy("sometimes", &every_n).ok());
  EXPECT_FALSE(ParseFsyncPolicy("every_n:", &every_n).ok());
  EXPECT_FALSE(ParseFsyncPolicy("every_n:0", &every_n).ok());
  EXPECT_EQ(std::string(FsyncPolicyName(FsyncPolicy::kAlways)), "always");
  EXPECT_EQ(std::string(FsyncPolicyName(FsyncPolicy::kEveryN)), "every_n");
  EXPECT_EQ(std::string(FsyncPolicyName(FsyncPolicy::kNever)), "never");
}

// The fsync policy drives real Sync() calls: count them via the fault
// injector (sync is a numbered op; crashing exactly at the k-th sync
// proves how many happened).
TEST(FsyncPolicyTest, EveryNSyncsOnCadence) {
  std::string dir = ScratchDir("cadence");
  io::FaultInjectingEnv env(Env::Default());
  WalWriterOptions options;
  options.fsync = FsyncPolicy::kEveryN;
  options.every_n = 3;
  auto writer = WalWriter::Open(&env, JoinPath(dir, "wal"), options);
  ASSERT_TRUE(writer.ok());
  for (int i = 0; i < 9; ++i) {
    ASSERT_TRUE((*writer)->Append(WalRecordType::kQuery, "p").ok());
  }
  ASSERT_TRUE((*writer)->Close().ok());
  // 9 appends + 3 cadence syncs (after records 3, 6, 9).
  EXPECT_EQ(env.ops_recorded(), 12);
}

}  // namespace
}  // namespace querylog
}  // namespace auditdb
