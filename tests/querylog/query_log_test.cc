#include "src/querylog/query_log.h"

#include <gtest/gtest.h>

namespace auditdb {
namespace {

Timestamp Ts(int64_t s) { return Timestamp(s * 1000000); }

TEST(QueryLogTest, AppendAssignsIds) {
  QueryLog log;
  int64_t id1 = log.Append("SELECT 1 FROM T", Ts(1), "alice", "doctor",
                           "treatment");
  int64_t id2 =
      log.Append("SELECT 2 FROM T", Ts(2), "bob", "clerk", "billing");
  EXPECT_EQ(id1, 1);
  EXPECT_EQ(id2, 2);
  EXPECT_EQ(log.size(), 2u);
}

TEST(QueryLogTest, GetById) {
  QueryLog log;
  int64_t id = log.Append("SELECT a FROM T", Ts(5), "alice", "doctor",
                          "treatment");
  auto entry = log.Get(id);
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ((*entry)->sql, "SELECT a FROM T");
  EXPECT_EQ((*entry)->user, "alice");
  EXPECT_EQ((*entry)->role, "doctor");
  EXPECT_EQ((*entry)->purpose, "treatment");
  EXPECT_EQ((*entry)->timestamp, Ts(5));
  EXPECT_FALSE(log.Get(0).ok());
  EXPECT_FALSE(log.Get(99).ok());
}

TEST(QueryLogTest, InInterval) {
  QueryLog log;
  log.Append("q1", Ts(10), "u", "r", "p");
  log.Append("q2", Ts(20), "u", "r", "p");
  log.Append("q3", Ts(30), "u", "r", "p");
  auto in_range = log.InInterval({Ts(15), Ts(30)});
  ASSERT_EQ(in_range.size(), 2u);
  EXPECT_EQ(in_range[0]->sql, "q2");
  EXPECT_EQ(in_range[1]->sql, "q3");
  EXPECT_TRUE(log.InInterval({Ts(40), Ts(50)}).empty());
}

TEST(QueryLogTest, ToStringIncludesAnnotations) {
  QueryLog log;
  int64_t id =
      log.Append("SELECT a FROM T", Ts(5), "alice", "doctor", "treatment");
  auto entry = log.Get(id);
  ASSERT_TRUE(entry.ok());
  std::string text = (*entry)->ToString();
  EXPECT_NE(text.find("alice"), std::string::npos);
  EXPECT_NE(text.find("doctor"), std::string::npos);
  EXPECT_NE(text.find("SELECT a FROM T"), std::string::npos);
}

}  // namespace
}  // namespace auditdb
