#include "src/types/column_vector.h"

#include <gtest/gtest.h>

namespace auditdb {
namespace {

ColumnVector FromList(std::vector<Value> values) {
  return ColumnVector::FromValues(values);
}

TEST(ColumnVectorTest, UniformIntSpecializes) {
  auto col = FromList({Value::Int(1), Value::Int(2), Value::Int(3)});
  EXPECT_EQ(col.layout(), ColumnVector::Layout::kInt64);
  EXPECT_EQ(col.size(), 3u);
  EXPECT_FALSE(col.has_nulls());
  EXPECT_EQ(col.ints()[1], 2);
  EXPECT_EQ(col.ValueAt(2), Value::Int(3));
  EXPECT_EQ(col.TypeAt(0), ValueType::kInt);
}

TEST(ColumnVectorTest, UniformDoubleAndString) {
  auto d = FromList({Value::Double(1.5), Value::Double(-2.5)});
  EXPECT_EQ(d.layout(), ColumnVector::Layout::kDouble);
  EXPECT_EQ(d.doubles()[0], 1.5);
  auto s = FromList({Value::String("x"), Value::String("y")});
  EXPECT_EQ(s.layout(), ColumnVector::Layout::kString);
  EXPECT_EQ(s.strings()[1], "y");
}

TEST(ColumnVectorTest, BoolAndTimestampPackAsInts) {
  auto b = FromList({Value::Bool(true), Value::Bool(false)});
  EXPECT_EQ(b.layout(), ColumnVector::Layout::kBool);
  EXPECT_EQ(b.ints()[0], 1);
  EXPECT_EQ(b.ValueAt(1), Value::Bool(false));
  auto t = FromList({Value::Time(Timestamp(42))});
  EXPECT_EQ(t.layout(), ColumnVector::Layout::kTimestamp);
  EXPECT_EQ(t.ints()[0], 42);
  EXPECT_EQ(t.ValueAt(0), Value::Time(Timestamp(42)));
}

TEST(ColumnVectorTest, NullsKeepSpecializedLayout) {
  auto col = FromList({Value::Int(1), Value::Null(), Value::Int(3)});
  EXPECT_EQ(col.layout(), ColumnVector::Layout::kInt64);
  EXPECT_TRUE(col.has_nulls());
  EXPECT_FALSE(col.IsNull(0));
  EXPECT_TRUE(col.IsNull(1));
  EXPECT_EQ(col.ValueAt(1), Value::Null());
  EXPECT_EQ(col.TypeAt(1), ValueType::kNull);
}

TEST(ColumnVectorTest, MixedTypesFallBackToGeneric) {
  auto col = FromList({Value::Int(1), Value::String("x"), Value::Null()});
  EXPECT_EQ(col.layout(), ColumnVector::Layout::kGeneric);
  EXPECT_TRUE(col.has_nulls());
  EXPECT_EQ(col.ValueAt(0), Value::Int(1));
  EXPECT_EQ(col.ValueAt(1), Value::String("x"));
  EXPECT_EQ(col.TypeAt(1), ValueType::kString);
  EXPECT_TRUE(col.IsNull(2));
}

TEST(ColumnVectorTest, AllNullIsGeneric) {
  auto col = FromList({Value::Null(), Value::Null()});
  EXPECT_EQ(col.layout(), ColumnVector::Layout::kGeneric);
  EXPECT_TRUE(col.has_nulls());
  EXPECT_EQ(col.ValueAt(0), Value::Null());
}

TEST(ColumnVectorTest, EmptyColumn) {
  auto col = FromList({});
  EXPECT_EQ(col.size(), 0u);
  EXPECT_FALSE(col.has_nulls());
}

Batch MakeBatch(std::vector<std::vector<Value>> columns) {
  Batch batch;
  batch.num_rows = columns.empty() ? 0 : columns[0].size();
  for (auto& col : columns) {
    batch.columns.push_back(ColumnVector::FromValues(col));
  }
  return batch;
}

TEST(NonNullRowsTest, ScreensEveryListedColumn) {
  auto batch = MakeBatch({
      {Value::Int(1), Value::Null(), Value::Int(3), Value::Int(4)},
      {Value::String("a"), Value::String("b"), Value::Null(),
       Value::String("d")},
  });
  EXPECT_EQ(NonNullRows(batch, {0}), (std::vector<size_t>{0, 2, 3}));
  EXPECT_EQ(NonNullRows(batch, {1}), (std::vector<size_t>{0, 1, 3}));
  EXPECT_EQ(NonNullRows(batch, {0, 1}), (std::vector<size_t>{0, 3}));
}

TEST(NonNullRowsTest, NoColumnsMeansAllRows) {
  auto batch = MakeBatch({{Value::Null(), Value::Int(2)}});
  EXPECT_EQ(NonNullRows(batch, {}), (std::vector<size_t>{0, 1}));
}

TEST(NonNullRowsTest, NoNullsFastPath) {
  auto batch = MakeBatch({{Value::Int(1), Value::Int(2), Value::Int(3)}});
  EXPECT_EQ(NonNullRows(batch, {0}), (std::vector<size_t>{0, 1, 2}));
}

}  // namespace
}  // namespace auditdb
