#include "src/types/value.h"

#include <gtest/gtest.h>

namespace auditdb {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), ValueType::kNull);
  EXPECT_EQ(v.ToString(), "NULL");
}

TEST(ValueTest, Accessors) {
  EXPECT_EQ(Value::Int(7).int_value(), 7);
  EXPECT_EQ(Value::Double(2.5).double_value(), 2.5);
  EXPECT_EQ(Value::String("hi").string_value(), "hi");
  EXPECT_EQ(Value::Bool(true).bool_value(), true);
  EXPECT_EQ(Value::Time(Timestamp(123)).time_value(), Timestamp(123));
}

TEST(ValueTest, SameTypeComparison) {
  auto cmp = Value::Int(1).Compare(Value::Int(2));
  ASSERT_TRUE(cmp.ok());
  EXPECT_LT(*cmp, 0);
  cmp = Value::String("b").Compare(Value::String("a"));
  ASSERT_TRUE(cmp.ok());
  EXPECT_GT(*cmp, 0);
  cmp = Value::String("a").Compare(Value::String("a"));
  ASSERT_TRUE(cmp.ok());
  EXPECT_EQ(*cmp, 0);
}

TEST(ValueTest, CrossNumericComparison) {
  auto cmp = Value::Int(2).Compare(Value::Double(2.0));
  ASSERT_TRUE(cmp.ok());
  EXPECT_EQ(*cmp, 0);
  cmp = Value::Double(1.5).Compare(Value::Int(2));
  ASSERT_TRUE(cmp.ok());
  EXPECT_LT(*cmp, 0);
}

TEST(ValueTest, StringNumericCoercion) {
  // The paper writes zipcode both as '145568' and 145568.
  auto cmp = Value::String("145568").Compare(Value::Int(145568));
  ASSERT_TRUE(cmp.ok());
  EXPECT_EQ(*cmp, 0);
  cmp = Value::Int(145568).Compare(Value::String("145568"));
  ASSERT_TRUE(cmp.ok());
  EXPECT_EQ(*cmp, 0);
  cmp = Value::String("145569").Compare(Value::Int(145568));
  ASSERT_TRUE(cmp.ok());
  EXPECT_GT(*cmp, 0);
}

TEST(ValueTest, NonNumericStringVsIntIsTypeError) {
  auto cmp = Value::String("abc").Compare(Value::Int(1));
  EXPECT_FALSE(cmp.ok());
  EXPECT_EQ(cmp.status().code(), StatusCode::kTypeError);
}

TEST(ValueTest, BoolVsStringIsTypeError) {
  auto cmp = Value::Bool(true).Compare(Value::String("true"));
  EXPECT_FALSE(cmp.ok());
}

TEST(ValueTest, NullComparesEqualOnlyToNull) {
  auto cmp = Value::Null().Compare(Value::Null());
  ASSERT_TRUE(cmp.ok());
  EXPECT_EQ(*cmp, 0);
  cmp = Value::Null().Compare(Value::Int(0));
  ASSERT_TRUE(cmp.ok());
  EXPECT_NE(*cmp, 0);
}

TEST(ValueTest, StrictEquality) {
  EXPECT_EQ(Value::Int(1), Value::Int(1));
  EXPECT_NE(Value::Int(1), Value::Double(1.0));  // strict: type matters
  EXPECT_NE(Value::Int(1), Value::Int(2));
  EXPECT_EQ(Value::Null(), Value::Null());
}

TEST(ValueTest, TotalOrderForContainers) {
  std::set<Value> values;
  values.insert(Value::Int(3));
  values.insert(Value::Int(1));
  values.insert(Value::String("a"));
  values.insert(Value::Null());
  EXPECT_EQ(values.size(), 4u);
  EXPECT_EQ(values.count(Value::Int(1)), 1u);
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Int(42).Hash(), Value::Int(42).Hash());
  EXPECT_EQ(Value::String("x").Hash(), Value::String("x").Hash());
  // Different types hash differently (type tag seeds the hash).
  EXPECT_NE(Value::Int(0).Hash(), Value::Null().Hash());
}

TEST(ValueTest, ToStringForms) {
  EXPECT_EQ(Value::Int(5).ToString(), "5");
  EXPECT_EQ(Value::String("hi").ToString(), "'hi'");
  EXPECT_EQ(Value::String("hi").ToDisplayString(), "hi");
  EXPECT_EQ(Value::Bool(false).ToString(), "FALSE");
  EXPECT_EQ(Value::Double(2.5).ToString(), "2.5");
}

}  // namespace
}  // namespace auditdb
