#include "src/backlog/backlog.h"

#include <gtest/gtest.h>

#include "src/engine/executor.h"

namespace auditdb {
namespace {

Timestamp Ts(int64_t s) { return Timestamp(s * 1000000); }

TableSchema TSchema() {
  return TableSchema("T",
                     {{"a", ValueType::kInt}, {"b", ValueType::kString}});
}

class BacklogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    backlog_.Attach(&db_);
    ASSERT_TRUE(db_.CreateTable(TSchema()).ok());
  }

  /// Value of column a for tid at snapshot time t (or nullopt if absent).
  std::optional<int64_t> ValueAt(Timestamp t, Tid tid) {
    auto snapshot = backlog_.SnapshotAt(t);
    EXPECT_TRUE(snapshot.ok());
    auto table = snapshot->GetTable("T");
    EXPECT_TRUE(table.ok());
    auto row = (*table)->Get(tid);
    if (!row.ok()) return std::nullopt;
    return (*row)->values[0].int_value();
  }

  Database db_;
  Backlog backlog_;
};

TEST_F(BacklogTest, CapturesEventsInOrder) {
  auto tid = db_.Insert("T", {Value::Int(1), Value::String("x")}, Ts(10));
  ASSERT_TRUE(tid.ok());
  ASSERT_TRUE(
      db_.Update("T", *tid, {Value::Int(2), Value::String("x")}, Ts(20))
          .ok());
  ASSERT_TRUE(db_.Delete("T", *tid, Ts(30)).ok());
  ASSERT_EQ(backlog_.event_count(), 3u);
  EXPECT_EQ(backlog_.EventAt(0).op, ChangeEvent::Op::kInsert);
  EXPECT_EQ(backlog_.EventAt(1).op, ChangeEvent::Op::kUpdate);
  EXPECT_EQ(backlog_.EventAt(2).op, ChangeEvent::Op::kDelete);
  EXPECT_EQ(backlog_.EventsForTable("T").size(), 3u);
  EXPECT_TRUE(backlog_.EventsForTable("U").empty());
}

TEST_F(BacklogTest, SnapshotReconstructsPastStates) {
  auto tid = db_.Insert("T", {Value::Int(1), Value::String("x")}, Ts(10));
  ASSERT_TRUE(tid.ok());
  ASSERT_TRUE(
      db_.Update("T", *tid, {Value::Int(2), Value::String("x")}, Ts(20))
          .ok());
  ASSERT_TRUE(db_.Delete("T", *tid, Ts(30)).ok());

  EXPECT_EQ(ValueAt(Ts(5), *tid), std::nullopt);   // before insert
  EXPECT_EQ(ValueAt(Ts(10), *tid), 1);             // at insert
  EXPECT_EQ(ValueAt(Ts(15), *tid), 1);             // between
  EXPECT_EQ(ValueAt(Ts(20), *tid), 2);             // at update
  EXPECT_EQ(ValueAt(Ts(25), *tid), 2);
  EXPECT_EQ(ValueAt(Ts(30), *tid), std::nullopt);  // deleted
  EXPECT_EQ(ValueAt(Ts(100), *tid), std::nullopt);
}

TEST_F(BacklogTest, SnapshotPreservesTids) {
  ASSERT_TRUE(
      db_.InsertWithTid("T", 42, {Value::Int(7), Value::String("q")}, Ts(10))
          .ok());
  auto snapshot = backlog_.SnapshotAt(Ts(10));
  ASSERT_TRUE(snapshot.ok());
  auto table = snapshot->GetTable("T");
  ASSERT_TRUE(table.ok());
  EXPECT_TRUE((*table)->Contains(42));
}

TEST_F(BacklogTest, SnapshotViewIsQueryable) {
  ASSERT_TRUE(db_.Insert("T", {Value::Int(1), Value::String("x")}, Ts(10))
                  .ok());
  ASSERT_TRUE(db_.Insert("T", {Value::Int(5), Value::String("y")}, Ts(20))
                  .ok());
  auto snapshot = backlog_.SnapshotAt(Ts(15));
  ASSERT_TRUE(snapshot.ok());
  auto result = ExecuteSql("SELECT a FROM T", snapshot->View());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][0], Value::Int(1));
}

TEST_F(BacklogTest, VersionTimestamps) {
  ASSERT_TRUE(db_.Insert("T", {Value::Int(1), Value::String("x")}, Ts(10))
                  .ok());
  ASSERT_TRUE(db_.Insert("T", {Value::Int(2), Value::String("y")}, Ts(20))
                  .ok());
  ASSERT_TRUE(db_.Insert("T", {Value::Int(3), Value::String("z")}, Ts(30))
                  .ok());

  // Interval covering everything after the first insert.
  auto stamps = backlog_.VersionTimestamps({Ts(15), Ts(35)});
  EXPECT_EQ(stamps, (std::vector<Timestamp>{Ts(15), Ts(20), Ts(30)}));

  // Instant interval: exactly one version.
  stamps = backlog_.VersionTimestamps({Ts(25), Ts(25)});
  EXPECT_EQ(stamps, (std::vector<Timestamp>{Ts(25)}));

  // Events at the interval start are not re-listed (state at start
  // already includes them).
  stamps = backlog_.VersionTimestamps({Ts(20), Ts(25)});
  EXPECT_EQ(stamps, (std::vector<Timestamp>{Ts(20)}));
}

TEST_F(BacklogTest, EventCountAt) {
  ASSERT_TRUE(db_.Insert("T", {Value::Int(1), Value::String("x")}, Ts(10))
                  .ok());
  ASSERT_TRUE(db_.Insert("T", {Value::Int(2), Value::String("y")}, Ts(20))
                  .ok());
  EXPECT_EQ(backlog_.EventCountAt(Ts(5)), 0u);
  EXPECT_EQ(backlog_.EventCountAt(Ts(10)), 1u);
  EXPECT_EQ(backlog_.EventCountAt(Ts(15)), 1u);
  EXPECT_EQ(backlog_.EventCountAt(Ts(20)), 2u);
  EXPECT_EQ(backlog_.EventCountAt(Ts(99)), 2u);
}

TEST_F(BacklogTest, MaterializedBacklogTableIsQueryable) {
  auto tid = db_.Insert("T", {Value::Int(1), Value::String("x")}, Ts(10));
  ASSERT_TRUE(tid.ok());
  ASSERT_TRUE(
      db_.Update("T", *tid, {Value::Int(2), Value::String("y")}, Ts(20))
          .ok());
  ASSERT_TRUE(db_.Delete("T", *tid, Ts(30)).ok());

  auto b_table = backlog_.MaterializeBacklogTable("T");
  ASSERT_TRUE(b_table.ok()) << b_table.status().ToString();
  EXPECT_EQ((*b_table)->name(), "b-T");
  ASSERT_EQ((*b_table)->size(), 3u);

  // Query the backlog relation like any other table (the paper's
  // b-Patients idiom).
  DatabaseView view;
  view.AddTable(b_table->get());
  auto updates = ExecuteSql("SELECT a, tid FROM b-T WHERE op = 'update'",
                            view);
  ASSERT_TRUE(updates.ok()) << updates.status().ToString();
  ASSERT_EQ(updates->rows.size(), 1u);
  EXPECT_EQ(updates->rows[0][0], Value::Int(2));
  EXPECT_EQ(updates->rows[0][1], Value::Int(*tid));

  // All versions of column a ever associated with the tuple.
  auto versions = ExecuteSql(
      "SELECT a FROM b-T WHERE tid = " + std::to_string(*tid), view);
  ASSERT_TRUE(versions.ok());
  EXPECT_EQ(versions->rows.size(), 3u);  // insert, update, delete images
}

TEST_F(BacklogTest, SnapshotsMirrorLiveIndexes) {
  ASSERT_TRUE(db_.Insert("T", {Value::Int(1), Value::String("x")}, Ts(10))
                  .ok());
  ASSERT_TRUE(db_.Insert("T", {Value::Int(2), Value::String("y")}, Ts(20))
                  .ok());
  auto live = db_.GetTable("T");
  ASSERT_TRUE(live.ok());
  ASSERT_TRUE((*live)->CreateIndex("a").ok());

  auto snapshot = backlog_.SnapshotAt(Ts(15));
  ASSERT_TRUE(snapshot.ok());
  auto table = snapshot->GetTable("T");
  ASSERT_TRUE(table.ok());
  EXPECT_TRUE((*table)->HasIndex("a"));
  auto hits = (*table)->IndexLookupEq("a", Value::Int(1));
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 1u);
  // The second insert is after the snapshot time: not in its index.
  hits = (*table)->IndexLookupEq("a", Value::Int(2));
  ASSERT_TRUE(hits.ok());
  EXPECT_TRUE(hits->empty());
}

TEST_F(BacklogTest, MaterializeUnknownTableFails) {
  EXPECT_FALSE(backlog_.MaterializeBacklogTable("Nope").ok());
}

TEST(UnattachedBacklogTest, SnapshotFails) {
  Backlog backlog;
  EXPECT_FALSE(backlog.SnapshotAt(Ts(1)).ok());
}

TEST(MultiTableBacklogTest, SnapshotCoversAllTables) {
  Database db;
  Backlog backlog;
  backlog.Attach(&db);
  ASSERT_TRUE(db.CreateTable(TSchema()).ok());
  ASSERT_TRUE(
      db.CreateTable(TableSchema("U", {{"x", ValueType::kInt}})).ok());
  ASSERT_TRUE(db.Insert("T", {Value::Int(1), Value::String("a")}, Ts(1))
                  .ok());
  ASSERT_TRUE(db.Insert("U", {Value::Int(9)}, Ts(2)).ok());
  auto snapshot = backlog.SnapshotAt(Ts(2));
  ASSERT_TRUE(snapshot.ok());
  EXPECT_TRUE(snapshot->GetTable("T").ok());
  EXPECT_TRUE(snapshot->GetTable("U").ok());
  auto u = snapshot->GetTable("U");
  EXPECT_EQ((*u)->size(), 1u);
}

}  // namespace
}  // namespace auditdb
