#include <gtest/gtest.h>

#include <memory>
#include <type_traits>

#include "src/storage/database.h"
#include "src/storage/table.h"

namespace auditdb {
namespace {

// Regression for the moved-from-table hazard: readers hold shared state
// handed out by a Table, so moving one would strand them against a
// hollow shell. The type must stay pinned behind unique_ptr.
static_assert(!std::is_move_constructible_v<Table>,
              "Table must not be move-constructible");
static_assert(!std::is_move_assignable_v<Table>,
              "Table must not be move-assignable");
static_assert(!std::is_copy_constructible_v<Table>,
              "Table must not be copyable");

TableSchema TwoColSchema() {
  return TableSchema("T",
                     {{"a", ValueType::kInt}, {"b", ValueType::kString}});
}

Timestamp Ts(int64_t s) { return Timestamp(s * 1000000); }

TEST(TableVersionTest, PinnedVersionIsImmutableUnderWrites) {
  Table table(TwoColSchema());
  ASSERT_TRUE(table.Insert({Value::Int(1), Value::String("x")}).ok());
  ASSERT_TRUE(table.Insert({Value::Int(2), Value::String("y")}).ok());

  auto version = table.CurrentVersion();
  ASSERT_EQ(version->size(), 2u);

  // Every mutation kind, against storage the version shares.
  ASSERT_TRUE(table.Insert({Value::Int(3), Value::String("z")}).ok());
  ASSERT_TRUE(
      table.UpdateColumn(1, "b", Value::String("mutated")).ok());
  ASSERT_TRUE(table.Delete(2).ok());

  // The pin still reads the old world.
  EXPECT_EQ(version->size(), 2u);
  auto row = version->Get(1);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ((*row)->values[1], Value::String("x"));
  EXPECT_TRUE(version->Contains(2));
  EXPECT_FALSE(version->Contains(3));

  // The live table reads the new world.
  EXPECT_EQ(table.size(), 2u);
  auto live = table.Get(1);
  ASSERT_TRUE(live.ok());
  EXPECT_EQ((*live)->values[1], Value::String("mutated"));
  EXPECT_FALSE(table.Contains(2));
  EXPECT_TRUE(table.Contains(3));
}

TEST(TableVersionTest, QuietTablePinsTheSameVersionObject) {
  Table table(TwoColSchema());
  ASSERT_TRUE(table.Insert({Value::Int(1), Value::String("x")}).ok());
  auto a = table.CurrentVersion();
  auto b = table.CurrentVersion();
  EXPECT_EQ(a.get(), b.get());
  ASSERT_TRUE(table.Insert({Value::Int(2), Value::String("y")}).ok());
  auto c = table.CurrentVersion();
  EXPECT_NE(a.get(), c.get());
}

TEST(TableVersionTest, EpochAdvancesOncePerMutation) {
  Table table(TwoColSchema());
  const uint64_t e0 = table.epoch();
  ASSERT_TRUE(table.Insert({Value::Int(1), Value::String("x")}).ok());
  EXPECT_EQ(table.epoch(), e0 + 1);
  ASSERT_TRUE(table.UpdateColumn(1, "a", Value::Int(9)).ok());
  EXPECT_EQ(table.epoch(), e0 + 2);
  ASSERT_TRUE(table.Delete(1).ok());
  EXPECT_EQ(table.epoch(), e0 + 3);
  // A failed mutation publishes nothing.
  EXPECT_FALSE(table.Delete(1).ok());
  EXPECT_EQ(table.epoch(), e0 + 3);
  // The version carries the epoch it was published at.
  EXPECT_EQ(table.CurrentVersion()->epoch(), e0 + 3);
}

TEST(TableVersionTest, CowChargesOnlyWhenStorageIsShared) {
  Table table(TwoColSchema());
  ASSERT_TRUE(table.Insert({Value::Int(1), Value::String("x")}).ok());
  ASSERT_TRUE(table.UpdateColumn(1, "a", Value::Int(2)).ok());
  // No version pinned across those writes: in-place, nothing copied.
  EXPECT_EQ(table.stats().cow_rows.load(), 0u);

  auto pinned = table.CurrentVersion();
  ASSERT_TRUE(table.UpdateColumn(1, "a", Value::Int(3)).ok());
  // The touched segment was shared with the pin, so it was copied.
  EXPECT_GT(table.stats().cow_rows.load(), 0u);
  auto row = pinned->Get(1);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ((*row)->values[0], Value::Int(2));
}

TEST(TableVersionTest, ColumnarBatchIsBuiltOncePerVersion) {
  Table table(TwoColSchema());
  ASSERT_TRUE(table.Insert({Value::Int(1), Value::String("x")}).ok());
  auto version = table.CurrentVersion();
  auto batch1 = version->Columnar();
  auto batch2 = version->Columnar();
  EXPECT_EQ(batch1.get(), batch2.get());
  EXPECT_EQ(table.stats().columnar_builds.load(), 1u);
  EXPECT_GE(table.stats().columnar_hits.load(), 1u);

  // A write publishes a new version with its own (lazily built) batch;
  // the old batch stays valid for its pinners.
  ASSERT_TRUE(table.Insert({Value::Int(2), Value::String("y")}).ok());
  auto batch3 = table.Columnar();
  EXPECT_NE(batch1.get(), batch3.get());
  EXPECT_EQ(table.stats().columnar_builds.load(), 2u);
  EXPECT_EQ(batch1->num_rows, 1u);
  EXPECT_EQ(batch3->num_rows, 2u);
}

TEST(TableVersionTest, GetPositionResolvesTidsWithinTheVersion) {
  Table table(TwoColSchema());
  ASSERT_TRUE(table.InsertWithTid(11, {Value::Int(1), Value::String("x")})
                  .ok());
  ASSERT_TRUE(table.InsertWithTid(12, {Value::Int(2), Value::String("y")})
                  .ok());
  auto version = table.CurrentVersion();
  auto pos = version->GetPosition(12);
  ASSERT_TRUE(pos.ok());
  EXPECT_EQ(*pos, 1u);
  EXPECT_EQ(version->rows()[*pos].tid, 12);
  EXPECT_FALSE(version->GetPosition(99).ok());
}

TEST(TableVersionTest, LiveVersionAccountingTracksPins) {
  Table table(TwoColSchema());
  ASSERT_TRUE(table.Insert({Value::Int(1), Value::String("x")}).ok());
  {
    auto v1 = table.CurrentVersion();
    ASSERT_TRUE(table.Insert({Value::Int(2), Value::String("y")}).ok());
    auto v2 = table.CurrentVersion();
    EXPECT_EQ(table.stats().live_versions.load(), 2);
    EXPECT_EQ(table.stats().versions_published.load(), 2u);
  }
  // Pins released (the table's own cache may keep the newest alive).
  EXPECT_LE(table.stats().live_versions.load(), 1);
}

TEST(DatabaseSnapshotTest, SnapshotIsAConsistentMultiTableCut) {
  Database db;
  ASSERT_TRUE(db.CreateTable(TableSchema(
                                 "A", {{"x", ValueType::kInt}}))
                  .ok());
  ASSERT_TRUE(db.CreateTable(TableSchema(
                                 "B", {{"y", ValueType::kInt}}))
                  .ok());
  ASSERT_TRUE(db.Insert("A", {Value::Int(1)}, Ts(1)).ok());

  DatabaseView snap = db.Snapshot();
  ASSERT_TRUE(db.Insert("A", {Value::Int(2)}, Ts(2)).ok());
  ASSERT_TRUE(db.Insert("B", {Value::Int(3)}, Ts(2)).ok());

  auto a = snap.GetTable("A");
  auto b = snap.GetTable("B");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ((*a)->size(), 1u);
  EXPECT_EQ((*b)->size(), 0u);
  // A fresh snapshot sees both writes.
  DatabaseView now = db.Snapshot();
  EXPECT_EQ((*now.GetTable("A"))->size(), 2u);
  EXPECT_EQ((*now.GetTable("B"))->size(), 1u);
}

TEST(DatabaseSnapshotTest, EpochFingerprintIsPerTable) {
  Database db;
  ASSERT_TRUE(db.CreateTable(TableSchema(
                                 "A", {{"x", ValueType::kInt}}))
                  .ok());
  ASSERT_TRUE(db.CreateTable(TableSchema(
                                 "B", {{"y", ValueType::kInt}}))
                  .ok());
  DatabaseView v1 = db.Snapshot();
  ASSERT_TRUE(db.Insert("B", {Value::Int(1)}, Ts(1)).ok());
  DatabaseView v2 = db.Snapshot();

  // A write to B changes fingerprints that read B, not those that only
  // read A — this is exactly what keeps caches hot across unrelated
  // writes.
  EXPECT_EQ(v1.EpochFingerprint({"A"}), v2.EpochFingerprint({"A"}));
  EXPECT_NE(v1.EpochFingerprint({"B"}), v2.EpochFingerprint({"B"}));
  EXPECT_NE(v1.EpochFingerprint({"A", "B"}),
            v2.EpochFingerprint({"A", "B"}));
  // Order-independent; absent tables hash as absent, not as epoch 0.
  EXPECT_EQ(v1.EpochFingerprint({"A", "B"}),
            v1.EpochFingerprint({"B", "A"}));
  EXPECT_NE(v1.EpochFingerprint({"A", "missing"}),
            v1.EpochFingerprint({"A"}));
}

TEST(DatabaseSnapshotTest, CatalogEpochTracksSchemaNotRows) {
  Database db;
  ASSERT_TRUE(db.CreateTable(TableSchema(
                                 "A", {{"x", ValueType::kInt}}))
                  .ok());
  const uint64_t schema_epoch = db.catalog_epoch();
  ASSERT_TRUE(db.Insert("A", {Value::Int(1)}, Ts(1)).ok());
  EXPECT_EQ(db.catalog_epoch(), schema_epoch);
  ASSERT_TRUE(db.CreateTable(TableSchema(
                                 "B", {{"y", ValueType::kInt}}))
                  .ok());
  EXPECT_GT(db.catalog_epoch(), schema_epoch);
}

}  // namespace
}  // namespace auditdb
