#include "src/storage/database.h"

#include <gtest/gtest.h>

namespace auditdb {
namespace {

TableSchema TSchema() {
  return TableSchema("T",
                     {{"a", ValueType::kInt}, {"b", ValueType::kString}});
}

Timestamp Ts(int64_t s) { return Timestamp(s * 1000000); }

TEST(DatabaseTest, CreateAndGetTable) {
  Database db;
  ASSERT_TRUE(db.CreateTable(TSchema()).ok());
  EXPECT_TRUE(db.HasTable("T"));
  EXPECT_FALSE(db.HasTable("U"));
  EXPECT_EQ(db.CreateTable(TSchema()).code(), StatusCode::kAlreadyExists);
  auto t = db.GetTable("T");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->name(), "T");
  EXPECT_FALSE(db.GetTable("U").ok());
}

TEST(DatabaseTest, CatalogTracksTables) {
  Database db;
  ASSERT_TRUE(db.CreateTable(TSchema()).ok());
  auto type = db.catalog().TypeOf(ColumnRef{"T", "a"});
  ASSERT_TRUE(type.ok());
  EXPECT_EQ(*type, ValueType::kInt);
}

TEST(DatabaseTest, MutationsFireTriggers) {
  Database db;
  ASSERT_TRUE(db.CreateTable(TSchema()).ok());
  std::vector<ChangeEvent> events;
  db.AddChangeListener(
      [&](const ChangeEvent& e) { events.push_back(e); });

  auto tid = db.Insert("T", {Value::Int(1), Value::String("x")}, Ts(1));
  ASSERT_TRUE(tid.ok());
  ASSERT_TRUE(
      db.Update("T", *tid, {Value::Int(2), Value::String("y")}, Ts(2)).ok());
  ASSERT_TRUE(db.UpdateColumn("T", *tid, "b", Value::String("z"), Ts(3)).ok());
  ASSERT_TRUE(db.Delete("T", *tid, Ts(4)).ok());

  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].op, ChangeEvent::Op::kInsert);
  EXPECT_EQ(events[0].row.values[0], Value::Int(1));
  EXPECT_EQ(events[1].op, ChangeEvent::Op::kUpdate);
  EXPECT_EQ(events[1].row.values[0], Value::Int(2));
  EXPECT_EQ(events[2].op, ChangeEvent::Op::kUpdate);
  EXPECT_EQ(events[2].row.values[1], Value::String("z"));
  EXPECT_EQ(events[3].op, ChangeEvent::Op::kDelete);
  EXPECT_EQ(events[3].row.tid, *tid);  // before-image carries the tid
  EXPECT_EQ(events[3].timestamp, Ts(4));
}

TEST(DatabaseTest, FailedMutationDoesNotFire) {
  Database db;
  ASSERT_TRUE(db.CreateTable(TSchema()).ok());
  int fired = 0;
  db.AddChangeListener([&](const ChangeEvent&) { ++fired; });
  EXPECT_FALSE(db.Insert("U", {Value::Int(1)}, Ts(1)).ok());
  EXPECT_FALSE(db.Update("T", 99, {Value::Int(1), Value::String("x")}, Ts(1))
                   .ok());
  EXPECT_FALSE(db.Delete("T", 99, Ts(1)).ok());
  EXPECT_EQ(fired, 0);
}

TEST(DatabaseTest, InsertWithTidForFixtures) {
  Database db;
  ASSERT_TRUE(db.CreateTable(TSchema()).ok());
  ASSERT_TRUE(
      db.InsertWithTid("T", 11, {Value::Int(1), Value::String("x")}, Ts(1))
          .ok());
  auto table = db.GetTable("T");
  ASSERT_TRUE(table.ok());
  EXPECT_TRUE((*table)->Contains(11));
}

TEST(DatabaseViewTest, ViewSeesCurrentState) {
  Database db;
  ASSERT_TRUE(db.CreateTable(TSchema()).ok());
  ASSERT_TRUE(db.Insert("T", {Value::Int(1), Value::String("x")}, Ts(1)).ok());
  DatabaseView view = db.View();
  EXPECT_TRUE(view.HasTable("T"));
  auto table = view.GetTable("T");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->size(), 1u);
  EXPECT_FALSE(view.GetTable("U").ok());
  EXPECT_EQ(view.TableNames(), (std::vector<std::string>{"T"}));
  // Catalog resolution works through the view.
  auto ref = view.catalog().Resolve(ColumnRef{"", "a"}, {"T"});
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ(ref->table, "T");
}

}  // namespace
}  // namespace auditdb
