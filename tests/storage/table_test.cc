#include "src/storage/table.h"

#include <gtest/gtest.h>

#include <memory>

namespace auditdb {
namespace {

TableSchema TwoColSchema() {
  return TableSchema("T",
                     {{"a", ValueType::kInt}, {"b", ValueType::kString}});
}

std::vector<Value> Row1() { return {Value::Int(1), Value::String("x")}; }
std::vector<Value> Row2() { return {Value::Int(2), Value::String("y")}; }

TEST(TidTest, Formatting) {
  EXPECT_EQ(TidToString(12), "t12");
  EXPECT_EQ(TidToString(1), "t1");
}

TEST(TableTest, InsertAssignsSequentialTids) {
  Table table(TwoColSchema());
  auto t1 = table.Insert(Row1());
  auto t2 = table.Insert(Row2());
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(*t1, 1);
  EXPECT_EQ(*t2, 2);
  EXPECT_EQ(table.size(), 2u);
}

TEST(TableTest, ArityChecked) {
  Table table(TwoColSchema());
  EXPECT_FALSE(table.Insert({Value::Int(1)}).ok());
  EXPECT_FALSE(
      table.Insert({Value::Int(1), Value::String("x"), Value::Int(2)}).ok());
}

TEST(TableTest, InsertWithTid) {
  Table table(TwoColSchema());
  ASSERT_TRUE(table.InsertWithTid(11, Row1()).ok());
  EXPECT_EQ(table.InsertWithTid(11, Row2()).code(),
            StatusCode::kAlreadyExists);
  // Auto-assign continues after the explicit tid.
  auto next = table.Insert(Row2());
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(*next, 12);
}

TEST(TableTest, GetAndContains) {
  Table table(TwoColSchema());
  auto tid = table.Insert(Row1());
  ASSERT_TRUE(tid.ok());
  EXPECT_TRUE(table.Contains(*tid));
  auto row = table.Get(*tid);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ((*row)->values[1], Value::String("x"));
  EXPECT_FALSE(table.Get(99).ok());
  EXPECT_FALSE(table.Contains(99));
}

TEST(TableTest, UpdateReplacesImage) {
  Table table(TwoColSchema());
  auto tid = table.Insert(Row1());
  ASSERT_TRUE(tid.ok());
  ASSERT_TRUE(table.Update(*tid, Row2()).ok());
  auto row = table.Get(*tid);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ((*row)->values[0], Value::Int(2));
  EXPECT_FALSE(table.Update(99, Row2()).ok());
}

TEST(TableTest, UpdateColumn) {
  Table table(TwoColSchema());
  auto tid = table.Insert(Row1());
  ASSERT_TRUE(tid.ok());
  ASSERT_TRUE(table.UpdateColumn(*tid, "b", Value::String("z")).ok());
  auto row = table.Get(*tid);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ((*row)->values[1], Value::String("z"));
  EXPECT_FALSE(table.UpdateColumn(*tid, "nope", Value::Int(0)).ok());
  EXPECT_FALSE(table.UpdateColumn(99, "b", Value::Int(0)).ok());
}

TEST(TableTest, DeleteReturnsBeforeImageAndKeepsOrder) {
  Table table(TwoColSchema());
  auto t1 = table.Insert(Row1());
  auto t2 = table.Insert(Row2());
  auto t3 = table.Insert({Value::Int(3), Value::String("z")});
  ASSERT_TRUE(t1.ok() && t2.ok() && t3.ok());

  auto before = table.Delete(*t2);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->tid, *t2);
  EXPECT_EQ(before->values[0], Value::Int(2));

  // Insertion order preserved for the remaining rows.
  ASSERT_EQ(table.size(), 2u);
  EXPECT_EQ(table.rows()[0].tid, *t1);
  EXPECT_EQ(table.rows()[1].tid, *t3);

  // Index still valid after the shift.
  auto row3 = table.Get(*t3);
  ASSERT_TRUE(row3.ok());
  EXPECT_EQ((*row3)->values[0], Value::Int(3));

  EXPECT_FALSE(table.Delete(*t2).ok());  // already gone
}

class IndexedTableTest : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = std::make_unique<Table>(TwoColSchema());
    for (int i = 0; i < 8; ++i) {
      auto tid = table_->Insert(
          {Value::Int(i % 4), Value::String("s" + std::to_string(i))});
      ASSERT_TRUE(tid.ok());
      tids_.push_back(*tid);
    }
    ASSERT_TRUE(table_->CreateIndex("a").ok());
  }

  std::unique_ptr<Table> table_;
  std::vector<Tid> tids_;
};

TEST_F(IndexedTableTest, CreateIndexIdempotentAndValidated) {
  EXPECT_TRUE(table_->HasIndex("a"));
  EXPECT_FALSE(table_->HasIndex("b"));
  EXPECT_TRUE(table_->CreateIndex("a").ok());  // idempotent
  EXPECT_FALSE(table_->CreateIndex("nope").ok());
}

TEST_F(IndexedTableTest, EqLookupInRowOrder) {
  auto hits = table_->IndexLookupEq("a", Value::Int(1));
  ASSERT_TRUE(hits.ok());
  // Rows 1 and 5 have a == 1, in insertion order.
  EXPECT_EQ(*hits, (std::vector<Tid>{tids_[1], tids_[5]}));
  auto missing = table_->IndexLookupEq("a", Value::Int(99));
  ASSERT_TRUE(missing.ok());
  EXPECT_TRUE(missing->empty());
  EXPECT_FALSE(table_->IndexLookupEq("b", Value::String("x")).ok());
}

TEST_F(IndexedTableTest, RangeLookup) {
  // a >= 2: rows 2, 3, 6, 7.
  auto hits = table_->IndexLookupRange(
      "a", IndexBound{Value::Int(2), false}, std::nullopt);
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(*hits,
            (std::vector<Tid>{tids_[2], tids_[3], tids_[6], tids_[7]}));
  // 1 < a < 3: rows 2, 6.
  hits = table_->IndexLookupRange("a",
                                  IndexBound{Value::Int(1), true},
                                  IndexBound{Value::Int(3), true});
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(*hits, (std::vector<Tid>{tids_[2], tids_[6]}));
  // Unbounded: everything.
  hits = table_->IndexLookupRange("a", std::nullopt, std::nullopt);
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 8u);
}

TEST_F(IndexedTableTest, IndexFollowsMutations) {
  // Update moves the row to a different key.
  ASSERT_TRUE(table_->UpdateColumn(tids_[1], "a", Value::Int(3)).ok());
  auto ones = table_->IndexLookupEq("a", Value::Int(1));
  ASSERT_TRUE(ones.ok());
  EXPECT_EQ(*ones, (std::vector<Tid>{tids_[5]}));
  auto threes = table_->IndexLookupEq("a", Value::Int(3));
  ASSERT_TRUE(threes.ok());
  EXPECT_EQ(*threes, (std::vector<Tid>{tids_[1], tids_[3], tids_[7]}));

  // Delete removes its entry.
  ASSERT_TRUE(table_->Delete(tids_[5]).ok());
  ones = table_->IndexLookupEq("a", Value::Int(1));
  ASSERT_TRUE(ones.ok());
  EXPECT_TRUE(ones->empty());

  // Full-row update re-keys too.
  ASSERT_TRUE(
      table_->Update(tids_[0], {Value::Int(9), Value::String("z")}).ok());
  auto nines = table_->IndexLookupEq("a", Value::Int(9));
  ASSERT_TRUE(nines.ok());
  EXPECT_EQ(*nines, (std::vector<Tid>{tids_[0]}));
}

TEST_F(IndexedTableTest, IndexBuiltOverExistingRowsMatchesScan) {
  // Build a second index late; it must see the current state.
  ASSERT_TRUE(table_->CreateIndex("b").ok());
  auto hit = table_->IndexLookupEq("b", Value::String("s3"));
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(*hit, (std::vector<Tid>{tids_[3]}));
}

TEST(TableTest, ColumnarIsCachedUntilMutation) {
  Table table(TwoColSchema());
  ASSERT_TRUE(table.Insert(Row1()).ok());
  auto first = table.Columnar();
  ASSERT_EQ(first->num_rows, 1u);
  // Same shared batch on a second read, no rebuild.
  EXPECT_EQ(table.Columnar().get(), first.get());

  const uint64_t before = table.mutation_count();
  ASSERT_TRUE(table.Insert(Row2()).ok());
  EXPECT_GT(table.mutation_count(), before);
  auto second = table.Columnar();
  EXPECT_NE(second.get(), first.get());
  EXPECT_EQ(second->num_rows, 2u);
  // The old batch is still valid for readers that grabbed it earlier.
  EXPECT_EQ(first->num_rows, 1u);
  EXPECT_EQ(first->column(0).ValueAt(0), Value::Int(1));
}

TEST(TableTest, EveryMutationInvalidatesColumnar) {
  Table table(TwoColSchema());
  auto t1 = table.Insert(Row1());
  ASSERT_TRUE(t1.ok());

  auto batch = table.Columnar();
  ASSERT_TRUE(table.UpdateColumn(*t1, "a", Value::Int(7)).ok());
  auto updated = table.Columnar();
  EXPECT_NE(updated.get(), batch.get());
  EXPECT_EQ(updated->column(0).ValueAt(0), Value::Int(7));

  batch = table.Columnar();
  ASSERT_TRUE(table.Update(*t1, Row2()).ok());
  EXPECT_NE(table.Columnar().get(), batch.get());

  batch = table.Columnar();
  ASSERT_TRUE(table.Delete(*t1).ok());
  auto emptied = table.Columnar();
  EXPECT_NE(emptied.get(), batch.get());
  EXPECT_EQ(emptied->num_rows, 0u);
}

TEST(TableTest, ColumnarCarriesTidsInRowOrder) {
  Table table(TwoColSchema());
  ASSERT_TRUE(table.InsertWithTid(5, Row1()).ok());
  ASSERT_TRUE(table.InsertWithTid(3, Row2()).ok());
  auto batch = table.Columnar();
  EXPECT_EQ(batch->tids, (std::vector<int64_t>{5, 3}));
}

TEST(TableTest, DeletedTidIsNotReused) {
  Table table(TwoColSchema());
  auto t1 = table.Insert(Row1());
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(table.Delete(*t1).ok());
  auto t2 = table.Insert(Row2());
  ASSERT_TRUE(t2.ok());
  EXPECT_NE(*t2, *t1);
}

}  // namespace
}  // namespace auditdb
