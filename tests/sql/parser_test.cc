#include "src/sql/parser.h"

#include <gtest/gtest.h>

namespace auditdb {
namespace sql {
namespace {

SelectStatement MustParse(const std::string& text) {
  auto stmt = ParseSelect(text);
  EXPECT_TRUE(stmt.ok()) << text << " -> " << stmt.status().ToString();
  return std::move(*stmt);
}

TEST(ParserTest, SimpleSelect) {
  auto stmt = MustParse("SELECT name, age FROM Patients WHERE age < 30");
  EXPECT_FALSE(stmt.select_star);
  ASSERT_EQ(stmt.select_list.size(), 2u);
  EXPECT_EQ(stmt.select_list[0].ToString(), "name");
  EXPECT_EQ(stmt.from, (std::vector<std::string>{"Patients"}));
  ASSERT_NE(stmt.where, nullptr);
  EXPECT_EQ(stmt.where->ToString(), "age < 30");
}

TEST(ParserTest, SelectStar) {
  auto stmt = MustParse("SELECT * FROM T");
  EXPECT_TRUE(stmt.select_star);
  EXPECT_TRUE(stmt.select_list.empty());
  EXPECT_EQ(stmt.where, nullptr);
}

TEST(ParserTest, QualifiedColumnsAndJoins) {
  auto stmt = MustParse(
      "SELECT P-Personal.name, disease FROM P-Personal, P-Health "
      "WHERE P-Personal.pid = P-Health.pid AND disease = 'diabetic'");
  ASSERT_EQ(stmt.select_list.size(), 2u);
  EXPECT_EQ(stmt.select_list[0].ToString(), "P-Personal.name");
  EXPECT_EQ(stmt.from.size(), 2u);
  EXPECT_EQ(stmt.where->bop, BinaryOp::kAnd);
}

TEST(ParserTest, CaseInsensitiveKeywords) {
  auto stmt = MustParse("select name from T where age > 5");
  EXPECT_EQ(stmt.select_list.size(), 1u);
}

TEST(ParserTest, TrailingSemicolonAllowed) {
  MustParse("SELECT a FROM T;");
}

TEST(ParserTest, PaperExampleQueries) {
  // Directly from Section 2.1 of the paper.
  auto q1 = MustParse("SELECT zipcode FROM Patients WHERE disease='cancer'");
  EXPECT_EQ(q1.select_list[0].column, "zipcode");
  EXPECT_EQ(q1.where->ToString(), "disease = 'cancer'");
}

TEST(ParserTest, OperatorPrecedence) {
  auto stmt = MustParse("SELECT a FROM T WHERE a = 1 OR b = 2 AND c = 3");
  // OR binds loosest: (a=1) OR ((b=2) AND (c=3)).
  EXPECT_EQ(stmt.where->bop, BinaryOp::kOr);
  EXPECT_EQ(stmt.where->right->bop, BinaryOp::kAnd);
}

TEST(ParserTest, ParenthesesOverridePrecedence) {
  auto stmt = MustParse("SELECT a FROM T WHERE (a = 1 OR b = 2) AND c = 3");
  EXPECT_EQ(stmt.where->bop, BinaryOp::kAnd);
  EXPECT_EQ(stmt.where->left->bop, BinaryOp::kOr);
}

TEST(ParserTest, NotPrecedence) {
  auto stmt = MustParse("SELECT a FROM T WHERE NOT a = 1 AND b = 2");
  // NOT binds tighter than AND.
  EXPECT_EQ(stmt.where->bop, BinaryOp::kAnd);
  EXPECT_EQ(stmt.where->left->kind, ExprKind::kUnary);
}

TEST(ParserTest, ArithmeticPrecedence) {
  auto stmt = MustParse("SELECT a FROM T WHERE a + 2 * 3 < 10");
  // a + (2*3) < 10
  EXPECT_EQ(stmt.where->bop, BinaryOp::kLt);
  EXPECT_EQ(stmt.where->left->bop, BinaryOp::kAdd);
  EXPECT_EQ(stmt.where->left->right->bop, BinaryOp::kMul);
}

TEST(ParserTest, BetweenDesugarsToRange) {
  auto stmt = MustParse("SELECT a FROM T WHERE age BETWEEN 20 AND 30");
  EXPECT_EQ(stmt.where->ToString(), "age >= 20 AND age <= 30");
}

TEST(ParserTest, NotBetween) {
  auto stmt = MustParse("SELECT a FROM T WHERE age NOT BETWEEN 20 AND 30");
  EXPECT_EQ(stmt.where->kind, ExprKind::kUnary);
}

TEST(ParserTest, InListDesugarsToDisjunction) {
  auto stmt =
      MustParse("SELECT a FROM T WHERE disease IN ('flu', 'cancer')");
  EXPECT_EQ(stmt.where->ToString(), "disease = 'flu' OR disease = 'cancer'");
}

TEST(ParserTest, NotIn) {
  auto stmt = MustParse("SELECT a FROM T WHERE x NOT IN (1, 2)");
  EXPECT_EQ(stmt.where->kind, ExprKind::kUnary);
  EXPECT_EQ(stmt.where->uop, UnaryOp::kNot);
}

TEST(ParserTest, LikePredicate) {
  auto stmt = MustParse("SELECT a FROM T WHERE name LIKE 'Re%'");
  EXPECT_EQ(stmt.where->bop, BinaryOp::kLike);
  EXPECT_EQ(stmt.where->ToString(), "name LIKE 'Re%'");
  auto negated = MustParse("SELECT a FROM T WHERE name NOT LIKE '%u'");
  EXPECT_EQ(negated.where->kind, ExprKind::kUnary);
  EXPECT_EQ(negated.where->left->bop, BinaryOp::kLike);
}

TEST(ParserTest, BooleanLiterals) {
  auto stmt = MustParse("SELECT a FROM T WHERE TRUE");
  EXPECT_EQ(stmt.where->literal, Value::Bool(true));
}

TEST(ParserTest, NegativeNumbers) {
  auto stmt = MustParse("SELECT a FROM T WHERE a > -5");
  EXPECT_EQ(stmt.where->right->kind, ExprKind::kUnary);
  EXPECT_EQ(stmt.where->right->uop, UnaryOp::kNeg);
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseSelect("").ok());
  EXPECT_FALSE(ParseSelect("SELECT FROM T").ok());
  EXPECT_FALSE(ParseSelect("SELECT a").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM T WHERE").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM T extra").ok());
  EXPECT_FALSE(ParseSelect("UPDATE T SET a = 1").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM T WHERE (a = 1").ok());
}

TEST(ParserTest, RoundTripThroughToString) {
  const char* kQueries[] = {
      "SELECT name, age FROM Patients WHERE age < 30",
      "SELECT * FROM T",
      "SELECT a FROM T, U WHERE T.x = U.y AND a > 3",
      "SELECT a FROM T WHERE (a = 1 OR b = 2) AND c = 3",
  };
  for (const char* text : kQueries) {
    auto first = MustParse(text);
    auto second = MustParse(first.ToString());
    EXPECT_EQ(first.ToString(), second.ToString()) << text;
  }
}

TEST(ExpressionParseTest, Standalone) {
  auto e = ParseExpression("a < 3 AND b = 'x'");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->ToString(), "a < 3 AND b = 'x'");
  EXPECT_FALSE(ParseExpression("a <").ok());
  EXPECT_FALSE(ParseExpression("a = 1 extra").ok());
}

TEST(CloneTest, SelectStatementClone) {
  auto stmt = MustParse("SELECT a FROM T WHERE a = 1");
  auto clone = stmt.Clone();
  EXPECT_EQ(clone.ToString(), stmt.ToString());
  clone.where->bop = BinaryOp::kNe;
  EXPECT_NE(clone.ToString(), stmt.ToString());
}

}  // namespace
}  // namespace sql
}  // namespace auditdb
