#include "src/sql/lexer.h"

#include <gtest/gtest.h>

namespace auditdb {
namespace sql {
namespace {

std::vector<Token> MustLex(const std::string& text) {
  auto tokens = Lex(text);
  EXPECT_TRUE(tokens.ok()) << tokens.status().ToString();
  return std::move(*tokens);
}

TEST(LexerTest, EmptyInput) {
  auto tokens = MustLex("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kEnd);
}

TEST(LexerTest, Identifiers) {
  auto tokens = MustLex("SELECT name FROM Patients");
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[0].text, "SELECT");
  EXPECT_TRUE(tokens[0].IsKeyword("select"));
  EXPECT_EQ(tokens[3].text, "Patients");
}

TEST(LexerTest, HyphenatedIdentifiers) {
  auto tokens = MustLex("P-Personal b-Patients DATA-INTERVAL pres-drugs");
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[0].text, "P-Personal");
  EXPECT_EQ(tokens[1].text, "b-Patients");
  EXPECT_EQ(tokens[2].text, "DATA-INTERVAL");
  EXPECT_EQ(tokens[3].text, "pres-drugs");
}

TEST(LexerTest, SpacedMinusIsOperator) {
  auto tokens = MustLex("salary - 100");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ(tokens[1].kind, TokenKind::kMinus);
  EXPECT_EQ(tokens[2].kind, TokenKind::kInt);
}

TEST(LexerTest, TrailingMinusNotFolded) {
  auto tokens = MustLex("salary- 100");
  EXPECT_EQ(tokens[0].text, "salary");
  EXPECT_EQ(tokens[1].kind, TokenKind::kMinus);
}

TEST(LexerTest, Numbers) {
  auto tokens = MustLex("42 3.25 1e3");
  EXPECT_EQ(tokens[0].kind, TokenKind::kInt);
  EXPECT_EQ(tokens[0].int_value, 42);
  EXPECT_EQ(tokens[1].kind, TokenKind::kDouble);
  EXPECT_DOUBLE_EQ(tokens[1].double_value, 3.25);
  EXPECT_EQ(tokens[2].kind, TokenKind::kDouble);
  EXPECT_DOUBLE_EQ(tokens[2].double_value, 1000.0);
}

TEST(LexerTest, Strings) {
  auto tokens = MustLex("'hello' \"world\"");
  EXPECT_EQ(tokens[0].kind, TokenKind::kString);
  EXPECT_EQ(tokens[0].text, "hello");
  EXPECT_EQ(tokens[1].kind, TokenKind::kString);
  EXPECT_EQ(tokens[1].text, "world");
}

TEST(LexerTest, PaperStyleQuotes) {
  // The paper writes '`145568" — backquote after the opening quote.
  auto tokens = MustLex("zipcode='`145568\"");
  ASSERT_GE(tokens.size(), 3u);
  EXPECT_EQ(tokens[2].kind, TokenKind::kString);
  EXPECT_EQ(tokens[2].text, "145568");
}

TEST(LexerTest, EscapedQuote) {
  auto tokens = MustLex("'it''s'");
  EXPECT_EQ(tokens[0].text, "it's");
}

TEST(LexerTest, UnterminatedString) {
  EXPECT_FALSE(Lex("'oops").ok());
}

TEST(LexerTest, Operators) {
  auto tokens = MustLex("= <> != < <= > >= + - * /");
  EXPECT_EQ(tokens[0].kind, TokenKind::kEq);
  EXPECT_EQ(tokens[1].kind, TokenKind::kNe);
  EXPECT_EQ(tokens[2].kind, TokenKind::kNe);
  EXPECT_EQ(tokens[3].kind, TokenKind::kLt);
  EXPECT_EQ(tokens[4].kind, TokenKind::kLe);
  EXPECT_EQ(tokens[5].kind, TokenKind::kGt);
  EXPECT_EQ(tokens[6].kind, TokenKind::kGe);
  EXPECT_EQ(tokens[7].kind, TokenKind::kPlus);
  EXPECT_EQ(tokens[8].kind, TokenKind::kMinus);
  EXPECT_EQ(tokens[9].kind, TokenKind::kStar);
  EXPECT_EQ(tokens[10].kind, TokenKind::kSlash);
}

TEST(LexerTest, Punctuation) {
  auto tokens = MustLex(", . ( ) [ ] ;");
  EXPECT_EQ(tokens[0].kind, TokenKind::kComma);
  EXPECT_EQ(tokens[1].kind, TokenKind::kDot);
  EXPECT_EQ(tokens[2].kind, TokenKind::kLParen);
  EXPECT_EQ(tokens[3].kind, TokenKind::kRParen);
  EXPECT_EQ(tokens[4].kind, TokenKind::kLBracket);
  EXPECT_EQ(tokens[5].kind, TokenKind::kRBracket);
  EXPECT_EQ(tokens[6].kind, TokenKind::kSemicolon);
}

TEST(LexerTest, TimestampLiteral) {
  auto tokens = MustLex("1/5/2004:13-00-00");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kTimestamp);
  auto expected = Timestamp::FromCivil(2004, 5, 1, 13, 0, 0);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(tokens[0].time_value, *expected);
}

TEST(LexerTest, DateOnlyTimestamp) {
  auto tokens = MustLex("15/7/2006");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kTimestamp);
}

TEST(LexerTest, TimestampInIntervalClause) {
  auto tokens = MustLex("DURING 1/5/2004:13-00-00 to now()");
  EXPECT_EQ(tokens[0].text, "DURING");
  EXPECT_EQ(tokens[1].kind, TokenKind::kTimestamp);
  EXPECT_TRUE(tokens[2].IsKeyword("to"));
  EXPECT_TRUE(tokens[3].IsKeyword("now"));
  EXPECT_EQ(tokens[4].kind, TokenKind::kLParen);
  EXPECT_EQ(tokens[5].kind, TokenKind::kRParen);
}

TEST(LexerTest, PlainDivisionStillWorks) {
  // With spacing, integers divide; only date-shaped sequences become
  // timestamps.
  auto tokens = MustLex("6 / 2");
  EXPECT_EQ(tokens[0].kind, TokenKind::kInt);
  EXPECT_EQ(tokens[1].kind, TokenKind::kSlash);
}

TEST(LexerTest, OutOfRangeNumbersAreCleanErrors) {
  // Regression: these used to throw from std::stoll/std::stod.
  EXPECT_FALSE(Lex("99999999999999999999999999").ok());
  EXPECT_FALSE(Lex("1e999999").ok());
  EXPECT_FALSE(Lex("SELECT a FROM T WHERE x = 1e999999").ok());
}

TEST(LexerTest, UnexpectedCharacter) {
  EXPECT_FALSE(Lex("a # b").ok());
  EXPECT_FALSE(Lex("a ! b").ok());
}

TEST(LexerTest, OffsetsRecorded) {
  auto tokens = MustLex("ab cd");
  EXPECT_EQ(tokens[0].offset, 0u);
  EXPECT_EQ(tokens[1].offset, 3u);
}

}  // namespace
}  // namespace sql
}  // namespace auditdb
