#include "src/sql/query_shape.h"

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <unordered_set>
#include <vector>

namespace auditdb {
namespace sql {
namespace {

TEST(QueryShapeTest, WhitespaceAndLayoutInvariant) {
  QueryShape base =
      ComputeQueryShape("SELECT name FROM P-Personal WHERE zipcode='145568'");
  EXPECT_FALSE(base.zero());
  // Any re-layout of the same token stream has the same shape.
  const char* variants[] = {
      "SELECT  name  FROM  P-Personal  WHERE  zipcode='145568'",
      "SELECT name\nFROM P-Personal\nWHERE zipcode='145568'",
      "   SELECT name FROM P-Personal WHERE zipcode='145568'   ",
      "SELECT name FROM P-Personal\t\tWHERE zipcode='145568'",
  };
  for (const char* sql : variants) {
    EXPECT_EQ(ComputeQueryShape(sql), base) << sql;
  }
}

TEST(QueryShapeTest, LiteralsAndIdentifiersAreDistinct) {
  QueryShape base =
      ComputeQueryShape("SELECT name FROM P-Personal WHERE zipcode='145568'");
  // A changed literal is a different shape: shape-keyed cache entries
  // must stay literal-sensitive or verdicts would merge across queries.
  EXPECT_NE(ComputeQueryShape(
                "SELECT name FROM P-Personal WHERE zipcode='999999'"),
            base);
  // So are a changed column, table, and operator.
  EXPECT_NE(ComputeQueryShape(
                "SELECT age FROM P-Personal WHERE zipcode='145568'"),
            base);
  EXPECT_NE(ComputeQueryShape(
                "SELECT name FROM P-Health WHERE zipcode='145568'"),
            base);
  EXPECT_NE(ComputeQueryShape(
                "SELECT name FROM P-Personal WHERE zipcode<'145568'"),
            base);
}

TEST(QueryShapeTest, PropertyRandomLayoutsNeverSplitAndEditsNeverMerge) {
  // Deterministically seeded property sweep: re-spacing a query never
  // changes its shape; changing one literal always does.
  std::mt19937 rng(20080617);
  const std::vector<std::string> tokens = {
      "SELECT", "name", ",", "disease", "FROM", "P-Personal", ",",
      "P-Health", "WHERE", "P-Personal.pid", "=", "P-Health.pid",
      "AND", "zipcode", "=", "'Z'"};
  auto render = [&](const std::string& literal, bool randomize) {
    std::string sql;
    for (const auto& token : tokens) {
      std::string t = token == "'Z'" ? literal : token;
      if (!sql.empty()) {
        if (randomize) {
          int pad = static_cast<int>(rng() % 3) + 1;
          sql.append(static_cast<size_t>(pad), ' ');
          if (rng() % 4 == 0) sql.back() = '\n';
        } else {
          sql += ' ';
        }
      }
      sql += t;
    }
    return sql;
  };

  std::unordered_set<QueryShape, QueryShapeHash> distinct;
  for (int literal = 0; literal < 20; ++literal) {
    std::string lit = "'" + std::to_string(100000 + literal) + "'";
    QueryShape canonical = ComputeQueryShape(render(lit, false));
    for (int layout = 0; layout < 20; ++layout) {
      EXPECT_EQ(ComputeQueryShape(render(lit, true)), canonical);
    }
    distinct.insert(canonical);
  }
  // Every literal produced its own shape class.
  EXPECT_EQ(distinct.size(), 20u);
}

TEST(QueryShapeTest, UnlexableTextDedupesWithoutCollidingWithSql) {
  QueryShape bad1 = ComputeQueryShape("SELECT !!! garbage ???");
  QueryShape bad2 = ComputeQueryShape("SELECT   !!! garbage    ???");
  QueryShape bad3 = ComputeQueryShape("SELECT !!! other ???");
  EXPECT_FALSE(bad1.zero());
  // Malformed entries still dedupe on collapsed text...
  EXPECT_EQ(bad1, bad2);
  EXPECT_NE(bad1, bad3);
  // ...in a universe disjoint from well-formed queries.
  EXPECT_NE(bad1, ComputeQueryShape("SELECT name FROM T"));
}

TEST(QueryShapeTest, HexRendersBothWords) {
  QueryShape shape{0x0123456789abcdefULL, 0xfedcba9876543210ULL};
  EXPECT_EQ(shape.ToHex(), "0123456789abcdeffedcba9876543210");
  EXPECT_EQ(QueryShape{}.ToHex(), std::string(32, '0'));
}

}  // namespace
}  // namespace sql
}  // namespace auditdb
