#include "src/policy/policy_engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "src/common/string_util.h"

namespace auditdb {
namespace policy {
namespace {

Timestamp Ts(int64_t s) { return Timestamp(s * 1000000); }

std::string ScratchDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "auditdb_policy_engine_" + name;
  io::Env* env = io::Env::Default();
  if (env->FileExists(dir)) {
    auto names = env->ListDir(dir);
    if (names.ok()) {
      for (const auto& entry : *names) {
        env->DeleteFile(io::JoinPath(dir, entry));
      }
    }
  }
  EXPECT_TRUE(env->CreateDirIfMissing(dir).ok());
  return dir;
}

QueryContext Ctx(const std::string& sql, const std::string& user = "alice",
                 const std::string& role = "clerk",
                 const std::string& purpose = "billing") {
  QueryContext ctx;
  ctx.sql = sql;
  ctx.user = user;
  ctx.role = role;
  ctx.purpose = purpose;
  ctx.timestamp = Ts(100);
  ctx.query_class = ClassifySql(sql, false);
  ctx.tables = ExtractTables(sql);
  return ctx;
}

TEST(ClassifySqlTest, ByLeadingKeyword) {
  EXPECT_EQ(ClassifySql("SELECT a FROM T", false), QueryClass::kSelect);
  EXPECT_EQ(ClassifySql("select a from t", false), QueryClass::kSelect);
  EXPECT_EQ(ClassifySql("INSERT INTO T", false), QueryClass::kDml);
  EXPECT_EQ(ClassifySql("UPDATE T", false), QueryClass::kDml);
  EXPECT_EQ(ClassifySql("DELETE FROM T", false), QueryClass::kDml);
  EXPECT_EQ(ClassifySql("CREATE TABLE T", false), QueryClass::kDdl);
  EXPECT_EQ(ClassifySql("DROP TABLE T", false), QueryClass::kDdl);
  EXPECT_EQ(ClassifySql("garbage", false), QueryClass::kError);
  EXPECT_EQ(ClassifySql("SELECT a FROM T", true), QueryClass::kError);
  EXPECT_EQ(ClassifySql("", false), QueryClass::kError);
}

TEST(ExtractTablesTest, FromClause) {
  EXPECT_EQ(ExtractTables("SELECT a FROM T WHERE x=1"),
            (std::vector<std::string>{"T"}));
  EXPECT_EQ(ExtractTables(
                "SELECT name FROM P-Personal, P-Health WHERE a=b"),
            (std::vector<std::string>{"P-Personal", "P-Health"}));
  EXPECT_TRUE(ExtractTables("SELECT 1").empty());
  EXPECT_TRUE(ExtractTables("not sql at 'all").empty());
}

TEST(PolicyEngineTest, EmptyEngineMatchesNothing) {
  PolicyEngine engine;
  EXPECT_EQ(engine.rule_count(), 0u);
  auto decision = engine.Decide(Ctx("SELECT a FROM T"));
  EXPECT_FALSE(decision.matched);
  EXPECT_EQ(decision.rule, nullptr);
  // Emit on a non-match is a no-op.
  EXPECT_TRUE(engine.Emit(decision, Ctx("SELECT a FROM T"), 1, "").ok());
  EXPECT_EQ(engine.metrics()->counter("no_match")->value(), 1u);
}

TEST(PolicyEngineTest, FirstMatchWins) {
  PolicyEngine engine;
  ASSERT_TRUE(engine
                  .LoadText(
                      "[rule narrow]\nuser = mallory\nlog-class = first\n"
                      "[rule broad]\nlog-class = second\n",
                      Ts(0))
                  .ok());

  auto mallory = engine.Decide(Ctx("SELECT a FROM T", "mallory"));
  ASSERT_TRUE(mallory.matched);
  EXPECT_EQ(mallory.rule->name, "narrow");

  auto alice = engine.Decide(Ctx("SELECT a FROM T", "alice"));
  ASSERT_TRUE(alice.matched);
  EXPECT_EQ(alice.rule->name, "broad");

  EXPECT_EQ(engine.metrics()->counter("rule_hits.narrow")->value(), 1u);
  EXPECT_EQ(engine.metrics()->counter("rule_hits.broad")->value(), 1u);
}

TEST(PolicyEngineTest, NegativeClausesTakePrecedence) {
  PolicyEngine engine;
  ASSERT_TRUE(engine
                  .LoadText(
                      "[rule watch]\n"
                      "role = clerk\n"
                      "not-user = auditor-bot\n",
                      Ts(0))
                  .ok());
  EXPECT_TRUE(engine.Decide(Ctx("SELECT a FROM T", "alice")).matched);
  EXPECT_FALSE(
      engine.Decide(Ctx("SELECT a FROM T", "auditor-bot")).matched);
  EXPECT_FALSE(
      engine.Decide(Ctx("SELECT a FROM T", "alice", "doctor")).matched);
}

TEST(PolicyEngineTest, ClassTableRemoteDuringMatching) {
  PolicyEngine engine;
  ASSERT_TRUE(engine
                  .LoadText(
                      "[rule scoped]\n"
                      "class = select\n"
                      "table = P-Health\n"
                      "remote = 10.0., 127.0.0.1\n"
                      "during = 1/1/1970 .. 2/1/1970\n",
                      Ts(0))
                  .ok());

  QueryContext hit = Ctx("SELECT a FROM P-Health WHERE x=1");
  hit.remote = "127.0.0.1";
  EXPECT_TRUE(engine.Decide(hit).matched);

  // Prefix remotes match by leading bytes.
  hit.remote = "10.0.3.7";
  EXPECT_TRUE(engine.Decide(hit).matched);

  QueryContext wrong_remote = hit;
  wrong_remote.remote = "192.168.0.1";
  EXPECT_FALSE(engine.Decide(wrong_remote).matched);

  // A remote-constrained rule never matches a local/unknown peer.
  QueryContext local = hit;
  local.remote.clear();
  EXPECT_FALSE(engine.Decide(local).matched);

  QueryContext wrong_table = hit;
  wrong_table.sql = "SELECT a FROM P-Employ WHERE x=1";
  wrong_table.tables = ExtractTables(wrong_table.sql);
  EXPECT_FALSE(engine.Decide(wrong_table).matched);

  // Unknown tables (unparseable statement) skip table-constrained rules.
  QueryContext no_tables = hit;
  no_tables.tables.clear();
  EXPECT_FALSE(engine.Decide(no_tables).matched);

  QueryContext wrong_class = hit;
  wrong_class.query_class = QueryClass::kError;
  EXPECT_FALSE(engine.Decide(wrong_class).matched);

  QueryContext too_late = hit;
  too_late.timestamp = Ts(40LL * 24 * 3600);
  EXPECT_FALSE(engine.Decide(too_late).matched);
}

TEST(PolicyEngineTest, DatabaseClauseDisablesForeignRules) {
  PolicyEngineOptions options;
  options.database_name = "auditdb";
  PolicyEngine engine(options);
  ASSERT_TRUE(engine
                  .LoadText(
                      "[rule other-db]\ndatabase = warehouse\n"
                      "[rule ours]\ndatabase = warehouse, auditdb\n",
                      Ts(0))
                  .ok());
  auto decision = engine.Decide(Ctx("SELECT a FROM T"));
  ASSERT_TRUE(decision.matched);
  EXPECT_EQ(decision.rule->name, "ours");
}

TEST(PolicyEngineTest, DetailNoneSuppressesAndCounts) {
  PolicyEngine engine;
  ASSERT_TRUE(
      engine.LoadText("[rule mute]\nuser = bot\ndetail = none\n", Ts(0))
          .ok());
  auto decision = engine.Decide(Ctx("SELECT a FROM T", "bot"));
  ASSERT_TRUE(decision.matched);
  EXPECT_EQ(decision.detail, AuditDetail::kNone);
  EXPECT_EQ(engine.metrics()->counter("suppressed_logs")->value(), 1u);
  // Emit for a suppressed decision writes nothing.
  ASSERT_TRUE(engine.Emit(decision, Ctx("SELECT a FROM T", "bot"), 7, "").ok());
  EXPECT_EQ(engine.metrics()->counter("records")->value(), 0u);
}

TEST(PolicyEngineTest, EmitWritesRedactedRecordToFileSink) {
  io::Env* env = io::Env::Default();
  std::string path = io::JoinPath(ScratchDir("emit"), "audit.log");

  PolicyEngine engine;
  auto file_sink = FileSink::Open(env, path);
  ASSERT_TRUE(file_sink.ok());
  ASSERT_TRUE(engine.AttachSink(std::move(*file_sink)).ok());
  ASSERT_TRUE(engine
                  .LoadText(
                      "[rule watch]\n"
                      "user = mallory\n"
                      "log-class = exfil\n"
                      "redact = disease\n"
                      "sink = file, metrics\n",
                      Ts(0))
                  .ok());

  QueryContext ctx = Ctx(
      "SELECT pid FROM P-Health WHERE disease='diabetic'", "mallory");
  ctx.remote = "127.0.0.1";
  auto decision = engine.Decide(ctx);
  ASSERT_TRUE(decision.matched);
  ASSERT_TRUE(engine.Emit(decision, ctx, 99, "cols=P-Health.disease").ok());
  ASSERT_TRUE(engine.FlushSinks().ok());

  auto text = env->ReadFileToString(path);
  ASSERT_TRUE(text.ok());
  auto lines = Split(*text, '\n');
  ASSERT_GE(lines.size(), 1u);
  auto record = ParseSinkLine(std::string(lines[0]));
  ASSERT_TRUE(record.ok()) << record.status().message();
  EXPECT_EQ(record->rule, "watch");
  EXPECT_EQ(record->log_class, "exfil");
  EXPECT_EQ(record->query_class, "select");
  EXPECT_EQ(record->log_id, 99);
  EXPECT_EQ(record->user, "mallory");
  EXPECT_EQ(record->remote, "127.0.0.1");
  EXPECT_EQ(record->tables, "P-Health");
  // The marked literal never reaches the sink.
  EXPECT_EQ(record->sql.find("diabetic"), std::string::npos);
  EXPECT_NE(record->sql.find(kRedactedToken), std::string::npos);
  EXPECT_EQ(record->note, "cols=P-Health.disease");

  EXPECT_EQ(engine.metrics()->counter("records")->value(), 1u);
  EXPECT_EQ(engine.metrics()->counter("redactions")->value(), 1u);
  EXPECT_EQ(engine.metrics()->counter("sink.metrics.class.exfil")->value(),
            1u);
}

TEST(PolicyEngineTest, UnknownSinkFailsLoadAndKeepsOldConfig) {
  PolicyEngine engine;
  ASSERT_TRUE(engine.LoadText("[rule a]\nlog-class = one\n", Ts(0)).ok());
  EXPECT_EQ(engine.rule_count(), 1u);
  uint64_t generation = engine.generation();

  Status bad = engine.LoadText("[rule b]\nsink = nosuch\n", Ts(0));
  EXPECT_FALSE(bad.ok());
  EXPECT_NE(bad.message().find("unattached sink"), std::string::npos);
  // Old config stays live.
  EXPECT_EQ(engine.rule_count(), 1u);
  EXPECT_EQ(engine.generation(), generation);
  auto decision = engine.Decide(Ctx("SELECT a FROM T"));
  ASSERT_TRUE(decision.matched);
  EXPECT_EQ(decision.rule->log_class, "one");
  EXPECT_EQ(engine.metrics()->counter("reload_failures")->value(), 1u);
}

TEST(PolicyEngineTest, ReloadToBrokenFileKeepsOldConfigLive) {
  io::Env* env = io::Env::Default();
  std::string dir = ScratchDir("reload");
  std::string path = io::JoinPath(dir, "rules.conf");

  ASSERT_TRUE(
      io::AtomicWriteFile(env, path, "[rule good]\nlog-class = v1\n").ok());
  PolicyEngine engine;
  ASSERT_TRUE(engine.LoadFile(env, path, Ts(0)).ok());
  EXPECT_EQ(engine.config_path(), path);
  EXPECT_EQ(engine.generation(), 2u);  // 1 = the constructor's empty config

  // Swap in a new valid config; Reload picks it up.
  ASSERT_TRUE(
      io::AtomicWriteFile(env, path, "[rule good]\nlog-class = v2\n").ok());
  ASSERT_TRUE(engine.Reload(Ts(1)).ok());
  EXPECT_EQ(engine.generation(), 3u);
  EXPECT_EQ(engine.Decide(Ctx("SELECT a FROM T")).rule->log_class, "v2");

  // Now break the file on disk: reload fails, v2 stays live.
  ASSERT_TRUE(io::AtomicWriteFile(env, path, "[rule good\nbroken").ok());
  Status broken = engine.Reload(Ts(2));
  EXPECT_FALSE(broken.ok());
  EXPECT_EQ(engine.generation(), 3u);
  EXPECT_EQ(engine.Decide(Ctx("SELECT a FROM T")).rule->log_class, "v2");
  EXPECT_EQ(engine.metrics()->counter("reload_failures")->value(), 1u);

  // An in-flight decision's rule pointer survives a successful reload.
  auto pinned = engine.Decide(Ctx("SELECT a FROM T"));
  ASSERT_TRUE(
      io::AtomicWriteFile(env, path, "[rule good]\nlog-class = v3\n").ok());
  ASSERT_TRUE(engine.Reload(Ts(3)).ok());
  EXPECT_EQ(pinned.rule->log_class, "v2");  // snapshot pinned
  EXPECT_EQ(engine.Decide(Ctx("SELECT a FROM T")).rule->log_class, "v3");
}

TEST(PolicyEngineTest, ReloadWithoutLoadFileIsNotFound) {
  PolicyEngine engine;
  EXPECT_EQ(engine.Reload(Ts(0)).code(), StatusCode::kNotFound);
}

TEST(PolicyEngineTest, RedactForDisplayUsesUnionOfAllRules) {
  PolicyEngine engine;
  ASSERT_TRUE(engine
                  .LoadText(
                      "[rule a]\nuser = x\nredact = disease\n"
                      "[rule b]\nuser = y\nredact = salary\n",
                      Ts(0))
                  .ok());
  EXPECT_TRUE(engine.HasDisplayRedactions());
  std::string out = engine.RedactForDisplay(
      "SELECT a FROM T WHERE disease='flu' AND salary > 9000");
  EXPECT_EQ(out.find("flu"), std::string::npos);
  EXPECT_EQ(out.find("9000"), std::string::npos);
  EXPECT_EQ(engine.metrics()->counter("display_redactions")->value(), 2u);

  PolicyEngine plain;
  ASSERT_TRUE(plain.LoadText("[rule a]\nuser = x\n", Ts(0)).ok());
  EXPECT_FALSE(plain.HasDisplayRedactions());
  std::string sql = "SELECT a FROM T WHERE disease='flu'";
  EXPECT_EQ(plain.RedactForDisplay(sql), sql);
}

TEST(PolicyEngineTest, DuplicateSinkNameRejected) {
  PolicyEngine engine;
  service::MetricsRegistry registry;
  Status dup = engine.AttachSink(std::make_unique<MetricsSink>(&registry));
  EXPECT_EQ(dup.code(), StatusCode::kAlreadyExists);
}

TEST(PolicyEngineTest, MetricsJsonHasRuleHits) {
  PolicyEngine engine;
  ASSERT_TRUE(engine.LoadText("[rule seen]\n detail = log-only\n", Ts(0)).ok());
  engine.Decide(Ctx("SELECT a FROM T"));
  std::string json = engine.MetricsJson();
  EXPECT_NE(json.find("\"rule_hits.seen\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"decisions\""), std::string::npos);
  EXPECT_NE(json.find("\"rules\""), std::string::npos);
}

// Decide/Emit/RedactForDisplay racing Reload: run under TSan in CI. The
// assertions are deliberately weak — the point is that every interleaving
// is data-race-free and every decision sees a complete config.
TEST(PolicyEngineConcurrentTest, DecideAndEmitRaceReload) {
  io::Env* env = io::Env::Default();
  std::string dir = ScratchDir("race");
  std::string path = io::JoinPath(dir, "rules.conf");
  std::string sink_path = io::JoinPath(dir, "audit.log");

  const std::string config_a =
      "[rule hot]\nlog-class = alpha\nredact = disease\nsink = file\n";
  const std::string config_b =
      "[rule hot]\nlog-class = beta\nredact = salary\nsink = file, metrics\n"
      "[rule cold]\nuser = nobody\n";
  ASSERT_TRUE(io::AtomicWriteFile(env, path, config_a).ok());

  PolicyEngine engine;
  auto file_sink = FileSink::Open(env, sink_path);
  ASSERT_TRUE(file_sink.ok());
  ASSERT_TRUE(engine.AttachSink(std::move(*file_sink)).ok());
  ASSERT_TRUE(engine.LoadFile(env, path, Ts(0)).ok());

  std::atomic<bool> stop{false};
  std::atomic<size_t> emitted{0};

  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&engine, &stop, &emitted, t] {
      QueryContext ctx = Ctx(
          "SELECT pid FROM P-Health WHERE disease='diabetic' AND salary=1",
          "worker" + std::to_string(t));
      while (!stop.load(std::memory_order_relaxed)) {
        auto decision = engine.Decide(ctx);
        ASSERT_TRUE(decision.matched);
        // The pinned snapshot keeps rule/log_class coherent even if a
        // reload lands between Decide and Emit.
        ASSERT_TRUE(decision.rule->log_class == "alpha" ||
                    decision.rule->log_class == "beta");
        ASSERT_TRUE(engine.Emit(decision, ctx, 1, "").ok());
        (void)engine.RedactForDisplay(ctx.sql);
        emitted.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  for (int i = 0; i < 50; ++i) {
    const std::string& next = (i % 2 == 0) ? config_b : config_a;
    ASSERT_TRUE(io::AtomicWriteFile(env, path, next).ok());
    ASSERT_TRUE(engine.Reload(Ts(i + 1)).ok());
    std::this_thread::yield();
  }
  stop.store(true);
  for (auto& worker : workers) worker.join();
  ASSERT_TRUE(engine.FlushSinks().ok());

  EXPECT_GT(emitted.load(), 0u);
  EXPECT_EQ(engine.generation(), 2u + 50u);

  // Every sink line parses and never leaks either marked literal.
  auto text = env->ReadFileToString(sink_path);
  ASSERT_TRUE(text.ok());
  size_t parsed_lines = 0;
  for (const auto& piece : Split(*text, '\n')) {
    if (piece.empty()) continue;
    auto record = ParseSinkLine(std::string(piece));
    ASSERT_TRUE(record.ok()) << piece;
    EXPECT_TRUE(record->log_class == "alpha" || record->log_class == "beta");
    if (record->log_class == "alpha") {
      EXPECT_EQ(record->sql.find("diabetic"), std::string::npos);
    } else {
      EXPECT_EQ(record->sql.find("salary=1"), std::string::npos);
    }
    ++parsed_lines;
  }
  EXPECT_EQ(parsed_lines, emitted.load());
}

}  // namespace
}  // namespace policy
}  // namespace auditdb
