#include "src/policy/policy.h"

#include <gtest/gtest.h>

namespace auditdb {
namespace {

class PolicyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    policy_.AddRule({"doctor", "treatment", "P-Health", {}});
    policy_.AddRule({"clerk", "billing", "P-Employ", {"pid", "salary"}});
    policy_.AddRule({"analyst", "research", "P-Personal", {"zipcode"}});
  }
  PrivacyPolicy policy_;
};

TEST_F(PolicyTest, EmptyColumnsMeansWholeTable) {
  EXPECT_TRUE(policy_.Allows("doctor", "treatment",
                             ColumnRef{"P-Health", "disease"}));
  EXPECT_TRUE(
      policy_.Allows("doctor", "treatment", ColumnRef{"P-Health", "pid"}));
}

TEST_F(PolicyTest, ColumnListRestricts) {
  EXPECT_TRUE(
      policy_.Allows("clerk", "billing", ColumnRef{"P-Employ", "salary"}));
  EXPECT_FALSE(
      policy_.Allows("clerk", "billing", ColumnRef{"P-Employ", "employer"}));
}

TEST_F(PolicyTest, RoleAndPurposeBothMatter) {
  EXPECT_FALSE(
      policy_.Allows("doctor", "billing", ColumnRef{"P-Health", "disease"}));
  EXPECT_FALSE(policy_.Allows("nurse", "treatment",
                              ColumnRef{"P-Health", "disease"}));
}

TEST_F(PolicyTest, CrossTableDenied) {
  EXPECT_FALSE(policy_.Allows("doctor", "treatment",
                              ColumnRef{"P-Personal", "name"}));
}

TEST_F(PolicyTest, AllowsAll) {
  std::set<ColumnRef> cols = {{"P-Employ", "pid"}, {"P-Employ", "salary"}};
  EXPECT_TRUE(policy_.AllowsAll("clerk", "billing", cols));
  cols.insert(ColumnRef{"P-Employ", "employer"});
  EXPECT_FALSE(policy_.AllowsAll("clerk", "billing", cols));
  EXPECT_TRUE(policy_.AllowsAll("clerk", "billing", {}));
}

}  // namespace
}  // namespace auditdb
