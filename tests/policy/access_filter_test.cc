#include "src/policy/access_filter.h"

#include <gtest/gtest.h>

namespace auditdb {
namespace {

Timestamp Ts(int64_t s) { return Timestamp(s * 1000000); }

LoggedQuery Query(const std::string& user, const std::string& role,
                  const std::string& purpose, Timestamp ts = Ts(100)) {
  LoggedQuery q;
  q.id = 1;
  q.sql = "SELECT 1 FROM T";
  q.timestamp = ts;
  q.user = user;
  q.role = role;
  q.purpose = purpose;
  return q;
}

TEST(RolePurposePatternTest, Matching) {
  RolePurposePattern exact{"doctor", "treatment"};
  EXPECT_TRUE(exact.Matches("doctor", "treatment"));
  EXPECT_FALSE(exact.Matches("doctor", "billing"));
  EXPECT_FALSE(exact.Matches("nurse", "treatment"));

  RolePurposePattern any_purpose{"doctor", "-"};
  EXPECT_TRUE(any_purpose.Matches("doctor", "anything"));
  EXPECT_FALSE(any_purpose.Matches("nurse", "anything"));

  RolePurposePattern any_role{"-", "billing"};
  EXPECT_TRUE(any_role.Matches("whoever", "billing"));
  EXPECT_FALSE(any_role.Matches("whoever", "treatment"));

  EXPECT_EQ(exact.ToString(), "(doctor,treatment)");
}

TEST(AccessFilterTest, TrivialFilterAdmitsEverything) {
  AccessFilter filter;
  EXPECT_TRUE(filter.IsTrivial());
  EXPECT_TRUE(filter.Admits(Query("anyone", "any", "thing")));
}

TEST(AccessFilterTest, DuringRestrictsTime) {
  AccessFilter filter;
  filter.during = TimeInterval{Ts(50), Ts(150)};
  EXPECT_TRUE(filter.Admits(Query("u", "r", "p", Ts(100))));
  EXPECT_TRUE(filter.Admits(Query("u", "r", "p", Ts(50))));
  EXPECT_FALSE(filter.Admits(Query("u", "r", "p", Ts(49))));
  EXPECT_FALSE(filter.Admits(Query("u", "r", "p", Ts(151))));
  EXPECT_FALSE(filter.IsTrivial());
}

TEST(AccessFilterTest, NegUsers) {
  AccessFilter filter;
  filter.neg_users = {"mallory"};
  EXPECT_FALSE(filter.Admits(Query("mallory", "r", "p")));
  EXPECT_TRUE(filter.Admits(Query("alice", "r", "p")));
}

TEST(AccessFilterTest, PosUsers) {
  AccessFilter filter;
  filter.pos_users = {"alice", "bob"};
  EXPECT_TRUE(filter.Admits(Query("alice", "r", "p")));
  EXPECT_TRUE(filter.Admits(Query("bob", "r", "p")));
  EXPECT_FALSE(filter.Admits(Query("carol", "r", "p")));
}

TEST(AccessFilterTest, NegRolePurpose) {
  AccessFilter filter;
  filter.neg_role_purpose = {{"doctor", "treatment"}};
  EXPECT_FALSE(filter.Admits(Query("u", "doctor", "treatment")));
  EXPECT_TRUE(filter.Admits(Query("u", "doctor", "billing")));
}

TEST(AccessFilterTest, PosRolePurpose) {
  AccessFilter filter;
  filter.pos_role_purpose = {{"clerk", "-"}};
  EXPECT_TRUE(filter.Admits(Query("u", "clerk", "anything")));
  EXPECT_FALSE(filter.Admits(Query("u", "doctor", "anything")));
}

TEST(AccessFilterTest, NegativeTakesPrecedenceOverPositive) {
  // The paper: on conflict between Pos and Neg, Neg wins.
  AccessFilter filter;
  filter.pos_role_purpose = {{"doctor", "-"}};
  filter.neg_role_purpose = {{"doctor", "billing"}};
  EXPECT_TRUE(filter.Admits(Query("u", "doctor", "treatment")));
  EXPECT_FALSE(filter.Admits(Query("u", "doctor", "billing")));

  AccessFilter users;
  users.pos_users = {"alice"};
  users.neg_users = {"alice"};
  EXPECT_FALSE(users.Admits(Query("alice", "r", "p")));
}

TEST(AccessFilterTest, CombinedClauses) {
  AccessFilter filter;
  filter.during = TimeInterval{Ts(0), Ts(200)};
  filter.pos_role_purpose = {{"-", "research"}};
  filter.neg_users = {"mallory"};
  EXPECT_TRUE(filter.Admits(Query("alice", "analyst", "research")));
  EXPECT_FALSE(filter.Admits(Query("mallory", "analyst", "research")));
  EXPECT_FALSE(filter.Admits(Query("alice", "analyst", "billing")));
  EXPECT_FALSE(
      filter.Admits(Query("alice", "analyst", "research", Ts(300))));
}

}  // namespace
}  // namespace auditdb
