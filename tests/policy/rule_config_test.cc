#include "src/policy/rule_config.h"

#include <gtest/gtest.h>

namespace auditdb {
namespace policy {
namespace {

Timestamp Ts(int64_t s) { return Timestamp(s * 1000000); }

Result<PolicyConfig> Parse(const std::string& text) {
  return ParsePolicyConfig(text, Ts(1000));
}

void ExpectParseError(const std::string& text, const std::string& fragment) {
  auto parsed = Parse(text);
  ASSERT_FALSE(parsed.ok()) << "expected failure for:\n" << text;
  EXPECT_EQ(parsed.status().code(), StatusCode::kParseError);
  EXPECT_NE(parsed.status().message().find(fragment), std::string::npos)
      << "error '" << parsed.status().message() << "' lacks '" << fragment
      << "'";
}

TEST(RuleConfigTest, EmptyFileParsesToZeroRules) {
  auto config = Parse("");
  ASSERT_TRUE(config.ok()) << config.status().message();
  EXPECT_TRUE(config->rules.empty());

  auto comments = Parse("# only comments\n\n   # and blanks\n");
  ASSERT_TRUE(comments.ok());
  EXPECT_TRUE(comments->rules.empty());
}

TEST(RuleConfigTest, FullGrammarRoundTrip) {
  auto config = Parse(
      "# watch clerk exports\n"
      "[rule clerk-exports]\n"
      "class        = select, error\n"
      "user         = mallory, eve   # trailing comment\n"
      "not-user     = admin\n"
      "role         = clerk\n"
      "not-role-purpose = (intern,-), (-,debug)\n"
      "during       = 1/1/1970 .. 2/1/1970\n"
      "database     = auditdb\n"
      "table        = P-Health, P-Employ\n"
      "remote       = 10.0., 127.0.0.1\n"
      "detail       = static-screen\n"
      "log-class    = export-watch\n"
      "redact       = disease, P-Employ.salary\n"
      "sink         = metrics\n"
      "\n"
      "[rule catch-all]\n"
      "detail = log-only\n");
  ASSERT_TRUE(config.ok()) << config.status().message();
  ASSERT_EQ(config->rules.size(), 2u);

  const RuleConfig* rule = config->FindRule("clerk-exports");
  ASSERT_NE(rule, nullptr);
  EXPECT_EQ(rule->class_mask, QueryClassBit(QueryClass::kSelect) |
                                  QueryClassBit(QueryClass::kError));
  EXPECT_EQ(rule->filter.pos_users,
            (std::vector<std::string>{"mallory", "eve"}));
  EXPECT_EQ(rule->filter.neg_users, (std::vector<std::string>{"admin"}));
  ASSERT_EQ(rule->filter.pos_role_purpose.size(), 1u);
  EXPECT_EQ(rule->filter.pos_role_purpose[0].ToString(), "(clerk,-)");
  ASSERT_EQ(rule->filter.neg_role_purpose.size(), 2u);
  EXPECT_EQ(rule->filter.neg_role_purpose[0].ToString(), "(intern,-)");
  EXPECT_EQ(rule->filter.neg_role_purpose[1].ToString(), "(-,debug)");
  ASSERT_TRUE(rule->filter.during.has_value());
  EXPECT_EQ(rule->filter.during->start.micros(), 0);
  EXPECT_EQ(rule->databases, (std::vector<std::string>{"auditdb"}));
  EXPECT_EQ(rule->tables,
            (std::vector<std::string>{"P-Health", "P-Employ"}));
  EXPECT_EQ(rule->remotes, (std::vector<std::string>{"10.0.", "127.0.0.1"}));
  EXPECT_EQ(rule->detail, AuditDetail::kStaticScreen);
  EXPECT_EQ(rule->log_class, "export-watch");
  EXPECT_EQ(rule->redact,
            (std::vector<std::string>{"disease", "P-Employ.salary"}));
  EXPECT_EQ(rule->sinks, (std::vector<std::string>{"metrics"}));

  EXPECT_NE(config->FindRule("catch-all"), nullptr);
  EXPECT_EQ(config->FindRule("no-such-rule"), nullptr);
}

TEST(RuleConfigTest, Defaults) {
  auto config = Parse("[rule bare]\nuser = alice\n");
  ASSERT_TRUE(config.ok()) << config.status().message();
  const RuleConfig& rule = config->rules[0];
  EXPECT_EQ(rule.class_mask, kAllClassesMask);
  EXPECT_EQ(rule.detail, AuditDetail::kLogOnly);
  EXPECT_EQ(rule.log_class, "audit");
  EXPECT_TRUE(rule.redact.empty());
  // No sink clause routes to the built-in metrics sink.
  EXPECT_EQ(rule.sinks, (std::vector<std::string>{"metrics"}));
  EXPECT_TRUE(rule.databases.empty());
  EXPECT_TRUE(rule.tables.empty());
  EXPECT_TRUE(rule.remotes.empty());
}

TEST(RuleConfigTest, RoleAndPurposeSugar) {
  auto config = Parse(
      "[rule sugar]\n"
      "role = clerk, contractor\n"
      "purpose = export\n"
      "not-role = intern\n"
      "not-purpose = debug\n");
  ASSERT_TRUE(config.ok()) << config.status().message();
  const AccessFilter& filter = config->rules[0].filter;
  ASSERT_EQ(filter.pos_role_purpose.size(), 3u);
  EXPECT_EQ(filter.pos_role_purpose[0].ToString(), "(clerk,-)");
  EXPECT_EQ(filter.pos_role_purpose[1].ToString(), "(contractor,-)");
  EXPECT_EQ(filter.pos_role_purpose[2].ToString(), "(-,export)");
  ASSERT_EQ(filter.neg_role_purpose.size(), 2u);
  EXPECT_EQ(filter.neg_role_purpose[0].ToString(), "(intern,-)");
  EXPECT_EQ(filter.neg_role_purpose[1].ToString(), "(-,debug)");
}

TEST(RuleConfigTest, ClassAliases) {
  auto config = Parse(
      "[rule a]\nclass = read\n"
      "[rule b]\nclass = write\n"
      "[rule c]\nclass = all\n");
  ASSERT_TRUE(config.ok()) << config.status().message();
  EXPECT_EQ(config->rules[0].class_mask, QueryClassBit(QueryClass::kSelect));
  EXPECT_EQ(config->rules[1].class_mask, QueryClassBit(QueryClass::kDml));
  EXPECT_EQ(config->rules[2].class_mask, kAllClassesMask);
}

TEST(RuleConfigTest, DetailAliases) {
  auto config = Parse(
      "[rule a]\ndetail = none\n"
      "[rule b]\ndetail = log\n"
      "[rule c]\ndetail = static\n"
      "[rule d]\ndetail = full\n");
  ASSERT_TRUE(config.ok()) << config.status().message();
  EXPECT_EQ(config->rules[0].detail, AuditDetail::kNone);
  EXPECT_EQ(config->rules[1].detail, AuditDetail::kLogOnly);
  EXPECT_EQ(config->rules[2].detail, AuditDetail::kStaticScreen);
  EXPECT_EQ(config->rules[3].detail, AuditDetail::kFullAudit);
}

TEST(RuleConfigTest, ErrorsCarryLineNumbers) {
  auto parsed = Parse("[rule a]\nuser = alice\nbogus-key = 1\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("line 3"), std::string::npos)
      << parsed.status().message();
}

TEST(RuleConfigTest, AdversarialInputs) {
  ExpectParseError("[rule a]\nnope = x\n", "unknown key");
  ExpectParseError("[rule a]\n[rule a]\n", "duplicate rule name");
  ExpectParseError("[rule a]\nuser = x\nuser = y\n", "duplicate key");
  ExpectParseError("user = alice\n", "outside any [rule");
  ExpectParseError("[rule a\nuser = x\n", "unterminated section header");
  ExpectParseError("[rule ]\n", "needs a name");
  ExpectParseError("[section a]\n", "must be '[rule NAME]'");
  ExpectParseError("[rule a]\njust some text\n", "expected 'key = value'");
  ExpectParseError("[rule a]\nuser =\n", "empty value");
  ExpectParseError("[rule a]\nuser = a,,b\n", "empty element");
  ExpectParseError("[rule a]\ndetail = verbose\n", "unknown detail");
  ExpectParseError("[rule a]\nclass = select, truncate\n",
                   "unknown query class");
  ExpectParseError("[rule a]\nduring = 1/1/1970\n", "START .. END");
  ExpectParseError("[rule a]\nduring = not-a-date .. 1/1/1970\n", "line 2");
  ExpectParseError("[rule a]\nduring = 2/1/1970 .. 1/1/1970\n",
                   "ends before it starts");
  ExpectParseError("[rule a]\nrole-purpose = clerk\n", "expected '('");
  ExpectParseError("[rule a]\nrole-purpose = (clerk\n", "unbalanced");
  ExpectParseError("[rule a]\nrole-purpose = (a,b,c)\n",
                   "exactly two elements");
  ExpectParseError("[rule a]\nrole-purpose = (,b)\n", "empty side");
  ExpectParseError("[rule a]\nlog-class = two words\n", "single bare token");
  ExpectParseError("[rule a]\nlog-class = pipe|y\n", "single bare token");
}

TEST(RuleConfigTest, DuplicateKeyResetsPerSection) {
  // The same key in two different sections is fine.
  auto config = Parse("[rule a]\nuser = x\n[rule b]\nuser = y\n");
  ASSERT_TRUE(config.ok()) << config.status().message();
  EXPECT_EQ(config->rules.size(), 2u);
}

TEST(RuleConfigTest, FiltersAreCompiled) {
  // Parse() must hand back filters ready for the Decide hot path: with
  // many users, membership checks go through the compiled hash set.
  std::string users;
  for (int i = 0; i < 100; ++i) {
    users += (i ? ", u" : "u") + std::to_string(i);
  }
  auto config = Parse("[rule big]\nuser = " + users + "\n");
  ASSERT_TRUE(config.ok()) << config.status().message();
  LoggedQuery probe;
  probe.sql = "SELECT 1 FROM T";
  probe.timestamp = Ts(100);
  probe.user = "u99";
  probe.role = "r";
  probe.purpose = "p";
  EXPECT_TRUE(config->rules[0].filter.Admits(probe));
  probe.user = "u100";
  EXPECT_FALSE(config->rules[0].filter.Admits(probe));
}

}  // namespace
}  // namespace policy
}  // namespace auditdb
