#include "src/policy/redaction.h"

#include <gtest/gtest.h>

namespace auditdb {
namespace policy {
namespace {

RedactionSet Marked(std::vector<std::string> specs) {
  RedactionSet set;
  set.AddAll(specs);
  return set;
}

TEST(RedactionSetTest, BareEntryMatchesAnyTable) {
  RedactionSet set = Marked({"disease"});
  EXPECT_FALSE(set.empty());
  EXPECT_TRUE(set.Matches("", "disease"));
  EXPECT_TRUE(set.Matches("P-Health", "disease"));
  EXPECT_TRUE(set.Matches("Other", "DISEASE"));  // case-insensitive
  EXPECT_FALSE(set.Matches("", "ward"));
}

TEST(RedactionSetTest, QualifiedEntryMatchesItsTableAndBareUses) {
  RedactionSet set = Marked({"P-Employ.salary"});
  EXPECT_TRUE(set.Matches("P-Employ", "salary"));
  EXPECT_TRUE(set.Matches("p-employ", "SALARY"));
  // Unqualified uses of the column over-redact rather than leak.
  EXPECT_TRUE(set.Matches("", "salary"));
  EXPECT_FALSE(set.Matches("P-Health", "salary"));
}

TEST(RedactionSetTest, MergeFrom) {
  RedactionSet a = Marked({"disease"});
  a.MergeFrom(Marked({"T.salary"}));
  EXPECT_TRUE(a.Matches("", "disease"));
  EXPECT_TRUE(a.Matches("T", "salary"));
}

TEST(RedactSqlTest, EmptySetIsIdentity) {
  RedactionSet none;
  std::string sql = "SELECT name FROM T WHERE disease='diabetic'";
  RedactResult out = RedactSql(sql, none);
  EXPECT_EQ(out.text, sql);
  EXPECT_EQ(out.redactions, 0u);
}

TEST(RedactSqlTest, EqualityLiteralRight) {
  RedactResult out =
      RedactSql("SELECT pid FROM P-Health WHERE disease='diabetic'",
                Marked({"disease"}));
  EXPECT_EQ(out.text,
            "SELECT pid FROM P-Health WHERE disease='[REDACTED]'");
  EXPECT_EQ(out.redactions, 1u);
}

TEST(RedactSqlTest, EqualityLiteralLeft) {
  RedactResult out = RedactSql("SELECT pid FROM T WHERE 'diabetic'=disease",
                               Marked({"disease"}));
  EXPECT_EQ(out.text, "SELECT pid FROM T WHERE '[REDACTED]'=disease");
  EXPECT_EQ(out.redactions, 1u);
}

TEST(RedactSqlTest, QualifiedColumnReference) {
  RedactResult out = RedactSql(
      "SELECT name FROM P-Personal, P-Health WHERE "
      "P-Personal.pid = P-Health.pid AND P-Health.disease = 'flu'",
      Marked({"P-Health.disease"}));
  EXPECT_EQ(out.text,
            "SELECT name FROM P-Personal, P-Health WHERE "
            "P-Personal.pid = P-Health.pid AND P-Health.disease = "
            "'[REDACTED]'");
  EXPECT_EQ(out.redactions, 1u);
}

TEST(RedactSqlTest, UnmarkedColumnsKeepTheirLiterals) {
  RedactResult out = RedactSql(
      "SELECT pid FROM T WHERE ward='W3' AND disease='flu'",
      Marked({"disease"}));
  EXPECT_EQ(out.text,
            "SELECT pid FROM T WHERE ward='W3' AND disease='[REDACTED]'");
  EXPECT_EQ(out.redactions, 1u);
}

TEST(RedactSqlTest, NumericAndUnaryMinus) {
  RedactResult out = RedactSql("SELECT pid FROM T WHERE salary > 120000",
                               Marked({"salary"}));
  EXPECT_EQ(out.text, "SELECT pid FROM T WHERE salary > '[REDACTED]'");

  // The sign is part of the secret: -42 must not leave "-" behind.
  RedactResult neg = RedactSql("SELECT pid FROM T WHERE salary < -42",
                               Marked({"salary"}));
  EXPECT_EQ(neg.text, "SELECT pid FROM T WHERE salary < '[REDACTED]'");
  EXPECT_EQ(neg.redactions, 1u);
}

TEST(RedactSqlTest, LikeBetweenIn) {
  EXPECT_EQ(RedactSql("SELECT a FROM T WHERE name LIKE 'Bo%'",
                      Marked({"name"}))
                .text,
            "SELECT a FROM T WHERE name LIKE '[REDACTED]'");

  RedactResult between =
      RedactSql("SELECT a FROM T WHERE age BETWEEN 30 AND 40",
                Marked({"age"}));
  EXPECT_EQ(between.text,
            "SELECT a FROM T WHERE age BETWEEN '[REDACTED]' AND "
            "'[REDACTED]'");
  EXPECT_EQ(between.redactions, 2u);

  RedactResult in_list = RedactSql(
      "SELECT a FROM T WHERE zipcode IN ('110001', '110002', '110003')",
      Marked({"zipcode"}));
  EXPECT_EQ(in_list.text,
            "SELECT a FROM T WHERE zipcode IN ('[REDACTED]', '[REDACTED]', "
            "'[REDACTED]')");
  EXPECT_EQ(in_list.redactions, 3u);
}

TEST(RedactSqlTest, PreservesSurroundingBytes) {
  // Odd spacing and case survive; only the literal span is spliced.
  RedactResult out = RedactSql(
      "select  Name from T where  Disease   =    'x'  and age>3",
      Marked({"disease"}));
  EXPECT_EQ(out.text,
            "select  Name from T where  Disease   =    '[REDACTED]'  and "
            "age>3");
}

TEST(RedactSqlTest, UnlexableInputFullyRedactsWhenMarked) {
  // An unterminated string cannot be lexed; with marked columns the
  // whole text is hidden, without them it passes through untouched.
  std::string bad = "SELECT a FROM T WHERE disease='unterminated";
  RedactResult out = RedactSql(bad, Marked({"disease"}));
  EXPECT_EQ(out.text, kRedactedQueryToken);
  EXPECT_EQ(out.redactions, 1u);

  RedactionSet none;
  EXPECT_EQ(RedactSql(bad, none).text, bad);
}

TEST(RedactSqlTest, RedactedOutputNeverContainsTheLiteral) {
  RedactionSet set = Marked({"disease", "salary"});
  const char* queries[] = {
      "SELECT name, disease FROM P-Health WHERE disease='diabetic'",
      "SELECT pid FROM P-Employ WHERE salary > 250000 AND employer='E1'",
      "SELECT a FROM T WHERE disease IN ('diabetic','flu') OR salary=9",
  };
  for (const char* sql : queries) {
    RedactResult out = RedactSql(sql, set);
    EXPECT_EQ(out.text.find("diabetic"), std::string::npos) << out.text;
    EXPECT_EQ(out.text.find("250000"), std::string::npos) << out.text;
    EXPECT_GT(out.redactions, 0u) << sql;
  }
}

}  // namespace
}  // namespace policy
}  // namespace auditdb
