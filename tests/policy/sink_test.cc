#include "src/policy/sink.h"

#include <gtest/gtest.h>

#include "src/common/string_util.h"

namespace auditdb {
namespace policy {
namespace {

std::string ScratchDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "auditdb_sink_test_" + name;
  io::Env* env = io::Env::Default();
  if (env->FileExists(dir)) {
    auto names = env->ListDir(dir);
    if (names.ok()) {
      for (const auto& entry : *names) {
        env->DeleteFile(io::JoinPath(dir, entry));
      }
    }
  }
  EXPECT_TRUE(env->CreateDirIfMissing(dir).ok());
  return dir;
}

SinkRecord SampleRecord() {
  SinkRecord record;
  record.timestamp = Timestamp(123456789);
  record.log_id = 42;
  record.rule = "clerk-exports";
  record.log_class = "export-watch";
  record.query_class = "select";
  record.user = "mallory";
  record.role = "clerk";
  record.purpose = "export";
  record.remote = "127.0.0.1";
  record.tables = "P-Health,P-Employ";
  record.sql = "SELECT pid FROM P-Health WHERE disease='[REDACTED]'";
  record.note = "cols=P-Health.disease";
  return record;
}

TEST(SinkLineTest, FormatParseRoundTrip) {
  SinkRecord record = SampleRecord();
  std::string line = FormatSinkLine(record);
  EXPECT_TRUE(StartsWith(line, "AUDIT "));

  auto parsed = ParseSinkLine(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  EXPECT_EQ(parsed->timestamp.micros(), record.timestamp.micros());
  EXPECT_EQ(parsed->log_id, record.log_id);
  EXPECT_EQ(parsed->rule, record.rule);
  EXPECT_EQ(parsed->log_class, record.log_class);
  EXPECT_EQ(parsed->query_class, record.query_class);
  EXPECT_EQ(parsed->user, record.user);
  EXPECT_EQ(parsed->role, record.role);
  EXPECT_EQ(parsed->purpose, record.purpose);
  EXPECT_EQ(parsed->remote, record.remote);
  EXPECT_EQ(parsed->tables, record.tables);
  EXPECT_EQ(parsed->sql, record.sql);
  EXPECT_EQ(parsed->note, record.note);
}

TEST(SinkLineTest, EscapingSurvivesHostileFieldBytes) {
  // Pipes and newlines in fields must not break the line structure.
  SinkRecord record = SampleRecord();
  record.user = "mal|lory";
  record.sql = "SELECT a FROM T WHERE x='pipe|new\nline'";
  record.note = "multi\nline|note";

  std::string line = FormatSinkLine(record);
  EXPECT_EQ(line.find('\n'), std::string::npos);

  auto parsed = ParseSinkLine(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  EXPECT_EQ(parsed->user, record.user);
  EXPECT_EQ(parsed->sql, record.sql);
  EXPECT_EQ(parsed->note, record.note);
}

TEST(SinkLineTest, RejectsMalformedLines) {
  EXPECT_FALSE(ParseSinkLine("").ok());
  EXPECT_FALSE(ParseSinkLine("NOISE 1|2|3").ok());
  EXPECT_FALSE(ParseSinkLine("AUDIT 1|2|3").ok());  // too few fields
  std::string line = FormatSinkLine(SampleRecord());
  EXPECT_FALSE(ParseSinkLine(line + "|extra").ok());
  EXPECT_FALSE(ParseSinkLine("AUDIT x|0|a|b|c|d|e|f|g|h|i|j").ok());
}

TEST(FileSinkTest, AppendsParseableLines) {
  io::Env* env = io::Env::Default();
  std::string path = io::JoinPath(ScratchDir("file"), "audit.log");

  auto sink = FileSink::Open(env, path);
  ASSERT_TRUE(sink.ok()) << sink.status().message();
  EXPECT_EQ((*sink)->name(), "file");

  SinkRecord record = SampleRecord();
  ASSERT_TRUE((*sink)->Write(record).ok());
  record.log_id = 43;
  ASSERT_TRUE((*sink)->Write(record).ok());
  ASSERT_TRUE((*sink)->Flush().ok());

  auto text = env->ReadFileToString(path);
  ASSERT_TRUE(text.ok());
  auto lines = Split(*text, '\n');
  ASSERT_GE(lines.size(), 2u);
  auto first = ParseSinkLine(std::string(lines[0]));
  auto second = ParseSinkLine(std::string(lines[1]));
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->log_id, 42);
  EXPECT_EQ(second->log_id, 43);

  // Re-opening appends rather than truncating (restart keeps history).
  auto reopened = FileSink::Open(env, path);
  ASSERT_TRUE(reopened.ok());
  record.log_id = 44;
  ASSERT_TRUE((*reopened)->Write(record).ok());
  ASSERT_TRUE((*reopened)->Flush().ok());
  auto all = env->ReadFileToString(path);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(Split(*all, '\n').size(), 4u);  // 3 records + trailing empty
}

TEST(SyslogLineSinkTest, FormatsSingleLineKeyValues) {
  SinkRecord record = SampleRecord();
  std::string line = SyslogLineSink::FormatLine("auditd", record);
  EXPECT_TRUE(StartsWith(line, "<134>"));
  EXPECT_NE(line.find(" auditd: "), std::string::npos);
  EXPECT_NE(line.find("class=export-watch"), std::string::npos);
  EXPECT_NE(line.find("rule=clerk-exports"), std::string::npos);
  EXPECT_NE(line.find("qclass=select"), std::string::npos);
  EXPECT_NE(line.find("log_id=42"), std::string::npos);
  EXPECT_NE(line.find("remote=127.0.0.1"), std::string::npos);
  EXPECT_NE(line.find("sql=\"SELECT pid"), std::string::npos);
  EXPECT_NE(line.find("note=\"cols="), std::string::npos);

  // Optional fields drop out; newlines are squashed to keep one line.
  record.remote.clear();
  record.tables.clear();
  record.note = "a\nb";
  line = SyslogLineSink::FormatLine("auditd", record);
  EXPECT_EQ(line.find("remote="), std::string::npos);
  EXPECT_EQ(line.find("tables="), std::string::npos);
  EXPECT_EQ(line.find('\n'), std::string::npos);
  EXPECT_NE(line.find("note=\"a b\""), std::string::npos);
}

TEST(SyslogLineSinkTest, WritesToFile) {
  io::Env* env = io::Env::Default();
  std::string path = io::JoinPath(ScratchDir("syslog"), "syslog.log");
  auto sink = SyslogLineSink::Open(env, path);
  ASSERT_TRUE(sink.ok()) << sink.status().message();
  ASSERT_TRUE((*sink)->Write(SampleRecord()).ok());
  ASSERT_TRUE((*sink)->Flush().ok());
  auto text = env->ReadFileToString(path);
  ASSERT_TRUE(text.ok());
  EXPECT_TRUE(StartsWith(*text, "<134>"));
}

TEST(MetricsSinkTest, CountsPerLogClass) {
  service::MetricsRegistry registry;
  MetricsSink sink(&registry);
  EXPECT_EQ(sink.name(), "metrics");

  SinkRecord record = SampleRecord();
  ASSERT_TRUE(sink.Write(record).ok());
  ASSERT_TRUE(sink.Write(record).ok());
  record.log_class = "other";
  ASSERT_TRUE(sink.Write(record).ok());
  ASSERT_TRUE(sink.Flush().ok());

  EXPECT_EQ(registry.counter("sink.metrics.records")->value(), 3u);
  EXPECT_EQ(registry.counter("sink.metrics.class.export-watch")->value(), 2u);
  EXPECT_EQ(registry.counter("sink.metrics.class.other")->value(), 1u);
}

}  // namespace
}  // namespace policy
}  // namespace auditdb
