/// Integration tests of the audit_shell CLI: drive the real binary over
/// script files and check its output. The binary's path comes from the
/// AUDITDB_SHELL environment variable set by CMake.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "src/net/server.h"
#include "src/workload/generator.h"
#include "src/workload/hospital.h"

namespace auditdb {
namespace {

std::string ShellPath() {
  const char* path = std::getenv("AUDITDB_SHELL");
  return path != nullptr ? path : "";
}

/// Writes `script` to a temp file, runs the shell on it, returns stdout.
/// The path is per-process: ctest runs each case as its own process, and
/// a shared name would let parallel cases clobber each other's script.
std::string RunShell(const std::string& script) {
  std::string script_path = ::testing::TempDir() + "/shell_script_" +
                            std::to_string(::getpid()) + ".txt";
  {
    std::ofstream out(script_path);
    out << script;
  }
  std::string command = ShellPath() + " " + script_path + " 2>&1";
  FILE* pipe = popen(command.c_str(), "r");
  EXPECT_NE(pipe, nullptr);
  std::string output;
  char buffer[4096];
  while (pipe != nullptr && std::fgets(buffer, sizeof(buffer), pipe)) {
    output += buffer;
  }
  if (pipe != nullptr) pclose(pipe);
  return output;
}

class ShellTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (ShellPath().empty()) {
      GTEST_SKIP() << "AUDITDB_SHELL not set";
    }
  }
};

TEST_F(ShellTest, FixtureAndTables) {
  std::string out = RunShell(".fixture paper\n.tables\n.quit\n");
  EXPECT_NE(out.find("P-Personal"), std::string::npos);
  EXPECT_NE(out.find("(4 rows)"), std::string::npos);
}

TEST_F(ShellTest, QueryExecutionAndLogging) {
  std::string out = RunShell(
      ".fixture paper\n"
      "SELECT name FROM P-Personal WHERE age < 30\n"
      ".log\n.quit\n");
  EXPECT_NE(out.find("Jane"), std::string::npos);
  EXPECT_NE(out.find("(3 rows)"), std::string::npos);
  EXPECT_NE(out.find("#1 ["), std::string::npos);  // logged
}

TEST_F(ShellTest, AuditProducesReport) {
  std::string out = RunShell(
      ".fixture paper\n"
      "SELECT name, disease FROM P-Personal, P-Health "
      "WHERE P-Personal.pid = P-Health.pid AND zipcode = '145568'\n"
      ".audit DURING 1/1/1970 to now() DATA-INTERVAL 1/1/1970 to now() "
      "AUDIT disease FROM P-Personal, P-Health "
      "WHERE P-Personal.pid = P-Health.pid AND zipcode = '145568'\n"
      ".quit\n");
  EXPECT_NE(out.find("AUDIT REPORT"), std::string::npos);
  EXPECT_NE(out.find("SUSPICIOUS"), std::string::npos);
  EXPECT_NE(out.find("[SUSPECT"), std::string::npos);
}

TEST_F(ShellTest, LineContinuation) {
  std::string out = RunShell(
      ".fixture paper\n"
      "SELECT name FROM P-Personal \\\n"
      "WHERE age < 30\n"
      ".quit\n");
  EXPECT_NE(out.find("(3 rows)"), std::string::npos);
}

TEST_F(ShellTest, GranulesCommand) {
  std::string out = RunShell(
      ".fixture paper\n"
      ".granules AUDIT (name,disease,address) "
      "FROM P-Personal, P-Health, P-Employ "
      "WHERE P-Personal.pid=P-Health.pid and P-Health.pid=P-Employ.pid "
      "and P-Personal.zipcode='145568' and P-Employ.salary > 10000 "
      "and P-Health.disease='diabetic'\n"
      ".quit\n");
  EXPECT_NE(out.find("|U| = 2"), std::string::npos);
  EXPECT_NE(out.find("(t12,t22,Reku,diabetic,A2)"), std::string::npos);
}

TEST_F(ShellTest, SaveAndLoadRoundTrip) {
  std::string db_path = ::testing::TempDir() + "/shell_roundtrip.db";
  std::string out = RunShell(
      ".fixture paper\n"
      ".save db " + db_path + "\n.quit\n");
  std::string out2 = RunShell(
      ".load db " + db_path + "\n"
      "SELECT name FROM P-Personal WHERE age < 30\n.quit\n");
  EXPECT_NE(out2.find("(3 rows)"), std::string::npos);
}

TEST_F(ShellTest, AuditJobsRunsConcurrentServiceAndPrintsMetrics) {
  std::string out = RunShell(
      ".fixture paper\n"
      "SELECT name, disease FROM P-Personal, P-Health "
      "WHERE P-Personal.pid = P-Health.pid AND zipcode = '145568'\n"
      ".audit --jobs 2 DURING 1/1/1970 to now() "
      "DATA-INTERVAL 1/1/1970 to now() "
      "AUDIT disease FROM P-Personal, P-Health "
      "WHERE P-Personal.pid = P-Health.pid AND zipcode = '145568'\n"
      ".quit\n");
  EXPECT_NE(out.find("AUDIT REPORT"), std::string::npos);
  EXPECT_NE(out.find("SUSPICIOUS"), std::string::npos);
  EXPECT_NE(out.find("metrics: {"), std::string::npos);
  EXPECT_NE(out.find("\"pool.jobs_submitted\""), std::string::npos);
  EXPECT_NE(out.find("\"scheduler.runs\":1"), std::string::npos);
}

TEST_F(ShellTest, SerialAndJobsAuditsAgree) {
  std::string script_tail =
      "SELECT name, disease FROM P-Personal, P-Health "
      "WHERE P-Personal.pid = P-Health.pid AND zipcode = '145568'\n";
  std::string audit_expr =
      "DURING 1/1/1970 to now() DATA-INTERVAL 1/1/1970 to now() "
      "AUDIT disease FROM P-Personal, P-Health "
      "WHERE P-Personal.pid = P-Health.pid AND zipcode = '145568'\n";
  std::string serial = RunShell(".fixture paper\n" + script_tail +
                                ".audit " + audit_expr + ".quit\n");
  std::string jobs = RunShell(".fixture paper\n" + script_tail +
                              ".audit --jobs 4 " + audit_expr + ".quit\n");
  // The verdicts are identical; only the wall-clock "phases:" line may
  // differ, and the --jobs run appends its metrics line.
  std::string report = serial.substr(serial.find("batch verdict:"));
  EXPECT_NE(jobs.find(report), std::string::npos);
  std::string header = serial.substr(serial.find("AUDIT REPORT"));
  header = header.substr(0, header.find("phases:"));
  EXPECT_NE(jobs.find(header), std::string::npos);
}

TEST_F(ShellTest, AuditJobsRejectsBadCount) {
  std::string out = RunShell(
      ".fixture paper\n"
      ".audit --jobs zero AUDIT disease FROM P-Health\n"
      ".quit\n");
  EXPECT_NE(out.find("error:"), std::string::npos);
  EXPECT_NE(out.find("--jobs"), std::string::npos);
}

TEST_F(ShellTest, ConnectRunsCommandsAgainstRemoteAuditd) {
  // An in-process auditd the shell subprocess attaches to.
  Database db;
  Backlog backlog;
  backlog.Attach(&db);
  QueryLog log;
  workload::HospitalConfig hospital;
  hospital.num_patients = 30;
  hospital.seed = 2008;
  ASSERT_TRUE(workload::PopulateHospital(&db, hospital,
                                         Timestamp(1000000)).ok());
  workload::WorkloadConfig workload;
  workload.num_queries = 40;
  workload.start = Timestamp(100 * 1000000);
  ASSERT_TRUE(workload::GenerateWorkload(&log, workload, hospital).ok());
  service::AuditService audit_service(&db, &backlog, &log);
  net::AuditServer server(&audit_service, &db, &backlog, &log);
  ASSERT_TRUE(server.Start().ok());
  std::string target =
      server.host() + ":" + std::to_string(server.port());

  size_t log_before = log.size();
  std::string out = RunShell(
      ".connect " + target + "\n"
      ".at 10/1/1970\n"
      "SELECT name, disease FROM P-Personal, P-Health "
      "WHERE P-Personal.pid = P-Health.pid AND disease = 'diabetic'\n"
      ".audit DURING 1/1/1970 to 2/1/1970 "
      "DATA-INTERVAL 1/1/1970 to 2/1/1970 "
      "AUDIT (name,disease) FROM P-Personal, P-Health "
      "WHERE P-Personal.pid = P-Health.pid AND disease='diabetic'\n"
      ".metrics\n"
      ".tables\n"
      ".disconnect\n"
      ".tables\n.quit\n");
  server.Shutdown();

  EXPECT_NE(out.find("connected to auditd at " + target), std::string::npos);
  EXPECT_NE(out.find("logged remotely as #"), std::string::npos);
  EXPECT_EQ(log.size(), log_before + 1);  // SELECT hit the server's log
  EXPECT_NE(out.find("AUDIT REPORT"), std::string::npos);
  EXPECT_NE(out.find("\"net.frames_received\""), std::string::npos);
  // Local-only commands are refused while connected, work again after.
  EXPECT_NE(out.find(".tables works on the in-process stores"),
            std::string::npos);
  EXPECT_NE(out.find("back to in-process stores"), std::string::npos);
}

TEST_F(ShellTest, ConnectRefusesBadTarget) {
  std::string out = RunShell(".connect nowhere\n.quit\n");
  EXPECT_NE(out.find("error:"), std::string::npos);
  EXPECT_NE(out.find("host:port"), std::string::npos);
}

TEST_F(ShellTest, ErrorsAreReportedNotFatal) {
  std::string out = RunShell(
      ".fixture paper\n"
      "SELECT nope FROM Nowhere\n"
      ".bogus\n"
      ".tables\n.quit\n");
  EXPECT_NE(out.find("error:"), std::string::npos);
  // The shell keeps going after errors.
  EXPECT_NE(out.find("P-Personal"), std::string::npos);
}

}  // namespace
}  // namespace auditdb
