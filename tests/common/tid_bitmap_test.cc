#include "src/common/tid_bitmap.h"

#include <algorithm>
#include <cstdint>
#include <random>
#include <set>
#include <vector>

#include "gtest/gtest.h"

namespace auditdb {
namespace {

std::vector<int64_t> SetToVector(const std::set<int64_t>& s) {
  return std::vector<int64_t>(s.begin(), s.end());
}

TidBitmap FromSet(const std::set<int64_t>& s) {
  TidBitmap bm;
  for (int64_t tid : s) bm.Add(tid);
  return bm;
}

void ExpectSame(const TidBitmap& bm, const std::set<int64_t>& ref) {
  ASSERT_EQ(bm.Cardinality(), ref.size());
  EXPECT_EQ(bm.Empty(), ref.empty());
  // Iteration order must be ascending tid order, exactly as std::set.
  EXPECT_EQ(bm.ToVector(), SetToVector(ref));
}

TEST(TidBitmapTest, EmptyBitmap) {
  TidBitmap bm;
  EXPECT_TRUE(bm.Empty());
  EXPECT_EQ(bm.Cardinality(), 0u);
  EXPECT_FALSE(bm.Contains(0));
  EXPECT_TRUE(bm.ToVector().empty());
  EXPECT_EQ(bm, TidBitmap());
}

TEST(TidBitmapTest, AddContainsBasic) {
  TidBitmap bm;
  bm.Add(7);
  bm.Add(100000);
  bm.Add(7);  // duplicate
  EXPECT_EQ(bm.Cardinality(), 2u);
  EXPECT_TRUE(bm.Contains(7));
  EXPECT_TRUE(bm.Contains(100000));
  EXPECT_FALSE(bm.Contains(8));
  EXPECT_EQ(bm.ToVector(), (std::vector<int64_t>{7, 100000}));
}

TEST(TidBitmapTest, NegativeAndExtremeTidsIterateInSignedOrder) {
  std::set<int64_t> ref = {INT64_MIN, -65536, -1, 0, 1, 65535, 65536,
                           INT64_MAX - 1, INT64_MAX};
  TidBitmap bm;
  // Insert in scrambled order; iteration must still be ascending signed.
  for (int64_t tid : {int64_t{0}, INT64_MAX, int64_t{-1}, int64_t{65536},
                      INT64_MIN, int64_t{65535}, int64_t{1},
                      int64_t{-65536}, INT64_MAX - 1}) {
    bm.Add(tid);
  }
  ExpectSame(bm, ref);
  for (int64_t tid : ref) EXPECT_TRUE(bm.Contains(tid));
  EXPECT_FALSE(bm.Contains(2));
  EXPECT_FALSE(bm.Contains(INT64_MIN + 1));
}

TEST(TidBitmapTest, ChunkBoundaryValues) {
  // Values straddling the 16-bit chunk boundary and the dense/sparse
  // threshold neighborhood.
  std::set<int64_t> ref;
  for (int64_t base : {int64_t{0}, int64_t{65536}, int64_t{1} << 32}) {
    for (int64_t d : {int64_t{-2}, int64_t{-1}, int64_t{0}, int64_t{1},
                      int64_t{2}}) {
      ref.insert(base + d);
    }
  }
  TidBitmap bm = FromSet(ref);
  ExpectSame(bm, ref);
  for (int64_t tid : ref) EXPECT_TRUE(bm.Contains(tid));
}

TEST(TidBitmapTest, DenseConversionRoundTrip) {
  // Fill one chunk past the array threshold so it converts to a bitset,
  // then remove back below the threshold so it converts back.
  std::set<int64_t> ref;
  TidBitmap bm;
  for (int64_t i = 0; i < 60000; i += 3) {
    bm.Add(i);
    ref.insert(i);
  }
  ASSERT_GT(bm.Cardinality(), TidBitmap::kArrayMax);
  ExpectSame(bm, ref);

  // Subtract most of it away again.
  std::set<int64_t> remove;
  for (int64_t i = 0; i < 60000; i += 3) {
    if (i % 5 != 0) remove.insert(i);
  }
  bm.AndNot(FromSet(remove));
  std::set<int64_t> expect;
  std::set_difference(ref.begin(), ref.end(), remove.begin(), remove.end(),
                      std::inserter(expect, expect.begin()));
  ASSERT_LT(expect.size(), size_t{TidBitmap::kArrayMax});
  ExpectSame(bm, expect);
  // Canonical representation: equal to a freshly built bitmap of the
  // same set even though this one went dense and back.
  EXPECT_EQ(bm, FromSet(expect));
}

TEST(TidBitmapTest, AscendingAppendFastPathMatchesRandomOrder) {
  std::mt19937_64 rng(7);
  std::vector<int64_t> tids;
  for (int i = 0; i < 20000; ++i) {
    tids.push_back(static_cast<int64_t>(rng() % 1000000));
  }
  std::vector<int64_t> sorted = tids;
  std::sort(sorted.begin(), sorted.end());
  TidBitmap ascending;
  for (int64_t t : sorted) ascending.Add(t);
  TidBitmap shuffled;
  for (int64_t t : tids) shuffled.Add(t);
  EXPECT_EQ(ascending, shuffled);
}

TEST(TidBitmapTest, OrAndAndNotIntersectsBasic) {
  std::set<int64_t> sa = {1, 2, 3, 100000, 200000};
  std::set<int64_t> sb = {2, 4, 100000, 300000};
  TidBitmap a = FromSet(sa);
  TidBitmap b = FromSet(sb);

  TidBitmap u = a;
  u.Or(b);
  EXPECT_EQ(u.ToVector(),
            (std::vector<int64_t>{1, 2, 3, 4, 100000, 200000, 300000}));

  TidBitmap i = a;
  i.And(b);
  EXPECT_EQ(i.ToVector(), (std::vector<int64_t>{2, 100000}));

  TidBitmap d = a;
  d.AndNot(b);
  EXPECT_EQ(d.ToVector(), (std::vector<int64_t>{1, 3, 200000}));

  EXPECT_TRUE(a.Intersects(b));
  EXPECT_TRUE(b.Intersects(a));
  TidBitmap disjoint = FromSet({5, 400000});
  EXPECT_FALSE(a.Intersects(disjoint));
  EXPECT_FALSE(disjoint.Intersects(a));
  EXPECT_FALSE(a.Intersects(TidBitmap()));
  EXPECT_FALSE(TidBitmap().Intersects(a));
}

TEST(TidBitmapTest, ClearResets) {
  TidBitmap bm = FromSet({1, 2, 3});
  bm.Clear();
  EXPECT_TRUE(bm.Empty());
  EXPECT_EQ(bm, TidBitmap());
  bm.Add(9);
  EXPECT_EQ(bm.ToVector(), (std::vector<int64_t>{9}));
}

TEST(TidBitmapTest, SizeBytesReflectsCompression) {
  // A dense run of 65536 consecutive tids compresses to one 8KB bitset
  // chunk — far below the 512KB+ a hash set of int64 would use.
  TidBitmap bm;
  for (int64_t i = 0; i < 65536; ++i) bm.Add(i);
  EXPECT_EQ(bm.Cardinality(), 65536u);
  EXPECT_LE(bm.SizeBytes(), size_t{16} * 1024);
}

TEST(TidBitmapTest, AddRangeMatchesLoopAdd) {
  // Ranges crossing chunk boundaries, partial edge chunks, sub-kArrayMax
  // counts (array form), negative spans, and overlap with existing
  // chunks (the per-tid fallback) must all equal the Add loop — and be
  // canonically equal (operator==), not just element-equal.
  const std::vector<std::pair<int64_t, int64_t>> ranges = {
      {0, 1},          {0, 100},        {60000, 70000},   {0, 200000},
      {65536, 131072}, {65500, 65600},  {-70000, -60000}, {-100, 100},
      {1000, 1000},    {131072, 131072 + 4096}};
  for (const auto& [begin, end] : ranges) {
    TidBitmap ranged;
    ranged.AddRange(begin, end);
    TidBitmap looped;
    for (int64_t t = begin; t < end; ++t) looped.Add(t);
    EXPECT_EQ(ranged, looped) << "[" << begin << ", " << end << ")";
    EXPECT_EQ(ranged.Cardinality(),
              static_cast<uint64_t>(end > begin ? end - begin : 0));
  }
  // Overlapping/backward AddRange onto an existing bitmap.
  TidBitmap ranged;
  ranged.AddRange(0, 100000);
  ranged.AddRange(50000, 150000);
  ranged.AddRange(-10, 10);
  TidBitmap looped;
  for (int64_t t = 0; t < 150000; ++t) looped.Add(t);
  for (int64_t t = -10; t < 10; ++t) looped.Add(t);
  EXPECT_EQ(ranged, looped);
}

// ---------------------------------------------------------------------------
// Differential property suite: random universes x random op sequences,
// bitmap vs reference std::set<Tid>.
// ---------------------------------------------------------------------------

/// Universe shapes exercising sparse chunks, dense chunks, and values
/// packed around 16-bit chunk boundaries.
enum class Universe { kSparse, kDense, kChunkBoundary, kMixedSign };

std::set<int64_t> RandomUniverse(Universe shape, std::mt19937_64& rng) {
  std::set<int64_t> out;
  switch (shape) {
    case Universe::kSparse: {
      // Few values scattered over a huge range: every chunk is an array.
      size_t n = 1 + rng() % 400;
      for (size_t i = 0; i < n; ++i) {
        out.insert(static_cast<int64_t>(rng() % (1ull << 40)));
      }
      break;
    }
    case Universe::kDense: {
      // Thousands of values inside a couple of chunks: forces bitsets.
      int64_t base = static_cast<int64_t>(rng() % 4) * 65536;
      size_t n = 5000 + rng() % 8000;
      for (size_t i = 0; i < n; ++i) {
        out.insert(base + static_cast<int64_t>(rng() % 131072));
      }
      break;
    }
    case Universe::kChunkBoundary: {
      // Values hugging multiples of 65536 — the adversarial pattern for
      // chunk-key arithmetic.
      size_t n = 1 + rng() % 200;
      for (size_t i = 0; i < n; ++i) {
        int64_t boundary = static_cast<int64_t>(rng() % 64) * 65536;
        int64_t delta = static_cast<int64_t>(rng() % 5) - 2;
        out.insert(boundary + delta);
      }
      break;
    }
    case Universe::kMixedSign: {
      size_t n = 1 + rng() % 300;
      for (size_t i = 0; i < n; ++i) {
        int64_t v = static_cast<int64_t>(rng() % (1ull << 20)) - (1 << 19);
        out.insert(v);
      }
      out.insert(INT64_MIN);
      out.insert(INT64_MAX);
      break;
    }
  }
  return out;
}

TEST(TidBitmapDifferentialTest, RandomOpSequencesMatchStdSet) {
  std::mt19937_64 rng(20260809);
  const Universe kShapes[] = {Universe::kSparse, Universe::kDense,
                              Universe::kChunkBoundary, Universe::kMixedSign};
  for (int trial = 0; trial < 40; ++trial) {
    Universe shape = kShapes[trial % 4];
    std::set<int64_t> ref = RandomUniverse(shape, rng);
    TidBitmap bm = FromSet(ref);
    ExpectSame(bm, ref);

    for (int op = 0; op < 8; ++op) {
      Universe other_shape = kShapes[rng() % 4];
      std::set<int64_t> other_ref = RandomUniverse(other_shape, rng);
      TidBitmap other = FromSet(other_ref);
      switch (rng() % 4) {
        case 0: {
          bm.Or(other);
          std::set<int64_t> merged = ref;
          merged.insert(other_ref.begin(), other_ref.end());
          ref = std::move(merged);
          break;
        }
        case 1: {
          bm.And(other);
          std::set<int64_t> inter;
          std::set_intersection(ref.begin(), ref.end(), other_ref.begin(),
                                other_ref.end(),
                                std::inserter(inter, inter.begin()));
          ref = std::move(inter);
          break;
        }
        case 2: {
          bm.AndNot(other);
          std::set<int64_t> diff;
          std::set_difference(ref.begin(), ref.end(), other_ref.begin(),
                              other_ref.end(),
                              std::inserter(diff, diff.begin()));
          ref = std::move(diff);
          break;
        }
        case 3: {
          bool expect = false;
          for (int64_t t : other_ref) {
            if (ref.count(t) > 0) {
              expect = true;
              break;
            }
          }
          EXPECT_EQ(bm.Intersects(other), expect);
          break;
        }
      }
      ASSERT_NO_FATAL_FAILURE(ExpectSame(bm, ref))
          << "trial " << trial << " op " << op;
      // Canonical form: the mutated bitmap equals a rebuild from scratch.
      ASSERT_EQ(bm, FromSet(ref)) << "trial " << trial << " op " << op;
      // Membership spot checks on and off the set.
      for (int probe = 0; probe < 16; ++probe) {
        int64_t t = static_cast<int64_t>(rng() % (1ull << 41)) - (1ll << 20);
        EXPECT_EQ(bm.Contains(t), ref.count(t) > 0);
      }
    }
  }
}

TEST(TidBitmapDifferentialTest, SelfOperations) {
  std::mt19937_64 rng(99);
  std::set<int64_t> ref = RandomUniverse(Universe::kDense, rng);
  TidBitmap bm = FromSet(ref);

  TidBitmap self_or = bm;
  self_or.Or(bm);
  EXPECT_EQ(self_or, bm);

  TidBitmap self_and = bm;
  self_and.And(bm);
  EXPECT_EQ(self_and, bm);

  EXPECT_TRUE(bm.Intersects(bm));

  TidBitmap self_diff = bm;
  self_diff.AndNot(bm);
  EXPECT_TRUE(self_diff.Empty());
  EXPECT_EQ(self_diff, TidBitmap());

  // True aliasing: operand IS the destination object.
  TidBitmap aliased = bm;
  aliased.Or(aliased);
  EXPECT_EQ(aliased, bm);
  aliased.And(aliased);
  EXPECT_EQ(aliased, bm);
  aliased.AndNot(aliased);
  EXPECT_TRUE(aliased.Empty());
}

}  // namespace
}  // namespace auditdb
