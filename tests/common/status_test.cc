#include "src/common/status.h"

#include <gtest/gtest.h>

namespace auditdb {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllFactoryCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::TypeError("x").code(), StatusCode::kTypeError);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Cancelled("x").code(), StatusCode::kCancelled);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
}

TEST(StatusTest, ServiceCodeNames) {
  EXPECT_EQ(Status::Cancelled("run aborted").ToString(),
            "Cancelled: run aborted");
  EXPECT_EQ(Status::DeadlineExceeded("shard late").ToString(),
            "DeadlineExceeded: shard late");
  EXPECT_EQ(Status::ResourceExhausted("queue full").ToString(),
            "ResourceExhausted: queue full");
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::Ok(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, OkStatusBecomesInternalError) {
  Result<int> r = Status::Ok();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("hello");
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "hello");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseMacros(int x, int* out) {
  AUDITDB_ASSIGN_OR_RETURN(int half, Half(x));
  AUDITDB_RETURN_IF_ERROR(Status::Ok());
  *out = half;
  return Status::Ok();
}

TEST(ResultTest, Macros) {
  int out = 0;
  EXPECT_TRUE(UseMacros(10, &out).ok());
  EXPECT_EQ(out, 5);
  Status s = UseMacros(7, &out);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace auditdb
