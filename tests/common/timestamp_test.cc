#include "src/common/timestamp.h"

#include <gtest/gtest.h>

namespace auditdb {
namespace {

Timestamp Ts(int y, int m, int d, int hh = 0, int mm = 0, int ss = 0) {
  auto t = Timestamp::FromCivil(y, m, d, hh, mm, ss);
  EXPECT_TRUE(t.ok());
  return *t;
}

TEST(TimestampTest, EpochIsZero) {
  EXPECT_EQ(Ts(1970, 1, 1).micros(), 0);
}

TEST(TimestampTest, KnownCivilConversions) {
  // 2004-05-01 13:00:00 UTC == 1083416400 seconds since the epoch.
  EXPECT_EQ(Ts(2004, 5, 1, 13, 0, 0).micros(), 1083416400LL * 1000000);
  // Leap-year day.
  EXPECT_EQ(Ts(2004, 2, 29).micros(), Ts(2004, 2, 28).AddSeconds(86400).micros());
}

TEST(TimestampTest, RoundTripToString) {
  Timestamp t = Ts(2004, 5, 1, 13, 0, 0);
  EXPECT_EQ(t.ToString(), "1/5/2004:13-00-00");
  auto parsed = Timestamp::Parse(t.ToString(), Timestamp());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, t);
}

TEST(TimestampTest, ParsePaperFormat) {
  auto t = Timestamp::Parse("1/5/2004:13-00-00", Timestamp());
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(*t, Ts(2004, 5, 1, 13, 0, 0));
}

TEST(TimestampTest, ParseDateOnly) {
  auto t = Timestamp::Parse("15/7/2006", Timestamp());
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(*t, Ts(2006, 7, 15));
}

TEST(TimestampTest, ParseNow) {
  Timestamp now = Ts(2008, 1, 1, 12, 0, 0);
  auto t = Timestamp::Parse("now()", now);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(*t, now);
}

TEST(TimestampTest, ParseRejectsGarbage) {
  EXPECT_FALSE(Timestamp::Parse("yesterday", Timestamp()).ok());
  EXPECT_FALSE(Timestamp::Parse("1/5/2004:25-00-00", Timestamp()).ok());
  EXPECT_FALSE(Timestamp::Parse("32/1/2004", Timestamp()).ok());
  EXPECT_FALSE(Timestamp::Parse("1/13/2004", Timestamp()).ok());
  EXPECT_FALSE(Timestamp::Parse("", Timestamp()).ok());
}

TEST(TimestampTest, Ordering) {
  EXPECT_LT(Ts(2004, 5, 1), Ts(2004, 5, 2));
  EXPECT_LE(Ts(2004, 5, 1), Ts(2004, 5, 1));
  EXPECT_GT(Ts(2005, 1, 1), Ts(2004, 12, 31));
  EXPECT_EQ(Ts(2004, 5, 1), Ts(2004, 5, 1));
}

TEST(TimestampTest, StartOfDay) {
  Timestamp t = Ts(2004, 5, 1, 13, 45, 12);
  EXPECT_EQ(t.StartOfDay(), Ts(2004, 5, 1));
  EXPECT_EQ(Ts(2004, 5, 1).StartOfDay(), Ts(2004, 5, 1));
}

TEST(TimestampTest, PreEpochToString) {
  Timestamp t = Ts(1969, 12, 31, 23, 0, 0);
  EXPECT_EQ(t.ToString(), "31/12/1969:23-00-00");
  EXPECT_EQ(t.StartOfDay(), Ts(1969, 12, 31));
}

TEST(TimeIntervalTest, Contains) {
  TimeInterval interval{Ts(2004, 1, 1), Ts(2004, 12, 31)};
  EXPECT_TRUE(interval.Contains(Ts(2004, 6, 15)));
  EXPECT_TRUE(interval.Contains(interval.start));
  EXPECT_TRUE(interval.Contains(interval.end));
  EXPECT_FALSE(interval.Contains(Ts(2005, 1, 1)));
  EXPECT_FALSE(interval.Contains(Ts(2003, 12, 31)));
}

TEST(TimeIntervalTest, Instant) {
  TimeInterval instant{Ts(2004, 1, 1), Ts(2004, 1, 1)};
  EXPECT_TRUE(instant.IsInstant());
  TimeInterval range{Ts(2004, 1, 1), Ts(2004, 1, 2)};
  EXPECT_FALSE(range.IsInstant());
}

}  // namespace
}  // namespace auditdb
