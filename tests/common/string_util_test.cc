#include "src/common/string_util.h"

#include <gtest/gtest.h>

namespace auditdb {
namespace {

TEST(StringUtilTest, Split) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(StringUtilTest, CaseConversion) {
  EXPECT_EQ(ToLower("AbC123"), "abc123");
  EXPECT_EQ(ToUpper("AbC123"), "ABC123");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  hi  "), "hi");
  EXPECT_EQ(Trim("hi"), "hi");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("\t\na b\n"), "a b");
}

TEST(StringUtilTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("SELECT", "select"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
  EXPECT_FALSE(EqualsIgnoreCase("SELECT", "SELEC"));
  EXPECT_FALSE(EqualsIgnoreCase("a", "b"));
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("P-Personal", "P-"));
  EXPECT_FALSE(StartsWith("P", "P-"));
}

}  // namespace
}  // namespace auditdb
