#include "src/workload/generator.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/policy/policy_engine.h"

namespace auditdb {
namespace workload {
namespace {

Timestamp Ts(int64_t s) { return Timestamp(s * 1000000); }

std::unique_ptr<QueryLog> Generate(const WorkloadConfig& config) {
  auto log = std::make_unique<QueryLog>();
  HospitalConfig hospital;
  EXPECT_TRUE(GenerateWorkload(log.get(), config, hospital).ok());
  return log;
}

TEST(WorkloadRuleHitTest, DisabledAxisIsDeterministic) {
  WorkloadConfig config;
  config.num_queries = 50;
  config.start = Ts(100);
  auto a = Generate(config);
  config.rule_hit_fraction = 0.0;  // explicit zero = same stream
  auto b = Generate(config);
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ(a->Entry(i).ToString(), b->Entry(i).ToString());
    EXPECT_NE(a->Entry(i).role, config.rule_role);
  }
}

TEST(WorkloadRuleHitTest, FractionControlsRuleTraffic) {
  WorkloadConfig config;
  config.num_queries = 200;
  config.start = Ts(100);
  config.rule_hit_fraction = 0.3;
  auto log = Generate(config);
  ASSERT_EQ(log->size(), 200u);

  size_t hits = 0;
  for (size_t ei = 0; ei < log->size(); ++ei) {
    const auto& entry = log->Entry(ei);
    if (entry.role == config.rule_role) {
      // Hit queries carry the whole rule-target triple.
      EXPECT_EQ(entry.user, config.rule_user);
      EXPECT_EQ(entry.purpose, config.rule_purpose);
      ++hits;
    }
  }
  // Loose binomial bounds: 200 draws at p=0.3.
  EXPECT_GT(hits, 30u);
  EXPECT_LT(hits, 90u);

  config.rule_hit_fraction = 1.0;
  auto all = Generate(config);
  for (size_t ei = 0; ei < all->size(); ++ei) {
    const auto& entry = all->Entry(ei);
    EXPECT_EQ(entry.role, config.rule_role);
  }
}

TEST(WorkloadRuleHitTest, MatchingRuleTextDrivesTheEngine) {
  WorkloadConfig config;
  config.num_queries = 120;
  config.start = Ts(100);
  config.rule_hit_fraction = 0.25;
  auto log = Generate(config);

  // The generated rules file parses and matches exactly the hit share.
  policy::PolicyEngine engine;
  ASSERT_TRUE(
      engine
          .LoadText(MatchingRuleText(config, "log-only", true), Ts(0))
          .ok());
  ASSERT_EQ(engine.rule_count(), 1u);

  size_t matched = 0, hits = 0;
  for (size_t ei = 0; ei < log->size(); ++ei) {
    const auto& entry = log->Entry(ei);
    policy::QueryContext ctx;
    ctx.sql = entry.sql;
    ctx.user = entry.user;
    ctx.role = entry.role;
    ctx.purpose = entry.purpose;
    ctx.timestamp = entry.timestamp;
    ctx.query_class = policy::ClassifySql(entry.sql, false);
    ctx.tables = policy::ExtractTables(entry.sql);
    auto decision = engine.Decide(ctx);
    if (entry.role == config.rule_role) {
      ++hits;
      EXPECT_TRUE(decision.matched);
      EXPECT_EQ(decision.rule->name, "workload-hits");
    } else {
      EXPECT_FALSE(decision.matched);
    }
    if (decision.matched) ++matched;
  }
  EXPECT_EQ(matched, hits);
  EXPECT_GT(hits, 0u);
  EXPECT_EQ(
      engine.metrics()->counter("rule_hits.workload-hits")->value(), hits);

  // The redacting variant marks the sensitive columns.
  policy::PolicyEngine redacting;
  ASSERT_TRUE(redacting
                  .LoadText(MatchingRuleText(config, "log-only", true),
                            Ts(0))
                  .ok());
  EXPECT_TRUE(redacting.HasDisplayRedactions());
  std::string out = redacting.RedactForDisplay(
      "SELECT pid FROM P-Health WHERE disease='diabetic'");
  EXPECT_EQ(out.find("diabetic"), std::string::npos);

  policy::PolicyEngine bare;
  ASSERT_TRUE(
      bare.LoadText(MatchingRuleText(config, "none", false), Ts(0)).ok());
  EXPECT_FALSE(bare.HasDisplayRedactions());
  EXPECT_EQ(bare.Decide({}).snapshot->config.rules[0].detail,
            policy::AuditDetail::kNone);
}

}  // namespace
}  // namespace workload
}  // namespace auditdb
