#include "src/expr/implication.h"

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/expr/evaluator.h"
#include "src/sql/parser.h"

namespace auditdb {
namespace {

ExprPtr Parse(const std::string& text) {
  auto e = sql::ParseExpression(text);
  EXPECT_TRUE(e.ok()) << e.status().ToString();
  return std::move(*e);
}

bool Implies(const std::string& premise, const std::string& conclusion) {
  auto p = Parse(premise);
  auto c = Parse(conclusion);
  return ProvablyImplies(p.get(), c.get());
}

TEST(ImplicationTest, Reflexive) {
  EXPECT_TRUE(Implies("T.x = 1", "T.x = 1"));
  EXPECT_TRUE(Implies("T.x < 5 AND T.y = 'a'", "T.y = 'a' AND T.x < 5"));
}

TEST(ImplicationTest, TrueConclusion) {
  auto p = Parse("T.x = 1");
  EXPECT_TRUE(ProvablyImplies(p.get(), nullptr));
  EXPECT_TRUE(ProvablyImplies(nullptr, nullptr));
  EXPECT_TRUE(Implies("T.x = 1", "TRUE"));
  EXPECT_TRUE(Implies("T.x = 1", "1 < 2"));
}

TEST(ImplicationTest, TruePremiseImpliesNothing) {
  auto c = Parse("T.x = 1");
  EXPECT_FALSE(ProvablyImplies(nullptr, c.get()));
}

TEST(ImplicationTest, RangeWeakening) {
  EXPECT_TRUE(Implies("T.x < 5", "T.x < 10"));
  EXPECT_TRUE(Implies("T.x < 5", "T.x <= 5"));
  EXPECT_TRUE(Implies("T.x <= 5", "T.x < 6"));
  EXPECT_FALSE(Implies("T.x <= 5", "T.x < 5"));
  EXPECT_FALSE(Implies("T.x < 10", "T.x < 5"));
  EXPECT_TRUE(Implies("T.x > 5", "T.x >= 5"));
  EXPECT_TRUE(Implies("T.x >= 6", "T.x > 5"));
}

TEST(ImplicationTest, EqualityImpliesRangesAndDisequalities) {
  EXPECT_TRUE(Implies("T.x = 5", "T.x < 10"));
  EXPECT_TRUE(Implies("T.x = 5", "T.x >= 5"));
  EXPECT_TRUE(Implies("T.x = 5", "T.x <> 6"));
  EXPECT_FALSE(Implies("T.x = 5", "T.x <> 5"));
  EXPECT_FALSE(Implies("T.x < 10", "T.x = 5"));
}

TEST(ImplicationTest, ConjoinedRangesPinValue) {
  EXPECT_TRUE(Implies("T.x >= 5 AND T.x <= 5", "T.x = 5"));
  EXPECT_FALSE(Implies("T.x >= 5 AND T.x <= 6", "T.x = 5"));
}

TEST(ImplicationTest, DisequalityPropagation) {
  EXPECT_TRUE(Implies("T.x <> 3", "T.x <> 3"));
  EXPECT_TRUE(Implies("T.x > 5", "T.x <> 3"));
  EXPECT_TRUE(Implies("T.x < 5", "T.x <> 7"));
  EXPECT_FALSE(Implies("T.x <> 3", "T.x <> 4"));
}

TEST(ImplicationTest, ConclusionConjunctionNeedsAllParts) {
  EXPECT_TRUE(Implies("T.x = 1 AND T.y = 2", "T.x = 1 AND T.y = 2"));
  EXPECT_TRUE(Implies("T.x = 1 AND T.y = 2", "T.x = 1"));
  EXPECT_FALSE(Implies("T.x = 1", "T.x = 1 AND T.y = 2"));
}

TEST(ImplicationTest, PremiseMayHaveExtraConjuncts) {
  EXPECT_TRUE(
      Implies("T.x = 1 AND T.y = 'a' AND T.z < 9", "T.y = 'a'"));
}

TEST(ImplicationTest, StringComparisons) {
  EXPECT_TRUE(Implies("T.s = 'diabetic'", "T.s = 'diabetic'"));
  EXPECT_FALSE(Implies("T.s = 'diabetic'", "T.s = 'cancer'"));
  EXPECT_TRUE(Implies("T.s = 'b'", "T.s > 'a'"));
}

TEST(ImplicationTest, EqualityClasses) {
  EXPECT_TRUE(Implies("T.a = U.b", "T.a = U.b"));
  EXPECT_TRUE(Implies("T.a = U.b AND U.b = V.c", "T.a = V.c"));
  EXPECT_FALSE(Implies("T.a = U.b", "T.a = V.c"));
  // Bounds propagate through classes.
  EXPECT_TRUE(Implies("T.a = U.b AND T.a = 5", "U.b = 5"));
  EXPECT_TRUE(Implies("T.a = U.b AND T.a < 5", "U.b < 10"));
}

TEST(ImplicationTest, FalsePremiseImpliesEverything) {
  EXPECT_TRUE(Implies("T.x = 1 AND T.x = 2", "T.y = 'anything'"));
  EXPECT_TRUE(Implies("1 > 2", "T.z < 0"));
}

TEST(ImplicationTest, OrConclusionViaOneDisjunct) {
  EXPECT_TRUE(Implies("T.x = 1", "T.x = 1 OR T.x = 2"));
  EXPECT_TRUE(Implies("T.x < 3", "T.x < 5 OR T.y = 9"));
  EXPECT_FALSE(Implies("T.x < 9", "T.x < 5 OR T.x > 7"));
}

TEST(ImplicationTest, OpaquePremiseAtomsAreSound) {
  // The OR in the premise is ignored (weakened premise): implication of
  // unrelated conclusions must still fail.
  EXPECT_FALSE(Implies("T.x = 1 OR T.x = 2", "T.x = 1"));
  // Structural identity still proves it.
  EXPECT_TRUE(Implies("T.x = 1 OR T.x = 2", "T.x = 1 OR T.x = 2"));
}

TEST(ImplicationTest, PaperExample) {
  // The audit for diabetes patients is implied by a more specific audit
  // for diabetic patients of one zip code.
  EXPECT_TRUE(Implies(
      "T.disease = 'diabetic' AND T.zipcode = '145568'",
      "T.disease = 'diabetic'"));
  EXPECT_FALSE(Implies("T.disease = 'diabetic'",
                       "T.disease = 'diabetic' AND T.zipcode = '145568'"));
}

/// Property: ProvablyImplies must be sound against brute force over a
/// small domain — whenever it claims implication, every satisfying
/// assignment of the premise satisfies the conclusion.
class ImplicationSoundness : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ImplicationSoundness, NoFalseProofs) {
  Random rng(GetParam());
  RowLayout layout;
  TableSchema schema("T", {{"x", ValueType::kInt},
                           {"y", ValueType::kInt},
                           {"z", ValueType::kInt}});
  layout.AddTable("T", schema);
  const char* kCols[] = {"x", "y", "z"};
  const BinaryOp kOps[] = {BinaryOp::kEq, BinaryOp::kNe, BinaryOp::kLt,
                           BinaryOp::kLe, BinaryOp::kGt, BinaryOp::kGe};

  auto random_conjunction = [&](size_t max_atoms) {
    std::vector<ExprPtr> atoms;
    size_t n = 1 + rng.Uniform(max_atoms);
    for (size_t i = 0; i < n; ++i) {
      if (rng.OneIn(0.2)) {
        atoms.push_back(Expression::MakeColumnEq(
            ColumnRef{"T", kCols[rng.Uniform(3)]},
            ColumnRef{"T", kCols[rng.Uniform(3)]}));
      } else {
        atoms.push_back(Expression::MakeComparison(
            ColumnRef{"T", kCols[rng.Uniform(3)]}, kOps[rng.Uniform(6)],
            Value::Int(rng.UniformInt(0, 3))));
      }
    }
    return Expression::MakeConjunction(std::move(atoms));
  };

  for (int iteration = 0; iteration < 40; ++iteration) {
    ExprPtr premise = random_conjunction(4);
    ExprPtr conclusion = random_conjunction(2);
    if (!ProvablyImplies(premise.get(), conclusion.get())) continue;

    // Verify over the whole 4^3 domain.
    auto bound_p = premise->Clone();
    auto bound_c = conclusion->Clone();
    ASSERT_TRUE(BindExpression(bound_p.get(), layout).ok());
    ASSERT_TRUE(BindExpression(bound_c.get(), layout).ok());
    for (int x = 0; x <= 3; ++x) {
      for (int y = 0; y <= 3; ++y) {
        for (int z = 0; z <= 3; ++z) {
          std::vector<Value> row = {Value::Int(x), Value::Int(y),
                                    Value::Int(z)};
          auto p = EvaluatePredicate(bound_p.get(), row);
          auto c = EvaluatePredicate(bound_c.get(), row);
          ASSERT_TRUE(p.ok() && c.ok());
          if (*p) {
            EXPECT_TRUE(*c) << premise->ToString() << "  =/=>  "
                            << conclusion->ToString() << " at (" << x << ","
                            << y << "," << z << ")";
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ImplicationSoundness,
                         ::testing::Range<uint64_t>(1, 21));

}  // namespace
}  // namespace auditdb
