#include "src/expr/evaluator.h"

#include <gtest/gtest.h>

#include "src/sql/parser.h"

namespace auditdb {
namespace {

/// Builds a layout over one table T(a INT, b STRING, c DOUBLE).
RowLayout TestLayout() {
  RowLayout layout;
  layout.AddTable("T", TableSchema("T", {{"a", ValueType::kInt},
                                         {"b", ValueType::kString},
                                         {"c", ValueType::kDouble}}));
  return layout;
}

/// Parses, qualifies to T, binds, and evaluates against (a, b, c).
Result<Value> EvalOn(const std::string& text, Value a, Value b, Value c) {
  auto expr = sql::ParseExpression(text);
  if (!expr.ok()) return expr.status();
  RowLayout layout = TestLayout();
  // Qualify manually: test expressions use bare column names a/b/c.
  struct Walk {
    static void Qualify(Expression* e) {
      if (e == nullptr) return;
      if (e->kind == ExprKind::kColumn && !e->column.qualified()) {
        e->column.table = "T";
      }
      Qualify(e->left.get());
      Qualify(e->right.get());
    }
  };
  Walk::Qualify(expr->get());
  AUDITDB_RETURN_IF_ERROR(BindExpression(expr->get(), layout));
  return Evaluate(**expr, {std::move(a), std::move(b), std::move(c)});
}

Value I(int64_t v) { return Value::Int(v); }
Value S(const char* v) { return Value::String(v); }
Value D(double v) { return Value::Double(v); }

TEST(RowLayoutTest, SlotsAndWidth) {
  RowLayout layout = TestLayout();
  EXPECT_EQ(layout.width(), 3u);
  auto slot = layout.Slot(ColumnRef{"T", "b"});
  ASSERT_TRUE(slot.ok());
  EXPECT_EQ(*slot, 1);
  EXPECT_FALSE(layout.Slot(ColumnRef{"T", "x"}).ok());
  EXPECT_FALSE(layout.Slot(ColumnRef{"", "b"}).ok());  // unqualified
}

TEST(RowLayoutTest, MultipleTables) {
  RowLayout layout = TestLayout();
  layout.AddTable("U", TableSchema("U", {{"x", ValueType::kInt}}));
  EXPECT_EQ(layout.width(), 4u);
  auto slot = layout.Slot(ColumnRef{"U", "x"});
  ASSERT_TRUE(slot.ok());
  EXPECT_EQ(*slot, 3);
  EXPECT_EQ(layout.table_offsets()[1].first, "U");
  EXPECT_EQ(layout.table_offsets()[1].second, 3u);
}

TEST(EvaluatorTest, Comparisons) {
  auto v = EvalOn("a < 30", I(25), S(""), D(0));
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->bool_value());
  v = EvalOn("a >= 30", I(25), S(""), D(0));
  ASSERT_TRUE(v.ok());
  EXPECT_FALSE(v->bool_value());
  v = EvalOn("b = 'x'", I(0), S("x"), D(0));
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->bool_value());
  v = EvalOn("b <> 'x'", I(0), S("x"), D(0));
  ASSERT_TRUE(v.ok());
  EXPECT_FALSE(v->bool_value());
}

TEST(EvaluatorTest, NullComparisonsAreFalse) {
  for (const char* text : {"a < 30", "a = 30", "a <> 30", "a >= 30"}) {
    auto v = EvalOn(text, Value::Null(), S(""), D(0));
    ASSERT_TRUE(v.ok()) << text;
    EXPECT_FALSE(v->bool_value()) << text;
  }
}

TEST(EvaluatorTest, BooleanConnectives) {
  auto v = EvalOn("a < 30 AND b = 'x'", I(25), S("x"), D(0));
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->bool_value());
  v = EvalOn("a < 30 AND b = 'y'", I(25), S("x"), D(0));
  ASSERT_TRUE(v.ok());
  EXPECT_FALSE(v->bool_value());
  v = EvalOn("a < 30 OR b = 'y'", I(25), S("x"), D(0));
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->bool_value());
  v = EvalOn("NOT a < 30", I(25), S("x"), D(0));
  ASSERT_TRUE(v.ok());
  EXPECT_FALSE(v->bool_value());
}

TEST(EvaluatorTest, ShortCircuitSkipsTypeErrors) {
  // The right operand would be a type error (string vs int arithmetic),
  // but AND short-circuits on the false left side.
  auto v = EvalOn("FALSE AND b < 3 + b", I(1), S("x"), D(0));
  ASSERT_TRUE(v.ok());
  EXPECT_FALSE(v->bool_value());
}

TEST(EvaluatorTest, Arithmetic) {
  auto v = EvalOn("a + 5", I(2), S(""), D(0));
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->int_value(), 7);
  v = EvalOn("a * 3 - 1", I(2), S(""), D(0));
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->int_value(), 5);
  v = EvalOn("c / 2", I(0), S(""), D(5.0));
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(v->double_value(), 2.5);
  v = EvalOn("a / 0", I(1), S(""), D(0));
  EXPECT_FALSE(v.ok());
}

TEST(EvaluatorTest, MixedNumericComparison) {
  auto v = EvalOn("a < c", I(2), S(""), D(2.5));
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->bool_value());
}

TEST(EvaluatorTest, StringNumericCoercionInPredicate) {
  // zipcode-style: string column compared with an integer literal.
  auto v = EvalOn("b = 145568", I(0), S("145568"), D(0));
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->bool_value());
}

TEST(EvaluatorTest, TypeErrors) {
  EXPECT_FALSE(EvalOn("b = TRUE", I(0), S("x"), D(0)).ok());
  EXPECT_FALSE(EvalOn("b + 1", I(0), S("x"), D(0)).ok());
  EXPECT_FALSE(EvalOn("NOT a", I(1), S(""), D(0)).ok());
  EXPECT_FALSE(EvalOn("a AND TRUE", I(1), S(""), D(0)).ok());
}

TEST(EvaluatorTest, UnaryNegation) {
  auto v = EvalOn("-a", I(3), S(""), D(0));
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->int_value(), -3);
  v = EvalOn("-c", I(0), S(""), D(1.5));
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(v->double_value(), -1.5);
}

TEST(EvaluatorTest, LikeWildcards) {
  struct Case {
    const char* text;
    const char* pattern;
    bool expected;
  };
  const Case cases[] = {
      {"diabetic", "diabetic", true}, {"diabetic", "diab%", true},
      {"diabetic", "%betic", true},   {"diabetic", "%bet%", true},
      {"diabetic", "d_abetic", true}, {"diabetic", "d_betic", false},
      {"diabetic", "%", true},        {"", "%", true},
      {"", "", true},                 {"x", "", false},
      {"abc", "a%c", true},           {"ac", "a%c", true},
      {"ab", "a%c", false},           {"aXbYc", "a%b%c", true},
      {"mississippi", "m%iss%pi", true},
      {"mississippi", "m%iss%z", false},
  };
  for (const auto& c : cases) {
    auto v = EvalOn(std::string("b LIKE '") + c.pattern + "'", I(0),
                    S(c.text), D(0));
    ASSERT_TRUE(v.ok()) << c.text << " LIKE " << c.pattern;
    EXPECT_EQ(v->bool_value(), c.expected)
        << c.text << " LIKE " << c.pattern;
  }
}

TEST(EvaluatorTest, LikeNullAndTypeRules) {
  auto v = EvalOn("b LIKE '%'", I(0), Value::Null(), D(0));
  ASSERT_TRUE(v.ok());
  EXPECT_FALSE(v->bool_value());
  EXPECT_FALSE(EvalOn("a LIKE '%'", I(1), S(""), D(0)).ok());
}

TEST(EvaluatorTest, EvaluatePredicateNullMeansTrue) {
  auto pass = EvaluatePredicate(nullptr, {});
  ASSERT_TRUE(pass.ok());
  EXPECT_TRUE(*pass);
}

TEST(EvaluatorTest, EvaluatePredicateRejectsNonBoolean) {
  auto expr = sql::ParseExpression("1 + 1");
  ASSERT_TRUE(expr.ok());
  auto pass = EvaluatePredicate(expr->get(), {});
  EXPECT_FALSE(pass.ok());
}

TEST(EvaluatorTest, UnboundColumnIsInternalError) {
  auto expr = sql::ParseExpression("a < 3");
  ASSERT_TRUE(expr.ok());
  auto v = Evaluate(**expr, {I(1)});
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace auditdb
