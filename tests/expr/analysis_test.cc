#include "src/expr/analysis.h"

#include <gtest/gtest.h>

#include "src/sql/parser.h"

namespace auditdb {
namespace {

ExprPtr Parse(const std::string& text) {
  auto e = sql::ParseExpression(text);
  EXPECT_TRUE(e.ok()) << e.status().ToString();
  return std::move(*e);
}

TEST(AnalysisTest, CollectColumns) {
  auto e = Parse("T.a < 3 AND T.b = U.c OR NOT T.a > 5");
  auto cols = CollectColumns(e.get());
  EXPECT_EQ(cols.size(), 3u);
  EXPECT_TRUE(cols.count(ColumnRef{"T", "a"}));
  EXPECT_TRUE(cols.count(ColumnRef{"T", "b"}));
  EXPECT_TRUE(cols.count(ColumnRef{"U", "c"}));
}

TEST(AnalysisTest, CollectColumnsEmpty) {
  EXPECT_TRUE(CollectColumns(nullptr).empty());
  auto e = Parse("1 < 2");
  EXPECT_TRUE(CollectColumns(e.get()).empty());
}

TEST(AnalysisTest, SplitConjuncts) {
  auto e = Parse("a = 1 AND b = 2 AND c = 3");
  auto conjuncts = SplitConjuncts(e.get());
  ASSERT_EQ(conjuncts.size(), 3u);
  EXPECT_EQ(conjuncts[0]->ToString(), "a = 1");
  EXPECT_EQ(conjuncts[2]->ToString(), "c = 3");
}

TEST(AnalysisTest, SplitConjunctsDoesNotCrossOr) {
  auto e = Parse("a = 1 AND (b = 2 OR c = 3)");
  auto conjuncts = SplitConjuncts(e.get());
  ASSERT_EQ(conjuncts.size(), 2u);
  EXPECT_EQ(conjuncts[1]->bop, BinaryOp::kOr);
}

TEST(AnalysisTest, SplitConjunctsSingle) {
  auto e = Parse("a = 1");
  EXPECT_EQ(SplitConjuncts(e.get()).size(), 1u);
  EXPECT_TRUE(SplitConjuncts(nullptr).empty());
}

TEST(AnalysisTest, QualifyColumns) {
  Catalog catalog;
  ASSERT_TRUE(catalog
                  .AddTable(TableSchema("T", {{"a", ValueType::kInt},
                                              {"b", ValueType::kString}}))
                  .ok());
  auto e = Parse("a < 3 AND b = 'x'");
  ASSERT_TRUE(QualifyColumns(e.get(), catalog, {"T"}).ok());
  auto cols = CollectColumns(e.get());
  EXPECT_TRUE(cols.count(ColumnRef{"T", "a"}));
  EXPECT_TRUE(cols.count(ColumnRef{"T", "b"}));
}

TEST(AnalysisTest, QualifyColumnsFailsOnUnknown) {
  Catalog catalog;
  ASSERT_TRUE(
      catalog.AddTable(TableSchema("T", {{"a", ValueType::kInt}})).ok());
  auto e = Parse("missing < 3");
  EXPECT_FALSE(QualifyColumns(e.get(), catalog, {"T"}).ok());
}

TEST(AnalysisTest, IsEquiJoin) {
  auto e = Parse("T.a = U.b");
  ColumnRef lhs, rhs;
  ASSERT_TRUE(IsEquiJoin(*e, &lhs, &rhs));
  EXPECT_EQ(lhs.ToString(), "T.a");
  EXPECT_EQ(rhs.ToString(), "U.b");
}

TEST(AnalysisTest, IsEquiJoinRejectsSameTableAndLiterals) {
  ColumnRef lhs, rhs;
  EXPECT_FALSE(IsEquiJoin(*Parse("T.a = T.b"), &lhs, &rhs));
  EXPECT_FALSE(IsEquiJoin(*Parse("T.a = 3"), &lhs, &rhs));
  EXPECT_FALSE(IsEquiJoin(*Parse("T.a < U.b"), &lhs, &rhs));
}

TEST(AnalysisTest, IsColumnLiteralComparison) {
  ColumnRef col;
  BinaryOp op;
  Value lit;
  ASSERT_TRUE(IsColumnLiteralComparison(*Parse("T.a < 3"), &col, &op, &lit));
  EXPECT_EQ(col.ToString(), "T.a");
  EXPECT_EQ(op, BinaryOp::kLt);
  EXPECT_EQ(lit, Value::Int(3));
}

TEST(AnalysisTest, IsColumnLiteralComparisonFlipsOrientation) {
  ColumnRef col;
  BinaryOp op;
  Value lit;
  ASSERT_TRUE(IsColumnLiteralComparison(*Parse("3 < T.a"), &col, &op, &lit));
  EXPECT_EQ(col.ToString(), "T.a");
  EXPECT_EQ(op, BinaryOp::kGt);  // 3 < a  ==  a > 3
}

TEST(AnalysisTest, IsColumnLiteralComparisonRejectsOthers) {
  ColumnRef col;
  BinaryOp op;
  Value lit;
  EXPECT_FALSE(
      IsColumnLiteralComparison(*Parse("T.a = U.b"), &col, &op, &lit));
  EXPECT_FALSE(
      IsColumnLiteralComparison(*Parse("T.a + 1 < 3"), &col, &op, &lit));
}

}  // namespace
}  // namespace auditdb
