#include "src/expr/expression.h"

#include <gtest/gtest.h>

namespace auditdb {
namespace {

ExprPtr AgeLt30() {
  return Expression::MakeComparison(ColumnRef{"", "age"}, BinaryOp::kLt,
                                    Value::Int(30));
}

TEST(ExpressionTest, Factories) {
  auto lit = Expression::MakeLiteral(Value::Int(5));
  EXPECT_EQ(lit->kind, ExprKind::kLiteral);
  auto col = Expression::MakeColumn(ColumnRef{"T", "c"});
  EXPECT_EQ(col->kind, ExprKind::kColumn);
  auto cmp = AgeLt30();
  EXPECT_EQ(cmp->kind, ExprKind::kBinary);
  EXPECT_EQ(cmp->bop, BinaryOp::kLt);
}

TEST(ExpressionTest, ToString) {
  EXPECT_EQ(AgeLt30()->ToString(), "age < 30");
  auto conj = Expression::MakeBinary(
      BinaryOp::kAnd, AgeLt30(),
      Expression::MakeComparison(ColumnRef{"", "zipcode"}, BinaryOp::kEq,
                                 Value::String("145568")));
  EXPECT_EQ(conj->ToString(), "age < 30 AND zipcode = '145568'");
}

TEST(ExpressionTest, ToStringParenthesizesOrUnderAnd) {
  auto disj = Expression::MakeBinary(BinaryOp::kOr, AgeLt30(), AgeLt30());
  auto conj =
      Expression::MakeBinary(BinaryOp::kAnd, std::move(disj), AgeLt30());
  EXPECT_EQ(conj->ToString(), "(age < 30 OR age < 30) AND age < 30");
}

TEST(ExpressionTest, CloneIsDeepAndEqual) {
  auto conj = Expression::MakeBinary(
      BinaryOp::kAnd, AgeLt30(),
      Expression::MakeUnary(UnaryOp::kNot,
                            Expression::MakeLiteral(Value::Bool(false))));
  auto clone = conj->Clone();
  EXPECT_TRUE(conj->Equals(*clone));
  // Mutating the clone must not affect the original.
  clone->left->bop = BinaryOp::kGt;
  EXPECT_FALSE(conj->Equals(*clone));
}

TEST(ExpressionTest, EqualsDistinguishesStructure) {
  EXPECT_TRUE(AgeLt30()->Equals(*AgeLt30()));
  auto other = Expression::MakeComparison(ColumnRef{"", "age"}, BinaryOp::kLe,
                                          Value::Int(30));
  EXPECT_FALSE(AgeLt30()->Equals(*other));
  auto lit = Expression::MakeLiteral(Value::Int(30));
  EXPECT_FALSE(AgeLt30()->Equals(*lit));
}

TEST(ExpressionTest, MakeConjunction) {
  std::vector<ExprPtr> conjuncts;
  EXPECT_EQ(Expression::MakeConjunction(std::move(conjuncts)), nullptr);

  std::vector<ExprPtr> one;
  one.push_back(AgeLt30());
  auto single = Expression::MakeConjunction(std::move(one));
  EXPECT_EQ(single->ToString(), "age < 30");

  std::vector<ExprPtr> two;
  two.push_back(AgeLt30());
  two.push_back(AgeLt30());
  auto both = Expression::MakeConjunction(std::move(two));
  EXPECT_EQ(both->bop, BinaryOp::kAnd);
}

TEST(OperatorHelpersTest, FlipAndNegate) {
  EXPECT_EQ(FlipComparison(BinaryOp::kLt), BinaryOp::kGt);
  EXPECT_EQ(FlipComparison(BinaryOp::kGe), BinaryOp::kLe);
  EXPECT_EQ(FlipComparison(BinaryOp::kEq), BinaryOp::kEq);
  EXPECT_EQ(NegateComparison(BinaryOp::kEq), BinaryOp::kNe);
  EXPECT_EQ(NegateComparison(BinaryOp::kLt), BinaryOp::kGe);
  EXPECT_EQ(NegateComparison(BinaryOp::kGe), BinaryOp::kLt);
}

TEST(OperatorHelpersTest, IsComparison) {
  EXPECT_TRUE(IsComparison(BinaryOp::kEq));
  EXPECT_TRUE(IsComparison(BinaryOp::kNe));
  EXPECT_FALSE(IsComparison(BinaryOp::kAnd));
  EXPECT_FALSE(IsComparison(BinaryOp::kAdd));
}

}  // namespace
}  // namespace auditdb
