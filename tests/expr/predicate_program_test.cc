#include "src/expr/predicate_program.h"

#include <gtest/gtest.h>

#include "src/expr/evaluator.h"
#include "src/sql/parser.h"

namespace auditdb {
namespace {

/// One test table T(a INT, b STRING, c DOUBLE) at slot offset 0.
RowLayout TestLayout() {
  RowLayout layout;
  layout.AddTable("T", TableSchema("T", {{"a", ValueType::kInt},
                                         {"b", ValueType::kString},
                                         {"c", ValueType::kDouble}}));
  return layout;
}

/// Parses `text` (bare columns a/b/c refer to T) and binds it.
ExprPtr ParseBound(const std::string& text) {
  auto expr = sql::ParseExpression(text);
  EXPECT_TRUE(expr.ok()) << text;
  struct Walk {
    static void Qualify(Expression* e) {
      if (e == nullptr) return;
      if (e->kind == ExprKind::kColumn && !e->column.qualified()) {
        e->column.table = "T";
      }
      Qualify(e->left.get());
      Qualify(e->right.get());
    }
  };
  Walk::Qualify(expr->get());
  RowLayout layout = TestLayout();
  EXPECT_TRUE(BindExpression(expr->get(), layout).ok()) << text;
  return std::move(*expr);
}

/// The batch most tests run over: four rows of T.
///   row 0: (10, "apple",  1.5)
///   row 1: (25, "banana", 2.5)
///   row 2: (30, "apricot", NULL)
///   row 3: (NULL, "plum", 4.0)
Batch TestBatch() {
  Batch batch;
  batch.num_rows = 4;
  batch.tids = {1, 2, 3, 4};
  std::vector<std::vector<Value>> cols = {
      {Value::Int(10), Value::Int(25), Value::Int(30), Value::Null()},
      {Value::String("apple"), Value::String("banana"),
       Value::String("apricot"), Value::String("plum")},
      {Value::Double(1.5), Value::Double(2.5), Value::Null(),
       Value::Double(4.0)},
  };
  for (auto& col : cols) batch.columns.push_back(ColumnVector::FromValues(col));
  return batch;
}

std::vector<uint32_t> AllRows(const Batch& batch) {
  std::vector<uint32_t> sel(batch.num_rows);
  for (uint32_t i = 0; i < batch.num_rows; ++i) sel[i] = i;
  return sel;
}

/// Runs `text` both ways over the test batch and checks the program
/// reproduces the interpreter row by row (pass/fail and error status).
void CheckAgainstInterpreter(const std::string& text) {
  ExprPtr expr = ParseBound(text);
  auto program = PredicateProgram::Compile(*expr, 0, 3);
  ASSERT_TRUE(program.ok()) << text << ": " << program.status().ToString();
  Batch batch = TestBatch();
  auto outcome = program->Run(batch, AllRows(batch));

  for (uint32_t r = 0; r < batch.num_rows; ++r) {
    std::vector<Value> row = {batch.column(0).ValueAt(r),
                              batch.column(1).ValueAt(r),
                              batch.column(2).ValueAt(r)};
    auto expect = EvaluatePredicate(expr.get(), row);
    bool in_passed = std::find(outcome.passed.begin(), outcome.passed.end(),
                               r) != outcome.passed.end();
    auto err = std::find_if(outcome.errors.begin(), outcome.errors.end(),
                            [&](const auto& e) { return e.first == r; });
    if (expect.ok()) {
      EXPECT_EQ(in_passed, *expect) << text << " row " << r;
      EXPECT_EQ(err, outcome.errors.end()) << text << " row " << r;
    } else {
      EXPECT_FALSE(in_passed) << text << " row " << r;
      ASSERT_NE(err, outcome.errors.end()) << text << " row " << r;
      EXPECT_EQ(err->second.ToString(), expect.status().ToString())
          << text << " row " << r;
    }
  }
}

TEST(PredicateProgramTest, IsLocalRespectsSlotRange) {
  ExprPtr local = ParseBound("a < 30 AND c > 1.0");
  EXPECT_TRUE(PredicateProgram::IsLocal(*local, 0, 3));
  // Same expression viewed from a table occupying slots [3, 6): the
  // references at slots 0..2 are another table's.
  EXPECT_FALSE(PredicateProgram::IsLocal(*local, 3, 3));
  ExprPtr literal_only = ParseBound("1 < 2");
  EXPECT_TRUE(PredicateProgram::IsLocal(*literal_only, 0, 3));
}

TEST(PredicateProgramTest, CompileRejectsOutOfRangeSlots) {
  ExprPtr expr = ParseBound("a < 30");
  auto program = PredicateProgram::Compile(*expr, 1, 2);
  EXPECT_FALSE(program.ok());
}

TEST(PredicateProgramTest, ConjunctionOfComparisonsIsPureFilter) {
  ExprPtr expr = ParseBound("a < 30 AND b = 'apple'");
  auto program = PredicateProgram::Compile(*expr, 0, 3);
  ASSERT_TRUE(program.ok());
  EXPECT_TRUE(program->pure_filter());
  EXPECT_EQ(program->num_instructions(), 2u);

  Batch batch = TestBatch();
  auto outcome = program->Run(batch, AllRows(batch));
  EXPECT_EQ(outcome.passed, (std::vector<uint32_t>{0}));
  EXPECT_TRUE(outcome.errors.empty());
}

TEST(PredicateProgramTest, FlippedComparisonStillFuses) {
  ExprPtr expr = ParseBound("30 > a");
  auto program = PredicateProgram::Compile(*expr, 0, 3);
  ASSERT_TRUE(program.ok());
  EXPECT_TRUE(program->pure_filter());
  Batch batch = TestBatch();
  auto outcome = program->Run(batch, AllRows(batch));
  // NULL a (row 3) compares FALSE, like the interpreter.
  EXPECT_EQ(outcome.passed, (std::vector<uint32_t>{0, 1}));
}

TEST(PredicateProgramTest, DisjunctionUsesGeneralForm) {
  ExprPtr expr = ParseBound("a >= 30 OR b LIKE 'ap%'");
  auto program = PredicateProgram::Compile(*expr, 0, 3);
  ASSERT_TRUE(program.ok());
  EXPECT_FALSE(program->pure_filter());
  CheckAgainstInterpreter("a >= 30 OR b LIKE 'ap%'");
}

TEST(PredicateProgramTest, MatchesInterpreterOnVariedShapes) {
  CheckAgainstInterpreter("a < 30");
  CheckAgainstInterpreter("c >= 2.5");
  CheckAgainstInterpreter("b LIKE '%an%'");
  CheckAgainstInterpreter("a + c > 12");
  CheckAgainstInterpreter("NOT (a < 30)");
  CheckAgainstInterpreter("a < 30 AND c > 1.0 AND b <> 'apple'");
  CheckAgainstInterpreter("a * 2 < c * 10");
  CheckAgainstInterpreter("-a < -20");
  CheckAgainstInterpreter("a < c");
}

TEST(PredicateProgramTest, ErrorsCarryInterpreterStatus) {
  // Arithmetic over a string column errors on every row the interpreter
  // would reach.
  CheckAgainstInterpreter("b + 1 > 0");
  // Division by zero.
  CheckAgainstInterpreter("a / 0 > 1");
  // LIKE over non-strings.
  CheckAgainstInterpreter("a LIKE 'x%'");
  // Non-boolean predicate result.
  CheckAgainstInterpreter("a + 1");
}

TEST(PredicateProgramTest, ShortCircuitSuppressesErrors) {
  // The interpreter never evaluates `b + 1` for rows failing a < 30, so
  // those rows fail cleanly instead of erroring. Rows 0, 1 pass a < 30
  // and then error; rows 2, 3 just fail.
  CheckAgainstInterpreter("a < 30 AND b + 1 > 0");
  // OR short-circuit: rows passing a < 30 never see the error.
  CheckAgainstInterpreter("a < 30 OR b + 1 > 0");
}

TEST(PredicateProgramTest, SelectionRestrictsEvaluation) {
  ExprPtr expr = ParseBound("b + 1 > 0");  // errors on every visited row
  auto program = PredicateProgram::Compile(*expr, 0, 3);
  ASSERT_TRUE(program.ok());
  Batch batch = TestBatch();
  auto outcome = program->Run(batch, {1, 3});
  EXPECT_TRUE(outcome.passed.empty());
  ASSERT_EQ(outcome.errors.size(), 2u);
  EXPECT_EQ(outcome.errors[0].first, 1u);
  EXPECT_EQ(outcome.errors[1].first, 3u);
}

TEST(PredicateProgramTest, ScalarOnlyPredicate) {
  ExprPtr expr = ParseBound("1 < 2");
  auto program = PredicateProgram::Compile(*expr, 0, 3);
  ASSERT_TRUE(program.ok());
  Batch batch = TestBatch();
  auto outcome = program->Run(batch, AllRows(batch));
  EXPECT_EQ(outcome.passed.size(), 4u);
}

TEST(PredicateProgramTest, ToStringDisassembles) {
  ExprPtr expr = ParseBound("a < 30 AND b = 'apple'");
  auto program = PredicateProgram::Compile(*expr, 0, 3);
  ASSERT_TRUE(program.ok());
  EXPECT_NE(program->ToString().find("filter"), std::string::npos);
}

}  // namespace
}  // namespace auditdb
