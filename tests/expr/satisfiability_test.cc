#include "src/expr/satisfiability.h"

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/expr/evaluator.h"
#include "src/sql/parser.h"

namespace auditdb {
namespace {

ExprPtr Parse(const std::string& text) {
  auto e = sql::ParseExpression(text);
  EXPECT_TRUE(e.ok()) << e.status().ToString();
  return std::move(*e);
}

bool Sat(const std::string& a, const std::string& b) {
  auto ea = Parse(a);
  auto eb = Parse(b);
  return MaybeSatisfiable(ea.get(), eb.get());
}

TEST(SatisfiabilityTest, EqualityConflict) {
  EXPECT_FALSE(Sat("T.x = 1", "T.x = 2"));
  EXPECT_TRUE(Sat("T.x = 1", "T.x = 1"));
}

TEST(SatisfiabilityTest, RangeConflicts) {
  EXPECT_FALSE(Sat("T.x < 5", "T.x > 10"));
  EXPECT_FALSE(Sat("T.x < 5", "T.x >= 5"));
  EXPECT_TRUE(Sat("T.x <= 5", "T.x >= 5"));
  EXPECT_FALSE(Sat("T.x <= 5", "T.x > 5"));
  EXPECT_TRUE(Sat("T.x < 10", "T.x > 5"));
}

TEST(SatisfiabilityTest, EqualityVsRange) {
  EXPECT_FALSE(Sat("T.x = 7", "T.x < 5"));
  EXPECT_TRUE(Sat("T.x = 4", "T.x < 5"));
  EXPECT_FALSE(Sat("T.x = 5", "T.x < 5"));
}

TEST(SatisfiabilityTest, Disequality) {
  EXPECT_FALSE(Sat("T.x = 1", "T.x <> 1"));
  EXPECT_TRUE(Sat("T.x = 1", "T.x <> 2"));
  // Disequality alone never empties an (infinite-domain) range.
  EXPECT_TRUE(Sat("T.x <> 1", "T.x <> 2"));
}

TEST(SatisfiabilityTest, StringConstraints) {
  // The paper's example: a query about cancer patients vs an audit about
  // diabetes patients cannot share an indispensable tuple.
  EXPECT_FALSE(
      Sat("T.disease = 'cancer'", "T.disease = 'diabetes'"));
  EXPECT_TRUE(Sat("T.disease = 'cancer'", "T.disease = 'cancer'"));
  EXPECT_FALSE(Sat("T.s > 'b'", "T.s < 'a'"));
  EXPECT_TRUE(Sat("T.s >= 'a'", "T.s <= 'b'"));
}

TEST(SatisfiabilityTest, EqualityClassesPropagate) {
  // T.a = U.b propagates bounds across the join.
  auto join = Parse("T.a = U.b");
  auto left = Parse("T.a = 1");
  auto right = Parse("U.b = 2");
  EXPECT_FALSE(MaybeSatisfiable({join.get(), left.get(), right.get()}));

  auto right_ok = Parse("U.b = 1");
  EXPECT_TRUE(MaybeSatisfiable({join.get(), left.get(), right_ok.get()}));
}

TEST(SatisfiabilityTest, SameClassInequalityIsUnsat) {
  auto join = Parse("T.a = U.b");
  auto neq = Parse("T.a <> U.b");
  EXPECT_FALSE(MaybeSatisfiable({join.get(), neq.get()}));
  auto lt = Parse("T.a < U.b");
  EXPECT_FALSE(MaybeSatisfiable({join.get(), lt.get()}));
  auto le = Parse("T.a <= U.b");
  EXPECT_TRUE(MaybeSatisfiable({join.get(), le.get()}));
}

TEST(SatisfiabilityTest, ConstantComparisons) {
  EXPECT_FALSE(Sat("1 > 2", "T.x = 1"));
  EXPECT_TRUE(Sat("1 < 2", "T.x = 1"));
}

TEST(SatisfiabilityTest, OrIsConservative) {
  // The checker does not reason through OR: provably-unsat-in-truth cases
  // behind an OR stay "maybe satisfiable" (sound, incomplete).
  EXPECT_TRUE(Sat("T.x = 1 OR T.x = 2", "T.x = 3"));
}

TEST(SatisfiabilityTest, UnrelatedColumnsSatisfiable) {
  EXPECT_TRUE(Sat("T.x = 1", "U.y = 2"));
}

TEST(SatisfiabilityTest, NullptrPredicatesAreTrue) {
  EXPECT_TRUE(MaybeSatisfiable(nullptr, nullptr));
  auto e = Parse("T.x = 1");
  EXPECT_TRUE(MaybeSatisfiable(e.get(), nullptr));
}

TEST(SatisfiabilityTest, TransitiveEqualityChain) {
  auto ab = Parse("T.a = U.b");
  auto bc = Parse("U.b = V.c");
  auto a1 = Parse("T.a = 1");
  auto c2 = Parse("V.c = 2");
  EXPECT_FALSE(
      MaybeSatisfiable({ab.get(), bc.get(), a1.get(), c2.get()}));
}

/// ---- Property sweep: soundness against brute force ------------------
/// Random conjunctions over three INT columns with domain {0..3}. If any
/// assignment satisfies the conjunction, MaybeSatisfiable must say true
/// (it may say true for unsatisfiable inputs — it is conservative — but
/// never false for satisfiable ones).
class SatisfiabilitySoundness : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SatisfiabilitySoundness, NoFalseConflicts) {
  Random rng(GetParam());
  RowLayout layout;
  TableSchema schema("T", {{"x", ValueType::kInt},
                           {"y", ValueType::kInt},
                           {"z", ValueType::kInt}});
  layout.AddTable("T", schema);
  const char* kCols[] = {"x", "y", "z"};
  const BinaryOp kOps[] = {BinaryOp::kEq, BinaryOp::kNe, BinaryOp::kLt,
                           BinaryOp::kLe, BinaryOp::kGt, BinaryOp::kGe};

  for (int iteration = 0; iteration < 50; ++iteration) {
    // Build 1-5 random atoms.
    std::vector<ExprPtr> atoms;
    size_t n = 1 + rng.Uniform(5);
    for (size_t i = 0; i < n; ++i) {
      if (rng.OneIn(0.25)) {
        // col = col
        ColumnRef a{"T", kCols[rng.Uniform(3)]};
        ColumnRef b{"T", kCols[rng.Uniform(3)]};
        atoms.push_back(Expression::MakeColumnEq(a, b));
      } else {
        ColumnRef c{"T", kCols[rng.Uniform(3)]};
        BinaryOp op = kOps[rng.Uniform(6)];
        atoms.push_back(Expression::MakeComparison(
            c, op, Value::Int(rng.UniformInt(0, 3))));
      }
    }

    // Brute-force over the 4^3 assignments.
    bool truly_satisfiable = false;
    for (int x = 0; x <= 3 && !truly_satisfiable; ++x) {
      for (int y = 0; y <= 3 && !truly_satisfiable; ++y) {
        for (int z = 0; z <= 3 && !truly_satisfiable; ++z) {
          std::vector<Value> row = {Value::Int(x), Value::Int(y),
                                    Value::Int(z)};
          bool all = true;
          for (const auto& atom : atoms) {
            auto bound = atom->Clone();
            ASSERT_TRUE(BindExpression(bound.get(), layout).ok());
            auto pass = EvaluatePredicate(bound.get(), row);
            ASSERT_TRUE(pass.ok());
            if (!*pass) {
              all = false;
              break;
            }
          }
          if (all) truly_satisfiable = true;
        }
      }
    }

    std::vector<const Expression*> atom_ptrs;
    for (const auto& a : atoms) atom_ptrs.push_back(a.get());
    bool maybe = MaybeSatisfiable(atom_ptrs);
    if (truly_satisfiable) {
      std::string dump;
      for (const auto& a : atoms) dump += a->ToString() + " ; ";
      EXPECT_TRUE(maybe) << "false conflict on: " << dump;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SatisfiabilitySoundness,
                         ::testing::Range<uint64_t>(1, 21));

}  // namespace
}  // namespace auditdb
