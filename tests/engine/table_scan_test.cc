#include "src/engine/table_scan.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/engine/executor.h"
#include "src/sql/parser.h"
#include "src/workload/hospital.h"

namespace auditdb {
namespace {

Timestamp Ts(int64_t s) { return Timestamp(s * 1000000); }

/// T(a INT, b STRING) with rows (10,"x"), (20,"y"), (30,"x"), (40,"z").
std::unique_ptr<Table> MakeTable() {
  auto table = std::make_unique<Table>(
      TableSchema("T", {{"a", ValueType::kInt},
                        {"b", ValueType::kString}}));
  EXPECT_TRUE(table->Insert({Value::Int(10), Value::String("x")}).ok());
  EXPECT_TRUE(table->Insert({Value::Int(20), Value::String("y")}).ok());
  EXPECT_TRUE(table->Insert({Value::Int(30), Value::String("x")}).ok());
  EXPECT_TRUE(table->Insert({Value::Int(40), Value::String("z")}).ok());
  return table;
}

/// Parses and binds a predicate over T's two slots.
ExprPtr BoundPredicate(const std::string& text) {
  auto expr = sql::ParseExpression(text);
  EXPECT_TRUE(expr.ok()) << text;
  struct Walk {
    static void Qualify(Expression* e) {
      if (e == nullptr) return;
      if (e->kind == ExprKind::kColumn && !e->column.qualified()) {
        e->column.table = "T";
      }
      Qualify(e->left.get());
      Qualify(e->right.get());
    }
  };
  Walk::Qualify(expr->get());
  RowLayout layout;
  layout.AddTable("T", TableSchema("T", {{"a", ValueType::kInt},
                                         {"b", ValueType::kString}}));
  EXPECT_TRUE(BindExpression(expr->get(), layout).ok()) << text;
  return std::move(*expr);
}

ScanStage LocalStage(const Expression& expr) {
  auto program = PredicateProgram::Compile(expr, 0, 2);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  ScanStage stage;
  stage.local = true;
  stage.program = std::move(*program);
  return stage;
}

TEST(TableScanTest, ColumnarProjectionMatchesRows) {
  auto table = MakeTable();
  auto batch = table->Columnar();
  ASSERT_EQ(batch->num_rows, 4u);
  ASSERT_EQ(batch->num_columns(), 2u);
  EXPECT_EQ(batch->tids, (std::vector<int64_t>{1, 2, 3, 4}));
  EXPECT_EQ(batch->column(0).ValueAt(2), Value::Int(30));
  EXPECT_EQ(batch->column(1).ValueAt(3), Value::String("z"));
}

TEST(TableScanTest, BuildTableFilterStates) {
  auto table = MakeTable();
  ExprPtr expr = BoundPredicate("a < 30 AND b = 'x'");
  std::vector<ScanStage> stages;
  stages.push_back(LocalStage(*expr));

  auto batch = table->Columnar();
  ScanOptions opts;
  TableFilter filter = BuildTableFilter(*batch, stages, std::nullopt, opts);
  EXPECT_EQ(filter.num_stages(), 1u);
  EXPECT_FALSE(filter.has_errors());
  EXPECT_EQ(filter.passing(), (std::vector<uint32_t>{0}));
  EXPECT_EQ(filter.StageState(0, 0), TableFilter::RowState::kPass);
  EXPECT_EQ(filter.StageState(0, 1), TableFilter::RowState::kFail);
}

TEST(TableScanTest, LaterStagesOnlyCoverEarlierPassers) {
  auto table = MakeTable();
  ExprPtr first = BoundPredicate("a < 30");
  ExprPtr second = BoundPredicate("b = 'x'");
  std::vector<ScanStage> stages;
  stages.push_back(LocalStage(*first));
  stages.push_back(LocalStage(*second));

  auto batch = table->Columnar();
  TableFilter filter =
      BuildTableFilter(*batch, stages, std::nullopt, ScanOptions{});
  EXPECT_EQ(filter.passing(), (std::vector<uint32_t>{0}));
  EXPECT_EQ(filter.StageState(0, 2), TableFilter::RowState::kFail);
  EXPECT_EQ(filter.StageState(1, 0), TableFilter::RowState::kPass);
}

TEST(TableScanTest, ErrorsAreRecordedPerRow) {
  auto table = MakeTable();
  ExprPtr expr = BoundPredicate("a < 30 AND b + 1 > 0");
  std::vector<ScanStage> stages;
  stages.push_back(LocalStage(*expr));

  auto batch = table->Columnar();
  TableFilter filter =
      BuildTableFilter(*batch, stages, std::nullopt, ScanOptions{});
  EXPECT_TRUE(filter.has_errors());
  // Rows 0, 1 pass a < 30 and then hit string arithmetic; rows 2, 3 fail
  // the first conjunct cleanly (interpreter short-circuit).
  EXPECT_EQ(filter.StageState(0, 0), TableFilter::RowState::kError);
  EXPECT_EQ(filter.StageState(0, 1), TableFilter::RowState::kError);
  EXPECT_EQ(filter.StageState(0, 2), TableFilter::RowState::kFail);
  EXPECT_FALSE(filter.StageError(0, 0).ok());
}

TEST(TableScanTest, SelectionLimitsTheFilter) {
  auto table = MakeTable();
  ExprPtr expr = BoundPredicate("b = 'x'");
  std::vector<ScanStage> stages;
  stages.push_back(LocalStage(*expr));

  auto batch = table->Columnar();
  std::vector<uint32_t> selection = {1, 2};
  TableFilter filter =
      BuildTableFilter(*batch, stages, selection, ScanOptions{});
  EXPECT_EQ(filter.passing(), (std::vector<uint32_t>{2}));
}

TEST(TableScanTest, RunChunkedMatchesSingleShot) {
  auto table = MakeTable();
  ExprPtr expr = BoundPredicate("a >= 20 AND b <> 'y'");
  auto program = PredicateProgram::Compile(*expr, 0, 2);
  ASSERT_TRUE(program.ok());

  auto batch = table->Columnar();
  std::vector<uint32_t> sel = {0, 1, 2, 3};
  auto whole = program->Run(*batch, sel);
  for (size_t chunk = 1; chunk <= 5; ++chunk) {
    auto chunked = RunChunked(*program, *batch, sel, chunk);
    EXPECT_EQ(chunked.passed, whole.passed) << "chunk=" << chunk;
    EXPECT_EQ(chunked.errors.size(), whole.errors.size());
  }
}

TEST(TableScanTest, EstimateFilteredCardinality) {
  auto table = MakeTable();
  auto pred = sql::ParseExpression("T.a >= 20");
  ASSERT_TRUE(pred.ok());
  std::vector<const Expression*> conjuncts = {pred->get()};

  ScanOptions compiled;
  auto n = EstimateFilteredCardinality(*table->CurrentVersion(), "T",
                                       conjuncts, compiled);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 3u);

  ScanOptions interpreted;
  interpreted.compiled = false;
  auto m = EstimateFilteredCardinality(*table->CurrentVersion(), "T",
                                       conjuncts, interpreted);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(*m, *n);
}

/// End-to-end: the executor must return identical results (rows, lineage,
/// and error statuses) with the compiled scan on and off.
class ScanModeEquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(workload::BuildPaperDatabase(&db_, Ts(1)).ok());
  }

  void CheckBothModes(const std::string& sql) {
    ExecOptions compiled;
    compiled.compiled_scan = true;
    ExecOptions interpreted;
    interpreted.compiled_scan = false;

    auto a = ExecuteSql(sql, db_.View(), compiled);
    auto b = ExecuteSql(sql, db_.View(), interpreted);
    ASSERT_EQ(a.ok(), b.ok()) << sql;
    if (!a.ok()) {
      EXPECT_EQ(a.status().ToString(), b.status().ToString()) << sql;
      return;
    }
    EXPECT_EQ(a->rows, b->rows) << sql;
    EXPECT_EQ(a->lineage, b->lineage) << sql;
  }

  Database db_;
};

TEST_F(ScanModeEquivalenceTest, SingleTablePredicates) {
  CheckBothModes("SELECT name FROM P-Personal WHERE age < 30");
  CheckBothModes(
      "SELECT * FROM P-Personal WHERE age >= 25 AND name <> 'Jane'");
  CheckBothModes("SELECT name FROM P-Personal WHERE name LIKE 'R%'");
  CheckBothModes("SELECT name FROM P-Personal WHERE age < 25 OR age > 40");
}

TEST_F(ScanModeEquivalenceTest, Joins) {
  CheckBothModes(
      "SELECT name, disease FROM P-Personal, P-Health "
      "WHERE P-Personal.pid = P-Health.pid AND disease = 'diabetic'");
  CheckBothModes(
      "SELECT name FROM P-Personal, P-Health, P-Employ "
      "WHERE P-Personal.pid = P-Health.pid "
      "AND P-Personal.pid = P-Employ.pid AND age < 50");
}

TEST_F(ScanModeEquivalenceTest, ErrorsMatch) {
  CheckBothModes("SELECT name FROM P-Personal WHERE name + 1 > 0");
  CheckBothModes("SELECT name FROM P-Personal WHERE age / 0 > 1");
  CheckBothModes(
      "SELECT name FROM P-Personal WHERE age < 30 AND name + 1 > 0");
}

TEST_F(ScanModeEquivalenceTest, SmallBatchSizeIsEquivalent) {
  ExecOptions tiny;
  tiny.compiled_scan = true;
  tiny.scan_batch_size = 2;
  auto a = ExecuteSql("SELECT name FROM P-Personal WHERE age < 30",
                      db_.View(), tiny);
  ExecOptions interpreted;
  interpreted.compiled_scan = false;
  auto b = ExecuteSql("SELECT name FROM P-Personal WHERE age < 30",
                      db_.View(), interpreted);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->rows, b->rows);
}

}  // namespace
}  // namespace auditdb
