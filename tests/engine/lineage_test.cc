#include "src/engine/lineage.h"

#include <gtest/gtest.h>

#include "src/workload/hospital.h"

namespace auditdb {
namespace {

Timestamp Ts(int64_t s) { return Timestamp(s * 1000000); }

class LineageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(workload::BuildPaperDatabase(&db_, Ts(1)).ok());
  }

  AccessProfile MustProfile(const std::string& sql) {
    auto stmt = sql::ParseSelect(sql);
    EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
    auto profile = ComputeAccessProfile(*stmt, db_.View());
    EXPECT_TRUE(profile.ok()) << profile.status().ToString();
    return std::move(*profile);
  }

  Database db_;
};

TEST_F(LineageTest, AccessedVsOutputColumns) {
  auto profile =
      MustProfile("SELECT zipcode FROM P-Personal WHERE name = 'Jane'");
  EXPECT_TRUE(profile.Outputs(ColumnRef{"P-Personal", "zipcode"}));
  EXPECT_FALSE(profile.Outputs(ColumnRef{"P-Personal", "name"}));
  // C_Q includes predicate columns.
  EXPECT_TRUE(profile.Accesses(ColumnRef{"P-Personal", "name"}));
  EXPECT_TRUE(profile.Accesses(ColumnRef{"P-Personal", "zipcode"}));
  EXPECT_FALSE(profile.Accesses(ColumnRef{"P-Personal", "age"}));
}

TEST_F(LineageTest, StarExpandsToAllColumns) {
  auto profile = MustProfile("SELECT * FROM P-Employ");
  EXPECT_TRUE(profile.Outputs(ColumnRef{"P-Employ", "pid"}));
  EXPECT_TRUE(profile.Outputs(ColumnRef{"P-Employ", "employer"}));
  EXPECT_TRUE(profile.Outputs(ColumnRef{"P-Employ", "salary"}));
  EXPECT_EQ(profile.output_columns.size(), 3u);
}

TEST_F(LineageTest, JoinProfileSpansTables) {
  auto profile = MustProfile(
      "SELECT name FROM P-Personal, P-Health "
      "WHERE P-Personal.pid = P-Health.pid AND disease = 'diabetic'");
  EXPECT_TRUE(profile.Accesses(ColumnRef{"P-Health", "disease"}));
  EXPECT_TRUE(profile.Accesses(ColumnRef{"P-Health", "pid"}));
  EXPECT_TRUE(profile.Accesses(ColumnRef{"P-Personal", "pid"}));
  EXPECT_EQ(profile.result.IndispensableTids("P-Personal"),
            (std::set<Tid>{12, 14}));
  EXPECT_EQ(profile.result.IndispensableTids("P-Health"),
            (std::set<Tid>{22, 24}));
}

TEST_F(LineageTest, PaperSuspicionExample) {
  // Section 2.1: "SELECT zipcode FROM Patients WHERE disease='cancer'" is
  // suspicious iff a cancer patient lives in the audited area. Our schema
  // splits person and health, so join the two: no cancer patients exist,
  // so nothing is indispensable.
  auto profile = MustProfile(
      "SELECT zipcode FROM P-Personal, P-Health "
      "WHERE P-Personal.pid = P-Health.pid AND disease = 'cancer'");
  EXPECT_TRUE(profile.result.rows.empty());
  EXPECT_TRUE(profile.result.IndispensableTids("P-Personal").empty());
}

}  // namespace
}  // namespace auditdb
