#include "src/engine/executor.h"

#include <gtest/gtest.h>

#include "src/workload/hospital.h"

namespace auditdb {
namespace {

Timestamp Ts(int64_t s) { return Timestamp(s * 1000000); }

class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(workload::BuildPaperDatabase(&db_, Ts(1)).ok());
  }

  Result<QueryResult> Run(const std::string& sql,
                          const ExecOptions& options = ExecOptions{}) {
    return ExecuteSql(sql, db_.View(), options);
  }

  Database db_;
};

TEST_F(ExecutorTest, SingleTableScan) {
  auto result = Run("SELECT name FROM P-Personal WHERE age < 30");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Jane (25), Robert (29), Lucy (20); Reku has NULL age.
  ASSERT_EQ(result->rows.size(), 3u);
  EXPECT_EQ(result->rows[0][0], Value::String("Jane"));
  EXPECT_EQ(result->rows[1][0], Value::String("Robert"));
  EXPECT_EQ(result->rows[2][0], Value::String("Lucy"));
}

TEST_F(ExecutorTest, LineageIdentifiesBaseTuples) {
  auto result = Run("SELECT name FROM P-Personal WHERE age < 30");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->lineage.size(), 3u);
  EXPECT_EQ(result->lineage[0], (std::vector<Tid>{11}));
  EXPECT_EQ(result->lineage[1], (std::vector<Tid>{13}));
  EXPECT_EQ(result->lineage[2], (std::vector<Tid>{14}));
  EXPECT_EQ(result->IndispensableTids("P-Personal"),
            (std::set<Tid>{11, 13, 14}));
  EXPECT_TRUE(result->IndispensableTids("P-Health").empty());
}

TEST_F(ExecutorTest, SelectStar) {
  auto result = Run("SELECT * FROM P-Employ");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->columns.size(), 3u);
  EXPECT_EQ(result->rows.size(), 4u);
  EXPECT_EQ(result->columns[0].ToString(), "P-Employ.pid");
}

TEST_F(ExecutorTest, TwoWayJoin) {
  auto result = Run(
      "SELECT name, disease FROM P-Personal, P-Health "
      "WHERE P-Personal.pid = P-Health.pid AND disease = 'diabetic'");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 2u);
  EXPECT_EQ(result->rows[0][0], Value::String("Reku"));
  EXPECT_EQ(result->rows[1][0], Value::String("Lucy"));
  // Joint lineage: (t12,t22) and (t14,t24).
  EXPECT_EQ(result->lineage[0], (std::vector<Tid>{12, 22}));
  EXPECT_EQ(result->lineage[1], (std::vector<Tid>{14, 24}));
}

TEST_F(ExecutorTest, ThreeWayJoinPaperExpression2) {
  // The WHERE clause of the paper's Audit Expression-2 (Fig. 3).
  auto result = Run(
      "SELECT name, disease, address FROM P-Personal, P-Health, P-Employ "
      "WHERE P-Personal.pid=P-Health.pid AND P-Health.pid=P-Employ.pid "
      "AND P-Personal.zipcode=145568 AND P-Employ.salary > 10000 "
      "AND P-Health.disease='diabetic'");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rows.size(), 2u);
  EXPECT_EQ(result->rows[0][0], Value::String("Reku"));
  EXPECT_EQ(result->rows[1][0], Value::String("Lucy"));
  EXPECT_EQ(result->lineage[0], (std::vector<Tid>{12, 22, 32}));
  EXPECT_EQ(result->lineage[1], (std::vector<Tid>{14, 24, 34}));
}

TEST_F(ExecutorTest, HashJoinAndNestedLoopAgree) {
  const std::string sql =
      "SELECT name, salary FROM P-Personal, P-Employ "
      "WHERE P-Personal.pid = P-Employ.pid AND salary > 10000";
  ExecOptions hash;
  hash.hash_join = true;
  ExecOptions loop;
  loop.hash_join = false;
  auto a = Run(sql, hash);
  auto b = Run(sql, loop);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->rows, b->rows);
  EXPECT_EQ(a->lineage, b->lineage);
}

TEST_F(ExecutorTest, CrossProductWithoutPredicate) {
  auto result = Run("SELECT name, employer FROM P-Personal, P-Employ");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 16u);  // 4 x 4
}

TEST_F(ExecutorTest, EmptyResultStillHasColumns) {
  auto result = Run("SELECT name FROM P-Personal WHERE age > 100");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->rows.empty());
  EXPECT_EQ(result->columns.size(), 1u);
}

TEST_F(ExecutorTest, ProjectLineage) {
  auto result = Run(
      "SELECT name, disease FROM P-Personal, P-Health "
      "WHERE P-Personal.pid = P-Health.pid");
  ASSERT_TRUE(result.ok());
  auto both = result->ProjectLineage({"P-Personal", "P-Health"});
  ASSERT_TRUE(both.ok());
  EXPECT_EQ(both->size(), 4u);
  auto health_only = result->ProjectLineage({"P-Health"});
  ASSERT_TRUE(health_only.ok());
  EXPECT_EQ(*health_only, (std::set<std::vector<Tid>>{
                              {21}, {22}, {23}, {24}}));
  EXPECT_FALSE(result->ProjectLineage({"P-Employ"}).ok());
}

TEST_F(ExecutorTest, ColumnValues) {
  auto result = Run("SELECT disease FROM P-Health");
  ASSERT_TRUE(result.ok());
  auto values = result->ColumnValues(ColumnRef{"P-Health", "disease"});
  EXPECT_EQ(values.size(), 3u);  // flu, diabetic (x2 dedup), Malaria
  EXPECT_TRUE(values.count(Value::String("diabetic")));
}

TEST_F(ExecutorTest, UnknownTableOrColumn) {
  EXPECT_FALSE(Run("SELECT x FROM Nope").ok());
  EXPECT_FALSE(Run("SELECT missing FROM P-Personal").ok());
  EXPECT_FALSE(Run("SELECT name FROM P-Personal WHERE missing = 1").ok());
}

TEST_F(ExecutorTest, DuplicateFromRejected) {
  EXPECT_FALSE(Run("SELECT name FROM P-Personal, P-Personal").ok());
}

TEST_F(ExecutorTest, AmbiguousColumnRejected) {
  // pid exists in all three tables.
  EXPECT_FALSE(Run("SELECT pid FROM P-Personal, P-Health").ok());
}

TEST_F(ExecutorTest, StringNumericJoinFallsBackToNestedLoop) {
  // zipcode (STRING) vs int literal requires coercion; still correct.
  auto result = Run("SELECT name FROM P-Personal WHERE zipcode = 145568");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 2u);
}

TEST_F(ExecutorTest, IndexPrefilterPreservesResultsAndOrder) {
  auto table = db_.GetTable("P-Personal");
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE((*table)->CreateIndex("zipcode").ok());
  ASSERT_TRUE((*table)->CreateIndex("age").ok());

  const char* kQueries[] = {
      "SELECT name FROM P-Personal WHERE zipcode = '145568'",
      "SELECT name FROM P-Personal WHERE age < 30",
      "SELECT name FROM P-Personal WHERE age >= 25",
      "SELECT name, disease FROM P-Personal, P-Health "
      "WHERE P-Personal.pid = P-Health.pid AND zipcode = '145568'",
  };
  for (const char* sql : kQueries) {
    ExecOptions indexed;
    indexed.use_index = true;
    ExecOptions scan;
    scan.use_index = false;
    auto a = Run(sql, indexed);
    auto b = Run(sql, scan);
    ASSERT_TRUE(a.ok()) << sql;
    ASSERT_TRUE(b.ok()) << sql;
    EXPECT_EQ(a->rows, b->rows) << sql;       // same rows, same order
    EXPECT_EQ(a->lineage, b->lineage) << sql;
  }
}

TEST_F(ExecutorTest, IndexSkipsMixedTypeLiterals) {
  auto table = db_.GetTable("P-Personal");
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE((*table)->CreateIndex("zipcode").ok());
  // zipcode is STRING; an int literal coerces and must bypass the index.
  auto result = Run("SELECT name FROM P-Personal WHERE zipcode = 145568");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 2u);
}

TEST_F(ExecutorTest, IndexHandlesNullColumn) {
  auto table = db_.GetTable("P-Personal");
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE((*table)->CreateIndex("age").ok());
  // Reku's age is NULL: must never match an indexed range.
  auto result = Run("SELECT name FROM P-Personal WHERE age < 100");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 3u);
}

TEST_F(ExecutorTest, JoinReorderingKeepsSemantics) {
  const char* kQueries[] = {
      "SELECT name, disease FROM P-Personal, P-Health "
      "WHERE P-Personal.pid = P-Health.pid AND disease = 'diabetic'",
      "SELECT name, disease, salary "
      "FROM P-Personal, P-Health, P-Employ "
      "WHERE P-Personal.pid=P-Health.pid AND P-Health.pid=P-Employ.pid "
      "AND salary > 10000 AND zipcode = '145568'",
      // A highly selective predicate on the LAST table: reordering should
      // still produce identical rows and lineage layout.
      "SELECT name FROM P-Personal, P-Employ "
      "WHERE P-Personal.pid = P-Employ.pid AND employer = 'E2'",
  };
  for (const char* sql : kQueries) {
    ExecOptions plain;
    ExecOptions reordered;
    reordered.reorder_joins = true;
    auto a = Run(sql, plain);
    auto b = Run(sql, reordered);
    ASSERT_TRUE(a.ok()) << sql;
    ASSERT_TRUE(b.ok()) << sql;
    // Same FROM order exposed regardless of execution order.
    EXPECT_EQ(a->from, b->from) << sql;
    EXPECT_EQ(a->columns, b->columns) << sql;
    // Same multiset of (row, lineage) pairs.
    auto canon = [](const QueryResult& r) {
      std::multiset<std::string> out;
      for (size_t i = 0; i < r.rows.size(); ++i) {
        std::string key;
        for (const auto& v : r.rows[i]) key += v.ToString() + "|";
        key += "//";
        for (Tid t : r.lineage[i]) key += TidToString(t) + "|";
        out.insert(std::move(key));
      }
      return out;
    };
    EXPECT_EQ(canon(*a), canon(*b)) << sql;
  }
}

TEST_F(ExecutorTest, BagSemanticsKeepDuplicates) {
  auto result = Run("SELECT sex FROM P-Personal");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 4u);  // two F, two M — no dedup
}

}  // namespace
}  // namespace auditdb
