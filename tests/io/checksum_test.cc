#include "src/io/checksum.h"

#include <gtest/gtest.h>

#include <string>

namespace auditdb {
namespace io {
namespace {

// Published CRC32C vectors (RFC 3720 appendix B.4).
TEST(Crc32cTest, KnownVectors) {
  EXPECT_EQ(Crc32c("", 0), 0u);
  EXPECT_EQ(Crc32c(std::string_view("123456789")), 0xE3069283u);
  std::string zeros(32, '\0');
  EXPECT_EQ(Crc32c(zeros), 0x8A9136AAu);
  std::string ones(32, '\xff');
  EXPECT_EQ(Crc32c(ones), 0x62A8AB43u);
  std::string ascending(32, '\0');
  for (int i = 0; i < 32; ++i) ascending[i] = static_cast<char>(i);
  EXPECT_EQ(Crc32c(ascending), 0x46DD794Eu);
}

TEST(Crc32cTest, SeedContinuationMatchesOneShot) {
  std::string data = "hello, durable world | with pipes\nand newlines";
  for (size_t split = 0; split <= data.size(); ++split) {
    uint32_t head = Crc32c(data.data(), split);
    uint32_t full = Crc32c(data.data() + split, data.size() - split, head);
    EXPECT_EQ(full, Crc32c(data)) << "split at " << split;
  }
}

TEST(Crc32cTest, SingleBitFlipsChangeTheCrc) {
  std::string data = "the audit trail must not lie";
  uint32_t clean = Crc32c(data);
  for (size_t i = 0; i < data.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = data;
      flipped[i] = static_cast<char>(flipped[i] ^ (1 << bit));
      EXPECT_NE(Crc32c(flipped), clean)
          << "byte " << i << " bit " << bit;
    }
  }
}

TEST(Crc32cTest, MaskRoundTripsAndDiffers) {
  for (uint32_t crc : {0u, 1u, 0xE3069283u, 0xFFFFFFFFu, 0x8A9136AAu}) {
    EXPECT_EQ(UnmaskCrc(MaskCrc(crc)), crc);
    EXPECT_NE(MaskCrc(crc), crc);
  }
}

}  // namespace
}  // namespace io
}  // namespace auditdb
