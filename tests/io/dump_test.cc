#include "src/io/dump.h"

#include <gtest/gtest.h>

#include <sstream>

#include "src/backlog/backlog.h"
#include "src/engine/executor.h"
#include "src/workload/hospital.h"

namespace auditdb {
namespace io {
namespace {

Timestamp Ts(int64_t s) { return Timestamp(s * 1000000); }

TEST(ValueEncodingTest, RoundTripsEveryType) {
  const Value values[] = {
      Value::Null(),
      Value::Bool(true),
      Value::Bool(false),
      Value::Int(-42),
      Value::Int(0),
      Value::Double(2.5),
      Value::Double(-0.125),
      Value::String("plain"),
      Value::String(""),
      Value::String("with|pipe and\\slash and\nnewline"),
      Value::Time(Ts(12345)),
  };
  for (const Value& v : values) {
    auto decoded = DecodeValue(EncodeValue(v));
    ASSERT_TRUE(decoded.ok()) << EncodeValue(v);
    EXPECT_EQ(*decoded, v) << EncodeValue(v);
  }
}

TEST(ValueEncodingTest, RejectsMalformedInput) {
  EXPECT_FALSE(DecodeValue("").ok());
  EXPECT_FALSE(DecodeValue("X:1").ok());
  EXPECT_FALSE(DecodeValue("I:notanumber").ok());
  EXPECT_FALSE(DecodeValue("I:").ok());
  EXPECT_FALSE(DecodeValue("S").ok());
  EXPECT_FALSE(DecodeValue("S:bad\\escape\\q").ok());
  EXPECT_FALSE(DecodeValue("T:xyz").ok());
}

TEST(DatabaseDumpTest, RoundTripsPaperDatabase) {
  Database original;
  ASSERT_TRUE(workload::BuildPaperDatabase(&original, Ts(1)).ok());

  std::stringstream dump;
  ASSERT_TRUE(WriteDatabaseDump(original, dump).ok());

  Database restored;
  ASSERT_TRUE(ReadDatabaseDump(dump, &restored, Ts(2)).ok());

  ASSERT_EQ(restored.TableNames(), original.TableNames());
  for (const auto& name : original.TableNames()) {
    auto a = original.GetTable(name);
    auto b = restored.GetTable(name);
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_EQ((*a)->size(), (*b)->size()) << name;
    for (size_t i = 0; i < (*a)->size(); ++i) {
      EXPECT_EQ((*a)->rows()[i], (*b)->rows()[i]) << name << " row " << i;
    }
    EXPECT_EQ((*a)->schema().ToString(), (*b)->schema().ToString());
  }

  // The restored database answers queries identically.
  auto qa = ExecuteSql("SELECT name FROM P-Personal WHERE age < 30",
                       original.View());
  auto qb = ExecuteSql("SELECT name FROM P-Personal WHERE age < 30",
                       restored.View());
  ASSERT_TRUE(qa.ok() && qb.ok());
  EXPECT_EQ(qa->rows, qb->rows);
  EXPECT_EQ(qa->lineage, qb->lineage);
}

TEST(DatabaseDumpTest, LoadFiresTriggers) {
  Database original;
  ASSERT_TRUE(workload::BuildPaperDatabase(&original, Ts(1)).ok());
  std::stringstream dump;
  ASSERT_TRUE(WriteDatabaseDump(original, dump).ok());

  Database restored;
  Backlog backlog;
  backlog.Attach(&restored);
  ASSERT_TRUE(ReadDatabaseDump(dump, &restored, Ts(7)).ok());
  EXPECT_EQ(backlog.event_count(), 12u);  // 4 rows x 3 tables
  EXPECT_EQ(backlog.EventAt(0).timestamp, Ts(7));
}

TEST(DatabaseDumpTest, RejectsGarbage) {
  Database db;
  std::stringstream bad1("GIBBERISH\n");
  EXPECT_FALSE(ReadDatabaseDump(bad1, &db, Ts(1)).ok());
  std::stringstream bad2("ROW 1|I:1\n");
  EXPECT_FALSE(ReadDatabaseDump(bad2, &db, Ts(1)).ok());
  std::stringstream bad3("TABLE T\nROWS wrong\n");
  EXPECT_FALSE(ReadDatabaseDump(bad3, &db, Ts(1)).ok());
  std::stringstream bad4("TABLE T\nCOLUMNS a:WEIRD\n");
  EXPECT_FALSE(ReadDatabaseDump(bad4, &db, Ts(1)).ok());
}

TEST(DatabaseDumpTest, CommentsAndBlankLinesIgnored) {
  Database db;
  std::stringstream dump(
      "# a comment\n"
      "\n"
      "TABLE T\n"
      "COLUMNS a:INT\n"
      "# mid-table comment\n"
      "ROW 5|I:9\n"
      "END\n");
  ASSERT_TRUE(ReadDatabaseDump(dump, &db, Ts(1)).ok());
  auto table = db.GetTable("T");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->size(), 1u);
  EXPECT_TRUE((*table)->Contains(5));
}

TEST(QueryLogDumpTest, RoundTrips) {
  QueryLog original;
  original.Append("SELECT a FROM T WHERE s = 'x|y'", Ts(10), "alice",
                  "doctor", "treatment");
  original.Append("SELECT b FROM U", Ts(20), "bob", "clerk", "billing");

  std::stringstream dump;
  ASSERT_TRUE(WriteQueryLogDump(original, dump).ok());

  QueryLog restored;
  ASSERT_TRUE(ReadQueryLogDump(dump, &restored).ok());
  ASSERT_EQ(restored.size(), 2u);
  EXPECT_EQ(restored.Entry(0).sql, "SELECT a FROM T WHERE s = 'x|y'");
  EXPECT_EQ(restored.Entry(0).user, "alice");
  EXPECT_EQ(restored.Entry(0).timestamp, Ts(10));
  EXPECT_EQ(restored.Entry(1).purpose, "billing");
}

// Strings chosen to break line-oriented, pipe-separated formats: field
// separators, escape chars, record separators (LF and CRLF), leading /
// trailing whitespace, empties, and non-ASCII bytes.
const char* const kAdversarialStrings[] = {
    "",
    "|",
    "|||",
    "\\",
    "\\|",
    "a|b\\c",
    "line1\nline2",
    "crlf\r\n",
    "\r",
    "ends in cr\r",
    "ends in space ",
    " starts with space",
    "\ttabbed\t",
    "caf\xc3\xa9 \xf0\x9f\x94\x92",
    "ROW 1|I:5",      // looks like a dump directive
    "\\n not a newline",
};

TEST(FieldEscapingTest, RoundTripsAdversarialStrings) {
  for (const char* raw : kAdversarialStrings) {
    std::string escaped = EscapeField(raw);
    // Escaped text never contains a bare separator or record terminator.
    EXPECT_EQ(escaped.find('|'), std::string::npos) << raw;
    EXPECT_EQ(escaped.find('\n'), std::string::npos) << raw;
    EXPECT_EQ(escaped.find('\r'), std::string::npos) << raw;
    auto unescaped = UnescapeField(escaped);
    ASSERT_TRUE(unescaped.ok()) << unescaped.status().ToString();
    EXPECT_EQ(*unescaped, raw);
  }
}

TEST(FieldEscapingTest, SplitRespectsEscapedPipes) {
  std::vector<std::string> fields(std::begin(kAdversarialStrings),
                                  std::end(kAdversarialStrings));
  std::string joined;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) joined += '|';
    joined += EscapeField(fields[i]);
  }
  auto parts = SplitEscapedFields(joined);
  ASSERT_EQ(parts.size(), fields.size());
  for (size_t i = 0; i < parts.size(); ++i) {
    auto unescaped = UnescapeField(parts[i]);
    ASSERT_TRUE(unescaped.ok()) << parts[i];
    EXPECT_EQ(*unescaped, fields[i]) << i;
  }
}

TEST(FieldEscapingTest, RejectsInvalidEscapes) {
  EXPECT_FALSE(UnescapeField("trailing\\").ok());
  EXPECT_FALSE(UnescapeField("bad\\q").ok());
  EXPECT_TRUE(UnescapeField("fine\\\\").ok());
}

TEST(DatabaseDumpTest, RoundTripsAdversarialStringValues) {
  Database original;
  std::vector<Column> columns = {{"id", ValueType::kInt},
                                 {"s", ValueType::kString}};
  ASSERT_TRUE(original.CreateTable(TableSchema("T", columns)).ok());
  int64_t id = 1;
  for (const char* raw : kAdversarialStrings) {
    ASSERT_TRUE(
        original.Insert("T", {Value::Int(id++), Value::String(raw)}, Ts(1))
            .ok())
        << raw;
  }

  std::stringstream dump;
  ASSERT_TRUE(WriteDatabaseDump(original, dump).ok());
  Database restored;
  ASSERT_TRUE(ReadDatabaseDump(dump, &restored, Ts(2)).ok());
  auto a = original.GetTable("T");
  auto b = restored.GetTable("T");
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ((*a)->size(), (*b)->size());
  for (size_t i = 0; i < (*a)->size(); ++i) {
    EXPECT_EQ((*a)->rows()[i], (*b)->rows()[i]) << "row " << i;
  }
}

TEST(QueryLogDumpTest, RoundTripsAdversarialEntries) {
  QueryLog original;
  for (const char* raw : kAdversarialStrings) {
    original.Append(raw, Ts(10), std::string("user") + raw, raw, raw);
  }

  std::stringstream dump;
  ASSERT_TRUE(WriteQueryLogDump(original, dump).ok());
  QueryLog restored;
  ASSERT_TRUE(ReadQueryLogDump(dump, &restored).ok());
  ASSERT_EQ(restored.size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(restored.Entry(i).sql, original.Entry(i).sql) << i;
    EXPECT_EQ(restored.Entry(i).user, original.Entry(i).user) << i;
    EXPECT_EQ(restored.Entry(i).role, original.Entry(i).role) << i;
    EXPECT_EQ(restored.Entry(i).purpose, original.Entry(i).purpose)
        << i;
  }
}

TEST(QueryLogDumpTest, ReadsCrlfTerminatedDumps) {
  // A dump that passed through a CRLF-translating transport must load
  // identically: the reader strips line terminators, not field content.
  QueryLog original;
  original.Append("SELECT a FROM T WHERE s = 'x y '", Ts(10), "alice",
                  "doctor", "treatment");
  std::stringstream dump;
  ASSERT_TRUE(WriteQueryLogDump(original, dump).ok());
  std::string text = dump.str();
  std::string crlf;
  for (char c : text) {
    if (c == '\n') crlf += "\r\n";
    else crlf += c;
  }
  std::stringstream crlf_dump(crlf);
  QueryLog restored;
  ASSERT_TRUE(ReadQueryLogDump(crlf_dump, &restored).ok());
  ASSERT_EQ(restored.size(), 1u);
  EXPECT_EQ(restored.Entry(0).sql, original.Entry(0).sql);
}

TEST(QueryLogDumpTest, RejectsWrongFieldCount) {
  QueryLog log;
  std::stringstream bad("QUERY 1|2|3\n");
  EXPECT_FALSE(ReadQueryLogDump(bad, &log).ok());
}

TEST(FileWrappersTest, SaveAndLoad) {
  Database original;
  ASSERT_TRUE(workload::BuildPaperDatabase(&original, Ts(1)).ok());
  QueryLog log;
  log.Append("SELECT name FROM P-Personal", Ts(5), "u", "r", "p");

  std::string db_path = ::testing::TempDir() + "/auditdb_dump_test.db";
  std::string log_path = ::testing::TempDir() + "/auditdb_dump_test.log";
  ASSERT_TRUE(io::SaveDatabase(original, db_path).ok());
  ASSERT_TRUE(io::SaveQueryLog(log, log_path).ok());

  Database restored;
  QueryLog restored_log;
  ASSERT_TRUE(io::LoadDatabase(db_path, &restored, Ts(2)).ok());
  ASSERT_TRUE(io::LoadQueryLog(log_path, &restored_log).ok());
  EXPECT_EQ(restored.TableNames().size(), 3u);
  EXPECT_EQ(restored_log.size(), 1u);

  EXPECT_FALSE(io::LoadDatabase("/nonexistent/nope", &restored, Ts(2)).ok());
}

// Save must be all-or-nothing: any injected IO failure (ENOSPC-style
// short write, failed fsync, failed rename) returns a non-OK Status
// and leaves the previous dump intact — a failed save can never
// truncate or tear the only copy of the audit trail.
TEST(FileWrappersTest, EveryInjectedSaveFaultLeavesOldDumpIntact) {
  Database db;
  ASSERT_TRUE(workload::BuildPaperDatabase(&db, Ts(1)).ok());
  QueryLog log;
  log.Append("SELECT name FROM P-Personal", Ts(5), "u", "r", "p");
  std::string dir = ::testing::TempDir() + "auditdb_dump_fault_test";
  ASSERT_TRUE(Env::Default()->CreateDirIfMissing(dir).ok());
  std::string db_path = JoinPath(dir, "fault.db");
  std::string log_path = JoinPath(dir, "fault.log");

  // Record the schedules and the good contents.
  FaultInjectingEnv probe(Env::Default());
  ASSERT_TRUE(SaveDatabase(&probe, db, db_path).ok());
  const int64_t db_schedule = probe.ops_recorded();
  probe.Reset();
  ASSERT_TRUE(SaveQueryLog(&probe, log, log_path).ok());
  const int64_t log_schedule = probe.ops_recorded();
  auto good_db = Env::Default()->ReadFileToString(db_path);
  auto good_log = Env::Default()->ReadFileToString(log_path);
  ASSERT_TRUE(good_db.ok());
  ASSERT_TRUE(good_log.ok());

  for (int64_t op = 0; op < db_schedule; ++op) {
    for (size_t partial : {size_t{0}, size_t{16}}) {
      FaultInjectingEnv env(Env::Default());
      env.FailAtOp(op, partial, "disk full");
      Database changed;  // saving a different db must not clobber
      EXPECT_FALSE(SaveDatabase(&env, changed, db_path).ok())
          << "op " << op;
      EXPECT_EQ(*Env::Default()->ReadFileToString(db_path), *good_db);
    }
  }
  for (int64_t op = 0; op < log_schedule; ++op) {
    FaultInjectingEnv env(Env::Default());
    env.FailAtOp(op, /*partial_bytes=*/16, "disk full");
    QueryLog changed;
    EXPECT_FALSE(SaveQueryLog(&env, changed, log_path).ok()) << "op " << op;
    EXPECT_EQ(*Env::Default()->ReadFileToString(log_path), *good_log);
  }

  // The dumps still load after the fault storm.
  Database restored;
  QueryLog restored_log;
  EXPECT_TRUE(LoadDatabase(db_path, &restored, Ts(2)).ok());
  EXPECT_TRUE(LoadQueryLog(log_path, &restored_log).ok());
}

TEST(FileWrappersTest, LoadSurfacesCorruptDumpsAsStatuses) {
  std::string path = ::testing::TempDir() + "auditdb_dump_corrupt.log";
  ASSERT_TRUE(AtomicWriteFile(Env::Default(), path,
                              "QUERY 1|2|u|r|p|sql\nQUERY mangled\n")
                  .ok());
  QueryLog restored;
  Status loaded = LoadQueryLog(path, &restored);
  EXPECT_EQ(loaded.code(), StatusCode::kParseError);

  Database db;
  ASSERT_TRUE(
      AtomicWriteFile(Env::Default(), path, "GARBAGE line\n").ok());
  EXPECT_EQ(LoadDatabase(path, &db, Ts(1)).code(),
            StatusCode::kParseError);
}

}  // namespace
}  // namespace io
}  // namespace auditdb
