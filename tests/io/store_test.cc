#include "src/io/store.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/io/file.h"
#include "src/workload/hospital.h"

namespace auditdb {
namespace io {
namespace {

Timestamp Ts(int64_t s) { return Timestamp(s * 1000000); }

std::string ScratchDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "auditdb_store_test_" + name;
  Env* env = Env::Default();
  if (env->FileExists(dir)) {
    auto names = env->ListDir(dir);
    if (names.ok()) {
      for (const auto& entry : *names) {
        env->DeleteFile(JoinPath(dir, entry));
      }
    }
  }
  EXPECT_TRUE(env->CreateDirIfMissing(dir).ok());
  return dir;
}

/// The deterministic entry appended as log id `id` everywhere in this
/// file, so recovery checks can recompute what every record must hold.
LoggedQuery MakeEntry(int64_t id) {
  LoggedQuery entry;
  entry.id = id;
  entry.timestamp = Timestamp(2000000 + id * 17);
  entry.user = "user" + std::to_string(id % 3);
  entry.role = id % 2 == 0 ? "Nurse" : "Doctor";
  entry.purpose = "treatment|with|pipes";
  entry.sql = "SELECT name FROM P-Personal WHERE pid = " +
              std::to_string(id) + " -- 'q\n" + std::to_string(id);
  return entry;
}

/// Appends `entry` through the store and mirrors it into the in-memory
/// log exactly the way the net server does: WAL first, memory only on
/// ack.
Status AppendThrough(DurableStore* store, QueryLog* log, int64_t id) {
  LoggedQuery entry = MakeEntry(id);
  EXPECT_EQ(entry.id, log->next_id());
  Status appended = store->AppendQuery(entry);
  if (!appended.ok()) return appended;
  log->Append(entry.sql, entry.timestamp, entry.user, entry.role,
              entry.purpose);
  return Status::Ok();
}

/// The scripted write schedule the crash harness explores: open (which
/// checkpoints the preloaded state), three batches of appends with two
/// rotating checkpoints between them. Every append that returns OK is
/// recorded in `acked`. Returns once a fault kills the store or the
/// script completes.
void RunWorkload(Env* env, const std::string& dir, querylog::FsyncPolicy fsync,
                 std::vector<int64_t>* acked) {
  Database db;
  QueryLog log;
  DurableStoreOptions options;
  options.fsync = fsync;
  auto store = DurableStore::Open(env, dir, &db, &log, Ts(1), options);
  if (!store.ok()) return;
  int64_t id = 1;
  for (int batch = 0; batch < 3; ++batch) {
    for (int i = 0; i < 4; ++i, ++id) {
      if (!AppendThrough(store->get(), &log, id).ok()) return;
      acked->push_back(id);
    }
    if (batch < 2) {
      (void)(*store)->Checkpoint(db, log);
      if ((*store)->broken()) return;
    }
  }
}

/// Recovers `dir` with the real Env and checks the global invariant:
/// recovery succeeds, the recovered log is a dense consistent prefix of
/// the scripted append sequence (zero corrupt or reordered records),
/// and — when `require_acked` — every acked append survived.
void CheckRecovered(const std::string& dir,
                    const std::vector<int64_t>& acked, bool require_acked,
                    const std::string& context) {
  Database db;
  QueryLog log;
  auto store = DurableStore::Open(Env::Default(), dir, &db, &log, Ts(1));
  ASSERT_TRUE(store.ok()) << context << ": " << store.status().ToString();
  if (require_acked) {
    ASSERT_GE(log.size(), acked.size())
        << context << ": acked appends were lost";
  }
  for (size_t i = 0; i < log.size(); ++i) {
    const LoggedQuery& got = log.Entry(i);
    LoggedQuery want = MakeEntry(static_cast<int64_t>(i) + 1);
    ASSERT_EQ(got.id, want.id) << context;
    ASSERT_EQ(got.timestamp.micros(), want.timestamp.micros()) << context;
    ASSERT_EQ(got.user, want.user) << context;
    ASSERT_EQ(got.role, want.role) << context;
    ASSERT_EQ(got.purpose, want.purpose) << context;
    ASSERT_EQ(got.sql, want.sql) << context;
  }
}

// ---------------------------------------------------------------------
// Plain (fault-free) behavior

TEST(DurableStoreTest, FreshOpenCheckpointsPreloadedState) {
  Env* env = Env::Default();
  std::string dir = ScratchDir("fresh");
  Database db;
  QueryLog log;
  workload::HospitalConfig hospital;
  hospital.num_patients = 10;
  ASSERT_TRUE(workload::PopulateHospital(&db, hospital, Ts(1)).ok());
  log.Append("SELECT 1", Ts(2), "alice", "Nurse", "care");

  EXPECT_FALSE(DurableStore::HasManifest(env, dir));
  auto store = DurableStore::Open(env, dir, &db, &log, Ts(1));
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_TRUE(DurableStore::HasManifest(env, dir));
  EXPECT_FALSE((*store)->recovery().manifest_found);
  EXPECT_EQ((*store)->last_checkpoint_seq(), 1u);
  EXPECT_TRUE(env->FileExists(JoinPath(dir, "snapshot-1.db")));
  EXPECT_TRUE(env->FileExists(JoinPath(dir, "snapshot-1.log")));
  EXPECT_TRUE(env->FileExists(JoinPath(dir, "wal-1.log")));
  store->reset();

  // Recovery restores both stores byte-for-byte at the dump level.
  Database db2;
  QueryLog log2;
  auto recovered = DurableStore::Open(env, dir, &db2, &log2, Ts(1));
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_TRUE((*recovered)->recovery().manifest_found);
  EXPECT_EQ((*recovered)->recovery().snapshot_queries, 1u);
  EXPECT_EQ(db2.TableNames(), db.TableNames());
  ASSERT_EQ(log2.size(), 1u);
  EXPECT_EQ(log2.Entry(0).sql, "SELECT 1");
}

TEST(DurableStoreTest, RecoveryRefusesNonEmptyStores) {
  Env* env = Env::Default();
  std::string dir = ScratchDir("nonempty");
  {
    Database db;
    QueryLog log;
    auto store = DurableStore::Open(env, dir, &db, &log, Ts(1));
    ASSERT_TRUE(store.ok());
  }
  Database db;
  QueryLog log;
  log.Append("SELECT 1", Ts(2), "a", "r", "p");
  auto reopened = DurableStore::Open(env, dir, &db, &log, Ts(1));
  EXPECT_EQ(reopened.status().code(), StatusCode::kInvalidArgument);
}

TEST(DurableStoreTest, AppendsSurviveReopenAndRotateOnCheckpoint) {
  Env* env = Env::Default();
  std::string dir = ScratchDir("appends");
  std::vector<int64_t> acked;
  RunWorkload(env, dir, querylog::FsyncPolicy::kAlways, &acked);
  EXPECT_EQ(acked.size(), 12u);
  CheckRecovered(dir, acked, /*require_acked=*/true, "fault-free");

  // Two mid-run checkpoints + the initial one; the final four appends
  // live in the WAL of checkpoint 3.
  Database db;
  QueryLog log;
  auto store = DurableStore::Open(env, dir, &db, &log, Ts(1));
  ASSERT_TRUE(store.ok());
  EXPECT_EQ((*store)->last_checkpoint_seq(), 3u);
  EXPECT_EQ((*store)->recovery().snapshot_queries, 8u);
  EXPECT_EQ((*store)->recovery().recovered_records, 4u);
  EXPECT_EQ((*store)->recovery().torn_tail_dropped, 0u);
  EXPECT_EQ(log.size(), 12u);
  // Stale files of earlier checkpoints were pruned.
  EXPECT_FALSE(env->FileExists(JoinPath(dir, "snapshot-1.db")));
  EXPECT_FALSE(env->FileExists(JoinPath(dir, "wal-2.log")));
}

TEST(DurableStoreTest, ShouldCheckpointFollowsCadence) {
  Env* env = Env::Default();
  std::string dir = ScratchDir("cadence");
  Database db;
  QueryLog log;
  DurableStoreOptions options;
  options.checkpoint_every_records = 3;
  auto store = DurableStore::Open(env, dir, &db, &log, Ts(1), options);
  ASSERT_TRUE(store.ok());
  for (int64_t id = 1; id <= 2; ++id) {
    ASSERT_TRUE(AppendThrough(store->get(), &log, id).ok());
    EXPECT_FALSE((*store)->ShouldCheckpoint());
  }
  ASSERT_TRUE(AppendThrough(store->get(), &log, 3).ok());
  EXPECT_TRUE((*store)->ShouldCheckpoint());
  ASSERT_TRUE((*store)->Checkpoint(db, log).ok());
  EXPECT_FALSE((*store)->ShouldCheckpoint());
  EXPECT_EQ((*store)->wal_records(), 0u);
}

TEST(DurableStoreTest, MetricsJsonCarriesTheDurabilityFields) {
  Env* env = Env::Default();
  std::string dir = ScratchDir("metrics");
  Database db;
  QueryLog log;
  auto store = DurableStore::Open(env, dir, &db, &log, Ts(1));
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(AppendThrough(store->get(), &log, 1).ok());
  std::string json = (*store)->MetricsJson();
  for (const char* key :
       {"wal_bytes", "wal_records", "recovered_records",
        "torn_tail_dropped", "last_checkpoint_seq", "checkpoints",
        "checkpoint_failures", "broken", "fsync_policy"}) {
    EXPECT_NE(json.find("\"" + std::string(key) + "\""), std::string::npos)
        << json;
  }
  EXPECT_NE(json.find("\"wal_records\":1"), std::string::npos) << json;
}

TEST(DurableStoreTest, OpenPrunesOrphanedTempsAndStaleSnapshots) {
  Env* env = Env::Default();
  std::string dir = ScratchDir("prune");
  {
    Database db;
    QueryLog log;
    auto store = DurableStore::Open(env, dir, &db, &log, Ts(1));
    ASSERT_TRUE(store.ok());
  }
  ASSERT_TRUE(
      AtomicWriteFile(env, JoinPath(dir, "snapshot-9.db"), "stale").ok());
  {
    auto tmp = env->NewWritableFile(JoinPath(dir, "MANIFEST.tmp"), true);
    ASSERT_TRUE(tmp.ok());
    ASSERT_TRUE((*tmp)->Append("snapshot 9").ok());
    ASSERT_TRUE((*tmp)->Close().ok());
  }
  Database db;
  QueryLog log;
  auto store = DurableStore::Open(env, dir, &db, &log, Ts(1));
  ASSERT_TRUE(store.ok());
  EXPECT_FALSE(env->FileExists(JoinPath(dir, "snapshot-9.db")));
  EXPECT_FALSE(env->FileExists(JoinPath(dir, "MANIFEST.tmp")));
}

// ---------------------------------------------------------------------
// IO-failure (process survives) harness

// For every op in the schedule, fail it (with and without a short
// write) and check the contract: an append that returned OK is
// recoverable, a failed append/sync wedges the store so later appends
// refuse, and recovery never sees a corrupt record.
TEST(DurableStoreFaultTest, EveryInjectedIoFailureKeepsAckedRecoverable) {
  std::string dir = ScratchDir("fail_harness");
  FaultInjectingEnv probe(Env::Default());
  std::vector<int64_t> probe_acked;
  RunWorkload(&probe, dir, querylog::FsyncPolicy::kAlways, &probe_acked);
  ASSERT_EQ(probe_acked.size(), 12u) << "fault-free run must complete";
  const int64_t schedule = probe.ops_recorded();
  ASSERT_GT(schedule, 20);

  for (int64_t op = 0; op < schedule; ++op) {
    for (size_t partial : {size_t{0}, size_t{7}}) {
      std::string case_dir = ScratchDir("fail_case");
      FaultInjectingEnv env(Env::Default());
      env.FailAtOp(op, partial);
      std::vector<int64_t> acked;
      RunWorkload(&env, case_dir, querylog::FsyncPolicy::kAlways, &acked);
      CheckRecovered(case_dir, acked, /*require_acked=*/true,
                     "fail op " + std::to_string(op) + " partial " +
                         std::to_string(partial));
    }
  }
}

// ---------------------------------------------------------------------
// Crash harness — the headline artifact

// For every fault point in the recorded WAL-append + checkpoint write
// schedule, simulate a crash there (clean, torn mid-record, and torn
// with page-cache loss), run recovery, and assert the recovered state
// is a consistent prefix of the acknowledged appends with zero corrupt
// records accepted. Under fsync=always acked records must all survive.
TEST(DurableStoreCrashTest, EveryCrashPointRecoversConsistentPrefix) {
  std::string dir = ScratchDir("crash_harness");
  FaultInjectingEnv probe(Env::Default());
  std::vector<int64_t> probe_acked;
  RunWorkload(&probe, dir, querylog::FsyncPolicy::kAlways, &probe_acked);
  ASSERT_EQ(probe_acked.size(), 12u);
  const int64_t schedule = probe.ops_recorded();

  for (int64_t op = 0; op < schedule; ++op) {
    for (size_t partial : {size_t{0}, size_t{1}, size_t{9}}) {
      for (bool drop_unsynced : {false, true}) {
        std::string case_dir = ScratchDir("crash_case");
        FaultInjectingEnv env(Env::Default());
        env.CrashAtOp(op, partial, drop_unsynced);
        std::vector<int64_t> acked;
        RunWorkload(&env, case_dir, querylog::FsyncPolicy::kAlways, &acked);
        EXPECT_TRUE(env.crashed());
        CheckRecovered(case_dir, acked, /*require_acked=*/true,
                       "crash op " + std::to_string(op) + " partial " +
                           std::to_string(partial) +
                           (drop_unsynced ? " drop_unsynced" : ""));
      }
    }
  }
}

// The same exhaustive sweep under fsync=never: acked records may
// legitimately vanish with the page cache, but recovery must still
// yield an uncorrupted consistent prefix — the relaxed policy trades
// the loss window, never integrity.
TEST(DurableStoreCrashTest, FsyncNeverCrashesStillRecoverCleanPrefixes) {
  std::string dir = ScratchDir("crash_never");
  FaultInjectingEnv probe(Env::Default());
  std::vector<int64_t> probe_acked;
  RunWorkload(&probe, dir, querylog::FsyncPolicy::kNever, &probe_acked);
  ASSERT_EQ(probe_acked.size(), 12u);
  const int64_t schedule = probe.ops_recorded();

  for (int64_t op = 0; op < schedule; ++op) {
    for (bool drop_unsynced : {false, true}) {
      std::string case_dir = ScratchDir("crash_never_case");
      FaultInjectingEnv env(Env::Default());
      env.CrashAtOp(op, /*partial_bytes=*/3, drop_unsynced);
      std::vector<int64_t> acked;
      RunWorkload(&env, case_dir, querylog::FsyncPolicy::kNever, &acked);
      CheckRecovered(case_dir, acked, /*require_acked=*/false,
                     "never-crash op " + std::to_string(op));
    }
  }
}

// Crashing during recovery itself (the WAL tail truncation, the prune
// of stale files) must leave a directory the next recovery handles.
TEST(DurableStoreCrashTest, CrashDuringRecoveryIsItselfRecoverable) {
  std::string dir = ScratchDir("crash_in_recovery");
  // Build a store with a torn WAL tail: run to completion, then tear
  // the last record's bytes off by hand.
  std::vector<int64_t> acked;
  RunWorkload(Env::Default(), dir, querylog::FsyncPolicy::kAlways, &acked);
  ASSERT_EQ(acked.size(), 12u);
  std::string wal_path = JoinPath(dir, "wal-3.log");
  auto size = Env::Default()->GetFileSize(wal_path);
  ASSERT_TRUE(size.ok());
  ASSERT_TRUE(Env::Default()->TruncateFile(wal_path, *size - 3).ok());

  // Crash recovery at every op it performs; then verify a final clean
  // recovery still yields a consistent prefix (the last append was torn
  // away by hand, so only 11 acked appends can be required).
  std::vector<int64_t> acked_minus_torn(acked.begin(), acked.end() - 1);
  for (int64_t op = 0;; ++op) {
    FaultInjectingEnv env(Env::Default());
    env.CrashAtOp(op);
    Database db;
    QueryLog log;
    auto store = DurableStore::Open(&env, dir, &db, &log, Ts(1));
    bool fired = env.crashed();
    if (store.ok()) {
      // Ops beyond this recovery's schedule: the sweep is done.
      ASSERT_FALSE(fired);
      break;
    }
    CheckRecovered(dir, acked_minus_torn, /*require_acked=*/true,
                   "recovery crash op " + std::to_string(op));
  }
}

}  // namespace
}  // namespace io
}  // namespace auditdb
