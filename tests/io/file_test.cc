#include "src/io/file.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

namespace auditdb {
namespace io {
namespace {

/// Fresh scratch directory under the gtest temp root.
std::string ScratchDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "auditdb_file_test_" + name;
  Env* env = Env::Default();
  if (env->FileExists(dir)) {
    auto names = env->ListDir(dir);
    if (names.ok()) {
      for (const auto& entry : *names) {
        env->DeleteFile(JoinPath(dir, entry));
      }
    }
  }
  EXPECT_TRUE(env->CreateDirIfMissing(dir).ok());
  return dir;
}

TEST(PosixEnvTest, WriteSyncReadRoundTrip) {
  Env* env = Env::Default();
  std::string dir = ScratchDir("roundtrip");
  std::string path = JoinPath(dir, "data");

  auto file = env->NewWritableFile(path, /*truncate=*/true);
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  ASSERT_TRUE((*file)->Append("hello ").ok());
  ASSERT_TRUE((*file)->Append("world").ok());
  ASSERT_TRUE((*file)->Sync().ok());
  ASSERT_TRUE((*file)->Close().ok());

  auto text = env->ReadFileToString(path);
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(*text, "hello world");
  auto size = env->GetFileSize(path);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 11u);

  // Reopen without truncation appends.
  file = env->NewWritableFile(path, /*truncate=*/false);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("!").ok());
  ASSERT_TRUE((*file)->Close().ok());
  EXPECT_EQ(*env->ReadFileToString(path), "hello world!");
}

TEST(PosixEnvTest, MissingFilesAreNotFound) {
  Env* env = Env::Default();
  std::string path = ::testing::TempDir() + "auditdb_no_such_file";
  EXPECT_FALSE(env->FileExists(path));
  EXPECT_EQ(env->ReadFileToString(path).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(env->NewSequentialFile(path).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(env->GetFileSize(path).status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(env->DeleteFile(path).ok());
}

TEST(PosixEnvTest, RenameDeleteTruncateList) {
  Env* env = Env::Default();
  std::string dir = ScratchDir("ops");
  std::string a = JoinPath(dir, "a");
  std::string b = JoinPath(dir, "b");
  ASSERT_TRUE(AtomicWriteFile(env, a, "0123456789").ok());
  ASSERT_TRUE(env->RenameFile(a, b).ok());
  EXPECT_FALSE(env->FileExists(a));
  EXPECT_TRUE(env->FileExists(b));
  ASSERT_TRUE(env->TruncateFile(b, 4).ok());
  EXPECT_EQ(*env->ReadFileToString(b), "0123");
  auto names = env->ListDir(dir);
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names->size(), 1u);
  EXPECT_EQ((*names)[0], "b");
  ASSERT_TRUE(env->DeleteFile(b).ok());
  EXPECT_TRUE(env->ListDir(dir)->empty());
}

TEST(JoinPathTest, ExactlyOneSeparator) {
  EXPECT_EQ(JoinPath("a", "b"), "a/b");
  EXPECT_EQ(JoinPath("a/", "b"), "a/b");
  EXPECT_EQ(JoinPath("", "b"), "b");
}

TEST(AtomicWriteFileTest, ReplacesAndLeavesNoTemp) {
  Env* env = Env::Default();
  std::string dir = ScratchDir("atomic");
  std::string path = JoinPath(dir, "target");
  ASSERT_TRUE(AtomicWriteFile(env, path, "first").ok());
  EXPECT_EQ(*env->ReadFileToString(path), "first");
  ASSERT_TRUE(AtomicWriteFile(env, path, "second").ok());
  EXPECT_EQ(*env->ReadFileToString(path), "second");
  EXPECT_FALSE(env->FileExists(path + ".tmp"));
}

// The core atomicity contract: whatever single op fails (ENOSPC-style
// short write, failed sync, failed rename), the destination holds
// either the complete old contents or the complete new contents —
// never a mix, never a truncation.
TEST(AtomicWriteFileTest, EveryInjectedFaultLeavesOldOrNewContents) {
  std::string dir = ScratchDir("atomic_faults");
  std::string path = JoinPath(dir, "target");
  const std::string old_contents = "the old contents, fsynced";
  const std::string new_contents = "replacement that must land atomically";

  FaultInjectingEnv probe(Env::Default());
  ASSERT_TRUE(AtomicWriteFile(&probe, path, old_contents).ok());
  probe.Reset();
  ASSERT_TRUE(AtomicWriteFile(&probe, path, new_contents).ok());
  const int64_t schedule = probe.ops_recorded();
  ASSERT_GT(schedule, 0);

  for (int64_t op = 0; op < schedule; ++op) {
    for (size_t partial : {size_t{0}, size_t{5}}) {
      FaultInjectingEnv env(Env::Default());
      ASSERT_TRUE(AtomicWriteFile(&env, path, old_contents).ok());
      env.Reset();
      env.FailAtOp(op, partial);
      Status wrote = AtomicWriteFile(&env, path, new_contents);
      auto contents = env.ReadFileToString(path);
      ASSERT_TRUE(contents.ok());
      if (wrote.ok()) {
        // The fault hit cleanup (e.g. directory sync reported late) or
        // was absorbed; the new contents must be complete.
        EXPECT_TRUE(*contents == new_contents || *contents == old_contents)
            << "op " << op;
      } else {
        EXPECT_EQ(*contents, old_contents)
            << "op " << op << " partial " << partial
            << ": failed write must leave the old file intact";
      }
    }
  }
}

TEST(FaultInjectingEnvTest, FailShortWritesThenKeepsRunning) {
  std::string dir = ScratchDir("fail_mode");
  std::string path = JoinPath(dir, "f");
  FaultInjectingEnv env(Env::Default());
  auto file = env.NewWritableFile(path, true);
  ASSERT_TRUE(file.ok());
  env.FailAtOp(0, /*partial_bytes=*/3, "disk full");
  Status failed = (*file)->Append("0123456789");
  EXPECT_FALSE(failed.ok());
  EXPECT_NE(failed.message().find("disk full"), std::string::npos);
  // Short write applied 3 bytes; the env survives and later ops work.
  EXPECT_FALSE(env.crashed());
  ASSERT_TRUE((*file)->Append("AB").ok());
  ASSERT_TRUE((*file)->Sync().ok());
  EXPECT_EQ(*env.ReadFileToString(path), "012AB");
}

TEST(FaultInjectingEnvTest, CrashStopsAllLaterOps) {
  std::string dir = ScratchDir("crash_mode");
  std::string path = JoinPath(dir, "f");
  FaultInjectingEnv env(Env::Default());
  auto file = env.NewWritableFile(path, true);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("keep").ok());
  env.CrashAtOp(1, /*partial_bytes=*/2);
  EXPECT_FALSE((*file)->Append("dropped-but-prefix").ok());
  EXPECT_TRUE(env.crashed());
  // Every subsequent operation fails; nothing else mutates.
  EXPECT_FALSE((*file)->Append("x").ok());
  EXPECT_FALSE((*file)->Sync().ok());
  EXPECT_FALSE(env.RenameFile(path, path + "2").ok());
  EXPECT_FALSE(env.DeleteFile(path).ok());
  EXPECT_FALSE(env.NewWritableFile(path + "3", true).ok());
  EXPECT_EQ(*env.ReadFileToString(path), "keepdr");
}

TEST(FaultInjectingEnvTest, DropUnsyncedModelsPageCacheLoss) {
  std::string dir = ScratchDir("drop_unsynced");
  std::string path = JoinPath(dir, "f");
  FaultInjectingEnv env(Env::Default());
  auto file = env.NewWritableFile(path, true);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("synced|").ok());
  ASSERT_TRUE((*file)->Sync().ok());
  ASSERT_TRUE((*file)->Append("in-page-cache").ok());
  // Crash on the next op with page-cache loss: everything after the
  // last successful Sync is torn away.
  env.CrashAtOp(3, 0, /*drop_unsynced=*/true);
  EXPECT_FALSE((*file)->Append("never").ok());
  EXPECT_EQ(*env.ReadFileToString(path), "synced|");
}

TEST(FaultInjectingEnvTest, RenameTransfersSyncedState) {
  std::string dir = ScratchDir("rename_sync");
  std::string from = JoinPath(dir, "from");
  std::string to = JoinPath(dir, "to");
  FaultInjectingEnv env(Env::Default());
  {
    auto file = env.NewWritableFile(from, true);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append("durable").ok());
    ASSERT_TRUE((*file)->Sync().ok());
    ASSERT_TRUE((*file)->Close().ok());
  }
  ASSERT_TRUE(env.RenameFile(from, to).ok());
  // A crash with page-cache loss must not tear the renamed file below
  // its synced size.
  env.CrashAtOp(env.ops_recorded(), 0, /*drop_unsynced=*/true);
  auto file = env.NewWritableFile(JoinPath(dir, "other"), true);
  ASSERT_TRUE(file.ok());
  EXPECT_FALSE((*file)->Append("x").ok());
  EXPECT_EQ(*env.ReadFileToString(to), "durable");
}

}  // namespace
}  // namespace io
}  // namespace auditdb
