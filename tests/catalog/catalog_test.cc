#include "src/catalog/catalog.h"

#include <gtest/gtest.h>

namespace auditdb {
namespace {

TableSchema PatientsSchema() {
  return TableSchema("Patients", {{"pid", ValueType::kString},
                                  {"name", ValueType::kString},
                                  {"age", ValueType::kInt}});
}

TableSchema VisitsSchema() {
  return TableSchema("Visits", {{"pid", ValueType::kString},
                                {"disease", ValueType::kString}});
}

TEST(SchemaTest, FindColumn) {
  TableSchema schema = PatientsSchema();
  EXPECT_EQ(schema.FindColumn("pid"), 0u);
  EXPECT_EQ(schema.FindColumn("age"), 2u);
  EXPECT_FALSE(schema.FindColumn("salary").has_value());
  EXPECT_EQ(schema.num_columns(), 3u);
}

TEST(SchemaTest, ToString) {
  EXPECT_EQ(VisitsSchema().ToString(),
            "Visits(pid STRING, disease STRING)");
}

TEST(ColumnRefTest, Formatting) {
  EXPECT_EQ((ColumnRef{"T", "c"}).ToString(), "T.c");
  EXPECT_EQ((ColumnRef{"", "c"}).ToString(), "c");
  EXPECT_TRUE((ColumnRef{"T", "c"}).qualified());
  EXPECT_FALSE((ColumnRef{"", "c"}).qualified());
}

TEST(ColumnRefTest, Ordering) {
  ColumnRef a{"A", "x"}, b{"B", "a"}, c{"A", "y"};
  EXPECT_LT(a, b);
  EXPECT_LT(a, c);
  EXPECT_EQ(a, (ColumnRef{"A", "x"}));
}

class CatalogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(catalog_.AddTable(PatientsSchema()).ok());
    ASSERT_TRUE(catalog_.AddTable(VisitsSchema()).ok());
  }
  Catalog catalog_;
};

TEST_F(CatalogTest, DuplicateTableRejected) {
  EXPECT_EQ(catalog_.AddTable(PatientsSchema()).code(),
            StatusCode::kAlreadyExists);
}

TEST_F(CatalogTest, GetTable) {
  auto t = catalog_.GetTable("Patients");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->name(), "Patients");
  EXPECT_FALSE(catalog_.GetTable("Nope").ok());
}

TEST_F(CatalogTest, ResolveQualified) {
  auto ref = catalog_.Resolve(ColumnRef{"Patients", "name"}, {"Patients"});
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ(ref->ToString(), "Patients.name");
}

TEST_F(CatalogTest, ResolveQualifiedOutOfScope) {
  auto ref = catalog_.Resolve(ColumnRef{"Patients", "name"}, {"Visits"});
  EXPECT_FALSE(ref.ok());
}

TEST_F(CatalogTest, ResolveUnqualifiedUnique) {
  auto ref = catalog_.Resolve(ColumnRef{"", "disease"},
                              {"Patients", "Visits"});
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ(ref->table, "Visits");
}

TEST_F(CatalogTest, ResolveUnqualifiedAmbiguous) {
  auto ref = catalog_.Resolve(ColumnRef{"", "pid"}, {"Patients", "Visits"});
  EXPECT_FALSE(ref.ok());
  EXPECT_EQ(ref.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(CatalogTest, ResolveUnqualifiedMissing) {
  auto ref = catalog_.Resolve(ColumnRef{"", "salary"},
                              {"Patients", "Visits"});
  EXPECT_EQ(ref.status().code(), StatusCode::kNotFound);
}

TEST_F(CatalogTest, ResolveMissingColumnInNamedTable) {
  auto ref = catalog_.Resolve(ColumnRef{"Visits", "age"}, {"Visits"});
  EXPECT_EQ(ref.status().code(), StatusCode::kNotFound);
}

TEST_F(CatalogTest, TypeOf) {
  auto type = catalog_.TypeOf(ColumnRef{"Patients", "age"});
  ASSERT_TRUE(type.ok());
  EXPECT_EQ(*type, ValueType::kInt);
  EXPECT_FALSE(catalog_.TypeOf(ColumnRef{"Patients", "nope"}).ok());
}

TEST_F(CatalogTest, TableNamesSorted) {
  EXPECT_EQ(catalog_.TableNames(),
            (std::vector<std::string>{"Patients", "Visits"}));
}

}  // namespace
}  // namespace auditdb
