#ifndef AUDITDB_EXPR_PREDICATE_PROGRAM_H_
#define AUDITDB_EXPR_PREDICATE_PROGRAM_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/expr/expression.h"
#include "src/types/column_vector.h"

namespace auditdb {

/// A bound predicate flattened into a linear register program evaluated
/// batch-at-a-time over a columnar Batch with a selection vector, instead
/// of recursively interpreting the expression tree per row.
///
/// Semantics are byte-identical to the tree-walking evaluator
/// (EvaluatePredicate): both call the same scalar kernels, AND/OR
/// short-circuiting is reproduced by narrowing the selection before the
/// right operand runs (so a cell the interpreter would never evaluate is
/// never evaluated here either), and a row whose evaluation errors
/// reports the interpreter's exact Status for that row. Conjunctions of
/// `col op literal` / `col op col` comparisons compile to fused filter
/// instructions that run tight typed loops over the column arrays — the
/// scan hot path; everything else lowers to a general register form that
/// is still batch-amortized.
class PredicateProgram {
 public:
  /// Per-row outcome of running the program over a selection: rows that
  /// passed, and rows whose evaluation errored, with the interpreter's
  /// status. Rows in neither list failed the predicate. Both lists are
  /// ascending by row.
  struct Outcome {
    std::vector<uint32_t> passed;
    std::vector<std::pair<uint32_t, Status>> errors;
  };

  /// Selection-bitmap form of Outcome: the passing rows as a compressed
  /// row bitmap (row index as tid) instead of a selection vector. Rows
  /// pass/error exactly as in Outcome; the bitmap iterates ascending, so
  /// the two forms are interconvertible without reordering.
  struct BitmapOutcome {
    TidBitmap passed;
    std::vector<std::pair<uint32_t, Status>> errors;
  };

  /// True iff every column reference in `expr` is bound to a slot in
  /// [slot_offset, slot_offset + width) — i.e. the predicate reads only
  /// this table's columns and can be compiled for its batches.
  static bool IsLocal(const Expression& expr, size_t slot_offset,
                      size_t width);

  /// Compiles bound `expr`; column slots are rebased so that slot
  /// `slot_offset + c` reads batch column c. Fails if a column is
  /// unbound or out of range (see IsLocal).
  static Result<PredicateProgram> Compile(const Expression& expr,
                                          size_t slot_offset, size_t width);

  /// Evaluates the program for the rows in `sel` (ascending indices into
  /// `batch`). Cells outside `sel` are never touched.
  Outcome Run(const Batch& batch, const std::vector<uint32_t>& sel) const;

  /// Same evaluation as Run, emitting the selection bitmap directly:
  /// the narrowed row set is appended bit-by-bit in ascending order
  /// (O(1) per row), never materializing a second selection vector for
  /// the caller. Pairs with engine/table_scan's bitmap<->vector
  /// conversions at chunk boundaries.
  BitmapOutcome RunToBitmap(const Batch& batch,
                            const std::vector<uint32_t>& sel) const;

  /// True when the program compiled entirely to fused filter
  /// instructions (the vectorized hot path).
  bool pure_filter() const { return pure_filter_; }
  size_t num_instructions() const { return instrs_.size(); }

  /// Readable disassembly (tests / debugging).
  std::string ToString() const;

 private:
  enum class OpCode : uint8_t {
    // Fused filters: narrow the selection directly from column arrays.
    kFilterCmpColConst,  // col(a) bop literal
    kFilterCmpColCol,    // col(a) bop col(b)
    kFilterLikeColConst, // col(a) LIKE literal
    // General register form.
    kLoadColumn,   // reg[dst] = column a
    kLoadConst,    // reg[dst] = literal (scalar)
    kCompare,      // reg[dst] = cmp(reg[a], reg[b])
    kLike,         // reg[dst] = reg[a] LIKE reg[b]
    kArith,        // reg[dst] = reg[a] bop reg[b]
    kUnary,        // reg[dst] = uop reg[a]
    kAndProbe,     // push sel narrowed to rows where reg[a] is TRUE
    kOrProbe,      // push sel narrowed to rows where reg[a] is FALSE
    kPopMergeAnd,  // reg[dst] = reg[a] ? reg[b] : FALSE; pop
    kPopMergeOr,   // reg[dst] = reg[a] ? TRUE : reg[b]; pop
    kFilterResult, // narrow sel to rows where reg[a] is TRUE
  };

  struct Instr {
    OpCode op;
    int a = -1;    // register, or column index for fused/load ops
    int b = -1;    // register, or second column for kFilterCmpColCol
    int dst = -1;  // destination register
    BinaryOp bop = BinaryOp::kAnd;
    UnaryOp uop = UnaryOp::kNot;
    /// kFilterCmpColConst compiled from `literal op col`: the comparison
    /// was flipped to put the column on the left, so the scalar fallback
    /// must restore the source operand order (error statuses name the
    /// operand types in that order).
    bool flipped = false;
    Value literal;
  };

  struct Compiler;
  struct Machine;

  std::vector<Instr> instrs_;
  int num_regs_ = 0;
  bool pure_filter_ = false;
};

}  // namespace auditdb

#endif  // AUDITDB_EXPR_PREDICATE_PROGRAM_H_
