#include "src/expr/constraints.h"

#include "src/expr/analysis.h"
#include "src/expr/evaluator.h"

namespace auditdb {

int ColumnUnionFind::Find(const ColumnRef& ref) {
  auto it = ids_.find(ref);
  if (it == ids_.end()) {
    int id = static_cast<int>(parent_.size());
    ids_.emplace(ref, id);
    parent_.push_back(id);
    return id;
  }
  return Root(it->second);
}

int ColumnUnionFind::FindIfKnown(const ColumnRef& ref) const {
  auto it = ids_.find(ref);
  if (it == ids_.end()) return -1;
  return RootConst(it->second);
}

void ColumnUnionFind::Union(const ColumnRef& a, const ColumnRef& b) {
  int ra = Find(a), rb = Find(b);
  if (ra != rb) parent_[ra] = rb;
}

int ColumnUnionFind::Root(int id) {
  while (parent_[id] != id) {
    parent_[id] = parent_[parent_[id]];
    id = parent_[id];
  }
  return id;
}

int ColumnUnionFind::RootConst(int id) const {
  while (parent_[id] != id) id = parent_[id];
  return id;
}

void ConstraintSet::AddLower(const Value& v, bool strict) {
  if (!lower.has_value()) {
    lower = Bound{v, strict};
    return;
  }
  auto cmp = v.Compare(lower->value);
  if (!cmp.ok()) return;  // incomparable types: stay conservative
  if (*cmp > 0 || (*cmp == 0 && strict && !lower->strict)) {
    lower = Bound{v, strict};
  }
}

void ConstraintSet::AddUpper(const Value& v, bool strict) {
  if (!upper.has_value()) {
    upper = Bound{v, strict};
    return;
  }
  auto cmp = v.Compare(upper->value);
  if (!cmp.ok()) return;
  if (*cmp < 0 || (*cmp == 0 && strict && !upper->strict)) {
    upper = Bound{v, strict};
  }
}

bool ConstraintSet::ProvablyEmpty() const {
  if (!lower.has_value() || !upper.has_value()) return false;
  auto cmp = lower->value.Compare(upper->value);
  if (!cmp.ok()) return false;
  if (*cmp > 0) return true;
  if (*cmp == 0) {
    if (lower->strict || upper->strict) return true;
    // Pinned to a single value: check disequalities against it.
    for (const auto& ne : not_equal) {
      auto c2 = ne.Compare(lower->value);
      if (c2.ok() && *c2 == 0) return true;
    }
  }
  return false;
}

bool ConstraintSet::Implies(BinaryOp op, const Value& lit) const {
  // Pinned value: evaluate the atom directly.
  if (lower.has_value() && upper.has_value() && !lower->strict &&
      !upper->strict) {
    auto pin = lower->value.Compare(upper->value);
    if (pin.ok() && *pin == 0) {
      auto cmp = lower->value.Compare(lit);
      if (cmp.ok()) {
        switch (op) {
          case BinaryOp::kEq:
            return *cmp == 0;
          case BinaryOp::kNe:
            return *cmp != 0;
          case BinaryOp::kLt:
            return *cmp < 0;
          case BinaryOp::kLe:
            return *cmp <= 0;
          case BinaryOp::kGt:
            return *cmp > 0;
          case BinaryOp::kGe:
            return *cmp >= 0;
          default:
            return false;
        }
      }
    }
  }
  switch (op) {
    case BinaryOp::kLe:
      // x <= lit follows from upper <= lit.
      if (upper.has_value()) {
        auto cmp = upper->value.Compare(lit);
        return cmp.ok() && *cmp <= 0;
      }
      return false;
    case BinaryOp::kLt:
      // x < lit follows from a strict upper <= lit or any upper < lit.
      if (upper.has_value()) {
        auto cmp = upper->value.Compare(lit);
        return cmp.ok() && (*cmp < 0 || (*cmp == 0 && upper->strict));
      }
      return false;
    case BinaryOp::kGe:
      if (lower.has_value()) {
        auto cmp = lower->value.Compare(lit);
        return cmp.ok() && *cmp >= 0;
      }
      return false;
    case BinaryOp::kGt:
      if (lower.has_value()) {
        auto cmp = lower->value.Compare(lit);
        return cmp.ok() && (*cmp > 0 || (*cmp == 0 && lower->strict));
      }
      return false;
    case BinaryOp::kNe: {
      // x <> lit follows when lit lies outside the range, or from a
      // recorded disequality on exactly lit.
      for (const auto& ne : not_equal) {
        auto cmp = ne.Compare(lit);
        if (cmp.ok() && *cmp == 0) return true;
      }
      if (upper.has_value()) {
        auto cmp = upper->value.Compare(lit);
        if (cmp.ok() && (*cmp < 0 || (*cmp == 0 && upper->strict))) {
          return true;
        }
      }
      if (lower.has_value()) {
        auto cmp = lower->value.Compare(lit);
        if (cmp.ok() && (*cmp > 0 || (*cmp == 0 && lower->strict))) {
          return true;
        }
      }
      return false;
    }
    case BinaryOp::kEq:
      return false;  // only a pinned value implies equality (handled above)
    default:
      return false;
  }
}

namespace {

bool IsColEqCol(const Expression& e, ColumnRef* l, ColumnRef* r) {
  if (e.kind != ExprKind::kBinary || e.bop != BinaryOp::kEq) return false;
  if (e.left->kind != ExprKind::kColumn ||
      e.right->kind != ExprKind::kColumn) {
    return false;
  }
  *l = e.left->column;
  *r = e.right->column;
  return true;
}

}  // namespace

PredicateAnalysis::PredicateAnalysis(
    const std::vector<const Expression*>& predicates) {
  std::vector<const Expression*> atoms;
  for (const Expression* p : predicates) {
    for (const Expression* c : SplitConjuncts(p)) atoms.push_back(c);
  }
  // Pass 1: equality classes.
  for (const Expression* atom : atoms) {
    ColumnRef l, r;
    if (IsColEqCol(*atom, &l, &r)) uf_.Union(l, r);
  }
  // Pass 2: everything else.
  for (const Expression* atom : atoms) {
    ProcessAtom(*atom);
    if (provably_empty_) return;
  }
  for (const auto& [cls, cs] : constraints_) {
    if (cs.ProvablyEmpty()) {
      provably_empty_ = true;
      return;
    }
  }
}

void PredicateAnalysis::ProcessAtom(const Expression& atom) {
  // Constant comparison: evaluate outright.
  if (atom.kind == ExprKind::kBinary && IsComparison(atom.bop) &&
      atom.left->kind == ExprKind::kLiteral &&
      atom.right->kind == ExprKind::kLiteral) {
    auto v = Evaluate(atom, {});
    if (v.ok() && v->type() == ValueType::kBool && !v->bool_value()) {
      provably_empty_ = true;
    }
    return;
  }

  // Column-column comparisons within one class: x <> x etc.
  if (atom.kind == ExprKind::kBinary && IsComparison(atom.bop) &&
      atom.left->kind == ExprKind::kColumn &&
      atom.right->kind == ExprKind::kColumn) {
    int l = uf_.Find(atom.left->column);
    int r = uf_.Find(atom.right->column);
    if (l == r &&
        (atom.bop == BinaryOp::kNe || atom.bop == BinaryOp::kLt ||
         atom.bop == BinaryOp::kGt)) {
      provably_empty_ = true;
    }
    return;
  }

  // col op literal.
  ColumnRef col;
  BinaryOp op;
  Value lit;
  if (IsColumnLiteralComparison(atom, &col, &op, &lit)) {
    ConstraintSet& cs = constraints_[uf_.Find(col)];
    switch (op) {
      case BinaryOp::kEq:
        cs.AddLower(lit, false);
        cs.AddUpper(lit, false);
        break;
      case BinaryOp::kNe:
        cs.not_equal.push_back(lit);
        break;
      case BinaryOp::kLt:
        cs.AddUpper(lit, true);
        break;
      case BinaryOp::kLe:
        cs.AddUpper(lit, false);
        break;
      case BinaryOp::kGt:
        cs.AddLower(lit, true);
        break;
      case BinaryOp::kGe:
        cs.AddLower(lit, false);
        break;
      default:
        break;
    }
    if (cs.ProvablyEmpty()) provably_empty_ = true;
    return;
  }
  // Anything else (OR, NOT, arithmetic) is opaque: ignored, which only
  // weakens the analyzed predicate — sound for both uses.
}

bool PredicateAnalysis::Implies(const ColumnRef& col, BinaryOp op,
                                const Value& lit) const {
  int cls = uf_.FindIfKnown(col);
  if (cls < 0) return false;
  auto it = constraints_.find(cls);
  if (it == constraints_.end()) return false;
  return it->second.Implies(op, lit);
}

bool PredicateAnalysis::SameClass(const ColumnRef& a,
                                  const ColumnRef& b) const {
  if (a == b) return true;
  int ca = uf_.FindIfKnown(a);
  int cb = uf_.FindIfKnown(b);
  return ca >= 0 && ca == cb;
}

}  // namespace auditdb
