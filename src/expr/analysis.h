#ifndef AUDITDB_EXPR_ANALYSIS_H_
#define AUDITDB_EXPR_ANALYSIS_H_

#include <set>
#include <string>
#include <vector>

#include "src/catalog/catalog.h"
#include "src/expr/expression.h"

namespace auditdb {

/// All column references appearing in `expr` (nullptr → empty).
std::set<ColumnRef> CollectColumns(const Expression* expr);

/// Top-level AND-connected conjuncts of `expr`. A non-AND root is a single
/// conjunct; nullptr yields an empty list.
std::vector<const Expression*> SplitConjuncts(const Expression* expr);

/// Resolves every column reference in `expr` to its fully qualified form
/// against `catalog` limited to the FROM-clause `scope`, and checks that
/// referenced tables/columns exist.
Status QualifyColumns(Expression* expr, const Catalog& catalog,
                      const std::vector<std::string>& scope);

/// If `conjunct` is `col = col` across two different tables, fills the two
/// sides and returns true.
bool IsEquiJoin(const Expression& conjunct, ColumnRef* lhs, ColumnRef* rhs);

/// If `conjunct` is `col op literal` (either orientation), returns true and
/// fills the normalized column-on-the-left form.
bool IsColumnLiteralComparison(const Expression& conjunct, ColumnRef* col,
                               BinaryOp* op, Value* literal);

}  // namespace auditdb

#endif  // AUDITDB_EXPR_ANALYSIS_H_
