#ifndef AUDITDB_EXPR_SATISFIABILITY_H_
#define AUDITDB_EXPR_SATISFIABILITY_H_

#include <vector>

#include "src/expr/expression.h"

namespace auditdb {

/// Conservative satisfiability test for the conjunction of the given
/// predicates (each may itself be a conjunction; nullptr entries mean TRUE).
///
/// Used by the data-independent phase of auditing (Definition 1, candidate
/// query): a logged query whose WHERE clause provably conflicts with the
/// audit expression's WHERE clause cannot share an indispensable tuple with
/// it and is discarded without touching the database.
///
/// The test reasons over atoms of the forms `col op literal` and
/// `col = col` (equality classes via union-find, bounds/disequalities
/// propagated per class) and constant comparisons. Anything it cannot
/// analyze (ORs, arithmetic, cross-class inequalities) is treated as
/// satisfiable, so `false` is a proof of emptiness while `true` is merely
/// "not provably empty".
bool MaybeSatisfiable(const std::vector<const Expression*>& predicates);

/// Convenience overload for two predicates (query WHERE ∧ audit WHERE).
bool MaybeSatisfiable(const Expression* a, const Expression* b);

}  // namespace auditdb

#endif  // AUDITDB_EXPR_SATISFIABILITY_H_
