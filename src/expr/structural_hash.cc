#include "src/expr/structural_hash.h"

#include <functional>

#include "src/common/hashing.h"

namespace auditdb {

namespace {

// Per-node-kind salts keep e.g. a literal 0 distinguishable from an
// absent subtree and a unary node from a binary one with one child.
constexpr uint64_t kNullNode = 0x9ae16a3b2f90404fULL;
constexpr uint64_t kLiteralNode = 0xc3a5c85c97cb3127ULL;
constexpr uint64_t kColumnNode = 0xb492b66fbe98f273ULL;
constexpr uint64_t kUnaryNode = 0x9ddfea08eb382d69ULL;
constexpr uint64_t kBinaryNode = 0xa0761d6478bd642fULL;

}  // namespace

uint64_t HashValue(uint64_t seed, const Value& value) {
  seed = HashCombine(seed, static_cast<uint64_t>(value.type()));
  // Value::Hash() is consistent with operator==, which is exactly the
  // equivalence literals need here.
  return HashCombine(seed, value.Hash());
}

uint64_t HashExpression(uint64_t seed, const Expression* expr) {
  if (expr == nullptr) return HashCombine(seed, kNullNode);
  switch (expr->kind) {
    case ExprKind::kLiteral:
      return HashValue(HashCombine(seed, kLiteralNode), expr->literal);
    case ExprKind::kColumn: {
      // Names only — the binder's slot is a positional artifact of one
      // particular FROM list and must not affect the hash.
      std::hash<std::string> h;
      seed = HashCombine(seed, kColumnNode);
      seed = HashCombine(seed, h(expr->column.table));
      return HashCombine(seed, h(expr->column.column));
    }
    case ExprKind::kUnary:
      seed = HashCombine(seed, kUnaryNode);
      seed = HashCombine(seed, static_cast<uint64_t>(expr->uop));
      return HashExpression(seed, expr->left.get());
    case ExprKind::kBinary:
      seed = HashCombine(seed, kBinaryNode);
      seed = HashCombine(seed, static_cast<uint64_t>(expr->bop));
      seed = HashExpression(seed, expr->left.get());
      return HashExpression(seed, expr->right.get());
  }
  return seed;
}

uint64_t StructuralHash(const Expression& expr) {
  return HashExpression(0x2b992ddfa23249d6ULL, &expr);
}

}  // namespace auditdb
