#ifndef AUDITDB_EXPR_EVALUATOR_H_
#define AUDITDB_EXPR_EVALUATOR_H_

#include <map>
#include <string>
#include <vector>

#include "src/catalog/schema.h"
#include "src/common/status.h"
#include "src/expr/expression.h"
#include "src/types/value.h"

namespace auditdb {

/// Maps fully qualified column references to flat indices into a combined
/// row (the concatenation of one row from each FROM-clause table, in the
/// order the tables were added). The executor materializes combined rows
/// in this layout and evaluates bound expressions against them.
class RowLayout {
 public:
  RowLayout() = default;

  /// Appends all columns of `schema` under table name `table`.
  void AddTable(const std::string& table, const TableSchema& schema);

  /// Flat slot of a fully qualified column, or error.
  Result<int> Slot(const ColumnRef& ref) const;

  /// Total number of value slots.
  size_t width() const { return width_; }

  /// Tables in layout order with their starting offsets.
  const std::vector<std::pair<std::string, size_t>>& table_offsets() const {
    return table_offsets_;
  }

  /// The fully qualified column occupying each slot, in slot order.
  const std::vector<ColumnRef>& slot_columns() const { return slot_columns_; }

 private:
  std::map<std::string, int> slots_;  // "table.column" -> index
  std::vector<std::pair<std::string, size_t>> table_offsets_;
  std::vector<ColumnRef> slot_columns_;
  size_t width_ = 0;
};

/// Resolves every column node in `expr` to a slot in `layout`. All column
/// references must already be fully qualified (see Catalog::Resolve).
Status BindExpression(Expression* expr, const RowLayout& layout);

/// Evaluates a bound expression against a combined row. AND/OR shortcut;
/// comparisons use Value::Compare (numeric cross-type allowed).
Result<Value> Evaluate(const Expression& expr, const std::vector<Value>& row);

/// Evaluates a bound boolean predicate; nullptr predicate means TRUE.
Result<bool> EvaluatePredicate(const Expression* expr,
                               const std::vector<Value>& row);

/// --- Scalar kernels ---------------------------------------------------
/// The single source of truth for operator semantics and error statuses,
/// shared by the tree-walking evaluator above and the compiled predicate
/// programs (src/expr/predicate_program.h). The batch path stays
/// byte-identical to the interpreter because both call exactly these.

/// SQL LIKE: `%` matches any run (including empty), `_` any one char.
bool LikeMatches(const std::string& text, const std::string& pattern);

/// =, <>, <, <=, >, >= via Value::Compare; NULL on either side is FALSE.
Result<Value> EvalComparisonOp(BinaryOp op, const Value& lhs,
                               const Value& rhs);

/// lhs LIKE rhs; NULL on either side is FALSE; non-strings are an error.
Result<Value> EvalLikeOp(const Value& lhs, const Value& rhs);

/// +, -, *, / with INT preserved for non-division all-INT inputs.
Result<Value> EvalArithmeticOp(BinaryOp op, const Value& lhs,
                               const Value& rhs);

/// NOT (boolean) / unary minus (numeric).
Result<Value> EvalUnaryOp(UnaryOp op, const Value& v);

}  // namespace auditdb

#endif  // AUDITDB_EXPR_EVALUATOR_H_
