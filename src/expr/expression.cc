#include "src/expr/expression.h"

namespace auditdb {

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "<>";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kOr:
      return "OR";
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kLike:
      return "LIKE";
  }
  return "?";
}

bool IsComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

BinaryOp FlipComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kLt:
      return BinaryOp::kGt;
    case BinaryOp::kLe:
      return BinaryOp::kGe;
    case BinaryOp::kGt:
      return BinaryOp::kLt;
    case BinaryOp::kGe:
      return BinaryOp::kLe;
    default:
      return op;  // = and <> are symmetric
  }
}

BinaryOp NegateComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
      return BinaryOp::kNe;
    case BinaryOp::kNe:
      return BinaryOp::kEq;
    case BinaryOp::kLt:
      return BinaryOp::kGe;
    case BinaryOp::kLe:
      return BinaryOp::kGt;
    case BinaryOp::kGt:
      return BinaryOp::kLe;
    case BinaryOp::kGe:
      return BinaryOp::kLt;
    default:
      return op;
  }
}

ExprPtr Expression::MakeLiteral(Value v) {
  auto e = std::make_unique<Expression>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprPtr Expression::MakeColumn(ColumnRef ref) {
  auto e = std::make_unique<Expression>();
  e->kind = ExprKind::kColumn;
  e->column = std::move(ref);
  return e;
}

ExprPtr Expression::MakeUnary(UnaryOp op, ExprPtr operand) {
  auto e = std::make_unique<Expression>();
  e->kind = ExprKind::kUnary;
  e->uop = op;
  e->left = std::move(operand);
  return e;
}

ExprPtr Expression::MakeBinary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expression>();
  e->kind = ExprKind::kBinary;
  e->bop = op;
  e->left = std::move(lhs);
  e->right = std::move(rhs);
  return e;
}

ExprPtr Expression::MakeComparison(ColumnRef ref, BinaryOp op, Value v) {
  return MakeBinary(op, MakeColumn(std::move(ref)),
                    MakeLiteral(std::move(v)));
}

ExprPtr Expression::MakeColumnEq(ColumnRef a, ColumnRef b) {
  return MakeBinary(BinaryOp::kEq, MakeColumn(std::move(a)),
                    MakeColumn(std::move(b)));
}

ExprPtr Expression::MakeConjunction(std::vector<ExprPtr> conjuncts) {
  ExprPtr out;
  for (auto& c : conjuncts) {
    if (!out) {
      out = std::move(c);
    } else {
      out = MakeBinary(BinaryOp::kAnd, std::move(out), std::move(c));
    }
  }
  return out;
}

ExprPtr Expression::Clone() const {
  auto e = std::make_unique<Expression>();
  e->kind = kind;
  e->literal = literal;
  e->column = column;
  e->slot = slot;
  e->uop = uop;
  e->bop = bop;
  if (left) e->left = left->Clone();
  if (right) e->right = right->Clone();
  return e;
}

bool Expression::Equals(const Expression& other) const {
  if (kind != other.kind) return false;
  switch (kind) {
    case ExprKind::kLiteral:
      return literal == other.literal;
    case ExprKind::kColumn:
      return column == other.column;
    case ExprKind::kUnary:
      return uop == other.uop && left->Equals(*other.left);
    case ExprKind::kBinary:
      return bop == other.bop && left->Equals(*other.left) &&
             right->Equals(*other.right);
  }
  return false;
}

std::string Expression::ToString() const {
  switch (kind) {
    case ExprKind::kLiteral:
      return literal.ToString();
    case ExprKind::kColumn:
      return column.ToString();
    case ExprKind::kUnary:
      if (uop == UnaryOp::kNot) return "NOT (" + left->ToString() + ")";
      return "-(" + left->ToString() + ")";
    case ExprKind::kBinary: {
      auto wrap = [](const Expression& e) {
        if (e.kind == ExprKind::kBinary &&
            (e.bop == BinaryOp::kAnd || e.bop == BinaryOp::kOr)) {
          return "(" + e.ToString() + ")";
        }
        return e.ToString();
      };
      if (bop == BinaryOp::kAnd || bop == BinaryOp::kOr) {
        return wrap(*left) + " " + BinaryOpName(bop) + " " + wrap(*right);
      }
      return left->ToString() + " " + BinaryOpName(bop) + " " +
             right->ToString();
    }
  }
  return "?";
}

}  // namespace auditdb
