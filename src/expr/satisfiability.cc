#include "src/expr/satisfiability.h"

#include "src/expr/constraints.h"

namespace auditdb {

bool MaybeSatisfiable(const std::vector<const Expression*>& predicates) {
  PredicateAnalysis analysis(predicates);
  return !analysis.ProvablyEmpty();
}

bool MaybeSatisfiable(const Expression* a, const Expression* b) {
  return MaybeSatisfiable(std::vector<const Expression*>{a, b});
}

}  // namespace auditdb
