#ifndef AUDITDB_EXPR_IMPLICATION_H_
#define AUDITDB_EXPR_IMPLICATION_H_

#include "src/expr/expression.h"

namespace auditdb {

/// Conservative implication test: true only when `premise` provably
/// implies `conclusion` (every tuple satisfying the premise satisfies the
/// conclusion); false means "could not prove", not "does not imply".
/// nullptr denotes TRUE on either side.
///
/// The proof engine handles conjunctions of atoms on both sides:
/// premise atoms feed a PredicateAnalysis (equality classes + ranges);
/// each conclusion conjunct must then be forced — a `col op literal`
/// atom by the class constraints, a `col = col` atom by class equality,
/// an OR by proving some disjunct, or any conjunct by being structurally
/// identical to a premise conjunct. Used for audit-expression
/// subsumption (one audit's target data provably contained in
/// another's).
bool ProvablyImplies(const Expression* premise, const Expression* conclusion);

}  // namespace auditdb

#endif  // AUDITDB_EXPR_IMPLICATION_H_
