#ifndef AUDITDB_EXPR_CONSTRAINTS_H_
#define AUDITDB_EXPR_CONSTRAINTS_H_

#include <map>
#include <optional>
#include <vector>

#include "src/expr/expression.h"

namespace auditdb {

/// Union-find over column references; equality conjuncts (`a = b`) merge
/// classes so bounds propagate across joins.
class ColumnUnionFind {
 public:
  /// Class id of `ref` (registering it if new).
  int Find(const ColumnRef& ref);
  /// Class id if `ref` is known, -1 otherwise (const lookup).
  int FindIfKnown(const ColumnRef& ref) const;
  void Union(const ColumnRef& a, const ColumnRef& b);

 private:
  int Root(int id);
  int RootConst(int id) const;

  std::map<ColumnRef, int> ids_;
  std::vector<int> parent_;
};

/// One-sided range bound.
struct Bound {
  Value value;
  bool strict = false;
};

/// Accumulated range / disequality constraints for one equality class.
struct ConstraintSet {
  std::optional<Bound> lower;
  std::optional<Bound> upper;
  std::vector<Value> not_equal;

  /// Tightens a bound (keeps the stronger of old and new).
  void AddLower(const Value& v, bool strict);
  void AddUpper(const Value& v, bool strict);

  /// Whether the accumulated constraints are provably unsatisfiable.
  bool ProvablyEmpty() const;

  /// Whether every value satisfying this set also satisfies `op lit`
  /// (e.g. upper <= 5 implies `x < 6`). Conservative: false when the
  /// types are incomparable or the bounds are insufficient.
  bool Implies(BinaryOp op, const Value& lit) const;
};

/// Conjunctive constraint analysis over one or more predicates: column
/// equality classes plus per-class range/disequality sets, the shared
/// machinery behind satisfiability (pruning) and implication
/// (subsumption) tests. Atoms it cannot analyze (ORs, arithmetic,
/// cross-class inequalities) are recorded as `opaque` and ignored —
/// which keeps emptiness *proofs* sound (ignoring a conjunct weakens the
/// predicate) and implication *proofs* sound for the same reason.
class PredicateAnalysis {
 public:
  /// Builds from the conjuncts of all predicates (nullptr entries = TRUE).
  explicit PredicateAnalysis(const std::vector<const Expression*>& predicates);

  /// A contradiction was found while building (x = 1 AND x = 2, constant
  /// falsehoods, x < x, ...), or some class is empty.
  bool ProvablyEmpty() const { return provably_empty_; }

  /// Whether the predicates provably force `col op lit`.
  bool Implies(const ColumnRef& col, BinaryOp op, const Value& lit) const;

  /// Whether a and b are provably equal (same equality class).
  bool SameClass(const ColumnRef& a, const ColumnRef& b) const;

 private:
  void ProcessAtom(const Expression& atom);

  ColumnUnionFind uf_;
  std::map<int, ConstraintSet> constraints_;
  bool provably_empty_ = false;
};

}  // namespace auditdb

#endif  // AUDITDB_EXPR_CONSTRAINTS_H_
