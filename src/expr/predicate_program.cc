#include "src/expr/predicate_program.h"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "src/expr/evaluator.h"

namespace auditdb {

namespace {

int Sign(double d) { return d < 0 ? -1 : (d > 0 ? 1 : 0); }

int CompareInt64(int64_t a, int64_t b) { return a < b ? -1 : (a > b ? 1 : 0); }

}  // namespace

// ---------------------------------------------------------------------------
// Compiler
// ---------------------------------------------------------------------------

struct PredicateProgram::Compiler {
  size_t offset;
  size_t width;
  std::vector<Instr> instrs;
  int next_reg = 0;

  /// Batch column index if `e` is a column bound inside the scan's slot
  /// range, else -1.
  int LocalCol(const Expression& e) const {
    if (e.kind != ExprKind::kColumn || e.slot < 0) return -1;
    size_t slot = static_cast<size_t>(e.slot);
    if (slot < offset || slot >= offset + width) return -1;
    return static_cast<int>(slot - offset);
  }

  static Instr Make(OpCode op, int a, int b, int dst) {
    Instr ins;
    ins.op = op;
    ins.a = a;
    ins.b = b;
    ins.dst = dst;
    return ins;
  }

  /// Fused path: a conjunction of `col op literal` / `col op col` /
  /// `col LIKE literal` comparisons compiles to pure filter instructions.
  /// Commits to `out` only when the whole subtree fits the shape.
  bool TryFilter(const Expression& e, std::vector<Instr>* out) const {
    if (e.kind != ExprKind::kBinary || !e.left || !e.right) return false;
    if (e.bop == BinaryOp::kAnd) {
      std::vector<Instr> lhs, rhs;
      if (!TryFilter(*e.left, &lhs) || !TryFilter(*e.right, &rhs)) {
        return false;
      }
      out->insert(out->end(), std::make_move_iterator(lhs.begin()),
                  std::make_move_iterator(lhs.end()));
      out->insert(out->end(), std::make_move_iterator(rhs.begin()),
                  std::make_move_iterator(rhs.end()));
      return true;
    }
    if (e.bop == BinaryOp::kLike) {
      int col = LocalCol(*e.left);
      if (col < 0 || e.right->kind != ExprKind::kLiteral) return false;
      Instr ins = Make(OpCode::kFilterLikeColConst, col, -1, -1);
      ins.literal = e.right->literal;
      out->push_back(std::move(ins));
      return true;
    }
    if (!IsComparison(e.bop)) return false;
    int lc = LocalCol(*e.left);
    int rc = LocalCol(*e.right);
    if (lc >= 0 && e.right->kind == ExprKind::kLiteral) {
      Instr ins = Make(OpCode::kFilterCmpColConst, lc, -1, -1);
      ins.bop = e.bop;
      ins.literal = e.right->literal;
      out->push_back(std::move(ins));
      return true;
    }
    if (rc >= 0 && e.left->kind == ExprKind::kLiteral) {
      // literal op col  ==  col flip(op) literal
      Instr ins = Make(OpCode::kFilterCmpColConst, rc, -1, -1);
      ins.bop = FlipComparison(e.bop);
      ins.flipped = true;
      ins.literal = e.left->literal;
      out->push_back(std::move(ins));
      return true;
    }
    if (lc >= 0 && rc >= 0) {
      Instr ins = Make(OpCode::kFilterCmpColCol, lc, rc, -1);
      ins.bop = e.bop;
      out->push_back(std::move(ins));
      return true;
    }
    return false;
  }

  /// General path: lowers any bound expression to register form. Returns
  /// the register holding the subexpression's value.
  Result<int> CompileValue(const Expression& e) {
    switch (e.kind) {
      case ExprKind::kLiteral: {
        int r = next_reg++;
        Instr ins = Make(OpCode::kLoadConst, -1, -1, r);
        ins.literal = e.literal;
        instrs.push_back(std::move(ins));
        return r;
      }
      case ExprKind::kColumn: {
        int col = LocalCol(e);
        if (col < 0) {
          return Status::InvalidArgument(
              "column " + e.column.ToString() +
              " is unbound or outside the scan's slot range");
        }
        int r = next_reg++;
        instrs.push_back(Make(OpCode::kLoadColumn, col, -1, r));
        return r;
      }
      case ExprKind::kUnary: {
        if (!e.left) return Status::Internal("unary without operand");
        auto a = CompileValue(*e.left);
        if (!a.ok()) return a.status();
        int r = next_reg++;
        Instr ins = Make(OpCode::kUnary, *a, -1, r);
        ins.uop = e.uop;
        instrs.push_back(std::move(ins));
        return r;
      }
      case ExprKind::kBinary: {
        if (!e.left || !e.right) {
          return Status::Internal("binary without operands");
        }
        if (e.bop == BinaryOp::kAnd || e.bop == BinaryOp::kOr) {
          bool is_and = e.bop == BinaryOp::kAnd;
          auto a = CompileValue(*e.left);
          if (!a.ok()) return a.status();
          instrs.push_back(Make(
              is_and ? OpCode::kAndProbe : OpCode::kOrProbe, *a, -1, -1));
          auto b = CompileValue(*e.right);
          if (!b.ok()) return b.status();
          int r = next_reg++;
          instrs.push_back(Make(
              is_and ? OpCode::kPopMergeAnd : OpCode::kPopMergeOr, *a, *b,
              r));
          return r;
        }
        auto a = CompileValue(*e.left);
        if (!a.ok()) return a.status();
        auto b = CompileValue(*e.right);
        if (!b.ok()) return b.status();
        int r = next_reg++;
        OpCode op = e.bop == BinaryOp::kLike ? OpCode::kLike
                    : IsComparison(e.bop)    ? OpCode::kCompare
                                             : OpCode::kArith;
        Instr ins = Make(op, *a, *b, r);
        ins.bop = e.bop;
        instrs.push_back(std::move(ins));
        return r;
      }
    }
    return Status::Internal("unknown expression kind");
  }
};

bool PredicateProgram::IsLocal(const Expression& expr, size_t slot_offset,
                               size_t width) {
  if (expr.kind == ExprKind::kColumn) {
    if (expr.slot < 0) return false;
    size_t slot = static_cast<size_t>(expr.slot);
    return slot >= slot_offset && slot < slot_offset + width;
  }
  if (expr.left && !IsLocal(*expr.left, slot_offset, width)) return false;
  if (expr.right && !IsLocal(*expr.right, slot_offset, width)) return false;
  return true;
}

Result<PredicateProgram> PredicateProgram::Compile(const Expression& expr,
                                                   size_t slot_offset,
                                                   size_t width) {
  Compiler c{slot_offset, width};
  PredicateProgram p;
  std::vector<Instr> fused;
  if (c.TryFilter(expr, &fused)) {
    p.instrs_ = std::move(fused);
    p.pure_filter_ = true;
    return p;
  }
  auto root = c.CompileValue(expr);
  if (!root.ok()) return root.status();
  c.instrs.push_back(Compiler::Make(OpCode::kFilterResult, *root, -1, -1));
  p.instrs_ = std::move(c.instrs);
  p.num_regs_ = c.next_reg;
  return p;
}

// ---------------------------------------------------------------------------
// Machine
// ---------------------------------------------------------------------------

struct PredicateProgram::Machine {
  const Batch& batch;
  /// Row id of each local index; the machine works in local coordinates
  /// so register arrays scale with the selection, not the batch.
  const std::vector<uint32_t>& rows;

  struct Reg {
    bool scalar = false;
    Value scalar_value;
    std::vector<Value> vec;
    const Value& At(size_t li) const {
      return scalar ? scalar_value : vec[li];
    }
  };

  std::vector<Reg> regs;
  std::vector<uint8_t> errored;  // by local index
  std::vector<std::pair<uint32_t, Status>> errors;  // by row id
  std::vector<std::vector<uint32_t>> stack;  // selections of local indices

  Machine(const Batch& b, const std::vector<uint32_t>& r) : batch(b), rows(r) {}

  void Error(uint32_t li, Status s) {
    errored[li] = 1;
    errors.emplace_back(rows[li], std::move(s));
  }

  /// The whole (scalar-operand) instruction errors: the interpreter would
  /// report the same status for every row it visits.
  void ErrorAll(const Status& s) {
    auto& sel = stack.back();
    for (uint32_t li : sel) {
      errored[li] = 1;
      errors.emplace_back(rows[li], s);
    }
    sel.clear();
  }

  template <typename KernelFn>
  void BinaryInstr(const Instr& ins, KernelFn kernel) {
    const Reg& ra = regs[static_cast<size_t>(ins.a)];
    const Reg& rb = regs[static_cast<size_t>(ins.b)];
    Reg& rd = regs[static_cast<size_t>(ins.dst)];
    if (ra.scalar && rb.scalar) {
      auto r = kernel(ra.scalar_value, rb.scalar_value);
      if (!r.ok()) {
        ErrorAll(r.status());
        return;
      }
      rd.scalar = true;
      rd.scalar_value = std::move(*r);
      return;
    }
    rd.scalar = false;
    rd.vec.assign(rows.size(), Value());
    auto& sel = stack.back();
    size_t w = 0;
    for (uint32_t li : sel) {
      auto r = kernel(ra.At(li), rb.At(li));
      if (!r.ok()) {
        Error(li, r.status());
        continue;
      }
      rd.vec[li] = std::move(*r);
      sel[w++] = li;
    }
    sel.resize(w);
  }

  void Exec(const Instr& ins) {
    switch (ins.op) {
      case OpCode::kLoadConst: {
        Reg& rd = regs[static_cast<size_t>(ins.dst)];
        rd.scalar = true;
        rd.scalar_value = ins.literal;
        return;
      }
      case OpCode::kLoadColumn: {
        Reg& rd = regs[static_cast<size_t>(ins.dst)];
        rd.scalar = false;
        rd.vec.assign(rows.size(), Value());
        const ColumnVector& col = batch.column(static_cast<size_t>(ins.a));
        for (uint32_t li : stack.back()) {
          rd.vec[li] = col.ValueAt(rows[li]);
        }
        return;
      }
      case OpCode::kCompare:
        BinaryInstr(ins, [&](const Value& a, const Value& b) {
          return EvalComparisonOp(ins.bop, a, b);
        });
        return;
      case OpCode::kLike:
        BinaryInstr(ins, [](const Value& a, const Value& b) {
          return EvalLikeOp(a, b);
        });
        return;
      case OpCode::kArith:
        BinaryInstr(ins, [&](const Value& a, const Value& b) {
          return EvalArithmeticOp(ins.bop, a, b);
        });
        return;
      case OpCode::kUnary: {
        const Reg& ra = regs[static_cast<size_t>(ins.a)];
        Reg& rd = regs[static_cast<size_t>(ins.dst)];
        if (ra.scalar) {
          auto r = EvalUnaryOp(ins.uop, ra.scalar_value);
          if (!r.ok()) {
            ErrorAll(r.status());
            return;
          }
          rd.scalar = true;
          rd.scalar_value = std::move(*r);
          return;
        }
        rd.scalar = false;
        rd.vec.assign(rows.size(), Value());
        auto& sel = stack.back();
        size_t w = 0;
        for (uint32_t li : sel) {
          auto r = EvalUnaryOp(ins.uop, ra.vec[li]);
          if (!r.ok()) {
            Error(li, r.status());
            continue;
          }
          rd.vec[li] = std::move(*r);
          sel[w++] = li;
        }
        sel.resize(w);
        return;
      }
      case OpCode::kAndProbe:
      case OpCode::kOrProbe: {
        // Short-circuit: only rows whose left value does NOT decide the
        // connective run the right operand. The interpreter never
        // evaluates the right side for the other rows, so neither do we.
        bool want = ins.op == OpCode::kAndProbe;  // AND continues on TRUE
        const Reg& ra = regs[static_cast<size_t>(ins.a)];
        auto& sel = stack.back();
        std::vector<uint32_t> inner;
        inner.reserve(sel.size());
        size_t w = 0;
        for (uint32_t li : sel) {
          const Value& v = ra.At(li);
          if (v.type() != ValueType::kBool) {
            Error(li, Status::TypeError("AND/OR operand is not boolean"));
            continue;
          }
          sel[w++] = li;
          if (v.bool_value() == want) inner.push_back(li);
        }
        sel.resize(w);
        stack.push_back(std::move(inner));
        return;
      }
      case OpCode::kPopMergeAnd:
      case OpCode::kPopMergeOr: {
        bool is_and = ins.op == OpCode::kPopMergeAnd;
        stack.pop_back();
        auto& sel = stack.back();
        const Reg& ra = regs[static_cast<size_t>(ins.a)];
        const Reg& rb = regs[static_cast<size_t>(ins.b)];
        Reg& rd = regs[static_cast<size_t>(ins.dst)];
        rd.scalar = false;
        rd.vec.assign(rows.size(), Value());
        size_t w = 0;
        for (uint32_t li : sel) {
          if (errored[li]) continue;  // right operand errored this row
          bool l = ra.At(li).bool_value();  // bool-checked at the probe
          if (is_and ? !l : l) {
            rd.vec[li] = Value::Bool(!is_and);
            sel[w++] = li;
            continue;
          }
          const Value& v = rb.At(li);
          if (v.type() != ValueType::kBool) {
            Error(li, Status::TypeError("AND/OR operand is not boolean"));
            continue;
          }
          rd.vec[li] = v;
          sel[w++] = li;
        }
        sel.resize(w);
        return;
      }
      case OpCode::kFilterResult: {
        const Reg& ra = regs[static_cast<size_t>(ins.a)];
        auto& sel = stack.back();
        size_t w = 0;
        for (uint32_t li : sel) {
          const Value& v = ra.At(li);
          if (v.type() != ValueType::kBool) {
            Error(li,
                  Status::TypeError("predicate did not evaluate to boolean"));
            continue;
          }
          if (v.bool_value()) sel[w++] = li;
        }
        sel.resize(w);
        return;
      }
      default:
        return;  // fused opcodes never reach the register machine
    }
  }
};

// ---------------------------------------------------------------------------
// Fused filter executors
// ---------------------------------------------------------------------------

namespace {

/// Narrows `cur` (row ids) to the rows where `cmp(row)` (three-way sign)
/// satisfies `op`. NULL cells fail without error, matching
/// EvalComparisonOp.
template <typename CmpFn>
void KeepByCmp(BinaryOp op, const ColumnVector& nulls_of,
               std::vector<uint32_t>& cur, CmpFn cmp) {
  const bool hn = nulls_of.has_nulls();
  size_t w = 0;
  switch (op) {
    case BinaryOp::kEq:
      for (uint32_t r : cur) {
        if (hn && nulls_of.IsNull(r)) continue;
        if (cmp(r) == 0) cur[w++] = r;
      }
      break;
    case BinaryOp::kNe:
      for (uint32_t r : cur) {
        if (hn && nulls_of.IsNull(r)) continue;
        if (cmp(r) != 0) cur[w++] = r;
      }
      break;
    case BinaryOp::kLt:
      for (uint32_t r : cur) {
        if (hn && nulls_of.IsNull(r)) continue;
        if (cmp(r) < 0) cur[w++] = r;
      }
      break;
    case BinaryOp::kLe:
      for (uint32_t r : cur) {
        if (hn && nulls_of.IsNull(r)) continue;
        if (cmp(r) <= 0) cur[w++] = r;
      }
      break;
    case BinaryOp::kGt:
      for (uint32_t r : cur) {
        if (hn && nulls_of.IsNull(r)) continue;
        if (cmp(r) > 0) cur[w++] = r;
      }
      break;
    case BinaryOp::kGe:
      for (uint32_t r : cur) {
        if (hn && nulls_of.IsNull(r)) continue;
        if (cmp(r) >= 0) cur[w++] = r;
      }
      break;
    default:
      break;
  }
  cur.resize(w);
}

/// Same, but screens NULLs of two columns.
template <typename CmpFn>
void KeepByCmp2(BinaryOp op, const ColumnVector& ca, const ColumnVector& cb,
                std::vector<uint32_t>& cur, CmpFn cmp) {
  const bool hn = ca.has_nulls() || cb.has_nulls();
  size_t w = 0;
  for (uint32_t r : cur) {
    if (hn && (ca.IsNull(r) || cb.IsNull(r))) continue;
    int c = cmp(r);
    bool pass = false;
    switch (op) {
      case BinaryOp::kEq:
        pass = c == 0;
        break;
      case BinaryOp::kNe:
        pass = c != 0;
        break;
      case BinaryOp::kLt:
        pass = c < 0;
        break;
      case BinaryOp::kLe:
        pass = c <= 0;
        break;
      case BinaryOp::kGt:
        pass = c > 0;
        break;
      case BinaryOp::kGe:
        pass = c >= 0;
        break;
      default:
        break;
    }
    if (pass) cur[w++] = r;
  }
  cur.resize(w);
}

/// Per-row scalar fallback: identical statuses by construction because it
/// calls the same kernel the interpreter does.
template <typename KernelFn>
void KeepByScalar(std::vector<uint32_t>& cur,
                  std::vector<std::pair<uint32_t, Status>>& errors,
                  KernelFn kernel) {
  size_t w = 0;
  for (uint32_t r : cur) {
    auto res = kernel(r);
    if (!res.ok()) {
      errors.emplace_back(r, res.status());
      continue;
    }
    if (res->bool_value()) cur[w++] = r;
  }
  cur.resize(w);
}

void FilterCmpColConst(const ColumnVector& col, BinaryOp op, bool flipped,
                       const Value& konst, std::vector<uint32_t>& cur,
                       std::vector<std::pair<uint32_t, Status>>& errors) {
  if (konst.is_null()) {
    // Comparison against NULL is FALSE for every row.
    cur.clear();
    return;
  }
  using Layout = ColumnVector::Layout;
  switch (col.layout()) {
    case Layout::kInt64: {
      if (konst.type() == ValueType::kInt) {
        const int64_t* a = col.ints();
        int64_t k = konst.int_value();
        KeepByCmp(op, col, cur,
                  [a, k](uint32_t r) { return CompareInt64(a[r], k); });
        return;
      }
      double k;
      if (konst.type() == ValueType::kDouble) {
        k = konst.double_value();
      } else if (konst.type() == ValueType::kString &&
                 TryParseNumericString(konst.string_value(), &k)) {
        // INT column vs numeric string: Value::Compare coerces the string.
      } else {
        break;
      }
      const int64_t* a = col.ints();
      KeepByCmp(op, col, cur, [a, k](uint32_t r) {
        return Sign(static_cast<double>(a[r]) - k);
      });
      return;
    }
    case Layout::kDouble: {
      double k;
      if (konst.IsNumeric()) {
        k = konst.AsDouble();
      } else if (konst.type() == ValueType::kString &&
                 TryParseNumericString(konst.string_value(), &k)) {
      } else {
        break;
      }
      const double* a = col.doubles();
      KeepByCmp(op, col, cur, [a, k](uint32_t r) { return Sign(a[r] - k); });
      return;
    }
    case Layout::kString: {
      if (konst.type() != ValueType::kString) break;
      const std::string* a = col.strings();
      const std::string& k = konst.string_value();
      KeepByCmp(op, col, cur, [a, &k](uint32_t r) {
        int c = a[r].compare(k);
        return c < 0 ? -1 : (c > 0 ? 1 : 0);
      });
      return;
    }
    case Layout::kBool: {
      if (konst.type() != ValueType::kBool) break;
      const int64_t* a = col.ints();
      int64_t k = konst.bool_value() ? 1 : 0;
      KeepByCmp(op, col, cur,
                [a, k](uint32_t r) { return CompareInt64(a[r], k); });
      return;
    }
    case Layout::kTimestamp: {
      if (konst.type() != ValueType::kTimestamp) break;
      const int64_t* a = col.ints();
      int64_t k = konst.time_value().micros();
      KeepByCmp(op, col, cur,
                [a, k](uint32_t r) { return CompareInt64(a[r], k); });
      return;
    }
    case Layout::kGeneric:
      break;
  }
  KeepByScalar(cur, errors, [&](uint32_t r) {
    // Restore the source operand order for `literal op col` so type
    // errors name the operands exactly as the interpreter would.
    return flipped
               ? EvalComparisonOp(FlipComparison(op), konst, col.ValueAt(r))
               : EvalComparisonOp(op, col.ValueAt(r), konst);
  });
}

void FilterCmpColCol(const ColumnVector& ca, const ColumnVector& cb,
                     BinaryOp op, std::vector<uint32_t>& cur,
                     std::vector<std::pair<uint32_t, Status>>& errors) {
  using Layout = ColumnVector::Layout;
  Layout la = ca.layout(), lb = cb.layout();
  bool same_int_backed =
      la == lb && (la == Layout::kInt64 || la == Layout::kBool ||
                   la == Layout::kTimestamp);
  if (same_int_backed) {
    const int64_t* a = ca.ints();
    const int64_t* b = cb.ints();
    KeepByCmp2(op, ca, cb, cur,
               [a, b](uint32_t r) { return CompareInt64(a[r], b[r]); });
    return;
  }
  bool a_num = la == Layout::kInt64 || la == Layout::kDouble;
  bool b_num = lb == Layout::kInt64 || lb == Layout::kDouble;
  if (a_num && b_num) {  // at least one side is kDouble here
    bool a_int = la == Layout::kInt64;
    bool b_int = lb == Layout::kInt64;
    const int64_t* ai = ca.ints();
    const double* ad = ca.doubles();
    const int64_t* bi = cb.ints();
    const double* bd = cb.doubles();
    KeepByCmp2(op, ca, cb, cur, [=](uint32_t r) {
      double x = a_int ? static_cast<double>(ai[r]) : ad[r];
      double y = b_int ? static_cast<double>(bi[r]) : bd[r];
      return Sign(x - y);
    });
    return;
  }
  if (la == Layout::kString && lb == Layout::kString) {
    const std::string* a = ca.strings();
    const std::string* b = cb.strings();
    KeepByCmp2(op, ca, cb, cur, [a, b](uint32_t r) {
      int c = a[r].compare(b[r]);
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    });
    return;
  }
  KeepByScalar(cur, errors, [&](uint32_t r) {
    return EvalComparisonOp(op, ca.ValueAt(r), cb.ValueAt(r));
  });
}

void FilterLikeColConst(const ColumnVector& col, const Value& konst,
                        std::vector<uint32_t>& cur,
                        std::vector<std::pair<uint32_t, Status>>& errors) {
  if (konst.is_null()) {
    cur.clear();
    return;
  }
  if (col.layout() == ColumnVector::Layout::kString &&
      konst.type() == ValueType::kString) {
    const std::string* a = col.strings();
    const std::string& pat = konst.string_value();
    const bool hn = col.has_nulls();
    size_t w = 0;
    for (uint32_t r : cur) {
      if (hn && col.IsNull(r)) continue;
      if (LikeMatches(a[r], pat)) cur[w++] = r;
    }
    cur.resize(w);
    return;
  }
  KeepByScalar(cur, errors, [&](uint32_t r) {
    return EvalLikeOp(col.ValueAt(r), konst);
  });
}

}  // namespace

// ---------------------------------------------------------------------------
// Run
// ---------------------------------------------------------------------------

PredicateProgram::Outcome PredicateProgram::Run(
    const Batch& batch, const std::vector<uint32_t>& sel) const {
  Outcome out;
  if (pure_filter_) {
    std::vector<uint32_t> cur = sel;
    for (const Instr& ins : instrs_) {
      if (cur.empty()) break;
      switch (ins.op) {
        case OpCode::kFilterCmpColConst:
          FilterCmpColConst(batch.column(static_cast<size_t>(ins.a)), ins.bop,
                            ins.flipped, ins.literal, cur, out.errors);
          break;
        case OpCode::kFilterCmpColCol:
          FilterCmpColCol(batch.column(static_cast<size_t>(ins.a)),
                          batch.column(static_cast<size_t>(ins.b)), ins.bop,
                          cur, out.errors);
          break;
        case OpCode::kFilterLikeColConst:
          FilterLikeColConst(batch.column(static_cast<size_t>(ins.a)),
                             ins.literal, cur, out.errors);
          break;
        default:
          break;
      }
    }
    out.passed = std::move(cur);
  } else {
    Machine m(batch, sel);
    m.regs.resize(static_cast<size_t>(num_regs_));
    m.errored.assign(sel.size(), 0);
    std::vector<uint32_t> all(sel.size());
    std::iota(all.begin(), all.end(), 0u);
    m.stack.push_back(std::move(all));
    for (const Instr& ins : instrs_) m.Exec(ins);
    out.passed.reserve(m.stack.back().size());
    for (uint32_t li : m.stack.back()) out.passed.push_back(sel[li]);
    out.errors = std::move(m.errors);
  }
  std::sort(out.errors.begin(), out.errors.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

PredicateProgram::BitmapOutcome PredicateProgram::RunToBitmap(
    const Batch& batch, const std::vector<uint32_t>& sel) const {
  Outcome o = Run(batch, sel);
  BitmapOutcome out;
  // `passed` is ascending, so every Add hits the bitmap's append fast
  // path — the conversion is a single linear pass, no sorting.
  for (uint32_t r : o.passed) out.passed.Add(static_cast<int64_t>(r));
  out.errors = std::move(o.errors);
  return out;
}

std::string PredicateProgram::ToString() const {
  std::ostringstream os;
  auto reg = [](int r) { return "r" + std::to_string(r); };
  for (size_t i = 0; i < instrs_.size(); ++i) {
    const Instr& ins = instrs_[i];
    os << i << ": ";
    switch (ins.op) {
      case OpCode::kFilterCmpColConst:
        os << "filter col" << ins.a << " " << BinaryOpName(ins.bop) << " "
           << ins.literal.ToString();
        break;
      case OpCode::kFilterCmpColCol:
        os << "filter col" << ins.a << " " << BinaryOpName(ins.bop) << " col"
           << ins.b;
        break;
      case OpCode::kFilterLikeColConst:
        os << "filter col" << ins.a << " LIKE " << ins.literal.ToString();
        break;
      case OpCode::kLoadColumn:
        os << reg(ins.dst) << " = col" << ins.a;
        break;
      case OpCode::kLoadConst:
        os << reg(ins.dst) << " = " << ins.literal.ToString();
        break;
      case OpCode::kCompare:
      case OpCode::kArith:
        os << reg(ins.dst) << " = " << reg(ins.a) << " "
           << BinaryOpName(ins.bop) << " " << reg(ins.b);
        break;
      case OpCode::kLike:
        os << reg(ins.dst) << " = " << reg(ins.a) << " LIKE " << reg(ins.b);
        break;
      case OpCode::kUnary:
        os << reg(ins.dst) << " = " << (ins.uop == UnaryOp::kNot ? "NOT " : "-")
           << reg(ins.a);
        break;
      case OpCode::kAndProbe:
        os << "and-probe " << reg(ins.a);
        break;
      case OpCode::kOrProbe:
        os << "or-probe " << reg(ins.a);
        break;
      case OpCode::kPopMergeAnd:
        os << reg(ins.dst) << " = merge-and " << reg(ins.a) << ", "
           << reg(ins.b);
        break;
      case OpCode::kPopMergeOr:
        os << reg(ins.dst) << " = merge-or " << reg(ins.a) << ", "
           << reg(ins.b);
        break;
      case OpCode::kFilterResult:
        os << "filter-result " << reg(ins.a);
        break;
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace auditdb
