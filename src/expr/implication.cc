#include "src/expr/implication.h"

#include "src/expr/analysis.h"
#include "src/expr/constraints.h"
#include "src/expr/evaluator.h"

namespace auditdb {

namespace {

/// Whether one conclusion conjunct is provably forced.
bool ConjunctImplied(const PredicateAnalysis& analysis,
                     const std::vector<const Expression*>& premise_atoms,
                     const Expression& conjunct) {
  // Structural identity with a premise conjunct.
  for (const Expression* atom : premise_atoms) {
    if (atom != nullptr && atom->Equals(conjunct)) return true;
  }

  // Constant truths.
  if (conjunct.kind == ExprKind::kLiteral &&
      conjunct.literal == Value::Bool(true)) {
    return true;
  }
  if (conjunct.kind == ExprKind::kBinary && IsComparison(conjunct.bop) &&
      conjunct.left->kind == ExprKind::kLiteral &&
      conjunct.right->kind == ExprKind::kLiteral) {
    auto v = Evaluate(conjunct, {});
    return v.ok() && v->type() == ValueType::kBool && v->bool_value();
  }

  // A false premise implies anything.
  if (analysis.ProvablyEmpty()) return true;

  // col op literal forced by the premise's constraint sets.
  ColumnRef col;
  BinaryOp op;
  Value lit;
  if (IsColumnLiteralComparison(conjunct, &col, &op, &lit)) {
    return analysis.Implies(col, op, lit);
  }

  // col = col forced by premise equality classes.
  if (conjunct.kind == ExprKind::kBinary && conjunct.bop == BinaryOp::kEq &&
      conjunct.left->kind == ExprKind::kColumn &&
      conjunct.right->kind == ExprKind::kColumn) {
    return analysis.SameClass(conjunct.left->column,
                              conjunct.right->column);
  }

  // OR: proving any disjunct suffices.
  if (conjunct.kind == ExprKind::kBinary && conjunct.bop == BinaryOp::kOr) {
    return ConjunctImplied(analysis, premise_atoms, *conjunct.left) ||
           ConjunctImplied(analysis, premise_atoms, *conjunct.right);
  }

  return false;  // cannot prove
}

}  // namespace

bool ProvablyImplies(const Expression* premise,
                     const Expression* conclusion) {
  if (conclusion == nullptr) return true;  // anything implies TRUE
  std::vector<const Expression*> premise_atoms = SplitConjuncts(premise);
  PredicateAnalysis analysis({premise});
  for (const Expression* conjunct : SplitConjuncts(conclusion)) {
    if (!ConjunctImplied(analysis, premise_atoms, *conjunct)) return false;
  }
  return true;
}

}  // namespace auditdb
