#ifndef AUDITDB_EXPR_STRUCTURAL_HASH_H_
#define AUDITDB_EXPR_STRUCTURAL_HASH_H_

#include <cstdint>

#include "src/expr/expression.h"
#include "src/types/value.h"

namespace auditdb {

/// Position-independent structural hashing of expression trees (after
/// jank's hash_expression): the hash covers the *shape* of the tree —
/// node kinds, operators, column names — and the literal values, but
/// deliberately excludes anything tied to where the expression came from
/// (binder slots, source offsets, surrounding whitespace). Two
/// expressions parsed from differently-formatted text hash identically
/// iff they are structurally equal, which is what lets the audit layers
/// key caches and dedupe work on hashes instead of re-comparing trees.

/// Folds `value` (type tag + content) into `seed`.
uint64_t HashValue(uint64_t seed, const Value& value);

/// Folds the tree rooted at `expr` into `seed`. Null-safe: a missing
/// subtree (e.g. an absent WHERE clause) hashes as a distinct marker.
uint64_t HashExpression(uint64_t seed, const Expression* expr);

/// Whole-tree convenience with a fixed seed.
uint64_t StructuralHash(const Expression& expr);

}  // namespace auditdb

#endif  // AUDITDB_EXPR_STRUCTURAL_HASH_H_
