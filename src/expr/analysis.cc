#include "src/expr/analysis.h"

namespace auditdb {

namespace {

void CollectColumnsInto(const Expression* expr, std::set<ColumnRef>* out) {
  if (expr == nullptr) return;
  switch (expr->kind) {
    case ExprKind::kLiteral:
      return;
    case ExprKind::kColumn:
      out->insert(expr->column);
      return;
    case ExprKind::kUnary:
      CollectColumnsInto(expr->left.get(), out);
      return;
    case ExprKind::kBinary:
      CollectColumnsInto(expr->left.get(), out);
      CollectColumnsInto(expr->right.get(), out);
      return;
  }
}

void SplitConjunctsInto(const Expression* expr,
                        std::vector<const Expression*>* out) {
  if (expr == nullptr) return;
  if (expr->kind == ExprKind::kBinary && expr->bop == BinaryOp::kAnd) {
    SplitConjunctsInto(expr->left.get(), out);
    SplitConjunctsInto(expr->right.get(), out);
    return;
  }
  out->push_back(expr);
}

}  // namespace

std::set<ColumnRef> CollectColumns(const Expression* expr) {
  std::set<ColumnRef> out;
  CollectColumnsInto(expr, &out);
  return out;
}

std::vector<const Expression*> SplitConjuncts(const Expression* expr) {
  std::vector<const Expression*> out;
  SplitConjunctsInto(expr, &out);
  return out;
}

Status QualifyColumns(Expression* expr, const Catalog& catalog,
                      const std::vector<std::string>& scope) {
  if (expr == nullptr) return Status::Ok();
  switch (expr->kind) {
    case ExprKind::kLiteral:
      return Status::Ok();
    case ExprKind::kColumn: {
      auto resolved = catalog.Resolve(expr->column, scope);
      if (!resolved.ok()) return resolved.status();
      expr->column = *resolved;
      return Status::Ok();
    }
    case ExprKind::kUnary:
      return QualifyColumns(expr->left.get(), catalog, scope);
    case ExprKind::kBinary:
      AUDITDB_RETURN_IF_ERROR(
          QualifyColumns(expr->left.get(), catalog, scope));
      return QualifyColumns(expr->right.get(), catalog, scope);
  }
  return Status::Internal("unknown expression kind");
}

bool IsEquiJoin(const Expression& conjunct, ColumnRef* lhs, ColumnRef* rhs) {
  if (conjunct.kind != ExprKind::kBinary || conjunct.bop != BinaryOp::kEq) {
    return false;
  }
  if (conjunct.left->kind != ExprKind::kColumn ||
      conjunct.right->kind != ExprKind::kColumn) {
    return false;
  }
  if (conjunct.left->column.table == conjunct.right->column.table) {
    return false;
  }
  *lhs = conjunct.left->column;
  *rhs = conjunct.right->column;
  return true;
}

bool IsColumnLiteralComparison(const Expression& conjunct, ColumnRef* col,
                               BinaryOp* op, Value* literal) {
  if (conjunct.kind != ExprKind::kBinary || !IsComparison(conjunct.bop)) {
    return false;
  }
  const Expression* l = conjunct.left.get();
  const Expression* r = conjunct.right.get();
  if (l->kind == ExprKind::kColumn && r->kind == ExprKind::kLiteral) {
    *col = l->column;
    *op = conjunct.bop;
    *literal = r->literal;
    return true;
  }
  if (l->kind == ExprKind::kLiteral && r->kind == ExprKind::kColumn) {
    *col = r->column;
    *op = FlipComparison(conjunct.bop);
    *literal = l->literal;
    return true;
  }
  return false;
}

}  // namespace auditdb
