#include "src/expr/evaluator.h"

namespace auditdb {

void RowLayout::AddTable(const std::string& table, const TableSchema& schema) {
  table_offsets_.emplace_back(table, width_);
  for (const auto& col : schema.columns()) {
    slots_[table + "." + col.name] = static_cast<int>(width_);
    slot_columns_.push_back(ColumnRef{table, col.name});
    ++width_;
  }
}

Result<int> RowLayout::Slot(const ColumnRef& ref) const {
  if (!ref.qualified()) {
    return Status::InvalidArgument("unqualified column in bound context: " +
                                   ref.ToString());
  }
  auto it = slots_.find(ref.table + "." + ref.column);
  if (it == slots_.end()) {
    return Status::NotFound("no slot for column " + ref.ToString());
  }
  return it->second;
}

Status BindExpression(Expression* expr, const RowLayout& layout) {
  if (expr == nullptr) return Status::Ok();
  switch (expr->kind) {
    case ExprKind::kLiteral:
      return Status::Ok();
    case ExprKind::kColumn: {
      auto slot = layout.Slot(expr->column);
      if (!slot.ok()) return slot.status();
      expr->slot = *slot;
      return Status::Ok();
    }
    case ExprKind::kUnary:
      return BindExpression(expr->left.get(), layout);
    case ExprKind::kBinary:
      AUDITDB_RETURN_IF_ERROR(BindExpression(expr->left.get(), layout));
      return BindExpression(expr->right.get(), layout);
  }
  return Status::Internal("unknown expression kind");
}

/// SQL LIKE matcher: `%` matches any run (including empty), `_` any
/// single character. Iterative two-pointer algorithm with backtracking
/// to the last `%`.
bool LikeMatches(const std::string& text, const std::string& pattern) {
  size_t t = 0, p = 0;
  size_t star_p = std::string::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

Result<Value> EvalComparisonOp(BinaryOp op, const Value& lhs,
                               const Value& rhs) {
  // SQL semantics: any comparison against NULL is not satisfied.
  if (lhs.is_null() || rhs.is_null()) return Value::Bool(false);
  auto cmp = lhs.Compare(rhs);
  if (!cmp.ok()) return cmp.status();
  switch (op) {
    case BinaryOp::kEq:
      return Value::Bool(*cmp == 0);
    case BinaryOp::kNe:
      return Value::Bool(*cmp != 0);
    case BinaryOp::kLt:
      return Value::Bool(*cmp < 0);
    case BinaryOp::kLe:
      return Value::Bool(*cmp <= 0);
    case BinaryOp::kGt:
      return Value::Bool(*cmp > 0);
    case BinaryOp::kGe:
      return Value::Bool(*cmp >= 0);
    default:
      return Status::Internal("EvalComparisonOp on non-comparison");
  }
}

Result<Value> EvalLikeOp(const Value& lhs, const Value& rhs) {
  if (lhs.is_null() || rhs.is_null()) return Value::Bool(false);
  if (lhs.type() != ValueType::kString ||
      rhs.type() != ValueType::kString) {
    return Status::TypeError("LIKE requires string operands");
  }
  return Value::Bool(LikeMatches(lhs.string_value(), rhs.string_value()));
}

Result<Value> EvalArithmeticOp(BinaryOp op, const Value& lhs,
                               const Value& rhs) {
  if (!lhs.IsNumeric() || !rhs.IsNumeric()) {
    return Status::TypeError(std::string("arithmetic on non-numeric values: ") +
                             lhs.ToString() + " " + BinaryOpName(op) + " " +
                             rhs.ToString());
  }
  bool both_int = lhs.type() == ValueType::kInt &&
                  rhs.type() == ValueType::kInt && op != BinaryOp::kDiv;
  if (both_int) {
    int64_t a = lhs.int_value(), b = rhs.int_value();
    switch (op) {
      case BinaryOp::kAdd:
        return Value::Int(a + b);
      case BinaryOp::kSub:
        return Value::Int(a - b);
      case BinaryOp::kMul:
        return Value::Int(a * b);
      default:
        break;
    }
  }
  double a = lhs.AsDouble(), b = rhs.AsDouble();
  switch (op) {
    case BinaryOp::kAdd:
      return Value::Double(a + b);
    case BinaryOp::kSub:
      return Value::Double(a - b);
    case BinaryOp::kMul:
      return Value::Double(a * b);
    case BinaryOp::kDiv:
      if (b == 0) return Status::InvalidArgument("division by zero");
      return Value::Double(a / b);
    default:
      break;
  }
  return Status::Internal("unhandled binary operator");
}

Result<Value> EvalUnaryOp(UnaryOp op, const Value& v) {
  if (op == UnaryOp::kNot) {
    if (v.type() != ValueType::kBool) {
      return Status::TypeError("NOT operand is not boolean");
    }
    return Value::Bool(!v.bool_value());
  }
  if (!v.IsNumeric()) {
    return Status::TypeError("negation of non-numeric value");
  }
  if (v.type() == ValueType::kInt) return Value::Int(-v.int_value());
  return Value::Double(-v.double_value());
}

namespace {

Result<Value> EvalBinary(const Expression& expr,
                         const std::vector<Value>& row) {
  // AND / OR with shortcut evaluation.
  if (expr.bop == BinaryOp::kAnd || expr.bop == BinaryOp::kOr) {
    auto lhs = Evaluate(*expr.left, row);
    if (!lhs.ok()) return lhs.status();
    if (lhs->type() != ValueType::kBool) {
      return Status::TypeError("AND/OR operand is not boolean");
    }
    bool l = lhs->bool_value();
    if (expr.bop == BinaryOp::kAnd && !l) return Value::Bool(false);
    if (expr.bop == BinaryOp::kOr && l) return Value::Bool(true);
    auto rhs = Evaluate(*expr.right, row);
    if (!rhs.ok()) return rhs.status();
    if (rhs->type() != ValueType::kBool) {
      return Status::TypeError("AND/OR operand is not boolean");
    }
    return Value::Bool(rhs->bool_value());
  }

  auto lhs = Evaluate(*expr.left, row);
  if (!lhs.ok()) return lhs.status();
  auto rhs = Evaluate(*expr.right, row);
  if (!rhs.ok()) return rhs.status();

  if (expr.bop == BinaryOp::kLike) return EvalLikeOp(*lhs, *rhs);
  if (IsComparison(expr.bop)) return EvalComparisonOp(expr.bop, *lhs, *rhs);
  return EvalArithmeticOp(expr.bop, *lhs, *rhs);
}

}  // namespace

Result<Value> Evaluate(const Expression& expr, const std::vector<Value>& row) {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      return expr.literal;
    case ExprKind::kColumn:
      if (expr.slot < 0 || static_cast<size_t>(expr.slot) >= row.size()) {
        return Status::Internal("unbound or out-of-range column " +
                                expr.column.ToString());
      }
      return row[static_cast<size_t>(expr.slot)];
    case ExprKind::kUnary: {
      auto v = Evaluate(*expr.left, row);
      if (!v.ok()) return v.status();
      return EvalUnaryOp(expr.uop, *v);
    }
    case ExprKind::kBinary:
      return EvalBinary(expr, row);
  }
  return Status::Internal("unknown expression kind");
}

Result<bool> EvaluatePredicate(const Expression* expr,
                               const std::vector<Value>& row) {
  if (expr == nullptr) return true;
  auto v = Evaluate(*expr, row);
  if (!v.ok()) return v.status();
  if (v->type() != ValueType::kBool) {
    return Status::TypeError("predicate did not evaluate to boolean");
  }
  return v->bool_value();
}

}  // namespace auditdb
