#ifndef AUDITDB_EXPR_EXPRESSION_H_
#define AUDITDB_EXPR_EXPRESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "src/catalog/schema.h"
#include "src/types/value.h"

namespace auditdb {

enum class ExprKind {
  kLiteral,
  kColumn,
  kUnary,
  kBinary,
};

enum class UnaryOp {
  kNot,
  kNeg,
};

enum class BinaryOp {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
  kAdd,
  kSub,
  kMul,
  kDiv,
  /// SQL LIKE with `%` (any run) and `_` (any one char) wildcards; the
  /// pattern is the right operand. Not a comparison for the purposes of
  /// IsComparison (static analyses treat it as opaque).
  kLike,
};

/// SQL rendering of a binary operator ("=", "<=", "AND", ...).
const char* BinaryOpName(BinaryOp op);

/// True for =, <>, <, <=, >, >=.
bool IsComparison(BinaryOp op);

/// The comparison with swapped operands (a < b  ==  b > a).
BinaryOp FlipComparison(BinaryOp op);

/// The comparison negation (NOT a < b  ==  a >= b).
BinaryOp NegateComparison(BinaryOp op);

struct Expression;
using ExprPtr = std::unique_ptr<Expression>;

/// One node of a scalar / boolean expression tree. Shared by the SQL
/// WHERE-clause grammar and the audit-expression grammar. A plain data
/// node type: passes through parser → binder (fills `slot`) → evaluator.
struct Expression {
  ExprKind kind = ExprKind::kLiteral;

  // kLiteral
  Value literal;

  // kColumn
  ColumnRef column;
  /// Flat index into the executor's combined row, set by Bind(); -1 while
  /// unbound.
  int slot = -1;

  // kUnary (operand in `left`) / kBinary
  UnaryOp uop = UnaryOp::kNot;
  BinaryOp bop = BinaryOp::kAnd;
  ExprPtr left;
  ExprPtr right;

  static ExprPtr MakeLiteral(Value v);
  static ExprPtr MakeColumn(ColumnRef ref);
  static ExprPtr MakeUnary(UnaryOp op, ExprPtr operand);
  static ExprPtr MakeBinary(BinaryOp op, ExprPtr lhs, ExprPtr rhs);

  /// Convenience: column `ref` op literal `v`.
  static ExprPtr MakeComparison(ColumnRef ref, BinaryOp op, Value v);
  /// Convenience: column = column (equi-join predicate).
  static ExprPtr MakeColumnEq(ColumnRef a, ColumnRef b);
  /// AND of the given conjuncts; nullptr for an empty list (meaning TRUE).
  static ExprPtr MakeConjunction(std::vector<ExprPtr> conjuncts);

  /// Deep copy (slots included).
  ExprPtr Clone() const;

  /// Structural equality (ignores slots).
  bool Equals(const Expression& other) const;

  /// SQL-ish rendering, parenthesized where precedence requires.
  std::string ToString() const;
};

}  // namespace auditdb

#endif  // AUDITDB_EXPR_EXPRESSION_H_
