#include "src/audit/audit_parser.h"

#include "src/sql/parser.h"

namespace auditdb {
namespace audit {

namespace {

using sql::Token;
using sql::TokenKind;

/// The clause keywords that terminate free-form lists (user identities).
bool IsClauseKeyword(const Token& t) {
  return t.IsKeyword("Neg-Role-Purpose") || t.IsKeyword("Pos-Role-Purpose") ||
         t.IsKeyword("Neg-User-Identity") || t.IsKeyword("Pos-User-Identity") ||
         t.IsKeyword("DURING") || t.IsKeyword("DATA-INTERVAL") ||
         t.IsKeyword("THRESHOLD") || t.IsKeyword("INDISPENSABLE") ||
         t.IsKeyword("OTHERTHAN") || t.IsKeyword("AUDIT");
}

class AuditParser : public sql::ParserBase {
 public:
  AuditParser(std::vector<Token> tokens, Timestamp now)
      : ParserBase(std::move(tokens)), now_(now) {}

  Result<AuditExpression> Parse() {
    AuditExpression expr;
    // Defaults per Fig. 7: current day for both intervals.
    TimeInterval today{now_.StartOfDay(), now_};
    expr.data_interval = today;
    bool during_set = false;

    while (!AtEnd() && !Peek().IsKeyword("AUDIT")) {
      if (MatchKeyword("Neg-Role-Purpose")) {
        auto patterns = ParseRolePurposeList();
        if (!patterns.ok()) return patterns.status();
        auto& dst = expr.filter.neg_role_purpose;
        dst.insert(dst.end(), patterns->begin(), patterns->end());
      } else if (MatchKeyword("Pos-Role-Purpose")) {
        auto patterns = ParseRolePurposeList();
        if (!patterns.ok()) return patterns.status();
        auto& dst = expr.filter.pos_role_purpose;
        dst.insert(dst.end(), patterns->begin(), patterns->end());
      } else if (MatchKeyword("Neg-User-Identity")) {
        auto users = ParseUserList();
        if (!users.ok()) return users.status();
        auto& dst = expr.filter.neg_users;
        dst.insert(dst.end(), users->begin(), users->end());
      } else if (MatchKeyword("Pos-User-Identity")) {
        auto users = ParseUserList();
        if (!users.ok()) return users.status();
        auto& dst = expr.filter.pos_users;
        dst.insert(dst.end(), users->begin(), users->end());
      } else if (MatchKeyword("OTHERTHAN")) {
        // Legacy Agrawal clause: OTHERTHAN PURPOSE p1, p2 filters out
        // accesses made for the listed purposes.
        AUDITDB_RETURN_IF_ERROR(ExpectKeyword("PURPOSE"));
        auto purposes = ParseUserList();
        if (!purposes.ok()) return purposes.status();
        for (auto& p : *purposes) {
          expr.filter.neg_role_purpose.push_back(
              RolePurposePattern{"-", std::move(p)});
        }
      } else if (MatchKeyword("DURING")) {
        auto interval = ParseInterval();
        if (!interval.ok()) return interval.status();
        expr.filter.during = *interval;
        during_set = true;
      } else if (MatchKeyword("DATA-INTERVAL")) {
        auto interval = ParseInterval();
        if (!interval.ok()) return interval.status();
        expr.data_interval = *interval;
      } else if (MatchKeyword("THRESHOLD")) {
        if (MatchKeyword("ALL")) {
          expr.threshold = Threshold::All();
        } else if (Peek().kind == TokenKind::kInt) {
          int64_t n = Advance().int_value;
          if (n < 1) return ErrorHere("THRESHOLD must be >= 1");
          expr.threshold = Threshold::N(n);
        } else {
          return ErrorHere("expected integer or ALL after THRESHOLD");
        }
      } else if (MatchKeyword("INDISPENSABLE")) {
        Match(TokenKind::kEq);  // the paper writes INDISPENSABLE = true
        if (MatchKeyword("true")) {
          expr.indispensable = true;
        } else if (MatchKeyword("false")) {
          expr.indispensable = false;
        } else {
          return ErrorHere("expected true or false after INDISPENSABLE");
        }
      } else {
        return ErrorHere("expected an audit clause, found '" + Peek().text +
                         "'");
      }
    }

    if (!during_set) expr.filter.during = today;

    AUDITDB_RETURN_IF_ERROR(ExpectKeyword("AUDIT"));
    auto attrs = ParseAttrStructure();
    if (!attrs.ok()) return attrs.status();
    expr.attrs = std::move(*attrs);

    AUDITDB_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    auto tables = ParseTableList();
    if (!tables.ok()) return tables.status();
    expr.from = std::move(*tables);

    if (MatchKeyword("WHERE")) {
      auto where = ParseExpr();
      if (!where.ok()) return where.status();
      expr.where = std::move(*where);
    }
    Match(TokenKind::kSemicolon);
    if (!AtEnd()) return ErrorHere("trailing input after audit expression");
    expr.filter.Compile();
    return expr;
  }

 private:
  /// { (r,pr) | (r,-) | (-,pr) }* — pairs, optionally comma-separated.
  Result<std::vector<RolePurposePattern>> ParseRolePurposeList() {
    std::vector<RolePurposePattern> out;
    while (Peek().kind == TokenKind::kLParen) {
      Advance();
      auto role = ParseNameOrDash();
      if (!role.ok()) return role.status();
      AUDITDB_RETURN_IF_ERROR(Expect(TokenKind::kComma, "','"));
      auto purpose = ParseNameOrDash();
      if (!purpose.ok()) return purpose.status();
      AUDITDB_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
      out.push_back(RolePurposePattern{std::move(*role), std::move(*purpose)});
      Match(TokenKind::kComma);
    }
    if (out.empty()) {
      return ErrorHere("expected at least one (role,purpose) pair");
    }
    return out;
  }

  Result<std::string> ParseNameOrDash() {
    const Token& t = Peek();
    if (t.kind == TokenKind::kMinus) {
      Advance();
      return std::string("-");
    }
    if (t.kind == TokenKind::kIdentifier || t.kind == TokenKind::kString) {
      Advance();
      return t.text;
    }
    if (t.kind == TokenKind::kInt) {
      Advance();
      return std::to_string(t.int_value);
    }
    return ErrorHere("expected role/purpose name or '-'");
  }

  /// Free-form list of names terminated by the next clause keyword.
  Result<std::vector<std::string>> ParseUserList() {
    std::vector<std::string> out;
    while (!AtEnd() && !IsClauseKeyword(Peek())) {
      const Token& t = Peek();
      if (t.kind == TokenKind::kIdentifier || t.kind == TokenKind::kString) {
        out.push_back(t.text);
        Advance();
      } else if (t.kind == TokenKind::kInt) {
        out.push_back(std::to_string(t.int_value));
        Advance();
      } else if (t.kind == TokenKind::kComma) {
        Advance();
      } else {
        break;
      }
    }
    if (out.empty()) return ErrorHere("expected at least one name");
    return out;
  }

  Result<Timestamp> ParseTimestampToken() {
    const Token& t = Peek();
    if (t.kind == TokenKind::kTimestamp) {
      Advance();
      return t.time_value;
    }
    if (t.IsKeyword("now") && Peek(1).kind == TokenKind::kLParen &&
        Peek(2).kind == TokenKind::kRParen) {
      Advance();
      Advance();
      Advance();
      return now_;
    }
    return ErrorHere("expected timestamp (d/m/yyyy:hh-mm-ss) or now()");
  }

  Result<TimeInterval> ParseInterval() {
    auto start = ParseTimestampToken();
    if (!start.ok()) return start.status();
    AUDITDB_RETURN_IF_ERROR(ExpectKeyword("to"));
    auto end = ParseTimestampToken();
    if (!end.ok()) return end.status();
    if (*end < *start) {
      return ErrorHere("interval end precedes start");
    }
    return TimeInterval{*start, *end};
  }

  /// Either a sequence of ()/[] groups (the unified syntax) or a plain
  /// attribute list (the legacy syntax, one mandatory group). Nested
  /// groups collapse per rule 6 of Table 6: the innermost bracket kind
  /// closest to the attributes wins.
  Result<AttrStructure> ParseAttrStructure() {
    AttrStructure out;
    if (Peek().kind == TokenKind::kLParen ||
        Peek().kind == TokenKind::kLBracket) {
      while (true) {
        if (Peek().kind == TokenKind::kLParen ||
            Peek().kind == TokenKind::kLBracket) {
          auto group = ParseGroup();
          if (!group.ok()) return group.status();
          out.groups.push_back(std::move(*group));
          Match(TokenKind::kComma);
        } else {
          break;
        }
      }
      if (out.groups.empty()) {
        return ErrorHere("expected at least one audit attribute group");
      }
      return out;
    }
    // Legacy plain list → one mandatory group.
    AttrGroup group;
    group.mandatory = true;
    while (true) {
      auto attr = ParseAttr();
      if (!attr.ok()) return attr.status();
      group.attrs.push_back(std::move(*attr));
      if (!Match(TokenKind::kComma)) break;
    }
    out.groups.push_back(std::move(group));
    return out;
  }

  /// One ( ... ) or [ ... ] group; handles rule-6 nesting like [(a,b)]
  /// by taking the innermost bracket kind.
  Result<AttrGroup> ParseGroup() {
    bool opened_mandatory = Peek().kind == TokenKind::kLParen;
    Advance();
    // Nested group: [(a,b)] == (a,b), ([a,b]) == [a,b].
    if (Peek().kind == TokenKind::kLParen ||
        Peek().kind == TokenKind::kLBracket) {
      auto inner = ParseGroup();
      if (!inner.ok()) return inner.status();
      AUDITDB_RETURN_IF_ERROR(
          Expect(opened_mandatory ? TokenKind::kRParen : TokenKind::kRBracket,
                 opened_mandatory ? "')'" : "']'"));
      return inner;
    }
    AttrGroup group;
    group.mandatory = opened_mandatory;
    while (true) {
      auto attr = ParseAttr();
      if (!attr.ok()) return attr.status();
      group.attrs.push_back(std::move(*attr));
      if (!Match(TokenKind::kComma)) break;
    }
    AUDITDB_RETURN_IF_ERROR(
        Expect(opened_mandatory ? TokenKind::kRParen : TokenKind::kRBracket,
               opened_mandatory ? "')'" : "']'"));
    return group;
  }

  /// Column reference, `*`, or `Table.*`.
  Result<ColumnRef> ParseAttr() {
    if (Match(TokenKind::kStar)) {
      return ColumnRef{"", "*"};
    }
    if (Peek().kind != TokenKind::kIdentifier) {
      return ErrorHere("expected audit attribute");
    }
    std::string first = Advance().text;
    if (Match(TokenKind::kDot)) {
      if (Match(TokenKind::kStar)) {
        return ColumnRef{std::move(first), "*"};
      }
      if (Peek().kind != TokenKind::kIdentifier) {
        return ErrorHere("expected column name after '.'");
      }
      return ColumnRef{std::move(first), Advance().text};
    }
    return ColumnRef{"", std::move(first)};
  }

  Timestamp now_;
};

}  // namespace

Result<AuditExpression> ParseAudit(const std::string& text, Timestamp now) {
  auto tokens = sql::Lex(text);
  if (!tokens.ok()) return tokens.status();
  AuditParser parser(std::move(*tokens), now);
  return parser.Parse();
}

Result<AuditExpression> ParseAudit(const std::string& text) {
  return ParseAudit(text, Timestamp::Now());
}

}  // namespace audit
}  // namespace auditdb
