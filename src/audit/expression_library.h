#ifndef AUDITDB_AUDIT_EXPRESSION_LIBRARY_H_
#define AUDITDB_AUDIT_EXPRESSION_LIBRARY_H_

#include <map>
#include <memory>
#include <vector>

#include "src/audit/subsumption.h"

namespace auditdb {
namespace audit {

/// A deduplicating catalog of standing audit expressions. Organizations
/// accumulate audit expressions (per complaint, per policy review); many
/// end up redundant. Add() uses the conservative subsumption test to
/// (a) reject an expression already covered by a member — any batch it
/// would flag, the member flags — and (b) evict members the newcomer
/// covers. The library therefore stays an antichain under Subsumes.
class ExpressionLibrary {
 public:
  /// `catalog` is used to qualify added expressions; must outlive the
  /// library.
  explicit ExpressionLibrary(const Catalog* catalog) : catalog_(catalog) {}

  struct AddOutcome {
    /// True if the expression entered the library; false if an existing
    /// member subsumes it (id then names that member).
    bool added = false;
    int id = 0;
    /// Members removed because the new expression subsumes them.
    std::vector<int> evicted;
  };

  /// Qualifies and inserts `expr`, maintaining the antichain property.
  Result<AddOutcome> Add(const AuditExpression& expr);

  /// Member by id, or nullptr.
  const AuditExpression* Get(int id) const;

  /// Current member ids, ascending.
  std::vector<int> ids() const;

  size_t size() const { return members_.size(); }

 private:
  struct Member {
    std::unique_ptr<AuditExpression> expr;
    /// Cached Subsumes inputs: computed once at admission, reused for
    /// every later pairwise check against candidates.
    SubsumptionProfile profile;
  };

  const Catalog* catalog_;
  std::map<int, Member> members_;
  int next_id_ = 1;
};

}  // namespace audit
}  // namespace auditdb

#endif  // AUDITDB_AUDIT_EXPRESSION_LIBRARY_H_
