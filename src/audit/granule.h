#ifndef AUDITDB_AUDIT_GRANULE_H_
#define AUDITDB_AUDIT_GRANULE_H_

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "src/audit/audit_expression.h"
#include "src/audit/target_view.h"

namespace auditdb {
namespace audit {

/// One granule scheme of the suspicion model: a minimal attribute set
/// whose access satisfies the AUDIT clause, plus — when INDISPENSABLE is
/// true — the tuple-id attributes of the tables owning those attributes
/// (the paper's "partial scheme" rule for deciding which tids join the
/// granule scheme).
struct GranuleScheme {
  std::set<ColumnRef> attrs;
  /// Tables contributing attrs, in FROM order; empty when INDISPENSABLE
  /// is false (value-containment granules carry no tids).
  std::vector<std::string> tid_tables;

  std::string ToString() const;
};

/// Derives the granule schemes of a qualified audit expression.
std::vector<GranuleScheme> BuildSchemes(const AuditExpression& expr);

/// One granule: `threshold` facts of U viewed through one scheme.
struct Granule {
  size_t scheme_index = 0;
  /// Indices into TargetView::facts; size = effective threshold k.
  std::vector<size_t> fact_indices;
};

/// Lazy enumeration of the granule set G = schemes × C(n, k) fact subsets.
/// Facts with a NULL value in a scheme attribute contribute no granule for
/// that scheme (a NULL cell discloses nothing; this also matches the
/// paper's Fig. 4 listing, which has no granule for the absent age value).
class GranuleEnumerator {
 public:
  /// `use_bitmaps` picks the validity-screen kernel: compressed row
  /// bitmaps (word-wide NULL screen, default) or the plain row-index
  /// scan. Valid facts are identical either way; the flag exists for the
  /// ablation/differential tests.
  GranuleEnumerator(const TargetView& view,
                    std::vector<GranuleScheme> schemes, Threshold threshold,
                    bool use_bitmaps = true);

  const std::vector<GranuleScheme>& schemes() const { return schemes_; }

  /// Facts usable for scheme `s` (non-NULL in every scheme attribute).
  const std::vector<size_t>& ValidFacts(size_t scheme_index) const {
    return valid_facts_[scheme_index];
  }

  /// Effective k for scheme `s` (threshold, or |valid facts| for ALL).
  size_t EffectiveK(size_t scheme_index) const;

  /// Exact |G| as a double (binomial counts overflow 64 bits quickly —
  /// the paper notes 2^k·2^n growth; callers treat large counts
  /// qualitatively).
  double CountGranules() const;

  /// Visits granules until the visitor returns false or the set is
  /// exhausted; returns the number visited. Enumeration is lazy: no
  /// granule is materialized beyond the one being visited.
  uint64_t ForEach(const std::function<bool(const Granule&)>& visit) const;

  /// Paper-style rendering: "(t12,t22,Reku,diabetic,A2)" — the scheme's
  /// tids (in tid_tables order) then attribute values (in target-view
  /// column order), per fact; multi-fact granules list facts separated
  /// by "; ".
  std::string Render(const Granule& granule) const;

  /// Up to `limit` distinct rendered granules, in enumeration order.
  std::vector<std::string> RenderDistinct(size_t limit) const;

 private:
  const TargetView& view_;
  std::vector<GranuleScheme> schemes_;
  Threshold threshold_;
  std::vector<std::vector<size_t>> valid_facts_;  // per scheme
  std::vector<std::vector<size_t>> attr_columns_;  // per scheme: view col idx
  std::vector<std::vector<size_t>> tid_positions_;  // per scheme: view tbl idx
};

}  // namespace audit
}  // namespace auditdb

#endif  // AUDITDB_AUDIT_GRANULE_H_
