#include "src/audit/target_view.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "src/common/hashing.h"
#include "src/expr/analysis.h"

namespace auditdb {
namespace audit {

namespace {

/// Membership-only dedup key for facts: (tid tuple, value tuple).
using FactKey = std::pair<std::vector<Tid>, std::vector<Value>>;
using FactKeyHash =
    PairHash<std::vector<Tid>, std::vector<Value>, VectorHash<Tid>,
             VectorHash<Value>>;
using FactSet = std::unordered_set<FactKey, FactKeyHash>;

}  // namespace

Result<size_t> TargetView::ColumnIndex(const ColumnRef& col) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i] == col) return i;
  }
  return Status::NotFound("no column " + col.ToString() +
                          " in target view");
}

Result<size_t> TargetView::TableIndex(const std::string& table) const {
  for (size_t i = 0; i < tables.size(); ++i) {
    if (tables[i] == table) return i;
  }
  return Status::NotFound("no table " + table + " in target view");
}

void TargetView::RebuildTidIndex() {
  table_tids.assign(tables.size(), TidBitmap());
  for (const Fact& fact : facts) {
    for (size_t i = 0; i < fact.tids.size() && i < table_tids.size(); ++i) {
      table_tids[i].Add(fact.tids[i]);
    }
  }
}

Batch TargetView::ToBatch() const {
  Batch batch;
  batch.num_rows = facts.size();
  batch.columns.reserve(columns.size());
  for (size_t c = 0; c < columns.size(); ++c) {
    batch.columns.push_back(ColumnVector::Gather(
        facts.size(),
        [&](size_t i) -> const Value& { return facts[i].values[c]; }));
  }
  return batch;
}

std::string TargetView::ToString() const {
  std::string out;
  for (size_t i = 0; i < tables.size(); ++i) {
    if (i > 0) out += " | ";
    out += "tid_" + tables[i];
  }
  for (const auto& col : columns) {
    out += " | " + col.ToString();
  }
  out += "\n";
  for (const auto& fact : facts) {
    for (size_t i = 0; i < fact.tids.size(); ++i) {
      if (i > 0) out += " | ";
      out += TidToString(fact.tids[i]);
    }
    for (const auto& v : fact.values) {
      out += " | " + v.ToDisplayString();
    }
    out += "\n";
  }
  return out;
}

namespace {

/// The value columns of U: audit attributes in first-appearance order,
/// then WHERE-only columns in sorted order.
std::vector<ColumnRef> ViewColumns(const AuditExpression& expr) {
  std::vector<ColumnRef> columns;
  std::unordered_set<ColumnRef, ColumnRefHash> seen;
  for (const auto& group : expr.attrs.groups) {
    for (const auto& attr : group.attrs) {
      if (seen.insert(attr).second) columns.push_back(attr);
    }
  }
  for (const auto& col : CollectColumns(expr.where.get())) {
    if (seen.insert(col).second) columns.push_back(col);
  }
  return columns;
}

}  // namespace

Result<TargetView> ComputeTargetView(const AuditExpression& expr,
                                     const DatabaseView& db,
                                     Timestamp version,
                                     const ExecOptions& options) {
  TargetView view;
  view.tables = expr.from;
  view.columns = ViewColumns(expr);

  sql::SelectStatement stmt;
  stmt.from = expr.from;
  stmt.select_list = view.columns;
  stmt.where = expr.where ? expr.where->Clone() : nullptr;

  auto result = Execute(stmt, db, options);
  if (!result.ok()) return result.status();

  FactSet seen;
  for (size_t i = 0; i < result->rows.size(); ++i) {
    if (!seen.emplace(result->lineage[i], result->rows[i]).second) continue;
    view.facts.push_back(TargetView::Fact{result->lineage[i],
                                          result->rows[i], version});
  }
  view.RebuildTidIndex();
  return view;
}

Result<TargetView> ComputeTargetViewOverVersions(const AuditExpression& expr,
                                                 const Backlog& backlog,
                                                 const ExecOptions& options,
                                                 size_t event_limit) {
  TargetView merged;
  merged.tables = expr.from;
  merged.columns = ViewColumns(expr);

  FactSet seen;
  for (Timestamp version :
       backlog.VersionTimestamps(expr.data_interval, event_limit)) {
    auto snapshot = backlog.SnapshotAt(version, event_limit);
    if (!snapshot.ok()) return snapshot.status();
    auto view = ComputeTargetView(expr, snapshot->View(), version, options);
    if (!view.ok()) return view.status();
    for (auto& fact : view->facts) {
      if (!seen.emplace(fact.tids, fact.values).second) continue;
      merged.facts.push_back(std::move(fact));
    }
  }
  merged.RebuildTidIndex();
  return merged;
}

}  // namespace audit
}  // namespace auditdb
