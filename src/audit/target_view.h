#ifndef AUDITDB_AUDIT_TARGET_VIEW_H_
#define AUDITDB_AUDIT_TARGET_VIEW_H_

#include <string>
#include <vector>

#include "src/audit/audit_expression.h"
#include "src/backlog/backlog.h"
#include "src/engine/executor.h"
#include "src/storage/database.h"

namespace auditdb {
namespace audit {

/// The target data view U of an audit expression (Section 3.1): the
/// sensitive data under disclosure review. Its scheme is the union of the
/// AUDIT-clause attributes, the WHERE-clause attributes, and one tuple-id
/// attribute per FROM table; its facts are the satisfying assignments of
/// the WHERE predicate over the cross product of the FROM tables —
/// collected from every data version selected by DATA-INTERVAL.
struct TargetView {
  /// One data fact (row of U).
  struct Fact {
    /// Tuple ids, aligned with `tables`.
    std::vector<Tid> tids;
    /// Attribute values, aligned with `columns`.
    std::vector<Value> values;
    /// Timestamp of the first data version this fact was observed in.
    Timestamp version;
  };

  /// FROM tables, in clause order (tid layout).
  std::vector<std::string> tables;
  /// Value columns: audit attributes first (in structure order), then any
  /// WHERE-only attributes; fully qualified and deduplicated.
  std::vector<ColumnRef> columns;
  /// Distinct facts, in first-observed order.
  std::vector<Fact> facts;
  /// Compressed lineage index: table_tids[i] holds every tid appearing in
  /// facts' position i (aligned with `tables`). Populated by the view
  /// builders via RebuildTidIndex(); hand-assembled views may leave it
  /// empty, in which case bitmap consumers fall back to the facts.
  std::vector<TidBitmap> table_tids;

  size_t size() const { return facts.size(); }

  /// Recomputes `table_tids` from `facts`. Call after mutating facts.
  void RebuildTidIndex();

  /// Index of `col` in `columns`, or error.
  Result<size_t> ColumnIndex(const ColumnRef& col) const;

  /// Index of `table` in `tables`, or error.
  Result<size_t> TableIndex(const std::string& table) const;

  /// Columnar projection of the facts' value columns, one ColumnVector
  /// per entry of `columns` (tids are omitted: a fact carries one tid per
  /// FROM table, not a single row id). The audit layers run their
  /// fact-validity screens (NULL checks per granule scheme) over this
  /// batch instead of walking facts row by row.
  Batch ToBatch() const;

  /// Pretty-prints U as a table (the paper's Tables 4 and 5 layout: tid
  /// columns followed by value columns).
  std::string ToString() const;
};

/// Computes U on a single database state. `expr` must already be
/// Qualify()-ed against a compatible catalog. `version` only labels the
/// facts.
Result<TargetView> ComputeTargetView(const AuditExpression& expr,
                                     const DatabaseView& db,
                                     Timestamp version,
                                     const ExecOptions& options =
                                         ExecOptions{});

/// Computes U across every data version in `expr.data_interval`, as
/// reconstructed from the backlog, and unions the facts (deduplicated by
/// tids + values). `event_limit` bounds the backlog prefix read (a pinned
/// audit passes its captured event count so concurrent appends are
/// invisible).
Result<TargetView> ComputeTargetViewOverVersions(
    const AuditExpression& expr, const Backlog& backlog,
    const ExecOptions& options = ExecOptions{},
    size_t event_limit = Backlog::kNoLimit);

}  // namespace audit
}  // namespace auditdb

#endif  // AUDITDB_AUDIT_TARGET_VIEW_H_
