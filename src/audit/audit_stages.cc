#include "src/audit/audit_stages.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "src/audit/audit_index.h"
#include "src/audit/candidate.h"

namespace auditdb {
namespace audit {

namespace {

/// Shape-level outcome of parse + static candidacy, shared by every log
/// entry with that shape inside one screened range.
struct ShapeScreen {
  bool parse_failed = false;
  bool error = false;
  bool candidate = false;
  std::shared_ptr<const sql::SelectStatement> stmt;
};

}  // namespace

StaticScreenResult StaticScreenRange(const AuditExpression& expr,
                                     const QueryLog& log,
                                     const Catalog& catalog,
                                     const CandidateOptions& options,
                                     size_t begin, size_t end,
                                     const CandidateCacheContext& cache_ctx) {
  StaticScreenResult out;
  end = std::min(end, log.size());
  std::unordered_map<sql::QueryShape, ShapeScreen, sql::QueryShapeHash> memo;
  for (size_t i = begin; i < end; ++i) {
    const LoggedQuery& logged = log.Entry(i);
    QueryVerdict verdict;
    verdict.query_id = logged.id;
    verdict.admitted = expr.filter.Admits(logged);
    if (verdict.admitted) {
      ++out.num_admitted;
      sql::QueryShape shape = logged.shape.zero()
                                  ? sql::ComputeQueryShape(logged.sql)
                                  : logged.shape;
      ShapeScreen fresh;
      ShapeScreen* screened = nullptr;
      if (cache_ctx.shape_dedup) {
        auto hit = memo.find(shape);
        if (hit != memo.end()) screened = &hit->second;
      }
      if (screened == nullptr) {
        auto stmt = sql::ParseSelect(logged.sql);
        if (!stmt.ok()) {
          fresh.parse_failed = true;
        } else {
          auto shared = std::make_shared<const sql::SelectStatement>(
              std::move(*stmt));
          auto candidate = CachedBatchCandidate(
              cache_ctx.cache, shape, cache_ctx.expr_hash,
              cache_ctx.state_key, *shared, expr, catalog, options);
          if (!candidate.ok()) {
            // Unresolvable columns / unknown tables: the check proved
            // nothing about this query. Record an error verdict, distinct
            // from "statically cleared".
            fresh.error = true;
          } else if (*candidate) {
            fresh.candidate = true;
            fresh.stmt = std::move(shared);
          }
        }
        screened = cache_ctx.shape_dedup
                       ? &memo.emplace(shape, std::move(fresh)).first->second
                       : &fresh;
      }
      verdict.parse_failed = screened->parse_failed;
      verdict.error = screened->error;
      if (screened->candidate) {
        verdict.candidate = true;
        out.candidates.push_back(ScreenedCandidate{i, screened->stmt});
      }
    }
    out.verdicts.push_back(verdict);
  }
  return out;
}

void StaticOnlyBatchVerdict(const AuditExpression& expr,
                            const Catalog& catalog,
                            const std::vector<const sql::SelectStatement*>&
                                candidate_stmts,
                            AuditReport* report) {
  std::unordered_set<ColumnRef, ColumnRefHash> covered;
  for (const sql::SelectStatement* stmt : candidate_stmts) {
    auto cols = StaticAccessedColumns(*stmt, catalog,
                                      /*outputs_only=*/!expr.indispensable);
    if (!cols.ok()) continue;
    covered.insert(cols->begin(), cols->end());
  }
  auto schemes = expr.attrs.EnumerateSchemes();
  report->num_schemes = schemes.size();
  for (const auto& scheme : schemes) {
    bool all = true;
    for (const auto& attr : scheme) {
      if (covered.count(attr) == 0) {
        all = false;
        break;
      }
    }
    if (all && !scheme.empty()) {
      report->batch_suspicious = true;
      report->evidence +=
          "static: candidates cover scheme {" + [&scheme] {
            std::string s;
            for (const auto& a : scheme) {
              if (!s.empty()) s += ",";
              s += a.ToString();
            }
            return s;
          }() + "}\n";
    }
  }
}

Result<std::vector<int64_t>> MinimizeBatch(
    const TargetView& view, const std::vector<GranuleScheme>& schemes,
    const AuditExpression& expr, const std::vector<AccessProfile>& profiles,
    const std::vector<int64_t>& profile_ids, const SuspicionOptions& options) {
  std::vector<size_t> kept;
  for (size_t i = 0; i < profiles.size(); ++i) kept.push_back(i);
  for (size_t i = 0; i < profiles.size(); ++i) {
    std::vector<const AccessProfile*> reduced;
    for (size_t j : kept) {
      if (j != i) reduced.push_back(&profiles[j]);
    }
    if (reduced.size() == kept.size()) continue;  // i already dropped
    auto reduced_result = CheckBatchSuspicion(view, schemes, expr.threshold,
                                              expr.indispensable, reduced,
                                              options);
    if (!reduced_result.ok()) return reduced_result.status();
    if (reduced_result->suspicious) {
      kept.erase(std::remove(kept.begin(), kept.end(), i), kept.end());
    }
  }
  std::vector<int64_t> out;
  out.reserve(kept.size());
  for (size_t j : kept) out.push_back(profile_ids[j]);
  return out;
}

std::vector<std::string> CommonTables(const sql::SelectStatement& query,
                                      const AuditExpression& expr) {
  std::vector<std::string> out;
  for (const auto& table : expr.from) {
    if (std::find(query.from.begin(), query.from.end(), table) !=
        query.from.end()) {
      out.push_back(table);
    }
  }
  return out;
}

Result<bool> SharesIndispensableTuple(const QueryResult& query_result,
                                      const AuditExpression& expr,
                                      const std::vector<std::string>& common,
                                      const DatabaseView& state,
                                      const ExecOptions& exec,
                                      bool tid_bitmaps) {
  if (tid_bitmaps && common.size() == 1) {
    // Single common table: both projections are plain tid sets, so the
    // intersection test is one word-wide bitmap Intersects.
    auto query_tids = query_result.ProjectLineageBitmap(common[0]);
    if (!query_tids.ok()) return query_tids.status();
    if (query_tids->Empty()) return false;

    sql::SelectStatement audit_query;
    audit_query.select_star = true;
    audit_query.from = expr.from;
    audit_query.where = expr.where ? expr.where->Clone() : nullptr;
    auto audit_result = Execute(audit_query, state, exec);
    if (!audit_result.ok()) return audit_result.status();
    auto audit_tids = audit_result->ProjectLineageBitmap(common[0]);
    if (!audit_tids.ok()) return audit_tids.status();
    return query_tids->Intersects(*audit_tids);
  }

  auto query_tuples = query_result.ProjectLineage(common);
  if (!query_tuples.ok()) return query_tuples.status();
  if (query_tuples->empty()) return false;

  sql::SelectStatement audit_query;
  audit_query.select_star = true;
  audit_query.from = expr.from;
  audit_query.where = expr.where ? expr.where->Clone() : nullptr;
  auto audit_result = Execute(audit_query, state, exec);
  if (!audit_result.ok()) return audit_result.status();
  auto audit_tuples = audit_result->ProjectLineage(common);
  if (!audit_tuples.ok()) return audit_tuples.status();

  for (const auto& tuple : *query_tuples) {
    if (audit_tuples->count(tuple) > 0) return true;
  }
  return false;
}

}  // namespace audit
}  // namespace auditdb
