#include "src/audit/attr_structure.h"

#include <algorithm>

namespace auditdb {
namespace audit {

namespace {

bool IsStar(const ColumnRef& ref) {
  return ref.table.empty() && ref.column == "*";
}

}  // namespace

std::string AttrGroup::ToString() const {
  std::string out = mandatory ? "(" : "[";
  for (size_t i = 0; i < attrs.size(); ++i) {
    if (i > 0) out += ",";
    out += attrs[i].ToString();
  }
  out += mandatory ? ")" : "]";
  return out;
}

std::string AttrStructure::ToString() const {
  std::string out;
  for (const auto& group : groups) out += group.ToString();
  return out;
}

Status AttrStructure::Qualify(const Catalog& catalog,
                              const std::vector<std::string>& scope) {
  for (auto& group : groups) {
    std::vector<ColumnRef> expanded;
    for (auto& attr : group.attrs) {
      if (IsStar(attr)) {
        for (const auto& table_name : scope) {
          auto table = catalog.GetTable(table_name);
          if (!table.ok()) return table.status();
          for (const auto& col : (*table)->columns()) {
            expanded.push_back(ColumnRef{table_name, col.name});
          }
        }
        continue;
      }
      // Table-qualified star: T.*
      if (!attr.table.empty() && attr.column == "*") {
        auto table = catalog.GetTable(attr.table);
        if (!table.ok()) return table.status();
        for (const auto& col : (*table)->columns()) {
          expanded.push_back(ColumnRef{attr.table, col.name});
        }
        continue;
      }
      auto resolved = catalog.Resolve(attr, scope);
      if (!resolved.ok()) return resolved.status();
      expanded.push_back(*resolved);
    }
    group.attrs = std::move(expanded);
  }
  return Status::Ok();
}

AttrStructure AttrStructure::Normalized() const {
  AttrGroup mandatory_merged;
  mandatory_merged.mandatory = true;
  std::vector<AttrGroup> optional_groups;

  for (const auto& group : groups) {
    if (group.mandatory || group.attrs.size() == 1) {
      // Rule 1/7: a singleton optional set equals a mandatory set;
      // rule 2: mandatory sets merge.
      for (const auto& a : group.attrs) {
        mandatory_merged.attrs.push_back(a);
      }
    } else {
      AttrGroup g = group;
      std::sort(g.attrs.begin(), g.attrs.end());
      g.attrs.erase(std::unique(g.attrs.begin(), g.attrs.end()),
                    g.attrs.end());
      // An optional group that collapses to a singleton after dedup is
      // also mandatory (rule 1 after rule 3).
      if (g.attrs.size() == 1) {
        mandatory_merged.attrs.push_back(g.attrs[0]);
      } else {
        optional_groups.push_back(std::move(g));
      }
    }
  }

  std::sort(mandatory_merged.attrs.begin(), mandatory_merged.attrs.end());
  mandatory_merged.attrs.erase(std::unique(mandatory_merged.attrs.begin(),
                                           mandatory_merged.attrs.end()),
                               mandatory_merged.attrs.end());
  std::sort(optional_groups.begin(), optional_groups.end());
  optional_groups.erase(
      std::unique(optional_groups.begin(), optional_groups.end()),
      optional_groups.end());

  AttrStructure out;
  if (!mandatory_merged.attrs.empty()) {
    out.groups.push_back(std::move(mandatory_merged));
  }
  for (auto& g : optional_groups) out.groups.push_back(std::move(g));
  return out;
}

std::vector<std::set<ColumnRef>> AttrStructure::EnumerateSchemes() const {
  // Cartesian product over groups: a mandatory group contributes its whole
  // set; an optional group contributes one chosen member.
  std::vector<std::set<ColumnRef>> schemes;
  schemes.emplace_back();  // start from the empty scheme

  for (const auto& group : groups) {
    if (group.attrs.empty()) continue;
    if (group.mandatory) {
      for (auto& scheme : schemes) {
        scheme.insert(group.attrs.begin(), group.attrs.end());
      }
    } else {
      std::vector<std::set<ColumnRef>> next;
      next.reserve(schemes.size() * group.attrs.size());
      for (const auto& scheme : schemes) {
        for (const auto& choice : group.attrs) {
          std::set<ColumnRef> s = scheme;
          s.insert(choice);
          next.push_back(std::move(s));
        }
      }
      schemes = std::move(next);
    }
  }

  // Drop empty schemes (structure with no attributes at all).
  schemes.erase(std::remove_if(schemes.begin(), schemes.end(),
                               [](const std::set<ColumnRef>& s) {
                                 return s.empty();
                               }),
                schemes.end());

  // Dedup, then keep only minimal schemes: granule access is monotone in
  // the attribute set, so a scheme containing another is redundant.
  std::sort(schemes.begin(), schemes.end());
  schemes.erase(std::unique(schemes.begin(), schemes.end()), schemes.end());
  std::vector<std::set<ColumnRef>> minimal;
  for (const auto& s : schemes) {
    bool dominated = false;
    for (const auto& t : schemes) {
      if (&s == &t) continue;
      if (t.size() < s.size() &&
          std::includes(s.begin(), s.end(), t.begin(), t.end())) {
        dominated = true;
        break;
      }
    }
    if (!dominated) minimal.push_back(s);
  }
  return minimal;
}

bool AttrStructure::EquivalentTo(const AttrStructure& other) const {
  return EnumerateSchemes() == other.EnumerateSchemes();
}

std::set<ColumnRef> AttrStructure::AllAttributes() const {
  std::set<ColumnRef> out;
  for (const auto& group : groups) {
    out.insert(group.attrs.begin(), group.attrs.end());
  }
  return out;
}

bool AttrStructure::HasStar() const {
  for (const auto& group : groups) {
    for (const auto& attr : group.attrs) {
      if (attr.column == "*") return true;
    }
  }
  return false;
}

AttrStructure AttrStructure::Mandatory(std::vector<ColumnRef> attrs) {
  AttrStructure out;
  out.groups.push_back(AttrGroup{true, std::move(attrs)});
  return out;
}

AttrStructure AttrStructure::Optional(std::vector<ColumnRef> attrs) {
  AttrStructure out;
  out.groups.push_back(AttrGroup{false, std::move(attrs)});
  return out;
}

}  // namespace audit
}  // namespace auditdb
