#include "src/audit/audit_expression.h"

#include "src/common/string_util.h"
#include "src/expr/analysis.h"

namespace auditdb {
namespace audit {

AuditExpression AuditExpression::Clone() const {
  AuditExpression out;
  out.attrs = attrs;
  out.from = from;
  out.where = where ? where->Clone() : nullptr;
  out.filter = filter;
  out.data_interval = data_interval;
  out.threshold = threshold;
  out.indispensable = indispensable;
  return out;
}

std::string AuditExpression::ToString() const {
  std::string out;
  auto rp_list = [](const std::vector<RolePurposePattern>& patterns) {
    std::string s;
    for (const auto& p : patterns) s += " " + p.ToString();
    return s;
  };
  if (!filter.neg_role_purpose.empty()) {
    out += "Neg-Role-Purpose" + rp_list(filter.neg_role_purpose) + "\n";
  }
  if (!filter.pos_role_purpose.empty()) {
    out += "Pos-Role-Purpose" + rp_list(filter.pos_role_purpose) + "\n";
  }
  if (!filter.neg_users.empty()) {
    out += "Neg-User-Identity " + Join(filter.neg_users, " ") + "\n";
  }
  if (!filter.pos_users.empty()) {
    out += "Pos-User-Identity " + Join(filter.pos_users, " ") + "\n";
  }
  if (filter.during.has_value()) {
    out += "DURING " + filter.during->ToString() + "\n";
  }
  out += "DATA-INTERVAL " + data_interval.ToString() + "\n";
  out += "THRESHOLD " + threshold.ToString() + "\n";
  out += std::string("INDISPENSABLE ") +
         (indispensable ? "true" : "false") + "\n";
  out += "AUDIT " + attrs.ToString() + "\n";
  out += "FROM " + Join(from, ", ") + "\n";
  if (where) {
    out += "WHERE " + where->ToString() + "\n";
  }
  return out;
}

Status AuditExpression::Qualify(const Catalog& catalog) {
  for (const auto& table : from) {
    auto t = catalog.GetTable(table);
    if (!t.ok()) return t.status();
  }
  AUDITDB_RETURN_IF_ERROR(attrs.Qualify(catalog, from));
  if (where) {
    AUDITDB_RETURN_IF_ERROR(QualifyColumns(where.get(), catalog, from));
  }
  return Status::Ok();
}

}  // namespace audit
}  // namespace auditdb
