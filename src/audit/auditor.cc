#include "src/audit/auditor.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <unordered_map>

#include "src/audit/audit_stages.h"

namespace auditdb {
namespace audit {

std::vector<int64_t> AuditReport::SuspiciousQueryIds() const {
  std::vector<int64_t> out;
  for (const auto& v : verdicts) {
    if (v.suspicious_alone) out.push_back(v.query_id);
  }
  return out;
}

std::string AuditReport::Summary() const {
  std::string out;
  out += "logged=" + std::to_string(num_logged);
  out += " admitted=" + std::to_string(num_admitted);
  out += " candidates=" + std::to_string(num_candidates);
  out += " executed=" + std::to_string(num_executed);
  out += " |U|=" + std::to_string(target_view_size);
  out += " schemes=" + std::to_string(num_schemes);
  out += std::string(" batch_suspicious=") +
         (batch_suspicious ? "true" : "false");
  auto ids = SuspiciousQueryIds();
  out += " suspicious_queries=[";
  for (size_t i = 0; i < ids.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(ids[i]);
  }
  out += "]";
  return out;
}

std::string AuditReport::DetailedReport(const QueryLog& log) const {
  std::string out;
  out += "=== AUDIT REPORT ===\n";
  out += expression;
  out += "\npipeline: " + std::to_string(num_logged) + " logged -> " +
         std::to_string(num_admitted) + " admitted -> " +
         std::to_string(num_candidates) + " candidates -> " +
         std::to_string(num_executed) + " executed; |U| = " +
         std::to_string(target_view_size) + ", " +
         std::to_string(num_schemes) + " scheme(s)\n";
  {
    char timing[160];
    std::snprintf(timing, sizeof(timing),
                  "phases: static %.1f ms, view %.1f ms, exec %.1f ms, "
                  "check %.1f ms\n",
                  static_seconds * 1e3, view_seconds * 1e3,
                  exec_seconds * 1e3, check_seconds * 1e3);
    out += timing;
  }
  out += std::string("batch verdict: ") +
         (batch_suspicious ? "SUSPICIOUS" : "not suspicious") + "\n";
  if (!minimal_batch.empty()) {
    out += "minimal suspicious batch:";
    for (int64_t id : minimal_batch) out += " #" + std::to_string(id);
    out += "\n";
  }
  out += "\nper-query verdicts:\n";
  for (const auto& verdict : verdicts) {
    std::string flag;
    if (!verdict.admitted) {
      flag = "filtered ";
    } else if (verdict.parse_failed) {
      flag = "unparsed ";
    } else if (verdict.error) {
      flag = "ERROR    ";  // static check failed: nothing proven
    } else if (!verdict.candidate) {
      flag = "cleared  ";  // statically
    } else if (verdict.suspicious_alone) {
      flag = "SUSPECT  ";
    } else {
      flag = "candidate";
    }
    auto entry = log.Get(verdict.query_id);
    // Render, not ToString: the displayed line honors any installed
    // policy redactor while the verdict itself was computed from the
    // unredacted text.
    out += "  [" + flag + "] " +
           (entry.ok() ? log.Render(**entry)
                       : "#" + std::to_string(verdict.query_id)) +
           "\n";
  }
  if (!evidence.empty()) {
    out += "\nevidence:\n" + evidence;
  }
  return out;
}

std::string AuditReport::CanonicalString() const {
  std::string out;
  out += expression;
  out += "\ncounts: logged=" + std::to_string(num_logged) +
         " admitted=" + std::to_string(num_admitted) +
         " candidates=" + std::to_string(num_candidates) +
         " executed=" + std::to_string(num_executed) +
         " |U|=" + std::to_string(target_view_size) +
         " schemes=" + std::to_string(num_schemes) + "\n";
  for (const auto& v : verdicts) {
    out += "verdict " + std::to_string(v.query_id) + ":";
    if (v.admitted) out += " admitted";
    if (v.candidate) out += " candidate";
    if (v.suspicious_alone) out += " suspicious_alone";
    if (v.parse_failed) out += " parse_failed";
    if (v.error) out += " error";
    out += "\n";
  }
  out += std::string("batch_suspicious=") +
         (batch_suspicious ? "true" : "false") + "\n";
  out += "minimal_batch=[";
  for (size_t i = 0; i < minimal_batch.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(minimal_batch[i]);
  }
  out += "]\n";
  out += "evidence:\n" + evidence;
  return out;
}

Result<AuditReport> Auditor::Audit(const std::string& audit_text,
                                   Timestamp now,
                                   const AuditOptions& options) const {
  auto expr = ParseAudit(audit_text, now);
  if (!expr.ok()) return expr.status();
  return Audit(*expr, options);
}

AuditPin Auditor::Pin() const {
  AuditPin pin;
  // Order matters for consistency under concurrent writers: capture the
  // log and backlog prefixes *before* the database view, so every query/
  // event inside the pin has its effects inside the pinned versions too
  // (the view can only be newer, never older, than the prefixes).
  pin.log_size = log_->size();
  pin.backlog_events = backlog_->event_count();
  pin.db = db_->Snapshot();
  return pin;
}

Result<AuditReport> Auditor::Audit(const AuditExpression& parsed,
                                   const AuditOptions& options) const {
  return AuditPinned(parsed, options, Pin());
}

Result<AuditReport> Auditor::AuditPinned(const AuditExpression& parsed,
                                         const AuditOptions& options,
                                         const AuditPin& pin) const {
  AuditExpression expr = parsed.Clone();
  AUDITDB_RETURN_IF_ERROR(expr.Qualify(pin.db.catalog()));

  AuditReport report;
  report.expression = expr.ToString();
  report.num_logged = pin.log_size;

  using Clock = std::chrono::steady_clock;
  auto seconds_since = [](Clock::time_point start) {
    return std::chrono::duration<double>(Clock::now() - start).count();
  };
  auto phase_start = Clock::now();

  // Phase 1+2: limiting parameters, then static candidacy (the same
  // range helper the concurrent scheduler shards over). Static decisions
  // read only schemas, so their cache key is the catalog epoch — row
  // writes never evict them (the ablation flag restores the old
  // evict-on-any-write keying).
  CandidateCacheContext cache_ctx;
  cache_ctx.cache = options.cache;
  cache_ctx.expr_hash = std::hash<std::string>{}(report.expression);
  cache_ctx.state_key = options.cache_global_state_keys
                            ? db_->mutation_count()
                            : pin.db.catalog_epoch();
  cache_ctx.shape_dedup = options.shape_dedup;
  StaticScreenResult screened =
      StaticScreenRange(expr, *log_, pin.db.catalog(), options.candidate, 0,
                        pin.log_size, cache_ctx);
  report.verdicts = std::move(screened.verdicts);
  report.num_admitted = screened.num_admitted;
  report.num_candidates = screened.candidates.size();
  std::vector<ScreenedCandidate>& candidates = screened.candidates;

  report.static_seconds = seconds_since(phase_start);

  // Data-independent mode: decide from the static phase alone.
  if (options.static_only) {
    std::vector<const sql::SelectStatement*> stmts;
    stmts.reserve(candidates.size());
    for (const auto& candidate : candidates) {
      stmts.push_back(candidate.stmt.get());
    }
    StaticOnlyBatchVerdict(expr, pin.db.catalog(), stmts, &report);
    if (options.per_query_verdicts) {
      for (const auto& candidate : candidates) {
        auto single = IsSingleCandidate(*candidate.stmt, expr,
                                        pin.db.catalog(), options.candidate);
        QueryVerdict& verdict = report.verdicts[candidate.log_index];
        // A failed check proves nothing — flag the error instead of
        // silently reporting the query as not suspicious.
        if (!single.ok()) {
          verdict.error = true;
        } else {
          verdict.suspicious_alone = *single;
        }
      }
    }
    return report;
  }

  // Phase 3: target data view across DATA-INTERVAL versions (reading
  // only the pinned backlog prefix).
  phase_start = Clock::now();
  auto view = ComputeTargetViewOverVersions(expr, *backlog_, options.exec,
                                            pin.backlog_events);
  if (!view.ok()) return view.status();
  report.target_view_size = view->size();

  auto schemes = BuildSchemes(expr);
  report.num_schemes = schemes.size();
  report.view_seconds = seconds_since(phase_start);
  phase_start = Clock::now();

  // Phase 4: execute candidates against their own historical states.
  // Queries between the same two changes share a state; cache snapshots
  // by event count.
  std::unordered_map<size_t, std::unique_ptr<Snapshot>> snapshot_cache;
  std::vector<AccessProfile> profiles;
  std::vector<int64_t> profile_ids;
  for (const auto& candidate : candidates) {
    const LoggedQuery& logged = log_->Entry(candidate.log_index);
    size_t key = backlog_->EventCountAt(logged.timestamp, pin.backlog_events);
    auto it = snapshot_cache.find(key);
    if (it == snapshot_cache.end()) {
      auto snapshot =
          backlog_->SnapshotAt(logged.timestamp, pin.backlog_events);
      if (!snapshot.ok()) return snapshot.status();
      it = snapshot_cache
               .emplace(key,
                        std::make_unique<Snapshot>(std::move(*snapshot)))
               .first;
    }
    auto profile = ComputeAccessProfile(*candidate.stmt, it->second->View(),
                                        options.exec);
    if (!profile.ok()) {
      // Execution-time failure (e.g. type error): skip this query but
      // keep auditing the rest.
      continue;
    }
    profiles.push_back(std::move(*profile));
    profile_ids.push_back(logged.id);
    ++report.num_executed;
  }

  report.exec_seconds = seconds_since(phase_start);
  phase_start = Clock::now();

  // Phase 5: granule-access suspicion.
  std::vector<const AccessProfile*> batch;
  batch.reserve(profiles.size());
  for (const auto& p : profiles) batch.push_back(&p);

  auto batch_result = CheckBatchSuspicion(*view, schemes, expr.threshold,
                                          expr.indispensable, batch,
                                          options.suspicion);
  if (!batch_result.ok()) return batch_result.status();
  report.batch_suspicious = batch_result->suspicious;
  report.evidence = batch_result->Describe(*view, schemes);

  if (options.per_query_verdicts) {
    std::unordered_map<int64_t, size_t> profile_by_id;
    for (size_t i = 0; i < profile_ids.size(); ++i) {
      profile_by_id[profile_ids[i]] = i;
    }
    for (auto& verdict : report.verdicts) {
      auto it = profile_by_id.find(verdict.query_id);
      if (it == profile_by_id.end()) continue;
      std::vector<const AccessProfile*> single{&profiles[it->second]};
      auto single_result = CheckBatchSuspicion(*view, schemes,
                                               expr.threshold,
                                               expr.indispensable, single,
                                               options.suspicion);
      if (!single_result.ok()) return single_result.status();
      verdict.suspicious_alone = single_result->suspicious;
    }
  }

  if (options.minimize_batch && report.batch_suspicious) {
    auto minimal = MinimizeBatch(*view, schemes, expr, profiles,
                                 profile_ids, options.suspicion);
    if (!minimal.ok()) return minimal.status();
    report.minimal_batch = std::move(*minimal);
  }
  report.check_seconds = seconds_since(phase_start);

  return report;
}

}  // namespace audit
}  // namespace auditdb
