#ifndef AUDITDB_AUDIT_AUDIT_STAGES_H_
#define AUDITDB_AUDIT_AUDIT_STAGES_H_

#include <vector>

#include "src/audit/auditor.h"
#include "src/audit/granule.h"
#include "src/engine/lineage.h"

namespace auditdb {
namespace audit {

/// Stage helpers of the audit pipeline, factored out of Auditor::Audit so
/// the serial auditor and the concurrent AuditScheduler run the *same*
/// per-query logic — the determinism guarantee (parallel output identical
/// to serial) rests on sharing these, not on reimplementing them.

/// A query that survived the static phase within one log shard.
struct ScreenedCandidate {
  /// Position in the QueryLog (global, not shard-relative), so shard
  /// results merge back into log order.
  size_t log_index = 0;
  /// Parsed statement; shared because structurally-identical log entries
  /// (same shape) are parsed once and reference one immutable AST.
  std::shared_ptr<const sql::SelectStatement> stmt;
};

/// Phases 1+2 over one contiguous log range.
struct StaticScreenResult {
  /// One verdict per log entry in [begin, end), in log order.
  std::vector<QueryVerdict> verdicts;
  /// Candidates of the range, in log order.
  std::vector<ScreenedCandidate> candidates;
  size_t num_admitted = 0;
};

/// Decision-cache context for the static phase (audit_index.h). With
/// `cache` null every candidacy check runs directly; otherwise checks are
/// memoized under (query shape, `expr_hash`, `state_key`). Results are
/// byte-identical either way (errors are cached too).
struct CandidateCacheContext {
  DecisionCache* cache = nullptr;
  /// Structural hash of the qualified expression being audited.
  uint64_t expr_hash = 0;
  /// State key the static decisions are valid for (the catalog epoch of
  /// the pinned view; the global mutation count in ablation mode).
  uint64_t state_key = 0;
  /// Parse + screen once per structural shape instead of once per log
  /// entry (sound: shape-equal entries lex to identical token streams,
  /// so they parse and screen identically; admission stays per-entry
  /// because it reads the entry's user/role/purpose/time annotations).
  /// Off reproduces the pre-shape behavior for ablation.
  bool shape_dedup = true;
};

/// Runs limiting-parameter admission, SQL parsing, and static candidacy
/// over log entries [begin, end). `expr` must be qualified. Pure apart
/// from the (internally synchronized) cache: reads shared state only, so
/// ranges can run concurrently.
StaticScreenResult StaticScreenRange(const AuditExpression& expr,
                                     const QueryLog& log,
                                     const Catalog& catalog,
                                     const CandidateOptions& options,
                                     size_t begin, size_t end,
                                     const CandidateCacheContext& cache_ctx =
                                         CandidateCacheContext{});

/// Data-independent batch verdict (Section 2.2): fills
/// report->batch_suspicious, num_schemes and evidence from the
/// candidates' static column sets. The covered-column union is
/// order-insensitive, so any shard-merge order yields identical output.
void StaticOnlyBatchVerdict(const AuditExpression& expr,
                            const Catalog& catalog,
                            const std::vector<const sql::SelectStatement*>&
                                candidate_stmts,
                            AuditReport* report);

/// Phase-5 greedy batch minimization: drops each profile (in id order) if
/// the batch stays suspicious without it; returns the kept query ids.
/// Propagates suspicion-check errors (e.g. unprojectable lineage).
Result<std::vector<int64_t>> MinimizeBatch(
    const TargetView& view, const std::vector<GranuleScheme>& schemes,
    const AuditExpression& expr, const std::vector<AccessProfile>& profiles,
    const std::vector<int64_t>& profile_ids, const SuspicionOptions& options);

/// Tables common to the query's and the audit expression's FROM clauses,
/// in the audit expression's order. Shared by the Agrawal and Motwani
/// baselines.
std::vector<std::string> CommonTables(const sql::SelectStatement& query,
                                      const AuditExpression& expr);

/// Whether the executed query (`query_result`) shares an indispensable
/// tuple with the audit expression's target data over the `common`
/// tables on `state`: both lineages are projected onto `common` and
/// intersected. The core dynamic test of both baseline auditors.
/// `tid_bitmaps` routes the single-common-table case through compressed
/// tid bitmaps (word-wide Intersects instead of tuple-set probes); the
/// answer and error statuses are identical either way.
Result<bool> SharesIndispensableTuple(const QueryResult& query_result,
                                      const AuditExpression& expr,
                                      const std::vector<std::string>& common,
                                      const DatabaseView& state,
                                      const ExecOptions& exec,
                                      bool tid_bitmaps = true);

}  // namespace audit
}  // namespace auditdb

#endif  // AUDITDB_AUDIT_AUDIT_STAGES_H_
