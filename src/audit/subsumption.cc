#include "src/audit/subsumption.h"

#include <algorithm>
#include <set>

#include "src/expr/implication.h"

namespace auditdb {
namespace audit {

namespace {

/// Whether p's match set is contained in q's ("-" is the wildcard).
bool PatternCoveredBy(const RolePurposePattern& p,
                      const RolePurposePattern& q) {
  bool role_ok = q.role == "-" || q.role == p.role;
  bool purpose_ok = q.purpose == "-" || q.purpose == p.purpose;
  return role_ok && purpose_ok;
}

bool IntervalContains(const TimeInterval& outer, const TimeInterval& inner) {
  return outer.start <= inner.start && inner.end <= outer.end;
}

}  // namespace

bool FilterAdmitsAtLeast(const AccessFilter& outer,
                         const AccessFilter& inner) {
  // DURING: outer must cover inner's window (an unset window means
  // unrestricted).
  if (outer.during.has_value()) {
    if (!inner.during.has_value() ||
        !IntervalContains(*outer.during, *inner.during)) {
      return false;
    }
  }
  // Negative users: everything outer rejects, inner must reject too.
  for (const auto& user : outer.neg_users) {
    if (std::find(inner.neg_users.begin(), inner.neg_users.end(), user) ==
        inner.neg_users.end()) {
      return false;
    }
  }
  // Negative role/purpose: each outer rejection must be covered by some
  // inner rejection.
  for (const auto& pattern : outer.neg_role_purpose) {
    bool covered = false;
    for (const auto& inner_pattern : inner.neg_role_purpose) {
      if (PatternCoveredBy(pattern, inner_pattern)) {
        covered = true;
        break;
      }
    }
    if (!covered) return false;
  }
  // Positive users: outer unrestricted, or inner restricted to a subset.
  if (!outer.pos_users.empty()) {
    if (inner.pos_users.empty()) return false;
    for (const auto& user : inner.pos_users) {
      if (std::find(outer.pos_users.begin(), outer.pos_users.end(), user) ==
          outer.pos_users.end()) {
        return false;
      }
    }
  }
  // Positive role/purpose: outer unrestricted, or every inner-admitted
  // pattern covered by some outer pattern.
  if (!outer.pos_role_purpose.empty()) {
    if (inner.pos_role_purpose.empty()) return false;
    for (const auto& inner_pattern : inner.pos_role_purpose) {
      bool covered = false;
      for (const auto& pattern : outer.pos_role_purpose) {
        if (PatternCoveredBy(inner_pattern, pattern)) {
          covered = true;
          break;
        }
      }
      if (!covered) return false;
    }
  }
  return true;
}

SubsumptionProfile SubsumptionProfile::Of(const AuditExpression& expr) {
  SubsumptionProfile profile;
  profile.from_set.insert(expr.from.begin(), expr.from.end());
  profile.schemes = expr.attrs.EnumerateSchemes();
  return profile;
}

bool Subsumes(const AuditExpression& stronger,
              const AuditExpression& weaker) {
  return Subsumes(stronger, SubsumptionProfile::Of(stronger), weaker,
                  SubsumptionProfile::Of(weaker));
}

bool Subsumes(const AuditExpression& stronger,
              const SubsumptionProfile& stronger_profile,
              const AuditExpression& weaker,
              const SubsumptionProfile& weaker_profile) {
  // 1. Same FROM set.
  if (stronger_profile.from_set != weaker_profile.from_set) return false;

  // 2. U containment, version by version.
  if (!ProvablyImplies(weaker.where.get(), stronger.where.get())) {
    return false;
  }

  // 3. Interval containment.
  if (!IntervalContains(stronger.data_interval, weaker.data_interval)) {
    return false;
  }

  // 4. Limiting parameters.
  if (!FilterAdmitsAtLeast(stronger.filter, weaker.filter)) return false;

  // 5. Suspicion parameters.
  if (stronger.indispensable != weaker.indispensable) return false;
  if (stronger.threshold.all || weaker.threshold.all) {
    // ALL over a strictly larger U is a stronger demand; only provable
    // when both are ALL over provably equal targets.
    if (!(stronger.threshold.all && weaker.threshold.all &&
          ProvablyImplies(stronger.where.get(), weaker.where.get()))) {
      return false;
    }
  } else if (stronger.threshold.n > weaker.threshold.n) {
    return false;
  }

  // 6. Scheme covering: accessing any weaker scheme must force some
  // stronger scheme.
  for (const auto& weak_scheme : weaker_profile.schemes) {
    bool forced = false;
    for (const auto& strong_scheme : stronger_profile.schemes) {
      if (std::includes(weak_scheme.begin(), weak_scheme.end(),
                        strong_scheme.begin(), strong_scheme.end())) {
        forced = true;
        break;
      }
    }
    if (!forced) return false;
  }
  return true;
}

}  // namespace audit
}  // namespace auditdb
