#ifndef AUDITDB_AUDIT_AUDIT_PARSER_H_
#define AUDITDB_AUDIT_AUDIT_PARSER_H_

#include <string>

#include "src/audit/audit_expression.h"
#include "src/common/status.h"
#include "src/common/timestamp.h"

namespace auditdb {
namespace audit {

/// Parses the unified audit-expression grammar (Fig. 7 of the paper) and
/// the legacy Agrawal syntax (Fig. 1). Clauses may appear in any order
/// before the AUDIT clause; unspecified clauses take their defaults:
/// DURING and DATA-INTERVAL default to the current day
/// [StartOfDay(now), now], THRESHOLD to 1, INDISPENSABLE to true.
///
/// `now` anchors the defaults and the `now()` literal, so parses are
/// reproducible in tests; it defaults to the wall clock.
Result<AuditExpression> ParseAudit(const std::string& text, Timestamp now);

Result<AuditExpression> ParseAudit(const std::string& text);

}  // namespace audit
}  // namespace auditdb

#endif  // AUDITDB_AUDIT_AUDIT_PARSER_H_
