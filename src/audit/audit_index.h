#ifndef AUDITDB_AUDIT_AUDIT_INDEX_H_
#define AUDITDB_AUDIT_AUDIT_INDEX_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/audit/audit_expression.h"
#include "src/audit/candidate.h"
#include "src/engine/lineage.h"
#include "src/sql/query_shape.h"

namespace auditdb {
namespace audit {

/// The standing-expression audit index (the paper's future-work ask for
/// "efficient algorithms mapping audit expressions to suspicious query
/// batches"): an inverted index from audited attribute to expression id,
/// consulted *before* any per-expression work, plus a memoization layer
/// for the per-(query, expression) static decisions the auditors
/// otherwise re-derive on every observation. Shared by the offline
/// Auditor, the OnlineAuditor and the AuditService.

/// Cache key component for a logged query: the SQL text with runs of
/// whitespace collapsed to single spaces (and trimmed). Literal case is
/// preserved — normalization only folds formatting differences, never
/// semantics, so two queries sharing a key are byte-equivalent to the
/// parser.
std::string NormalizedSqlKey(const std::string& sql);

/// Monotonic counters of index and cache effectiveness. Readable while
/// screenings run (relaxed atomics); rendered as the "index" metrics
/// section of auditd / the shell.
struct AuditIndexStats {
  /// Queries routed through the inverted index.
  std::atomic<uint64_t> index_lookups{0};
  /// Expressions visited because the index says the query can touch them.
  std::atomic<uint64_t> index_visited{0};
  /// Expressions skipped without any per-expression work.
  std::atomic<uint64_t> index_skipped{0};
  /// Queries that bypassed the index (parse/resolution failure, or the
  /// index disabled) and visited every expression.
  std::atomic<uint64_t> index_fallbacks{0};
  /// Decision-cache traffic (accessed-columns + candidacy + profiles).
  std::atomic<uint64_t> cache_hits{0};
  std::atomic<uint64_t> cache_misses{0};
  /// Times the cache was dropped wholesale by the change listener.
  std::atomic<uint64_t> cache_invalidations{0};

  /// {"lookups":..,"visited":..,"skipped":..,"fallbacks":..,
  ///  "cache_hits":..,"cache_misses":..,"cache_invalidations":..}
  std::string ToJson() const;
};

/// Inverted index over standing audit expressions: audited attribute
/// (fully qualified ColumnRef) -> expression ids. A query whose
/// statically-accessed columns are disjoint from an expression's audited
/// attributes can never be a batch candidate for it (the attribute-touch
/// test of Definition 1 fails), so consulting the index first makes one
/// observation sublinear in the number of standing expressions.
///
/// Not internally synchronized: registration is a setup-time operation;
/// Candidates() is const and safe to call concurrently once registration
/// is done (the OnlineAuditor serializes Add against Observe).
class ExpressionIndex {
 public:
  /// Registers a *qualified* expression under `id` (its audited
  /// attributes come from attrs.AllAttributes()).
  void Add(int id, const AuditExpression& expr);

  /// Unregisters `id` (no-op when absent).
  void Remove(int id);

  /// Ids of expressions at least one of whose audited attributes appears
  /// in `accessed`, in ascending order.
  std::vector<int> Candidates(const std::set<ColumnRef>& accessed) const;

  size_t size() const { return attrs_by_id_.size(); }

 private:
  std::unordered_map<ColumnRef, std::set<int>, ColumnRefHash> by_column_;
  std::map<int, std::vector<ColumnRef>> attrs_by_id_;
};

struct DecisionCacheOptions {
  /// Entry cap per section; at the cap the section is dropped wholesale
  /// (cheap, rare, and correctness never depends on retention — every
  /// key carries the mutation count it was computed at).
  size_t max_column_entries = 4096;
  size_t max_decision_entries = 8192;
  /// Executed access profiles are the heavyweight entries (they hold the
  /// query's full lineage-bearing result), so their cap is much smaller.
  size_t max_profile_entries = 256;
};

/// Memoizes the static per-query / per-(query, expression) decisions and
/// the executed access profiles, keyed on (query shape [, expression
/// hash], state key). The state key is chosen by the caller for what the
/// decision actually depends on:
///   - purely static decisions (accessed columns, batch candidacy) read
///     only schemas, so their key is the catalog epoch — row writes never
///     evict them;
///   - executed access profiles read table data, so their key is the
///     EpochFingerprint of the version epochs of exactly the tables the
///     query touches — a write to P-Employ cannot evict a P-Health
///     profile.
/// Thread-safe: screenings of distinct expressions share one cache across
/// worker threads. Stale hits are impossible by construction (the state
/// key is part of every entry's key), so nothing needs to invalidate the
/// cache on writes; Invalidate() remains for tests and the wholesale-
/// invalidation ablation.
class DecisionCache {
 public:
  explicit DecisionCache(DecisionCacheOptions options = DecisionCacheOptions{});

  DecisionCache(const DecisionCache&) = delete;
  DecisionCache& operator=(const DecisionCache&) = delete;

  /// The statically accessed columns of one parsed query
  /// (StaticAccessedColumns), memoized — including error outcomes, so a
  /// hit reproduces the miss byte for byte.
  struct ColumnsEntry {
    Status status;
    /// Set iff status.ok(). Shared: readers keep the set alive without
    /// copying it.
    std::shared_ptr<const std::set<ColumnRef>> columns;
  };
  Result<ColumnsEntry> AccessedColumns(const sql::QueryShape& shape,
                                       bool outputs_only, uint64_t state_key,
                                       const sql::SelectStatement& stmt,
                                       const Catalog& catalog);

  /// IsBatchCandidate memoized per (query shape, expression hash).
  /// `expr_hash` must identify the qualified expression (a structural
  /// hash of its canonical form); `options` variations are folded into
  /// the key.
  Result<bool> BatchCandidate(const sql::QueryShape& shape,
                              uint64_t expr_hash, uint64_t state_key,
                              const sql::SelectStatement& stmt,
                              const AuditExpression& expr,
                              const Catalog& catalog,
                              const CandidateOptions& options);

  /// Executed access profile of one query against the data state
  /// identified by `state_key`. Only successful executions are cached
  /// (failures are deterministic and cheap relative to a successful
  /// execution). Returns nullptr on miss; the caller computes and
  /// Store()s.
  std::shared_ptr<const AccessProfile> LookupProfile(
      const sql::QueryShape& shape, uint64_t state_key) const;
  void StoreProfile(const sql::QueryShape& shape, uint64_t state_key,
                    std::shared_ptr<const AccessProfile> profile);

  /// Drops every entry. Not needed for correctness anymore (keys carry
  /// their state); kept for tests and the ablation mode that emulates
  /// the old wholesale change-listener invalidation.
  void Invalidate();

  AuditIndexStats* stats() { return &stats_; }
  const AuditIndexStats& stats() const { return stats_; }

  /// Current entry counts, for tests and metrics.
  size_t column_entries() const;
  size_t decision_entries() const;
  size_t profile_entries() const;

 private:
  struct Decision {
    Status status;
    bool candidate = false;
  };

  DecisionCacheOptions options_;
  mutable AuditIndexStats stats_;

  mutable std::mutex mutex_;
  std::unordered_map<std::string, ColumnsEntry> columns_;
  std::unordered_map<std::string, Decision> decisions_;
  std::unordered_map<std::string, std::shared_ptr<const AccessProfile>>
      profiles_;
};

/// IsBatchCandidate through an optional cache: with `cache` null this is
/// exactly IsBatchCandidate. The shared helper keeps the online and
/// offline screeners byte-identical with and without memoization.
Result<bool> CachedBatchCandidate(DecisionCache* cache,
                                  const sql::QueryShape& shape,
                                  uint64_t expr_hash,
                                  uint64_t state_key,
                                  const sql::SelectStatement& stmt,
                                  const AuditExpression& expr,
                                  const Catalog& catalog,
                                  const CandidateOptions& options);

}  // namespace audit
}  // namespace auditdb

#endif  // AUDITDB_AUDIT_AUDIT_INDEX_H_
