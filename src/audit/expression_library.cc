#include "src/audit/expression_library.h"

namespace auditdb {
namespace audit {

Result<ExpressionLibrary::AddOutcome> ExpressionLibrary::Add(
    const AuditExpression& expr) {
  auto candidate = std::make_unique<AuditExpression>(expr.Clone());
  AUDITDB_RETURN_IF_ERROR(candidate->Qualify(*catalog_));
  SubsumptionProfile candidate_profile = SubsumptionProfile::Of(*candidate);

  AddOutcome outcome;
  // Covered by an existing member? Then it adds nothing.
  for (const auto& [id, member] : members_) {
    if (Subsumes(*member.expr, member.profile, *candidate,
                 candidate_profile)) {
      outcome.added = false;
      outcome.id = id;
      return outcome;
    }
  }
  // Evict members the newcomer covers.
  for (auto it = members_.begin(); it != members_.end();) {
    if (Subsumes(*candidate, candidate_profile, *it->second.expr,
                 it->second.profile)) {
      outcome.evicted.push_back(it->first);
      it = members_.erase(it);
    } else {
      ++it;
    }
  }
  outcome.added = true;
  outcome.id = next_id_++;
  members_.emplace(outcome.id,
                   Member{std::move(candidate), std::move(candidate_profile)});
  return outcome;
}

const AuditExpression* ExpressionLibrary::Get(int id) const {
  auto it = members_.find(id);
  return it == members_.end() ? nullptr : it->second.expr.get();
}

std::vector<int> ExpressionLibrary::ids() const {
  std::vector<int> out;
  out.reserve(members_.size());
  for (const auto& [id, member] : members_) out.push_back(id);
  return out;
}

}  // namespace audit
}  // namespace auditdb
