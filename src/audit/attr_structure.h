#ifndef AUDITDB_AUDIT_ATTR_STRUCTURE_H_
#define AUDITDB_AUDIT_ATTR_STRUCTURE_H_

#include <set>
#include <string>
#include <vector>

#include "src/catalog/catalog.h"
#include "src/common/status.h"

namespace auditdb {
namespace audit {

/// One group of the AUDIT clause: `(a,b)` is a mandatory set (all members
/// must be accessed), `[a,b]` an optional set (at least one member must be
/// accessed). An attribute may be the star `*`, which expands to every
/// column of every FROM-clause table when the structure is qualified.
struct AttrGroup {
  bool mandatory = true;
  std::vector<ColumnRef> attrs;

  bool operator==(const AttrGroup& other) const {
    return mandatory == other.mandatory && attrs == other.attrs;
  }
  bool operator<(const AttrGroup& other) const {
    if (mandatory != other.mandatory) return mandatory && !other.mandatory;
    return attrs < other.attrs;
  }

  std::string ToString() const;
};

/// The audit-attribute structure of Section 3.2: a sequence of mandatory
/// and optional groups. A batch of queries satisfies the structure when it
/// accesses every member of every mandatory group and at least one member
/// of each optional group.
///
/// The *schemes* of the structure are the minimal attribute sets whose
/// access satisfies it — the granule schemes of the suspicion model. For
/// `(a,b)[c,d]` the schemes are {a,b,c} and {a,b,d}; for `[a,b,c,d]` they
/// are {a}..{d}; for `(a,b,c,d)` the single scheme {a,b,c,d}.
struct AttrStructure {
  std::vector<AttrGroup> groups;

  /// Renders as written, e.g. "(a,b)[c,d]".
  std::string ToString() const;

  /// Resolves every attribute against `catalog` within `scope` and expands
  /// stars (`*` becomes one attribute per column per scope table, within
  /// its group).
  Status Qualify(const Catalog& catalog,
                 const std::vector<std::string>& scope);

  /// Structural normal form implementing Table 6:
  ///   rule 1/7: singleton optional groups become mandatory;
  ///   rule 2/5: all mandatory groups merge into one, placed first;
  ///   rule 3:   members sorted and deduplicated within groups;
  ///   rule 5:   optional groups sorted among themselves.
  /// (Rule 6, nesting, is resolved at parse time; rule 4 follows from
  /// rules 1 and 2.)
  AttrStructure Normalized() const;

  /// Semantic equivalence: identical minimal scheme sets. Implies (and is
  /// implied by, for Table 6 rewrites) equality of normal forms.
  bool EquivalentTo(const AttrStructure& other) const;

  /// Minimal schemes (antichain: no scheme contains another), sorted.
  std::vector<std::set<ColumnRef>> EnumerateSchemes() const;

  /// Every attribute mentioned anywhere in the structure.
  std::set<ColumnRef> AllAttributes() const;

  /// True if any group contains a bare `*`.
  bool HasStar() const;

  /// Convenience constructors.
  static AttrStructure Mandatory(std::vector<ColumnRef> attrs);
  static AttrStructure Optional(std::vector<ColumnRef> attrs);
};

}  // namespace audit
}  // namespace auditdb

#endif  // AUDITDB_AUDIT_ATTR_STRUCTURE_H_
