#ifndef AUDITDB_AUDIT_ONLINE_H_
#define AUDITDB_AUDIT_ONLINE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/audit/granule.h"
#include "src/audit/suspicion.h"
#include "src/engine/lineage.h"
#include "src/querylog/query_log.h"
#include "src/storage/database.h"

namespace auditdb {

namespace service {
class ThreadPool;
}  // namespace service

namespace audit {

/// Online auditing — the paper's future work (Section 4): instead of
/// combing a historical log, queries are screened *as they arrive*
/// against a set of standing audit expressions, and each expression
/// reports a running **suspicion rank** (the paper's "closeness value")
/// for the batch of accesses seen so far, firing the moment the batch
/// fully accesses a granule.
///
/// The rank instantiates the paper's open notion as coverage progress:
/// for each granule scheme S with effective threshold k,
///
///     rank(S) = (|covered attrs of S| + min(accessed facts, k))
///               / (|S| + k)
///
/// and the expression's rank is the max over its schemes. rank = 1 iff
/// some scheme's attributes are fully covered and at least k facts are
/// accessed — exactly the offline suspicion condition, so the online
/// monitor fires on the same batches the offline Auditor flags (for the
/// same database states).
class OnlineAuditor {
 public:
  /// `db` is the live database; queries are screened against its state at
  /// observation time. The auditor registers a change listener to detect
  /// staleness of its target views. Must outlive the auditor.
  explicit OnlineAuditor(Database* db);

  OnlineAuditor(const OnlineAuditor&) = delete;
  OnlineAuditor& operator=(const OnlineAuditor&) = delete;

  /// Registers a standing audit expression (not yet qualified is fine).
  /// The target view U is computed against the current database state at
  /// registration time and is re-derived automatically whenever the
  /// database changes underneath (cheap staleness check via the change
  /// counter). Returns the expression's id.
  Result<int> AddExpression(const AuditExpression& expr);

  /// Number of registered expressions.
  size_t size() const { return entries_.size(); }

  /// Screening outcome for one expression after one observation.
  struct Screening {
    int expression_id = 0;
    /// Whether the accumulated batch now accesses a full granule.
    bool fired = false;
    /// Closeness in [0,1]; 1 iff fired (for THRESHOLD N; ALL behaves
    /// the same with k = |U|).
    double rank = 0.0;
    /// The scheme achieving the rank.
    size_t best_scheme = 0;
  };

  /// Feeds one query. The query is parsed and executed against the
  /// current database state; expressions whose limiting parameters
  /// reject the access are skipped (their previous state is reported
  /// unchanged). Returns one Screening per registered expression.
  Result<std::vector<Screening>> Observe(const LoggedQuery& query);

  /// Parallel screening: the query is parsed and executed once, then the
  /// per-expression coverage updates (independent state per standing
  /// expression) fan out over `pool`. Same results as the serial
  /// Observe, in the same registration order. Falls back to the serial
  /// path when `pool` is null or there is at most one expression. The
  /// database must not be mutated concurrently with a screening.
  Result<std::vector<Screening>> Observe(const LoggedQuery& query,
                                         service::ThreadPool* pool);

  /// Current screening state of every expression (without observing).
  std::vector<Screening> Current() const;

  /// Drops the accumulated batch state of every expression (e.g. at the
  /// start of a new monitoring window).
  void ResetBatches();

 private:
  struct SchemeState {
    GranuleScheme scheme;
    std::vector<size_t> attr_columns;    // indices into view columns
    std::vector<size_t> tid_positions;   // indices into view tables
    std::set<ColumnRef> covered_attrs;   // by the batch so far
    size_t effective_k = 1;
    size_t valid_facts = 0;
    size_t accessed_facts = 0;
  };

  struct Entry {
    int id = 0;
    AuditExpression expr;
    TargetView view;
    std::vector<SchemeState> schemes;
    /// Batch-accumulated indispensable tids per table.
    std::map<std::string, std::set<Tid>> batch_tids;
    bool fired = false;
    /// Database change-counter value the view was built at.
    uint64_t built_at_change = 0;
  };

  Status RebuildEntryView(Entry* entry);
  void RecomputeAccessCounts(Entry* entry);
  static Screening ScreeningOf(const Entry& entry);
  /// One expression's share of Observe: candidacy check + coverage
  /// accumulation. `stmt`/`profile` may be null (parse or execution
  /// failure — the entry's state is left unchanged). Entries are
  /// independent, so distinct entries may be observed concurrently.
  Status ObserveEntry(Entry* entry, const LoggedQuery& query,
                      const sql::SelectStatement* stmt,
                      const AccessProfile* profile);

  Database* db_;
  /// Bumped by the database trigger on every mutation; shared so the
  /// listener stays valid even if the auditor is destroyed first.
  std::shared_ptr<uint64_t> change_counter_;
  std::vector<std::unique_ptr<Entry>> entries_;
  int next_id_ = 1;
};

}  // namespace audit
}  // namespace auditdb

#endif  // AUDITDB_AUDIT_ONLINE_H_
