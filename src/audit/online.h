#ifndef AUDITDB_AUDIT_ONLINE_H_
#define AUDITDB_AUDIT_ONLINE_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/audit/audit_index.h"
#include "src/audit/granule.h"
#include "src/audit/suspicion.h"
#include "src/engine/lineage.h"
#include "src/querylog/query_log.h"
#include "src/sql/query_shape.h"
#include "src/storage/database.h"

namespace auditdb {

namespace service {
class ThreadPool;
}  // namespace service

namespace audit {

/// Per-scheme screening state of one standing expression. Invariant:
/// `attr_columns[i]` resolves `scheme.attrs` member i and
/// `tid_positions[i]` resolves `scheme.tid_tables[i]` — the vectors are
/// index-aligned with the scheme, never shorter (a scheme whose columns
/// or tid tables cannot all be resolved against the view fails the
/// rebuild instead of silently misaligning).
struct OnlineSchemeState {
  GranuleScheme scheme;
  std::vector<size_t> attr_columns;    // indices into view columns
  std::vector<size_t> tid_positions;   // indices into view tables
  std::set<ColumnRef> covered_attrs;   // by the batch so far
  size_t effective_k = 1;
  size_t valid_facts = 0;
  size_t accessed_facts = 0;
};

/// Builds the per-scheme states of `expr` against `view`, carrying the
/// accumulated attribute coverage over from `previous` (matched by scheme
/// attrs). Fails — rather than dropping the resolution — when any scheme
/// attribute or tid table is absent from the view, so downstream
/// tid/attribute pairings can never misalign. Exposed as a free function
/// so the failure path is testable against hand-built views.
Result<std::vector<OnlineSchemeState>> BuildOnlineSchemeStates(
    const AuditExpression& expr, const TargetView& view,
    const std::vector<OnlineSchemeState>& previous);

/// Ablation and sharing knobs for the online monitor (ExecOptions-style:
/// defaults give the fast path, tests and benches flip them off).
struct OnlineAuditorOptions {
  /// Consult the inverted expression index before any per-entry work, so
  /// a query only visits expressions whose audited attributes it can
  /// statically touch. Screenings are byte-identical with the index off.
  bool index_enabled = true;
  /// Memoize per-(query, expression) static decisions and executed
  /// access profiles in the decision cache.
  bool cache_enabled = true;
  /// Cache to share with other audit components (e.g. the serving
  /// stack's); a private one is created when null.
  std::shared_ptr<DecisionCache> cache;
};

/// Online auditing — the paper's future work (Section 4): instead of
/// combing a historical log, queries are screened *as they arrive*
/// against a set of standing audit expressions, and each expression
/// reports a running **suspicion rank** (the paper's "closeness value")
/// for the batch of accesses seen so far, firing the moment the batch
/// fully accesses a granule.
///
/// The rank instantiates the paper's open notion as coverage progress:
/// for each granule scheme S with effective threshold k,
///
///     rank(S) = (|covered attrs of S| + min(accessed facts, k))
///               / (|S| + k)
///
/// and the expression's rank is the max over its schemes. rank = 1 iff
/// some scheme's attributes are fully covered and at least k facts are
/// accessed — exactly the offline suspicion condition, so the online
/// monitor fires on the same batches the offline Auditor flags (for the
/// same database states).
class OnlineAuditor {
 public:
  /// `db` is the live database; each observation pins one snapshot of it
  /// and screens against that. Staleness of the standing target views is
  /// detected per expression via the epoch fingerprint of its FROM
  /// tables — writes to unrelated tables neither rebuild views nor evict
  /// cached decisions. `db` must outlive the auditor.
  explicit OnlineAuditor(Database* db,
                         OnlineAuditorOptions options = OnlineAuditorOptions{});

  OnlineAuditor(const OnlineAuditor&) = delete;
  OnlineAuditor& operator=(const OnlineAuditor&) = delete;

  /// Registers a standing audit expression (not yet qualified is fine).
  /// The target view U is computed against the current database state at
  /// registration time and is re-derived automatically whenever one of
  /// its FROM tables changes underneath (cheap staleness check via the
  /// tables' epoch fingerprint). Returns the expression's id.
  Result<int> AddExpression(const AuditExpression& expr);

  /// Deregisters a standing expression; its accumulated batch state is
  /// discarded. NotFound for an id never added or already removed. Ids
  /// are never reused. Must not run concurrently with Observe (the
  /// auditor is externally synchronized, like every other mutator).
  Status RemoveExpression(int id);

  /// Number of registered expressions.
  size_t size() const { return entries_.size(); }

  /// Screening outcome for one expression after one observation.
  struct Screening {
    int expression_id = 0;
    /// Whether the accumulated batch now accesses a full granule.
    bool fired = false;
    /// Closeness in [0,1]; 1 iff fired (for THRESHOLD N; ALL behaves
    /// the same with k = |U|).
    double rank = 0.0;
    /// The scheme achieving the rank.
    size_t best_scheme = 0;
  };

  /// Feeds one query. The query is parsed and executed against the
  /// current database state; expressions whose limiting parameters
  /// reject the access are skipped (their previous state is reported
  /// unchanged). Candidacy-check failures (e.g. the query references a
  /// table unknown to the catalog) propagate as errors rather than
  /// silently clearing the query; unparseable queries are ignored, as in
  /// the offline pipeline's parse_failed verdicts. Returns one Screening
  /// per registered expression.
  Result<std::vector<Screening>> Observe(const LoggedQuery& query);

  /// Parallel screening: the query is parsed and executed once, then the
  /// per-expression coverage updates (independent state per standing
  /// expression) fan out over `pool`. Same results as the serial
  /// Observe, in the same registration order. Falls back to the serial
  /// path when `pool` is null or there is at most one expression. The
  /// database must not be mutated concurrently with a screening.
  Result<std::vector<Screening>> Observe(const LoggedQuery& query,
                                         service::ThreadPool* pool);

  /// Current screening state of every expression (without observing).
  std::vector<Screening> Current() const;

  /// Observe → fan-out hook: invoked synchronously on the observing
  /// thread at the end of every *successful* observation, after all
  /// per-expression updates, with the query and the screenings Observe
  /// is about to return. The serving stack uses it to publish push
  /// events (src/net/subscription.h); a null listener disables it.
  using ScreeningListener = std::function<void(
      const LoggedQuery& query, const std::vector<Screening>& screenings)>;
  void SetScreeningListener(ScreeningListener listener) {
    listener_ = std::move(listener);
  }

  /// Drops the accumulated batch state of every expression (e.g. at the
  /// start of a new monitoring window).
  void ResetBatches();

  /// Index / decision-cache effectiveness counters (shared with the
  /// cache passed in via options, if any).
  const AuditIndexStats& stats() const { return *cache_->stats(); }

  /// The decision cache (for serving-stack metrics wiring).
  const std::shared_ptr<DecisionCache>& cache() const { return cache_; }

 private:
  struct Entry {
    int id = 0;
    AuditExpression expr;
    /// Structural hash of the qualified expression's canonical text: the
    /// decision-cache key component identifying it across auditors
    /// sharing a cache.
    uint64_t expr_hash = 0;
    TargetView view;
    std::vector<OnlineSchemeState> schemes;
    /// Batch-accumulated indispensable tids per table, as compressed
    /// bitmaps (unions are word-wide Ors as queries stream in).
    std::map<std::string, TidBitmap> batch_tids;
    bool fired = false;
    /// Epoch fingerprint of the expression's FROM tables the view was
    /// built against; the view is stale iff the current fingerprint
    /// differs.
    uint64_t built_fingerprint = 0;
  };

  /// Shared per-observation context: snapshot/parse/execute once, reuse
  /// for every visited entry.
  struct ObserveContext {
    const sql::SelectStatement* stmt = nullptr;
    const AccessProfile* profile = nullptr;
    sql::QueryShape shape;
    /// Catalog epoch of `view` — the state key of schema-only decisions.
    uint64_t catalog_epoch = 0;
    /// The observation's pinned database view: every per-entry rebuild
    /// and candidacy check reads this one consistent state.
    DatabaseView view;
  };

  Status RebuildEntryView(Entry* entry, const DatabaseView& view);
  void RecomputeAccessCounts(Entry* entry);
  static Screening ScreeningOf(const Entry& entry);
  /// One expression's share of Observe: candidacy check + coverage
  /// accumulation. `stmt`/`profile` may be null (parse or execution
  /// failure — the entry's state is left unchanged). Entries are
  /// independent, so distinct entries may be observed concurrently.
  Status ObserveEntry(Entry* entry, const LoggedQuery& query,
                      const ObserveContext& ctx);
  /// Entries the observation must visit, in registration order. With the
  /// index enabled and the query's accessed columns statically resolved,
  /// this is the subset whose audited attributes the query can touch;
  /// otherwise (index off, parse failure, resolution failure) every
  /// entry — so errors surface identically with the index on and off.
  std::vector<Entry*> EntriesToVisit(const ObserveContext& ctx);
  Result<std::vector<Screening>> ObserveImpl(const LoggedQuery& query,
                                             service::ThreadPool* pool);
  DecisionCache* decision_cache() {
    return options_.cache_enabled ? cache_.get() : nullptr;
  }

  Database* db_;
  OnlineAuditorOptions options_;
  /// Never null (created when options.cache is); holds the stats even
  /// when memoization is disabled.
  std::shared_ptr<DecisionCache> cache_;
  ExpressionIndex index_;
  std::vector<std::unique_ptr<Entry>> entries_;
  int next_id_ = 1;
  ScreeningListener listener_;
};

}  // namespace audit
}  // namespace auditdb

#endif  // AUDITDB_AUDIT_ONLINE_H_
