#ifndef AUDITDB_AUDIT_BASELINE_AGRAWAL_H_
#define AUDITDB_AUDIT_BASELINE_AGRAWAL_H_

#include <string>
#include <vector>

#include "src/audit/audit_expression.h"
#include "src/backlog/backlog.h"
#include "src/engine/lineage.h"
#include "src/querylog/query_log.h"

namespace auditdb {
namespace audit {

/// Direct reimplementation of the single-query semantic audit of Agrawal
/// et al. (VLDB'04), used as a correctness and performance baseline for
/// the unified model (which expresses the same notion as all-mandatory
/// attributes, THRESHOLD 1, INDISPENSABLE true).
///
/// A logged query Q is suspicious w.r.t. audit expression A iff
///   (1) Q is a candidate: C_Q ⊇ C_A and the predicates are consistent;
///   (2) Q and A share an indispensable tuple: some tuple of the cross
///       product of their common tables appears jointly in the lineage of
///       both Q's result and A's target view, evaluated on the database
///       state Q originally ran against.
class AgrawalAuditor {
 public:
  AgrawalAuditor(const Database* db, const Backlog* backlog,
                 const QueryLog* log)
      : db_(db), backlog_(backlog), log_(log) {}

  struct Result_ {
    std::vector<int64_t> suspicious_ids;
    size_t num_candidates = 0;
  };

  /// Audits every admitted logged query individually. The expression's
  /// attribute structure is flattened to its attribute set (the audit
  /// list); groups are ignored, as the original syntax has none.
  Result<Result_> Audit(const AuditExpression& expr,
                        const ExecOptions& exec = ExecOptions{}) const;

  /// Single query check against a given database state (exposed for
  /// differential tests).
  static Result<bool> IsSuspicious(const sql::SelectStatement& query,
                                   const AuditExpression& expr,
                                   const DatabaseView& state,
                                   const ExecOptions& exec = ExecOptions{});

 private:
  const Database* db_;
  const Backlog* backlog_;
  const QueryLog* log_;
};

}  // namespace audit
}  // namespace auditdb

#endif  // AUDITDB_AUDIT_BASELINE_AGRAWAL_H_
