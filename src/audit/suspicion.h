#ifndef AUDITDB_AUDIT_SUSPICION_H_
#define AUDITDB_AUDIT_SUSPICION_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/audit/granule.h"
#include "src/common/hashing.h"
#include "src/common/tid_bitmap.h"
#include "src/engine/lineage.h"

namespace auditdb {
namespace audit {

/// How tuple-id indispensability is checked when INDISPENSABLE = true.
enum class IndispensabilityMode {
  /// The paper's granule-access wording: every tid of the granule must be
  /// indispensable to the *batch* — i.e. to at least one query in it,
  /// checked per table.
  kPerTable,
  /// Stricter: a single query must witness the granule's tid tuple
  /// jointly (the tuple appears in that query's lineage projected onto
  /// the granule's tables). Matches Agrawal-style shared-indispensable-
  /// tuple checks exactly; used for baseline cross-validation.
  kJointPerQuery,
};

struct SuspicionOptions {
  IndispensabilityMode mode = IndispensabilityMode::kPerTable;
  /// Run indispensability bookkeeping over compressed tid bitmaps
  /// (common/tid_bitmap.h) instead of hash sets. Verdicts are
  /// byte-identical either way; off is the ablation baseline the
  /// differential tests pin against.
  bool tid_bitmaps = true;
};

/// Access outcome for one granule scheme.
struct SchemeAccess {
  size_t scheme_index = 0;
  /// Whether the batch covers every attribute of the scheme.
  bool attrs_covered = false;
  /// Facts of U accessed by the batch w.r.t. this scheme.
  std::vector<size_t> accessed_facts;
  /// Whether enough facts were accessed (>= k; for ALL, every valid fact).
  bool suspicious = false;
};

/// Result of checking one batch of queries against one audit expression's
/// granule model.
struct SuspicionResult {
  bool suspicious = false;
  std::vector<SchemeAccess> per_scheme;

  /// Human-readable evidence: for each suspicious scheme, the scheme and
  /// the accessed facts rendered paper-style.
  std::string Describe(const TargetView& view,
                       const std::vector<GranuleScheme>& schemes) const;
};

/// Precomputed batch-level access state: per-table indispensable-tid
/// unions (hash sets or compressed bitmaps, per SuspicionOptions), joint
/// lineage projections, and output-value sets, each cached on first use.
/// Holds the profile pointer vector by value — the profiles themselves
/// must outlive the index, but the vector argument may be a temporary.
class BatchIndex {
 public:
  explicit BatchIndex(std::vector<const AccessProfile*> batch,
                      const SuspicionOptions& options = SuspicionOptions{})
      : batch_(std::move(batch)), options_(options) {}

  /// Whether any query in the batch references `col`.
  bool Accesses(const ColumnRef& col) const;

  /// Union of per-query indispensable tids for `table` (cached), as a
  /// hash set. The ablation-baseline representation.
  const std::unordered_set<Tid>& IndispensableTids(const std::string& table);

  /// The same union as a compressed bitmap: built with word-wide Or over
  /// per-query bitmaps.
  const TidBitmap& IndispensableTidBitmap(const std::string& table);

  /// Membership probe against the union, dispatching on the configured
  /// representation.
  bool IndispensableContains(const std::string& table, Tid tid);

  /// Whether some single query's lineage contains the tid tuple `tids`
  /// over `tables` (joint witness). A query whose FROM clause lacks one
  /// of the tables legitimately has no joint witness; any other lineage
  /// projection failure (e.g. ragged lineage rows) is a real error and
  /// propagates.
  Result<bool> JointlyWitnessed(const std::vector<std::string>& tables,
                                const std::vector<Tid>& tids);

  /// Whether some query outputs `col` with `value` among its results.
  bool OutputsValue(const ColumnRef& col, const Value& value);

  bool OutputsColumn(const ColumnRef& col) const;

 private:
  std::vector<const AccessProfile*> batch_;
  SuspicionOptions options_;
  std::unordered_map<std::string, std::unordered_set<Tid>> tid_union_;
  std::unordered_map<std::string, TidBitmap> tid_bitmap_union_;
  std::unordered_map<
      std::pair<size_t, std::vector<std::string>>,
      std::unordered_set<std::vector<Tid>, VectorHash<Tid>>,
      PairHash<size_t, std::vector<std::string>, std::hash<size_t>,
               VectorHash<std::string>>>
      joint_;
  /// Single-table joint witnesses as per-query bitmaps (bitmap mode).
  std::unordered_map<std::pair<size_t, std::string>, TidBitmap,
                     PairHash<size_t, std::string, std::hash<size_t>,
                              std::hash<std::string>>>
      joint_single_;
  std::unordered_map<std::pair<size_t, ColumnRef>, std::unordered_set<Value>,
                     PairHash<size_t, ColumnRef, std::hash<size_t>,
                              ColumnRefHash>>
      values_;
};

/// Decides whether the batch of queries (given by their access profiles,
/// each computed on the database state that query actually ran against)
/// accesses any granule of the audit expression's granule set.
///
/// A fact u of U is accessed w.r.t. scheme S when
///   - INDISPENSABLE = true: the batch covers every attribute of S
///     (some query references it), and every tid of u for S's tables is
///     indispensable to the batch (mode kPerTable) or some single query
///     witnesses the whole tid tuple (mode kJointPerQuery);
///   - INDISPENSABLE = false: for every attribute of S, some query
///     *outputs* that attribute with u's value among its results
///     (value containment — predicates alone do not count).
/// The scheme fires when at least `threshold` facts (ALL: every valid
/// fact, and at least one) are accessed; the batch is suspicious when any
/// scheme fires.
///
/// Errors (rather than silently under-reporting) when a query's lineage
/// cannot be projected for a joint-witness check.
Result<SuspicionResult> CheckBatchSuspicion(
    const TargetView& view, const std::vector<GranuleScheme>& schemes,
    Threshold threshold, bool indispensable,
    const std::vector<const AccessProfile*>& batch,
    const SuspicionOptions& options = SuspicionOptions{});

/// --- Canonical suspicion notions expressed in the unified model ---
/// Each takes a base audit expression (target data + limiting clauses)
/// and returns a copy whose AUDIT/THRESHOLD/INDISPENSABLE clauses encode
/// the notion, demonstrating Section 3.2's unification claims.

/// Perfect privacy (Miklau–Suciu): any single cell of any table in scope
/// discloses. AUDIT [*], THRESHOLD 1, INDISPENSABLE true.
AuditExpression MakePerfectPrivacy(const AuditExpression& base);

/// Weak syntactic suspicion (Motwani et al.): access to any one column of
/// the audit scope. AUDIT [audit attrs ∪ WHERE attrs], THRESHOLD 1,
/// INDISPENSABLE true. `base` must be qualified (WHERE columns resolved).
AuditExpression MakeWeakSyntactic(const AuditExpression& base);

/// Indispensable-tuple / strong semantic suspicion (Agrawal et al.,
/// Motwani et al.): all audited columns plus a shared indispensable
/// tuple. AUDIT (all audit attrs), THRESHOLD 1, INDISPENSABLE true.
AuditExpression MakeSemantic(const AuditExpression& base);

/// "More than N individuals" notions: semantic scheme with THRESHOLD N.
AuditExpression MakeThresholdNotion(const AuditExpression& base,
                                    Threshold threshold);

/// The Section 3.2 identifier/sensitive pattern: every identifier
/// attribute is mandatory and at least one of the (mutually derivable)
/// sensitive attributes must be accessed — AUDIT (ids...),[sensitive...].
AuditExpression MakeMandatoryOptional(const AuditExpression& base,
                                      std::vector<ColumnRef> identifiers,
                                      std::vector<ColumnRef> sensitive);

}  // namespace audit
}  // namespace auditdb

#endif  // AUDITDB_AUDIT_SUSPICION_H_
