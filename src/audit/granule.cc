#include "src/audit/granule.h"

#include <algorithm>
#include <unordered_set>

#include "src/types/column_vector.h"

namespace auditdb {
namespace audit {

std::string GranuleScheme::ToString() const {
  std::string out = "{";
  bool first = true;
  for (const auto& table : tid_tables) {
    if (!first) out += ",";
    out += "tid_" + table;
    first = false;
  }
  for (const auto& attr : attrs) {
    if (!first) out += ",";
    out += attr.ToString();
    first = false;
  }
  out += "}";
  return out;
}

std::vector<GranuleScheme> BuildSchemes(const AuditExpression& expr) {
  std::vector<GranuleScheme> schemes;
  for (auto& attr_set : expr.attrs.EnumerateSchemes()) {
    GranuleScheme scheme;
    scheme.attrs = std::move(attr_set);
    if (expr.indispensable) {
      // The partial scheme (the AUDIT attributes) decides which tids are
      // included: one per table owning a scheme attribute, in FROM order.
      for (const auto& table : expr.from) {
        bool owns = false;
        for (const auto& attr : scheme.attrs) {
          if (attr.table == table) {
            owns = true;
            break;
          }
        }
        if (owns) scheme.tid_tables.push_back(table);
      }
    }
    schemes.push_back(std::move(scheme));
  }
  return schemes;
}

GranuleEnumerator::GranuleEnumerator(const TargetView& view,
                                     std::vector<GranuleScheme> schemes,
                                     Threshold threshold, bool use_bitmaps)
    : view_(view), schemes_(std::move(schemes)), threshold_(threshold) {
  valid_facts_.resize(schemes_.size());
  attr_columns_.resize(schemes_.size());
  tid_positions_.resize(schemes_.size());
  // One columnar projection of the view, shared by every scheme's
  // validity screen.
  Batch batch = view_.ToBatch();
  for (size_t s = 0; s < schemes_.size(); ++s) {
    // Schemes are built from the same expression as the view; a missing
    // column or table would be an internal inconsistency. Skip the whole
    // scheme then (no valid facts → no granules) rather than dropping
    // the one bad element and rendering misaligned tids/values.
    bool resolved = true;
    for (const auto& attr : schemes_[s].attrs) {
      auto idx = view_.ColumnIndex(attr);
      if (!idx.ok()) {
        resolved = false;
        break;
      }
      attr_columns_[s].push_back(*idx);
    }
    for (const auto& table : schemes_[s].tid_tables) {
      if (!resolved) break;
      auto idx = view_.TableIndex(table);
      if (!idx.ok()) {
        resolved = false;
        break;
      }
      tid_positions_[s].push_back(*idx);
    }
    if (!resolved) {
      attr_columns_[s].clear();
      tid_positions_[s].clear();
      valid_facts_[s].clear();
      continue;
    }
    // Render attributes in audit-clause order (the view's column order),
    // the way the paper lists granules, not in set order.
    std::sort(attr_columns_[s].begin(), attr_columns_[s].end());
    // A fact with a NULL scheme attribute discloses nothing under this
    // scheme; the batch screen returns the remaining facts in order
    // (bitmaps iterate rows ascending, so both kernels yield the same
    // vector).
    if (use_bitmaps) {
      NonNullBitmap(batch, attr_columns_[s]).ForEach([&](int64_t row) {
        valid_facts_[s].push_back(static_cast<size_t>(row));
      });
    } else {
      valid_facts_[s] = NonNullRows(batch, attr_columns_[s]);
    }
  }
}

size_t GranuleEnumerator::EffectiveK(size_t scheme_index) const {
  if (threshold_.all) return valid_facts_[scheme_index].size();
  return static_cast<size_t>(threshold_.n);
}

namespace {

double Binomial(size_t n, size_t k) {
  if (k > n) return 0;
  if (k > n - k) k = n - k;
  double out = 1;
  for (size_t i = 0; i < k; ++i) {
    out = out * static_cast<double>(n - i) / static_cast<double>(i + 1);
  }
  return out;
}

}  // namespace

double GranuleEnumerator::CountGranules() const {
  double total = 0;
  for (size_t s = 0; s < schemes_.size(); ++s) {
    size_t n = valid_facts_[s].size();
    size_t k = EffectiveK(s);
    if (k == 0) continue;  // THRESHOLD ALL over an empty view: no granule
    total += Binomial(n, k);
  }
  return total;
}

uint64_t GranuleEnumerator::ForEach(
    const std::function<bool(const Granule&)>& visit) const {
  uint64_t visited = 0;
  for (size_t s = 0; s < schemes_.size(); ++s) {
    const auto& facts = valid_facts_[s];
    size_t k = EffectiveK(s);
    if (k == 0 || k > facts.size()) continue;
    // Enumerate k-combinations of `facts` in lexicographic order.
    std::vector<size_t> choice(k);
    for (size_t i = 0; i < k; ++i) choice[i] = i;
    Granule granule;
    granule.scheme_index = s;
    while (true) {
      granule.fact_indices.clear();
      for (size_t i : choice) granule.fact_indices.push_back(facts[i]);
      ++visited;
      if (!visit(granule)) return visited;
      // Advance to the next k-combination: bump the rightmost index that
      // has room, then reset everything to its right.
      const size_t n = facts.size();
      ptrdiff_t i = static_cast<ptrdiff_t>(k) - 1;
      while (i >= 0 &&
             choice[static_cast<size_t>(i)] ==
                 static_cast<size_t>(i) + n - k) {
        --i;
      }
      if (i < 0) break;
      ++choice[static_cast<size_t>(i)];
      for (size_t j = static_cast<size_t>(i) + 1; j < k; ++j) {
        choice[j] = choice[j - 1] + 1;
      }
    }
  }
  return visited;
}

std::string GranuleEnumerator::Render(const Granule& granule) const {
  const size_t s = granule.scheme_index;
  std::string out;
  bool first_fact = true;
  for (size_t f : granule.fact_indices) {
    if (!first_fact) out += "; ";
    first_fact = false;
    const TargetView::Fact& fact = view_.facts[f];
    out += "(";
    bool first = true;
    for (size_t p : tid_positions_[s]) {
      if (!first) out += ",";
      out += TidToString(fact.tids[p]);
      first = false;
    }
    for (size_t c : attr_columns_[s]) {
      if (!first) out += ",";
      out += fact.values[c].ToDisplayString();
      first = false;
    }
    out += ")";
  }
  return out;
}

std::vector<std::string> GranuleEnumerator::RenderDistinct(
    size_t limit) const {
  std::vector<std::string> out;
  std::unordered_set<std::string> seen;
  ForEach([&](const Granule& granule) {
    std::string text = Render(granule);
    if (seen.insert(text).second) out.push_back(std::move(text));
    return out.size() < limit;
  });
  return out;
}

}  // namespace audit
}  // namespace auditdb
