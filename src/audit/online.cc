#include "src/audit/online.h"

#include <algorithm>
#include <functional>
#include <optional>

#include "src/audit/candidate.h"
#include "src/service/thread_pool.h"
#include "src/sql/parser.h"

namespace auditdb {
namespace audit {

Result<std::vector<OnlineSchemeState>> BuildOnlineSchemeStates(
    const AuditExpression& expr, const TargetView& view,
    const std::vector<OnlineSchemeState>& previous) {
  std::vector<OnlineSchemeState> states;
  for (auto& scheme : BuildSchemes(expr)) {
    OnlineSchemeState state;
    // Preserve accumulated attribute coverage across rebuilds.
    for (const auto& old : previous) {
      if (old.scheme.attrs == scheme.attrs) {
        state.covered_attrs = old.covered_attrs;
        break;
      }
    }
    // Resolve every scheme attribute and tid table, index-aligned with
    // the scheme. A resolution miss fails the rebuild: dropping the
    // entry instead would pair tid_positions[i] with the wrong
    // tid_tables[i] downstream and silently undercount access.
    for (const auto& attr : scheme.attrs) {
      auto idx = view.ColumnIndex(attr);
      if (!idx.ok()) {
        return Status::Internal("scheme attribute " + attr.ToString() +
                                " unresolvable in target view: " +
                                idx.status().message());
      }
      state.attr_columns.push_back(*idx);
    }
    for (const auto& table : scheme.tid_tables) {
      auto idx = view.TableIndex(table);
      if (!idx.ok()) {
        return Status::Internal("scheme tid table " + table +
                                " unresolvable in target view: " +
                                idx.status().message());
      }
      state.tid_positions.push_back(*idx);
    }
    state.valid_facts = 0;
    for (const auto& fact : view.facts) {
      bool valid = true;
      for (size_t c : state.attr_columns) {
        if (fact.values[c].is_null()) {
          valid = false;
          break;
        }
      }
      if (valid) ++state.valid_facts;
    }
    state.effective_k = expr.threshold.all
                            ? state.valid_facts
                            : static_cast<size_t>(expr.threshold.n);
    state.scheme = std::move(scheme);
    states.push_back(std::move(state));
  }
  return states;
}

OnlineAuditor::OnlineAuditor(Database* db, OnlineAuditorOptions options)
    : db_(db),
      options_(std::move(options)),
      cache_(options_.cache != nullptr ? options_.cache
                                       : std::make_shared<DecisionCache>()) {
  // No change listener: staleness is detected per expression by
  // comparing the epoch fingerprint of its FROM tables, and cached
  // decisions carry their state keys (catalog epoch / fingerprints), so
  // stale hits are impossible without wholesale eviction.
}

Result<int> OnlineAuditor::AddExpression(const AuditExpression& expr) {
  DatabaseView view = db_->Snapshot();
  auto entry = std::make_unique<Entry>();
  entry->id = next_id_++;
  entry->expr = expr.Clone();
  AUDITDB_RETURN_IF_ERROR(entry->expr.Qualify(view.catalog()));
  if (!entry->expr.indispensable) {
    return Status::Unimplemented(
        "online auditing supports INDISPENSABLE = true expressions only "
        "(value-containment screening requires per-value state)");
  }
  entry->expr_hash = std::hash<std::string>{}(entry->expr.ToString());
  AUDITDB_RETURN_IF_ERROR(RebuildEntryView(entry.get(), view));
  index_.Add(entry->id, entry->expr);
  entries_.push_back(std::move(entry));
  return entries_.back()->id;
}

Status OnlineAuditor::RemoveExpression(int id) {
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if ((*it)->id == id) {
      index_.Remove(id);
      entries_.erase(it);
      return Status::Ok();
    }
  }
  return Status::NotFound("no standing expression with id " +
                          std::to_string(id));
}

Status OnlineAuditor::RebuildEntryView(Entry* entry,
                                       const DatabaseView& db_view) {
  // The standing expression watches the *current* data: the target view
  // is rebuilt from the pinned state whenever one of its FROM tables has
  // changed since the last build.
  auto view = ComputeTargetView(entry->expr, db_view, Timestamp::Now());
  if (!view.ok()) return view.status();
  entry->view = std::move(*view);
  entry->built_fingerprint = db_view.EpochFingerprint(entry->expr.from);

  auto states =
      BuildOnlineSchemeStates(entry->expr, entry->view, entry->schemes);
  if (!states.ok()) return states.status();
  entry->schemes = std::move(*states);
  RecomputeAccessCounts(entry);
  return Status::Ok();
}

void OnlineAuditor::RecomputeAccessCounts(Entry* entry) {
  for (auto& state : entry->schemes) {
    state.accessed_facts = 0;
    for (const auto& fact : entry->view.facts) {
      bool valid = true;
      for (size_t c : state.attr_columns) {
        if (fact.values[c].is_null()) {
          valid = false;
          break;
        }
      }
      if (!valid) continue;
      bool accessed = true;
      for (size_t i = 0; i < state.tid_positions.size(); ++i) {
        auto it = entry->batch_tids.find(state.scheme.tid_tables[i]);
        if (it == entry->batch_tids.end() ||
            !it->second.Contains(fact.tids[state.tid_positions[i]])) {
          accessed = false;
          break;
        }
      }
      if (accessed) ++state.accessed_facts;
    }
  }
  // Fired state: any scheme fully covered with enough accessed facts.
  for (const auto& state : entry->schemes) {
    if (state.effective_k == 0) continue;
    if (state.covered_attrs.size() == state.scheme.attrs.size() &&
        state.accessed_facts >= state.effective_k) {
      entry->fired = true;
    }
  }
}

OnlineAuditor::Screening OnlineAuditor::ScreeningOf(const Entry& entry) {
  Screening screening;
  screening.expression_id = entry.id;
  screening.fired = entry.fired;
  for (size_t s = 0; s < entry.schemes.size(); ++s) {
    const OnlineSchemeState& state = entry.schemes[s];
    if (state.effective_k == 0 || state.scheme.attrs.empty()) continue;
    double covered = static_cast<double>(state.covered_attrs.size());
    double fact_credit = static_cast<double>(
        std::min(state.accessed_facts, state.effective_k));
    double rank =
        (covered + fact_credit) /
        (static_cast<double>(state.scheme.attrs.size()) +
         static_cast<double>(state.effective_k));
    if (rank > screening.rank) {
      screening.rank = rank;
      screening.best_scheme = s;
    }
  }
  if (entry.fired) screening.rank = 1.0;
  return screening;
}

Status OnlineAuditor::ObserveEntry(Entry* entry, const LoggedQuery& query,
                                   const ObserveContext& ctx) {
  // Mirror the offline pipeline: only *candidate* queries contribute
  // (a query that touches no audited attribute, or whose predicate
  // provably conflicts with the audit predicate, is statically
  // non-suspicious and must not help complete a granule — Definition 1).
  bool contributes = false;
  if (ctx.stmt != nullptr && entry->expr.filter.Admits(query)) {
    auto candidate = CachedBatchCandidate(
        decision_cache(), ctx.shape, entry->expr_hash, ctx.catalog_epoch,
        *ctx.stmt, entry->expr, ctx.view.catalog(), CandidateOptions{});
    // A failed candidacy check (unknown table or column) is an error,
    // not a cleared query: propagate it like the offline per-query
    // error verdicts instead of treating the query as non-suspicious.
    if (!candidate.ok()) return candidate.status();
    contributes = *candidate && ctx.profile != nullptr;
  }
  if (!contributes) return Status::Ok();
  if (entry->built_fingerprint !=
      ctx.view.EpochFingerprint(entry->expr.from)) {
    AUDITDB_RETURN_IF_ERROR(RebuildEntryView(entry, ctx.view));
  }
  // Accumulate attribute coverage and indispensable tids.
  for (auto& state : entry->schemes) {
    for (const auto& attr : state.scheme.attrs) {
      if (ctx.profile->Accesses(attr)) state.covered_attrs.insert(attr);
    }
  }
  for (const auto& table : entry->expr.from) {
    entry->batch_tids[table].Or(
        ctx.profile->result.IndispensableTidBitmap(table));
  }
  RecomputeAccessCounts(entry);
  return Status::Ok();
}

std::vector<OnlineAuditor::Entry*> OnlineAuditor::EntriesToVisit(
    const ObserveContext& ctx) {
  std::vector<Entry*> all;
  all.reserve(entries_.size());
  for (auto& entry : entries_) all.push_back(entry.get());

  AuditIndexStats* stats = cache_->stats();
  if (!options_.index_enabled || ctx.stmt == nullptr || all.empty()) {
    stats->index_fallbacks.fetch_add(1, std::memory_order_relaxed);
    return all;
  }
  stats->index_lookups.fetch_add(1, std::memory_order_relaxed);

  // The query's statically accessed columns, outputs_only = false:
  // online expressions are all INDISPENSABLE, so this matches exactly
  // what IsBatchCandidate would compute per entry.
  const std::set<ColumnRef>* accessed = nullptr;
  std::set<ColumnRef> local;
  std::shared_ptr<const std::set<ColumnRef>> shared;
  if (DecisionCache* cache = decision_cache()) {
    auto columns = cache->AccessedColumns(ctx.shape, /*outputs_only=*/false,
                                          ctx.catalog_epoch, *ctx.stmt,
                                          ctx.view.catalog());
    if (columns.ok() && columns->status.ok()) {
      shared = columns->columns;
      accessed = shared.get();
    }
  } else {
    auto computed = StaticAccessedColumns(*ctx.stmt, ctx.view.catalog(),
                                          /*outputs_only=*/false);
    if (computed.ok()) {
      local = std::move(*computed);
      accessed = &local;
    }
  }
  if (accessed == nullptr) {
    // Resolution failed: every per-entry candidacy check would fail the
    // same way, and those errors must surface identically with the
    // index on and off — so visit everything.
    stats->index_fallbacks.fetch_add(1, std::memory_order_relaxed);
    return all;
  }

  // An entry the index rules out would return candidate = false at the
  // attribute-touch test (its accessed-columns step succeeds — we just
  // computed it at query level) and leave its state untouched, so
  // skipping it is byte-identical to visiting it.
  std::vector<int> ids = index_.Candidates(*accessed);
  std::vector<Entry*> visit;
  visit.reserve(ids.size());
  size_t next = 0;
  for (Entry* entry : all) {
    while (next < ids.size() && ids[next] < entry->id) ++next;
    if (next < ids.size() && ids[next] == entry->id) visit.push_back(entry);
  }
  stats->index_visited.fetch_add(visit.size(), std::memory_order_relaxed);
  stats->index_skipped.fetch_add(all.size() - visit.size(),
                                 std::memory_order_relaxed);
  return visit;
}

Result<std::vector<OnlineAuditor::Screening>> OnlineAuditor::ObserveImpl(
    const LoggedQuery& query, service::ThreadPool* pool) {
  // Pin one snapshot, then parse and execute once against it; reuse the
  // profile for every standing expression. Executed profiles are keyed
  // on the epoch fingerprint of the query's FROM tables, so they stay
  // hot across writes to unrelated tables.
  ObserveContext ctx;
  ctx.view = db_->Snapshot();
  ctx.shape =
      query.shape.zero() ? sql::ComputeQueryShape(query.sql) : query.shape;
  ctx.catalog_epoch = ctx.view.catalog_epoch();

  auto stmt = sql::ParseSelect(query.sql);
  std::optional<AccessProfile> profile_local;
  std::shared_ptr<const AccessProfile> profile_shared;
  if (stmt.ok()) {
    ctx.stmt = &*stmt;
    if (DecisionCache* cache = decision_cache()) {
      uint64_t fingerprint = ctx.view.EpochFingerprint(stmt->from);
      profile_shared = cache->LookupProfile(ctx.shape, fingerprint);
      if (profile_shared == nullptr) {
        auto computed = ComputeAccessProfile(*stmt, ctx.view);
        if (computed.ok()) {
          profile_shared =
              std::make_shared<const AccessProfile>(std::move(*computed));
          cache->StoreProfile(ctx.shape, fingerprint, profile_shared);
        }
      }
      ctx.profile = profile_shared.get();
    } else {
      auto computed = ComputeAccessProfile(*stmt, ctx.view);
      if (computed.ok()) {
        profile_local = std::move(*computed);
        ctx.profile = &*profile_local;
      }
    }
  }

  std::vector<Entry*> visit = EntriesToVisit(ctx);
  if (pool != nullptr && visit.size() > 1) {
    // Each standing expression owns disjoint state, so the coverage
    // updates fan out one job per visited entry.
    std::vector<std::function<Status()>> tasks;
    tasks.reserve(visit.size());
    for (Entry* raw : visit) {
      tasks.push_back([this, raw, &query, &ctx] {
        return ObserveEntry(raw, query, ctx);
      });
    }
    auto statuses = service::RunBatch(pool, std::move(tasks));
    for (const auto& status : statuses) {
      AUDITDB_RETURN_IF_ERROR(Status(status));
    }
  } else {
    for (Entry* raw : visit) {
      AUDITDB_RETURN_IF_ERROR(ObserveEntry(raw, query, ctx));
    }
  }

  std::vector<Screening> out;
  out.reserve(entries_.size());
  for (const auto& entry : entries_) out.push_back(ScreeningOf(*entry));
  if (listener_) listener_(query, out);
  return out;
}

Result<std::vector<OnlineAuditor::Screening>> OnlineAuditor::Observe(
    const LoggedQuery& query) {
  return ObserveImpl(query, nullptr);
}

Result<std::vector<OnlineAuditor::Screening>> OnlineAuditor::Observe(
    const LoggedQuery& query, service::ThreadPool* pool) {
  if (pool == nullptr || entries_.size() <= 1) return ObserveImpl(query, nullptr);
  return ObserveImpl(query, pool);
}

std::vector<OnlineAuditor::Screening> OnlineAuditor::Current() const {
  std::vector<Screening> out;
  out.reserve(entries_.size());
  for (const auto& entry : entries_) out.push_back(ScreeningOf(*entry));
  return out;
}

void OnlineAuditor::ResetBatches() {
  for (auto& entry : entries_) {
    entry->batch_tids.clear();
    entry->fired = false;
    for (auto& state : entry->schemes) state.covered_attrs.clear();
    RecomputeAccessCounts(entry.get());
  }
}

}  // namespace audit
}  // namespace auditdb
