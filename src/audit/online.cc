#include "src/audit/online.h"

#include <algorithm>

#include "src/audit/candidate.h"
#include "src/service/thread_pool.h"
#include "src/sql/parser.h"

namespace auditdb {
namespace audit {

OnlineAuditor::OnlineAuditor(Database* db)
    : db_(db), change_counter_(std::make_shared<uint64_t>(0)) {
  db_->AddChangeListener(
      [counter = change_counter_](const ChangeEvent&) { ++*counter; });
}

Result<int> OnlineAuditor::AddExpression(const AuditExpression& expr) {
  auto entry = std::make_unique<Entry>();
  entry->id = next_id_++;
  entry->expr = expr.Clone();
  AUDITDB_RETURN_IF_ERROR(entry->expr.Qualify(db_->catalog()));
  if (!entry->expr.indispensable) {
    return Status::Unimplemented(
        "online auditing supports INDISPENSABLE = true expressions only "
        "(value-containment screening requires per-value state)");
  }
  AUDITDB_RETURN_IF_ERROR(RebuildEntryView(entry.get()));
  entries_.push_back(std::move(entry));
  return entries_.back()->id;
}

Status OnlineAuditor::RebuildEntryView(Entry* entry) {
  // The standing expression watches the *current* data: the target view
  // is rebuilt from the live state whenever the database has changed.
  auto view = ComputeTargetView(entry->expr, db_->View(), Timestamp::Now());
  if (!view.ok()) return view.status();
  entry->view = std::move(*view);
  entry->built_at_change = *change_counter_;

  std::vector<SchemeState> states;
  for (auto& scheme : BuildSchemes(entry->expr)) {
    SchemeState state;
    // Preserve accumulated attribute coverage across rebuilds.
    for (const auto& old : entry->schemes) {
      if (old.scheme.attrs == scheme.attrs) {
        state.covered_attrs = old.covered_attrs;
        break;
      }
    }
    for (const auto& attr : scheme.attrs) {
      auto idx = entry->view.ColumnIndex(attr);
      if (idx.ok()) state.attr_columns.push_back(*idx);
    }
    std::sort(state.attr_columns.begin(), state.attr_columns.end());
    for (const auto& table : scheme.tid_tables) {
      auto idx = entry->view.TableIndex(table);
      if (idx.ok()) state.tid_positions.push_back(*idx);
    }
    state.valid_facts = 0;
    for (const auto& fact : entry->view.facts) {
      bool valid = true;
      for (size_t c : state.attr_columns) {
        if (fact.values[c].is_null()) {
          valid = false;
          break;
        }
      }
      if (valid) ++state.valid_facts;
    }
    state.effective_k =
        entry->expr.threshold.all
            ? state.valid_facts
            : static_cast<size_t>(entry->expr.threshold.n);
    state.scheme = std::move(scheme);
    states.push_back(std::move(state));
  }
  entry->schemes = std::move(states);
  RecomputeAccessCounts(entry);
  return Status::Ok();
}

void OnlineAuditor::RecomputeAccessCounts(Entry* entry) {
  for (auto& state : entry->schemes) {
    state.accessed_facts = 0;
    for (const auto& fact : entry->view.facts) {
      bool valid = true;
      for (size_t c : state.attr_columns) {
        if (fact.values[c].is_null()) {
          valid = false;
          break;
        }
      }
      if (!valid) continue;
      bool accessed = true;
      for (size_t i = 0; i < state.tid_positions.size(); ++i) {
        auto it = entry->batch_tids.find(state.scheme.tid_tables[i]);
        if (it == entry->batch_tids.end() ||
            it->second.count(fact.tids[state.tid_positions[i]]) == 0) {
          accessed = false;
          break;
        }
      }
      if (accessed) ++state.accessed_facts;
    }
  }
  // Fired state: any scheme fully covered with enough accessed facts.
  for (const auto& state : entry->schemes) {
    if (state.effective_k == 0) continue;
    if (state.covered_attrs.size() == state.scheme.attrs.size() &&
        state.accessed_facts >= state.effective_k) {
      entry->fired = true;
    }
  }
}

OnlineAuditor::Screening OnlineAuditor::ScreeningOf(const Entry& entry) {
  Screening screening;
  screening.expression_id = entry.id;
  screening.fired = entry.fired;
  for (size_t s = 0; s < entry.schemes.size(); ++s) {
    const SchemeState& state = entry.schemes[s];
    if (state.effective_k == 0 || state.scheme.attrs.empty()) continue;
    double covered = static_cast<double>(state.covered_attrs.size());
    double fact_credit = static_cast<double>(
        std::min(state.accessed_facts, state.effective_k));
    double rank =
        (covered + fact_credit) /
        (static_cast<double>(state.scheme.attrs.size()) +
         static_cast<double>(state.effective_k));
    if (rank > screening.rank) {
      screening.rank = rank;
      screening.best_scheme = s;
    }
  }
  if (entry.fired) screening.rank = 1.0;
  return screening;
}

Status OnlineAuditor::ObserveEntry(Entry* entry, const LoggedQuery& query,
                                   const sql::SelectStatement* stmt,
                                   const AccessProfile* profile) {
  // Mirror the offline pipeline: only *candidate* queries contribute
  // (a query that touches no audited attribute, or whose predicate
  // provably conflicts with the audit predicate, is statically
  // non-suspicious and must not help complete a granule — Definition 1).
  bool contributes = false;
  if (profile != nullptr && entry->expr.filter.Admits(query)) {
    auto candidate = IsBatchCandidate(*stmt, entry->expr, db_->catalog());
    contributes = candidate.ok() && *candidate;
  }
  if (!contributes) return Status::Ok();
  if (entry->built_at_change != *change_counter_) {
    AUDITDB_RETURN_IF_ERROR(RebuildEntryView(entry));
  }
  // Accumulate attribute coverage and indispensable tids.
  for (auto& state : entry->schemes) {
    for (const auto& attr : state.scheme.attrs) {
      if (profile->Accesses(attr)) state.covered_attrs.insert(attr);
    }
  }
  for (const auto& table : entry->expr.from) {
    auto tids = profile->result.IndispensableTids(table);
    entry->batch_tids[table].insert(tids.begin(), tids.end());
  }
  RecomputeAccessCounts(entry);
  return Status::Ok();
}

Result<std::vector<OnlineAuditor::Screening>> OnlineAuditor::Observe(
    const LoggedQuery& query) {
  // Parse and execute once against the current state; reuse the profile
  // for every standing expression.
  auto stmt = sql::ParseSelect(query.sql);
  std::optional<AccessProfile> profile;
  if (stmt.ok()) {
    auto computed = ComputeAccessProfile(*stmt, db_->View());
    if (computed.ok()) profile = std::move(*computed);
  }

  std::vector<Screening> out;
  for (auto& entry : entries_) {
    AUDITDB_RETURN_IF_ERROR(ObserveEntry(
        entry.get(), query, stmt.ok() ? &*stmt : nullptr,
        profile.has_value() ? &*profile : nullptr));
    out.push_back(ScreeningOf(*entry));
  }
  return out;
}

Result<std::vector<OnlineAuditor::Screening>> OnlineAuditor::Observe(
    const LoggedQuery& query, service::ThreadPool* pool) {
  if (pool == nullptr || entries_.size() <= 1) return Observe(query);

  auto stmt = sql::ParseSelect(query.sql);
  std::optional<AccessProfile> profile;
  if (stmt.ok()) {
    auto computed = ComputeAccessProfile(*stmt, db_->View());
    if (computed.ok()) profile = std::move(*computed);
  }
  const sql::SelectStatement* stmt_ptr = stmt.ok() ? &*stmt : nullptr;
  const AccessProfile* profile_ptr =
      profile.has_value() ? &*profile : nullptr;

  // Each standing expression owns disjoint state, so the coverage
  // updates fan out one job per entry.
  std::vector<std::function<Status()>> tasks;
  tasks.reserve(entries_.size());
  for (auto& entry : entries_) {
    Entry* raw = entry.get();
    tasks.push_back([this, raw, &query, stmt_ptr, profile_ptr] {
      return ObserveEntry(raw, query, stmt_ptr, profile_ptr);
    });
  }
  auto statuses = service::RunBatch(pool, std::move(tasks));
  for (const auto& status : statuses) {
    AUDITDB_RETURN_IF_ERROR(Status(status));
  }

  std::vector<Screening> out;
  out.reserve(entries_.size());
  for (const auto& entry : entries_) out.push_back(ScreeningOf(*entry));
  return out;
}

std::vector<OnlineAuditor::Screening> OnlineAuditor::Current() const {
  std::vector<Screening> out;
  out.reserve(entries_.size());
  for (const auto& entry : entries_) out.push_back(ScreeningOf(*entry));
  return out;
}

void OnlineAuditor::ResetBatches() {
  for (auto& entry : entries_) {
    entry->batch_tids.clear();
    entry->fired = false;
    for (auto& state : entry->schemes) state.covered_attrs.clear();
    RecomputeAccessCounts(entry.get());
  }
}

}  // namespace audit
}  // namespace auditdb
