#include "src/audit/candidate.h"

#include "src/expr/analysis.h"
#include "src/expr/satisfiability.h"

namespace auditdb {
namespace audit {

Result<std::set<ColumnRef>> StaticAccessedColumns(
    const sql::SelectStatement& query, const Catalog& catalog,
    bool outputs_only) {
  std::set<ColumnRef> out;
  if (query.select_star) {
    for (const auto& table_name : query.from) {
      auto table = catalog.GetTable(table_name);
      if (!table.ok()) return table.status();
      for (const auto& col : (*table)->columns()) {
        out.insert(ColumnRef{table_name, col.name});
      }
    }
  } else {
    for (const auto& ref : query.select_list) {
      auto resolved = catalog.Resolve(ref, query.from);
      if (!resolved.ok()) return resolved.status();
      out.insert(*resolved);
    }
  }
  if (!outputs_only && query.where) {
    auto where = query.where->Clone();
    AUDITDB_RETURN_IF_ERROR(QualifyColumns(where.get(), catalog, query.from));
    for (const auto& col : CollectColumns(where.get())) out.insert(col);
  }
  return out;
}

namespace {

/// Shared consistency check: the conjunction of the query's and the audit
/// expression's WHERE clauses must not be provably empty.
Result<bool> PredicatesConsistent(const sql::SelectStatement& query,
                                  const AuditExpression& expr,
                                  const Catalog& catalog) {
  if (!query.where || !expr.where) return true;
  auto where = query.where->Clone();
  AUDITDB_RETURN_IF_ERROR(QualifyColumns(where.get(), catalog, query.from));
  return MaybeSatisfiable(where.get(), expr.where.get());
}

}  // namespace

Result<bool> IsBatchCandidate(const sql::SelectStatement& query,
                              const AuditExpression& expr,
                              const Catalog& catalog,
                              const CandidateOptions& options) {
  auto accessed = StaticAccessedColumns(query, catalog,
                                        /*outputs_only=*/!expr.indispensable);
  if (!accessed.ok()) return accessed.status();

  bool touches = false;
  for (const auto& attr : expr.attrs.AllAttributes()) {
    if (accessed->count(attr) > 0) {
      touches = true;
      break;
    }
  }
  if (!touches) return false;

  if (options.use_satisfiability) {
    return PredicatesConsistent(query, expr, catalog);
  }
  return true;
}

Result<bool> IsSingleCandidate(const sql::SelectStatement& query,
                               const AuditExpression& expr,
                               const Catalog& catalog,
                               const CandidateOptions& options) {
  auto accessed = StaticAccessedColumns(query, catalog,
                                        /*outputs_only=*/!expr.indispensable);
  if (!accessed.ok()) return accessed.status();

  bool covers_scheme = false;
  for (const auto& scheme : expr.attrs.EnumerateSchemes()) {
    bool covered = true;
    for (const auto& attr : scheme) {
      if (accessed->count(attr) == 0) {
        covered = false;
        break;
      }
    }
    if (covered) {
      covers_scheme = true;
      break;
    }
  }
  if (!covers_scheme) return false;

  if (options.use_satisfiability) {
    return PredicatesConsistent(query, expr, catalog);
  }
  return true;
}

}  // namespace audit
}  // namespace auditdb
