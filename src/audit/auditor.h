#ifndef AUDITDB_AUDIT_AUDITOR_H_
#define AUDITDB_AUDIT_AUDITOR_H_

#include <string>
#include <vector>

#include "src/audit/audit_index.h"
#include "src/audit/audit_parser.h"
#include "src/audit/candidate.h"
#include "src/audit/suspicion.h"
#include "src/backlog/backlog.h"
#include "src/querylog/query_log.h"

namespace auditdb {

namespace service {
class AuditScheduler;
}  // namespace service

namespace audit {

struct AuditOptions {
  ExecOptions exec;
  CandidateOptions candidate;
  SuspicionOptions suspicion;
  /// Also audit each admitted query as a singleton batch (per-query
  /// verdicts, the Agrawal-style report). Costs one suspicion check per
  /// candidate.
  bool per_query_verdicts = true;
  /// Greedily minimize the suspicious batch to a minimal subset.
  bool minimize_batch = true;
  /// Data-independent auditing (Section 2.2 of the paper): stop after the
  /// static phase, never touching the database. The batch verdict is then
  /// the weak-syntactic-style over-approximation — suspicious iff the
  /// candidates together cover some granule scheme — and per-query
  /// verdicts use the single-query static check. Sound (no flagged-by-
  /// dynamic query is missed) but not exact; orders of magnitude cheaper.
  bool static_only = false;
  /// Optional decision cache (audit_index.h) memoizing the static
  /// per-(query, expression) candidacy checks across audits; shared with
  /// the serving stack. Non-owning — must outlive the audit. Null runs
  /// every check directly; results are byte-identical either way.
  DecisionCache* cache = nullptr;
  /// Parse + screen once per structural query shape instead of once per
  /// log entry. Off reproduces the per-entry behavior (ablation; results
  /// are byte-identical either way).
  bool shape_dedup = true;
  /// Ablation: key cached decisions on the global mutation count (the
  /// pre-MVCC scheme, where any write evicts everything) instead of the
  /// catalog epoch / per-table version fingerprints. Never changes
  /// results, only hit rates; used by bench_mixed.
  bool cache_global_state_keys = false;
};

/// One consistent cut across the three audit stores, captured at a single
/// instant: the pinned database view plus the published prefixes of the
/// query log and the backlog. An audit that runs entirely against a pin
/// sees a frozen world — concurrent writes land in versions and log/
/// backlog suffixes the audit never reads — so it needs no lock for its
/// whole duration, only for the capture.
struct AuditPin {
  DatabaseView db;
  size_t log_size = 0;
  size_t backlog_events = 0;
};

/// Outcome for one logged query.
struct QueryVerdict {
  int64_t query_id = 0;
  /// Rejected by the limiting parameters (never considered).
  bool admitted = false;
  /// Survived the data-independent (static) phase.
  bool candidate = false;
  /// Suspicious as a singleton batch (only set when per_query_verdicts).
  bool suspicious_alone = false;
  /// Parse failure (logged text is not auditable SQL).
  bool parse_failed = false;
  /// The static candidacy check itself failed (e.g. the query references
  /// a table or column unknown to the audited catalog). Distinct from
  /// "statically cleared": nothing was proven about this query.
  bool error = false;
};

/// Full audit outcome.
struct AuditReport {
  /// The audited expression, canonical form.
  std::string expression;

  std::vector<QueryVerdict> verdicts;
  /// Whether the admitted candidate set, as a batch, is suspicious.
  bool batch_suspicious = false;
  /// A minimal suspicious subset of query ids (empty if not suspicious or
  /// minimization disabled).
  std::vector<int64_t> minimal_batch;
  /// Paper-style evidence (accessed granule facts per fired scheme).
  std::string evidence;

  /// Pipeline statistics.
  size_t num_logged = 0;
  size_t num_admitted = 0;
  size_t num_candidates = 0;
  size_t num_executed = 0;
  size_t target_view_size = 0;
  size_t num_schemes = 0;

  /// Wall-clock time per pipeline phase, in seconds (filter+static,
  /// target-view computation, candidate re-execution, suspicion checks).
  double static_seconds = 0;
  double view_seconds = 0;
  double exec_seconds = 0;
  double check_seconds = 0;

  /// Ids of queries suspicious on their own.
  std::vector<int64_t> SuspiciousQueryIds() const;

  /// One-line pipeline summary (counts + verdict).
  std::string Summary() const;

  /// Multi-line investigator-facing report: the audited expression, the
  /// phase funnel (logged → admitted → candidates → executed), per-query
  /// verdicts with the original log lines, the minimal suspicious batch,
  /// and the granule evidence. `log` must be the log that was audited.
  std::string DetailedReport(const QueryLog& log) const;

  /// Deterministic serialization of every audit outcome field — verdicts,
  /// counts, batch verdict, minimal batch, evidence — excluding only the
  /// wall-clock phase timings. The concurrent scheduler's report must
  /// match the serial auditor's byte for byte under this rendering.
  std::string CanonicalString() const;
};

/// The audit pipeline (Section 3 end to end):
///   1. limiting parameters (Pos/Neg clauses, DURING) filter the log;
///   2. the data-independent phase discards non-candidates statically;
///   3. the target data view U is computed over the DATA-INTERVAL versions;
///   4. each candidate is re-executed (with lineage) against the backlog
///      state at its own original execution time;
///   5. granule access decides batch and per-query suspicion.
class Auditor {
 public:
  /// All three stores must outlive the auditor.
  Auditor(const Database* db, const Backlog* backlog, const QueryLog* log)
      : db_(db), backlog_(backlog), log_(log) {}

  /// Captures a consistent pin of the three stores (cheap: shares
  /// storage, copies nothing). Safe to call concurrently with writers.
  AuditPin Pin() const;

  /// Parses (anchored at `now`) and audits.
  Result<AuditReport> Audit(const std::string& audit_text, Timestamp now,
                            const AuditOptions& options = AuditOptions{})
      const;

  /// Audits a parsed (not yet qualified) expression against a pin
  /// captured now.
  Result<AuditReport> Audit(const AuditExpression& expr,
                            const AuditOptions& options = AuditOptions{})
      const;

  /// Audits against an existing pin. The whole pipeline — qualification,
  /// static screen, target view, historical re-execution, suspicion —
  /// reads only the pinned state, so it runs correctly concurrent with
  /// writers and two audits over equal pins produce byte-identical
  /// reports.
  Result<AuditReport> AuditPinned(const AuditExpression& expr,
                                  const AuditOptions& options,
                                  const AuditPin& pin) const;

  /// Parallel entry point: shards the pipeline over `scheduler`'s worker
  /// pool and merges deterministically — the report's CanonicalString()
  /// is identical to the serial Audit()'s at any thread count.
  /// Implemented in src/service/scheduler.cc.
  Result<AuditReport> AuditParallel(const AuditExpression& expr,
                                    service::AuditScheduler* scheduler,
                                    const AuditOptions& options =
                                        AuditOptions{}) const;

 private:
  const Database* db_;
  const Backlog* backlog_;
  const QueryLog* log_;
};

}  // namespace audit
}  // namespace auditdb

#endif  // AUDITDB_AUDIT_AUDITOR_H_
