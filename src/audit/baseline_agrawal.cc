#include "src/audit/baseline_agrawal.h"

#include "src/audit/audit_stages.h"
#include "src/audit/candidate.h"
#include "src/expr/analysis.h"
#include "src/expr/satisfiability.h"

namespace auditdb {
namespace audit {

Result<bool> AgrawalAuditor::IsSuspicious(const sql::SelectStatement& query,
                                          const AuditExpression& expr,
                                          const DatabaseView& state,
                                          const ExecOptions& exec) {
  // Candidate test: C_Q must contain every audited attribute, and the
  // predicates must be mutually satisfiable.
  auto accessed = StaticAccessedColumns(query, state.catalog(),
                                        /*outputs_only=*/false);
  if (!accessed.ok()) return accessed.status();
  for (const auto& attr : expr.attrs.AllAttributes()) {
    if (accessed->count(attr) == 0) return false;
  }
  if (query.where && expr.where) {
    auto where = query.where->Clone();
    AUDITDB_RETURN_IF_ERROR(
        QualifyColumns(where.get(), state.catalog(), query.from));
    if (!MaybeSatisfiable(where.get(), expr.where.get())) return false;
  }

  std::vector<std::string> common = CommonTables(query, expr);
  if (common.empty()) return false;

  // Shared indispensable tuple over the common tables: intersect the
  // lineage of the query's result with the lineage of the audit
  // expression's target view, both projected onto the common tables.
  auto query_result = Execute(query, state, exec);
  if (!query_result.ok()) return query_result.status();
  return SharesIndispensableTuple(*query_result, expr, common, state, exec);
}

Result<AgrawalAuditor::Result_> AgrawalAuditor::Audit(
    const AuditExpression& parsed, const ExecOptions& exec) const {
  AuditExpression expr = parsed.Clone();
  AUDITDB_RETURN_IF_ERROR(expr.Qualify(db_->catalog()));

  Result_ result;
  const size_t num_logged = log_->size();
  for (size_t i = 0; i < num_logged; ++i) {
    const auto& logged = log_->Entry(i);
    if (!expr.filter.Admits(logged)) continue;
    auto stmt = sql::ParseSelect(logged.sql);
    if (!stmt.ok()) continue;

    // Cheap static phase first (mirrors the audit query generator's
    // static analysis over the logged queries).
    auto candidate = IsSingleCandidate(*stmt, expr, db_->catalog());
    if (!candidate.ok() || !*candidate) continue;
    ++result.num_candidates;

    auto snapshot = backlog_->SnapshotAt(logged.timestamp);
    if (!snapshot.ok()) return snapshot.status();
    auto suspicious = IsSuspicious(*stmt, expr, snapshot->View(), exec);
    if (!suspicious.ok()) continue;
    if (*suspicious) result.suspicious_ids.push_back(logged.id);
  }
  return result;
}

}  // namespace audit
}  // namespace auditdb
