#ifndef AUDITDB_AUDIT_CANDIDATE_H_
#define AUDITDB_AUDIT_CANDIDATE_H_

#include <set>

#include "src/audit/audit_expression.h"
#include "src/catalog/catalog.h"
#include "src/sql/parser.h"

namespace auditdb {
namespace audit {

struct CandidateOptions {
  /// Prune queries whose WHERE clause provably conflicts with the audit
  /// WHERE clause (data-independent satisfiability check). Disabling this
  /// keeps the attribute-only filter (the ablation mode).
  bool use_satisfiability = true;
};

/// The columns a query accesses, determined statically: projection list
/// (star-expanded) plus WHERE columns, fully qualified. With
/// `outputs_only`, just the projection (the C_OQ set used when
/// INDISPENSABLE = false).
Result<std::set<ColumnRef>> StaticAccessedColumns(
    const sql::SelectStatement& query, const Catalog& catalog,
    bool outputs_only);

/// Data-independent candidacy for *batch* auditing (Definition 1): the
/// query cannot be ruled out syntactically — it references at least one
/// attribute of some granule scheme and its predicate does not provably
/// conflict with the audit predicate. `expr` must be qualified.
Result<bool> IsBatchCandidate(const sql::SelectStatement& query,
                              const AuditExpression& expr,
                              const Catalog& catalog,
                              const CandidateOptions& options =
                                  CandidateOptions{});

/// Data-independent candidacy for *single-query* auditing: the query by
/// itself covers every attribute of at least one granule scheme (so it
/// could be suspicious alone), and is predicate-consistent.
Result<bool> IsSingleCandidate(const sql::SelectStatement& query,
                               const AuditExpression& expr,
                               const Catalog& catalog,
                               const CandidateOptions& options =
                                   CandidateOptions{});

}  // namespace audit
}  // namespace auditdb

#endif  // AUDITDB_AUDIT_CANDIDATE_H_
