#include "src/audit/audit_index.h"

#include <algorithm>
#include <cctype>

namespace auditdb {
namespace audit {

std::string NormalizedSqlKey(const std::string& sql) {
  std::string out;
  out.reserve(sql.size());
  bool pending_space = false;
  for (char c : sql) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!out.empty()) pending_space = true;
      continue;
    }
    if (pending_space) {
      out += ' ';
      pending_space = false;
    }
    out += c;
  }
  return out;
}

std::string AuditIndexStats::ToJson() const {
  auto field = [](const char* name, uint64_t v) {
    return "\"" + std::string(name) + "\":" + std::to_string(v);
  };
  return "{" +
         field("lookups", index_lookups.load(std::memory_order_relaxed)) +
         "," +
         field("visited", index_visited.load(std::memory_order_relaxed)) +
         "," +
         field("skipped", index_skipped.load(std::memory_order_relaxed)) +
         "," +
         field("fallbacks",
               index_fallbacks.load(std::memory_order_relaxed)) +
         "," + field("cache_hits", cache_hits.load(std::memory_order_relaxed)) +
         "," +
         field("cache_misses", cache_misses.load(std::memory_order_relaxed)) +
         "," +
         field("cache_invalidations",
               cache_invalidations.load(std::memory_order_relaxed)) +
         "}";
}

void ExpressionIndex::Add(int id, const AuditExpression& expr) {
  Remove(id);
  std::set<ColumnRef> attrs = expr.attrs.AllAttributes();
  std::vector<ColumnRef> stored(attrs.begin(), attrs.end());
  for (const auto& attr : stored) by_column_[attr].insert(id);
  attrs_by_id_.emplace(id, std::move(stored));
}

void ExpressionIndex::Remove(int id) {
  auto it = attrs_by_id_.find(id);
  if (it == attrs_by_id_.end()) return;
  for (const auto& attr : it->second) {
    auto col = by_column_.find(attr);
    if (col == by_column_.end()) continue;
    col->second.erase(id);
    if (col->second.empty()) by_column_.erase(col);
  }
  attrs_by_id_.erase(it);
}

std::vector<int> ExpressionIndex::Candidates(
    const std::set<ColumnRef>& accessed) const {
  std::set<int> ids;
  for (const auto& col : accessed) {
    auto it = by_column_.find(col);
    if (it == by_column_.end()) continue;
    ids.insert(it->second.begin(), it->second.end());
  }
  return std::vector<int>(ids.begin(), ids.end());
}

namespace {

/// Composite cache keys. Every component is a fixed-width hex/decimal
/// rendering joined with '\x1f', so the concatenations are injective.
std::string ColumnsKey(const sql::QueryShape& shape, bool outputs_only,
                       uint64_t state_key) {
  return shape.ToHex() + '\x1f' + (outputs_only ? "o" : "a") + '\x1f' +
         std::to_string(state_key);
}

std::string DecisionKey(const sql::QueryShape& shape, uint64_t expr_hash,
                        uint64_t state_key, const CandidateOptions& options) {
  return shape.ToHex() + '\x1f' + std::to_string(expr_hash) + '\x1f' +
         std::to_string(state_key) + '\x1f' +
         (options.use_satisfiability ? "s" : "-");
}

std::string ProfileKey(const sql::QueryShape& shape, uint64_t state_key) {
  return shape.ToHex() + '\x1f' + std::to_string(state_key);
}

}  // namespace

DecisionCache::DecisionCache(DecisionCacheOptions options)
    : options_(options) {}

Result<DecisionCache::ColumnsEntry> DecisionCache::AccessedColumns(
    const sql::QueryShape& shape, bool outputs_only, uint64_t state_key,
    const sql::SelectStatement& stmt, const Catalog& catalog) {
  std::string key = ColumnsKey(shape, outputs_only, state_key);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = columns_.find(key);
    if (it != columns_.end()) {
      stats_.cache_hits.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  stats_.cache_misses.fetch_add(1, std::memory_order_relaxed);
  auto computed = StaticAccessedColumns(stmt, catalog, outputs_only);
  ColumnsEntry entry;
  if (computed.ok()) {
    entry.status = Status::Ok();
    entry.columns = std::make_shared<const std::set<ColumnRef>>(
        std::move(*computed));
  } else {
    entry.status = computed.status();
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (columns_.size() >= options_.max_column_entries) columns_.clear();
    columns_.emplace(std::move(key), entry);
  }
  return entry;
}

Result<bool> DecisionCache::BatchCandidate(const sql::QueryShape& shape,
                                           uint64_t expr_hash,
                                           uint64_t state_key,
                                           const sql::SelectStatement& stmt,
                                           const AuditExpression& expr,
                                           const Catalog& catalog,
                                           const CandidateOptions& options) {
  std::string key = DecisionKey(shape, expr_hash, state_key, options);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = decisions_.find(key);
    if (it != decisions_.end()) {
      stats_.cache_hits.fetch_add(1, std::memory_order_relaxed);
      if (!it->second.status.ok()) return it->second.status;
      return it->second.candidate;
    }
  }
  stats_.cache_misses.fetch_add(1, std::memory_order_relaxed);
  auto computed = IsBatchCandidate(stmt, expr, catalog, options);
  Decision decision;
  if (computed.ok()) {
    decision.candidate = *computed;
  } else {
    decision.status = computed.status();
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (decisions_.size() >= options_.max_decision_entries) {
      decisions_.clear();
    }
    decisions_.emplace(std::move(key), std::move(decision));
  }
  return computed;
}

std::shared_ptr<const AccessProfile> DecisionCache::LookupProfile(
    const sql::QueryShape& shape, uint64_t state_key) const {
  std::string key = ProfileKey(shape, state_key);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = profiles_.find(key);
  if (it == profiles_.end()) {
    stats_.cache_misses.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  stats_.cache_hits.fetch_add(1, std::memory_order_relaxed);
  return it->second;
}

void DecisionCache::StoreProfile(const sql::QueryShape& shape,
                                 uint64_t state_key,
                                 std::shared_ptr<const AccessProfile> profile) {
  std::string key = ProfileKey(shape, state_key);
  std::lock_guard<std::mutex> lock(mutex_);
  if (profiles_.size() >= options_.max_profile_entries) profiles_.clear();
  profiles_.emplace(std::move(key), std::move(profile));
}

void DecisionCache::Invalidate() {
  std::lock_guard<std::mutex> lock(mutex_);
  columns_.clear();
  decisions_.clear();
  profiles_.clear();
  stats_.cache_invalidations.fetch_add(1, std::memory_order_relaxed);
}

size_t DecisionCache::column_entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return columns_.size();
}

size_t DecisionCache::decision_entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return decisions_.size();
}

size_t DecisionCache::profile_entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return profiles_.size();
}

Result<bool> CachedBatchCandidate(DecisionCache* cache,
                                  const sql::QueryShape& shape,
                                  uint64_t expr_hash,
                                  uint64_t state_key,
                                  const sql::SelectStatement& stmt,
                                  const AuditExpression& expr,
                                  const Catalog& catalog,
                                  const CandidateOptions& options) {
  if (cache == nullptr) {
    return IsBatchCandidate(stmt, expr, catalog, options);
  }
  return cache->BatchCandidate(shape, expr_hash, state_key, stmt, expr,
                               catalog, options);
}

}  // namespace audit
}  // namespace auditdb
