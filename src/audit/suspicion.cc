#include "src/audit/suspicion.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "src/common/hashing.h"
#include "src/expr/analysis.h"
#include "src/types/column_vector.h"

namespace auditdb {
namespace audit {

std::string SuspicionResult::Describe(
    const TargetView& view, const std::vector<GranuleScheme>& schemes) const {
  std::string out;
  for (const auto& access : per_scheme) {
    if (!access.suspicious) continue;
    out += "scheme " + schemes[access.scheme_index].ToString() +
           " accessed facts:";
    for (size_t f : access.accessed_facts) {
      const auto& fact = view.facts[f];
      out += " (";
      bool first = true;
      for (size_t i = 0; i < fact.tids.size(); ++i) {
        if (!first) out += ",";
        out += TidToString(fact.tids[i]);
        first = false;
      }
      out += ")";
    }
    out += "\n";
  }
  return out;
}

bool BatchIndex::Accesses(const ColumnRef& col) const {
  for (const auto* profile : batch_) {
    if (profile->Accesses(col)) return true;
  }
  return false;
}

const std::unordered_set<Tid>& BatchIndex::IndispensableTids(
    const std::string& table) {
  auto it = tid_union_.find(table);
  if (it != tid_union_.end()) return it->second;
  std::unordered_set<Tid> tids;
  for (const auto* profile : batch_) {
    auto per_query = profile->result.IndispensableTids(table);
    tids.insert(per_query.begin(), per_query.end());
  }
  return tid_union_.emplace(table, std::move(tids)).first->second;
}

const TidBitmap& BatchIndex::IndispensableTidBitmap(const std::string& table) {
  auto it = tid_bitmap_union_.find(table);
  if (it != tid_bitmap_union_.end()) return it->second;
  TidBitmap tids;
  for (const auto* profile : batch_) {
    tids.Or(profile->result.IndispensableTidBitmap(table));
  }
  return tid_bitmap_union_.emplace(table, std::move(tids)).first->second;
}

bool BatchIndex::IndispensableContains(const std::string& table, Tid tid) {
  if (options_.tid_bitmaps) {
    return IndispensableTidBitmap(table).Contains(tid);
  }
  return IndispensableTids(table).count(tid) > 0;
}

Result<bool> BatchIndex::JointlyWitnessed(
    const std::vector<std::string>& tables, const std::vector<Tid>& tids) {
  for (size_t q = 0; q < batch_.size(); ++q) {
    const auto& from = batch_[q]->result.from;
    // A query whose FROM clause lacks one of the tables legitimately has
    // no joint witness over them; skip it without touching the lineage.
    bool covers = true;
    for (const auto& t : tables) {
      if (std::find(from.begin(), from.end(), t) == from.end()) {
        covers = false;
        break;
      }
    }
    if (!covers) continue;

    if (options_.tid_bitmaps && tables.size() == 1) {
      auto key = std::make_pair(q, tables[0]);
      auto it = joint_single_.find(key);
      if (it == joint_single_.end()) {
        auto projected = batch_[q]->result.ProjectLineageBitmap(tables[0]);
        if (!projected.ok()) return projected.status();
        it = joint_single_.emplace(std::move(key), std::move(*projected))
                 .first;
      }
      if (it->second.Contains(tids[0])) return true;
      continue;
    }

    auto key = std::make_pair(q, tables);
    auto it = joint_.find(key);
    if (it == joint_.end()) {
      auto projected = batch_[q]->result.ProjectLineage(tables);
      if (!projected.ok()) return projected.status();
      std::unordered_set<std::vector<Tid>, VectorHash<Tid>> tuples(
          projected->begin(), projected->end());
      it = joint_.emplace(std::move(key), std::move(tuples)).first;
    }
    if (it->second.count(tids) > 0) return true;
  }
  return false;
}

bool BatchIndex::OutputsValue(const ColumnRef& col, const Value& value) {
  for (size_t q = 0; q < batch_.size(); ++q) {
    if (!batch_[q]->Outputs(col)) continue;
    auto key = std::make_pair(q, col);
    auto it = values_.find(key);
    if (it == values_.end()) {
      auto column_values = batch_[q]->result.ColumnValues(col);
      std::unordered_set<Value> values(column_values.begin(),
                                       column_values.end());
      it = values_.emplace(std::move(key), std::move(values)).first;
    }
    if (it->second.count(value) > 0) return true;
  }
  return false;
}

bool BatchIndex::OutputsColumn(const ColumnRef& col) const {
  for (const auto* profile : batch_) {
    if (profile->Outputs(col)) return true;
  }
  return false;
}

Result<SuspicionResult> CheckBatchSuspicion(
    const TargetView& view, const std::vector<GranuleScheme>& schemes,
    Threshold threshold, bool indispensable,
    const std::vector<const AccessProfile*>& batch,
    const SuspicionOptions& options) {
  SuspicionResult result;
  BatchIndex index(batch, options);
  // Columnar projection of the view, shared by every scheme's validity
  // screen.
  Batch view_batch = view.ToBatch();

  for (size_t s = 0; s < schemes.size(); ++s) {
    const GranuleScheme& scheme = schemes[s];
    SchemeAccess access;
    access.scheme_index = s;

    // Attribute coverage by the batch.
    access.attrs_covered = true;
    for (const auto& attr : scheme.attrs) {
      bool covered = indispensable ? index.Accesses(attr)
                                   : index.OutputsColumn(attr);
      if (!covered) {
        access.attrs_covered = false;
        break;
      }
    }

    size_t valid_count = 0;
    if (access.attrs_covered) {
      // Resolve scheme attrs / tables to view positions once, keeping
      // the vectors index-aligned with the scheme. A resolution miss
      // (internal inconsistency: the view is built from the same
      // expression) skips the scheme — dropping the one bad element
      // would pair tid_positions[i] with the wrong tid_tables[i] below.
      bool resolved = true;
      std::vector<size_t> attr_cols;
      for (const auto& attr : scheme.attrs) {
        auto idx = view.ColumnIndex(attr);
        if (!idx.ok()) {
          resolved = false;
          break;
        }
        attr_cols.push_back(*idx);
      }
      std::vector<size_t> tid_positions;
      for (const auto& table : scheme.tid_tables) {
        if (!resolved) break;
        auto idx = view.TableIndex(table);
        if (!idx.ok()) {
          resolved = false;
          break;
        }
        tid_positions.push_back(*idx);
      }
      if (!resolved) {
        access.suspicious = false;
        result.per_scheme.push_back(std::move(access));
        continue;
      }

      // NULL cells disclose nothing: facts with a NULL scheme attribute
      // are outside this scheme. The batch screen yields the rest in
      // fact order (the bitmap arm iterates rows ascending — identical).
      std::vector<size_t> valid_rows;
      if (options.tid_bitmaps) {
        NonNullBitmap(view_batch, attr_cols).ForEach([&](int64_t row) {
          valid_rows.push_back(static_cast<size_t>(row));
        });
      } else {
        valid_rows = NonNullRows(view_batch, attr_cols);
      }
      valid_count = valid_rows.size();

      // Word-wide prescreen (bitmap arm, per-table mode): if the view's
      // tids for some scheme table never intersect the batch's
      // indispensable union, the per-fact probes below would reject every
      // fact — skip them.
      bool can_access = true;
      if (indispensable && options.tid_bitmaps &&
          options.mode == IndispensabilityMode::kPerTable &&
          view.table_tids.size() == view.tables.size()) {
        for (size_t i = 0; i < tid_positions.size(); ++i) {
          if (!view.table_tids[tid_positions[i]].Intersects(
                  index.IndispensableTidBitmap(scheme.tid_tables[i]))) {
            can_access = false;
            break;
          }
        }
      }

      if (can_access) {
        for (size_t f : valid_rows) {
          const TargetView::Fact& fact = view.facts[f];
          bool accessed = true;
          if (indispensable) {
            if (options.mode == IndispensabilityMode::kPerTable) {
              for (size_t i = 0; i < tid_positions.size(); ++i) {
                if (!index.IndispensableContains(
                        scheme.tid_tables[i],
                        fact.tids[tid_positions[i]])) {
                  accessed = false;
                  break;
                }
              }
            } else {
              std::vector<Tid> tuple;
              tuple.reserve(tid_positions.size());
              for (size_t p : tid_positions) tuple.push_back(fact.tids[p]);
              auto witnessed =
                  index.JointlyWitnessed(scheme.tid_tables, tuple);
              if (!witnessed.ok()) return witnessed.status();
              accessed = *witnessed;
            }
          } else {
            for (const auto& attr : scheme.attrs) {
              auto idx = view.ColumnIndex(attr);
              if (!idx.ok() ||
                  !index.OutputsValue(attr, fact.values[*idx])) {
                accessed = false;
                break;
              }
            }
          }
          if (accessed) access.accessed_facts.push_back(f);
        }
      }
    }

    size_t k = threshold.all ? valid_count
                             : static_cast<size_t>(threshold.n);
    access.suspicious = access.attrs_covered && k > 0 &&
                        access.accessed_facts.size() >= k;
    if (access.suspicious) result.suspicious = true;
    result.per_scheme.push_back(std::move(access));
  }
  return result;
}

namespace {

/// Strips suspicion clauses off `base`, keeping target data + filters.
AuditExpression CloneBase(const AuditExpression& base) {
  AuditExpression out = base.Clone();
  out.threshold = Threshold::N(1);
  out.indispensable = true;
  return out;
}

}  // namespace

AuditExpression MakePerfectPrivacy(const AuditExpression& base) {
  AuditExpression out = CloneBase(base);
  out.attrs = AttrStructure::Optional({ColumnRef{"", "*"}});
  return out;
}

AuditExpression MakeWeakSyntactic(const AuditExpression& base) {
  AuditExpression out = CloneBase(base);
  std::set<ColumnRef> attrs = base.attrs.AllAttributes();
  for (const auto& col : CollectColumns(base.where.get())) {
    attrs.insert(col);
  }
  out.attrs = AttrStructure::Optional(
      std::vector<ColumnRef>(attrs.begin(), attrs.end()));
  return out;
}

AuditExpression MakeSemantic(const AuditExpression& base) {
  AuditExpression out = CloneBase(base);
  std::set<ColumnRef> attrs = base.attrs.AllAttributes();
  out.attrs = AttrStructure::Mandatory(
      std::vector<ColumnRef>(attrs.begin(), attrs.end()));
  return out;
}

AuditExpression MakeThresholdNotion(const AuditExpression& base,
                                    Threshold threshold) {
  AuditExpression out = MakeSemantic(base);
  out.threshold = threshold;
  return out;
}

AuditExpression MakeMandatoryOptional(const AuditExpression& base,
                                      std::vector<ColumnRef> identifiers,
                                      std::vector<ColumnRef> sensitive) {
  AuditExpression out = CloneBase(base);
  out.attrs.groups.clear();
  if (!identifiers.empty()) {
    out.attrs.groups.push_back(AttrGroup{true, std::move(identifiers)});
  }
  if (!sensitive.empty()) {
    out.attrs.groups.push_back(AttrGroup{false, std::move(sensitive)});
  }
  return out;
}

}  // namespace audit
}  // namespace auditdb
