#include "src/audit/baseline_motwani.h"

#include <algorithm>
#include <set>

#include "src/audit/audit_stages.h"
#include "src/audit/candidate.h"
#include "src/expr/analysis.h"
#include "src/expr/satisfiability.h"
#include "src/sql/parser.h"

namespace auditdb {
namespace audit {

Result<MotwaniAuditor::BatchResult> MotwaniAuditor::Audit(
    const AuditExpression& parsed, const ExecOptions& exec) const {
  AuditExpression expr = parsed.Clone();
  AUDITDB_RETURN_IF_ERROR(expr.Qualify(db_->catalog()));

  const std::set<ColumnRef> audit_columns = expr.attrs.AllAttributes();
  BatchResult result;
  std::set<ColumnRef> covered_by_sharing;

  const size_t num_logged = log_->size();
  for (size_t i = 0; i < num_logged; ++i) {
    const auto& logged = log_->Entry(i);
    if (!expr.filter.Admits(logged)) continue;
    auto stmt = sql::ParseSelect(logged.sql);
    if (!stmt.ok()) continue;

    auto accessed = StaticAccessedColumns(*stmt, db_->catalog(),
                                          /*outputs_only=*/false);
    if (!accessed.ok()) continue;

    bool touches_audit_column = false;
    for (const auto& attr : audit_columns) {
      if (accessed->count(attr) > 0) {
        touches_audit_column = true;
        break;
      }
    }
    if (!touches_audit_column) continue;

    // Predicate consistency (existence of an instance with a shared
    // indispensable tuple).
    bool consistent = true;
    if (stmt->where && expr.where) {
      auto where = stmt->where->Clone();
      auto qualify =
          QualifyColumns(where.get(), db_->catalog(), stmt->from);
      if (!qualify.ok()) continue;
      consistent = MaybeSatisfiable(where.get(), expr.where.get());
    }
    if (!consistent) continue;

    // Weak syntactic: consistent + touches >= 1 audit column.
    result.weakly_syntactically_suspicious = true;
    result.weak_ids.push_back(logged.id);

    // Semantic: the query must actually share an indispensable tuple with
    // A on the state it ran against. Unlike Agrawal, evaluation errors
    // just disqualify the query, they don't abort the batch.
    std::vector<std::string> common = CommonTables(*stmt, expr);
    if (common.empty()) continue;

    auto snapshot = backlog_->SnapshotAt(logged.timestamp);
    if (!snapshot.ok()) return snapshot.status();
    auto state = snapshot->View();

    auto query_result = Execute(*stmt, state, exec);
    if (!query_result.ok()) continue;
    auto shares =
        SharesIndispensableTuple(*query_result, expr, common, state, exec);
    if (!shares.ok() || !*shares) continue;

    result.sharing_ids.push_back(logged.id);
    for (const auto& attr : audit_columns) {
      if (accessed->count(attr) > 0) covered_by_sharing.insert(attr);
    }
  }

  result.semantically_suspicious =
      !audit_columns.empty() &&
      std::includes(covered_by_sharing.begin(), covered_by_sharing.end(),
                    audit_columns.begin(), audit_columns.end());
  return result;
}

}  // namespace audit
}  // namespace auditdb
