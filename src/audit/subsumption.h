#ifndef AUDITDB_AUDIT_SUBSUMPTION_H_
#define AUDITDB_AUDIT_SUBSUMPTION_H_

#include <set>
#include <string>
#include <vector>

#include "src/audit/audit_expression.h"

namespace auditdb {
namespace audit {

/// Derived per-expression inputs of the Subsumes proof steps, hoisted out
/// of the hot pairwise loop: the FROM table set (step 1) and the
/// enumerated granule schemes (step 6) are pure functions of the
/// expression, so libraries checking one candidate against N standing
/// expressions precompute them once per expression instead of rebuilding
/// them on every call.
struct SubsumptionProfile {
  std::set<std::string> from_set;
  std::vector<std::set<ColumnRef>> schemes;

  static SubsumptionProfile Of(const AuditExpression& expr);
};

/// Conservative subsumption test between audit expressions: true only
/// when every batch suspicious under `weaker` is provably suspicious
/// under `stronger` — so `weaker` is redundant when `stronger` is
/// already a standing expression (useful for deduplicating online
/// monitors and audit-expression libraries).
///
/// The proof obligations, each checked conservatively:
///   1. identical FROM table sets;
///   2. weaker.WHERE provably implies stronger.WHERE (U_weak ⊆ U_strong,
///      version by version);
///   3. stronger's DURING and DATA-INTERVAL contain weaker's;
///   4. the limiting parameters of `stronger` admit every access that
///      `weaker` admits (pattern-coverage reasoning over the Pos/Neg
///      clauses);
///   5. equal INDISPENSABLE flags and THRESHOLD k_strong <= k_weak
///      (ALL only subsumes ALL with equal WHERE);
///   6. every granule scheme of `weaker` contains some scheme of
///      `stronger` (covering the weaker scheme forces the stronger one).
///
/// Both expressions must be qualified. Returns false whenever a proof
/// step fails — never a false positive.
bool Subsumes(const AuditExpression& stronger, const AuditExpression& weaker);

/// Profile-carrying overload: identical answer, but steps 1 and 6 read
/// the precomputed profiles. `stronger_profile`/`weaker_profile` must be
/// SubsumptionProfile::Of the respective expressions.
bool Subsumes(const AuditExpression& stronger,
              const SubsumptionProfile& stronger_profile,
              const AuditExpression& weaker,
              const SubsumptionProfile& weaker_profile);

/// Whether `outer` admits every logged access `inner` admits
/// (conservative; exposed for tests and expression-library tooling).
bool FilterAdmitsAtLeast(const AccessFilter& outer,
                         const AccessFilter& inner);

}  // namespace audit
}  // namespace auditdb

#endif  // AUDITDB_AUDIT_SUBSUMPTION_H_
