#ifndef AUDITDB_AUDIT_AUDIT_EXPRESSION_H_
#define AUDITDB_AUDIT_AUDIT_EXPRESSION_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/audit/attr_structure.h"
#include "src/common/timestamp.h"
#include "src/expr/expression.h"
#include "src/policy/access_filter.h"

namespace auditdb {
namespace audit {

/// The THRESHOLD clause: a count N, or ALL (every tuple of the target
/// data view must be accessed).
struct Threshold {
  int64_t n = 1;
  bool all = false;

  static Threshold N(int64_t n) { return Threshold{n, false}; }
  static Threshold All() { return Threshold{0, true}; }

  std::string ToString() const {
    return all ? "ALL" : std::to_string(n);
  }
  bool operator==(const Threshold& other) const {
    return all == other.all && (all || n == other.n);
  }
};

/// A fully parsed audit expression in the paper's unified model (Fig. 7):
///
///   Neg-Role-Purpose {(r,pr)|(r,-)|(-,pr)}*      (default: all accesses)
///   Pos-Role-Purpose {(r,pr)|(r,-)|(-,pr)}*      (default: all accesses)
///   Neg-User-Identity {u-id}*                    (default: all accesses)
///   Pos-User-Identity {u-id}*                    (default: all accesses)
///   DURING ts1 to ts2                            (default: current day)
///   DATA-INTERVAL ts1 to ts2                     (default: current day)
///   THRESHOLD N | ALL                            (default: 1)
///   INDISPENSABLE true | false                   (default: true)
///   AUDIT <attribute structure>
///   FROM <tables>
///   WHERE <predicate>
///
/// The legacy Agrawal et al. syntax (Fig. 1) parses into the same object:
/// OTHERTHAN PURPOSE p1,p2 becomes Neg-Role-Purpose (-,p1)(-,p2), and a
/// plain attribute list becomes a single mandatory group.
struct AuditExpression {
  /// AUDIT clause.
  AttrStructure attrs;
  /// FROM clause.
  std::vector<std::string> from;
  /// WHERE clause; nullptr = TRUE.
  ExprPtr where;

  /// Limiting parameters (Pos/Neg clauses + DURING).
  AccessFilter filter;
  /// Data versions the target view ranges over.
  TimeInterval data_interval;
  /// Suspicion parameters.
  Threshold threshold;
  bool indispensable = true;

  AuditExpression() = default;
  AuditExpression(AuditExpression&&) = default;
  AuditExpression& operator=(AuditExpression&&) = default;

  /// Deep copy.
  AuditExpression Clone() const;

  /// Canonical text form (parse → ToString → parse round-trips).
  std::string ToString() const;

  /// Qualifies the attribute structure and WHERE columns against a
  /// catalog (must run before computing target views).
  Status Qualify(const Catalog& catalog);
};

}  // namespace audit
}  // namespace auditdb

#endif  // AUDITDB_AUDIT_AUDIT_EXPRESSION_H_
