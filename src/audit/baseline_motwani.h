#ifndef AUDITDB_AUDIT_BASELINE_MOTWANI_H_
#define AUDITDB_AUDIT_BASELINE_MOTWANI_H_

#include <vector>

#include "src/audit/audit_expression.h"
#include "src/backlog/backlog.h"
#include "src/engine/executor.h"
#include "src/querylog/query_log.h"

namespace auditdb {
namespace audit {

/// Direct reimplementation of the batch-auditing notions of Motwani,
/// Nabar & Thomas (ICDE'07 workshop), as baselines for the unified model.
///
/// Batch semantic suspicion (Definition 4): some subset Q' of the batch
/// exists where every query shares an indispensable tuple with A (checked
/// on the state each query ran against) and Q' together accesses every
/// column of the audit list. Since sharing a tuple is per-query, the
/// batch is suspicious iff the queries that individually share a tuple
/// jointly cover the audit columns.
///
/// Weak syntactic suspicion (Definition 7): data-independent — some
/// subset exists whose queries could share an indispensable tuple in
/// *some* database instance (predicate consistency) and that accesses at
/// least one audit-list column.
class MotwaniAuditor {
 public:
  MotwaniAuditor(const Database* db, const Backlog* backlog,
                 const QueryLog* log)
      : db_(db), backlog_(backlog), log_(log) {}

  struct BatchResult {
    bool semantically_suspicious = false;
    /// Queries that share an indispensable tuple with A (the witnesses of
    /// semantic suspicion).
    std::vector<int64_t> sharing_ids;
    bool weakly_syntactically_suspicious = false;
    /// Queries witnessing weak syntactic suspicion.
    std::vector<int64_t> weak_ids;
  };

  Result<BatchResult> Audit(const AuditExpression& expr,
                            const ExecOptions& exec = ExecOptions{}) const;

 private:
  const Database* db_;
  const Backlog* backlog_;
  const QueryLog* log_;
};

}  // namespace audit
}  // namespace auditdb

#endif  // AUDITDB_AUDIT_BASELINE_MOTWANI_H_
